package wholegraph_test

import (
	"math/rand"
	"strings"
	"testing"

	"wholegraph"
)

// TestFacadeEndToEnd exercises the public API exactly as the quickstart
// example does: machine, dataset, trainer, epochs, evaluation.
func TestFacadeEndToEnd(t *testing.T) {
	machine := wholegraph.NewDGXA100(1)
	ds, err := wholegraph.GenerateDataset(wholegraph.OgbnProducts.Scaled(0.001))
	if err != nil {
		t.Fatal(err)
	}
	trainer, err := wholegraph.NewTrainer(machine, ds, wholegraph.TrainOptions{
		Arch: "graphsage", Batch: 32, Fanouts: []int{4, 4}, Hidden: 16, LR: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	var first, last wholegraph.EpochStats
	for e := 0; e < 10; e++ {
		st := trainer.RunEpoch()
		if e == 0 {
			first = st
		}
		last = st
	}
	if last.Loss >= first.Loss {
		t.Errorf("loss did not decrease: %.3f -> %.3f", first.Loss, last.Loss)
	}
	if last.EpochTime <= 0 {
		t.Error("no virtual time measured")
	}
	if acc := trainer.Evaluate(ds.Val, 0); acc <= 0 {
		t.Errorf("validation accuracy %.3f", acc)
	}
	if emb := trainer.Predict(ds.Val[:4]); len(emb) != 4 || len(emb[0]) != ds.Spec.NumClasses {
		t.Error("Predict returned wrong shape")
	}
}

func TestFacadeBaselineAndOps(t *testing.T) {
	machine := wholegraph.NewDGXA100(1)
	ds, err := wholegraph.GenerateDataset(wholegraph.OgbnProducts.Scaled(0.0005))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := wholegraph.NewBaselineTrainer(machine, ds, wholegraph.TrainOptions{
		Arch: "gcn", Batch: 16, Fanouts: []int{3}, Hidden: 8,
	}, wholegraph.DGL)
	if err != nil {
		t.Fatal(err)
	}
	if st := tr.RunEpoch(); st.EpochTime <= 0 {
		t.Error("baseline epoch did not run")
	}

	// Direct op access: Algorithm 1 and the shared-memory allocator.
	res := wholegraph.SampleWithoutReplacement(5, 100, rand.New(rand.NewSource(1)))
	if len(res) != 5 {
		t.Errorf("sampled %d values", len(res))
	}
	comm, err := wholegraph.NewComm(machine.NodeDevs(0))
	if err != nil {
		t.Fatal(err)
	}
	mem := wholegraph.AllocFloats(comm, 1024)
	if mem.Len() != 1024 {
		t.Errorf("allocated %d elements", mem.Len())
	}

	// Store + loader compose directly too.
	m2 := wholegraph.NewDGXA100(1)
	store, err := wholegraph.NewStore(m2, 0, ds)
	if err != nil {
		t.Fatal(err)
	}
	ld := wholegraph.NewLoader(store, m2.Devs[0], []int{3}, 1)
	batch, _ := ld.BuildBatch(ds.Train[:4])
	if err := batch.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeExtensions(t *testing.T) {
	machine := wholegraph.NewDGXA100(1)
	ds, err := wholegraph.GenerateDataset(wholegraph.OgbnProducts.Scaled(0.0005))
	if err != nil {
		t.Fatal(err)
	}
	store, err := wholegraph.NewStore(machine, 0, ds)
	if err != nil {
		t.Fatal(err)
	}

	// Analytics.
	pr, err := wholegraph.PageRank(store.PG, 0.85, 1e-6, 30)
	if err != nil || len(pr.Rank) != int(ds.Graph.N) {
		t.Fatalf("pagerank: %v", err)
	}
	cc, err := wholegraph.ConnectedComponents(store.PG, 100)
	if err != nil || cc.Components == 0 {
		t.Fatalf("cc: %v", err)
	}

	// Link prediction.
	lp, err := wholegraph.NewLinkPredictor(store, machine.Devs[0], wholegraph.LinkPredOptions{
		EdgeBatch: 16, Fanouts: []int{3}, Dim: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if loss := lp.TrainStep(); loss <= 0 {
		t.Errorf("linkpred loss = %g", loss)
	}
	if auc := lp.EvalAUC(64); auc < 0 || auc > 1 {
		t.Errorf("auc = %g", auc)
	}

	// Full-graph inference through the facade.
	tr, err := wholegraph.NewTrainer(machine, ds, wholegraph.TrainOptions{
		Arch: "gin", Batch: 16, Fanouts: []int{3}, Hidden: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	lw, ok := tr.Models[0].(wholegraph.LayerwiseModel)
	if !ok {
		t.Fatal("gin not layerwise")
	}
	out, err := wholegraph.FullGraphInference(tr.Stores[0], lw)
	if err != nil || int64(out.R) != ds.Graph.N {
		t.Fatalf("inference: %v", err)
	}

	// Checkpoint via the facade surface.
	path := t.TempDir() + "/m.ckpt"
	if err := tr.Models[0].Params().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := tr.Models[0].Params().LoadFile(path); err != nil {
		t.Fatal(err)
	}

	// Chrome trace export.
	machine.Devs[0].Tracing = true
	machine.Devs[0].Kernel(wholegraph.KernelCost{FLOPs: 1e6, Tag: "t"})
	var sb strings.Builder
	if err := wholegraph.WriteChromeTrace(&sb, machine.Devs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"t"`) {
		t.Error("trace missing tagged event")
	}
}

func TestFacadeDatasetIO(t *testing.T) {
	ds, err := wholegraph.GenerateDataset(wholegraph.OgbnProducts.Scaled(0.0005))
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/d.bin"
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := wholegraph.LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Graph.N != ds.Graph.N {
		t.Error("load round trip lost nodes")
	}
}
