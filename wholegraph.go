// Package wholegraph is a Go reproduction of "WholeGraph: A Fast Graph
// Neural Network Training Framework with Multi-GPU Distributed Shared
// Memory Architecture" (Yang, Liu, Qi, Lai — NVIDIA, SC 2022).
//
// The package is the user-facing facade over the implementation in
// internal/: a simulated multi-GPU machine (internal/sim), the distributed
// shared memory library (internal/wholemem), partitioned graph storage
// (internal/graph), the GNN ops of the paper — parallel sampling without
// replacement, AppendUnique, global gather, g-SpMM/g-SDDMM — and a full
// training stack (tensor math, autograd, GCN/GraphSAGE/GAT models, data
// parallel training) plus the DGL-like and PyG-like host-memory baselines
// the paper compares against.
//
// A minimal end-to-end run:
//
//	machine := wholegraph.NewDGXA100(1)
//	ds, _ := wholegraph.GenerateDataset(wholegraph.OgbnProducts.Scaled(0.001))
//	trainer, _ := wholegraph.NewTrainer(machine, ds, wholegraph.TrainOptions{
//		Arch: "graphsage", Batch: 64, Fanouts: []int{5, 5}, Hidden: 32,
//	})
//	for epoch := 0; epoch < 10; epoch++ {
//		stats := trainer.RunEpoch()
//		fmt.Printf("epoch %d: loss %.3f, %.1f ms (virtual)\n",
//			stats.Epoch, stats.Loss, stats.EpochTime*1e3)
//	}
//
// All reported durations are virtual seconds from the machine simulation:
// the algorithms run for real on real data, while their costs are charged
// to calibrated device clocks (see DESIGN.md for the substitution rationale
// and calibration sources).
package wholegraph

import (
	"wholegraph/internal/analytics"
	"wholegraph/internal/ann"
	"wholegraph/internal/baseline"
	"wholegraph/internal/core"
	"wholegraph/internal/dataset"
	"wholegraph/internal/gather"
	"wholegraph/internal/gnn"
	"wholegraph/internal/graph"
	"wholegraph/internal/graphclass"
	"wholegraph/internal/infer"
	"wholegraph/internal/linkpred"
	"wholegraph/internal/sampling"
	"wholegraph/internal/serve"
	"wholegraph/internal/sim"
	"wholegraph/internal/spops"
	"wholegraph/internal/tensor"
	"wholegraph/internal/train"
	"wholegraph/internal/unique"
	"wholegraph/internal/wholemem"
)

// --- Machine simulation ---

// Machine is a simulated multi-GPU cluster with virtual clocks.
type Machine = sim.Machine

// MachineConfig describes the simulated hardware.
type MachineConfig = sim.MachineConfig

// Device is one simulated GPU.
type Device = sim.Device

// KernelCost describes one kernel for cost charging (advanced use: custom
// ops built directly on devices).
type KernelCost = sim.KernelCost

// NewDGXA100 builds a cluster of DGX-A100 nodes (8 GPUs each, NVSwitch,
// PCIe 4.0, InfiniBand between nodes), calibrated to the paper's
// microbenchmarks.
func NewDGXA100(nodes int) *Machine { return sim.NewMachine(sim.DGXA100(nodes)) }

// NewMachine builds a cluster from a custom configuration.
func NewMachine(cfg MachineConfig) *Machine { return sim.NewMachine(cfg) }

// DGXA100Config returns the calibrated DGX-A100 configuration for callers
// that want to tweak hardware parameters before NewMachine.
func DGXA100Config(nodes int) MachineConfig { return sim.DGXA100(nodes) }

// SetParallel toggles real-goroutine execution of simulated workers
// (training workers, inference ranks, gather pipelines). It is on by
// default; turning it off forces the serial reference path. Both paths
// produce bit-identical results and virtual times — only wall-clock time
// changes. Returns the previous setting.
func SetParallel(on bool) bool { return sim.SetParallel(on) }

// ParallelEnabled reports whether parallel device execution is on.
func ParallelEnabled() bool { return sim.ParallelEnabled() }

// SetTensorWorkers sets how many goroutines the tensor kernels may use for
// row-parallel loops (0 restores the default, runtime.NumCPU). Returns the
// previous setting.
func SetTensorWorkers(n int) int { return tensor.SetWorkers(n) }

// TensorWorkers reports the current tensor kernel worker count.
func TensorWorkers() int { return tensor.Workers() }

// --- Datasets ---

// DatasetSpec describes a synthetic dataset (sizes, feature dimension,
// label ratio, degree distribution).
type DatasetSpec = dataset.Spec

// Dataset is a generated graph with features, labels and splits.
type Dataset = dataset.Dataset

// Specs for the paper's four evaluation graphs (Table II) at full size; use
// Scaled to shrink them to laptop proportions.
var (
	OgbnProducts   = dataset.OgbnProducts
	OgbnPapers100M = dataset.OgbnPapers100M
	Friendster     = dataset.Friendster
	UKDomain       = dataset.UKDomain
)

// GenerateDataset builds the synthetic dataset described by spec.
func GenerateDataset(spec DatasetSpec) (*Dataset, error) { return dataset.Generate(spec) }

// GenerateDatasetOutOfCore builds a dataset with the same spec, labels and
// splits as GenerateDataset but with neither the feature slab nor the edge
// list materialized: features are generated per row on demand, and the
// adjacency is a hash-defined edge source decoded per page. The topology is
// drawn from the same degree/homophily distribution as GenerateDataset but
// is NOT the same graph (the in-RAM generator builds its edge list by
// global sampling; the out-of-core source defines each node's neighbors by
// hashing). The bit-identical counterpart is MaterializeDatasetOutOfCore.
// Training such a dataset requires TrainOptions.PagedFeatures and
// TrainOptions.PagedTopo (wgtrain -out-of-core sets both).
func GenerateDatasetOutOfCore(spec DatasetSpec) (*Dataset, error) {
	return dataset.GenerateOutOfCore(spec)
}

// MaterializeDatasetOutOfCore builds the in-RAM twin of
// GenerateDatasetOutOfCore(spec): the same adjacency, features, labels and
// splits, materialized as a flat CSR and feature slab. Training over it is
// bit-identical to paged training over the out-of-core dataset. Only viable
// at scales that fit in host memory, by design.
func MaterializeDatasetOutOfCore(spec DatasetSpec) (*Dataset, error) {
	return dataset.MaterializeOutOfCore(spec)
}

// LoadDataset reads a dataset saved with Dataset.SaveFile (or wggen -save).
func LoadDataset(path string) (*Dataset, error) { return dataset.LoadFile(path) }

// WriteChromeTrace serializes the recorded device timelines in the Chrome
// Trace Event format (view in chrome://tracing or Perfetto). Enable
// TrainOptions.Trace or Device.Tracing first.
var WriteChromeTrace = sim.WriteChromeTrace

// --- Graph storage ---

// GlobalID identifies a node as (owning rank, local index), the paper's
// multi-GPU node addressing scheme.
type GlobalID = graph.GlobalID

// CSR is a host-side adjacency structure.
type CSR = graph.CSR

// PartitionedGraph is the multi-GPU graph store: hash-partitioned nodes,
// edges with their source, features with their node, all in distributed
// shared memory.
type PartitionedGraph = graph.Partitioned

// Store couples a dataset with its partitioned placement on one machine
// node.
type Store = core.Store

// NewStore partitions ds across the GPUs of machine node `node`, charging
// the one-time allocation and IPC setup cost.
func NewStore(m *Machine, node int, ds *Dataset) (*Store, error) {
	return core.NewStore(m, node, ds)
}

// StoreOptions selects the storage backends of a store: flat slabs (zero
// value), the paged out-of-core feature store, and/or the paged out-of-core
// topology store. Decoded values are bit-identical across all combinations
// (with the raw feature encoding): paging changes virtual time and cache
// hit rates, never training results.
type StoreOptions = core.StoreOptions

// NewStoreWithOptions is NewStore with explicit storage backends.
// Out-of-core datasets (GenerateDatasetOutOfCore) require PagedFeatures and
// PagedTopo.
func NewStoreWithOptions(m *Machine, node int, ds *Dataset, opts StoreOptions) (*Store, error) {
	return core.NewStoreOpts(m, node, ds, opts)
}

// --- Ops ---

// SampleWithoutReplacement draws m distinct values from [0, n) with the
// paper's Algorithm 1 (parallel path-doubling resolution).
var SampleWithoutReplacement = sampling.SampleWithoutReplacement

// AppendUnique deduplicates sampled neighbors against the target list,
// assigning contiguous sub-graph IDs and duplicate counts (§III-C2).
var AppendUnique = unique.AppendUnique

// UniqueResult is the output of AppendUnique.
type UniqueResult = unique.Result

// GatherRequest is one GPU's feature gather (rows in, features out).
type GatherRequest = gather.Request

// NewGatherRequest allocates a request with a sized output buffer.
var NewGatherRequest = gather.NewRequest

// SharedMemGather performs the single-kernel shared-memory global gather
// (Figure 4, right).
var SharedMemGather = gather.SharedMem

// DistributedGather performs the 5-step NCCL-style gather baseline
// (Figure 4, left).
var DistributedGather = gather.Distributed

// --- Models and training ---

// Model is a GNN producing logits for a batch's target nodes.
type Model = gnn.Model

// ModelConfig holds GNN hyperparameters.
type ModelConfig = gnn.Config

// Batch is a sampled multi-layer mini-batch (message flow graphs + gathered
// features + labels).
type Batch = gnn.Batch

// NewModel constructs "gcn", "graphsage" or "gat" from a config.
var NewModel = gnn.New

// LayerBackend selects whose GNN layer kernels carry the compute
// (Figure 11): BackendNative, BackendDGL or BackendPyG.
type LayerBackend = spops.Backend

// Layer backends.
const (
	BackendNative = spops.BackendNative
	BackendDGL    = spops.BackendDGL
	BackendPyG    = spops.BackendPyG
)

// TrainOptions configures a training run; zero values take the paper's §IV
// defaults (batch 512, fanout 30/30/30, hidden 256, 4 heads).
type TrainOptions = train.Options

// Trainer runs data-parallel GNN training over a simulated machine.
type Trainer = train.Trainer

// EpochStats reports one epoch: virtual epoch time, per-phase breakdown,
// loss and accuracy.
type EpochStats = train.EpochStats

// Loader builds WholeGraph mini-batches on one device (GPU sampling +
// AppendUnique + shared-memory gather).
type Loader = core.Loader

// NewLoader creates a batch loader over a store.
var NewLoader = core.NewLoader

// NewTrainer builds the WholeGraph trainer: one graph replica per machine
// node, one data-parallel worker per GPU.
func NewTrainer(m *Machine, ds *Dataset, opts TrainOptions) (*Trainer, error) {
	return train.New(m, ds, opts)
}

// LayerwiseModel is a Model that supports single-layer application, as
// full-graph inference requires; all built-in architectures implement it.
type LayerwiseModel = gnn.LayerwiseModel

// FullGraphInference computes the model's output for every node of the
// store via layer-wise propagation over shared memory (offline inference:
// each embedding computed exactly once, no sampling).
var FullGraphInference = infer.FullGraph

// BaselineFlavor selects which host-memory baseline framework to emulate.
type BaselineFlavor = baseline.Flavor

// Baseline flavors.
const (
	DGL = baseline.DGL
	PyG = baseline.PyG
)

// NewBaselineTrainer builds a DGL-like or PyG-like host-memory trainer: CPU
// sampling and gathering, PCIe transfers, identical model math.
func NewBaselineTrainer(m *Machine, ds *Dataset, opts TrainOptions, flavor BaselineFlavor) (*Trainer, error) {
	return baseline.New(m, ds, opts, flavor)
}

// --- Online serving ---

// ServeOptions configures an online serving run (arrival rate, dynamic
// batching, admission control, SLO); zero values take defaults.
type ServeOptions = serve.Options

// ServePolicy selects how requests are routed to replicas.
type ServePolicy = serve.Policy

// Serving routing policies.
const (
	ServeCacheAware = serve.PolicyCacheAware
	ServeOwner      = serve.PolicyOwner
	ServeRoundRobin = serve.PolicyRoundRobin
)

// Server serves online node-inference requests over a store with dynamic
// batching: one replica per GPU of the node, Poisson arrivals, bounded
// queues with load shedding and deadlines, latency percentiles against a
// configurable SLO — all in deterministic virtual time.
type Server = serve.Server

// ServeResult aggregates one serving run (throughput, shed/timeout counts,
// p50/p95/p99 latency, SLO attainment, per-replica stats).
type ServeResult = serve.Result

// ServeRequest is one request of the serving trace.
type ServeRequest = serve.Request

// ServeOutcome records what happened to one request.
type ServeOutcome = serve.Outcome

// Serving request outcomes.
const (
	Served        = serve.OutcomeServed
	ServeShed     = serve.OutcomeShed
	ServeTimedOut = serve.OutcomeTimedOut
)

// NewServer replicates a trained layer-wise model onto every GPU of
// machine node `node` and prepares the request pipeline.
func NewServer(m *Machine, node int, ds *Dataset, model LayerwiseModel, opts ServeOptions) (*Server, error) {
	return serve.New(m, node, ds, model, opts)
}

// Serving workloads: node inference (the default) and top-K nearest
// neighbor retrieval over an ANN index (ServeOptions.Workload).
const (
	WorkloadInference = serve.WorkloadInference
	WorkloadRetrieval = serve.WorkloadRetrieval
)

// --- ANN retrieval ---

// Matrix is a dense row-major float32 matrix (R rows by C columns, flat
// backing in V), as produced by FullGraphEmbeddings.
type Matrix = tensor.Dense

// FullGraphEmbeddings computes every node's final-layer embedding via
// layer-wise propagation over the shared store: the rows BuildANNIndex
// indexes. Identical to FullGraphInference; the name marks the intent.
var FullGraphEmbeddings = infer.Embeddings

// ANNOptions are the HNSW construction and search parameters; zero values
// take defaults (M=12, efConstruction=100, efSearch=64).
type ANNOptions = ann.Options

// ANNIndex is a deterministic HNSW index over embedding rows sharded
// across a communicator's devices; searches charge distance math and
// local/remote row traffic to the querying device.
type ANNIndex = ann.Index

// ANNResult is one retrieved neighbor (row ID and L2 distance).
type ANNResult = ann.Result

// BuildANNIndex builds the HNSW index over emb's rows, the embedding table
// sharded across the communicator like any other shared allocation.
// Construction is parallel across the devices and bit-deterministic: the
// same rows, options and seed give the same graph on any worker count.
func BuildANNIndex(c *Comm, emb *Matrix, opts ANNOptions) (*ANNIndex, error) {
	return ann.Build(c, emb, opts)
}

// NewRetrievalServer builds a retrieval deployment over a built ANN index:
// one replica per device of the index's communicator, the same open-loop
// generator and dynamic batcher as NewServer, answers scored as recall@K
// against the exact oracle.
func NewRetrievalServer(ix *ANNIndex, opts ServeOptions) (*Server, error) {
	return serve.NewRetrieval(ix, opts)
}

// --- Link prediction ---

// LinkPredOptions configures the link-prediction trainer.
type LinkPredOptions = linkpred.Options

// LinkPredictor trains a GraphSAGE encoder end-to-end on the link
// objective (positive edges vs sampled negatives, dot-product scores,
// binary cross-entropy) over the shared store.
type LinkPredictor = linkpred.Trainer

// NewLinkPredictor builds a link-prediction trainer on one device.
var NewLinkPredictor = linkpred.New

// --- Graph classification ---

// GraphClassSpec describes a synthetic graph-classification dataset (each
// class a topology motif).
type GraphClassSpec = graphclass.Spec

// GraphClassDataset is a set of labeled small graphs.
type GraphClassDataset = graphclass.Dataset

// GraphClassStore holds the small graphs' features in shared memory.
type GraphClassStore = graphclass.Store

// GraphClassifier trains a GIN on batches of small graphs (disjoint-union
// blocks, mean-pool readout).
type GraphClassifier = graphclass.Trainer

// GenerateGraphClassDataset builds a motif-classification dataset.
var GenerateGraphClassDataset = graphclass.Generate

// NewGraphClassStore places the dataset into a node's shared memory.
var NewGraphClassStore = graphclass.NewStore

// GraphClassOptions configures the graph-classification trainer.
type GraphClassOptions = graphclass.Options

// NewGraphClassifier builds the trainer on one device.
var NewGraphClassifier = graphclass.New

// --- Graph analytics ---

// PageRankResult holds converged PageRank values and run statistics.
type PageRankResult = analytics.PageRankResult

// CCResult holds connected-component labels and run statistics.
type CCResult = analytics.CCResult

// PageRank runs damped power iteration over the partitioned store, each
// rank pulling neighbor state through shared memory.
var PageRank = analytics.PageRank

// ConnectedComponents runs label propagation over the partitioned store.
var ConnectedComponents = analytics.ConnectedComponents

// --- Shared memory (advanced) ---

// Comm is the set of device ranks sharing memory (one machine node).
type Comm = wholemem.Comm

// NewComm creates a communicator over the devices of one node.
var NewComm = wholemem.NewComm

// FloatMemory is a distributed shared float32 allocation.
type FloatMemory = wholemem.Memory[float32]

// AllocFloats creates a shared float32 allocation of n elements split
// across the communicator, performing the IPC setup protocol.
func AllocFloats(c *Comm, n int64) *FloatMemory { return wholemem.Alloc[float32](c, n) }
