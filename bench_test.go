// Benchmarks regenerating the paper's tables and figures (one bench per
// experiment; see DESIGN.md for the index) plus microbenchmarks of the core
// ops. Reported custom metrics are virtual seconds or virtual GB/s from the
// machine simulation; ns/op measures the host cost of running the
// simulation itself.
//
//	go test -bench=. -benchmem
package wholegraph_test

import (
	"math/rand"
	"testing"

	"wholegraph"
	"wholegraph/internal/bench"
	"wholegraph/internal/sampling"
	"wholegraph/internal/spops"
	"wholegraph/internal/tensor"
	"wholegraph/internal/unique"

	"wholegraph/internal/autograd"
	"wholegraph/internal/graph"
)

func benchCfg() bench.Config {
	return bench.Config{Quick: true, Scale: 2e-4, Epochs: 2, Seed: 1}
}

// --- One benchmark per paper table/figure ---

func BenchmarkTable1PointerChase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[0].P2PLatUs, "p2p-us")
			b.ReportMetric(rows[0].UMLatUs, "um-us")
		}
	}
}

func BenchmarkTable3Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table3(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4Memory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Table4(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.FullFeatPerGPU, "feat-GB/GPU")
		}
	}
}

func BenchmarkTable5EpochTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table5(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[0].SpeedupVsDGL, "speedup-vs-dgl")
			b.ReportMetric(rows[0].SpeedupVsPyG, "speedup-vs-pyg")
		}
	}
}

func BenchmarkFig7Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig7(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8SegmentBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := bench.Fig8(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(pts[len(pts)-1].BusBWGBs, "plateau-GB/s")
		}
	}
}

func BenchmarkFig9Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig9(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10Gather(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig10(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[0].Speedup, "gather-speedup")
		}
	}
}

func BenchmarkFig11LayerBackends(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig11(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12Utilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := bench.Fig12(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(series[2].Mean*100, "wg-util-%")
		}
	}
}

func BenchmarkFig13MultiNode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig13(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[0].Speedup[3], "8node-speedup")
		}
	}
}

func BenchmarkSetupCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Setup(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Microbenchmarks of the core ops (host cost of the real algorithms) ---

func BenchmarkAlg1Sampling(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sampling.SampleWithoutReplacement(30, 1000, rng)
	}
}

func BenchmarkAppendUnique(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	targets := make([]graph.GlobalID, 512)
	for i := range targets {
		targets[i] = graph.MakeGlobalID(i%8, int64(100000+i))
	}
	neighbors := make([]graph.GlobalID, 512*30)
	for i := range neighbors {
		v := rng.Intn(20000)
		neighbors[i] = graph.MakeGlobalID(v%8, int64(v))
	}
	ded := unique.NewDeduper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ded.AppendUnique(nil, targets, neighbors)
	}
}

// BenchmarkAppendUniqueSort measures the radix-sort ablation baseline on
// the same workload as BenchmarkAppendUnique.
func BenchmarkAppendUniqueSort(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	targets := make([]graph.GlobalID, 512)
	for i := range targets {
		targets[i] = graph.MakeGlobalID(i%8, int64(100000+i))
	}
	neighbors := make([]graph.GlobalID, 512*30)
	for i := range neighbors {
		v := rng.Intn(20000)
		neighbors[i] = graph.MakeGlobalID(v%8, int64(v))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		unique.AppendUniqueSort(nil, targets, neighbors)
	}
}

func BenchmarkSpMMNative(b *testing.B) {
	benchmarkSpMM(b, spops.BackendNative)
}

func BenchmarkSpMMPyGStyle(b *testing.B) {
	benchmarkSpMM(b, spops.BackendPyG)
}

func benchmarkSpMM(b *testing.B, be spops.Backend) {
	rng := rand.New(rand.NewSource(3))
	g := &spops.SubCSR{NumTargets: 512, NumNodes: 8000, RowPtr: []int64{0}}
	for t := 0; t < 512; t++ {
		for k := 0; k < 20; k++ {
			g.Col = append(g.Col, int32(rng.Intn(8000)))
		}
		g.RowPtr = append(g.RowPtr, int64(len(g.Col)))
	}
	g.DupCount = make([]int32, 8000)
	for _, c := range g.Col {
		g.DupCount[c]++
	}
	x := tensor.Randn(8000, 64, 1, rng)
	tp := autograd.NewTapeArena(tensor.NewArena())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp.Reset()
		out := spops.SpMM(nil, be, g, tp.Param(x), nil, spops.AggMean)
		tp.Backward(out, tp.NewTensor(out.Value.R, out.Value.C))
	}
}

func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.Randn(512, 128, 1, rng)
	w := tensor.Randn(128, 128, 1, rng)
	dst := tensor.New(512, 128)
	b.SetBytes(512 * 128 * 128 * 2 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(dst, x, w)
	}
}

func BenchmarkEndToEndEpoch(b *testing.B) {
	ds, err := wholegraph.GenerateDataset(wholegraph.OgbnProducts.Scaled(0.001))
	if err != nil {
		b.Fatal(err)
	}
	machine := wholegraph.NewDGXA100(1)
	tr, err := wholegraph.NewTrainer(machine, ds, wholegraph.TrainOptions{
		Arch: "graphsage", Batch: 32, Fanouts: []int{5, 5}, Hidden: 32,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var last wholegraph.EpochStats
	for i := 0; i < b.N; i++ {
		last = tr.RunEpoch()
	}
	b.ReportMetric(last.EpochTime*1e3, "virtual-ms/epoch")
}

// benchmarkPipelineEpoch is the sequential-vs-overlapped pair behind
// BENCH_pipeline.json: identical workloads (batch 8 so each epoch has
// several iterations to pipeline), differing only in whether the loader
// prefetches the next batch on the copy stream. ns/op is the host cost of
// running the simulation; virtual-ms/epoch is the modeled training time.
func benchmarkPipelineEpoch(b *testing.B, pipeline bool) {
	ds, err := wholegraph.GenerateDataset(wholegraph.OgbnProducts.Scaled(0.001))
	if err != nil {
		b.Fatal(err)
	}
	machine := wholegraph.NewDGXA100(1)
	tr, err := wholegraph.NewTrainer(machine, ds, wholegraph.TrainOptions{
		Arch: "graphsage", Batch: 8, Fanouts: []int{5, 5}, Hidden: 32,
		Pipeline: pipeline,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var last wholegraph.EpochStats
	for i := 0; i < b.N; i++ {
		last = tr.RunEpoch()
	}
	b.ReportMetric(last.EpochTime*1e3, "virtual-ms/epoch")
	b.ReportMetric(last.Timing.Crit*1e3, "virtual-crit-ms")
}

func BenchmarkPipelineEpochSequential(b *testing.B) { benchmarkPipelineEpoch(b, false) }
func BenchmarkPipelineEpochOverlapped(b *testing.B) { benchmarkPipelineEpoch(b, true) }

// benchmarkGraphEpoch is the eager-vs-replay pair behind the step
// capture/replay claim: identical workloads, differing only in
// CaptureGraph. The warm-up epochs outside the timer capture both loader
// slots, so ns/op and allocs/op of the replay side measure pure host
// dispatch of replayed iterations; virtual-ms/epoch carries the modeled
// graph-launch win.
func benchmarkGraphEpoch(b *testing.B, capture bool) {
	ds, err := wholegraph.GenerateDataset(wholegraph.OgbnProducts.Scaled(0.001))
	if err != nil {
		b.Fatal(err)
	}
	machine := wholegraph.NewDGXA100(1)
	tr, err := wholegraph.NewTrainer(machine, ds, wholegraph.TrainOptions{
		Arch: "graphsage", Batch: 8, Fanouts: []int{5, 5}, Hidden: 32,
		CaptureGraph: capture,
	})
	if err != nil {
		b.Fatal(err)
	}
	tr.RunEpoch() // warm-up: captures both loader slots, pools settle
	tr.RunEpoch()
	tr.RunEpoch()
	b.ReportAllocs()
	b.ResetTimer()
	var last wholegraph.EpochStats
	for i := 0; i < b.N; i++ {
		last = tr.RunEpoch()
	}
	b.ReportMetric(last.EpochTime*1e3, "virtual-ms/epoch")
}

func BenchmarkGraphEpochEager(b *testing.B)  { benchmarkGraphEpoch(b, false) }
func BenchmarkGraphEpochReplay(b *testing.B) { benchmarkGraphEpoch(b, true) }

// --- Benches for the extension modules ---

func BenchmarkPageRank(b *testing.B) {
	ds, err := wholegraph.GenerateDataset(wholegraph.OgbnProducts.Scaled(0.0005))
	if err != nil {
		b.Fatal(err)
	}
	machine := wholegraph.NewDGXA100(1)
	store, err := wholegraph.NewStore(machine, 0, ds)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := wholegraph.PageRank(store.PG, 0.85, 1e-6, 50)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Time*1e3, "virtual-ms")
			b.ReportMetric(float64(res.Iterations), "iters")
		}
	}
}

func BenchmarkFullGraphInference(b *testing.B) {
	ds, err := wholegraph.GenerateDataset(wholegraph.OgbnProducts.Scaled(0.0005))
	if err != nil {
		b.Fatal(err)
	}
	machine := wholegraph.NewDGXA100(1)
	tr, err := wholegraph.NewTrainer(machine, ds, wholegraph.TrainOptions{
		Arch: "gcn", Batch: 32, Fanouts: []int{4, 4}, Hidden: 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	lw := tr.Models[0].(wholegraph.LayerwiseModel)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wholegraph.FullGraphInference(tr.Stores[0], lw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLinkPredictionStep(b *testing.B) {
	ds, err := wholegraph.GenerateDataset(wholegraph.OgbnProducts.Scaled(0.001))
	if err != nil {
		b.Fatal(err)
	}
	machine := wholegraph.NewDGXA100(1)
	store, err := wholegraph.NewStore(machine, 0, ds)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := wholegraph.NewLinkPredictor(store, machine.Devs[0], wholegraph.LinkPredOptions{
		EdgeBatch: 64, Fanouts: []int{4, 4}, Dim: 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.TrainStep()
	}
}

func BenchmarkAblationStorage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationStorage(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[2].GatherTime/rows[0].GatherTime, "pinned-vs-p2p")
		}
	}
}
