package spops

import (
	"math"
	"math/rand"
	"testing"

	"wholegraph/internal/autograd"
	"wholegraph/internal/sim"
	"wholegraph/internal/tensor"
)

// testGraph returns a small sub-graph: 3 targets over 6 input nodes with a
// duplicated column (node 4 appears twice) to exercise DupCount.
func testGraph() *SubCSR {
	g := &SubCSR{
		NumTargets: 3,
		NumNodes:   6,
		RowPtr:     []int64{0, 2, 5, 6},
		Col:        []int32{3, 4, 0, 4, 5, 1},
		DupCount:   []int32{1, 1, 0, 1, 2, 1},
	}
	return g
}

func randomGraph(rng *rand.Rand, targets, nodes, maxDeg int) *SubCSR {
	g := &SubCSR{NumTargets: targets, NumNodes: nodes, RowPtr: []int64{0}}
	for t := 0; t < targets; t++ {
		deg := rng.Intn(maxDeg + 1)
		for k := 0; k < deg; k++ {
			g.Col = append(g.Col, int32(rng.Intn(nodes)))
		}
		g.RowPtr = append(g.RowPtr, int64(len(g.Col)))
	}
	g.DupCount = make([]int32, nodes)
	for _, c := range g.Col {
		g.DupCount[c]++
	}
	return g
}

func TestSubCSRValidate(t *testing.T) {
	g := testGraph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 6 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	bad := testGraph()
	bad.Col[0] = 99
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range col accepted")
	}
	bad = testGraph()
	bad.RowPtr = []int64{0, 2}
	if err := bad.Validate(); err == nil {
		t.Error("short rowptr accepted")
	}
	bad = testGraph()
	bad.RowPtr[1] = 5
	bad.RowPtr[2] = 2
	if err := bad.Validate(); err == nil {
		t.Error("non-monotone rowptr accepted")
	}
}

func TestSpMMForwardSum(t *testing.T) {
	g := testGraph()
	x := tensor.New(6, 2)
	for i := range x.V {
		x.V[i] = float32(i)
	}
	tp := autograd.NewTape()
	out := SpMM(nil, BackendNative, g, tp.Const(x), nil, AggSum)
	// Target 0 aggregates nodes 3 and 4: rows [6,7] + [8,9] = [14,16].
	if out.Value.At(0, 0) != 14 || out.Value.At(0, 1) != 16 {
		t.Fatalf("row 0 = %v", out.Value.Row(0))
	}
	// Target 2 aggregates node 1: [2,3].
	if out.Value.At(2, 0) != 2 || out.Value.At(2, 1) != 3 {
		t.Fatalf("row 2 = %v", out.Value.Row(2))
	}
}

func TestSpMMForwardMean(t *testing.T) {
	g := testGraph()
	x := tensor.New(6, 2)
	for i := range x.V {
		x.V[i] = float32(i)
	}
	tp := autograd.NewTape()
	out := SpMM(nil, BackendNative, g, tp.Const(x), nil, AggMean)
	if out.Value.At(0, 0) != 7 || out.Value.At(0, 1) != 8 {
		t.Fatalf("mean row 0 = %v", out.Value.Row(0))
	}
}

func TestBackendsProduceIdenticalResults(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 20, 50, 8)
	x := tensor.Randn(50, 7, 1, rng)
	w := tensor.Randn(int(g.NumEdges()), 1, 1, rng)

	var outs []*tensor.Dense
	var grads []*tensor.Dense
	for _, be := range []Backend{BackendNative, BackendDGL, BackendPyG} {
		tp := autograd.NewTape()
		xv := tp.Param(x.Clone())
		wv := tp.Param(w.Clone())
		out := SpMM(nil, be, g, xv, wv, AggSum)
		seed := tensor.New(out.Value.R, out.Value.C)
		for i := range seed.V {
			seed.V[i] = float32(i%5) - 2
		}
		tp.Backward(out, seed)
		outs = append(outs, out.Value)
		grads = append(grads, xv.Grad)
	}
	for b := 1; b < 3; b++ {
		for i := range outs[0].V {
			if math.Abs(float64(outs[b].V[i]-outs[0].V[i])) > 1e-5 {
				t.Fatalf("backend %d forward differs at %d", b, i)
			}
		}
		for i := range grads[0].V {
			if math.Abs(float64(grads[b].V[i]-grads[0].V[i])) > 1e-5 {
				t.Fatalf("backend %d gradient differs at %d", b, i)
			}
		}
	}
}

// numeric gradient of sum(out * seedPattern) wrt each input entry.
func spmmLoss(g *SubCSR, x, w *tensor.Dense, agg Agg) float64 {
	tp := autograd.NewTape()
	xv := tp.Const(x)
	var wv *autograd.Var
	if w != nil {
		wv = tp.Const(w)
	}
	out := SpMM(nil, BackendNative, g, xv, wv, agg)
	var loss float64
	for i, v := range out.Value.V {
		loss += float64(v) * float64(i%3-1)
	}
	return loss
}

func TestSpMMGradientNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 8, 15, 5)
	x := tensor.Randn(15, 3, 1, rng)
	w := tensor.Randn(int(g.NumEdges()), 1, 1, rng)

	for _, agg := range []Agg{AggSum, AggMean} {
		tp := autograd.NewTape()
		xv := tp.Param(x)
		wv := tp.Param(w)
		out := SpMM(nil, BackendNative, g, xv, wv, agg)
		seed := tensor.New(out.Value.R, out.Value.C)
		for i := range seed.V {
			seed.V[i] = float32(i%3 - 1)
		}
		tp.Backward(out, seed)

		const eps = 1e-2
		for _, tc := range []struct {
			p    *tensor.Dense
			grad *tensor.Dense
		}{{x, xv.Grad}, {w, wv.Grad}} {
			if tc.grad == nil {
				tc.grad = tensor.New(tc.p.R, tc.p.C)
			}
			for i := range tc.p.V {
				orig := tc.p.V[i]
				tc.p.V[i] = orig + eps
				lp := spmmLoss(g, x, w, agg)
				tc.p.V[i] = orig - eps
				lm := spmmLoss(g, x, w, agg)
				tc.p.V[i] = orig
				num := (lp - lm) / (2 * eps)
				if math.Abs(num-float64(tc.grad.V[i])) > 1e-2*math.Max(1, math.Abs(num)) {
					t.Fatalf("agg %v grad[%d] = %g, numeric %g", agg, i, tc.grad.V[i], num)
				}
			}
		}
	}
}

func TestEdgeScoreAndSegmentSoftmax(t *testing.T) {
	g := testGraph()
	tp := autograd.NewTape()
	sl := tp.Param(tensor.FromSlice(3, 1, []float32{1, 2, 3}))
	sr := tp.Param(tensor.FromSlice(6, 1, []float32{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}))
	e := EdgeScore(nil, g, sl, sr)
	// Edge 0: target 0, col 3 -> 1 + 0.4.
	if math.Abs(float64(e.Value.V[0]-1.4)) > 1e-6 {
		t.Fatalf("edge 0 score = %g", e.Value.V[0])
	}
	// Edge 5: target 2, col 1 -> 3 + 0.2.
	if math.Abs(float64(e.Value.V[5]-3.2)) > 1e-6 {
		t.Fatalf("edge 5 score = %g", e.Value.V[5])
	}

	a := SegmentSoftmax(nil, g, e)
	// Each target's attention sums to 1.
	for tgt := 0; tgt < 3; tgt++ {
		var sum float64
		for i := g.RowPtr[tgt]; i < g.RowPtr[tgt+1]; i++ {
			sum += float64(a.Value.V[i])
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("target %d attention sums to %g", tgt, sum)
		}
	}
}

func TestSegmentSoftmaxGradientNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 5, 10, 4)
	ev := tensor.Randn(int(g.NumEdges()), 1, 1, rng)

	loss := func() float64 {
		tp := autograd.NewTape()
		a := SegmentSoftmax(nil, g, tp.Const(ev))
		var l float64
		for i, v := range a.Value.V {
			l += float64(v) * float64(i%4-1)
		}
		return l
	}
	tp := autograd.NewTape()
	e := tp.Param(ev)
	a := SegmentSoftmax(nil, g, e)
	seed := tensor.New(a.Value.R, 1)
	for i := range seed.V {
		seed.V[i] = float32(i%4 - 1)
	}
	tp.Backward(a, seed)
	const eps = 1e-3
	for i := range ev.V {
		orig := ev.V[i]
		ev.V[i] = orig + eps
		lp := loss()
		ev.V[i] = orig - eps
		lm := loss()
		ev.V[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(e.Grad.V[i])) > 1e-3*math.Max(1, math.Abs(num)) {
			t.Fatalf("softmax grad[%d] = %g, numeric %g", i, e.Grad.V[i], num)
		}
	}
}

func TestEdgeLeakyReLU(t *testing.T) {
	tp := autograd.NewTape()
	x := tp.Param(tensor.FromSlice(3, 1, []float32{2, -4, 0.5}))
	y := EdgeLeakyReLU(nil, x, 0.2)
	want := []float32{2, -0.8, 0.5}
	for i, w := range want {
		if math.Abs(float64(y.Value.V[i]-w)) > 1e-6 {
			t.Fatalf("leakyrelu[%d] = %g", i, y.Value.V[i])
		}
	}
	seed := tensor.FromSlice(3, 1, []float32{1, 1, 1})
	tp.Backward(y, seed)
	wantg := []float32{1, 0.2, 1}
	for i, w := range wantg {
		if x.Grad.V[i] != w {
			t.Fatalf("leakyrelu grad[%d] = %g", i, x.Grad.V[i])
		}
	}
}

func TestBackendCostOrdering(t *testing.T) {
	// Native <= DGL <= PyG in charged training time for the same op, and
	// native strictly beats DGL when duplicates are rare.
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 200, 4000, 10) // few duplicates in 4000 nodes
	x := tensor.Randn(4000, 64, 1, rng)

	m := sim.NewMachine(sim.DGXA100(1))
	times := map[Backend]float64{}
	for i, be := range []Backend{BackendNative, BackendDGL, BackendPyG} {
		d := m.Devs[i]
		tp := autograd.NewTape()
		xv := tp.Param(x)
		out := SpMM(d, be, g, xv, nil, AggMean)
		tp.Backward(out, tensor.New(out.Value.R, out.Value.C))
		times[be] = d.Now()
	}
	if !(times[BackendNative] < times[BackendDGL] && times[BackendDGL] < times[BackendPyG]) {
		t.Errorf("cost ordering violated: native=%g dgl=%g pyg=%g",
			times[BackendNative], times[BackendDGL], times[BackendPyG])
	}
}

func TestAtomicFraction(t *testing.T) {
	g := testGraph()
	// Node 4 is duplicated (2 of 6 edge endpoints touch it).
	if af := g.atomicFraction(); math.Abs(af-2.0/6) > 1e-9 {
		t.Errorf("atomic fraction = %g, want 1/3", af)
	}
	g.DupCount = nil
	if af := g.atomicFraction(); af != 1 {
		t.Errorf("nil dupcount fraction = %g, want 1", af)
	}
	empty := &SubCSR{NumTargets: 1, NumNodes: 1, RowPtr: []int64{0, 0}}
	if af := empty.atomicFraction(); af != 0 {
		t.Errorf("empty graph fraction = %g", af)
	}
}

func TestBackendString(t *testing.T) {
	if BackendNative.String() != "wholegraph" || BackendDGL.String() != "dgl-layers" || BackendPyG.String() != "pyg-layers" {
		t.Error("backend names changed")
	}
}

func TestSpMMStaticEdgeWeights(t *testing.T) {
	g := testGraph()
	g.EdgeW = []float32{2, 1, 1, 3, 1, 4}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(6, 2)
	for i := range x.V {
		x.V[i] = float32(i)
	}
	tp := autograd.NewTape()
	out := SpMM(nil, BackendNative, g, tp.Const(x), nil, AggSum)
	// Target 0: 2*x[3] + 1*x[4] = 2*[6,7] + [8,9] = [20,23].
	if out.Value.At(0, 0) != 20 || out.Value.At(0, 1) != 23 {
		t.Fatalf("weighted sum row 0 = %v", out.Value.Row(0))
	}
	// Weighted mean normalizes by the weight sum (3): [20/3, 23/3].
	tp2 := autograd.NewTape()
	outM := SpMM(nil, BackendNative, g, tp2.Const(x), nil, AggMean)
	if math.Abs(float64(outM.Value.At(0, 0)-20.0/3)) > 1e-6 {
		t.Fatalf("weighted mean row 0 = %v", outM.Value.Row(0))
	}

	// Bad weight count rejected by Validate.
	bad := testGraph()
	bad.EdgeW = []float32{1}
	if err := bad.Validate(); err == nil {
		t.Error("short edge weights accepted")
	}
}

func TestSpMMStaticWeightGradientNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 6, 12, 4)
	g.EdgeW = make([]float32, g.NumEdges())
	for i := range g.EdgeW {
		g.EdgeW[i] = 0.5 + rng.Float32()
	}
	x := tensor.Randn(12, 3, 1, rng)
	w := tensor.Randn(int(g.NumEdges()), 1, 1, rng)

	loss := func() float64 {
		tp := autograd.NewTape()
		out := SpMM(nil, BackendNative, g, tp.Const(x), tp.Const(w), AggMean)
		var l float64
		for i, v := range out.Value.V {
			l += float64(v) * float64(i%3-1)
		}
		return l
	}
	tp := autograd.NewTape()
	xv := tp.Param(x)
	wv := tp.Param(w)
	out := SpMM(nil, BackendNative, g, xv, wv, AggMean)
	seed := tensor.New(out.Value.R, out.Value.C)
	for i := range seed.V {
		seed.V[i] = float32(i%3 - 1)
	}
	tp.Backward(out, seed)

	const eps = 1e-2
	for _, tc := range []struct{ p, grad *tensor.Dense }{{x, xv.Grad}, {w, wv.Grad}} {
		for i := range tc.p.V {
			orig := tc.p.V[i]
			tc.p.V[i] = orig + eps
			lp := loss()
			tc.p.V[i] = orig - eps
			lm := loss()
			tc.p.V[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-float64(tc.grad.V[i])) > 2e-2*math.Max(1, math.Abs(num)) {
				t.Fatalf("weighted grad[%d] = %g, numeric %g", i, tc.grad.V[i], num)
			}
		}
	}
}
