package spops

import (
	"math/rand"
	"testing"

	"wholegraph/internal/autograd"
	"wholegraph/internal/tensor"
)

// spmmAllocBudget is the steady-state allocation budget for one SpMM
// forward+backward on a warm arena-backed tape. The residue is the
// backward closures (one per recorded op) plus the op's capture of its
// scratch — small constants independent of graph size and feature width.
const spmmAllocBudget = 8

func runSpMMAllocCheck(t *testing.T, be Backend, agg Agg) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 64, 256, 12)
	x := tensor.New(256, 32)
	for i := range x.V {
		x.V[i] = rng.Float32()
	}
	tp := autograd.NewTapeArena(tensor.NewArena())

	step := func() {
		tp.Reset()
		xv := tp.Param(x)
		out := SpMM(nil, be, g, xv, nil, agg)
		tp.Backward(out, tp.NewTensor(out.Value.R, out.Value.C))
	}
	step() // warm the arena with this workload's shapes
	n := testing.AllocsPerRun(10, step)
	t.Logf("SpMM backend %v agg %v: %.1f allocs/run (budget %d)", be, agg, n, spmmAllocBudget)
	if n > spmmAllocBudget {
		t.Fatalf("warm SpMM %v/%v forward+backward allocated %.1f times per run, budget %d",
			be, agg, n, spmmAllocBudget)
	}
}

// TestSpMMWarmWorkspaceAllocs locks in the memory-reuse contract for the
// message-passing hot path: with a warm arena tape, forward+backward stay
// within a small constant allocation budget for every backend and both
// aggregators, so a GC regression in the SpMM pipeline fails tier-1.
func TestSpMMWarmWorkspaceAllocs(t *testing.T) {
	for _, be := range []Backend{BackendNative, BackendDGL, BackendPyG} {
		for _, agg := range []Agg{AggSum, AggMean} {
			runSpMMAllocCheck(t, be, agg)
		}
	}
}
