// Package spops implements the sparse GNN layer ops of §III-C4 on the
// sampled sub-graph: generalized sparse-dense matrix multiplication
// (g-SpMM) for message passing, generalized sampled-dense-dense matrix
// multiplication (g-SDDMM) for edge-score computation and edge-weight
// gradients, and segment softmax for attention.
//
// Three layer backends are provided, matching the paper's Figure 11
// comparison. All three compute identical results; they differ in the real
// algorithm (and therefore cost) used:
//
//   - BackendNative: WholeGraph's fused CSR kernels. The backward dX pass
//     uses the duplicate counts from AppendUnique to replace atomic adds
//     with plain stores for nodes sampled at most once.
//   - BackendDGL: fused CSR kernels without the duplicate-count trick:
//     every backward scatter is an atomic read-modify-write.
//   - BackendPyG: PyG-style message materialization: the forward gathers
//     per-edge messages into an [E x d] buffer before reducing, and the
//     backward scatters through the same buffer, tripling memory traffic
//     and kernel launches.
package spops

import (
	"fmt"

	"wholegraph/internal/sim"
)

// Backend selects the layer-op implementation.
type Backend int

const (
	BackendNative Backend = iota
	BackendDGL
	BackendPyG
)

// String returns the backend's display name.
func (b Backend) String() string {
	switch b {
	case BackendNative:
		return "wholegraph"
	case BackendDGL:
		return "dgl-layers"
	case BackendPyG:
		return "pyg-layers"
	}
	return fmt.Sprintf("backend(%d)", int(b))
}

// SubCSR is a sampled sub-graph in CSR form: row t lists the sampled
// in-neighbors (as input sub-IDs) of target t. Input sub-IDs index the
// gathered feature matrix; targets are its first NumTargets rows.
type SubCSR struct {
	NumTargets int
	NumNodes   int
	RowPtr     []int64
	Col        []int32
	// DupCount[i] is how many times input node i appears in Col (produced
	// by AppendUnique); it enables the native backward optimization.
	DupCount []int32
	// EdgeW optionally carries one static weight per sampled edge (the
	// paper's edge features e_{s,t}); SpMM multiplies messages by it and
	// AggMean normalizes by the weight sum instead of the degree. Static
	// weights receive no gradient (learned attention uses the separate
	// edge-weight variable instead).
	EdgeW []float32
}

// NumEdges returns the sampled edge count.
func (g *SubCSR) NumEdges() int64 { return g.RowPtr[g.NumTargets] }

// Validate checks structural invariants; helpful when constructing
// sub-graphs by hand.
func (g *SubCSR) Validate() error {
	if len(g.RowPtr) != g.NumTargets+1 {
		return fmt.Errorf("spops: rowptr len %d for %d targets", len(g.RowPtr), g.NumTargets)
	}
	if g.NumTargets > g.NumNodes {
		return fmt.Errorf("spops: %d targets > %d nodes", g.NumTargets, g.NumNodes)
	}
	for i := 0; i < g.NumTargets; i++ {
		if g.RowPtr[i] > g.RowPtr[i+1] {
			return fmt.Errorf("spops: rowptr not monotone at %d", i)
		}
	}
	if g.RowPtr[g.NumTargets] != int64(len(g.Col)) {
		return fmt.Errorf("spops: rowptr end %d != edges %d", g.RowPtr[g.NumTargets], len(g.Col))
	}
	if g.EdgeW != nil && len(g.EdgeW) != len(g.Col) {
		return fmt.Errorf("spops: %d edge weights for %d edges", len(g.EdgeW), len(g.Col))
	}
	for _, c := range g.Col {
		if c < 0 || int(c) >= g.NumNodes {
			return fmt.Errorf("spops: col %d out of range [0,%d)", c, g.NumNodes)
		}
	}
	return nil
}

// atomicFraction returns the fraction of backward scatter writes that need
// atomics under the duplicate-count optimization.
func (g *SubCSR) atomicFraction() float64 {
	e := g.NumEdges()
	if e == 0 {
		return 0
	}
	var atomic int64
	for _, c := range g.Col {
		if g.DupCount != nil && g.DupCount[c] > 1 {
			atomic++
		}
	}
	if g.DupCount == nil {
		return 1
	}
	return float64(atomic) / float64(e)
}

// chargeSpMMForward charges one g-SpMM forward pass of dimension d.
func chargeSpMMForward(dev *sim.Device, be Backend, g *SubCSR, d int) {
	if dev == nil {
		return
	}
	e, tg := float64(g.NumEdges()), float64(g.NumTargets)
	dd := float64(d)
	switch be {
	case BackendPyG:
		// Gather messages to an [E x d] buffer, then reduce it.
		dev.Kernel(sim.KernelCost{RandBytes: e * dd * 4, StreamBytes: e*dd*4 + e*4, Tag: "spmm.gather"})
		dev.Kernel(sim.KernelCost{FLOPs: 2 * e * dd, StreamBytes: e*dd*4 + tg*dd*4, Tag: "spmm.reduce"})
	case BackendDGL:
		// DGL's g-SpMM forward adds an edge-data preparation pass (degree
		// norms / edge features are separate kernels in its message
		// passing pipeline) before the fused reduce.
		dev.Kernel(sim.KernelCost{StreamBytes: 2 * e * 4, Tag: "spmm.edgeprep"})
		dev.Kernel(sim.KernelCost{
			FLOPs: 2 * e * dd, RandBytes: e * dd * 4,
			StreamBytes: tg*dd*4 + e*4, Tag: "spmm.fwd",
		})
	default:
		// Fused CSR row kernel.
		dev.Kernel(sim.KernelCost{
			FLOPs: 2 * e * dd, RandBytes: e * dd * 4,
			StreamBytes: tg*dd*4 + e*4, Tag: "spmm.fwd",
		})
	}
}

// chargeSpMMBackwardDX charges the dX pass (transpose SpMM via scatter).
func chargeSpMMBackwardDX(dev *sim.Device, be Backend, g *SubCSR, d int) {
	if dev == nil {
		return
	}
	e, tg := float64(g.NumEdges()), float64(g.NumTargets)
	dd := float64(d)
	switch be {
	case BackendPyG:
		// Broadcast grad to [E x d], then scatter-add by column (atomic).
		dev.Kernel(sim.KernelCost{RandBytes: e * dd * 4, StreamBytes: e*dd*4 + tg*dd*4, Tag: "spmm.bwd.expand"})
		dev.Kernel(sim.KernelCost{RandBytes: 2 * e * dd * 4, StreamBytes: e * dd * 4, Tag: "spmm.bwd.scatter"})
	case BackendDGL:
		// Atomic add for every edge write: read-modify-write.
		dev.Kernel(sim.KernelCost{
			FLOPs: 2 * e * dd, RandBytes: 2 * e * dd * 4,
			StreamBytes: tg*dd*4 + e*4, Tag: "spmm.bwd",
		})
	default:
		// Native: atomics only where duplicate counts demand them.
		af := g.atomicFraction()
		dev.Kernel(sim.KernelCost{
			FLOPs: 2 * e * dd, RandBytes: (1 + af) * e * dd * 4,
			StreamBytes: tg*dd*4 + e*4, Tag: "spmm.bwd",
		})
	}
}

// chargeSDDMM charges a g-SDDMM of dimension d (edge scores or edge-weight
// gradients).
func chargeSDDMM(dev *sim.Device, g *SubCSR, d int) {
	if dev == nil {
		return
	}
	e := float64(g.NumEdges())
	dd := float64(d)
	dev.Kernel(sim.KernelCost{
		FLOPs: 2 * e * dd, RandBytes: 2 * e * dd * 4,
		StreamBytes: e * 4, Tag: "sddmm",
	})
}
