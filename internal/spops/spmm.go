package spops

import (
	"math"

	"wholegraph/internal/autograd"
	"wholegraph/internal/sim"
	"wholegraph/internal/tensor"
)

// Agg selects the aggregation of SpMM.
type Agg int

const (
	// AggSum sums neighbor messages.
	AggSum Agg = iota
	// AggMean averages them over each target's sampled degree.
	AggMean
)

// SpMM computes the message-passing aggregation
//
//	out[t] = norm_t * sum over edges e=(t<-s) of w_e * x[s]
//
// where norm_t is 1 (AggSum) or 1/deg(t) (AggMean) and w is an optional
// [E x 1] edge-weight variable (nil means all ones). Gradients flow to x
// and w. The real computation is performed by the selected backend
// (BackendPyG genuinely materializes the [E x d] message buffer); the cost
// of the forward and backward kernels is charged to dev (nil to skip).
func SpMM(dev *sim.Device, be Backend, g *SubCSR, x *autograd.Var, w *autograd.Var, agg Agg) *autograd.Var {
	d := x.Value.C
	if x.Value.R != g.NumNodes {
		panic("spops: feature rows != sub-graph nodes")
	}
	if w != nil && (w.Value.R != int(g.NumEdges()) || w.Value.C != 1) {
		panic("spops: edge weight shape mismatch")
	}

	tp := x.Tape()
	norm := tp.Scratch(g.NumTargets)
	spmmNorms(g, agg, norm)
	staticW := func(e int64) float32 {
		if g.EdgeW == nil {
			return 1
		}
		return g.EdgeW[e]
	}

	out := tp.NewTensor(g.NumTargets, d)
	var msgs *tensor.Dense
	if be == BackendPyG {
		msgs = tp.NewTensor(int(g.NumEdges()), d)
	}
	spmmRun(be, g, x.Value, w, norm, msgs, out)
	chargeSpMMForward(dev, be, g, d)
	if tp.Capturing() {
		// Replays re-read the block (same SubCSR pointer, fields rebuilt per
		// batch): norms, shapes and charges all track the live topology. The
		// backward closure below shares the norm variable, so a growth
		// reallocation here is visible to it too.
		reads := []*tensor.Dense{x.Value}
		if w != nil {
			reads = append(reads, w.Value)
		}
		writes := []*tensor.Dense{out}
		if msgs != nil {
			writes = append(writes, msgs)
		}
		tp.CaptureRW("spmm", func() {
			if g.NumTargets > len(norm) {
				norm = make([]float32, g.NumTargets)
			}
			spmmNorms(g, agg, norm)
			out.Resize(g.NumTargets, d)
			if msgs != nil {
				msgs.Resize(int(g.NumEdges()), d)
			}
			spmmRun(be, g, x.Value, w, norm, msgs, out)
			chargeSpMMForward(dev, be, g, d)
		}, reads, writes)
	}

	inputs := []*autograd.Var{x}
	if w != nil {
		inputs = append(inputs, w)
	}
	return tp.Op(out, inputs, func(v *autograd.Var) {
		if x.NeedsGrad() {
			gx := tp.NewTensor(g.NumNodes, d)
			for t := 0; t < g.NumTargets; t++ {
				gr := v.Grad.Row(t)
				for e := g.RowPtr[t]; e < g.RowPtr[t+1]; e++ {
					we := norm[t] * staticW(e)
					if w != nil {
						we *= w.Value.V[e]
					}
					dst := gx.Row(int(g.Col[e]))
					for j, gv := range gr {
						dst[j] += we * gv
					}
				}
			}
			chargeSpMMBackwardDX(dev, be, g, d)
			x.AccumGrad(gx)
		}
		if w != nil && w.NeedsGrad() {
			gw := tp.NewTensor(int(g.NumEdges()), 1)
			for t := 0; t < g.NumTargets; t++ {
				gr := v.Grad.Row(t)
				for e := g.RowPtr[t]; e < g.RowPtr[t+1]; e++ {
					src := x.Value.Row(int(g.Col[e]))
					var dot float32
					for j, gv := range gr {
						dot += gv * src[j]
					}
					gw.V[e] = norm[t] * staticW(e) * dot
				}
			}
			chargeSDDMM(dev, g, d)
			w.AccumGrad(gw)
		}
	})
}

// spmmNorms fills norm[t] for every target of g: 1 for AggSum, the inverse
// (weighted) degree for AggMean. norm must have length >= g.NumTargets.
func spmmNorms(g *SubCSR, agg Agg, norm []float32) {
	for t := 0; t < g.NumTargets; t++ {
		norm[t] = 1
		if agg != AggMean {
			continue
		}
		if g.EdgeW != nil {
			// Weighted mean: normalize by the static weight sum.
			var sum float32
			for e := g.RowPtr[t]; e < g.RowPtr[t+1]; e++ {
				sum += g.EdgeW[e]
			}
			if sum != 0 {
				norm[t] = 1 / sum
			}
		} else if deg := g.RowPtr[t+1] - g.RowPtr[t]; deg > 0 {
			norm[t] = 1 / float32(deg)
		}
	}
}

// spmmRun executes the aggregation math of SpMM into out (which must be
// zeroed, [g.NumTargets x d]): the fused CSR kernel by default, or the
// materialized per-edge message path for BackendPyG (msgs non-nil,
// [E x d]). All graph fields are read live so a captured closure can re-run
// it against a rebuilt block.
func spmmRun(be Backend, g *SubCSR, xVal *tensor.Dense, w *autograd.Var, norm []float32, msgs, out *tensor.Dense) {
	staticW := func(e int64) float32 {
		if g.EdgeW == nil {
			return 1
		}
		return g.EdgeW[e]
	}
	switch be {
	case BackendPyG:
		// Materialize per-edge messages, then segment-reduce.
		for t := 0; t < g.NumTargets; t++ {
			for e := g.RowPtr[t]; e < g.RowPtr[t+1]; e++ {
				src := xVal.Row(int(g.Col[e]))
				dst := msgs.Row(int(e))
				we := staticW(e)
				if w != nil {
					we *= w.Value.V[e]
				}
				for j, v := range src {
					dst[j] = we * v
				}
			}
		}
		for t := 0; t < g.NumTargets; t++ {
			or := out.Row(t)
			for e := g.RowPtr[t]; e < g.RowPtr[t+1]; e++ {
				mr := msgs.Row(int(e))
				for j, v := range mr {
					or[j] += v
				}
			}
			for j := range or {
				or[j] *= norm[t]
			}
		}
	default:
		// Fused CSR kernel.
		for t := 0; t < g.NumTargets; t++ {
			or := out.Row(t)
			for e := g.RowPtr[t]; e < g.RowPtr[t+1]; e++ {
				src := xVal.Row(int(g.Col[e]))
				we := norm[t] * staticW(e)
				if w != nil {
					we *= w.Value.V[e]
				}
				for j, v := range src {
					or[j] += we * v
				}
			}
		}
	}
}

// EdgeScore computes per-edge attention inputs score_e = sl[t] + sr[s] for
// every sampled edge e=(t<-s), a g-SDDMM pattern. sl is [NumTargets x 1],
// sr is [NumNodes x 1]; the result is [E x 1].
func EdgeScore(dev *sim.Device, g *SubCSR, sl, sr *autograd.Var) *autograd.Var {
	if sl.Value.R != g.NumTargets || sl.Value.C != 1 {
		panic("spops: sl shape mismatch")
	}
	if sr.Value.R != g.NumNodes || sr.Value.C != 1 {
		panic("spops: sr shape mismatch")
	}
	tp := sl.Tape()
	out := tp.NewTensor(int(g.NumEdges()), 1)
	score := func() {
		for t := 0; t < g.NumTargets; t++ {
			for e := g.RowPtr[t]; e < g.RowPtr[t+1]; e++ {
				out.V[e] = sl.Value.V[t] + sr.Value.V[g.Col[e]]
			}
		}
	}
	score()
	chargeSDDMM(dev, g, 1)
	if tp.Capturing() {
		tp.CaptureRW("sddmm", func() {
			out.Resize(int(g.NumEdges()), 1)
			score()
			chargeSDDMM(dev, g, 1)
		}, []*tensor.Dense{sl.Value, sr.Value}, []*tensor.Dense{out})
	}
	return tp.Op(out, []*autograd.Var{sl, sr}, func(v *autograd.Var) {
		if sl.NeedsGrad() {
			gl := tp.NewTensor(g.NumTargets, 1)
			for t := 0; t < g.NumTargets; t++ {
				for e := g.RowPtr[t]; e < g.RowPtr[t+1]; e++ {
					gl.V[t] += v.Grad.V[e]
				}
			}
			sl.AccumGrad(gl)
		}
		if sr.NeedsGrad() {
			gr := tp.NewTensor(g.NumNodes, 1)
			for t := 0; t < g.NumTargets; t++ {
				for e := g.RowPtr[t]; e < g.RowPtr[t+1]; e++ {
					gr.V[g.Col[e]] += v.Grad.V[e]
				}
			}
			sr.AccumGrad(gr)
		}
		chargeSDDMM(dev, g, 1)
	})
}

// EdgeLeakyReLU applies LeakyReLU elementwise to an edge vector.
func EdgeLeakyReLU(dev *sim.Device, x *autograd.Var, slope float32) *autograd.Var {
	tp := x.Tape()
	out := tp.NewTensor(x.Value.R, x.Value.C)
	lrelu := func() {
		for i, v := range x.Value.V {
			out.V[i] = tensor.LeakyReLU(v, slope)
		}
		if dev != nil {
			dev.Kernel(sim.KernelCost{StreamBytes: float64(8 * len(x.Value.V)), Tag: "leakyrelu"})
		}
	}
	lrelu()
	if tp.Capturing() {
		tp.CaptureRW("leakyrelu", func() {
			out.Resize(x.Value.R, x.Value.C)
			lrelu()
		}, []*tensor.Dense{x.Value}, []*tensor.Dense{out})
	}
	return tp.Op(out, []*autograd.Var{x}, func(v *autograd.Var) {
		gx := tp.NewTensor(x.Value.R, x.Value.C)
		for i, xv := range x.Value.V {
			gx.V[i] = tensor.LeakyReLUGrad(xv, slope) * v.Grad.V[i]
		}
		x.AccumGrad(gx)
	})
}

// SegmentSoftmax normalizes the edge scores of each target's segment to a
// probability distribution (the attention softmax of GAT).
func SegmentSoftmax(dev *sim.Device, g *SubCSR, e *autograd.Var) *autograd.Var {
	if e.Value.R != int(g.NumEdges()) || e.Value.C != 1 {
		panic("spops: segment softmax shape mismatch")
	}
	tp := e.Tape()
	out := tp.NewTensor(e.Value.R, 1)
	softmax := func() {
		for t := 0; t < g.NumTargets; t++ {
			lo, hi := g.RowPtr[t], g.RowPtr[t+1]
			if lo == hi {
				continue
			}
			maxv := e.Value.V[lo]
			for i := lo + 1; i < hi; i++ {
				if e.Value.V[i] > maxv {
					maxv = e.Value.V[i]
				}
			}
			var sum float64
			for i := lo; i < hi; i++ {
				sum += math.Exp(float64(e.Value.V[i] - maxv))
			}
			for i := lo; i < hi; i++ {
				out.V[i] = float32(math.Exp(float64(e.Value.V[i]-maxv)) / sum)
			}
		}
		if dev != nil {
			dev.Kernel(sim.KernelCost{StreamBytes: float64(4 * 4 * e.Value.R), Tag: "segsoftmax"})
		}
	}
	softmax()
	if tp.Capturing() {
		tp.CaptureRW("segsoftmax", func() {
			// Resize zeroes out, so edges of empty segments stay zero.
			out.Resize(e.Value.R, 1)
			softmax()
		}, []*tensor.Dense{e.Value}, []*tensor.Dense{out})
	}
	return tp.Op(out, []*autograd.Var{e}, func(v *autograd.Var) {
		ge := tp.NewTensor(e.Value.R, 1)
		for t := 0; t < g.NumTargets; t++ {
			lo, hi := g.RowPtr[t], g.RowPtr[t+1]
			var dot float64
			for i := lo; i < hi; i++ {
				dot += float64(out.V[i]) * float64(v.Grad.V[i])
			}
			for i := lo; i < hi; i++ {
				ge.V[i] = out.V[i] * (v.Grad.V[i] - float32(dot))
			}
		}
		e.AccumGrad(ge)
	})
}
