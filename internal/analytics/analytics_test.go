package analytics

import (
	"math"
	"testing"

	"wholegraph/internal/core"
	"wholegraph/internal/dataset"
	"wholegraph/internal/graph"
	"wholegraph/internal/sim"
)

func setup(t *testing.T) (*sim.Machine, *core.Store) {
	t.Helper()
	m := sim.NewMachine(sim.DGXA100(1))
	ds, err := dataset.Generate(dataset.OgbnProducts.Scaled(0.0005))
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewStore(m, 0, ds)
	if err != nil {
		t.Fatal(err)
	}
	m.Reset()
	return m, s
}

// hostPageRank is the single-threaded reference implementation.
func hostPageRank(g *graph.CSR, d, tol float64, maxIter int) []float64 {
	n := g.N
	cur := make([]float64, n)
	next := make([]float64, n)
	for i := range cur {
		cur[i] = 1 / float64(n)
	}
	for it := 0; it < maxIter; it++ {
		var dangling float64
		for v := int64(0); v < n; v++ {
			if g.Degree(v) == 0 {
				dangling += cur[v]
			}
		}
		base := (1-d)/float64(n) + d*dangling/float64(n)
		var delta float64
		for v := int64(0); v < n; v++ {
			var sum float64
			for _, w := range g.Neighbors(v) {
				if deg := g.Degree(w); deg > 0 {
					sum += cur[w] / float64(deg)
				}
			}
			next[v] = base + d*sum
			delta += math.Abs(next[v] - cur[v])
		}
		cur, next = next, cur
		if delta < tol {
			break
		}
	}
	return cur
}

func TestPageRankMatchesHostReference(t *testing.T) {
	m, s := setup(t)
	res, err := PageRank(s.PG, 0.85, 1e-9, 50)
	if err != nil {
		t.Fatal(err)
	}
	want := hostPageRank(s.DS.Graph, 0.85, 1e-9, 50)
	var sum float64
	for v := range res.Rank {
		sum += res.Rank[v]
		// float32 shared state vs float64 reference: allow small error.
		if math.Abs(res.Rank[v]-want[v]) > 1e-4*math.Max(1e-3, want[v]) {
			t.Fatalf("rank[%d] = %g, reference %g", v, res.Rank[v], want[v])
		}
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Errorf("ranks sum to %g, want 1", sum)
	}
	if res.Iterations == 0 || res.Time <= 0 {
		t.Errorf("stats missing: %+v iterations/time", res)
	}
	if m.MaxTime() == 0 {
		t.Error("pagerank charged nothing")
	}
}

func TestPageRankHubsRankHigher(t *testing.T) {
	_, s := setup(t)
	res, err := PageRank(s.PG, 0.85, 1e-8, 50)
	if err != nil {
		t.Fatal(err)
	}
	g := s.DS.Graph
	// The highest-degree node should outrank the median-degree node.
	var hub, lo int64
	for v := int64(0); v < g.N; v++ {
		if g.Degree(v) > g.Degree(hub) {
			hub = v
		}
		if g.Degree(v) == 1 {
			lo = v
		}
	}
	if res.Rank[hub] <= res.Rank[lo] {
		t.Errorf("hub (deg %d, rank %g) should outrank leaf (deg %d, rank %g)",
			g.Degree(hub), res.Rank[hub], g.Degree(lo), res.Rank[lo])
	}
}

func TestPageRankRejectsBadDamping(t *testing.T) {
	_, s := setup(t)
	if _, err := PageRank(s.PG, 1.5, 1e-6, 10); err == nil {
		t.Error("damping 1.5 accepted")
	}
	if _, err := PageRank(s.PG, 0, 1e-6, 10); err == nil {
		t.Error("damping 0 accepted")
	}
}

// hostComponents is a union-find reference.
func hostComponents(g *graph.CSR) []int64 {
	parent := make([]int64, g.N)
	for i := range parent {
		parent[i] = int64(i)
	}
	var find func(int64) int64
	find = func(x int64) int64 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for v := int64(0); v < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			a, b := find(v), find(w)
			if a < b {
				parent[b] = a
			} else if b < a {
				parent[a] = b
			}
		}
	}
	out := make([]int64, g.N)
	for v := int64(0); v < g.N; v++ {
		out[v] = find(v)
	}
	return out
}

func TestConnectedComponentsMatchesUnionFind(t *testing.T) {
	m, s := setup(t)
	res, err := ConnectedComponents(s.PG, 200)
	if err != nil {
		t.Fatal(err)
	}
	want := hostComponents(s.DS.Graph)
	distinct := map[int64]bool{}
	for v := range res.Label {
		if res.Label[v] != want[v] {
			t.Fatalf("label[%d] = %d, reference %d", v, res.Label[v], want[v])
		}
		distinct[res.Label[v]] = true
	}
	if res.Components != len(distinct) {
		t.Errorf("component count %d != distinct labels %d", res.Components, len(distinct))
	}
	if res.Iterations == 0 || res.Time <= 0 {
		t.Errorf("stats missing: %+v", res)
	}
	if m.MaxTime() == 0 {
		t.Error("cc charged nothing")
	}
}

func TestConnectedComponentsConverges(t *testing.T) {
	_, s := setup(t)
	a, err := ConnectedComponents(s.PG, 200)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ConnectedComponents(s.PG, 200)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Label {
		if a.Label[v] != b.Label[v] {
			t.Fatal("label propagation not deterministic")
		}
	}
}
