// Package analytics implements classic sparse graph algorithms over the
// multi-GPU shared-memory store, validating the paper's closing claim that
// "considering the multi-GPU platform as a distributed shared memory
// architecture is also appropriate for other sparse graph computing
// patterns" (§I). Each rank iterates over its own node partition and reads
// neighbor state directly from the other GPUs' memory through peer access,
// with per-iteration barriers — the same pattern as GNN message passing,
// minus the neural network.
package analytics

import (
	"fmt"
	"math"

	"wholegraph/internal/graph"
	"wholegraph/internal/sim"
	"wholegraph/internal/wholemem"
)

// PageRankResult holds the converged ranks and run statistics.
type PageRankResult struct {
	// Rank[v] is node v's PageRank (original ID order); ranks sum to 1.
	Rank []float64
	// Iterations until the L1 delta fell below the tolerance.
	Iterations int
	// Time is the virtual seconds the computation took.
	Time float64
}

// PageRank runs power iteration with damping d over the partitioned graph
// until the L1 change falls below tol (or maxIter). Dangling mass is
// redistributed uniformly. Ranks live in two ping-pong shared tables; each
// rank processes its own nodes, pulling the previous ranks of in-neighbors
// — here approximated by out-neighbors since the stored graphs are
// undirected (every edge appears in both directions).
func PageRank(pg *graph.Partitioned, d float64, tol float64, maxIter int) (*PageRankResult, error) {
	if d <= 0 || d >= 1 {
		return nil, fmt.Errorf("analytics: damping %g outside (0,1)", d)
	}
	if pg.PagedTopo() != nil {
		return nil, fmt.Errorf("analytics: PageRank sweeps whole edge shards and requires a materialized column array (not the paged topology store)")
	}
	comm := pg.Comm
	devs := comm.Devs
	n := pg.N
	start := machineTime(devs)

	sizes := make([]int64, comm.Size())
	for r := range sizes {
		sizes[r] = pg.LocalCount(r)
	}
	cur := wholemem.AllocSharded[float32](comm, sizes)
	next := wholemem.AllocSharded[float32](comm, sizes)
	for i := int64(0); i < n; i++ {
		cur.Set(i, float32(1/float64(n)))
	}

	// contrib[v] = rank[v]/outdeg[v], precomputed per iteration.
	res := &PageRankResult{}
	for it := 0; it < maxIter; it++ {
		// Dangling mass (degree-0 nodes) redistributes uniformly.
		var dangling float64
		for r := 0; r < comm.Size(); r++ {
			rp := pg.RowPtr.Shard(r)
			shard := cur.Shard(r)
			for li := range shard {
				if rp[li+1] == rp[li] {
					dangling += float64(shard[li])
				}
			}
		}
		base := (1-d)/float64(n) + d*dangling/float64(n)

		// Jacobi iteration: every rank reads the frozen cur table and
		// writes only its own shard of next, so the ranks run on real
		// goroutines; per-rank deltas are summed in rank order after the
		// join for a deterministic reduction.
		deltas := make([]float64, len(devs))
		sim.RunParallel(len(devs), func(r int) {
			dev := devs[r]
			rp := pg.RowPtr.Shard(r)
			col := pg.Col.Shard(r)
			out := next.Shard(r)
			in := cur.Shard(r)
			var remoteElems, localElems int64
			for li := range out {
				var sum float64
				for e := rp[li]; e < rp[li+1]; e++ {
					g := graph.GlobalID(col[e])
					// Pull the neighbor's contribution: its current rank
					// divided by its degree.
					nr := float64(cur.Shard(g.Rank())[g.Local()])
					deg := pg.RowPtr.Shard(g.Rank())[g.Local()+1] - pg.RowPtr.Shard(g.Rank())[g.Local()]
					if deg > 0 {
						sum += nr / float64(deg)
					}
					if g.Rank() == r {
						localElems += 3 // rank + two rowptr entries
					} else {
						remoteElems += 3
					}
				}
				v := base + d*sum
				out[li] = float32(v)
				deltas[r] += math.Abs(v - float64(in[li]))
			}
			// One pull kernel per rank per iteration: neighbor ranks and
			// degrees are 4-8 byte scattered reads.
			cur.ChargeAccess(dev, localElems, remoteElems, 8, "pagerank")
		})
		var delta float64
		for _, dr := range deltas {
			delta += dr
		}
		sim.Barrier(devs)
		cur, next = next, cur
		res.Iterations = it + 1
		if delta < tol {
			break
		}
	}

	res.Rank = make([]float64, n)
	for v := int64(0); v < n; v++ {
		gid := pg.Owner[v]
		res.Rank[v] = float64(cur.Shard(gid.Rank())[gid.Local()])
	}
	res.Time = machineTime(devs) - start
	return res, nil
}

// CCResult holds connected-component labels and run statistics.
type CCResult struct {
	// Label[v] is the smallest original node ID in v's component.
	Label      []int64
	Components int
	Iterations int
	Time       float64
}

// ConnectedComponents runs label propagation (each node repeatedly adopts
// the minimum label in its closed neighborhood) over the shared store until
// a fixpoint. On the undirected evaluation graphs this converges to the
// connected components.
//
// Unlike PageRank's Jacobi sweep, this propagation is deliberately
// Gauss-Seidel: a rank reads labels other ranks may have lowered earlier in
// the same iteration, which roughly halves the iterations to the fixpoint.
// That makes the per-rank loop order-dependent, so it stays serial — the
// deterministic-parallel ownership model (internal/sim/exec.go) requires
// shared state to be frozen between barriers.
func ConnectedComponents(pg *graph.Partitioned, maxIter int) (*CCResult, error) {
	if pg.PagedTopo() != nil {
		return nil, fmt.Errorf("analytics: connected components sweeps whole edge shards and requires a materialized column array (not the paged topology store)")
	}
	comm := pg.Comm
	devs := comm.Devs
	n := pg.N
	start := machineTime(devs)

	sizes := make([]int64, comm.Size())
	for r := range sizes {
		sizes[r] = pg.LocalCount(r)
	}
	cur := wholemem.AllocSharded[int64](comm, sizes)
	for v := int64(0); v < n; v++ {
		gid := pg.Owner[v]
		cur.Shard(gid.Rank())[gid.Local()] = v
	}

	res := &CCResult{}
	for it := 0; it < maxIter; it++ {
		changed := false
		for r, dev := range devs {
			rp := pg.RowPtr.Shard(r)
			col := pg.Col.Shard(r)
			labels := cur.Shard(r)
			var remoteElems, localElems int64
			for li := range labels {
				best := labels[li]
				for e := rp[li]; e < rp[li+1]; e++ {
					g := graph.GlobalID(col[e])
					if l := cur.Shard(g.Rank())[g.Local()]; l < best {
						best = l
					}
					if g.Rank() == r {
						localElems++
					} else {
						remoteElems++
					}
				}
				if best < labels[li] {
					labels[li] = best
					changed = true
				}
			}
			cur.ChargeAccess(dev, localElems, remoteElems, 8, "cc")
		}
		sim.Barrier(devs)
		res.Iterations = it + 1
		if !changed {
			break
		}
	}

	res.Label = make([]int64, n)
	roots := map[int64]bool{}
	for v := int64(0); v < n; v++ {
		gid := pg.Owner[v]
		res.Label[v] = cur.Shard(gid.Rank())[gid.Local()]
		roots[res.Label[v]] = true
	}
	res.Components = len(roots)
	res.Time = machineTime(devs) - start
	return res, nil
}

func machineTime(devs []*sim.Device) float64 {
	t := 0.0
	for _, d := range devs {
		if d.Now() > t {
			t = d.Now()
		}
	}
	return t
}
