// Package cache implements a static hot-node feature cache, the
// "computation-aware caching" idea of PaGraph that the paper discusses in
// its related work (§V) and an extension point for WholeGraph: each GPU
// keeps copies of the most frequently sampled nodes' feature rows in its
// own HBM, so gathers for those rows skip NVLink entirely.
//
// The cache is static and degree-ordered: under neighbor sampling, a node's
// probability of appearing in a batch grows with its in-degree, so caching
// the highest-degree nodes maximizes the expected hit rate (PaGraph's exact
// policy). On the NVSwitch-connected DGX the paper targets, remote HBM is
// only ~2-5x slower than local for feature-sized rows, so caching is a
// modest win there — but the same store on PCIe-class hardware (or the
// pinned-host backing) benefits enormously, which the ablation shows.
package cache

import (
	"fmt"
	"sort"

	"wholegraph/internal/graph"
	"wholegraph/internal/sim"
)

// FeatureCache caches remote feature rows of a partitioned graph in one
// device's local memory.
type FeatureCache struct {
	PG  *graph.Partitioned
	Dev *sim.Device

	rows map[int64][]float32 // feature-row index -> cached copy
	// Hits and Misses count row lookups since construction.
	Hits, Misses int64
}

// NewDegreeCache builds a cache of the capacityRows highest-degree nodes
// (ties broken by node ID), copying their rows into the device's local
// memory and charging that one-time fill. Rows already local to the device
// are not cached (they are free anyway).
func NewDegreeCache(pg *graph.Partitioned, dev *sim.Device, capacityRows int) (*FeatureCache, error) {
	if pg.Feat == nil {
		return nil, fmt.Errorf("cache: graph has no features")
	}
	rank := pg.Comm.RankOfDevice(dev)
	if rank < 0 {
		return nil, fmt.Errorf("cache: device %d not in the graph's communicator", dev.ID)
	}
	c := &FeatureCache{PG: pg, Dev: dev, rows: make(map[int64][]float32, capacityRows)}

	// Order nodes by degree, hottest first.
	type nd struct {
		v   int64
		deg int64
	}
	nodes := make([]nd, pg.N)
	for v := int64(0); v < pg.N; v++ {
		nodes[v] = nd{v: v, deg: pg.Degree(pg.Owner[v])}
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].deg != nodes[j].deg {
			return nodes[i].deg > nodes[j].deg
		}
		return nodes[i].v < nodes[j].v
	})

	dim := pg.Dim
	var fill []int64
	for _, n := range nodes {
		if len(c.rows) >= capacityRows {
			break
		}
		gid := pg.Owner[n.v]
		if gid.Rank() == rank {
			continue // local rows need no cache
		}
		row := pg.FeatRow(gid)
		buf := make([]float32, dim)
		for j := 0; j < dim; j++ {
			buf[j] = pg.Feat.Get(row*int64(dim) + int64(j))
		}
		c.rows[row] = buf
		fill = append(fill, row)
	}
	// One-time fill: a bulk remote gather plus the local store.
	if len(fill) > 0 {
		dst := make([]float32, len(fill)*dim)
		pg.Feat.GatherRows(dev, fill, dim, dst, "cache.fill")
	}
	return c, nil
}

// Size returns the number of cached rows.
func (c *FeatureCache) Size() int { return len(c.rows) }

// Contains reports whether the given feature row is cached.
func (c *FeatureCache) Contains(row int64) bool {
	_, ok := c.rows[row]
	return ok
}

// HitRate returns the fraction of lookups served from the cache.
func (c *FeatureCache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// GatherRows gathers feature rows like Memory.GatherRows, serving cached
// rows from local memory and falling through to the shared table for the
// rest. One kernel is charged with the true local/remote split.
func (c *FeatureCache) GatherRows(rows []int64, dim int, dst []float32, tag string) float64 {
	if dim != c.PG.Dim {
		panic(fmt.Sprintf("cache: dim %d != feature dim %d", dim, c.PG.Dim))
	}
	if len(dst) < len(rows)*dim {
		panic("cache: dst too small")
	}
	rank := c.PG.Comm.RankOfDevice(c.Dev)
	feat := c.PG.Feat
	var localElems, remoteElems int64
	for i, row := range rows {
		out := dst[i*dim : (i+1)*dim]
		if buf, ok := c.rows[row]; ok {
			copy(out, buf)
			c.Hits++
			localElems += int64(dim)
			continue
		}
		r := feat.RankOf(row * int64(dim))
		off := row*int64(dim) - feat.ShardStart(r)
		copy(out, feat.Shard(r)[off:off+int64(dim)])
		if r == rank {
			c.Hits++ // local rows are as good as cached
			localElems += int64(dim)
		} else {
			c.Misses++
			remoteElems += int64(dim)
		}
	}
	return c.Dev.Kernel(sim.KernelCost{
		RandBytes:      float64(4 * localElems),
		RemoteBytes:    float64(4 * remoteElems),
		RemoteSegBytes: float64(4 * dim),
		StreamBytes:    float64(4 * len(rows) * dim),
		Tag:            tag,
	})
}

// MemoryBytes returns the device memory the cache occupies.
func (c *FeatureCache) MemoryBytes() int64 {
	return int64(len(c.rows)) * int64(c.PG.Dim) * 4
}
