// Package cache implements a static hot-node feature cache, the
// "computation-aware caching" idea of PaGraph that the paper discusses in
// its related work (§V) and an extension point for WholeGraph: each GPU
// keeps copies of the most frequently sampled nodes' feature rows in its
// own HBM, so gathers for those rows skip NVLink entirely.
//
// The cache is static and degree-ordered: under neighbor sampling, a node's
// probability of appearing in a batch grows with its in-degree, so caching
// the highest-degree nodes maximizes the expected hit rate (PaGraph's exact
// policy). On the NVSwitch-connected DGX the paper targets, remote HBM is
// only ~2-5x slower than local for feature-sized rows, so caching is a
// modest win there — but the same store on PCIe-class hardware (or the
// pinned-host backing) benefits enormously, which the ablation shows. Over
// the paged feature store (internal/featstore) the cache matters most: a
// row hit skips the store entirely, avoiding a possible Unified-Memory
// page fault.
package cache

import (
	"fmt"
	"math"
	"sort"

	"wholegraph/internal/graph"
	"wholegraph/internal/sim"
	"wholegraph/internal/unique"
)

// FeatureCache caches hot feature rows of a partitioned graph in one
// device's local memory, in front of whatever feature source backs the
// graph.
type FeatureCache struct {
	PG  *graph.Partitioned
	Dev *sim.Device

	src  graph.FeatureSource
	rows map[int64][]float32 // feature-row index -> cached copy
	// Hits and Misses count row lookups since construction.
	Hits, Misses int64

	// Delegation scratch for the unranked-source path, reused across
	// gathers (the cache belongs to one worker goroutine, like the
	// loader's slot ring).
	missRows []int64
	missIdx  []int
	missBuf  []float32
}

// degreeOrder returns node IDs sorted degree-descending, ties broken by
// ascending ID — the PaGraph fill order. Nodes and degrees both fit in 32
// bits for every graph the harness generates (papers100M at full scale is
// 1.1e8 nodes), so one unsigned key packs (^degree, node) and a single LSD
// radix sort replaces the old sort.Slice comparator: O(N) passes instead
// of O(N log N) comparisons, and the radix passes over uniform high bytes
// are skipped outright. The comparator path remains as the fallback for
// out-of-range inputs and as the reference the equivalence test pins.
func degreeOrder(pg *graph.Partitioned) []uint64 {
	if pg.N > math.MaxUint32 {
		return degreeOrderSlow(pg)
	}
	keys := make([]uint64, pg.N)
	buf := make([]uint64, pg.N)
	for v := int64(0); v < pg.N; v++ {
		deg := pg.Degree(pg.Owner[v])
		if deg > math.MaxUint32 {
			deg = math.MaxUint32
		}
		keys[v] = uint64(^uint32(deg))<<32 | uint64(uint32(v))
	}
	return unique.RadixSortUint64(keys, buf)
}

// degreeOrderSlow is the comparator-based ordering, kept as the oversized-
// graph fallback and the test oracle.
func degreeOrderSlow(pg *graph.Partitioned) []uint64 {
	type nd struct {
		v   int64
		deg int64
	}
	nodes := make([]nd, pg.N)
	for v := int64(0); v < pg.N; v++ {
		nodes[v] = nd{v: v, deg: pg.Degree(pg.Owner[v])}
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].deg != nodes[j].deg {
			return nodes[i].deg > nodes[j].deg
		}
		return nodes[i].v < nodes[j].v
	})
	keys := make([]uint64, pg.N)
	for i, n := range nodes {
		deg := n.deg
		if deg > math.MaxUint32 {
			deg = math.MaxUint32
		}
		keys[i] = uint64(^uint32(deg))<<32 | uint64(uint32(n.v))
	}
	return keys
}

// NewDegreeCache builds a cache of the capacityRows highest-degree nodes
// (ties broken by node ID), copying their rows into the device's local
// memory and charging that one-time fill. Rows homed on the device are not
// cached when the source is ranked (they are free anyway); over an
// unranked source (the paged store) every row is cacheable, since no row
// is local.
func NewDegreeCache(pg *graph.Partitioned, dev *sim.Device, capacityRows int) (*FeatureCache, error) {
	src := pg.Features()
	if src == nil {
		return nil, fmt.Errorf("cache: graph has no features")
	}
	rank := pg.Comm.RankOfDevice(dev)
	if rank < 0 {
		return nil, fmt.Errorf("cache: device %d not in the graph's communicator", dev.ID)
	}
	c := &FeatureCache{PG: pg, Dev: dev, src: src, rows: make(map[int64][]float32, capacityRows)}
	_, isRanked := src.(graph.RankedFeatures)

	dim := pg.Dim
	var fill []int64
	for _, key := range degreeOrder(pg) {
		if len(c.rows) >= capacityRows {
			break
		}
		v := int64(uint32(key))
		gid := pg.Owner[v]
		if isRanked && gid.Rank() == rank {
			continue // local rows need no cache
		}
		row := pg.FeatRow(gid)
		buf := make([]float32, dim)
		src.ReadRow(row, buf)
		c.rows[row] = buf
		fill = append(fill, row)
	}
	// One-time fill: a bulk gather through the source (remote HBM for the
	// slab, page-ins for the paged store) plus the local store.
	if len(fill) > 0 {
		dst := make([]float32, len(fill)*dim)
		src.GatherRows(dev, fill, dim, dst, "cache.fill")
	}
	return c, nil
}

// Size returns the number of cached rows.
func (c *FeatureCache) Size() int { return len(c.rows) }

// Contains reports whether the given feature row is cached.
func (c *FeatureCache) Contains(row int64) bool {
	_, ok := c.rows[row]
	return ok
}

// HitRate returns the fraction of lookups served from the cache.
func (c *FeatureCache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// GatherRows gathers feature rows like FeatureSource.GatherRows, serving
// cached rows from local memory and falling through to the backing source
// for the rest.
//
// Over a ranked source (the wholemem slab) one kernel is charged with the
// true local/remote split — exactly the historical cost. Over an unranked
// source the cache copies its hits locally and delegates the residual rows
// to the source in one gather, which applies its own (page-fault-aware)
// pricing.
func (c *FeatureCache) GatherRows(rows []int64, dim int, dst []float32, tag string) float64 {
	if dim != c.PG.Dim {
		panic(fmt.Sprintf("cache: dim %d != feature dim %d", dim, c.PG.Dim))
	}
	if len(dst) < len(rows)*dim {
		panic("cache: dst too small")
	}
	if ranked, ok := c.src.(graph.RankedFeatures); ok {
		return c.gatherRanked(ranked, rows, dim, dst, tag)
	}
	return c.gatherDelegate(rows, dim, dst, tag)
}

func (c *FeatureCache) gatherRanked(src graph.RankedFeatures, rows []int64, dim int, dst []float32, tag string) float64 {
	rank := c.PG.Comm.RankOfDevice(c.Dev)
	var localElems, remoteElems int64
	for i, row := range rows {
		out := dst[i*dim : (i+1)*dim]
		if buf, ok := c.rows[row]; ok {
			copy(out, buf)
			c.Hits++
			localElems += int64(dim)
			continue
		}
		src.ReadRow(row, out)
		if src.HomeRank(row) == rank {
			c.Hits++ // local rows are as good as cached
			localElems += int64(dim)
		} else {
			c.Misses++
			remoteElems += int64(dim)
		}
	}
	return c.Dev.Kernel(sim.KernelCost{
		RandBytes:      float64(4 * localElems),
		RemoteBytes:    float64(4 * remoteElems),
		RemoteSegBytes: float64(4 * dim),
		StreamBytes:    float64(4 * len(rows) * dim),
		Tag:            tag,
	})
}

func (c *FeatureCache) gatherDelegate(rows []int64, dim int, dst []float32, tag string) float64 {
	c.missRows = c.missRows[:0]
	c.missIdx = c.missIdx[:0]
	var localElems int64
	for i, row := range rows {
		if buf, ok := c.rows[row]; ok {
			copy(dst[i*dim:(i+1)*dim], buf)
			c.Hits++
			localElems += int64(dim)
			continue
		}
		c.Misses++
		c.missRows = append(c.missRows, row)
		c.missIdx = append(c.missIdx, i)
	}
	var total float64
	if len(c.missRows) > 0 {
		need := len(c.missRows) * dim
		if cap(c.missBuf) < need {
			c.missBuf = make([]float32, need)
		}
		c.missBuf = c.missBuf[:need]
		total += c.src.GatherRows(c.Dev, c.missRows, dim, c.missBuf, tag)
		for k, i := range c.missIdx {
			copy(dst[i*dim:(i+1)*dim], c.missBuf[k*dim:(k+1)*dim])
		}
	}
	if localElems > 0 {
		// The cache-served rows: one local HBM read/write pass.
		total += c.Dev.Kernel(sim.KernelCost{
			RandBytes:   float64(4 * localElems),
			StreamBytes: float64(4 * localElems),
			Tag:         tag,
		})
	}
	return total
}

// MemoryBytes returns the device memory the cache occupies.
func (c *FeatureCache) MemoryBytes() int64 {
	return int64(len(c.rows)) * int64(c.PG.Dim) * 4
}
