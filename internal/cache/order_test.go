package cache

import (
	"fmt"
	"math/rand"
	"testing"

	"wholegraph/internal/graph"
	"wholegraph/internal/sim"
	"wholegraph/internal/wholemem"
)

// randPartitioned builds a partitioned graph over one simulated node with a
// skewed random degree distribution (many ties, a few hubs) — the shape the
// degree ordering has to break ties on.
func randPartitioned(tb testing.TB, n int64, rng *rand.Rand) *graph.Partitioned {
	tb.Helper()
	deg := make([]int64, n)
	var m int64
	for v := range deg {
		d := int64(rng.Intn(4)) // heavy tie pressure
		if rng.Intn(64) == 0 {
			d = int64(16 + rng.Intn(100)) // occasional hub
		}
		deg[v] = d
		m += d
	}
	csr := &graph.CSR{N: n, RowPtr: make([]int64, n+1), Col: make([]int64, m)}
	for v := int64(0); v < n; v++ {
		csr.RowPtr[v+1] = csr.RowPtr[v] + deg[v]
	}
	for i := range csr.Col {
		csr.Col[i] = rng.Int63n(n)
	}
	mach := sim.NewMachine(sim.DGXA100(1))
	comm, err := wholemem.NewComm(mach.NodeDevs(0))
	if err != nil {
		tb.Fatal(err)
	}
	pg, err := graph.Partition(csr, nil, 0, comm)
	if err != nil {
		tb.Fatal(err)
	}
	return pg
}

// TestDegreeOrderMatchesComparator pins the radix ordering to the
// comparator-based oracle: identical key sequence, so identical cache fill
// order — the satellite-1 equivalence guarantee.
func TestDegreeOrderMatchesComparator(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int64{1, 2, 63, 500, 4096} {
		pg := randPartitioned(t, n, rng)
		fast := degreeOrder(pg)
		slow := degreeOrderSlow(pg)
		if len(fast) != len(slow) {
			t.Fatalf("n=%d: length %d != %d", n, len(fast), len(slow))
		}
		for i := range fast {
			if fast[i] != slow[i] {
				t.Fatalf("n=%d: order diverges at %d: %x != %x", n, i, fast[i], slow[i])
			}
		}
		// Spot-check the invariant directly: degree descending, node
		// ascending within a degree.
		prevDeg := int64(1) << 40
		prevNode := int64(-1)
		for _, key := range fast {
			d := int64(^uint32(key >> 32))
			v := int64(uint32(key))
			if d > prevDeg || (d == prevDeg && v <= prevNode) {
				t.Fatalf("n=%d: (deg=%d,node=%d) after (deg=%d,node=%d)", n, d, v, prevDeg, prevNode)
			}
			if d != pg.Degree(pg.Owner[v]) {
				t.Fatalf("n=%d: key degree %d != graph degree", n, d)
			}
			prevDeg, prevNode = d, v
		}
	}
}

// BenchmarkDegreeOrder pins the satellite-1 speedup: the radix ordering
// against the sort.Slice comparator it replaced.
func BenchmarkDegreeOrder(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	pg := randPartitioned(b, 200_000, rng)
	for _, bench := range []struct {
		name string
		fn   func(*graph.Partitioned) []uint64
	}{{"radix", degreeOrder}, {"sortslice", degreeOrderSlow}} {
		b.Run(fmt.Sprintf("%s/n=200k", bench.name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bench.fn(pg)
			}
		})
	}
}
