package cache_test

import (
	"math/rand"
	"testing"

	"wholegraph/internal/cache"
	"wholegraph/internal/core"
	"wholegraph/internal/dataset"
	"wholegraph/internal/graph"
	"wholegraph/internal/sim"
)

func setup(t *testing.T) (*sim.Machine, *core.Store) {
	t.Helper()
	m := sim.NewMachine(sim.DGXA100(1))
	ds, err := dataset.Generate(dataset.OgbnProducts.Scaled(0.001))
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewStore(m, 0, ds)
	if err != nil {
		t.Fatal(err)
	}
	m.Reset()
	return m, s
}

func TestCacheReturnsCorrectData(t *testing.T) {
	m, s := setup(t)
	c, err := cache.NewDegreeCache(s.PG, m.Devs[0], 200)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() == 0 || c.Size() > 200 {
		t.Fatalf("cache size %d", c.Size())
	}
	dim := s.PG.Dim
	rng := rand.New(rand.NewSource(1))
	rows := make([]int64, 300)
	for i := range rows {
		v := rng.Int63n(s.DS.Graph.N)
		rows[i] = s.PG.FeatRow(s.PG.Owner[v])
	}
	viaCache := make([]float32, len(rows)*dim)
	direct := make([]float32, len(rows)*dim)
	c.GatherRows(rows, dim, viaCache, "c")
	s.PG.Feat.GatherRows(m.Devs[0], rows, dim, direct, "d")
	for i := range direct {
		if viaCache[i] != direct[i] {
			t.Fatalf("cache corrupted data at %d", i)
		}
	}
	if c.Hits == 0 || c.Misses == 0 {
		t.Errorf("expected both hits and misses: %d/%d", c.Hits, c.Misses)
	}
	if c.MemoryBytes() != int64(c.Size()*dim*4) {
		t.Error("memory accounting wrong")
	}
}

func TestCacheSkipsLocalRows(t *testing.T) {
	m, s := setup(t)
	dev := m.Devs[2]
	c, err := cache.NewDegreeCache(s.PG, dev, 100)
	if err != nil {
		t.Fatal(err)
	}
	rank := s.PG.Comm.RankOfDevice(dev)
	dim := int64(s.PG.Dim)
	for row := int64(0); row < s.PG.Feat.Len()/dim; row++ {
		if c.Contains(row) && s.PG.Feat.RankOf(row*dim) == rank {
			t.Fatalf("cached a local row %d", row)
		}
	}
}

func TestCacheReducesGatherTime(t *testing.T) {
	m, s := setup(t)
	// Cache a third of the graph's nodes (the hottest ones).
	c, err := cache.NewDegreeCache(s.PG, m.Devs[0], int(s.DS.Graph.N/3))
	if err != nil {
		t.Fatal(err)
	}
	// A sampling-shaped workload: rows drawn proportional to degree, which
	// is what neighbor sampling produces. Draw endpoints of random edges.
	g := s.DS.Graph
	rng := rand.New(rand.NewSource(2))
	rows := make([]int64, 4096)
	for i := range rows {
		e := rng.Int63n(g.NumEdges())
		v := g.Col[e]
		rows[i] = s.PG.FeatRow(s.PG.Owner[v])
	}
	dim := s.PG.Dim
	m.Reset()
	tCached := c.GatherRows(rows, dim, make([]float32, len(rows)*dim), "c")
	m.Reset()
	tDirect := s.PG.Feat.GatherRows(m.Devs[0], rows, dim, make([]float32, len(rows)*dim), "d")
	if tCached >= tDirect {
		t.Errorf("cached gather (%g) not faster than direct (%g), hit rate %.2f",
			tCached, tDirect, c.HitRate())
	}
	if c.HitRate() < 0.5 {
		t.Errorf("degree cache hit rate %.2f too low for a degree-weighted workload", c.HitRate())
	}
}

// TestCacheHitAccounting pins the lookup-accounting rule: a cached remote
// row is a hit, an uncached row on the device's own shard is a hit too
// (local memory is as good as cached), and only an uncached remote row is
// a miss.
func TestCacheHitAccounting(t *testing.T) {
	m, s := setup(t)
	dev := m.Devs[0]
	c, err := cache.NewDegreeCache(s.PG, dev, 50)
	if err != nil {
		t.Fatal(err)
	}
	if c.Hits != 0 || c.Misses != 0 {
		t.Fatalf("fill perturbed the counters: %d/%d", c.Hits, c.Misses)
	}

	// One row of each class. Cached rows are remote by construction.
	rank := s.PG.Comm.RankOfDevice(dev)
	dim := int64(s.PG.Dim)
	cached, local, remote := int64(-1), int64(-1), int64(-1)
	for row := int64(0); row < s.PG.Feat.Len()/dim; row++ {
		switch {
		case c.Contains(row):
			if cached < 0 {
				cached = row
			}
		case s.PG.Feat.RankOf(row*dim) == rank:
			if local < 0 {
				local = row
			}
		default:
			if remote < 0 {
				remote = row
			}
		}
	}
	if cached < 0 || local < 0 || remote < 0 {
		t.Fatalf("row classes not all present: cached %d, local %d, remote %d",
			cached, local, remote)
	}

	rows := []int64{cached, local, remote}
	dst := make([]float32, len(rows)*int(dim))
	c.GatherRows(rows, int(dim), dst, "acct")
	if c.Hits != 2 || c.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", c.Hits, c.Misses)
	}
	if want := 2.0 / 3.0; c.HitRate() != want {
		t.Fatalf("HitRate = %v, want %v", c.HitRate(), want)
	}

	// Counters accumulate across calls; the rate is stable for the same mix.
	c.GatherRows(rows, int(dim), dst, "acct")
	if c.Hits != 4 || c.Misses != 2 {
		t.Fatalf("after second gather: hits/misses = %d/%d, want 4/2", c.Hits, c.Misses)
	}
	if want := 2.0 / 3.0; c.HitRate() != want {
		t.Fatalf("HitRate after second gather = %v, want %v", c.HitRate(), want)
	}

	// A panicking call (dim mismatch, dst too small) rejects its arguments
	// before touching any accounting.
	assertPanic(t, func() { c.GatherRows(rows, int(dim)+1, make([]float32, 3*(int(dim)+1)), "x") })
	assertPanic(t, func() { c.GatherRows(rows, int(dim), dst[:len(dst)-1], "x") })
	if c.Hits != 4 || c.Misses != 2 {
		t.Fatalf("panicking calls perturbed the counters: %d/%d", c.Hits, c.Misses)
	}
}

func TestCacheErrors(t *testing.T) {
	m, s := setup(t)
	s2 := *s
	pg := *s.PG
	pg.Feat = nil
	pg.SetFeatures(nil)
	s2.PG = &pg
	if _, err := cache.NewDegreeCache(s2.PG, m.Devs[0], 10); err == nil {
		t.Error("featureless graph accepted")
	}
	m2 := sim.NewMachine(sim.DGXA100(2))
	if _, err := cache.NewDegreeCache(s.PG, m2.NodeDevs(1)[0], 10); err == nil {
		t.Error("foreign device accepted")
	}
}

func TestCachePanicsOnBadArgs(t *testing.T) {
	m, s := setup(t)
	c, err := cache.NewDegreeCache(s.PG, m.Devs[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	assertPanic(t, func() { c.GatherRows([]int64{0}, 7, make([]float32, 7), "x") })
	assertPanic(t, func() { c.GatherRows([]int64{0, 1}, s.PG.Dim, make([]float32, 1), "x") })
	_ = graph.GlobalID(0)
}

func assertPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
