package unique

import (
	"wholegraph/internal/graph"
	"wholegraph/internal/sim"
)

// AppendUniqueSort is the sort-based deduplication the paper's hash-table
// design replaces ("we adopt the hash table method instead of the sort
// method used in other frameworks", §III-C2). It produces a Result with
// identical semantics — targets first in order, each new neighbor once,
// consistent sub-graph IDs, duplicate counts — but neighbor IDs are
// assigned in sorted-value order rather than bucket order, and the cost is
// a radix sort of the whole list plus two scans instead of hash probes.
//
// It exists as the ablation baseline for the AppendUnique benchmark; both
// implementations are interchangeable in the loader. The sort is a genuine
// LSD radix sort over (GlobalID, position) records with a ping-pong buffer
// (see radixSortPairs), matching the 8-pass GPU radix model the cost charge
// below assumes.
func AppendUniqueSort(dev *sim.Device, targets, neighbors []graph.GlobalID) *Result {
	res := &Result{
		Unique:        make([]graph.GlobalID, len(targets), len(targets)+len(neighbors)),
		NumTargets:    len(targets),
		NeighborSubID: make([]int32, len(neighbors)),
	}
	targetID := make(map[graph.GlobalID]int32, len(targets))
	for i, g := range targets {
		if _, dup := targetID[g]; dup {
			panic("unique: duplicate target")
		}
		targetID[g] = int32(i)
		res.Unique[i] = g
	}

	// Radix-sort (value, original position) pairs; LSD stability supplies
	// the tie-break by position.
	pairs := make([]sortPair, len(neighbors))
	buf := make([]sortPair, len(neighbors))
	for i, g := range neighbors {
		pairs[i] = sortPair{key: g, pos: int32(i)}
	}
	pairs = radixSortPairs(pairs, buf)

	// Scan runs: first occurrence of each value not already a target gets
	// the next ID after the target prefix.
	next := int32(len(targets))
	for i := 0; i < len(pairs); {
		j := i
		key := pairs[i].key
		for j < len(pairs) && pairs[j].key == key {
			j++
		}
		id, isTarget := targetID[key]
		if !isTarget {
			id = next
			next++
			res.Unique = append(res.Unique, key)
		}
		for k := i; k < j; k++ {
			res.NeighborSubID[pairs[k].pos] = id
		}
		i = j
	}
	res.DupCount = make([]int32, len(res.Unique))
	for _, id := range res.NeighborSubID {
		res.DupCount[id]++
	}

	if dev != nil {
		n := float64(len(neighbors))
		// LSD radix over 8-byte keys + 4-byte positions: 8 passes, each
		// reading and writing 12 bytes per element, plus the output scans.
		dev.Kernel(sim.KernelCost{
			StreamBytes: 8*2*12*n + 2*12*n,
			Tag:         "appendunique.sort",
		})
	}
	return res
}
