package unique

import (
	"sort"

	"wholegraph/internal/graph"
	"wholegraph/internal/sim"
)

// AppendUniqueSort is the sort-based deduplication the paper's hash-table
// design replaces ("we adopt the hash table method instead of the sort
// method used in other frameworks", §III-C2). It produces a Result with
// identical semantics — targets first in order, each new neighbor once,
// consistent sub-graph IDs, duplicate counts — but neighbor IDs are
// assigned in sorted-value order rather than bucket order, and the cost is
// a radix sort of the whole list plus two scans instead of hash probes.
//
// It exists as the ablation baseline for the AppendUnique benchmark; both
// implementations are interchangeable in the loader.
func AppendUniqueSort(dev *sim.Device, targets, neighbors []graph.GlobalID) *Result {
	res := &Result{
		Unique:        make([]graph.GlobalID, len(targets), len(targets)+len(neighbors)),
		NumTargets:    len(targets),
		NeighborSubID: make([]int32, len(neighbors)),
	}
	targetID := make(map[graph.GlobalID]int32, len(targets))
	for i, g := range targets {
		if _, dup := targetID[g]; dup {
			panic("unique: duplicate target")
		}
		targetID[g] = int32(i)
		res.Unique[i] = g
	}

	// Sort (value, original position) pairs, as a GPU radix sort over
	// packed keys would.
	type kv struct {
		key graph.GlobalID
		pos int32
	}
	pairs := make([]kv, len(neighbors))
	for i, g := range neighbors {
		pairs[i] = kv{key: g, pos: int32(i)}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].key != pairs[j].key {
			return pairs[i].key < pairs[j].key
		}
		return pairs[i].pos < pairs[j].pos
	})

	// Scan runs: first occurrence of each value not already a target gets
	// the next ID after the target prefix.
	next := int32(len(targets))
	for i := 0; i < len(pairs); {
		j := i
		key := pairs[i].key
		for j < len(pairs) && pairs[j].key == key {
			j++
		}
		id, isTarget := targetID[key]
		if !isTarget {
			id = next
			next++
			res.Unique = append(res.Unique, key)
		}
		for k := i; k < j; k++ {
			res.NeighborSubID[pairs[k].pos] = id
		}
		i = j
	}
	res.DupCount = make([]int32, len(res.Unique))
	for _, id := range res.NeighborSubID {
		res.DupCount[id]++
	}

	if dev != nil {
		n := float64(len(neighbors))
		// LSD radix over 8-byte keys + 4-byte positions: 8 passes, each
		// reading and writing 12 bytes per element, plus the output scans.
		dev.Kernel(sim.KernelCost{
			StreamBytes: 8*2*12*n + 2*12*n,
			Tag:         "appendunique.sort",
		})
	}
	return res
}
