package unique

import (
	"math/rand"
	"sort"
	"testing"

	"wholegraph/internal/graph"
)

// refSortPairs is the comparison-sort reference the radix sort replaced:
// order by key, ties by original position.
func refSortPairs(pairs []sortPair) []sortPair {
	out := append([]sortPair(nil), pairs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].key != out[j].key {
			return out[i].key < out[j].key
		}
		return out[i].pos < out[j].pos
	})
	return out
}

func checkRadixMatchesRef(t *testing.T, name string, keys []graph.GlobalID) {
	t.Helper()
	pairs := make([]sortPair, len(keys))
	for i, k := range keys {
		pairs[i] = sortPair{key: k, pos: int32(i)}
	}
	want := refSortPairs(pairs)
	got := radixSortPairs(pairs, make([]sortPair, len(pairs)))
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d = %+v, want %+v", name, i, got[i], want[i])
		}
	}
}

func TestRadixSortPairsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(2000)
		keys := make([]graph.GlobalID, n)
		for i := range keys {
			// Full 64-bit range, including realistic rank<<48 layouts.
			keys[i] = graph.GlobalID(rng.Uint64())
		}
		checkRadixMatchesRef(t, "random", keys)
	}
}

func TestRadixSortPairsAdversarial(t *testing.T) {
	rng := rand.New(rand.NewSource(8))

	allEqual := make([]graph.GlobalID, 777)
	for i := range allEqual {
		allEqual[i] = 0xdeadbeef
	}
	checkRadixMatchesRef(t, "all-equal", allEqual)

	sorted := make([]graph.GlobalID, 1000)
	for i := range sorted {
		sorted[i] = graph.GlobalID(i * 3)
	}
	checkRadixMatchesRef(t, "already-sorted", sorted)

	reversed := make([]graph.GlobalID, 1000)
	for i := range reversed {
		reversed[i] = graph.GlobalID(3000 - i*3)
	}
	checkRadixMatchesRef(t, "reverse-sorted", reversed)

	// Keys differing only in the top byte: every low pass is skipped as
	// uniform, the final pass does all the work.
	highBit := make([]graph.GlobalID, 512)
	for i := range highBit {
		highBit[i] = graph.GlobalID(uint64(rng.Intn(200)) << 56)
	}
	checkRadixMatchesRef(t, "high-bit-only", highBit)

	// Keys differing only in the bottom byte.
	lowBit := make([]graph.GlobalID, 512)
	for i := range lowBit {
		lowBit[i] = 0xaa00 | graph.GlobalID(rng.Intn(256))
	}
	checkRadixMatchesRef(t, "low-bit-only", lowBit)

	checkRadixMatchesRef(t, "empty", nil)
	checkRadixMatchesRef(t, "single", []graph.GlobalID{42})
}

// TestRadixSortPairsStability verifies that equal keys keep their input
// (position) order without pos ever being compared: duplicate-heavy input
// where the tie-break is the whole point.
func TestRadixSortPairsStability(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	keys := make([]graph.GlobalID, 4096)
	for i := range keys {
		keys[i] = graph.GlobalID(rng.Intn(16)) // ~256 duplicates per key
	}
	pairs := make([]sortPair, len(keys))
	for i, k := range keys {
		pairs[i] = sortPair{key: k, pos: int32(i)}
	}
	got := radixSortPairs(pairs, make([]sortPair, len(pairs)))
	for i := 1; i < len(got); i++ {
		if got[i-1].key == got[i].key && got[i-1].pos >= got[i].pos {
			t.Fatalf("stability violated at %d: pos %d before %d for key %v",
				i, got[i-1].pos, got[i].pos, got[i].key)
		}
	}
}

// TestDeduperReuseMatchesFresh verifies that a warm Deduper (including one
// shrinking from a larger earlier input) produces byte-identical results to
// the one-shot AppendUnique, across random workloads.
func TestDeduperReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ded := NewDeduper()
	for trial := 0; trial < 40; trial++ {
		nt := 1 + rng.Intn(300)
		nn := rng.Intn(5000)
		targets := make([]graph.GlobalID, nt)
		seen := map[graph.GlobalID]bool{}
		for i := range targets {
			for {
				g := graph.MakeGlobalID(rng.Intn(8), int64(rng.Intn(100000)))
				if !seen[g] {
					seen[g] = true
					targets[i] = g
					break
				}
			}
		}
		neighbors := make([]graph.GlobalID, nn)
		for i := range neighbors {
			neighbors[i] = graph.MakeGlobalID(rng.Intn(8), int64(rng.Intn(20000)))
		}
		fresh := AppendUnique(nil, targets, neighbors)
		warm := ded.AppendUnique(nil, targets, neighbors)
		if len(fresh.Unique) != len(warm.Unique) || fresh.NumTargets != warm.NumTargets {
			t.Fatalf("trial %d: shape mismatch: %d/%d unique, %d/%d targets",
				trial, len(fresh.Unique), len(warm.Unique), fresh.NumTargets, warm.NumTargets)
		}
		for i := range fresh.Unique {
			if fresh.Unique[i] != warm.Unique[i] {
				t.Fatalf("trial %d: Unique[%d] = %v, want %v", trial, i, warm.Unique[i], fresh.Unique[i])
			}
		}
		for i := range fresh.NeighborSubID {
			if fresh.NeighborSubID[i] != warm.NeighborSubID[i] {
				t.Fatalf("trial %d: NeighborSubID[%d] = %d, want %d", trial, i, warm.NeighborSubID[i], fresh.NeighborSubID[i])
			}
		}
		for i := range fresh.DupCount {
			if fresh.DupCount[i] != warm.DupCount[i] {
				t.Fatalf("trial %d: DupCount[%d] = %d, want %d", trial, i, warm.DupCount[i], fresh.DupCount[i])
			}
		}
	}
}

// TestDeduperSteadyStateAllocs locks in the zero-allocation steady state of
// a warm Deduper.
func TestDeduperSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	targets := make([]graph.GlobalID, 256)
	for i := range targets {
		targets[i] = graph.MakeGlobalID(i%8, int64(50000+i))
	}
	neighbors := make([]graph.GlobalID, 256*30)
	for i := range neighbors {
		neighbors[i] = graph.MakeGlobalID(rng.Intn(8), int64(rng.Intn(10000)))
	}
	ded := NewDeduper()
	ded.AppendUnique(nil, targets, neighbors) // warm up
	if n := testing.AllocsPerRun(20, func() {
		ded.AppendUnique(nil, targets, neighbors)
	}); n > 0 {
		t.Fatalf("warm Deduper allocated %.1f times per run, want 0", n)
	}
}

func TestRadixSortUint64(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := map[string][]uint64{
		"empty":     {},
		"single":    {42},
		"sorted":    {1, 2, 3, 4, 5},
		"reverse":   {5, 4, 3, 2, 1},
		"dups":      {7, 7, 7, 1, 1, 9},
		"extremes":  {0, ^uint64(0), 1, ^uint64(0) - 1, 0},
		"highbytes": {1 << 56, 1 << 48, 1 << 40, 1, 0},
	}
	random := make([]uint64, 5000)
	for i := range random {
		random[i] = rng.Uint64()
	}
	cases["random"] = random
	// Uniform high bytes exercise the skipped-pass fast path.
	lowOnly := make([]uint64, 1000)
	for i := range lowOnly {
		lowOnly[i] = uint64(rng.Intn(1 << 16))
	}
	cases["lowonly"] = lowOnly
	for name, keys := range cases {
		in := append([]uint64(nil), keys...)
		want := append([]uint64(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := RadixSortUint64(in, make([]uint64, len(in)))
		if len(got) != len(want) {
			t.Fatalf("%s: length %d, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: element %d = %d, want %d", name, i, got[i], want[i])
			}
		}
	}
}

func TestRadixSortUint64PanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched buffer length accepted")
		}
	}()
	RadixSortUint64(make([]uint64, 3), make([]uint64, 2))
}
