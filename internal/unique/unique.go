// Package unique implements the AppendUnique op of §III-C2: it appends
// sampled neighbor nodes to the target-node list while removing duplicates,
// producing the contiguous sub-graph IDs that the gathered feature matrix
// and the CSR sub-graph are indexed by.
//
// Like the paper (which adapts the warpcore GPU hash table), duplicates are
// eliminated with an open-addressing hash table rather than a sort: target
// nodes are inserted first with their list index as value, neighbors are
// inserted with value -1, then the -1 entries are counted per bucket, an
// exclusive prefix sum over the bucket counts yields each bucket's first
// neighbor ID, and neighbor IDs are assigned bucket-contiguously after the
// targets. The op also emits the per-node duplicate count that the g-SpMM
// backward uses to replace atomic adds with plain stores (§III-C4).
package unique

import (
	"fmt"

	"wholegraph/internal/graph"
	"wholegraph/internal/sim"
)

// bucketSlots is the number of hash-table slots per bucket for the
// prefix-sum ID assignment (warpcore uses warp-sized groups; the exact
// value only shifts constant factors).
const bucketSlots = 128

const emptyKey = ^uint64(0)

// Result of an AppendUnique op.
type Result struct {
	// Unique lists the sub-graph's nodes: the targets first, in their
	// original order, then each distinct new neighbor exactly once.
	Unique []graph.GlobalID
	// NumTargets is the length of the target prefix of Unique.
	NumTargets int
	// NeighborSubID maps each input neighbor position to its sub-graph ID
	// (an index into Unique).
	NeighborSubID []int32
	// DupCount[id] is how many times Unique[id] was sampled as a neighbor;
	// nodes sampled exactly once (or targets never sampled) allow the
	// atomic-free backward store optimization.
	DupCount []int32
}

// table is the GPU-style open-addressing hash table.
type table struct {
	keys   []uint64
	vals   []int32
	mask   uint64
	probes int64
}

// tableSize returns the table size for the given element capacity: the
// smallest power of two >= 2*capacity, floored at one bucket. The size is a
// pure function of capacity so a Deduper reusing old backing arrays builds
// a table identical to a fresh one — table size determines bucket layout
// and therefore the sub-graph ID order, which must not depend on reuse.
func tableSize(capacity int) int {
	size := 1
	for size < 2*capacity {
		size <<= 1
	}
	if size < bucketSlots {
		size = bucketSlots
	}
	return size
}

func hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	return x ^ (x >> 33)
}

// insert returns the slot of key, inserting it with value v if absent.
// found reports whether the key was already present.
func (t *table) insert(key uint64, v int32) (slot int, found bool) {
	i := hash64(key) & t.mask
	for {
		t.probes++
		switch t.keys[i] {
		case key:
			return int(i), true
		case emptyKey:
			t.keys[i] = key
			t.vals[i] = v
			return int(i), false
		}
		i = (i + 1) & t.mask
	}
}

// Deduper is a reusable AppendUnique workspace: the hash table's key/value
// arrays, the per-position slot record, the bucket counters and the Result
// buffers all persist across calls, so the steady-state sampling loop pays
// no allocation for deduplication after warm-up. A Deduper is owned by one
// goroutine (one per training worker / inference rank under
// sim.RunParallel) and the Result it returns is only valid until its next
// AppendUnique call.
//
// Reuse is invisible in the output: the table size (and hence the
// bucket-contiguous ID order) is a pure function of the input sizes, keys
// are refilled with the empty marker before every call, and values are only
// ever read from slots whose key was inserted this call.
type Deduper struct {
	keys        []uint64
	vals        []int32
	slots       []int32
	bucketCount []int32
	res         Result
}

// NewDeduper returns an empty workspace; buffers grow on first use.
func NewDeduper() *Deduper { return &Deduper{} }

// AppendUnique deduplicates neighbors against the targets and each other.
// Target IDs must be distinct (training batches and per-hop frontiers are);
// it panics otherwise. dev may be nil to skip cost accounting. The result
// is overwritten by the next call on this Deduper.
func (d *Deduper) AppendUnique(dev *sim.Device, targets, neighbors []graph.GlobalID) *Result {
	size := tableSize(len(targets) + len(neighbors))
	if cap(d.keys) < size {
		d.keys = make([]uint64, size)
		d.vals = make([]int32, size)
	}
	t := &table{keys: d.keys[:size], vals: d.vals[:size], mask: uint64(size - 1)}
	for i := range t.keys {
		t.keys[i] = emptyKey
	}

	total := len(targets) + len(neighbors)
	res := &d.res
	if cap(res.Unique) < total {
		res.Unique = make([]graph.GlobalID, total)
	}
	res.Unique = res.Unique[:len(targets)]
	res.NumTargets = len(targets)
	if cap(res.NeighborSubID) < len(neighbors) {
		res.NeighborSubID = make([]int32, len(neighbors))
	}
	res.NeighborSubID = res.NeighborSubID[:len(neighbors)]

	// Phase 1: insert targets with their list index as value.
	for i, g := range targets {
		if _, found := t.insert(uint64(g), int32(i)); found {
			panic(fmt.Sprintf("unique: duplicate target %v at position %d", g, i))
		}
		res.Unique[i] = g
	}

	// Phase 2: insert neighbors with value -1; remember each input
	// position's slot for the final ID lookup.
	if cap(d.slots) < len(neighbors) {
		d.slots = make([]int32, len(neighbors))
	}
	slots := d.slots[:len(neighbors)]
	for i, g := range neighbors {
		slot, _ := t.insert(uint64(g), -1)
		slots[i] = int32(slot)
	}

	// Phase 3: per-bucket count of -1 values, exclusive prefix sum, then
	// assign neighbor IDs bucket-contiguously after the targets.
	nBuckets := len(t.keys) / bucketSlots
	if cap(d.bucketCount) < nBuckets {
		d.bucketCount = make([]int32, nBuckets)
	}
	bucketCount := d.bucketCount[:nBuckets]
	clear(bucketCount)
	for b := 0; b < nBuckets; b++ {
		for s := b * bucketSlots; s < (b+1)*bucketSlots; s++ {
			if t.keys[s] != emptyKey && t.vals[s] == -1 {
				bucketCount[b]++
			}
		}
	}
	var sum int32
	for b, c := range bucketCount {
		bucketCount[b] = sum
		sum += c
	}
	base := int32(len(targets))
	for b := 0; b < nBuckets; b++ {
		next := base + bucketCount[b]
		for s := b * bucketSlots; s < (b+1)*bucketSlots; s++ {
			if t.keys[s] != emptyKey && t.vals[s] == -1 {
				t.vals[s] = next
				next++
			}
		}
	}

	// Phase 4: emit unique neighbors and the per-position sub-graph IDs.
	res.Unique = res.Unique[:int(base)+int(sum)]
	if cap(res.DupCount) < len(res.Unique) {
		res.DupCount = make([]int32, len(res.Unique))
	}
	res.DupCount = res.DupCount[:len(res.Unique)]
	clear(res.DupCount)
	for s, k := range t.keys {
		if k != emptyKey && t.vals[s] >= base {
			res.Unique[t.vals[s]] = graph.GlobalID(k)
		}
	}
	for i := range neighbors {
		id := t.vals[slots[i]]
		res.NeighborSubID[i] = id
		res.DupCount[id]++
	}

	if dev != nil {
		// Hash probes are 16-byte random accesses (key+value); the bucket
		// count and prefix sum stream the table twice.
		dev.Kernel(sim.KernelCost{
			RandBytes:   float64(16 * t.probes),
			StreamBytes: float64(2 * 12 * int64(len(t.keys))),
			Tag:         "appendunique",
		})
	}
	return res
}

// AppendUnique is the one-shot form: a fresh workspace per call, returning
// a Result the caller owns. Steady-state loops should hold a Deduper
// instead.
func AppendUnique(dev *sim.Device, targets, neighbors []graph.GlobalID) *Result {
	var d Deduper
	return d.AppendUnique(dev, targets, neighbors)
}
