package unique

import "wholegraph/internal/graph"

// sortPair is a (neighbor ID, original position) record for the sort-based
// deduplication ablation.
type sortPair struct {
	key graph.GlobalID
	pos int32
}

// radixSortPairs sorts pairs by key ascending with an LSD radix sort over
// the eight key bytes, ping-ponging between pairs and buf (which must have
// the same length). It returns the slice holding the sorted data — after an
// odd number of passes that is buf, so callers must use the return value.
//
// Each counting pass is stable, so records with equal keys keep their input
// order; since callers build pairs in position order, LSD stability gives
// the (key, pos) tie-break for free without ever comparing pos. Passes
// whose byte is identical across every key (common: GlobalID's high rank
// bytes) are skipped, as a GPU radix sort would skip empty digit bins.
func radixSortPairs(pairs, buf []sortPair) []sortPair {
	if len(pairs) != len(buf) {
		panic("unique: radix buffers length mismatch")
	}
	if len(pairs) < 2 {
		return pairs
	}
	var count [256]int
	for shift := 0; shift < 64; shift += 8 {
		clear(count[:])
		for _, p := range pairs {
			count[byte(uint64(p.key)>>shift)]++
		}
		if count[byte(uint64(pairs[0].key)>>shift)] == len(pairs) {
			continue // uniform byte: pass is the identity
		}
		sum := 0
		for i, c := range count {
			count[i] = sum
			sum += c
		}
		for _, p := range pairs {
			b := byte(uint64(p.key) >> shift)
			buf[count[b]] = p
			count[b]++
		}
		pairs, buf = buf, pairs
	}
	return pairs
}
