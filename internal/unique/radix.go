package unique

import "wholegraph/internal/graph"

// sortPair is a (neighbor ID, original position) record for the sort-based
// deduplication ablation.
type sortPair struct {
	key graph.GlobalID
	pos int32
}

// radixSortPairs sorts pairs by key ascending with an LSD radix sort over
// the eight key bytes, ping-ponging between pairs and buf (which must have
// the same length). It returns the slice holding the sorted data — after an
// odd number of passes that is buf, so callers must use the return value.
//
// Each counting pass is stable, so records with equal keys keep their input
// order; since callers build pairs in position order, LSD stability gives
// the (key, pos) tie-break for free without ever comparing pos. Passes
// whose byte is identical across every key (common: GlobalID's high rank
// bytes) are skipped, as a GPU radix sort would skip empty digit bins.
// RadixSortUint64 sorts keys ascending with the same LSD radix sort,
// ping-ponging between keys and buf (same length required). It returns the
// slice holding the sorted data — after an odd number of passes that is
// buf, so callers must use the return value. Uniform-byte passes are
// skipped, so packed keys whose high bytes rarely vary (e.g. a clamped
// degree in the top word) sort in few passes.
//
// Exported for the degree-ordered cache fill (internal/cache), which packs
// (^degree, node) into one key so one unsigned sort yields
// degree-descending, node-ascending order without a comparator.
func RadixSortUint64(keys, buf []uint64) []uint64 {
	if len(keys) != len(buf) {
		panic("unique: radix buffers length mismatch")
	}
	if len(keys) < 2 {
		return keys
	}
	var count [256]int
	for shift := 0; shift < 64; shift += 8 {
		clear(count[:])
		for _, k := range keys {
			count[byte(k>>shift)]++
		}
		if count[byte(keys[0]>>shift)] == len(keys) {
			continue // uniform byte: pass is the identity
		}
		sum := 0
		for i, c := range count {
			count[i] = sum
			sum += c
		}
		for _, k := range keys {
			b := byte(k >> shift)
			buf[count[b]] = k
			count[b]++
		}
		keys, buf = buf, keys
	}
	return keys
}

func radixSortPairs(pairs, buf []sortPair) []sortPair {
	if len(pairs) != len(buf) {
		panic("unique: radix buffers length mismatch")
	}
	if len(pairs) < 2 {
		return pairs
	}
	var count [256]int
	for shift := 0; shift < 64; shift += 8 {
		clear(count[:])
		for _, p := range pairs {
			count[byte(uint64(p.key)>>shift)]++
		}
		if count[byte(uint64(pairs[0].key)>>shift)] == len(pairs) {
			continue // uniform byte: pass is the identity
		}
		sum := 0
		for i, c := range count {
			count[i] = sum
			sum += c
		}
		for _, p := range pairs {
			b := byte(uint64(p.key) >> shift)
			buf[count[b]] = p
			count[b]++
		}
		pairs, buf = buf, pairs
	}
	return pairs
}
