package unique

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wholegraph/internal/graph"
	"wholegraph/internal/sim"
)

// TestSortVariantSemanticsMatchHash checks that both implementations agree
// on everything observable: the unique *set*, the target prefix, the
// position->value mapping, and the duplicate-count multiset (IDs of new
// neighbors may be assigned in different orders).
func TestSortVariantSemanticsMatchHash(t *testing.T) {
	f := func(seed int64, nT, nN uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(500)
		targets := make([]graph.GlobalID, 1+int(nT)%40)
		for i := range targets {
			targets[i] = gid(perm[i]%8, int64(perm[i]))
		}
		neighbors := make([]graph.GlobalID, int(nN)%150)
		for i := range neighbors {
			v := rng.Intn(500)
			neighbors[i] = gid(v%8, int64(v))
		}
		h := AppendUnique(nil, targets, neighbors)
		s := AppendUniqueSort(nil, targets, neighbors)

		if len(h.Unique) != len(s.Unique) || h.NumTargets != s.NumTargets {
			return false
		}
		setH := map[graph.GlobalID]bool{}
		for _, u := range h.Unique {
			setH[u] = true
		}
		for _, u := range s.Unique {
			if !setH[u] {
				return false
			}
		}
		for i := range targets {
			if s.Unique[i] != targets[i] {
				return false
			}
		}
		// Position mapping points at the right values, and per-value
		// duplicate counts agree.
		countH := map[graph.GlobalID]int32{}
		for id, c := range h.DupCount {
			countH[h.Unique[id]] = c
		}
		for i, id := range s.NeighborSubID {
			if s.Unique[id] != neighbors[i] {
				return false
			}
		}
		for id, c := range s.DupCount {
			if countH[s.Unique[id]] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSortVariantPanicsOnDuplicateTargets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate targets did not panic")
		}
	}()
	AppendUniqueSort(nil, []graph.GlobalID{gid(0, 1), gid(0, 1)}, nil)
}

// TestHashCheaperThanSort verifies the paper's design rationale: the hash
// table beats the sort at realistic sampled-batch sizes on the simulated
// device.
func TestHashCheaperThanSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	targets := make([]graph.GlobalID, 512)
	for i := range targets {
		targets[i] = gid(i%8, int64(100000+i))
	}
	neighbors := make([]graph.GlobalID, 512*30)
	for i := range neighbors {
		v := rng.Intn(40000)
		neighbors[i] = gid(v%8, int64(v))
	}
	m := sim.NewMachine(sim.DGXA100(1))
	AppendUnique(m.Devs[0], targets, neighbors)
	AppendUniqueSort(m.Devs[1], targets, neighbors)
	if m.Devs[0].Now() >= m.Devs[1].Now() {
		t.Errorf("hash (%g) not cheaper than sort (%g)", m.Devs[0].Now(), m.Devs[1].Now())
	}
}
