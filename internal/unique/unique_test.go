package unique

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wholegraph/internal/graph"
	"wholegraph/internal/sim"
)

func gid(r int, l int64) graph.GlobalID { return graph.MakeGlobalID(r, l) }

func TestAppendUniqueSmall(t *testing.T) {
	// Mirrors Figure 5: targets T0..T3, neighbors with duplicates and
	// overlaps with targets.
	targets := []graph.GlobalID{gid(0, 0), gid(0, 1), gid(1, 0), gid(1, 1)}
	neighbors := []graph.GlobalID{
		gid(2, 5), gid(0, 1), gid(2, 5), gid(3, 7), gid(1, 0),
	}
	res := AppendUnique(nil, targets, neighbors)

	if res.NumTargets != 4 {
		t.Fatalf("NumTargets = %d", res.NumTargets)
	}
	// Targets keep their order at the front.
	for i, tg := range targets {
		if res.Unique[i] != tg {
			t.Fatalf("target %d moved: %v", i, res.Unique[i])
		}
	}
	// Unique contains exactly targets + {2:5, 3:7}.
	if len(res.Unique) != 6 {
		t.Fatalf("unique size = %d, want 6: %v", len(res.Unique), res.Unique)
	}
	// Neighbor positions map to consistent IDs.
	if res.NeighborSubID[0] != res.NeighborSubID[2] {
		t.Error("duplicate neighbor got two IDs")
	}
	if res.NeighborSubID[1] != 1 {
		t.Errorf("neighbor equal to target T1 should map to 1, got %d", res.NeighborSubID[1])
	}
	if res.NeighborSubID[4] != 2 {
		t.Errorf("neighbor equal to target T2 should map to 2, got %d", res.NeighborSubID[4])
	}
	for i, id := range res.NeighborSubID {
		if res.Unique[id] != neighbors[i] {
			t.Fatalf("NeighborSubID[%d] = %d points at %v, want %v", i, id, res.Unique[id], neighbors[i])
		}
	}
	// Duplicate counts: 2:5 sampled twice, targets 0:1 and 1:0 once each,
	// 3:7 once, others zero.
	wantDup := map[graph.GlobalID]int32{
		gid(2, 5): 2, gid(0, 1): 1, gid(1, 0): 1, gid(3, 7): 1,
	}
	for id, u := range res.Unique {
		if res.DupCount[id] != wantDup[u] {
			t.Errorf("dupcount[%v] = %d, want %d", u, res.DupCount[id], wantDup[u])
		}
	}
}

func TestAppendUniqueNoNeighbors(t *testing.T) {
	targets := []graph.GlobalID{gid(0, 3), gid(1, 4)}
	res := AppendUnique(nil, targets, nil)
	if len(res.Unique) != 2 || res.NumTargets != 2 {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestAppendUniquePanicsOnDuplicateTargets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate targets did not panic")
		}
	}()
	AppendUnique(nil, []graph.GlobalID{gid(0, 1), gid(0, 1)}, nil)
}

func TestAppendUniqueCharges(t *testing.T) {
	m := sim.NewMachine(sim.DGXA100(1))
	d := m.Devs[0]
	AppendUnique(d, []graph.GlobalID{gid(0, 0)}, []graph.GlobalID{gid(0, 1), gid(0, 1)})
	if d.Now() == 0 || d.Stats.Kernels != 1 {
		t.Errorf("charging wrong: now=%g kernels=%d", d.Now(), d.Stats.Kernels)
	}
}

func TestAppendUniqueProperties(t *testing.T) {
	f := func(seed int64, nT, nN uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nTargets := 1 + int(nT)%50
		nNeighbors := int(nN) % 200

		// Distinct targets via a permutation.
		perm := rng.Perm(1000)
		targets := make([]graph.GlobalID, nTargets)
		for i := range targets {
			targets[i] = gid(perm[i]%8, int64(perm[i]))
		}
		neighbors := make([]graph.GlobalID, nNeighbors)
		for i := range neighbors {
			v := rng.Intn(1000)
			neighbors[i] = gid(v%8, int64(v))
		}
		res := AppendUnique(nil, targets, neighbors)

		// (1) Unique really is duplicate-free.
		seen := map[graph.GlobalID]bool{}
		for _, u := range res.Unique {
			if seen[u] {
				return false
			}
			seen[u] = true
		}
		// (2) Targets form the prefix in order.
		for i, tg := range targets {
			if res.Unique[i] != tg {
				return false
			}
		}
		// (3) Every neighbor maps to its own value.
		for i, id := range res.NeighborSubID {
			if id < 0 || int(id) >= len(res.Unique) || res.Unique[id] != neighbors[i] {
				return false
			}
		}
		// (4) Every unique entry is a target or appeared as a neighbor.
		appeared := map[graph.GlobalID]bool{}
		for _, n := range neighbors {
			appeared[n] = true
		}
		for i, u := range res.Unique {
			if i >= res.NumTargets && !appeared[u] {
				return false
			}
		}
		// (5) Duplicate counts total the neighbor list length.
		var total int32
		for _, c := range res.DupCount {
			total += c
		}
		return int(total) == nNeighbors
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAppendUniqueLarge(t *testing.T) {
	// Forces multiple buckets and heavy duplication.
	rng := rand.New(rand.NewSource(42))
	targets := make([]graph.GlobalID, 500)
	for i := range targets {
		targets[i] = gid(i%8, int64(10000+i))
	}
	neighbors := make([]graph.GlobalID, 20000)
	for i := range neighbors {
		v := rng.Intn(2000)
		neighbors[i] = gid(v%8, int64(v))
	}
	res := AppendUnique(nil, targets, neighbors)
	if len(res.Unique) > 500+2000 {
		t.Fatalf("unique too large: %d", len(res.Unique))
	}
	for i, id := range res.NeighborSubID {
		if res.Unique[id] != neighbors[i] {
			t.Fatalf("mapping broken at %d", i)
		}
	}
}
