// Package sampling implements neighbor sampling: the paper's Algorithm 1
// (fully parallel random sampling without replacement via path doubling,
// §III-C1), the multi-GPU neighbor sampler built on it, and the CPU
// samplers used by the DGL-like and PyG-like baselines.
package sampling

import "math/rand"

// SampleWithoutReplacement draws m distinct values from [0, n) following the
// paper's Algorithm 1. The algorithm is data-parallel on a GPU; here the
// "parallel for" loops run sequentially but preserve the exact dataflow,
// including the pack-into-64-bit radix sort trick and the path-doubling
// collision resolution. When m >= n it returns the identity selection.
func SampleWithoutReplacement(m, n int, rng *rand.Rand) []int64 {
	var sc Scratch
	return sc.SampleWithoutReplacement(m, n, rng)
}

// resolveWithoutReplacement runs lines 3-22 of Algorithm 1 on a prepared
// random array r (r[i] uniform in [0, n-1-i]). Exposed separately so tests
// can drive it with a fixed r and compare against the sequential reference.
func resolveWithoutReplacement(r []int64, n int) []int64 {
	var sc Scratch
	return sc.resolve(r, n)
}

// parallelSort is the one-shot form of Scratch.parallelSort.
func parallelSort(r []int64) (s, p []int64) {
	var sc Scratch
	return sc.parallelSort(r)
}

// radixSort64 sorts keys ascending with an LSD byte radix sort, the
// standard GPU-friendly sort the paper uses.
func radixSort64(keys []uint64) {
	radixSort64Buf(keys, make([]uint64, len(keys)))
}

// radixSort64Buf is radixSort64 with a caller-supplied ping-pong buffer of
// the same length, so steady-state callers can reuse it across sorts.
func radixSort64Buf(keys, buf []uint64) {
	n := len(keys)
	if n < 2 {
		return
	}
	src, dst := keys, buf
	for shift := 0; shift < 64; shift += 8 {
		var counts [256]int
		for _, k := range src {
			counts[byte(k>>shift)]++
		}
		if counts[byte(src[0]>>shift)] == n {
			continue // all keys share this byte: pass is a no-op
		}
		sum := 0
		for i, c := range counts {
			counts[i] = sum
			sum += c
		}
		for _, k := range src {
			b := byte(k >> shift)
			dst[counts[b]] = k
			counts[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
}

// pathDoubling applies chain[i] = chain[chain[i]] until fixpoint, in
// O(log m) rounds as on the GPU.
func pathDoubling(chain []int64) {
	for {
		changed := false
		for i := range chain {
			c := chain[chain[i]]
			if c != chain[i] {
				chain[i] = c
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// sequentialSampleRef is the sequential robust Fisher-Yates reference that
// Algorithm 1 parallelizes: res[i] is the value at virtual position r[i],
// after which the value at position n-1-i moves into r[i]. Tests compare
// the parallel resolution against it on identical r arrays.
func sequentialSampleRef(r []int64, n int) []int64 {
	arr := make(map[int64]int64)
	get := func(pos int64) int64 {
		if v, ok := arr[pos]; ok {
			return v
		}
		return pos
	}
	res := make([]int64, len(r))
	for i, pos := range r {
		res[i] = get(pos)
		arr[pos] = get(int64(n - 1 - i))
	}
	return res
}
