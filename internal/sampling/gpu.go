package sampling

import (
	"math/rand"

	"wholegraph/internal/graph"
	"wholegraph/internal/sim"
	"wholegraph/internal/topostore"
)

// Neighborhood is one sampled layer over the partitioned graph: for target
// i, Neighbors[Offsets[i]:Offsets[i+1]] are its sampled neighbor GlobalIDs.
type Neighborhood struct {
	Targets   []graph.GlobalID
	Offsets   []int64
	Neighbors []graph.GlobalID
	// EdgePos holds, per sampled neighbor, the global element index of the
	// traversed edge in the store's Col/EdgeW arrays, so edge weights can
	// be gathered for the sampled edges.
	EdgePos []int64
}

// GPUSampler is the multi-GPU sampling op of §III-C1: it runs on one device
// and reads the graph structure (row pointers and sampled neighbor IDs)
// directly from whichever GPU owns them, over NVLink, inside the sampling
// kernel. Neighbor selection uses Algorithm 1.
//
// Concurrency contract: a sampler is owned by its device's goroutine
// (sim/exec.go ownership model). It mutates only its own Rng and charges
// only its own Dev; the partitioned graph is immutable after construction.
// Samplers on distinct devices may therefore run concurrently, and each
// worker's seeded Rng stream makes the sampled neighborhoods independent of
// how the workers are scheduled.
type GPUSampler struct {
	PG  *graph.Partitioned
	Dev *sim.Device
	Rng *rand.Rand

	// scratch backs Algorithm 1 across SampleLayer calls, one workspace per
	// sampler so concurrent samplers never share memory.
	scratch Scratch
}

// NewGPUSampler returns a sampler for pg running on dev with the given seed.
func NewGPUSampler(pg *graph.Partitioned, dev *sim.Device, seed int64) *GPUSampler {
	return &GPUSampler{PG: pg, Dev: dev, Rng: rand.New(rand.NewSource(seed))}
}

// SampleLayer samples up to fanout neighbors (without replacement) for each
// target and charges the device for one fused sampling kernel: row-pointer
// reads, the Algorithm 1 sort/chain work, and the sampled-neighbor ID reads
// with their true contiguity (full lists are read as one segment; sampled
// subsets as 8-byte random accesses).
func (s *GPUSampler) SampleLayer(targets []graph.GlobalID, fanout int) *Neighborhood {
	return s.SampleLayerInto(new(Neighborhood), targets, fanout)
}

// SampleLayerInto is SampleLayer writing into a caller-owned Neighborhood,
// truncating and reusing its slices: the steady-state loader keeps one
// Neighborhood per hop and pays no per-iteration allocation once they have
// grown to size.
func (s *GPUSampler) SampleLayerInto(nb *Neighborhood, targets []graph.GlobalID, fanout int) *Neighborhood {
	nb.Targets = targets
	if cap(nb.Offsets) < len(targets)+1 {
		nb.Offsets = make([]int64, 1, len(targets)+1)
	} else {
		nb.Offsets = nb.Offsets[:1]
	}
	nb.Offsets[0] = 0
	nb.Neighbors = nb.Neighbors[:0]
	nb.EdgePos = nb.EdgePos[:0]
	rank := s.PG.Comm.RankOfDevice(s.Dev)

	// Paged topology: neighbor IDs come from the page-aware accessor
	// instead of the materialized Col array. Decoded values are identical;
	// only the charging changes — pages are faulted to local HBM (one
	// copy-stream dance in Flush below), so every column read is a local
	// 8-byte random access instead of a possibly-remote NVLink read.
	var acc *topostore.Access
	if ts := s.PG.PagedTopo(); ts != nil {
		acc = ts.Begin(s.Dev)
	}
	neighbor := func(t graph.GlobalID, k int64) graph.GlobalID {
		e := s.PG.EdgeIndex(t, k)
		nb.EdgePos = append(nb.EdgePos, e)
		if acc != nil {
			return graph.GlobalID(acc.At(e))
		}
		return graph.GlobalID(s.PG.ColValue(e))
	}

	var localBytes, remoteBytes, remoteSegs, sortKeys float64
	for _, t := range targets {
		deg := s.PG.Degree(t)
		// Two rowptr reads (one 16-byte segment). RowPtr is resident
		// distributed shared memory in both modes.
		if t.Rank() == rank {
			localBytes += 16
		} else {
			remoteBytes += 16
			remoteSegs++
		}
		if deg <= int64(fanout) {
			// Take all neighbors: one contiguous read of the list.
			for k := int64(0); k < deg; k++ {
				nb.Neighbors = append(nb.Neighbors, neighbor(t, k))
			}
			if acc != nil || t.Rank() == rank {
				localBytes += float64(8 * deg)
			} else {
				remoteBytes += float64(8 * deg)
				remoteSegs++
			}
		} else {
			idx := s.scratch.SampleWithoutReplacement(fanout, int(deg), s.Rng)
			sortKeys += float64(fanout)
			for _, k := range idx {
				nb.Neighbors = append(nb.Neighbors, neighbor(t, k))
			}
			// Sampled positions are scattered inside the list: 8-byte
			// random accesses.
			if acc != nil || t.Rank() == rank {
				localBytes += float64(8 * fanout)
			} else {
				remoteBytes += float64(8 * fanout)
				remoteSegs += float64(fanout)
			}
		}
		nb.Offsets = append(nb.Offsets, int64(len(nb.Neighbors)))
	}

	// Fault the column pages this kernel needs (no-op when everything is
	// resident); the sampling kernel below starts after the migration.
	if acc != nil {
		acc.Flush("sample")
	}

	seg := 8.0
	if remoteSegs > 0 {
		seg = remoteBytes / remoteSegs
	}
	// Algorithm 1 work: the radix sort of packed 64-bit keys dominates;
	// 8 LSD passes read+write 8 bytes per key each.
	sortBytes := sortKeys * 8 * 2 * 8
	s.Dev.Kernel(sim.KernelCost{
		RandBytes:      localBytes,
		RemoteBytes:    remoteBytes,
		RemoteSegBytes: seg,
		StreamBytes:    sortBytes + float64(8*len(nb.Neighbors)),
		Tag:            "sample",
	})
	return nb
}

// Fanouts applies SampleLayer per hop: hop l samples fanouts[l] neighbors
// of the frontier produced by hop l-1. The caller is responsible for
// deduplication between hops (see the AppendUnique op).
func (s *GPUSampler) Fanouts(targets []graph.GlobalID, fanouts []int,
	frontier func(nb *Neighborhood) []graph.GlobalID) []*Neighborhood {
	out := make([]*Neighborhood, 0, len(fanouts))
	cur := targets
	for _, f := range fanouts {
		nb := s.SampleLayer(cur, f)
		out = append(out, nb)
		cur = frontier(nb)
	}
	return out
}
