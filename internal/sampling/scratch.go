package sampling

import "math/rand"

// Scratch is a reusable workspace for Algorithm 1: the random array, the
// collision chain, the packed radix-sort keys and their ping-pong buffer,
// and every intermediate of the parallel resolution persist across calls,
// so per-target sampling inside the steady-state loop allocates nothing
// after warm-up. A Scratch is owned by one goroutine (each GPUSampler
// embeds its own); the slice returned by SampleWithoutReplacement is valid
// only until the next call.
type Scratch struct {
	r, chain, s, p, q, last, res []int64
	keys, buf                    []uint64
}

// grow64 returns v resized to n elements, reallocating only when capacity
// is insufficient. Contents are unspecified: every caller fully overwrites.
func grow64(v []int64, n int) []int64 {
	if cap(v) < n {
		return make([]int64, n)
	}
	return v[:n]
}

func growU64(v []uint64, n int) []uint64 {
	if cap(v) < n {
		return make([]uint64, n)
	}
	return v[:n]
}

// SampleWithoutReplacement is the scratch-backed form of the package-level
// function: same algorithm, same rng consumption, same results, but all
// intermediates live in sc and the returned slice is overwritten by the
// next call.
func (sc *Scratch) SampleWithoutReplacement(m, n int, rng *rand.Rand) []int64 {
	if m >= n {
		sc.res = grow64(sc.res, n)
		for i := range sc.res {
			sc.res[i] = int64(i)
		}
		return sc.res
	}
	sc.r = grow64(sc.r, m)
	for i := 0; i < m; i++ {
		// random(N-1-i): uniform in [0, n-1-i].
		sc.r[i] = int64(rng.Intn(n - i))
	}
	return sc.resolve(sc.r, n)
}

// resolve runs lines 3-22 of Algorithm 1 on a prepared random array r
// (r[i] uniform in [0, n-1-i]) using the scratch's buffers.
func (sc *Scratch) resolve(r []int64, n int) []int64 {
	m := len(r)
	sc.chain = grow64(sc.chain, m)
	chain := sc.chain
	for i := range chain {
		chain[i] = int64(i)
	}

	// parallel_sort: pack value<<32|index into one 64-bit key and radix
	// sort, recovering both the sorted values s and original indices p.
	s, p := sc.parallelSort(r)

	sc.q = grow64(sc.q, m)
	q := sc.q
	for i := 0; i < m; i++ {
		q[p[i]] = int64(i)
	}
	for i := 0; i < m; i++ {
		if (i == m-1 || s[i] != s[i+1]) && s[i] >= int64(n-m) {
			chain[int64(n)-s[i]-1] = p[i]
		}
	}
	pathDoubling(chain)
	sc.last = grow64(sc.last, m)
	last := sc.last
	for i := 0; i < m; i++ {
		last[i] = int64(n) - chain[i] - 1
	}
	sc.res = grow64(sc.res, m)
	res := sc.res
	for i := 0; i < m; i++ {
		qi := q[i]
		if i == 0 || qi == 0 || s[qi] != s[qi-1] {
			res[i] = r[i]
		} else {
			res[i] = last[p[qi-1]]
		}
	}
	return res
}

// parallelSort implements the paper's parallel_sort on scratch buffers: the
// 32-bit values and their indices are packed into 64-bit keys (value in the
// high half, index in the low half) and radix-sorted, yielding the sorted
// values and the stable original-index permutation in one pass.
func (sc *Scratch) parallelSort(r []int64) (s, p []int64) {
	m := len(r)
	sc.keys = growU64(sc.keys, m)
	sc.buf = growU64(sc.buf, m)
	keys := sc.keys
	for i, v := range r {
		keys[i] = uint64(v)<<32 | uint64(uint32(i))
	}
	radixSort64Buf(keys, sc.buf)
	sc.s = grow64(sc.s, m)
	sc.p = grow64(sc.p, m)
	s, p = sc.s, sc.p
	for i, k := range keys {
		s[i] = int64(k >> 32)
		p[i] = int64(uint32(k))
	}
	return s, p
}
