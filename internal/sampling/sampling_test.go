package sampling

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"wholegraph/internal/dataset"
	"wholegraph/internal/graph"
	"wholegraph/internal/sim"
	"wholegraph/internal/wholemem"
)

func TestRadixSort64(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = rng.Uint64()
		}
		want := append([]uint64(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		radixSort64(keys)
		for i := range keys {
			if keys[i] != want[i] {
				t.Fatalf("trial %d: radix[%d] = %d, want %d", trial, i, keys[i], want[i])
			}
		}
	}
}

func TestParallelSortStable(t *testing.T) {
	r := []int64{5, 3, 5, 3, 1}
	s, p := parallelSort(r)
	wantS := []int64{1, 3, 3, 5, 5}
	wantP := []int64{4, 1, 3, 0, 2} // stable: equal values keep index order
	for i := range wantS {
		if s[i] != wantS[i] || p[i] != wantP[i] {
			t.Fatalf("sort: s=%v p=%v", s, p)
		}
	}
}

// TestAlg1MatchesSequentialReference is the core correctness test: on the
// same random array r, the parallel path-doubling resolution must produce
// exactly the sequence the sequential robust Fisher-Yates produces.
func TestAlg1MatchesSequentialReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		n := 2 + rng.Intn(40)
		m := 1 + rng.Intn(n-1)
		r := make([]int64, m)
		for i := range r {
			r[i] = int64(rng.Intn(n - i))
		}
		got := resolveWithoutReplacement(append([]int64(nil), r...), n)
		want := sequentialSampleRef(r, n)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d m=%d r=%v): got %v, want %v", trial, n, m, r, got, want)
			}
		}
	}
}

func TestSampleWithoutReplacementProperties(t *testing.T) {
	f := func(seed int64, rawN, rawM uint16) bool {
		n := 1 + int(rawN)%500
		m := 1 + int(rawM)%500
		rng := rand.New(rand.NewSource(seed))
		res := SampleWithoutReplacement(m, n, rng)
		if m >= n && len(res) != n {
			return false
		}
		if m < n && len(res) != m {
			return false
		}
		seen := map[int64]bool{}
		for _, v := range res {
			if v < 0 || v >= int64(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSampleUniformity(t *testing.T) {
	// Chi-square test: each of n values should be selected with probability
	// m/n. With n=10, m=4 and 20000 trials, expected count per value is
	// 8000; the chi-square over 9 dof should stay below ~28 (p ~ 0.001).
	const n, m, trials = 10, 4, 20000
	rng := rand.New(rand.NewSource(3))
	counts := make([]float64, n)
	for i := 0; i < trials; i++ {
		for _, v := range SampleWithoutReplacement(m, n, rng) {
			counts[v]++
		}
	}
	exp := float64(trials) * float64(m) / float64(n)
	var chi2 float64
	for _, c := range counts {
		chi2 += (c - exp) * (c - exp) / exp
	}
	if chi2 > 28 {
		t.Errorf("chi2 = %.1f over %d dof: sampling is not uniform (counts %v)", chi2, n-1, counts)
	}
}

func TestReservoirAndPermUniformity(t *testing.T) {
	const n, m, trials = 8, 3, 20000
	for name, fn := range map[string]func(int, int, *rand.Rand) []int64{
		"reservoir": reservoirSample,
		"perm":      permSample,
	} {
		rng := rand.New(rand.NewSource(4))
		counts := make([]float64, n)
		for i := 0; i < trials; i++ {
			res := fn(m, n, rng)
			seen := map[int64]bool{}
			for _, v := range res {
				if v < 0 || v >= n || seen[v] {
					t.Fatalf("%s produced invalid sample %v", name, res)
				}
				seen[v] = true
				counts[v]++
			}
		}
		exp := float64(trials) * float64(m) / float64(n)
		var chi2 float64
		for _, c := range counts {
			chi2 += (c - exp) * (c - exp) / exp
		}
		if chi2 > 25 {
			t.Errorf("%s: chi2 = %.1f, not uniform (%v)", name, chi2, counts)
		}
	}
}

func buildPartitioned(t *testing.T) (*sim.Machine, *dataset.Dataset, *graph.Partitioned) {
	t.Helper()
	m := sim.NewMachine(sim.DGXA100(1))
	comm, err := wholemem.NewComm(m.NodeDevs(0))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.Generate(dataset.OgbnProducts.Scaled(0.0005))
	if err != nil {
		t.Fatal(err)
	}
	pg, err := graph.Partition(ds.Graph, ds.Feat, ds.Spec.FeatDim, comm)
	if err != nil {
		t.Fatal(err)
	}
	m.Reset()
	return m, ds, pg
}

func TestGPUSamplerCorrectness(t *testing.T) {
	m, ds, pg := buildPartitioned(t)
	dev := m.Devs[0]
	s := NewGPUSampler(pg, dev, 7)

	targets := make([]graph.GlobalID, 0, 64)
	for v := int64(0); v < 64; v++ {
		targets = append(targets, pg.Owner[v])
	}
	const fanout = 5
	nb := s.SampleLayer(targets, fanout)

	if len(nb.Offsets) != len(targets)+1 {
		t.Fatalf("offsets len = %d", len(nb.Offsets))
	}
	for i, tg := range targets {
		got := nb.Neighbors[nb.Offsets[i]:nb.Offsets[i+1]]
		deg := ds.Graph.Degree(int64(i))
		wantLen := deg
		if wantLen > fanout {
			wantLen = fanout
		}
		if int64(len(got)) != wantLen {
			t.Fatalf("target %d: %d sampled, want %d (deg %d)", i, len(got), wantLen, deg)
		}
		// Every sampled neighbor must be a real neighbor. Sampling is
		// without replacement over list positions, so a neighbor may
		// appear at most as often as the (multi-)edge list contains it.
		avail := map[int64]int{}
		for _, w := range ds.Graph.Neighbors(int64(i)) {
			avail[w]++
		}
		for _, g := range got {
			orig := pg.Orig[g.Rank()][g.Local()]
			if avail[orig] == 0 {
				t.Fatalf("target %d: sampled %d more often than it appears in the list", i, orig)
			}
			avail[orig]--
		}
		_ = tg
	}
	if dev.Now() == 0 {
		t.Error("sampling charged nothing")
	}
	if dev.Stats.RemoteBytes == 0 {
		t.Error("sampling over a partitioned graph should touch remote memory")
	}
}

func TestGPUSamplerFanouts(t *testing.T) {
	m, _, pg := buildPartitioned(t)
	s := NewGPUSampler(pg, m.Devs[1], 9)
	targets := []graph.GlobalID{pg.Owner[0], pg.Owner[1]}
	layers := s.Fanouts(targets, []int{3, 3}, func(nb *Neighborhood) []graph.GlobalID {
		return nb.Neighbors
	})
	if len(layers) != 2 {
		t.Fatalf("layers = %d", len(layers))
	}
	if len(layers[1].Targets) != len(layers[0].Neighbors) {
		t.Error("second hop targets should be first hop neighbors")
	}
}

func TestCPUSamplerCorrectnessAndCosts(t *testing.T) {
	m := sim.NewMachine(sim.DGXA100(1))
	ds, err := dataset.Generate(dataset.OgbnProducts.Scaled(0.0005))
	if err != nil {
		t.Fatal(err)
	}
	targets := make([]int64, 256)
	for i := range targets {
		targets[i] = int64(i)
	}
	const fanout = 10

	dgl := NewCPUSampler(ds.Graph, m.CPUs[0], FlavorDGL, 1)
	nb := dgl.SampleLayer(targets, fanout)
	for i, tg := range targets {
		got := nb.Neighbors[nb.Offsets[i]:nb.Offsets[i+1]]
		deg := ds.Graph.Degree(tg)
		wantLen := deg
		if wantLen > fanout {
			wantLen = fanout
		}
		if int64(len(got)) != wantLen {
			t.Fatalf("target %d: %d sampled, want %d", tg, len(got), wantLen)
		}
		real := map[int64]bool{}
		for _, w := range ds.Graph.Neighbors(tg) {
			real[w] = true
		}
		for _, w := range got {
			if !real[w] {
				t.Fatalf("non-neighbor %d sampled for %d", w, tg)
			}
		}
	}
	dglCost := m.CPUs[0].Now()

	pyg := NewCPUSampler(ds.Graph, m.CPUs[0], FlavorPyG, 1)
	pyg.SampleLayer(targets, fanout)
	pygCost := m.CPUs[0].Now() - dglCost
	if pygCost <= dglCost {
		t.Errorf("PyG sampling (%g) should cost more than DGL (%g)", pygCost, dglCost)
	}
}

func TestGPUSamplerFasterThanCPU(t *testing.T) {
	// The headline claim: GPU sampling over distributed shared memory beats
	// host sampling by a wide margin at equal workloads.
	m, ds, pg := buildPartitioned(t)
	targets := make([]int64, 512)
	gts := make([]graph.GlobalID, 512)
	for i := range targets {
		targets[i] = int64(i)
		gts[i] = pg.Owner[int64(i)]
	}
	gpu := NewGPUSampler(pg, m.Devs[0], 1)
	gpu.SampleLayer(gts, 10)
	gpuTime := m.Devs[0].Now()

	cpu := NewCPUSampler(ds.Graph, m.CPUs[0], FlavorDGL, 1)
	cpu.SampleLayer(targets, 10)
	cpuTime := m.CPUs[0].Now()

	if gpuTime*2 > cpuTime {
		t.Errorf("GPU sampling %g s not clearly faster than CPU %g s", gpuTime, cpuTime)
	}
}

func TestSampleMGreaterEqualN(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	res := SampleWithoutReplacement(10, 10, rng)
	if len(res) != 10 {
		t.Fatalf("m==n returned %d", len(res))
	}
	for i, v := range res {
		if v != int64(i) {
			t.Fatalf("m==n should be identity, got %v", res)
		}
	}
	if got := SampleWithoutReplacement(5, 3, rng); len(got) != 3 {
		t.Fatalf("m>n returned %d values", len(got))
	}
}
