package sampling

import (
	"math/rand"

	"wholegraph/internal/graph"
	"wholegraph/internal/sim"
)

// Flavor selects which baseline framework's CPU sampler to emulate. The two
// samplers produce equally valid samples but at different cost: DGL's is a
// compiled C++ reservoir sampler, PyG's (v2.0.2, the paper's baseline)
// drives sampling through Python-level tensor ops with far higher
// per-target overhead.
type Flavor int

const (
	FlavorDGL Flavor = iota
	FlavorPyG
)

// Per-target and per-edge host costs in scalar ops (charged at the host's
// ScalarOpsPerSec). Calibrated so the sampling share of the baseline epoch
// times lands where Figure 9 puts it: DGL's sampler is compiled (small
// constants), PyG's pays Python dispatch per target node.
const (
	dglPerTargetOps = 250
	dglPerEdgeOps   = 5
	pygPerTargetOps = 2500
	pygPerEdgeOps   = 20
)

// HostNeighborhood is a sampled layer over a host-resident CSR graph, in
// original node IDs.
type HostNeighborhood struct {
	Targets   []int64
	Offsets   []int64
	Neighbors []int64
}

// CPUSampler emulates the host-side neighbor samplers of DGL/PyG: the graph
// lives in host memory, sampling runs on the CPU, and the cost is charged
// to the node's CPU clock.
type CPUSampler struct {
	G      *graph.CSR
	CPU    *sim.CPU
	Rng    *rand.Rand
	Flavor Flavor
}

// NewCPUSampler returns a host sampler over g charged to cpu.
func NewCPUSampler(g *graph.CSR, cpu *sim.CPU, flavor Flavor, seed int64) *CPUSampler {
	return &CPUSampler{G: g, CPU: cpu, Rng: rand.New(rand.NewSource(seed)), Flavor: flavor}
}

// SampleLayer samples up to fanout neighbors without replacement for each
// target node and charges the host CPU.
func (s *CPUSampler) SampleLayer(targets []int64, fanout int) *HostNeighborhood {
	nb := &HostNeighborhood{Targets: targets, Offsets: make([]int64, 1, len(targets)+1)}
	for _, t := range targets {
		neigh := s.G.Neighbors(t)
		if len(neigh) <= fanout {
			nb.Neighbors = append(nb.Neighbors, neigh...)
		} else {
			var idx []int64
			if s.Flavor == FlavorDGL {
				idx = reservoirSample(fanout, len(neigh), s.Rng)
			} else {
				idx = permSample(fanout, len(neigh), s.Rng)
			}
			for _, k := range idx {
				nb.Neighbors = append(nb.Neighbors, neigh[k])
			}
		}
		nb.Offsets = append(nb.Offsets, int64(len(nb.Neighbors)))
	}
	perTarget, perEdge := float64(dglPerTargetOps), float64(dglPerEdgeOps)
	if s.Flavor == FlavorPyG {
		perTarget, perEdge = pygPerTargetOps, pygPerEdgeOps
	}
	s.CPU.Ops(perTarget*float64(len(targets)) + perEdge*float64(len(nb.Neighbors)))
	// The sampled IDs stream through host memory once.
	s.CPU.Stream(float64(8 * len(nb.Neighbors)))
	return nb
}

// reservoirSample selects m of n indices without replacement using
// Vitter's reservoir algorithm (DGL's C++ sampler strategy).
func reservoirSample(m, n int, rng *rand.Rand) []int64 {
	res := make([]int64, m)
	for i := 0; i < m; i++ {
		res[i] = int64(i)
	}
	for i := m; i < n; i++ {
		j := rng.Intn(i + 1)
		if j < m {
			res[j] = int64(i)
		}
	}
	return res
}

// permSample selects m of n indices as the prefix of a random permutation
// (PyG's torch.randperm strategy).
func permSample(m, n int, rng *rand.Rand) []int64 {
	perm := rng.Perm(n)
	res := make([]int64, m)
	for i := 0; i < m; i++ {
		res[i] = int64(perm[i])
	}
	return res
}
