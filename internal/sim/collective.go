package sim

// Step-level collective engine.
//
// The analytic entry points in link.go used to charge one closed-form busy
// block behind a Barrier. This engine instead decomposes each ring
// collective into its per-step transfers: in every round each device
// forwards one chunk to its ring successor, a hop starts once sender and
// receiver have finished the previous round and the sender's egress link
// is free, and the hop occupies that link for its duration. Links are
// modeled per fabric: a device's NVLink egress port for intra-node hops,
// the node's aggregate InfiniBand NIC for inter-node hops — so a ring over
// devices that span nodes pays IB cost on the crossing hops (the analytic
// code silently charged NVLink), and two collectives in flight at once
// serialize on any link they share.
//
// Collectives can be issued on either stream (CollOpts.Stream) with
// per-device earliest-start gates (CollOpts.StartAt), and the returned
// Collective carries per-device completion events, so a caller can overlap
// a collective with independent work and join later with WaitEvent — the
// mechanism behind train.Options.OverlapGrads. Like Barrier, every entry
// point here reads and advances multiple device clocks and the machine's
// link table, so it must run from the orchestrating goroutine, never from
// inside a RunParallel region.

// CollOpts configures a step-level collective launch. The zero value means
// compute stream, no start gates, default trace tag.
type CollOpts struct {
	// Stream is the per-device timeline the transfer steps charge on.
	Stream StreamKind
	// StartAt, when non-nil, gates each device's participation: device i
	// joins the ring no earlier than StartAt[i] (e.g. when its gradient
	// bucket became ready), even if its stream clock is behind.
	StartAt []float64
	// Tag labels the busy intervals in traces ("" picks a default).
	Tag string
}

// Collective is the handle of an issued collective: per-device completion
// events (aligned with Devs) plus their maximum. The issuing stream is
// recorded so Wait can join on the right timeline.
type Collective struct {
	Devs   []*Device
	Stream StreamKind
	Done   []Event
	End    float64
}

// Wait blocks every participating device's issuing stream until the whole
// collective completed (all devices reach End), the blocking semantics of
// the analytic-era entry points.
func (c *Collective) Wait() {
	for _, d := range c.Devs {
		prev := d.SetStream(c.Stream)
		d.IdleUntil(c.End)
		d.SetStream(prev)
	}
}

// StartRingAllGather issues a ring AllGather where each device contributes
// bytes: n-1 rounds each forwarding a full contribution.
func StartRingAllGather(devs []*Device, bytes float64, o CollOpts) *Collective {
	m := devs[0].m
	ready := m.collReady[:len(devs)]
	initReady(devs, ready, o.Stream, o.StartAt)
	ringSteps(devs, ready, len(devs)-1, bytes, o.Stream, tagOr(o.Tag, "allgather"))
	return newCollective(devs, o.Stream, ready)
}

// StartRingAllReduce issues a ring AllReduce of a bytes-sized buffer:
// reduce-scatter plus allgather, 2(n-1) rounds of bytes/n chunks.
func StartRingAllReduce(devs []*Device, bytes float64, o CollOpts) *Collective {
	m := devs[0].m
	ready := m.collReady[:len(devs)]
	initReady(devs, ready, o.Stream, o.StartAt)
	ringSteps(devs, ready, 2*(len(devs)-1), bytes/float64(len(devs)), o.Stream, tagOr(o.Tag, "allreduce"))
	return newCollective(devs, o.Stream, ready)
}

// StartHierarchicalAllReduce issues a gradient AllReduce across the whole
// machine: per-node ring reduce-scatter over NVLink, an inter-node ring
// over InfiniBand on the node shards, and a per-node ring allgather.
// StartAt, when given, must cover m.Devs.
func StartHierarchicalAllReduce(m *Machine, bytes float64, o CollOpts) *Collective {
	ready := m.collReady[:len(m.Devs)]
	initReady(m.Devs, ready, o.Stream, o.StartAt)
	hierarchicalSteps(m, bytes, o.Stream, tagOr(o.Tag, "allreduce"), ready)
	return newCollective(m.Devs, o.Stream, ready)
}

// initReady seeds the per-device ready times from the stream clocks and the
// optional StartAt gates.
func initReady(devs []*Device, ready []float64, k StreamKind, startAt []float64) {
	for i, d := range devs {
		t := d.StreamNow(k)
		if startAt != nil && startAt[i] > t {
			t = startAt[i]
		}
		ready[i] = t
	}
}

func tagOr(tag, def string) string {
	if tag == "" {
		return def
	}
	return tag
}

// newCollective snapshots the ready times into a fresh handle.
func newCollective(devs []*Device, k StreamKind, ready []float64) *Collective {
	c := &Collective{Devs: devs, Stream: k, Done: make([]Event, len(devs))}
	for i, t := range ready {
		c.Done[i] = Event{T: t}
		if t > c.End {
			c.End = t
		}
	}
	return c
}

// ringSteps advances the devices through rounds ring steps in which every
// device sends one chunk to its ring successor. ready carries per-device
// completion times in and out (exact values, independent of the charged
// interval rounding). A hop from devs[i] to devs[i+1] starts at
// max(ready[i], ready[i+1], linkFree) — the receiver must have finished its
// previous round, and concurrent collectives serialize on shared links —
// and the sender's egress link (NVLink port intra-node, the node NIC
// across nodes) stays busy until the hop ends. Scratch lives on the
// machine, keeping steady-state training allocation-free.
func ringSteps(devs []*Device, ready []float64, rounds int, chunk float64, k StreamKind, tag string) {
	n := len(devs)
	if n < 2 {
		return
	}
	m := devs[0].m
	sendStart := m.collSendStart[:n]
	sendEnd := m.collSendEnd[:n]
	for r := 0; r < rounds; r++ {
		for i, src := range devs {
			j := i + 1
			if j == n {
				j = 0
			}
			dst := devs[j]
			start := ready[i]
			if ready[j] > start {
				start = ready[j]
			}
			var hop float64
			var free *float64
			if src.Node != dst.Node {
				hop = ibTime(m, chunk)
				free = &m.ibFree[src.Node]
				src.Stats.IBTxBytes += chunk
			} else {
				hop = nvlinkP2PTime(m, chunk)
				free = &m.nvlinkFree[src.ID]
				src.Stats.NVLinkTxBytes += chunk
			}
			if *free > start {
				start = *free
			}
			sendStart[i] = start
			sendEnd[i] = start + hop
			*free = sendEnd[i]
		}
		for i, d := range devs {
			p := i - 1
			if p < 0 {
				p = n - 1
			}
			s := sendStart[i]
			if sendStart[p] < s {
				s = sendStart[p]
			}
			e := sendEnd[i]
			if sendEnd[p] > e {
				e = sendEnd[p]
			}
			chargeComm(d, k, s, e, tag)
			ready[i] = e
		}
	}
}

// hierarchicalSteps runs the three-phase hierarchical AllReduce on the
// ready array. With one node it degenerates to the exact step sequence of
// a single intra-node ring AllReduce (2(g-1) rounds of bytes/g), which is
// what makes HierarchicalAllReduce and AllReduceBytes bit-identical there.
func hierarchicalSteps(m *Machine, bytes float64, k StreamKind, tag string, ready []float64) {
	g := m.Cfg.GPUsPerNode
	nodes := m.Cfg.Nodes
	if nodes == 1 {
		ringSteps(m.Devs, ready, 2*(g-1), bytes/float64(g), k, tag)
		return
	}
	// Phase 1: intra-node ring reduce-scatter, independent per node.
	if g > 1 {
		for n := 0; n < nodes; n++ {
			ringSteps(m.NodeDevs(n), ready[n*g:(n+1)*g], g-1, bytes/float64(g), k, tag)
		}
	}
	// Phase 2: inter-node ring AllReduce over the per-node shards
	// (bytes/g), 2(nodes-1) rounds of bytes/(g*nodes) chunks. Each node's
	// GPUs drive their NIC shares in parallel, so the chunk moves at the
	// node's full aggregate IB bandwidth (the analytic model's assumption,
	// kept); the node NIC is the contended link.
	chunk := bytes / float64(g*nodes)
	nodeReady := m.nodeReady[:nodes]
	for n := 0; n < nodes; n++ {
		t := ready[n*g]
		for i := n*g + 1; i < (n+1)*g; i++ {
			if ready[i] > t {
				t = ready[i]
			}
		}
		nodeReady[n] = t
	}
	ss := m.nodeSendStart[:nodes]
	se := m.nodeSendEnd[:nodes]
	perDev := chunk / float64(g)
	for r := 0; r < 2*(nodes-1); r++ {
		for n := 0; n < nodes; n++ {
			next := n + 1
			if next == nodes {
				next = 0
			}
			start := nodeReady[n]
			if nodeReady[next] > start {
				start = nodeReady[next]
			}
			if m.ibFree[n] > start {
				start = m.ibFree[n]
			}
			ss[n] = start
			se[n] = start + ibTime(m, chunk)
			m.ibFree[n] = se[n]
		}
		for n := 0; n < nodes; n++ {
			p := n - 1
			if p < 0 {
				p = nodes - 1
			}
			s := ss[n]
			if ss[p] < s {
				s = ss[p]
			}
			e := se[n]
			if se[p] > e {
				e = se[p]
			}
			for i := n * g; i < (n+1)*g; i++ {
				m.Devs[i].Stats.IBTxBytes += perDev
				chargeComm(m.Devs[i], k, s, e, tag)
				ready[i] = e
			}
			nodeReady[n] = e
		}
	}
	// Phase 3: intra-node ring allgather of the reduced shards.
	if g > 1 {
		for n := 0; n < nodes; n++ {
			ringSteps(m.NodeDevs(n), ready[n*g:(n+1)*g], g-1, bytes/float64(g), k, tag)
		}
	}
}

// chargeComm records the device's share of one round, [s, e), on stream k:
// the gap from the stream clock to s (waiting on peers, a busy link, or a
// StartAt gate) is idle, the rest is communication busy time.
func chargeComm(d *Device, k StreamKind, s, e float64, tag string) {
	prev := d.SetStream(k)
	if now := d.Now(); s > now {
		d.idle(s-now, "comm-wait")
	}
	if now := d.Now(); e > now {
		d.commBusy(e-now, tag)
	}
	d.SetStream(prev)
}

// joinCompute idles every device's compute stream to the collective's end
// and returns it: the blocking, barrier-like semantics the analytic entry
// points always had.
func joinCompute(devs []*Device, ready []float64) float64 {
	end := 0.0
	for _, t := range ready {
		if t > end {
			end = t
		}
	}
	for _, d := range devs {
		prev := d.SetStream(StreamCompute)
		d.IdleUntil(end)
		d.SetStream(prev)
	}
	return end
}
