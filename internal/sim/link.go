package sim

// Collective timing helpers. WholeGraph's distributed-memory baseline and
// its multi-node data parallelism use NCCL collectives; these functions
// charge their analytic cost models to the participating device clocks.
// Formulas are the standard ring-algorithm costs used by NCCL.

// nvlinkP2PTime is the time to move bytes between two GPUs of one node over
// NVLink as one bulk message.
func nvlinkP2PTime(m *Machine, bytes float64) float64 {
	l := m.Cfg.Link
	return l.P2PBaseLatency + bytes/(l.NVLinkUniGBs*1e9*0.9)
}

// ibTime is the time to move bytes between two nodes as one bulk message.
func ibTime(m *Machine, bytes float64) float64 {
	l := m.Cfg.Link
	return l.IBLatency + bytes/(l.IBGBs*1e9*0.9)
}

// AllGatherBytes charges an AllGather where each device contributes bytes.
// Ring algorithm: (n-1) steps each moving `bytes`.
func AllGatherBytes(devs []*Device, bytes float64) float64 {
	if len(devs) < 2 {
		return 0
	}
	start := Barrier(devs)
	m := devs[0].m
	n := float64(len(devs))
	dt := (n - 1) * nvlinkP2PTime(m, bytes)
	for _, d := range devs {
		d.busy(dt, "allgather")
	}
	return start + dt
}

// AllReduceBytes charges a ring AllReduce of a buffer of the given size over
// the devices of one node: 2(n-1)/n * bytes cross each link.
func AllReduceBytes(devs []*Device, bytes float64) float64 {
	if len(devs) < 2 {
		return 0
	}
	start := Barrier(devs)
	m := devs[0].m
	n := float64(len(devs))
	steps := 2 * (n - 1)
	dt := steps * nvlinkP2PTime(m, bytes/n)
	for _, d := range devs {
		d.busy(dt, "allreduce")
	}
	return start + dt
}

// HierarchicalAllReduce charges a gradient AllReduce across a multi-node
// machine: intra-node ring reduce-scatter/allgather over NVLink plus an
// inter-node ring over InfiniBand on the per-node shards.
func HierarchicalAllReduce(m *Machine, bytes float64) float64 {
	devs := m.Devs
	start := Barrier(devs)
	g := float64(m.Cfg.GPUsPerNode)
	nodes := float64(m.Cfg.Nodes)
	// Intra-node reduce-scatter + allgather.
	intra := 2 * (g - 1) * nvlinkP2PTime(m, bytes/g)
	dt := intra
	if nodes > 1 {
		// Inter-node ring allreduce on the node shard (bytes/g per GPU,
		// one GPU per node drives each NIC pair; the shard is split over
		// the node's NICs so the full IB bandwidth applies).
		inter := 2 * (nodes - 1) * ibTime(m, bytes/(g*nodes))
		dt += inter
	}
	for _, d := range devs {
		d.busy(dt, "allreduce")
	}
	return start + dt
}

// SendRecv charges a point-to-point NCCL send/recv between two devices of
// one node and returns the completion time. Both clocks advance together.
func SendRecv(src, dst *Device, bytes float64) float64 {
	t := src.now
	if dst.now > t {
		t = dst.now
	}
	src.IdleUntil(t)
	dst.IdleUntil(t)
	dt := nvlinkP2PTime(src.m, bytes)
	src.busy(dt, "send")
	dst.busy(dt, "recv")
	return t + dt
}

// AlltoAllvBytes charges an AlltoAllv over the devices where sendBytes[i][j]
// is the payload device i sends to device j. NCCL implements this as
// pairwise exchanges; with NVSwitch every device's egress port is the
// bottleneck, so the cost per device is its max of egress and ingress
// volume at NVLink rate, plus per-peer latencies.
func AlltoAllvBytes(devs []*Device, sendBytes [][]float64) float64 {
	n := len(devs)
	if n < 2 {
		return 0
	}
	start := Barrier(devs)
	m := devs[0].m
	l := m.Cfg.Link
	end := start
	for i, d := range devs {
		var egress, ingress float64
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			egress += sendBytes[i][j]
			ingress += sendBytes[j][i]
		}
		vol := egress
		if ingress > vol {
			vol = ingress
		}
		dt := float64(n-1)*l.P2PBaseLatency + vol/(l.NVLinkUniGBs*1e9*0.9)
		d.busy(dt, "alltoallv")
		if d.now > end {
			end = d.now
		}
	}
	// AlltoAllv completes only when every peer is done.
	for _, d := range devs {
		d.IdleUntil(end)
	}
	return end
}
