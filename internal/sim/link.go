package sim

// Collective timing entry points. WholeGraph's distributed-memory baseline
// and its multi-node data parallelism use NCCL collectives; the blocking
// functions here keep the signatures of the original analytic cost models
// but are thin wrappers over the step-level engine in collective.go: each
// collective runs its per-step ring transfers on the compute stream
// (occupying the modeled links) and then joins every participant at the
// completion time. For one synchronized single-node ring the step totals
// equal the classic closed forms — AllGather (n-1)·hop(bytes), AllReduce
// 2(n-1)·hop(bytes/n) — while device sets that span nodes now pay the
// InfiniBand cost on the crossing hops instead of being silently priced as
// NVLink.

// nvlinkP2PTime is the time to move bytes between two GPUs of one node over
// NVLink as one bulk message.
func nvlinkP2PTime(m *Machine, bytes float64) float64 {
	l := m.Cfg.Link
	return l.P2PBaseLatency + bytes/(l.NVLinkUniGBs*1e9*0.9)
}

// ibTime is the time to move bytes between two nodes as one bulk message.
func ibTime(m *Machine, bytes float64) float64 {
	l := m.Cfg.Link
	return l.IBLatency + bytes/(l.IBGBs*1e9*0.9)
}

// AllGatherBytes charges a blocking AllGather where each device contributes
// bytes (ring algorithm: n-1 steps each moving `bytes`) and returns the
// completion time.
func AllGatherBytes(devs []*Device, bytes float64) float64 {
	if len(devs) < 2 {
		return 0
	}
	m := devs[0].m
	ready := m.collReady[:len(devs)]
	initReady(devs, ready, StreamCompute, nil)
	ringSteps(devs, ready, len(devs)-1, bytes, StreamCompute, "allgather")
	return joinCompute(devs, ready)
}

// AllReduceBytes charges a blocking ring AllReduce of a buffer of the given
// size over the devices: 2(n-1) steps of bytes/n chunks, so 2(n-1)/n times
// the buffer crosses each link.
func AllReduceBytes(devs []*Device, bytes float64) float64 {
	if len(devs) < 2 {
		return 0
	}
	m := devs[0].m
	ready := m.collReady[:len(devs)]
	initReady(devs, ready, StreamCompute, nil)
	ringSteps(devs, ready, 2*(len(devs)-1), bytes/float64(len(devs)), StreamCompute, "allreduce")
	return joinCompute(devs, ready)
}

// HierarchicalAllReduce charges a blocking gradient AllReduce across a
// multi-node machine: intra-node ring reduce-scatter/allgather over NVLink
// plus an inter-node ring over InfiniBand on the per-node shards. With one
// node it runs the identical step sequence as AllReduceBytes over the
// node's devices.
func HierarchicalAllReduce(m *Machine, bytes float64) float64 {
	if len(m.Devs) < 2 {
		return 0
	}
	ready := m.collReady[:len(m.Devs)]
	initReady(m.Devs, ready, StreamCompute, nil)
	hierarchicalSteps(m, bytes, StreamCompute, "allreduce", ready)
	return joinCompute(m.Devs, ready)
}

// SendRecv charges a point-to-point NCCL send/recv between two devices and
// returns the completion time: the single-hop primitive of the collective
// engine. The hop starts when both clocks and the sender's egress link are
// free; it moves at NVLink rate within a node and over InfiniBand across
// nodes. Both compute-stream clocks advance together.
func SendRecv(src, dst *Device, bytes float64) float64 {
	m := src.m
	start := src.now
	if dst.now > start {
		start = dst.now
	}
	var hop float64
	var free *float64
	if src.Node != dst.Node {
		hop = ibTime(m, bytes)
		free = &m.ibFree[src.Node]
		src.Stats.IBTxBytes += bytes
	} else {
		hop = nvlinkP2PTime(m, bytes)
		free = &m.nvlinkFree[src.ID]
		src.Stats.NVLinkTxBytes += bytes
	}
	if *free > start {
		start = *free
	}
	end := start + hop
	*free = end
	chargeComm(src, StreamCompute, start, end, "send")
	chargeComm(dst, StreamCompute, start, end, "recv")
	return end
}

// AlltoAllvBytes charges an AlltoAllv over the devices where sendBytes[i][j]
// is the payload device i sends to device j, through the step-level
// collective engine. NCCL implements AlltoAllv as pairwise exchanges: in
// round r = 1..n-1 device i sends its payload for peer (i+r) mod n while
// receiving from peer (i-r) mod n, and the next round starts only once a
// device finished both sides of the current one. Each hop starts when
// sender and receiver are done with their previous round and the sender's
// egress link (NVLink port intra-node, the node NIC across nodes) is free —
// so device sets spanning nodes pay the InfiniBand cost on the crossing
// hops (the old bulk model silently priced everything as NVLink), and a
// concurrent collective serializes on any shared link. Blocking: all
// compute streams join at the completion time.
func AlltoAllvBytes(devs []*Device, sendBytes [][]float64) float64 {
	n := len(devs)
	if n < 2 {
		return 0
	}
	m := devs[0].m
	ready := m.collReady[:n]
	initReady(devs, ready, StreamCompute, nil)
	sendStart := m.collSendStart[:n]
	sendEnd := m.collSendEnd[:n]
	for r := 1; r < n; r++ {
		for i, src := range devs {
			j := (i + r) % n
			dst := devs[j]
			start := ready[i]
			if ready[j] > start {
				start = ready[j]
			}
			chunk := sendBytes[i][j]
			var hop float64
			var free *float64
			if src.Node != dst.Node {
				hop = ibTime(m, chunk)
				free = &m.ibFree[src.Node]
				src.Stats.IBTxBytes += chunk
			} else {
				hop = nvlinkP2PTime(m, chunk)
				free = &m.nvlinkFree[src.ID]
				src.Stats.NVLinkTxBytes += chunk
			}
			if *free > start {
				start = *free
			}
			sendStart[i] = start
			sendEnd[i] = start + hop
			*free = sendEnd[i]
		}
		for i, d := range devs {
			p := (i - r + n) % n
			s := sendStart[i]
			if sendStart[p] < s {
				s = sendStart[p]
			}
			e := sendEnd[i]
			if sendEnd[p] > e {
				e = sendEnd[p]
			}
			chargeComm(d, StreamCompute, s, e, "alltoallv")
			ready[i] = e
		}
	}
	return joinCompute(devs, ready)
}
