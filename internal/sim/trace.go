package sim

// Interval is one busy or idle span on a device timeline. Stream records
// which of the device's two timelines the span lies on; utilization
// helpers below treat the trace as one timeline, so pass a filtered trace
// (FilterStream) when the run used both streams.
type Interval struct {
	Start, End float64
	Busy       bool
	// Comm marks a collective-engine transfer (NVLink/IB occupancy rather
	// than SM work); the Chrome trace gives these their own lane.
	Comm bool
	// Graph marks work executed inside a captured step-graph replay (its
	// per-kernel launch overhead was amortized into one graph launch).
	Graph  bool
	Tag    string
	Stream StreamKind
	// Node is the 1-based whole-step scheduler DAG node this interval was
	// issued for, or 0 when the work was not scheduler-placed.
	Node int
	// Decision marks a scheduler-decision annotation (the span the list
	// scheduler reserved for a node) rather than real stream occupancy; the
	// Chrome trace gives these their own lane and the utilization helpers
	// ignore them via Busy == false.
	Decision bool
}

// FilterStream returns the intervals of one stream, preserving order.
func FilterStream(trace []Interval, k StreamKind) []Interval {
	out := make([]Interval, 0, len(trace))
	for _, iv := range trace {
		if iv.Stream == k {
			out = append(out, iv)
		}
	}
	return out
}

// Trace returns the recorded intervals. Tracing must have been enabled
// before the run (Device.Tracing = true).
func (d *Device) Trace() []Interval { return d.trace }

// Utilization samples the busy fraction of the timeline between t0 and t1
// into n equal buckets, mimicking how nvidia-smi polls GPU utilization for
// Figure 12. Values are in [0,1].
func Utilization(trace []Interval, t0, t1 float64, n int) []float64 {
	out := make([]float64, n)
	if n == 0 || t1 <= t0 {
		return out
	}
	w := (t1 - t0) / float64(n)
	for _, iv := range trace {
		if !iv.Busy || iv.End <= t0 || iv.Start >= t1 {
			continue
		}
		s, e := iv.Start, iv.End
		if s < t0 {
			s = t0
		}
		if e > t1 {
			e = t1
		}
		b0 := int((s - t0) / w)
		b1 := int((e - t0) / w)
		if b1 >= n {
			b1 = n - 1
		}
		for b := b0; b <= b1; b++ {
			bs := t0 + float64(b)*w
			be := bs + w
			lo, hi := s, e
			if lo < bs {
				lo = bs
			}
			if hi > be {
				hi = be
			}
			if hi > lo {
				out[b] += (hi - lo) / w
			}
		}
	}
	for i, v := range out {
		if v > 1 {
			out[i] = 1
		}
	}
	return out
}

// BusyFraction returns the busy share of the timeline between t0 and t1.
func BusyFraction(trace []Interval, t0, t1 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	busy := 0.0
	for _, iv := range trace {
		if !iv.Busy || iv.End <= t0 || iv.Start >= t1 {
			continue
		}
		s, e := iv.Start, iv.End
		if s < t0 {
			s = t0
		}
		if e > t1 {
			e = t1
		}
		busy += e - s
	}
	return busy / (t1 - t0)
}
