package sim

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func newTestMachine(t *testing.T, nodes int) *Machine {
	t.Helper()
	return NewMachine(DGXA100(nodes))
}

func TestDGXA100Topology(t *testing.T) {
	m := newTestMachine(t, 2)
	if got := len(m.Devs); got != 16 {
		t.Fatalf("devices = %d, want 16", got)
	}
	if got := len(m.CPUs); got != 2 {
		t.Fatalf("cpus = %d, want 2", got)
	}
	d := m.Devs[9]
	if d.Node != 1 || d.Local != 1 || d.ID != 9 {
		t.Errorf("dev 9 = node %d local %d id %d", d.Node, d.Local, d.ID)
	}
	nd := m.NodeDevs(1)
	if len(nd) != 8 || nd[0].ID != 8 {
		t.Errorf("NodeDevs(1) wrong: len=%d first=%d", len(nd), nd[0].ID)
	}
}

func TestValidate(t *testing.T) {
	good := DGXA100(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.Nodes = 0
	if err := bad.Validate(); err == nil {
		t.Error("Nodes=0 accepted")
	}
	bad = good
	bad.GPUsPerNode = -1
	if err := bad.Validate(); err == nil {
		t.Error("GPUsPerNode=-1 accepted")
	}
	bad = good
	bad.Device.FP32TFLOPS = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero FLOPS accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewMachine did not panic on invalid config")
		}
	}()
	NewMachine(bad)
}

func TestKernelRoofline(t *testing.T) {
	m := newTestMachine(t, 1)
	d := m.Devs[0]
	p := m.Cfg.Device

	// Pure compute kernel.
	dt := d.Kernel(KernelCost{FLOPs: 1e12})
	want := p.KernelLaunch + 1e12/(p.FP32TFLOPS*1e12*p.GemmEff)
	if math.Abs(dt-want) > 1e-12 {
		t.Errorf("compute kernel = %g, want %g", dt, want)
	}

	// Memory-bound kernel dominates small compute.
	dt = d.Kernel(KernelCost{FLOPs: 1, StreamBytes: 1e9})
	want = p.KernelLaunch + 1e9/(p.MemBWGBs*1e9*p.MemEff)
	if math.Abs(dt-want) > 1e-12 {
		t.Errorf("memory kernel = %g, want %g", dt, want)
	}

	// Remote traffic uses the NVLink model.
	dt = d.Kernel(KernelCost{RemoteBytes: 1e9, RemoteSegBytes: 4096})
	bw := d.nvlinkEffGBs(4096) * 1e9
	want = p.KernelLaunch + 1e9/bw
	if math.Abs(dt-want) > 1e-12 {
		t.Errorf("remote kernel = %g, want %g", dt, want)
	}
	if d.Stats.Kernels != 3 {
		t.Errorf("kernels = %d, want 3", d.Stats.Kernels)
	}
}

func TestNVLinkBandwidthCurve(t *testing.T) {
	m := newTestMachine(t, 1)
	d := m.Devs[0]
	// Monotone in segment size and saturating below the peak.
	prev := 0.0
	for _, seg := range []float64{4, 8, 16, 32, 64, 128, 256, 1024, 4096} {
		bw := d.nvlinkEffGBs(seg)
		if bw <= prev {
			t.Errorf("bandwidth not increasing at seg %g: %g <= %g", seg, bw, prev)
		}
		if bw >= m.Cfg.Link.NVLinkEffGBs {
			t.Errorf("bandwidth above peak at seg %g: %g", seg, bw)
		}
		prev = bw
	}
	// Paper Figure 8 at 64 B: BusBW ~181 GB/s of payload.
	if bw := d.nvlinkEffGBs(64); bw < 170 || bw > 200 {
		t.Errorf("effective BW(64B) = %g, want ~184", bw)
	}
	if bw := d.nvlinkEffGBs(1024); bw < 0.9*m.Cfg.Link.NVLinkEffGBs {
		t.Errorf("effective BW(1KB) = %g, not near peak", bw)
	}
}

func TestTableILatencyModels(t *testing.T) {
	m := newTestMachine(t, 1)
	d := m.Devs[0]
	// Paper Table I values in microseconds.
	cases := []struct {
		gb      float64
		um, p2p float64
		tolUM   float64
		tolP2P  float64
	}{
		{8, 20.8, 1.35, 2.0, 0.1},
		{16, 29.6, 1.37, 4.5, 0.1},
		{32, 32.5, 1.43, 2.5, 0.1},
		{64, 35.3, 1.51, 1.5, 0.1},
		{128, 35.8, 1.56, 1.0, 0.1},
	}
	for _, c := range cases {
		um := d.UMAccessLatency(c.gb) * 1e6
		p2p := d.P2PAccessLatency(c.gb) * 1e6
		if math.Abs(um-c.um) > c.tolUM {
			t.Errorf("UM latency at %g GB = %.1f us, paper %.1f", c.gb, um, c.um)
		}
		if math.Abs(p2p-c.p2p) > c.tolP2P {
			t.Errorf("P2P latency at %g GB = %.2f us, paper %.2f", c.gb, p2p, c.p2p)
		}
		if um < 10*p2p {
			t.Errorf("UM (%.1f) should be >=10x P2P (%.2f) at %g GB", um, p2p, c.gb)
		}
	}
}

func TestHostCopySharedPCIe(t *testing.T) {
	m := newTestMachine(t, 1)
	d := m.Devs[0]
	dt := d.HostCopy(16e9)
	// 16 GB at 16 GB/s per-GPU share = ~1 s, and the GPU is idle.
	if dt < 0.99 || dt > 1.01 {
		t.Errorf("16GB host copy = %g s, want ~1", dt)
	}
	if d.Stats.IdleSeconds < 0.99 {
		t.Errorf("host copy not counted as idle: %g", d.Stats.IdleSeconds)
	}
	if d.Stats.BusySeconds != 0 {
		t.Errorf("host copy counted as busy: %g", d.Stats.BusySeconds)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	m := newTestMachine(t, 1)
	m.Devs[0].busy(1.0, "w")
	m.Devs[3].busy(2.5, "w")
	tm := Barrier(m.NodeDevs(0))
	if tm != 2.5 {
		t.Fatalf("barrier time = %g, want 2.5", tm)
	}
	for _, d := range m.NodeDevs(0) {
		if d.Now() != 2.5 {
			t.Errorf("dev %d at %g after barrier", d.ID, d.Now())
		}
	}
	if m.Devs[0].Stats.IdleSeconds != 1.5 {
		t.Errorf("dev 0 idle = %g, want 1.5", m.Devs[0].Stats.IdleSeconds)
	}
}

func TestCollectiveCosts(t *testing.T) {
	m := newTestMachine(t, 1)
	devs := m.NodeDevs(0)
	bytes := 1e9
	end := AllReduceBytes(devs, bytes)
	// Ring allreduce moves 2(n-1)/n*bytes per device: at ~270 GB/s
	// effective that is ~6.5 ms.
	if end < 5e-3 || end > 9e-3 {
		t.Errorf("1GB allreduce over 8 GPUs = %g s, want ~6.5ms", end)
	}
	m.Reset()
	endAG := AllGatherBytes(devs, bytes/8)
	if endAG <= 0 || endAG > end {
		t.Errorf("allgather of shards should be cheaper than allreduce: %g vs %g", endAG, end)
	}

	// Multi-node allreduce is slower than single-node for the same bytes.
	m2 := newTestMachine(t, 4)
	t2 := HierarchicalAllReduce(m2, bytes)
	m.Reset()
	t1 := HierarchicalAllReduce(m, bytes)
	if t2 <= t1 {
		t.Errorf("4-node allreduce (%g) should exceed 1-node (%g)", t2, t1)
	}
}

func TestAlltoAllv(t *testing.T) {
	m := newTestMachine(t, 1)
	devs := m.NodeDevs(0)[:4]
	send := make([][]float64, 4)
	for i := range send {
		send[i] = make([]float64, 4)
		for j := range send[i] {
			if i != j {
				send[i][j] = 1e8
			}
		}
	}
	end := AlltoAllvBytes(devs, send)
	if end <= 0 {
		t.Fatal("alltoallv cost zero")
	}
	for _, d := range devs {
		if d.Now() != end {
			t.Errorf("dev %d not synchronized after alltoallv: %g != %g", d.ID, d.Now(), end)
		}
	}
	// Doubling one device's egress volume increases the time.
	m.Reset()
	send[1][0] *= 10
	send[1][2] *= 10
	send[1][3] *= 10
	end2 := AlltoAllvBytes(devs, send)
	if end2 <= end {
		t.Errorf("heavier alltoallv not slower: %g <= %g", end2, end)
	}
}

func TestSendRecv(t *testing.T) {
	m := newTestMachine(t, 1)
	a, b := m.Devs[0], m.Devs[1]
	a.busy(1.0, "w")
	end := SendRecv(a, b, 3e9)
	if a.Now() != end || b.Now() != end {
		t.Errorf("clocks diverge after sendrecv: %g %g %g", a.Now(), b.Now(), end)
	}
	if end < 1.0+3e9/(300e9) {
		t.Errorf("sendrecv too fast: %g", end)
	}
}

func TestUtilizationTrace(t *testing.T) {
	m := newTestMachine(t, 1)
	d := m.Devs[0]
	d.Tracing = true
	d.busy(1.0, "k")
	d.idle(1.0, "wait")
	d.busy(2.0, "k")
	u := Utilization(d.Trace(), 0, 4, 4)
	want := []float64{1, 0, 1, 1}
	for i := range want {
		if math.Abs(u[i]-want[i]) > 1e-9 {
			t.Errorf("util[%d] = %g, want %g", i, u[i], want[i])
		}
	}
	if bf := BusyFraction(d.Trace(), 0, 4); math.Abs(bf-0.75) > 1e-9 {
		t.Errorf("busy fraction = %g, want 0.75", bf)
	}
	// Window narrower than a single interval.
	if bf := BusyFraction(d.Trace(), 1.25, 1.75); bf != 0 {
		t.Errorf("busy fraction inside idle window = %g, want 0", bf)
	}
}

func TestUtilizationProperties(t *testing.T) {
	// Property: utilization buckets are always within [0,1] and total busy
	// time equals the sum over buckets times bucket width.
	f := func(busySpans []uint8) bool {
		var trace []Interval
		t0 := 0.0
		for i, b := range busySpans {
			dt := float64(b%50)/10 + 0.05
			trace = append(trace, Interval{Start: t0, End: t0 + dt, Busy: i%2 == 0})
			t0 += dt
		}
		if t0 == 0 {
			return true
		}
		u := Utilization(trace, 0, t0, 17)
		sum := 0.0
		for _, v := range u {
			if v < 0 || v > 1+1e-9 {
				return false
			}
			sum += v * t0 / 17
		}
		busy := 0.0
		for _, iv := range trace {
			if iv.Busy {
				busy += iv.End - iv.Start
			}
		}
		return math.Abs(sum-busy) < 1e-6*math.Max(1, busy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestResetClearsState(t *testing.T) {
	m := newTestMachine(t, 1)
	d := m.Devs[0]
	d.Tracing = true
	d.Kernel(KernelCost{FLOPs: 1e9})
	m.CPUs[0].Gather(1e6)
	if m.MaxTime() == 0 {
		t.Fatal("no time advanced")
	}
	m.Reset()
	if m.MaxTime() != 0 || len(d.Trace()) != 0 || d.Stats.Kernels != 0 {
		t.Error("Reset did not clear clocks/trace/stats")
	}
}

func TestCPUCharging(t *testing.T) {
	m := newTestMachine(t, 1)
	c := m.CPUs[0]
	dt := c.Gather(3e9)
	if math.Abs(dt-1.0) > 1e-9 {
		t.Errorf("3GB random gather at 3 GB/s = %g s, want 1", dt)
	}
	if s := c.Stream(24e9); math.Abs(s-1.0) > 1e-9 {
		t.Errorf("24GB stream = %g s, want 1", s)
	}
	if o := c.Ops(2.5e9); math.Abs(o-1.0) > 1e-9 {
		t.Errorf("2.5G ops = %g s, want 1", o)
	}
	if c.Now() < 2.99 {
		t.Errorf("cpu clock = %g, want ~3", c.Now())
	}
}

func TestWriteChromeTrace(t *testing.T) {
	m := newTestMachine(t, 1)
	d := m.Devs[0]
	d.Tracing = true
	d.Kernel(KernelCost{FLOPs: 1e9, Tag: "gemm"})
	d.IdleFor(1e-3, "pcie")
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, m.Devs); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if events[0]["name"] != "gemm" || events[0]["cat"] != "kernel" {
		t.Errorf("first event wrong: %v", events[0])
	}
	if events[1]["cat"] != "idle" {
		t.Errorf("second event should be idle: %v", events[1])
	}
	if dur, _ := events[1]["dur"].(float64); dur < 999 || dur > 1001 {
		t.Errorf("idle duration = %v us, want ~1000", events[1]["dur"])
	}
}

func TestPCIeServerPreset(t *testing.T) {
	cfg := PCIeServer(1)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	dgx := DGXA100(1)
	if cfg.Link.NVLinkEffGBs >= dgx.Link.NVLinkEffGBs {
		t.Error("PCIe server peer bandwidth should be far below NVSwitch")
	}
	if cfg.Link.P2PBaseLatency <= dgx.Link.P2PBaseLatency {
		t.Error("PCIe peer latency should exceed NVLink's")
	}
	// Same gather kernel is much slower on the PCIe fabric.
	mDGX := NewMachine(dgx)
	mPCIe := NewMachine(cfg)
	c := KernelCost{RemoteBytes: 1e8, RemoteSegBytes: 512}
	tDGX := mDGX.Devs[0].Kernel(c)
	tPCIe := mPCIe.Devs[0].Kernel(c)
	if tPCIe < 10*tDGX {
		t.Errorf("PCIe gather (%g) should be >=10x DGX gather (%g)", tPCIe, tDGX)
	}
}

func TestKernelUMAndZeroCopyCosts(t *testing.T) {
	m := newTestMachine(t, 1)
	d := m.Devs[0]
	l := m.Cfg.Link

	dt := d.Kernel(KernelCost{UMBytes: 1e9})
	want := m.Cfg.Device.KernelLaunch + 1e9/(l.UMBulkGBs*1e9)
	if math.Abs(dt-want) > 1e-12 {
		t.Errorf("UM kernel = %g, want %g", dt, want)
	}

	dt = d.Kernel(KernelCost{HostZeroCopyBytes: 1e9, HostSegBytes: 512})
	per := l.PCIeGBs / float64(l.GPUsPerSwitch) * 512 / (512 + l.NVLinkHeaderBytes)
	want = m.Cfg.Device.KernelLaunch + 1e9/(per*1e9)
	if math.Abs(dt-want) > 1e-12 {
		t.Errorf("zero-copy kernel = %g, want %g", dt, want)
	}

	// Ordering at equal bytes: P2P < UM < zero-copy host.
	tp := d.Kernel(KernelCost{RemoteBytes: 1e8, RemoteSegBytes: 512})
	tu := d.Kernel(KernelCost{UMBytes: 1e8})
	th := d.Kernel(KernelCost{HostZeroCopyBytes: 1e8, HostSegBytes: 512})
	if !(tp < tu && tu < th) {
		t.Errorf("backing costs not ordered: p2p=%g um=%g host=%g", tp, tu, th)
	}
}
