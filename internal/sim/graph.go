package sim

// Step-graph replay mode (CUDA-Graph analogue). A training step whose op
// sequence was captured once can be re-executed as a single graph launch:
// the host pays GraphLaunch once per replay instead of KernelLaunch per
// kernel, which is the overhead CUDA Graphs eliminate on the real system.
//
// The device keeps a replay depth rather than a flag so nested brackets
// compose (e.g. a forward bracket inside a whole-step bracket); only the
// outermost bracket charges the graph launch. While the depth is positive,
// Kernel() suppresses its per-kernel launch overhead and counts the kernel
// in Stats.GraphKernels, and busy intervals carry Interval.Graph so traces
// can show replayed work in its own category.
//
// Like every clock-advancing method, these are owner-only: call them from
// the goroutine that owns the device between barriers.

// BeginGraphReplay enters graph-replay mode on the current stream. The
// outermost call charges the one-time graph launch overhead as busy time
// tagged with the given tag (empty defaults to "graph-launch").
func (d *Device) BeginGraphReplay(tag string) {
	d.graphDepth++
	if d.graphDepth == 1 {
		if tag == "" {
			tag = "graph-launch"
		}
		// Charged after the depth increment so the interval is flagged as
		// graph work in the trace.
		d.busy(d.m.Cfg.Device.GraphLaunch, tag)
		d.Stats.GraphLaunches++
	}
}

// EndGraphReplay leaves the innermost graph-replay bracket.
func (d *Device) EndGraphReplay() {
	if d.graphDepth == 0 {
		panic("sim: EndGraphReplay without matching BeginGraphReplay")
	}
	d.graphDepth--
}

// InGraphReplay reports whether the device is inside a graph-replay bracket.
func (d *Device) InGraphReplay() bool { return d.graphDepth > 0 }
