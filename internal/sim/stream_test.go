package sim

import (
	"math"
	"testing"
)

func streamTestDevice() *Device {
	m := NewMachine(DGXA100(1))
	return m.Devs[0]
}

func TestStreamsAdvanceIndependently(t *testing.T) {
	d := streamTestDevice()
	d.busy(1.0, "compute")
	if got := d.StreamNow(StreamCopy); got != 0 {
		t.Fatalf("copy clock moved with compute work: %g", got)
	}
	prev := d.SetStream(StreamCopy)
	if prev != StreamCompute {
		t.Fatalf("previous stream = %v, want compute", prev)
	}
	if d.Now() != 0 {
		t.Fatalf("Now on copy stream = %g, want 0", d.Now())
	}
	d.busy(0.25, "copy")
	d.SetStream(prev)
	if got := d.StreamNow(StreamCopy); got != 0.25 {
		t.Errorf("copy clock = %g, want 0.25", got)
	}
	if got := d.Now(); got != 1.0 {
		t.Errorf("compute clock = %g, want 1.0", got)
	}
	if d.Stats.BusySeconds != 1.0 || d.Stats.CopyBusySeconds != 0.25 {
		t.Errorf("stats split busy %g copy %g, want 1.0 / 0.25", d.Stats.BusySeconds, d.Stats.CopyBusySeconds)
	}
}

func TestKernelChargesCurrentStream(t *testing.T) {
	d := streamTestDevice()
	var dtCopy float64
	d.OnStream(StreamCopy, func() {
		dtCopy = d.Kernel(KernelCost{StreamBytes: 1e9, Tag: "gather"})
	})
	if d.CurrentStream() != StreamCompute {
		t.Fatalf("OnStream did not restore the compute stream")
	}
	if d.StreamNow(StreamCompute) != 0 {
		t.Errorf("compute clock advanced by copy-stream kernel")
	}
	if got := d.StreamNow(StreamCopy); got != dtCopy || dtCopy <= 0 {
		t.Errorf("copy clock = %g, want kernel time %g > 0", got, dtCopy)
	}
}

func TestEventWaitJoinsStreams(t *testing.T) {
	d := streamTestDevice()
	// Produce on the copy stream until t=2, consume on compute from t=0.5.
	var ev Event
	d.OnStream(StreamCopy, func() {
		d.busy(2.0, "produce")
		ev = d.RecordEvent()
	})
	d.busy(0.5, "other")
	d.WaitEvent(ev, "wait.batch")
	if got := d.Now(); got != 2.0 {
		t.Fatalf("compute clock after wait = %g, want 2.0", got)
	}
	if d.Stats.IdleSeconds != 1.5 {
		t.Errorf("wait recorded %g idle seconds, want 1.5", d.Stats.IdleSeconds)
	}
	// A second wait on the same (now past) event is free.
	d.WaitEvent(ev, "wait.batch")
	if got := d.Now(); got != 2.0 {
		t.Errorf("re-wait moved the clock to %g", got)
	}
	// The zero event never blocks.
	d.WaitEvent(Event{}, "wait.zero")
	if got := d.Now(); got != 2.0 {
		t.Errorf("zero-event wait moved the clock to %g", got)
	}
}

func TestSyncStreamsJoinsBoth(t *testing.T) {
	d := streamTestDevice()
	d.busy(1.0, "compute")
	d.OnStream(StreamCopy, func() { d.busy(3.0, "copy") })
	d.SyncStreams("sync")
	if c, k := d.StreamNow(StreamCompute), d.StreamNow(StreamCopy); c != 3.0 || k != 3.0 {
		t.Errorf("after sync compute=%g copy=%g, want both 3.0", c, k)
	}
}

func TestSpanIsLaterStreamClock(t *testing.T) {
	d := streamTestDevice()
	if d.Span() != 0 {
		t.Fatalf("fresh device Span = %g", d.Span())
	}
	d.busy(1.0, "compute")
	if got := d.Span(); got != 1.0 {
		t.Errorf("Span = %g, want compute clock 1.0", got)
	}
	d.OnStream(StreamCopy, func() { d.busy(2.5, "copy") })
	if got := d.Span(); got != 2.5 {
		t.Errorf("Span = %g, want copy clock 2.5", got)
	}
}

func TestMaxTimeAndResetCoverCopyStream(t *testing.T) {
	m := NewMachine(DGXA100(1))
	d := m.Devs[3]
	d.OnStream(StreamCopy, func() { d.busy(7.0, "copy") })
	if got := m.MaxTime(); got != 7.0 {
		t.Fatalf("MaxTime = %g, want 7.0 from the copy stream", got)
	}
	d.SetStream(StreamCopy)
	m.Reset()
	if d.StreamNow(StreamCopy) != 0 || d.StreamNow(StreamCompute) != 0 {
		t.Error("Reset left a stream clock non-zero")
	}
	if d.CurrentStream() != StreamCompute {
		t.Error("Reset did not restore the compute stream selection")
	}
	if got := m.MaxTime(); got != 0 {
		t.Errorf("MaxTime after Reset = %g", got)
	}
}

func TestTraceMarksStreams(t *testing.T) {
	d := streamTestDevice()
	d.Tracing = true
	d.busy(1.0, "k")
	d.OnStream(StreamCopy, func() { d.busy(0.5, "g") })
	tr := d.Trace()
	if len(tr) != 2 {
		t.Fatalf("trace has %d intervals, want 2", len(tr))
	}
	if tr[0].Stream != StreamCompute || tr[1].Stream != StreamCopy {
		t.Errorf("stream marks = %v, %v", tr[0].Stream, tr[1].Stream)
	}
	copyOnly := FilterStream(tr, StreamCopy)
	if len(copyOnly) != 1 || copyOnly[0].Tag != "g" {
		t.Errorf("FilterStream(copy) = %+v", copyOnly)
	}
	// Per-stream busy fractions stay meaningful: the copy stream was busy
	// 0.5 of its first second, the compute stream all of it.
	if bf := BusyFraction(FilterStream(tr, StreamCompute), 0, 1); math.Abs(bf-1) > 1e-12 {
		t.Errorf("compute busy fraction = %g", bf)
	}
	if bf := BusyFraction(copyOnly, 0, 1); math.Abs(bf-0.5) > 1e-12 {
		t.Errorf("copy busy fraction = %g", bf)
	}
}
