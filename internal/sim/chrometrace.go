package sim

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace export: device timelines (the busy/idle intervals recorded
// when Tracing is enabled) serialized in the Chrome Trace Event format, so
// chrome://tracing or Perfetto can visualize what each simulated GPU did
// during a run — the same way one would inspect an Nsight timeline on the
// real system.

// chromeEvent is one complete event ("ph":"X") in the trace file.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	TsUs float64 `json:"ts"`
	DUs  float64 `json:"dur"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

// WriteChromeTrace writes the recorded intervals of the given devices as a
// Chrome Trace Event JSON array. Devices appear as threads of one process
// per machine node: a compute lane, a copy-stream lane (when used), a
// comms lane holding the collective engine's transfer intervals from either
// stream, and a scheduler lane showing which span the whole-step scheduler
// reserved for each DAG node. Idle intervals are emitted in an "idle"
// category so the viewer can filter them; scheduler-placed work carries its
// DAG node ID in the event name ("#n12"). Devices without tracing enabled
// contribute nothing.
func WriteChromeTrace(w io.Writer, devs []*Device) error {
	var events []chromeEvent
	for _, d := range devs {
		for _, iv := range d.Trace() {
			cat := "kernel"
			name := iv.Tag
			if !iv.Busy {
				cat = "idle"
				if name == "" {
					name = "idle"
				}
			}
			tid := 4 * d.Local
			if iv.Stream == StreamCopy {
				cat += ".copy"
				tid++
			}
			if iv.Graph && iv.Busy && !iv.Comm {
				cat = "graph"
			}
			if iv.Comm {
				cat = "comm"
				tid = 4*d.Local + 2
			}
			if iv.Decision {
				cat = "sched"
				tid = 4*d.Local + 3
			}
			if iv.Node > 0 {
				name = fmt.Sprintf("%s #n%d", name, iv.Node)
			}
			events = append(events, chromeEvent{
				Name: name,
				Cat:  cat,
				Ph:   "X",
				TsUs: iv.Start * 1e6,
				DUs:  (iv.End - iv.Start) * 1e6,
				PID:  d.Node,
				TID:  tid,
			})
		}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(events); err != nil {
		return fmt.Errorf("sim: writing chrome trace: %w", err)
	}
	return nil
}
