package sim

import "math"

// DeviceStats accumulates op counts for reporting and tests. BusySeconds
// and IdleSeconds cover the compute stream; time charged while the copy
// stream is current accrues to CopyBusySeconds/CopyIdleSeconds instead, so
// the compute totals stay comparable to wall time even when the streams
// overlap.
type DeviceStats struct {
	Kernels         int64
	FLOPs           float64
	LocalBytes      float64
	RemoteBytes     float64
	HostBytes       float64
	AllocatedByte   float64
	BusySeconds     float64
	IdleSeconds     float64
	CopyBusySeconds float64
	CopyIdleSeconds float64
	// Per-link traffic of the collective engine: bytes this device sent
	// over its NVLink egress port and its share of the node's InfiniBand
	// NIC, plus the total time its streams spent inside collectives
	// (commBusy intervals on either stream).
	NVLinkTxBytes float64
	IBTxBytes     float64
	CommSeconds   float64
	// Step-graph replay accounting: GraphLaunches counts whole-graph
	// launches (each charging GraphLaunch once), GraphKernels counts the
	// kernels that executed inside a replay with their per-kernel launch
	// overhead suppressed.
	GraphLaunches int64
	GraphKernels  int64
}

// Device is one simulated GPU with two virtual timelines: a compute
// stream and a copy stream (see stream.go). All methods advance the
// currently selected stream's clock; none of them are safe for concurrent
// use on the same device. Under RunParallel, each device — both its
// streams — is owned by exactly one goroutine between barriers (see
// exec.go); distinct devices may be driven concurrently because a device's
// clocks, trace and stats are touched only by its owner.
type Device struct {
	ID    int // global device index
	Node  int // machine node index
	Local int // index within the node

	m       *Machine
	now     float64    // compute-stream clock
	copyNow float64    // copy-stream clock
	stream  StreamKind // stream that charges currently land on
	trace   []Interval
	// graphDepth > 0 while a captured step graph is replaying on this
	// device (see graph.go): kernels skip their launch overhead and busy
	// intervals are flagged for the trace.
	graphDepth int
	// Tracing controls whether busy/idle intervals are recorded (needed
	// only for utilization plots; costs memory on long runs).
	Tracing bool
	Stats   DeviceStats
	// rec, when non-nil, intercepts busy/commBusy charges instead of
	// advancing the stream clocks: the whole-step scheduler (internal/sched)
	// attaches one while replaying a captured step so it can re-place the
	// charges onto streams afterwards via ApplyCharge. Kernel's op counters
	// (Kernels, FLOPs, bytes, GraphKernels) still accrue at record time;
	// the seconds accrue when the charge is applied — each side exactly once.
	rec ChargeRecorder
	// schedNode labels subsequently recorded intervals with a scheduler DAG
	// node ID (see Interval.Node); 0 means unlabelled.
	schedNode int
}

// ChargeRecorder receives the charges a device would have applied to its
// current stream. comm distinguishes collective-transfer time (commBusy)
// from kernel time.
type ChargeRecorder interface {
	RecordCharge(dt float64, tag string, comm bool)
}

// AttachRecorder routes this device's busy/commBusy charges to r until
// DetachRecorder. Idle time is dropped while recording (waits are a
// scheduling outcome, not a cost of the recorded work).
func (d *Device) AttachRecorder(r ChargeRecorder) { d.rec = r }

// DetachRecorder restores normal clock-advancing charging.
func (d *Device) DetachRecorder() { d.rec = nil }

// SetSchedNode labels intervals recorded from now on with the given
// scheduler DAG node ID (0 clears the label).
func (d *Device) SetSchedNode(id int) { d.schedNode = id }

// ApplyCharge applies a previously recorded charge to the current stream:
// the counterpart of ChargeRecorder.RecordCharge, used by the scheduler
// when it replays charges at their scheduled positions.
func (d *Device) ApplyCharge(dt float64, tag string, comm bool) {
	if comm {
		d.commBusy(dt, tag)
	} else {
		d.busy(dt, tag)
	}
}

// RecordDecision appends a scheduler-decision annotation covering [start,
// end) to the trace (no clock movement): the span the list scheduler
// reserved for DAG node id. No-op unless Tracing.
func (d *Device) RecordDecision(start, end float64, tag string, id int) {
	if !d.Tracing {
		return
	}
	d.trace = append(d.trace, Interval{Start: start, End: end, Tag: tag, Stream: d.stream, Node: id, Decision: true})
}

// Machine returns the machine this device belongs to.
func (d *Device) Machine() *Machine { return d.m }

// Now returns the current stream's virtual clock in seconds.
func (d *Device) Now() float64 {
	if d.stream == StreamCopy {
		return d.copyNow
	}
	return d.now
}

// clock returns the current stream's clock for advancing.
func (d *Device) clock() *float64 {
	if d.stream == StreamCopy {
		return &d.copyNow
	}
	return &d.now
}

// busy advances the current stream by dt seconds of busy (kernel) time.
func (d *Device) busy(dt float64, tag string) {
	if dt <= 0 {
		return
	}
	if d.rec != nil {
		d.rec.RecordCharge(dt, tag, false)
		return
	}
	clk := d.clock()
	if d.Tracing {
		d.trace = append(d.trace, Interval{Start: *clk, End: *clk + dt, Busy: true, Tag: tag, Stream: d.stream, Graph: d.graphDepth > 0, Node: d.schedNode})
	}
	*clk += dt
	if d.stream == StreamCopy {
		d.Stats.CopyBusySeconds += dt
	} else {
		d.Stats.BusySeconds += dt
	}
}

// commBusy advances the current stream by dt seconds of communication busy
// time: like busy, but the interval is flagged as a collective transfer
// (its own Chrome-trace lane) and accrues to Stats.CommSeconds.
func (d *Device) commBusy(dt float64, tag string) {
	if dt <= 0 {
		return
	}
	if d.rec != nil {
		d.rec.RecordCharge(dt, tag, true)
		return
	}
	clk := d.clock()
	if d.Tracing {
		d.trace = append(d.trace, Interval{Start: *clk, End: *clk + dt, Busy: true, Comm: true, Tag: tag, Stream: d.stream, Node: d.schedNode})
	}
	*clk += dt
	if d.stream == StreamCopy {
		d.Stats.CopyBusySeconds += dt
	} else {
		d.Stats.BusySeconds += dt
	}
	d.Stats.CommSeconds += dt
}

// idle advances the current stream by dt seconds of idle (waiting) time.
func (d *Device) idle(dt float64, tag string) {
	if dt <= 0 || d.rec != nil {
		return
	}
	clk := d.clock()
	if d.Tracing {
		d.trace = append(d.trace, Interval{Start: *clk, End: *clk + dt, Busy: false, Tag: tag, Stream: d.stream})
	}
	*clk += dt
	if d.stream == StreamCopy {
		d.Stats.CopyIdleSeconds += dt
	} else {
		d.Stats.IdleSeconds += dt
	}
}

// IdleUntil advances the current stream's clock to t (if in the future) as
// idle time.
func (d *Device) IdleUntil(t float64) {
	if t > d.Now() {
		d.idle(t-d.Now(), "wait")
	}
}

// IdleFor advances the clock by dt seconds of idle time, modelling the GPU
// waiting on an external producer (host sampling, PCIe copy, network).
func (d *Device) IdleFor(dt float64, tag string) { d.idle(dt, tag) }

// nvlinkEffGBs returns the achievable payload bandwidth (GB/s) for the
// remote bytes of a gather with the given contiguous segment size. The
// per-segment header overhead reproduces Figure 8 of the paper: bandwidth
// grows with segment size and saturates once segments dwarf the header.
func (d *Device) nvlinkEffGBs(segBytes float64) float64 {
	l := d.m.Cfg.Link
	if segBytes <= 0 {
		segBytes = 4
	}
	return l.NVLinkEffGBs * segBytes / (segBytes + l.NVLinkHeaderBytes)
}

// KernelCost describes one kernel for charging purposes. Zero-value fields
// cost nothing.
type KernelCost struct {
	// FLOPs of dense arithmetic.
	FLOPs float64
	// StreamBytes of sequential local-memory traffic.
	StreamBytes float64
	// RandBytes of random-access local-memory traffic.
	RandBytes float64
	// RemoteBytes of peer-GPU traffic over NVLink (P2P loads/stores
	// issued from inside the kernel).
	RemoteBytes float64
	// RemoteSegBytes is the contiguous segment size of the remote
	// accesses; it selects the point on the Figure 8 bandwidth curve.
	RemoteSegBytes float64
	// UMBytes of traffic to non-resident Unified Memory (page-fault
	// migration path), for UM-backed allocations.
	UMBytes float64
	// HostZeroCopyBytes of traffic to pinned host memory accessed
	// directly from the kernel over the device's PCIe share, with
	// HostSegBytes contiguity.
	HostZeroCopyBytes float64
	HostSegBytes      float64
	// Tag labels the busy interval in utilization traces.
	Tag string
}

// Kernel charges one kernel launch using a roofline model: launch overhead
// plus the maximum of the compute time and each class of memory time. Local
// and remote traffic overlap with compute (the slowest resource bounds the
// kernel), which matches how a gather kernel saturates NVLink regardless of
// its modest arithmetic.
func (d *Device) Kernel(c KernelCost) float64 {
	p := d.m.Cfg.Device
	tc := c.FLOPs / (p.FP32TFLOPS * 1e12 * p.GemmEff)
	tm := c.StreamBytes / (p.MemBWGBs * 1e9 * p.MemEff)
	tr := c.RandBytes / (p.MemBWGBs * 1e9 * p.RandMemEff)
	tp := 0.0
	if c.RemoteBytes > 0 {
		tp = c.RemoteBytes / (d.nvlinkEffGBs(c.RemoteSegBytes) * 1e9)
	}
	l := d.m.Cfg.Link
	tu := 0.0
	if c.UMBytes > 0 {
		tu = c.UMBytes / (l.UMBulkGBs * 1e9)
	}
	th := 0.0
	if c.HostZeroCopyBytes > 0 {
		seg := c.HostSegBytes
		if seg <= 0 {
			seg = 4
		}
		per := l.PCIeGBs / float64(l.GPUsPerSwitch) * seg / (seg + l.NVLinkHeaderBytes)
		th = c.HostZeroCopyBytes / (per * 1e9)
	}
	launch := p.KernelLaunch
	if d.graphDepth > 0 {
		// Inside a graph replay the kernel was baked into the captured
		// graph: no per-kernel host dispatch, the step paid GraphLaunch
		// once at BeginGraphReplay.
		launch = 0
		d.Stats.GraphKernels++
	}
	dt := launch + math.Max(math.Max(math.Max(tc, tm), math.Max(tr, tp)), math.Max(tu, th))
	tag := c.Tag
	if tag == "" {
		tag = "kernel"
	}
	d.busy(dt, tag)
	d.Stats.Kernels++
	d.Stats.FLOPs += c.FLOPs
	d.Stats.LocalBytes += c.StreamBytes + c.RandBytes
	d.Stats.RemoteBytes += c.RemoteBytes + c.UMBytes
	d.Stats.HostBytes += c.HostZeroCopyBytes
	return dt
}

// Gemm charges a dense [m x k] * [k x n] matrix multiply.
func (d *Device) Gemm(m, n, k int, tag string) float64 {
	fl := 2 * float64(m) * float64(n) * float64(k)
	by := 4 * (float64(m)*float64(k) + float64(k)*float64(n) + float64(m)*float64(n))
	return d.Kernel(KernelCost{FLOPs: fl, StreamBytes: by, Tag: tag})
}

// Malloc charges a cudaMalloc of the given size and returns its duration.
func (d *Device) Malloc(bytes float64) float64 {
	p := d.m.Cfg.Device
	dt := p.MallocBase + p.MallocPerGB*bytes/1e9
	d.busy(dt, "malloc")
	d.Stats.AllocatedByte += bytes
	return dt
}

// HostCopy charges a PCIe transfer between host and this device. The GPU's
// compute engines are idle during the copy (nvidia-smi reports 0%
// utilization), which is how the baseline frameworks lose their time. The
// PCIe switch uplink is shared by GPUsPerSwitch devices; the paper's own
// analysis uses the resulting static per-GPU share (16 GB/s on DGX-A100),
// and so do we.
func (d *Device) HostCopy(bytes float64) float64 {
	l := d.m.Cfg.Link
	per := l.PCIeGBs / float64(l.GPUsPerSwitch)
	dt := l.PCIeLatency + bytes/(per*1e9)
	d.idle(dt, "pcie")
	d.Stats.HostBytes += bytes
	return dt
}

// P2PAccessLatency returns the latency in seconds of one dependent GPUDirect
// peer access over a working set of the given total size (Table I model).
func (d *Device) P2PAccessLatency(workingSetGB float64) float64 {
	l := d.m.Cfg.Link
	return l.P2PBaseLatency + l.P2PLatencyPerGB*workingSetGB
}

// UMAccessLatency returns the latency in seconds of one dependent Unified
// Memory access (page-fault service) over a working set of the given size.
// Growth saturates as the fault path cost dominates (Table I model).
func (d *Device) UMAccessLatency(workingSetGB float64) float64 {
	l := d.m.Cfg.Link
	g := workingSetGB - 8
	if g < 0 {
		g = 0
	}
	return l.UMBaseLatency + l.UMExtraLatency*(1-math.Exp(-g/l.UMSaturationGB))
}

// ChaseP2P charges n dependent peer accesses (a pointer chase) and returns
// the total time; used by the Table I microbenchmark.
func (d *Device) ChaseP2P(n int, workingSetGB float64) float64 {
	dt := float64(n) * d.P2PAccessLatency(workingSetGB)
	d.busy(dt, "chase-p2p")
	return dt
}

// ChaseUM charges n dependent Unified Memory accesses.
func (d *Device) ChaseUM(n int, workingSetGB float64) float64 {
	dt := float64(n) * d.UMAccessLatency(workingSetGB)
	d.busy(dt, "chase-um")
	return dt
}

// CPU is the host executor of one node. Baseline (host-memory) pipelines
// charge their sampling and gathering here. Like a Device, a CPU is owned
// by one goroutine between barriers; pipelines needing concurrent host
// executors register extras with Machine.AddCPU.
type CPU struct {
	Node int

	m   *Machine
	now float64
}

// Now returns the CPU's virtual clock in seconds.
func (c *CPU) Now() float64 { return c.now }

// SetNow moves the CPU clock forward to t if t is in the future.
func (c *CPU) SetNow(t float64) {
	if t > c.now {
		c.now = t
	}
}

// Advance adds dt seconds of host work and returns dt.
func (c *CPU) Advance(dt float64) float64 {
	if dt > 0 {
		c.now += dt
	}
	return dt
}

// Gather charges a random gather of the given bytes from host memory.
func (c *CPU) Gather(bytes float64) float64 {
	return c.Advance(bytes / (c.m.Cfg.CPU.GatherGBs * 1e9))
}

// Stream charges sequential host-memory traffic of the given bytes.
func (c *CPU) Stream(bytes float64) float64 {
	return c.Advance(bytes / (c.m.Cfg.CPU.MemBWGBs * 1e9))
}

// Ops charges n generic scalar operations of host code.
func (c *CPU) Ops(n float64) float64 {
	return c.Advance(n / c.m.Cfg.CPU.ScalarOpsPerSec)
}
