package sim

import "testing"

// TestGraphReplaySuppressesLaunch pins the cost model of step-graph replay:
// inside a BeginGraphReplay bracket every kernel skips its host launch
// latency, the bracket itself charges one GraphLaunch, and the counters and
// trace intervals record graph execution.
func TestGraphReplaySuppressesLaunch(t *testing.T) {
	m := newTestMachine(t, 1)
	d := m.Devs[0]
	d.Tracing = true
	p := m.Cfg.Device
	cost := KernelCost{StreamBytes: 1e6, Tag: "k"}
	mem := 1e6 / (p.MemBWGBs * 1e9 * p.MemEff)

	t0 := d.Now()
	d.Kernel(cost)
	eager := d.Now() - t0
	if want := p.KernelLaunch + mem; !approx(eager, want) {
		t.Errorf("eager kernel dt %g, want launch+mem %g", eager, want)
	}

	t1 := d.Now()
	if d.InGraphReplay() {
		t.Error("InGraphReplay before bracket")
	}
	d.BeginGraphReplay("step")
	if !d.InGraphReplay() {
		t.Error("InGraphReplay false inside bracket")
	}
	d.Kernel(cost)
	d.Kernel(cost)
	d.EndGraphReplay()
	graph := d.Now() - t1
	if want := p.GraphLaunch + 2*mem; !approx(graph, want) {
		t.Errorf("graph bracket dt %g, want graphlaunch+2*mem %g", graph, want)
	}
	if d.Stats.GraphLaunches != 1 {
		t.Errorf("GraphLaunches = %d, want 1", d.Stats.GraphLaunches)
	}
	if d.Stats.GraphKernels != 2 {
		t.Errorf("GraphKernels = %d, want 2", d.Stats.GraphKernels)
	}

	var graphIvs, plainIvs int
	for _, iv := range d.Trace() {
		if !iv.Busy {
			continue
		}
		if iv.Graph {
			graphIvs++
		} else {
			plainIvs++
		}
	}
	// Bracket: the graph-launch interval plus two kernels; outside: one.
	if graphIvs != 3 {
		t.Errorf("%d graph-flagged busy intervals, want 3", graphIvs)
	}
	if plainIvs != 1 {
		t.Errorf("%d plain busy intervals, want 1", plainIvs)
	}
}

// TestGraphReplayNests checks that nested brackets charge one launch and
// that unbalanced EndGraphReplay panics.
func TestGraphReplayNests(t *testing.T) {
	m := newTestMachine(t, 1)
	d := m.Devs[0]
	d.BeginGraphReplay("outer")
	d.BeginGraphReplay("inner")
	d.Kernel(KernelCost{StreamBytes: 1e6})
	d.EndGraphReplay()
	if !d.InGraphReplay() {
		t.Error("outer bracket closed by inner end")
	}
	d.EndGraphReplay()
	if d.Stats.GraphLaunches != 1 {
		t.Errorf("nested brackets charged %d launches, want 1", d.Stats.GraphLaunches)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced EndGraphReplay did not panic")
		}
	}()
	d.EndGraphReplay()
}

// TestAlltoAllvCrossNodeIB pins the step-level routing of AlltoAllv: device
// sets spanning nodes pay InfiniBand on the crossing hops (and record the
// traffic as IB bytes), while a single-node exchange of the same payload
// stays on NVLink and finishes sooner.
func TestAlltoAllvCrossNodeIB(t *testing.T) {
	send := [][]float64{{0, 1e8}, {1e8, 0}}

	m := newTestMachine(t, 2)
	cross := []*Device{m.NodeDevs(0)[0], m.NodeDevs(1)[0]}
	crossEnd := AlltoAllvBytes(cross, send)
	if crossEnd <= 0 {
		t.Fatal("cross-node alltoallv cost zero")
	}
	for _, d := range cross {
		if d.Stats.IBTxBytes != 1e8 {
			t.Errorf("dev %d IBTxBytes = %g, want 1e8", d.ID, d.Stats.IBTxBytes)
		}
		if d.Stats.NVLinkTxBytes != 0 {
			t.Errorf("dev %d charged NVLink on a cross-node hop", d.ID)
		}
	}

	m2 := newTestMachine(t, 1)
	intra := m2.NodeDevs(0)[:2]
	intraEnd := AlltoAllvBytes(intra, send)
	for _, d := range intra {
		if d.Stats.IBTxBytes != 0 {
			t.Errorf("dev %d charged IB inside one node", d.ID)
		}
		if d.Stats.NVLinkTxBytes != 1e8 {
			t.Errorf("dev %d NVLinkTxBytes = %g, want 1e8", d.ID, d.Stats.NVLinkTxBytes)
		}
	}
	if crossEnd <= intraEnd {
		t.Errorf("cross-node alltoallv (%g) not slower than intra-node (%g)", crossEnd, intraEnd)
	}
}

// approx compares virtual times to within a relative 1e-9 (pure float64
// additions, so this is generous).
func approx(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+b)
}
