package sim

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// analytic hop times for cross-checking the step totals.
func nvHop(m *Machine, b float64) float64 { return nvlinkP2PTime(m, b) }
func ibHop(m *Machine, b float64) float64 { return ibTime(m, b) }

// TestRingTotalsMatchAnalytic pins the step-level engine to the classic
// closed forms on a synchronized single-node ring: AllGather costs
// (n-1)·hop(bytes) and AllReduce 2(n-1)·hop(bytes/n), to float tolerance.
func TestRingTotalsMatchAnalytic(t *testing.T) {
	const bytes = 64e6
	for _, n := range []int{2, 4, 8} {
		m := NewMachine(DGXA100(1))
		devs := m.NodeDevs(0)[:n]
		got := AllGatherBytes(devs, bytes)
		want := float64(n-1) * nvHop(m, bytes)
		if math.Abs(got-want) > 1e-12*want {
			t.Errorf("n=%d allgather = %v, analytic %v", n, got, want)
		}

		m2 := NewMachine(DGXA100(1))
		devs2 := m2.NodeDevs(0)[:n]
		got2 := AllReduceBytes(devs2, bytes)
		want2 := 2 * float64(n-1) * nvHop(m2, bytes/float64(n))
		if math.Abs(got2-want2) > 1e-12*want2 {
			t.Errorf("n=%d allreduce = %v, analytic %v", n, got2, want2)
		}
	}
}

// TestHierarchicalTotalMatchesAnalytic pins the three-phase multi-node
// AllReduce to its closed form on synchronized clocks: two intra-node rings
// of (g-1)·nv(bytes/g) plus an inter-node ring of 2(nodes-1)·ib(bytes/(g·nodes)).
func TestHierarchicalTotalMatchesAnalytic(t *testing.T) {
	const bytes = 64e6
	for _, nodes := range []int{2, 4} {
		m := NewMachine(DGXA100(nodes))
		g := float64(m.Cfg.GPUsPerNode)
		got := HierarchicalAllReduce(m, bytes)
		want := 2*(g-1)*nvHop(m, bytes/g) +
			2*float64(nodes-1)*ibHop(m, bytes/(g*float64(nodes)))
		if math.Abs(got-want) > 1e-12*want {
			t.Errorf("nodes=%d hierarchical = %v, analytic %v", nodes, got, want)
		}
	}
}

// TestHierarchicalSingleNodeBitIdentical: with one node the hierarchical
// AllReduce must run the exact step sequence of the flat ring AllReduce —
// equal completion time bit-for-bit, not just within tolerance.
func TestHierarchicalSingleNodeBitIdentical(t *testing.T) {
	for _, bytes := range []float64{4096, 1e6, 123456789} {
		m1 := NewMachine(DGXA100(1))
		flat := AllReduceBytes(m1.Devs, bytes)
		m2 := NewMachine(DGXA100(1))
		hier := HierarchicalAllReduce(m2, bytes)
		if flat != hier {
			t.Errorf("bytes=%v: flat ring %v != hierarchical %v", bytes, flat, hier)
		}
	}
}

// TestCrossNodeRingUsesIB is the regression for the pre-engine bug where
// AllGatherBytes priced every hop as NVLink even when the device set
// spanned nodes: a ring across two nodes must pay InfiniBand on the
// crossing hops — far slower than the same ring within one node — and the
// boundary devices must record IB egress.
func TestCrossNodeRingUsesIB(t *testing.T) {
	const bytes = 16e6
	m := NewMachine(DGXA100(2))
	cross := []*Device{m.Devs[6], m.Devs[7], m.Devs[8], m.Devs[9]} // two per node
	crossTime := AllGatherBytes(cross, bytes)

	m2 := NewMachine(DGXA100(1))
	intra := m2.NodeDevs(0)[:4]
	intraTime := AllGatherBytes(intra, bytes)

	if crossTime <= intraTime {
		t.Errorf("cross-node allgather (%v) not slower than intra-node (%v)", crossTime, intraTime)
	}
	// Ring order 6→7→8→9→6: hops 7→8 and 9→6 cross nodes.
	if m.Devs[7].Stats.IBTxBytes == 0 || m.Devs[9].Stats.IBTxBytes == 0 {
		t.Error("node-boundary senders recorded no IB traffic")
	}
	if m.Devs[6].Stats.NVLinkTxBytes == 0 {
		t.Error("intra-node sender recorded no NVLink traffic")
	}
	// Same check for AllReduce, which had the identical bug.
	m3 := NewMachine(DGXA100(2))
	cross3 := []*Device{m3.Devs[0], m3.Devs[8]}
	AllReduceBytes(cross3, bytes)
	if m3.Devs[0].Stats.IBTxBytes == 0 || m3.Devs[8].Stats.IBTxBytes == 0 {
		t.Error("2-device cross-node allreduce recorded no IB traffic")
	}
}

// TestCollectiveOnCopyStream checks stream selection: a collective issued on
// the copy stream advances only copy clocks; the compute stream joins later
// via the returned events, so independent compute can hide the transfer.
func TestCollectiveOnCopyStream(t *testing.T) {
	m := NewMachine(DGXA100(1))
	devs := m.Devs
	c := StartRingAllReduce(devs, 1e6, CollOpts{Stream: StreamCopy, Tag: "grads"})
	for _, d := range devs {
		if d.StreamNow(StreamCompute) != 0 {
			t.Fatalf("device %d compute clock moved to %v during copy-stream collective", d.ID, d.StreamNow(StreamCompute))
		}
		if d.StreamNow(StreamCopy) <= 0 {
			t.Fatalf("device %d copy clock did not advance", d.ID)
		}
	}
	// Overlapping compute shorter than the transfer: the join should land
	// at the collective's end, not after it.
	kern := devs[0].Kernel(KernelCost{FLOPs: 1e6, Tag: "work"})
	if kern >= c.End {
		t.Fatalf("test premise broken: kernel %v not shorter than collective %v", kern, c.End)
	}
	devs[0].WaitEvent(c.Done[0], "grad-sync")
	if got := devs[0].StreamNow(StreamCompute); got != c.Done[0].T {
		t.Errorf("compute joined at %v, want %v", got, c.Done[0].T)
	}
}

// TestLinkContentionSerializes checks the busy-until link model: two
// collectives issued back-to-back share every NVLink egress port, so the
// second must start after the first's transfers release the links rather
// than running at time zero in parallel.
func TestLinkContentionSerializes(t *testing.T) {
	const bytes = 8e6
	m := NewMachine(DGXA100(1))
	solo := StartRingAllReduce(m.Devs, bytes, CollOpts{Stream: StreamCopy})

	m2 := NewMachine(DGXA100(1))
	first := StartRingAllReduce(m2.Devs, bytes, CollOpts{Stream: StreamCopy})
	second := StartRingAllReduce(m2.Devs, bytes, CollOpts{Stream: StreamCopy})
	if first.End != solo.End {
		t.Errorf("first collective end %v, want %v", first.End, solo.End)
	}
	if second.End < 2*solo.End*(1-1e-12) {
		t.Errorf("second collective ended at %v; links not serialized (solo takes %v)", second.End, solo.End)
	}
}

// TestStartAtGates checks per-device start gating: a collective whose
// devices become ready at staggered times cannot finish before the last
// gate plus the transfer work that must follow it.
func TestStartAtGates(t *testing.T) {
	const bytes = 1e6
	m := NewMachine(DGXA100(1))
	base := StartRingAllReduce(m.Devs, bytes, CollOpts{Stream: StreamCopy})

	m2 := NewMachine(DGXA100(1))
	gate := make([]float64, len(m2.Devs))
	const last = 5e-3
	for i := range gate {
		gate[i] = last * float64(i) / float64(len(gate)-1)
	}
	gated := StartRingAllReduce(m2.Devs, bytes, CollOpts{Stream: StreamCopy, StartAt: gate})
	if gated.End <= last {
		t.Errorf("gated collective ended at %v, before the last gate %v", gated.End, last)
	}
	// The ring couples every device within a round, so the run effectively
	// restarts at the last gate — but gates must only delay, never add work.
	if limit := (last + base.End) * (1 + 1e-12); gated.End > limit {
		t.Errorf("gated collective ended at %v, beyond gate+solo time %v", gated.End, last+base.End)
	}
	for i, ev := range gated.Done {
		if ev.T < gate[i] {
			t.Errorf("device %d done at %v before its gate %v", i, ev.T, gate[i])
		}
	}
}

// TestCommTraceAndStats checks the observability satellite: collective
// intervals carry the Comm flag, accrue CommSeconds, and surface in the
// Chrome trace as a "comm" category on the dedicated per-device lane.
func TestCommTraceAndStats(t *testing.T) {
	m := NewMachine(DGXA100(1))
	for _, d := range m.Devs {
		d.Tracing = true
	}
	AllReduceBytes(m.Devs, 1e6)
	d0 := m.Devs[0]
	if d0.Stats.CommSeconds <= 0 {
		t.Fatal("no CommSeconds accrued")
	}
	sawComm := false
	for _, iv := range d0.Trace() {
		if iv.Comm {
			sawComm = true
			if !iv.Busy {
				t.Error("comm interval not marked busy")
			}
		}
	}
	if !sawComm {
		t.Fatal("no Comm-flagged interval in trace")
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, m.Devs[:1]); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"cat":"comm"`) {
		t.Error("chrome trace has no comm category")
	}
	if !strings.Contains(out, `"tid":2`) {
		t.Error("chrome trace has no comms lane (tid 4*local+2)")
	}
}

// TestResetClearsLinkState: after Machine.Reset a collective must cost the
// same as on a fresh machine — leftover link busy-until times would skew
// the next run.
func TestResetClearsLinkState(t *testing.T) {
	const bytes = 4e6
	m := NewMachine(DGXA100(2))
	HierarchicalAllReduce(m, bytes)
	m.Reset()
	after := HierarchicalAllReduce(m, bytes)
	fresh := NewMachine(DGXA100(2))
	want := HierarchicalAllReduce(fresh, bytes)
	if after != want {
		t.Errorf("post-Reset collective %v, fresh machine %v", after, want)
	}
}

// TestBlockingWrappersSynchronize: the engine-backed blocking entry points
// must retain barrier semantics — all compute clocks equal at the returned
// time.
func TestBlockingWrappersSynchronize(t *testing.T) {
	m := NewMachine(DGXA100(1))
	m.Devs[3].Kernel(KernelCost{FLOPs: 1e9, Tag: "skew"})
	end := AllGatherBytes(m.Devs, 2e6)
	for _, d := range m.Devs {
		if d.StreamNow(StreamCompute) != end {
			t.Errorf("device %d at %v after blocking allgather, want %v", d.ID, d.StreamNow(StreamCompute), end)
		}
	}
}
