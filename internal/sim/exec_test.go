package sim

import (
	"sync/atomic"
	"testing"
)

func TestRunParallelCoversAllSlots(t *testing.T) {
	for _, on := range []bool{false, true} {
		prev := SetParallel(on)
		hits := make([]int32, 64)
		RunParallel(len(hits), func(slot int) {
			atomic.AddInt32(&hits[slot], 1)
		})
		SetParallel(prev)
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("parallel=%v: slot %d ran %d times", on, i, h)
			}
		}
	}
}

func TestRunParallelSerialOrder(t *testing.T) {
	prev := SetParallel(false)
	defer SetParallel(prev)
	var order []int
	RunParallel(5, func(slot int) { order = append(order, slot) })
	for i, s := range order {
		if s != i {
			t.Fatalf("serial order %v", order)
		}
	}
}

func TestRunParallelZeroAndOne(t *testing.T) {
	RunParallel(0, func(int) { t.Fatal("n=0 ran a slot") })
	ran := false
	RunParallel(1, func(slot int) { ran = slot == 0 })
	if !ran {
		t.Fatal("n=1 did not run slot 0")
	}
}

func TestRunParallelPanicPropagates(t *testing.T) {
	for _, on := range []bool{false, true} {
		prev := SetParallel(on)
		var completed atomic.Int32
		func() {
			defer func() {
				if r := recover(); r != "boom2" {
					t.Fatalf("parallel=%v: recovered %v, want boom2", on, r)
				}
			}()
			RunParallel(4, func(slot int) {
				if slot == 2 {
					panic("boom2")
				}
				completed.Add(1)
			})
			t.Fatalf("parallel=%v: panic swallowed", on)
		}()
		SetParallel(prev)
		// In parallel mode every other slot still runs to completion before
		// the panic is re-raised; serial mode stops at the panicking slot.
		if on && completed.Load() != 3 {
			t.Fatalf("parallel: %d slots completed, want 3", completed.Load())
		}
	}
}

func TestRunParallelDeviceOwnership(t *testing.T) {
	m := NewMachine(DGXA100(1))
	RunParallel(len(m.Devs), func(slot int) {
		m.Devs[slot].Gemm(64, 64, 64, "own")
		m.Devs[slot].Kernel(KernelCost{StreamBytes: 1 << 20})
	})
	want := m.Devs[0].Now()
	if want <= 0 {
		t.Fatal("no time charged")
	}
	for _, d := range m.Devs {
		if d.Now() != want {
			t.Fatalf("identical work, different clocks: %g vs %g", d.Now(), want)
		}
	}
}

func TestAddCPU(t *testing.T) {
	m := NewMachine(DGXA100(2))
	c := m.AddCPU(1)
	if c.Node != 1 {
		t.Fatalf("node %d", c.Node)
	}
	if len(m.CPUs) != 3 || m.CPUs[0].Node != 0 || m.CPUs[1].Node != 1 {
		t.Fatal("primary CPU indexing broken")
	}
	c.Advance(2.5)
	if m.MaxTime() != 2.5 {
		t.Fatalf("MaxTime %g ignores extra CPU", m.MaxTime())
	}
	m.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset missed extra CPU")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range node accepted")
		}
	}()
	m.AddCPU(2)
}
