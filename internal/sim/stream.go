package sim

import "fmt"

// Dual-stream device timelines.
//
// A real GPU overlaps data movement with compute by issuing them on
// different CUDA streams; work within a stream executes in order, and
// cross-stream dependencies are expressed with events (cudaEventRecord on
// the producing stream, cudaStreamWaitEvent on the consuming one). The
// simulation mirrors that: every Device carries two virtual clocks — a
// compute stream for kernels and a copy stream for batch
// extraction/memcpy traffic — and a current-stream selector. All charging
// methods (Kernel, Gemm, busy/idle and everything built on them) advance
// whichever stream is current, so code written against a *Device runs
// unchanged on either timeline.
//
// The model is contention-free: the two streams proceed independently, as
// if copy traffic (NVLink/DMA-bound) and compute kernels (SM-bound) never
// competed for a resource. That is the same idealization the paper's
// Figure 10 overlap and PyTorch-Direct's asynchronous feature access rely
// on: gather kernels saturate the interconnect with negligible SM use, so
// stream concurrency is close to free.

// StreamKind names one of a device's two virtual timelines.
type StreamKind uint8

const (
	// StreamCompute is the default stream; kernels, collectives and
	// barriers run here.
	StreamCompute StreamKind = iota
	// StreamCopy carries batch extraction and memcpy traffic that
	// overlaps with compute.
	StreamCopy
)

func (k StreamKind) String() string {
	switch k {
	case StreamCompute:
		return "compute"
	case StreamCopy:
		return "copy"
	}
	return fmt.Sprintf("stream(%d)", uint8(k))
}

// Event marks a point on one stream's timeline, like a recorded CUDA
// event. The zero Event is at virtual time 0 and therefore never blocks a
// waiter.
type Event struct {
	T float64
}

// CurrentStream returns the stream subsequent charges land on.
func (d *Device) CurrentStream() StreamKind { return d.stream }

// SetStream selects the stream subsequent charges land on and returns the
// previous selection. Like every Device method it may only be called by
// the device's owning goroutine.
func (d *Device) SetStream(k StreamKind) StreamKind {
	prev := d.stream
	d.stream = k
	return prev
}

// OnStream runs fn with the given stream selected, restoring the previous
// selection afterwards.
func (d *Device) OnStream(k StreamKind, fn func()) {
	prev := d.SetStream(k)
	defer d.SetStream(prev)
	fn()
}

// StreamNow returns the named stream's virtual clock in seconds,
// regardless of which stream is current.
func (d *Device) StreamNow(k StreamKind) float64 {
	if k == StreamCopy {
		return d.copyNow
	}
	return d.now
}

// Span returns the device's makespan: the later of its two stream clocks.
// It is the per-device building block of Machine.MaxTime and the right
// end-of-run number for code that drove both streams (like the serving
// replicas and the pipelined loaders).
func (d *Device) Span() float64 {
	if d.copyNow > d.now {
		return d.copyNow
	}
	return d.now
}

// RecordEvent marks the current position of the current stream.
func (d *Device) RecordEvent() Event { return Event{T: d.Now()} }

// WaitEvent stalls the current stream until the event's time, recording
// idle time for the wait (cudaStreamWaitEvent). Waiting on an event that
// already passed costs nothing.
func (d *Device) WaitEvent(ev Event, tag string) {
	if ev.T > d.Now() {
		d.idle(ev.T-d.Now(), tag)
	}
}

// SyncStreams joins the device's two streams (cudaDeviceSynchronize): both
// advance to the maximum of their clocks, the later-running stream
// unchanged and the earlier one idling up to it.
func (d *Device) SyncStreams(tag string) {
	ev := Event{T: d.StreamNow(StreamCompute)}
	if t := d.StreamNow(StreamCopy); t > ev.T {
		ev.T = t
	}
	prev := d.SetStream(StreamCompute)
	d.WaitEvent(ev, tag)
	d.SetStream(StreamCopy)
	d.WaitEvent(ev, tag)
	d.SetStream(prev)
}
