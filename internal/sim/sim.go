// Package sim provides a discrete-time simulated multi-GPU machine.
//
// Every algorithm in this repository runs for real on real data; what sim
// provides is virtual time. Each device (GPU) and each host CPU carries a
// virtual clock, and operations charge that clock according to calibrated
// cost models: a roofline model for kernels (compute-bound vs memory-bound),
// bandwidth/latency models for NVLink peer access, PCIe host transfers and
// inter-node InfiniBand, and a page-fault model for CUDA Unified Memory.
//
// The models are calibrated to the DGX-A100 numbers reported in the
// WholeGraph paper (SC 2022): Table I (UM vs GPUDirect P2P latency) and
// Figure 8 (random-gather bandwidth vs segment size). Reported experiment
// times are virtual seconds; they are deterministic and independent of the
// host running the simulation.
package sim

import "fmt"

// DeviceParams models a single GPU.
type DeviceParams struct {
	// FP32TFLOPS is the peak single-precision throughput in TFLOP/s.
	FP32TFLOPS float64
	// GemmEff is the fraction of peak a tuned dense kernel achieves.
	GemmEff float64
	// MemBWGBs is the peak device memory (HBM) bandwidth in GB/s.
	MemBWGBs float64
	// MemEff is the fraction of peak streaming kernels achieve.
	MemEff float64
	// RandMemEff is the fraction of peak achieved by random (gather-style)
	// access patterns to local memory.
	RandMemEff float64
	// KernelLaunch is the host-side launch overhead per kernel in seconds.
	KernelLaunch float64
	// GraphLaunch is the host-side cost of launching one captured execution
	// graph (cudaGraphLaunch). Inside a graph replay the per-kernel launch
	// overhead vanishes — the whole step pays this once instead of
	// KernelLaunch per kernel.
	GraphLaunch float64
	// MemGB is the device memory capacity in GB (bookkeeping only; the
	// simulator does not enforce it but experiments report against it).
	MemGB float64
	// MallocPerGB is the cudaMalloc cost in seconds per GB allocated.
	MallocPerGB float64
	// MallocBase is the fixed cudaMalloc cost in seconds per call.
	MallocBase float64
}

// LinkParams models the interconnect fabric of one machine node and the
// network between nodes.
type LinkParams struct {
	// NVLinkUniGBs is the theoretical unidirectional NVLink bandwidth per
	// GPU in GB/s (300 on DGX-A100).
	NVLinkUniGBs float64
	// NVLinkEffGBs is the peak effective payload bandwidth for the bytes
	// that actually cross NVLink during a peer gather, in GB/s. With 1/8
	// of accesses local, an effective 230 GB/s reproduces the paper's
	// measured ~260 GB/s AlgoBW / ~230 GB/s BusBW plateau (Figure 8).
	NVLinkEffGBs float64
	// NVLinkHeaderBytes is the per-segment transaction overhead in bytes;
	// it produces the bandwidth-vs-segment-size curve of Figure 8.
	NVLinkHeaderBytes float64
	// P2PBaseLatency is the GPUDirect peer access latency in seconds for a
	// small working set (Table I: ~1.35 us at 8 GB).
	P2PBaseLatency float64
	// P2PLatencyPerGB adds latency per GB of working set, modelling TLB and
	// page-table pressure (Table I: up to 1.56 us at 128 GB).
	P2PLatencyPerGB float64
	// UMBaseLatency is the Unified Memory page-fault service latency in
	// seconds at the small end (Table I: 20.8 us at 8 GB).
	UMBaseLatency float64
	// UMExtraLatency and UMSaturationGB shape the saturating growth of UM
	// latency with working-set size (Table I: 35.8 us at 128 GB).
	UMExtraLatency float64
	UMSaturationGB float64
	// PCIeGBs is the PCIe switch uplink bandwidth in GB/s (32 for 4.0 x16).
	PCIeGBs float64
	// GPUsPerSwitch is how many GPUs share one PCIe uplink (2 on DGX-A100).
	GPUsPerSwitch int
	// PCIeLatency is the per-transfer setup latency in seconds.
	PCIeLatency float64
	// IBGBs is the per-node inter-node bandwidth in GB/s (8x ConnectX-6
	// HDR on DGX-A100: 8 x 25 GB/s).
	IBGBs float64
	// IBLatency is the network latency in seconds.
	IBLatency float64
	// IPCExchange is the time for the CUDA IPC handle AllGather performed
	// once per shared allocation, in seconds.
	IPCExchange float64
	// UMBulkGBs is the sustained bandwidth of bulk access to non-resident
	// Unified Memory (page-fault + migration pipeline), in GB/s. It sits
	// an order of magnitude below NVLink peer access, which is the paper's
	// argument for building on GPUDirect P2P instead (Table I).
	UMBulkGBs float64
}

// CPUParams models the host CPUs of one node.
type CPUParams struct {
	// MemBWGBs is the streaming host memory bandwidth available to one
	// training process in GB/s.
	MemBWGBs float64
	// GatherGBs is the random-gather bandwidth available to one training
	// process in GB/s (far below streaming: TLB misses, small rows).
	GatherGBs float64
	// ScalarOpsPerSec is the generic scalar work rate for host code.
	ScalarOpsPerSec float64
}

// MachineConfig fully describes a simulated cluster.
type MachineConfig struct {
	Nodes       int
	GPUsPerNode int
	Device      DeviceParams
	Link        LinkParams
	CPU         CPUParams
}

// DGXA100 returns the configuration of a cluster of DGX-A100 nodes
// (8x A100-40GB, NVSwitch, PCIe 4.0, 8x HDR InfiniBand), calibrated to the
// microbenchmarks in the WholeGraph paper.
func DGXA100(nodes int) MachineConfig {
	return MachineConfig{
		Nodes:       nodes,
		GPUsPerNode: 8,
		Device: DeviceParams{
			FP32TFLOPS:   19.5,
			GemmEff:      0.45,
			MemBWGBs:     1555,
			MemEff:       0.78,
			RandMemEff:   0.35,
			KernelLaunch: 4.5e-6,
			GraphLaunch:  10e-6,
			MemGB:        40,
			MallocPerGB:  1.0e-3,
			MallocBase:   0.1e-3,
		},
		Link: LinkParams{
			NVLinkUniGBs:      300,
			NVLinkEffGBs:      230,
			NVLinkHeaderBytes: 16,
			P2PBaseLatency:    1.34e-6,
			P2PLatencyPerGB:   1.8e-9,
			UMBaseLatency:     20.8e-6,
			UMExtraLatency:    15.2e-6,
			UMSaturationGB:    21,
			PCIeGBs:           32,
			GPUsPerSwitch:     2,
			PCIeLatency:       5e-6,
			IBGBs:             200,
			IBLatency:         3e-6,
			IPCExchange:       2e-3,
			UMBulkGBs:         22,
		},
		CPU: CPUParams{
			MemBWGBs:        24,
			GatherGBs:       3.0,
			ScalarOpsPerSec: 2.5e9,
		},
	}
}

// PCIeServer returns the configuration of a commodity 8-GPU server without
// NVLink: peer access crosses the PCIe fabric at a fraction of NVSwitch
// bandwidth and with higher latency. The paper's design explicitly targets
// NVLink-class machines ("DGX-A100"); this preset quantifies how much of
// WholeGraph's advantage depends on that fabric (hardware ablation).
func PCIeServer(nodes int) MachineConfig {
	cfg := DGXA100(nodes)
	cfg.Link.NVLinkUniGBs = 16
	cfg.Link.NVLinkEffGBs = 11
	cfg.Link.P2PBaseLatency = 2.5e-6
	cfg.Link.P2PLatencyPerGB = 3e-9
	return cfg
}

// Validate reports whether the configuration is self-consistent.
func (c MachineConfig) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("sim: Nodes must be positive, got %d", c.Nodes)
	case c.GPUsPerNode <= 0:
		return fmt.Errorf("sim: GPUsPerNode must be positive, got %d", c.GPUsPerNode)
	case c.Link.GPUsPerSwitch <= 0:
		return fmt.Errorf("sim: GPUsPerSwitch must be positive, got %d", c.Link.GPUsPerSwitch)
	case c.Device.FP32TFLOPS <= 0 || c.Device.MemBWGBs <= 0:
		return fmt.Errorf("sim: device throughputs must be positive")
	}
	return nil
}

// Machine is an instantiated simulated cluster.
type Machine struct {
	Cfg  MachineConfig
	Devs []*Device // all devices, node-major
	CPUs []*CPU    // one per node

	// Collective-engine link state: busy-until times (virtual seconds) of
	// each device's NVLink egress port and each node's aggregate IB NIC.
	// Touched only by the collective entry points, which — like Barrier —
	// run on the orchestrating goroutine.
	nvlinkFree []float64
	ibFree     []float64
	// Scratch reused across collective calls (per-device ready and
	// send-interval times, and their per-node counterparts), so the
	// steady-state training loop stays allocation-free.
	collReady, collSendStart, collSendEnd []float64
	nodeReady, nodeSendStart, nodeSendEnd []float64
}

// NewMachine builds a Machine from cfg. It panics on invalid configuration;
// use cfg.Validate first when the configuration is user-supplied.
func NewMachine(cfg MachineConfig) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{Cfg: cfg}
	for n := 0; n < cfg.Nodes; n++ {
		m.CPUs = append(m.CPUs, &CPU{m: m, Node: n})
		for g := 0; g < cfg.GPUsPerNode; g++ {
			m.Devs = append(m.Devs, &Device{
				m: m, ID: n*cfg.GPUsPerNode + g, Node: n, Local: g,
			})
		}
	}
	nd := len(m.Devs)
	m.nvlinkFree = make([]float64, nd)
	m.ibFree = make([]float64, cfg.Nodes)
	m.collReady = make([]float64, nd)
	m.collSendStart = make([]float64, nd)
	m.collSendEnd = make([]float64, nd)
	m.nodeReady = make([]float64, cfg.Nodes)
	m.nodeSendStart = make([]float64, cfg.Nodes)
	m.nodeSendEnd = make([]float64, cfg.Nodes)
	return m
}

// NodeDevs returns the devices of one node.
func (m *Machine) NodeDevs(node int) []*Device {
	g := m.Cfg.GPUsPerNode
	return m.Devs[node*g : (node+1)*g]
}

// AddCPU registers an additional host executor on the given node and returns
// it. Extra CPUs model independent host processes (e.g. one dataloader
// process per training worker, as DGL/PyG spawn) whose clocks advance
// independently; they participate in Reset and MaxTime like the per-node
// primary CPUs. The first Nodes entries of m.CPUs remain the per-node
// primaries, so m.CPUs[node] indexing stays valid.
func (m *Machine) AddCPU(node int) *CPU {
	if node < 0 || node >= m.Cfg.Nodes {
		panic(fmt.Sprintf("sim: AddCPU node %d out of range [0,%d)", node, m.Cfg.Nodes))
	}
	c := &CPU{m: m, Node: node}
	m.CPUs = append(m.CPUs, c)
	return c
}

// Reset zeroes all clocks (both streams), traces and statistics, keeping
// the topology. The compute stream becomes current on every device.
func (m *Machine) Reset() {
	for _, d := range m.Devs {
		d.now = 0
		d.copyNow = 0
		d.stream = StreamCompute
		d.trace = nil
		d.graphDepth = 0
		d.Stats = DeviceStats{}
	}
	for _, c := range m.CPUs {
		c.now = 0
	}
	clear(m.nvlinkFree)
	clear(m.ibFree)
}

// MaxTime returns the largest clock in the machine, across both device
// streams and the host CPUs.
func (m *Machine) MaxTime() float64 {
	t := 0.0
	for _, d := range m.Devs {
		if s := d.Span(); s > t {
			t = s
		}
	}
	for _, c := range m.CPUs {
		if c.now > t {
			t = c.now
		}
	}
	return t
}

// Barrier synchronizes the compute-stream clocks of the given devices to
// their maximum, modelling a blocking synchronization point (e.g. the
// implicit barrier in a collective). Copy streams are not joined: a
// prefetch in flight keeps running through a collective, exactly the
// overlap the pipelined loader exploits. Idle time is recorded on devices
// that arrive early. Barrier reads and advances every given clock, so it
// must run from the orchestrating goroutine, never from inside a
// RunParallel region, and with every device on its compute stream.
func Barrier(devs []*Device) float64 {
	t := 0.0
	for _, d := range devs {
		if d.now > t {
			t = d.now
		}
	}
	for _, d := range devs {
		d.IdleUntil(t)
	}
	return t
}
