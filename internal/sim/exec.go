package sim

import (
	"sync"
	"sync/atomic"
)

// Parallel device execution.
//
// The simulation's concurrency model is ownership with barriers: between two
// barrier points, every Device (and every CPU) is owned by exactly one
// goroutine, which is the only one allowed to advance its clocks — both the
// compute and the copy stream, which are two timelines of one owned device,
// never split across goroutines — append to its trace, or update its stats. Shared allocations (wholemem shards, the
// partitioned graph, generated datasets) are read-only during parallel
// regions; writes to shared tables must target disjoint ranges (as the
// scatter of layer-wise inference does). Barriers, collectives
// (sim.Barrier, the link.go helpers, nccl) and Machine.MaxTime touch many
// clocks at once and therefore run only from the orchestrating goroutine,
// outside RunParallel regions.
//
// Under that model, parallel execution is deterministic: each slot's work
// depends only on its own inputs and RNG stream, and reductions (loss sums,
// convergence deltas) are accumulated in slot order after the join, so
// results are bit-identical to running the slots serially.

// parallelOff disables goroutine fan-out when set (zero value = parallelism
// enabled). The inverted sense makes the enabled default the zero value.
var parallelOff atomic.Bool

// SetParallel enables or disables goroutine-parallel execution of RunParallel
// regions and returns the previous setting. Disabling it runs every region
// serially in slot order — the reference path the determinism tests compare
// against. Parallelism is enabled by default.
func SetParallel(on bool) bool {
	return !parallelOff.Swap(!on)
}

// ParallelEnabled reports whether RunParallel fans out to goroutines.
func ParallelEnabled() bool { return !parallelOff.Load() }

// RunParallel invokes fn(slot) for every slot in [0, n), one goroutine per
// slot when parallelism is enabled, serially in slot order otherwise. It
// returns after every slot has finished (a join point suitable to precede a
// Barrier). Each slot must confine its mutations to state it owns — see the
// package concurrency model above. A panic in any slot is re-raised on the
// caller after all slots have completed, lowest slot first.
func RunParallel(n int, fn func(slot int)) {
	if n <= 0 {
		return
	}
	if n == 1 || !ParallelEnabled() {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	panics := make([]any, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(slot int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[slot] = r
				}
			}()
			fn(slot)
		}(i)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}
