// Package nccl provides data-carrying simulated collectives: the real
// buffers are exchanged/reduced in host memory while the cost of the
// corresponding NCCL operation is charged to the participating simulated
// devices through the step-level collective engine (internal/sim), which
// runs each ring as per-step transfers on the modeled NVLink/InfiniBand
// links — device sets spanning nodes pay InfiniBand cost on the crossing
// hops. WholeGraph itself needs only AllReduce (multi-node data-parallel
// gradient sync, §III-D); AlltoAllv and AllGather exist for the
// distributed-memory gather baseline of Figure 4/10.
package nccl

import (
	"fmt"

	"wholegraph/internal/sim"
)

// AllReduceMean averages the per-device buffers elementwise, leaving the
// mean in every buffer, and charges a ring AllReduce over the devices.
// All buffers must have equal length.
func AllReduceMean(devs []*sim.Device, bufs [][]float32) {
	if len(devs) != len(bufs) {
		panic(fmt.Sprintf("nccl: %d devices, %d buffers", len(devs), len(bufs)))
	}
	if len(bufs) == 0 {
		return
	}
	n := len(bufs[0])
	for i, b := range bufs {
		if len(b) != n {
			panic(fmt.Sprintf("nccl: buffer %d has %d elements, want %d", i, len(b), n))
		}
	}
	sum := make([]float64, n)
	for _, b := range bufs {
		for i, v := range b {
			sum[i] += float64(v)
		}
	}
	inv := 1 / float64(len(bufs))
	for _, b := range bufs {
		for i := range b {
			b[i] = float32(sum[i] * inv)
		}
	}
	sim.AllReduceBytes(devs, float64(4*n))
}

// AllReduceMeanHierarchical is AllReduceMean across a whole (possibly
// multi-node) machine, charged with the NVLink+InfiniBand hierarchical ring.
func AllReduceMeanHierarchical(m *sim.Machine, bufs [][]float32) {
	if len(bufs) != len(m.Devs) {
		panic(fmt.Sprintf("nccl: %d buffers for %d devices", len(bufs), len(m.Devs)))
	}
	n := len(bufs[0])
	sum := make([]float64, n)
	for _, b := range bufs {
		for i, v := range b {
			sum[i] += float64(v)
		}
	}
	inv := 1 / float64(len(bufs))
	for _, b := range bufs {
		for i := range b {
			b[i] = float32(sum[i] * inv)
		}
	}
	sim.HierarchicalAllReduce(m, float64(4*n))
}

// AlltoAllv exchanges variable-length per-pair payloads: send[i][j] is what
// device i sends to device j; the returned recv[j][i] holds it after the
// exchange. elemBytes sizes the charged traffic.
func AlltoAllv[T any](devs []*sim.Device, send [][][]T, elemBytes int) [][][]T {
	n := len(devs)
	if len(send) != n {
		panic(fmt.Sprintf("nccl: send matrix has %d rows for %d devices", len(send), n))
	}
	bytes := make([][]float64, n)
	recv := make([][][]T, n)
	for i := range recv {
		recv[i] = make([][]T, n)
		bytes[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		if len(send[i]) != n {
			panic(fmt.Sprintf("nccl: send[%d] has %d columns", i, len(send[i])))
		}
		for j := 0; j < n; j++ {
			recv[j][i] = send[i][j]
			bytes[i][j] = float64(len(send[i][j]) * elemBytes)
		}
	}
	sim.AlltoAllvBytes(devs, bytes)
	return recv
}

// AllGather concatenates each device's shard in rank order on every device
// and charges the ring AllGather.
func AllGather[T any](devs []*sim.Device, shards [][]T, elemBytes int) [][]T {
	if len(devs) != len(shards) {
		panic(fmt.Sprintf("nccl: %d devices, %d shards", len(devs), len(shards)))
	}
	var all []T
	maxShard := 0
	for _, s := range shards {
		all = append(all, s...)
		if len(s) > maxShard {
			maxShard = len(s)
		}
	}
	out := make([][]T, len(devs))
	for i := range out {
		out[i] = append([]T(nil), all...)
	}
	sim.AllGatherBytes(devs, float64(maxShard*elemBytes))
	return out
}
