package nccl

import (
	"math"
	"testing"

	"wholegraph/internal/sim"
)

func TestAllReduceMean(t *testing.T) {
	m := sim.NewMachine(sim.DGXA100(1))
	devs := m.NodeDevs(0)[:4]
	bufs := [][]float32{
		{1, 2}, {3, 4}, {5, 6}, {7, 8},
	}
	AllReduceMean(devs, bufs)
	for i, b := range bufs {
		if b[0] != 4 || b[1] != 5 {
			t.Fatalf("buffer %d = %v, want [4 5]", i, b)
		}
	}
	if m.MaxTime() == 0 {
		t.Error("allreduce charged nothing")
	}
	for _, d := range devs {
		if d.Now() != devs[0].Now() {
			t.Error("devices not synchronized after allreduce")
		}
	}
}

func TestAllReduceMeanHierarchical(t *testing.T) {
	m := sim.NewMachine(sim.DGXA100(2))
	bufs := make([][]float32, 16)
	for i := range bufs {
		bufs[i] = []float32{float32(i)}
	}
	AllReduceMeanHierarchical(m, bufs)
	want := float32(7.5)
	for i, b := range bufs {
		if math.Abs(float64(b[0]-want)) > 1e-6 {
			t.Fatalf("buffer %d = %v, want %v", i, b[0], want)
		}
	}
	if m.MaxTime() == 0 {
		t.Error("hierarchical allreduce charged nothing")
	}
}

func TestAllReduceMismatchPanics(t *testing.T) {
	m := sim.NewMachine(sim.DGXA100(1))
	defer func() {
		if recover() == nil {
			t.Error("mismatched buffers did not panic")
		}
	}()
	AllReduceMean(m.NodeDevs(0)[:2], [][]float32{{1}, {1, 2}})
}

func TestAlltoAllv(t *testing.T) {
	m := sim.NewMachine(sim.DGXA100(1))
	devs := m.NodeDevs(0)[:3]
	send := make([][][]int64, 3)
	for i := range send {
		send[i] = make([][]int64, 3)
		for j := range send[i] {
			send[i][j] = []int64{int64(10*i + j)}
		}
	}
	recv := AlltoAllv(devs, send, 8)
	for j := 0; j < 3; j++ {
		for i := 0; i < 3; i++ {
			if len(recv[j][i]) != 1 || recv[j][i][0] != int64(10*i+j) {
				t.Fatalf("recv[%d][%d] = %v", j, i, recv[j][i])
			}
		}
	}
	if m.MaxTime() == 0 {
		t.Error("alltoallv charged nothing")
	}
}

func TestAllGather(t *testing.T) {
	m := sim.NewMachine(sim.DGXA100(1))
	devs := m.NodeDevs(0)[:2]
	out := AllGather(devs, [][]int64{{1, 2}, {3}}, 8)
	for i := range out {
		if len(out[i]) != 3 || out[i][0] != 1 || out[i][2] != 3 {
			t.Fatalf("allgather out[%d] = %v", i, out[i])
		}
	}
}

// meanTime runs AllReduceMean over nd devices with per-buffer length n and
// returns the resulting machine time.
func meanTime(nd, n int) float64 {
	m := sim.NewMachine(sim.DGXA100(1))
	bufs := make([][]float32, nd)
	for i := range bufs {
		bufs[i] = make([]float32, n)
	}
	AllReduceMean(m.NodeDevs(0)[:nd], bufs)
	return m.MaxTime()
}

// TestAllReduceMonotonicity checks the cost model's basic shape: more bytes
// cost more time, and for a fixed payload a larger ring (more latency-bound
// rounds) costs more too.
func TestAllReduceMonotonicity(t *testing.T) {
	if small, big := meanTime(4, 1<<10), meanTime(4, 1<<20); big <= small {
		t.Errorf("1MiB allreduce (%.3gs) not slower than 4KiB (%.3gs)", big, small)
	}
	if few, many := meanTime(2, 1<<12), meanTime(8, 1<<12); many <= few {
		t.Errorf("8-GPU allreduce (%.3gs) not slower than 2-GPU (%.3gs)", many, few)
	}
}

// TestHierarchicalMultiNodeUsesIB checks that the multi-node gradient sync
// crosses InfiniBand: every device records IB traffic and the run is
// slower than the identical payload on one node.
func TestHierarchicalMultiNodeUsesIB(t *testing.T) {
	run := func(nodes int) (float64, *sim.Machine) {
		m := sim.NewMachine(sim.DGXA100(nodes))
		bufs := make([][]float32, len(m.Devs))
		for i := range bufs {
			bufs[i] = make([]float32, 1<<16)
		}
		AllReduceMeanHierarchical(m, bufs)
		return m.MaxTime(), m
	}
	t1, m1 := run(1)
	t2, m2 := run(2)
	if t2 <= t1 {
		t.Errorf("2-node hierarchical allreduce (%.3gs) not slower than 1-node (%.3gs)", t2, t1)
	}
	for _, d := range m1.Devs {
		if d.Stats.IBTxBytes != 0 {
			t.Errorf("single-node device %d recorded IB traffic %v", d.ID, d.Stats.IBTxBytes)
		}
	}
	for _, d := range m2.Devs {
		if d.Stats.IBTxBytes <= 0 {
			t.Errorf("multi-node device %d recorded no IB traffic", d.ID)
		}
		if d.Stats.CommSeconds <= 0 {
			t.Errorf("device %d recorded no CommSeconds", d.ID)
		}
	}
}
