// Package infer implements full-graph layer-wise inference over the
// multi-GPU shared-memory store. The paper notes that WholeGraph's ops
// serve inference as well as training ("it does not require collective
// communication", §I); this is the standard offline-inference pattern: each
// GNN layer is applied to every node exactly once, with the intermediate
// embeddings living in distributed shared memory so every rank reads its
// neighbors' embeddings through peer access — no sampling variance, no
// redundant recomputation of shared neighborhoods.
package infer

import (
	"fmt"

	"wholegraph/internal/autograd"
	"wholegraph/internal/core"
	"wholegraph/internal/gnn"
	"wholegraph/internal/graph"
	"wholegraph/internal/sim"
	"wholegraph/internal/spops"
	"wholegraph/internal/tensor"
	"wholegraph/internal/unique"
	"wholegraph/internal/wholemem"
)

// Engine runs repeated full-graph inference over one store and model. The
// per-layer shared embedding tables are allocated once at construction
// (charging the one-time IPC setup, like the training store's §III-B
// setup); each Run then only pays propagation.
type Engine struct {
	Store *core.Store
	Model gnn.LayerwiseModel
	// tables[l] holds the output embeddings of layer l, sharded like the
	// node partition.
	tables []*wholemem.Memory[float32]
	// replicas[r] is rank r's private copy of Model: forwarding binds the
	// parameter set to a tape, so concurrently forwarding ranks cannot
	// share one model. replicas[0] aliases Model; the rest are refreshed
	// from Model's weights at the start of every Run.
	replicas []gnn.LayerwiseModel
	// scratch[r] is rank r's reusable workspace (dedup table, tape arena,
	// block and index buffers), owned by rank r's goroutine inside
	// sim.RunParallel, so repeated Runs allocate almost nothing.
	scratch []*rankScratch
	// Chunks, when > 1, splits each rank's local targets into that many
	// pieces per layer and pipelines their input gathers on the device's
	// copy stream against the previous chunk's forward/scatter compute —
	// the inference analogue of the training loader's prefetch. Outputs
	// are bit-identical to the single-block path (per-target math is
	// unchanged; only the dedup scope narrows to a chunk, which trades
	// some cross-chunk dedup for overlap). 0 or 1 selects the sequential
	// single-block path.
	Chunks int
}

// WithChunks sets the pipelined chunk count and returns the engine. Values
// below 1 clamp to 1 (the sequential single-block path), so a computed
// chunk count that underflows cannot arm a nonsensical configuration.
func (e *Engine) WithChunks(n int) *Engine {
	if n < 1 {
		n = 1
	}
	e.Chunks = n
	return e
}

// rankScratch holds one rank's per-layer working set across Run calls.
type rankScratch struct {
	ded       *unique.Deduper
	tape      *autograd.Tape
	targets   []graph.GlobalID
	neighbors []graph.GlobalID
	rowPtr    []int64
	blk       spops.SubCSR
	rows      []int64
	outRows   []int64
	collect   []float32
	// chunks is the per-chunk working set of the pipelined path; each
	// chunk's block, dedup table and gathered input must stay alive until
	// its forward, so they cannot share one buffer.
	chunks []*chunkScratch
}

// chunkScratch is one chunk's slice of the pipelined working set.
type chunkScratch struct {
	ded       *unique.Deduper
	targets   []graph.GlobalID
	neighbors []graph.GlobalID
	rowPtr    []int64
	blk       spops.SubCSR
	rows      []int64
	lo, hi    int64
	x         *tensor.Dense // tape-owned; valid within one layer
	// blkReady (compute) gates the chunk's gather; gatherDone (copy)
	// gates its forward.
	blkReady   sim.Event
	gatherDone sim.Event
}

func (sc *rankScratch) ensureChunks(n int) {
	for len(sc.chunks) < n {
		sc.chunks = append(sc.chunks, &chunkScratch{ded: unique.NewDeduper()})
	}
}

// NewEngine validates the model against the store and allocates the
// intermediate embedding tables.
func NewEngine(store *core.Store, model gnn.LayerwiseModel) (*Engine, error) {
	pg := store.PG
	if pg.PagedTopo() != nil {
		return nil, fmt.Errorf("infer: layer-wise inference walks full neighbor lists shard-by-shard and requires a materialized column array (not the paged topology store)")
	}
	if pg.Features() == nil {
		return nil, fmt.Errorf("infer: store has no node features")
	}
	cfg := model.Config()
	if cfg.InDim != pg.Dim {
		return nil, fmt.Errorf("infer: model input dim %d != feature dim %d", cfg.InDim, pg.Dim)
	}
	e := &Engine{Store: store, Model: model}
	for l := 0; l < model.NumLayers(); l++ {
		e.tables = append(e.tables,
			wholemem.AllocSharded[float32](store.Comm, featShardSizes(pg, cfg.LayerOutDim(l))))
	}
	e.replicas = make([]gnn.LayerwiseModel, store.Comm.Size())
	e.replicas[0] = model
	for r := 1; r < len(e.replicas); r++ {
		rep, ok := gnn.New(model.Name(), cfg).(gnn.LayerwiseModel)
		if !ok {
			return nil, fmt.Errorf("infer: %s replica does not implement LayerwiseModel", model.Name())
		}
		e.replicas[r] = rep
	}
	e.scratch = make([]*rankScratch, store.Comm.Size())
	for r := range e.scratch {
		e.scratch[r] = &rankScratch{
			ded:  unique.NewDeduper(),
			tape: autograd.NewTapeArena(tensor.NewArena()),
		}
	}
	return e, nil
}

// FullGraph computes the model's final-layer output for every node of the
// store's graph and returns it as an [N x classes] matrix in original node
// ID order. It is NewEngine + Run; callers embedding repeatedly should keep
// the Engine to amortize the table setup.
func FullGraph(store *core.Store, model gnn.LayerwiseModel) (*tensor.Dense, error) {
	e, err := NewEngine(store, model)
	if err != nil {
		return nil, err
	}
	return e.Run()
}

// Embeddings computes the full-graph embedding matrix: the model's
// final-layer output for every node, in original node-ID order — the
// extraction the ANN retrieval index (internal/ann) is built over. It is
// FullGraph under the name retrieval consumers mean by it; the collection
// out of the shared table is charged per rank and bit-identical serial or
// under sim.RunParallel.
func Embeddings(store *core.Store, model gnn.LayerwiseModel) (*tensor.Dense, error) {
	return FullGraph(store, model)
}

// Run performs one layer-wise propagation: each rank computes the rows of
// its own hash partition, reading input embeddings (its nodes' full
// neighborhoods) from the previous layer's shared table; ranks synchronize
// between layers. All aggregation, gathers and scatters are charged to the
// device clocks. Within a layer, the ranks run on real goroutines
// (sim.RunParallel): each owns its device and model replica, reads the
// previous layer's table (frozen between barriers), and scatters a disjoint
// row range of the next table.
func (e *Engine) Run() (*tensor.Dense, error) {
	pg := e.Store.PG
	devs := e.Store.Comm.Devs
	for r := 1; r < len(e.replicas); r++ {
		e.replicas[r].Params().CopyFrom(e.Model.Params())
	}

	// Layer 0 reads the stored features (possibly the paged store); each
	// subsequent layer reads the shared embedding table the previous layer
	// wrote, wrapped in the same FeatureSource view.
	cur := pg.Features()
	curDim := pg.Dim
	for l := 0; l < e.Model.NumLayers(); l++ {
		last := l == e.Model.NumLayers()-1
		outDim := e.Model.Config().LayerOutDim(l)
		out := e.tables[l]
		in, inDim := cur, curDim
		sim.RunParallel(len(devs), func(r int) {
			dev := devs[r]
			model := e.replicas[r]
			sc := e.scratch[r]
			tp := sc.tape
			tp.Reset()
			if e.Chunks > 1 {
				e.runRankChunked(dev, model, sc, l, last, r, in, inDim, out, outDim)
				return
			}
			blk, uniq := sc.rankBlock(dev, pg, r)
			// Gather the block's input embeddings from the shared table.
			if cap(sc.rows) < len(uniq) {
				sc.rows = make([]int64, len(uniq))
			}
			rows := sc.rows[:len(uniq)]
			for i, gid := range uniq {
				rows[i] = pg.FeatRow(gid)
			}
			x := tp.NewTensor(len(uniq), inDim)
			in.GatherRows(dev, rows, inDim, x.V, "infer.gather")

			model.Params().Bind(tp)
			y := model.ForwardLayer(dev, l, blk, tp.Const(x), last, false)

			// Scatter the rank's rows into the next shared table; local
			// rows are contiguous, so this is a streaming store.
			if cap(sc.outRows) < blk.NumTargets {
				sc.outRows = make([]int64, blk.NumTargets)
			}
			outRows := sc.outRows[:blk.NumTargets]
			base := pg.FeatRow(graph.MakeGlobalID(r, 0))
			for i := range outRows {
				outRows[i] = base + int64(i)
			}
			out.ScatterRows(dev, outRows, outDim, y.Value.V, "infer.scatter")
		})
		sim.Barrier(devs)
		cur = graph.MemFeatures(out, pg.N, outDim)
		curDim = outDim
	}

	// Collect into original node-ID order on the host: each rank reads its
	// own contiguous shard of the final table (a charged streaming read)
	// and de-permutes it into its nodes' original-ID rows. The row sets
	// are disjoint across ranks, so the parallel extraction is bit-equal
	// to the serial one.
	res := tensor.New(int(pg.N), curDim)
	final := e.tables[e.Model.NumLayers()-1]
	sim.RunParallel(len(devs), func(r int) {
		dev := devs[r]
		sc := e.scratch[r]
		localN := pg.LocalCount(r)
		need := int(localN) * curDim
		if cap(sc.collect) < need {
			sc.collect = make([]float32, need)
		}
		buf := sc.collect[:need]
		final.ReadRange(dev, final.ShardStart(r), int64(need), buf, "infer.collect")
		for li := int64(0); li < localN; li++ {
			copy(res.Row(int(pg.Orig[r][li])), buf[li*int64(curDim):(li+1)*int64(curDim)])
		}
	})
	sim.Barrier(devs)
	return res, nil
}

// runRankChunked is the pipelined per-rank layer body: the rank's local
// targets are split into e.Chunks even pieces; all chunk blocks are built
// first on the compute stream (each publishing a ready event), the input
// gathers are issued in order on the copy stream (each waiting for its
// block), and the forward/scatter loop then consumes the chunks, stalling
// only on a chunk's residual gather time. Gather c+1 thereby overlaps
// forward/scatter c, and the first gather overlaps the remaining block
// builds.
func (e *Engine) runRankChunked(dev *sim.Device, model gnn.LayerwiseModel, sc *rankScratch,
	l int, last bool, r int, in graph.FeatureSource, inDim int,
	out *wholemem.Memory[float32], outDim int) {
	pg := e.Store.PG
	tp := sc.tape
	localN := pg.LocalCount(r)
	nChunks := e.Chunks
	if int64(nChunks) > localN {
		nChunks = int(localN)
	}
	if nChunks < 1 {
		nChunks = 1
	}
	sc.ensureChunks(nChunks)
	model.Params().Bind(tp)
	rp := pg.RowPtr.Shard(r)
	colShard := pg.Col.Shard(r)

	// Phase 1 (compute stream): dedup every chunk's neighborhood into its
	// own block.
	for c := 0; c < nChunks; c++ {
		cs := sc.chunks[c]
		cs.lo = localN * int64(c) / int64(nChunks)
		cs.hi = localN * int64(c+1) / int64(nChunks)
		n := cs.hi - cs.lo
		if cap(cs.targets) < int(n) {
			cs.targets = make([]graph.GlobalID, n)
		}
		targets := cs.targets[:n]
		for i := int64(0); i < n; i++ {
			targets[i] = graph.MakeGlobalID(r, cs.lo+i)
		}
		eLo, eHi := rp[cs.lo], rp[cs.hi]
		if cap(cs.neighbors) < int(eHi-eLo) {
			cs.neighbors = make([]graph.GlobalID, eHi-eLo)
		}
		neighbors := cs.neighbors[:eHi-eLo]
		for i, col := range colShard[eLo:eHi] {
			neighbors[i] = graph.GlobalID(col)
		}
		uq := cs.ded.AppendUnique(dev, targets, neighbors)
		cs.rowPtr = cs.rowPtr[:0]
		for i := cs.lo; i <= cs.hi; i++ {
			cs.rowPtr = append(cs.rowPtr, rp[i]-eLo)
		}
		cs.blk = spops.SubCSR{
			NumTargets: int(n),
			NumNodes:   len(uq.Unique),
			RowPtr:     cs.rowPtr,
			Col:        uq.NeighborSubID,
			DupCount:   uq.DupCount,
		}
		if cap(cs.rows) < len(uq.Unique) {
			cs.rows = make([]int64, len(uq.Unique))
		}
		rows := cs.rows[:len(uq.Unique)]
		for i, gid := range uq.Unique {
			rows[i] = pg.FeatRow(gid)
		}
		cs.blkReady = dev.RecordEvent()
	}

	// Phase 2 (copy stream): gather each chunk's input embeddings as soon
	// as its block exists.
	prev := dev.SetStream(sim.StreamCopy)
	for c := 0; c < nChunks; c++ {
		cs := sc.chunks[c]
		dev.WaitEvent(cs.blkReady, "wait.block")
		cs.x = tp.NewTensor(cs.blk.NumNodes, inDim)
		in.GatherRows(dev, cs.rows[:cs.blk.NumNodes], inDim, cs.x.V, "infer.gather")
		cs.gatherDone = dev.RecordEvent()
	}
	dev.SetStream(prev)

	// Phase 3 (compute stream): forward and scatter chunk by chunk,
	// stalling only on residual gather time.
	for c := 0; c < nChunks; c++ {
		cs := sc.chunks[c]
		dev.WaitEvent(cs.gatherDone, "wait.gather")
		y := model.ForwardLayer(dev, l, &cs.blk, tp.Const(cs.x), last, false)
		n := int(cs.hi - cs.lo)
		if cap(sc.outRows) < n {
			sc.outRows = make([]int64, n)
		}
		outRows := sc.outRows[:n]
		base := pg.FeatRow(graph.MakeGlobalID(r, 0))
		for i := range outRows {
			outRows[i] = base + cs.lo + int64(i)
		}
		out.ScatterRows(dev, outRows, outDim, y.Value.V, "infer.scatter")
	}
}

// featShardSizes returns per-rank element counts for an [N x dim] embedding
// table sharded like the node partition.
func featShardSizes(pg *graph.Partitioned, dim int) []int64 {
	sizes := make([]int64, pg.Comm.Size())
	for r := range sizes {
		sizes[r] = pg.LocalCount(r) * int64(dim)
	}
	return sizes
}

// rankBlock builds the full-neighborhood block of rank r: targets are the
// rank's local nodes in local order, neighbors are their complete edge
// lists, deduplicated with AppendUnique so the block indexes a compact
// input set. The block and ID list live in the scratch and are valid until
// the next call.
func (sc *rankScratch) rankBlock(dev *sim.Device, pg *graph.Partitioned, r int) (*spops.SubCSR, []graph.GlobalID) {
	localN := pg.LocalCount(r)
	if cap(sc.targets) < int(localN) {
		sc.targets = make([]graph.GlobalID, localN)
	}
	targets := sc.targets[:localN]
	for i := int64(0); i < localN; i++ {
		targets[i] = graph.MakeGlobalID(r, i)
	}
	rp := pg.RowPtr.Shard(r)
	colShard := pg.Col.Shard(r)
	if cap(sc.neighbors) < len(colShard) {
		sc.neighbors = make([]graph.GlobalID, len(colShard))
	}
	neighbors := sc.neighbors[:len(colShard)]
	for i, c := range colShard {
		neighbors[i] = graph.GlobalID(c)
	}
	uq := sc.ded.AppendUnique(dev, targets, neighbors)
	sc.rowPtr = append(sc.rowPtr[:0], rp...)
	sc.blk = spops.SubCSR{
		NumTargets: int(localN),
		NumNodes:   len(uq.Unique),
		RowPtr:     sc.rowPtr,
		Col:        uq.NeighborSubID,
		DupCount:   uq.DupCount,
	}
	return &sc.blk, uq.Unique
}
