package infer

import (
	"math"
	"testing"

	"wholegraph/internal/autograd"
	"wholegraph/internal/core"
	"wholegraph/internal/dataset"
	"wholegraph/internal/gnn"
	"wholegraph/internal/sim"
	"wholegraph/internal/spops"
	"wholegraph/internal/tensor"
)

func testSetup(t *testing.T, arch string) (*sim.Machine, *core.Store, gnn.LayerwiseModel) {
	t.Helper()
	m := sim.NewMachine(sim.DGXA100(1))
	ds, err := dataset.Generate(dataset.OgbnProducts.Scaled(0.0002)) // ~480 nodes
	if err != nil {
		t.Fatal(err)
	}
	store, err := core.NewStore(m, 0, ds)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gnn.Config{
		InDim: ds.Spec.FeatDim, Hidden: 8, Classes: ds.Spec.NumClasses,
		Layers: 2, Heads: 2, Backend: spops.BackendNative, Seed: 4,
	}
	model, ok := gnn.New(arch, cfg).(gnn.LayerwiseModel)
	if !ok {
		t.Fatalf("%s does not implement LayerwiseModel", arch)
	}
	m.Reset()
	return m, store, model
}

func TestFullGraphShapesAndCharging(t *testing.T) {
	m, store, model := testSetup(t, "gcn")
	out, err := FullGraph(store, model)
	if err != nil {
		t.Fatal(err)
	}
	if int64(out.R) != store.DS.Graph.N || out.C != store.DS.Spec.NumClasses {
		t.Fatalf("output %dx%d", out.R, out.C)
	}
	if m.MaxTime() == 0 {
		t.Error("inference charged nothing")
	}
	// Every row should be finite and not identically zero across the board.
	var nonzero int
	for _, v := range out.V {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("non-finite output")
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Error("all-zero inference output")
	}
}

// TestFullGraphMatchesSampledInference checks the key semantic: for a
// sampling fanout that covers every neighbor, the mini-batch forward pass
// must produce the same logits as layer-wise full-graph inference.
func TestFullGraphMatchesSampledInference(t *testing.T) {
	for _, arch := range []string{"gcn", "graphsage", "gat"} {
		m, store, model := testSetup(t, arch)
		full, err := FullGraph(store, model)
		if err != nil {
			t.Fatal(err)
		}

		maxDeg := int(store.DS.Graph.MaxDegree())
		ld := core.NewLoader(store, m.Devs[0], []int{maxDeg + 1, maxDeg + 1}, 1)
		targets := []int64{0, 7, 31, 100}
		b, _ := ld.BuildBatch(targets)
		logits := forward(model, b)

		for i, v := range targets {
			for j := 0; j < logits.C; j++ {
				got := logits.At(i, j)
				want := full.At(int(v), j)
				if math.Abs(float64(got-want)) > 1e-2*math.Max(1, math.Abs(float64(want))) {
					t.Fatalf("%s node %d class %d: sampled %g vs full %g", arch, v, j, got, want)
				}
			}
		}
	}
}

func forward(model gnn.Model, b *gnn.Batch) *tensor.Dense {
	return model.Forward(nil, autograd.NewTape(), b, false).Value
}

func TestFullGraphErrors(t *testing.T) {
	m := sim.NewMachine(sim.DGXA100(1))
	ds, err := dataset.Generate(dataset.OgbnProducts.Scaled(0.0002))
	if err != nil {
		t.Fatal(err)
	}
	store, err := core.NewStore(m, 0, ds)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong input dimension.
	cfg := gnn.Config{InDim: 3, Hidden: 8, Classes: 4, Layers: 1, Heads: 2, Seed: 1}
	if _, err := FullGraph(store, gnn.NewGCN(cfg)); err == nil {
		t.Error("dim mismatch accepted")
	}
	// Featureless store.
	store.PG.Feat = nil
	store.PG.SetFeatures(nil)
	cfg.InDim = ds.Spec.FeatDim
	if _, err := FullGraph(store, gnn.NewGCN(cfg)); err == nil {
		t.Error("featureless store accepted")
	}
}
