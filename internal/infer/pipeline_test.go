package infer

import (
	"testing"

	"wholegraph/internal/sim"
)

// TestChunkedMatchesSingleBlock: the pipelined (chunked, dual-stream)
// inference path must produce bit-identical embeddings to the single-block
// path for every architecture — chunking narrows the dedup scope but never
// changes any target's neighbor aggregation.
func TestChunkedMatchesSingleBlock(t *testing.T) {
	for _, arch := range []string{"gcn", "graphsage", "gat"} {
		t.Run(arch, func(t *testing.T) {
			_, store, model := testSetup(t, arch)
			seqEng, err := NewEngine(store, model)
			if err != nil {
				t.Fatal(err)
			}
			seq, err := seqEng.Run()
			if err != nil {
				t.Fatal(err)
			}

			_, store2, model2 := testSetup(t, arch)
			pipeEng, err := NewEngine(store2, model2)
			if err != nil {
				t.Fatal(err)
			}
			pipe, err := pipeEng.WithChunks(4).Run()
			if err != nil {
				t.Fatal(err)
			}

			if seq.R != pipe.R || seq.C != pipe.C {
				t.Fatalf("shape %dx%d vs %dx%d", seq.R, seq.C, pipe.R, pipe.C)
			}
			for i := range seq.V {
				if seq.V[i] != pipe.V[i] {
					t.Fatalf("output element %d: sequential %v vs chunked %v",
						i, seq.V[i], pipe.V[i])
				}
			}
		})
	}
}

// TestChunkedOverlapsGathers: the chunked path must actually put gather
// traffic on the copy stream and overlap it with compute — its copy
// streams see work, and any compute stall tagged wait.gather is bounded by
// the copy-stream busy time.
func TestChunkedOverlapsGathers(t *testing.T) {
	m, store, model := testSetup(t, "gcn")
	eng, err := NewEngine(store, model)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.WithChunks(4).Run(); err != nil {
		t.Fatal(err)
	}
	var copyBusy float64
	for _, d := range m.Devs {
		copyBusy += d.Stats.CopyBusySeconds
	}
	if copyBusy == 0 {
		t.Error("chunked inference charged nothing to the copy streams")
	}
	for _, d := range m.Devs {
		if c := d.StreamNow(sim.StreamCopy); c > d.StreamNow(sim.StreamCompute) {
			t.Errorf("dev %d: copy stream %g ran past compute %g at run end",
				d.ID, c, d.StreamNow(sim.StreamCompute))
		}
	}
}

// TestWithChunksClampsBelowOne: WithChunks must clamp 0 and negative
// counts to 1 (the sequential path) instead of arming a broken pipeline,
// and a clamped engine must still run and match the sequential output.
func TestWithChunksClampsBelowOne(t *testing.T) {
	_, store, model := testSetup(t, "gcn")
	eng, err := NewEngine(store, model)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, -1, -100} {
		if got := eng.WithChunks(n).Chunks; got != 1 {
			t.Errorf("WithChunks(%d): Chunks = %d, want 1", n, got)
		}
	}
	if got := eng.WithChunks(4).Chunks; got != 4 {
		t.Errorf("WithChunks(4): Chunks = %d, want 4", got)
	}

	_, store2, model2 := testSetup(t, "gcn")
	seqEng, err := NewEngine(store2, model2)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := seqEng.Run()
	if err != nil {
		t.Fatal(err)
	}
	clamped, err := eng.WithChunks(-3).Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.V {
		if seq.V[i] != clamped.V[i] {
			t.Fatalf("output element %d: sequential %v vs clamped %v",
				i, seq.V[i], clamped.V[i])
		}
	}
}

// TestChunkedRepeatedRuns: the chunk scratch must be reusable across Run
// calls (the engine's amortization contract).
func TestChunkedRepeatedRuns(t *testing.T) {
	_, store, model := testSetup(t, "graphsage")
	eng, err := NewEngine(store, model)
	if err != nil {
		t.Fatal(err)
	}
	eng.WithChunks(3)
	a, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	first := append([]float32(nil), a.V...)
	b, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if b.V[i] != first[i] {
			t.Fatalf("run 2 element %d differs from run 1", i)
		}
	}
}
