package infer

import (
	"testing"

	"wholegraph/internal/sim"
)

// TestEmbeddingsSerialParallelBitEqual pins the extraction contract the
// ANN index depends on: the full-graph embedding matrix — and the virtual
// time the collection charges — is bit-identical whether the per-rank
// shard reads run serially or on real goroutines under sim.RunParallel.
func TestEmbeddingsSerialParallelBitEqual(t *testing.T) {
	prev := sim.SetParallel(false)
	defer sim.SetParallel(prev)
	mSer, storeSer, modelSer := testSetup(t, "graphsage")
	embSer, err := Embeddings(storeSer, modelSer)
	if err != nil {
		t.Fatal(err)
	}

	sim.SetParallel(true)
	mPar, storePar, modelPar := testSetup(t, "graphsage")
	embPar, err := Embeddings(storePar, modelPar)
	if err != nil {
		t.Fatal(err)
	}

	if embSer.R != embPar.R || embSer.C != embPar.C {
		t.Fatalf("shape differs: serial %dx%d, parallel %dx%d", embSer.R, embSer.C, embPar.R, embPar.C)
	}
	for i, v := range embSer.V {
		if v != embPar.V[i] {
			t.Fatalf("element %d differs: serial %v, parallel %v", i, v, embPar.V[i])
		}
	}
	for i, d := range mSer.Devs {
		if d.Now() != mPar.Devs[i].Now() {
			t.Fatalf("device %d clock differs: serial %v, parallel %v", i, d.Now(), mPar.Devs[i].Now())
		}
	}
}

// TestCollectCharged pins that the final host collection is a charged
// per-rank shard read, not a free host loop: every rank's device reports
// an infer.collect contribution via its local byte counters.
func TestCollectCharged(t *testing.T) {
	m, store, model := testSetup(t, "gcn")
	if _, err := Embeddings(store, model); err != nil {
		t.Fatal(err)
	}
	for i, d := range m.Devs {
		if d.Stats.LocalBytes <= 0 {
			t.Fatalf("device %d charged no local bytes during inference+collect", i)
		}
		if d.Now() <= 0 {
			t.Fatalf("device %d clock did not advance", i)
		}
	}
}
