package featstore

import "wholegraph/internal/blockcache"

// The BlockCache machinery lives in internal/blockcache (it is shared
// with internal/topostore, which featstore cannot import without a
// cycle); these aliases keep the featstore spelling that the rest of the
// tree and the CLIs use.

// Block is a cacheable page payload (see blockcache.Block).
type Block = blockcache.Block

// Policy selects the replacement/admission policy (see blockcache.Policy).
type Policy = blockcache.Policy

// The supported cache policies.
const (
	PolicyLRU   = blockcache.PolicyLRU
	PolicyAdmit = blockcache.PolicyAdmit
)

// ParsePolicy resolves a CLI spelling of a cache policy.
func ParsePolicy(s string) (Policy, error) { return blockcache.ParsePolicy(s) }

// BlockCache is the shared per-device page cache (see
// blockcache.BlockCache).
type BlockCache = blockcache.BlockCache

// CacheStats is a point-in-time snapshot of one BlockCache.
type CacheStats = blockcache.CacheStats

// NewBlockCache creates an LRU cache bounded to capacityBytes.
func NewBlockCache(capacityBytes int64) *BlockCache {
	return blockcache.NewBlockCache(capacityBytes)
}

// NewBlockCacheWithPolicy is NewBlockCache with an explicit policy.
func NewBlockCacheWithPolicy(capacityBytes int64, p Policy) *BlockCache {
	return blockcache.NewBlockCacheWithPolicy(capacityBytes, p)
}
