package featstore

import "sync"

// BlockCache is a byte-budgeted LRU cache of encoded pages, one per
// attached device (it models that GPU's HBM page pool). It is
// mutex-guarded: the store itself is shared read-only across workers, but
// each device's cache mutates on every gather, and sim.RunParallel drives
// devices from separate goroutines.
type BlockCache struct {
	mu       sync.Mutex
	capacity int64
	bytes    int64
	entries  map[int32]*blockEntry
	// Doubly-linked LRU list threaded through the entries; head is the
	// most recently used, tail the eviction candidate.
	head, tail *blockEntry

	hits, misses, evictions int64
}

type blockEntry struct {
	id         int32
	pg         *page
	prev, next *blockEntry
}

// NewBlockCache creates a cache bounded to capacityBytes of encoded page
// payload (plus fixed per-page metadata). A single page larger than the
// budget is still admitted — gathers must be able to proceed — so the
// effective floor is one page.
func NewBlockCache(capacityBytes int64) *BlockCache {
	return &BlockCache{capacity: capacityBytes, entries: make(map[int32]*blockEntry)}
}

// get returns the cached page and promotes it to most-recently-used, or
// nil on a miss. Hit/miss counters track lookups.
func (c *BlockCache) get(id int32) *page {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.unlink(e)
	c.pushFront(e)
	return e.pg
}

// put inserts a freshly faulted-in page as most-recently-used and evicts
// from the LRU tail until the budget holds (never evicting the new page
// itself).
func (c *BlockCache) put(id int32, pg *page) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[id]; ok {
		// Another worker faulted the page in between our get and put;
		// keep the resident copy (identical bytes — encoding is
		// deterministic) and just promote it.
		c.unlink(e)
		c.pushFront(e)
		return
	}
	e := &blockEntry{id: id, pg: pg}
	c.entries[id] = e
	c.pushFront(e)
	c.bytes += pg.bytes()
	for c.bytes > c.capacity && c.tail != nil && c.tail != e {
		victim := c.tail
		c.unlink(victim)
		delete(c.entries, victim.id)
		c.bytes -= victim.pg.bytes()
		c.evictions++
	}
}

func (c *BlockCache) pushFront(e *blockEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *BlockCache) unlink(e *blockEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// CacheStats is a point-in-time snapshot of one BlockCache.
type CacheStats struct {
	Hits, Misses, Evictions int64
	ResidentBytes           int64
	ResidentPages           int
	CapacityBytes           int64
}

// Stats snapshots the cache counters.
func (c *BlockCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		ResidentBytes: c.bytes, ResidentPages: len(c.entries),
		CapacityBytes: c.capacity,
	}
}
