package featstore

import (
	"fmt"
	"sync"

	"wholegraph/internal/sim"
)

// RowSource produces feature rows on demand; the store never materializes
// the full float32 table. Implementations: a materialized slab
// (SliceSource), the dataset generator's hash-seeded per-node stream
// (dataset.FeatureGen, which satisfies this interface structurally), or a
// spilled page file (Spilled).
type RowSource interface {
	NumRows() int64
	Dim() int
	// FillRow writes row's dim float32 values into dst[:Dim()].
	// Implementations must be deterministic and safe for concurrent calls
	// with distinct dst buffers.
	FillRow(row int64, dst []float32)
}

// SliceSource adapts a row-major materialized slab to RowSource.
type SliceSource struct {
	Data []float32
	D    int
}

// NumRows returns the row count of the slab.
func (s *SliceSource) NumRows() int64 { return int64(len(s.Data) / s.D) }

// Dim returns the feature dimension.
func (s *SliceSource) Dim() int { return s.D }

// FillRow copies one slab row.
func (s *SliceSource) FillRow(row int64, dst []float32) {
	copy(dst, s.Data[row*int64(s.D):(row+1)*int64(s.D)])
}

// Options configures a Store.
type Options struct {
	// Encoding is the page codec (default Raw: bit-exact).
	Encoding Encoding
	// PageRows is the number of rows per page (default 256). The last page
	// may be partial.
	PageRows int
	// CacheBytes is each attached device's BlockCache budget in bytes of
	// encoded page payload (default 256 MiB).
	CacheBytes int64
	// Policy selects the BlockCache replacement/admission policy
	// (default PolicyLRU). PolicyAdmit changes only which pages stay
	// resident — decoded values are identical under either policy.
	Policy Policy
}

func (o Options) normalize() Options {
	if o.PageRows <= 0 {
		o.PageRows = 256
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = 256 << 20
	}
	return o
}

// Store is the paged feature table. It implements graph.FeatureSource:
// GatherRows decodes the requested rows out of each device's BlockCache,
// faulting missing pages in over the Unified-Memory path on the device's
// copy stream. The store itself is immutable after construction; all
// mutable state lives in the per-device caches.
type Store struct {
	src  RowSource
	opts Options

	nRows  int64
	dim    int
	nPages int32

	// caches holds one BlockCache per attached device. The slice is
	// extended only by Attach (before training starts); lookups during
	// gathers are read-only, so no lock is needed around the slice itself.
	caches []*devCache

	// hostPg memoizes the last page encoded by ReadRow (an uncharged
	// host-side path used by cache fills and evaluation), so sequential
	// host reads don't re-encode a page per row.
	hostMu sync.Mutex
	hostID int32
	hostPg *page
}

// devCache is one device's view of the store: its BlockCache plus gather
// scratch. The scratch is unlocked — like the loader's slot ring, each
// device is driven by exactly one goroutine at a time under
// sim.RunParallel — while the BlockCache keeps its own mutex so direct
// concurrent use (and the race detector) stay sound.
type devCache struct {
	dev    *sim.Device
	bc     *BlockCache
	pages  map[int32]*page
	fresh  []*page
	ids    []int32
	rowBuf []float32
}

// New builds a store over src. Attach devices before gathering.
func New(src RowSource, opts Options) (*Store, error) {
	opts = opts.normalize()
	n, dim := src.NumRows(), src.Dim()
	if n < 0 || dim <= 0 {
		return nil, fmt.Errorf("featstore: bad source shape %d x %d", n, dim)
	}
	s := &Store{
		src: src, opts: opts, nRows: n, dim: dim,
		nPages: int32((n + int64(opts.PageRows) - 1) / int64(opts.PageRows)),
		hostID: -1,
	}
	return s, nil
}

// Attach gives each device its own BlockCache. Call once per device before
// the first gather; attaching mid-training would race with lookups.
func (s *Store) Attach(devs ...*sim.Device) {
	for _, d := range devs {
		s.caches = append(s.caches, &devCache{
			dev:   d,
			bc:    NewBlockCacheWithPolicy(s.opts.CacheBytes, s.opts.Policy),
			pages: make(map[int32]*page),
		})
	}
}

// NumRows implements graph.FeatureSource.
func (s *Store) NumRows() int64 { return s.nRows }

// Dim implements graph.FeatureSource.
func (s *Store) Dim() int { return s.dim }

// Encoding returns the page codec in use.
func (s *Store) Encoding() Encoding { return s.opts.Encoding }

// PageRows returns the rows-per-page setting.
func (s *Store) PageRows() int { return s.opts.PageRows }

// NumPages returns the page count (last page possibly partial).
func (s *Store) NumPages() int { return int(s.nPages) }

// EncodedBytes returns the store's total encoded payload size — the
// virtual footprint a flat encoded table would occupy, and the UM working
// set the fault-latency model sees.
func (s *Store) EncodedBytes() int64 {
	return s.nRows * int64(s.dim) * int64(s.opts.Encoding.BytesPerElem())
}

// CacheBudgetBytes returns the per-device BlockCache capacity.
func (s *Store) CacheBudgetBytes() int64 { return s.opts.CacheBytes }

func (s *Store) cacheFor(dev *sim.Device) *devCache {
	for _, dc := range s.caches {
		if dc.dev == dev {
			return dc
		}
	}
	panic(fmt.Sprintf("featstore: device %d not attached", dev.ID))
}

// pageSpan returns page id's row range [lo, hi).
func (s *Store) pageSpan(id int32) (lo, hi int64) {
	lo = int64(id) * int64(s.opts.PageRows)
	hi = lo + int64(s.opts.PageRows)
	if hi > s.nRows {
		hi = s.nRows
	}
	return
}

// encodePageInto encodes page id from the row source, using buf (grown as
// needed) as the float32 staging area. Deterministic in (src, id).
func (s *Store) encodePageInto(id int32, buf []float32) (*page, []float32) {
	lo, hi := s.pageSpan(id)
	rows := int(hi - lo)
	need := rows * s.dim
	if cap(buf) < need {
		buf = make([]float32, need)
	}
	buf = buf[:need]
	for r := 0; r < rows; r++ {
		s.src.FillRow(lo+int64(r), buf[r*s.dim:(r+1)*s.dim])
	}
	return encodePage(s.opts.Encoding, buf, rows, s.dim), buf
}

// GatherRows implements graph.FeatureSource. It resolves each requested
// row's page against dev's BlockCache; distinct missing pages are faulted
// in on the copy stream — per-page UM fault latency plus encoded-byte
// migration at UM bulk bandwidth — and the current stream waits on the
// transfer before one decode kernel reads the (now resident, still
// encoded) rows at HBM random-access cost and widens them to float32
// in dst. Returns the virtual seconds the current stream advanced.
func (s *Store) GatherRows(dev *sim.Device, rows []int64, dim int, dst []float32, tag string) float64 {
	if dim != s.dim {
		panic(fmt.Sprintf("featstore: dim %d != store dim %d", dim, s.dim))
	}
	if len(dst) < len(rows)*dim {
		panic("featstore: dst too small")
	}
	dc := s.cacheFor(dev)
	t0 := dev.Now()

	clear(dc.pages)
	dc.fresh = dc.fresh[:0]
	pageRows := int64(s.opts.PageRows)
	var missBytes int64
	var inflight sim.Event
	for _, row := range rows {
		if row < 0 || row >= s.nRows {
			panic(fmt.Sprintf("featstore: row %d outside [0,%d)", row, s.nRows))
		}
		id := int32(row / pageRows)
		if _, ok := dc.pages[id]; ok {
			continue
		}
		pg, _ := dc.bc.Get(id).(*page)
		if pg == nil {
			pg, dc.rowBuf = s.encodePageInto(id, dc.rowBuf)
			// A rejected insert (PolicyAdmit) still serves this gather via
			// dc.pages; only residency for future gathers changes.
			dc.bc.Put(id, pg)
			dc.fresh = append(dc.fresh, pg)
			missBytes += pg.CacheBytes()
		} else if pg.ready.T > inflight.T {
			// Hit on a page a prefetch may still be migrating: join its
			// copy-stream ready event instead of reading the future.
			inflight = pg.ready
		}
		dc.pages[id] = pg
	}

	if len(dc.fresh) > 0 {
		// Fault service runs on the copy stream: it can start no earlier
		// than this gather's issue point, and the gather's decode kernel
		// waits for the migration — the PR-3 event dance. Per-page fault
		// latency follows the Table I UM model at the store's working-set
		// size; the payload moves at UM bulk bandwidth.
		issue := dev.RecordEvent()
		prev := dev.SetStream(sim.StreamCopy)
		dev.WaitEvent(issue, "featstore.issue")
		ws := float64(s.EncodedBytes()) / 1e9
		dev.IdleFor(float64(len(dc.fresh))*dev.UMAccessLatency(ws), "featstore.fault")
		dev.Kernel(sim.KernelCost{UMBytes: float64(missBytes), Tag: "featstore.pagein"})
		ready := dev.RecordEvent()
		dev.SetStream(prev)
		for _, pg := range dc.fresh {
			pg.ready = ready
		}
		dev.WaitEvent(ready, "featstore.ready")
	}
	dev.WaitEvent(inflight, "featstore.prefetch.join")

	for i, row := range rows {
		id := int32(row / pageRows)
		r := int(row - int64(id)*pageRows)
		dc.pages[id].decodeRow(s.opts.Encoding, r, dim, dst[i*dim:(i+1)*dim])
	}
	elems := len(rows) * dim
	dev.Kernel(sim.KernelCost{
		RandBytes:   float64(elems * s.opts.Encoding.BytesPerElem()),
		FLOPs:       float64(elems) * s.opts.Encoding.decodeFLOPsPerElem(),
		StreamBytes: float64(4 * elems),
		Tag:         tag,
	})
	return dev.Now() - t0
}

// PrefetchRows faults the pages holding rows into dev's BlockCache ahead
// of demand, at most maxPages of them (0 = unlimited). The migration is
// issued on the copy stream and — unlike a demand fault — nothing waits
// on it: pages carry the transfer's ready event, and the first gather to
// touch one joins that event (free if the transfer already finished,
// the overlap win; a stall only if compute caught up with the copy
// stream). Already-resident pages are skipped without touching the
// demand hit/miss counters; under PolicyAdmit the sketch can reject a
// prefetch outright, in which case no fault is charged. Returns the
// number of pages actually faulted.
func (s *Store) PrefetchRows(dev *sim.Device, rows []int64, maxPages int) int {
	dc := s.cacheFor(dev)
	dc.ids = dc.ids[:0]
	pageRows := int64(s.opts.PageRows)
	for _, row := range rows {
		if row < 0 || row >= s.nRows {
			continue
		}
		id := int32(row / pageRows)
		dup := false
		for _, seen := range dc.ids {
			if seen == id {
				dup = true
				break
			}
		}
		if !dup {
			dc.ids = append(dc.ids, id)
		}
	}
	if maxPages > 0 && len(dc.ids) > maxPages {
		dc.ids = dc.ids[:maxPages]
	}
	dc.fresh = dc.fresh[:0]
	var missBytes int64
	for _, id := range dc.ids {
		if dc.bc.Contains(id) {
			continue
		}
		pg, buf := s.encodePageInto(id, dc.rowBuf)
		dc.rowBuf = buf
		if !dc.bc.PutPrefetched(id, pg) {
			continue // admission rejected a speculative page: skip, no charge
		}
		dc.fresh = append(dc.fresh, pg)
		missBytes += pg.CacheBytes()
	}
	if len(dc.fresh) == 0 {
		return 0
	}
	issue := dev.RecordEvent()
	prev := dev.SetStream(sim.StreamCopy)
	dev.WaitEvent(issue, "featstore.prefetch.issue")
	ws := float64(s.EncodedBytes()) / 1e9
	dev.IdleFor(float64(len(dc.fresh))*dev.UMAccessLatency(ws), "featstore.prefetch.fault")
	dev.Kernel(sim.KernelCost{UMBytes: float64(missBytes), Tag: "featstore.prefetch"})
	ready := dev.RecordEvent()
	dev.SetStream(prev)
	for _, pg := range dc.fresh {
		pg.ready = ready
	}
	return len(dc.fresh)
}

// ReadRow implements graph.FeatureSource: an uncharged host-side read that
// returns exactly what GatherRows would decode for the row (for Raw, the
// source bits verbatim; for lossy encodings, the codec's reconstruction).
func (s *Store) ReadRow(row int64, dst []float32) {
	if row < 0 || row >= s.nRows {
		panic(fmt.Sprintf("featstore: row %d outside [0,%d)", row, s.nRows))
	}
	id := int32(row / int64(s.opts.PageRows))
	s.hostMu.Lock()
	defer s.hostMu.Unlock()
	if s.hostID != id {
		s.hostPg, _ = s.encodePageInto(id, nil)
		s.hostID = id
	}
	lo, _ := s.pageSpan(id)
	s.hostPg.decodeRow(s.opts.Encoding, int(row-lo), s.dim, dst)
}

// Stats aggregates the store's configuration with every attached device's
// BlockCache counters.
type Stats struct {
	Encoding         string `json:"encoding"`
	PageRows         int    `json:"page_rows"`
	Pages            int    `json:"pages"`
	EncodedBytes     int64  `json:"encoded_bytes"`
	CacheBytes       int64  `json:"cache_budget_bytes"`
	Devices          int    `json:"devices"`
	Policy           string `json:"policy"`
	Hits             int64  `json:"hits"`
	Misses           int64  `json:"misses"`
	Evictions        int64  `json:"evictions"`
	PrefetchHits     int64  `json:"prefetch_hits"`
	AdmissionRejects int64  `json:"admission_rejects"`
	ResidentBytes    int64  `json:"resident_bytes"`
}

// HitRate returns the fraction of page lookups served from a BlockCache.
func (st Stats) HitRate() float64 {
	if st.Hits+st.Misses == 0 {
		return 0
	}
	return float64(st.Hits) / float64(st.Hits+st.Misses)
}

// Stats snapshots the aggregate counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Encoding: s.opts.Encoding.String(), PageRows: s.opts.PageRows,
		Pages: int(s.nPages), EncodedBytes: s.EncodedBytes(),
		CacheBytes: s.opts.CacheBytes, Devices: len(s.caches),
		Policy: s.opts.Policy.String(),
	}
	for _, dc := range s.caches {
		cs := dc.bc.Stats()
		st.Hits += cs.Hits
		st.Misses += cs.Misses
		st.Evictions += cs.Evictions
		st.PrefetchHits += cs.PrefetchHits
		st.AdmissionRejects += cs.AdmissionRejects
		st.ResidentBytes += cs.ResidentBytes
	}
	return st
}
