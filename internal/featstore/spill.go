package featstore

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"wholegraph/internal/dataset"
)

// Page spill: the store's encoded pages written once to disk, so a
// generation-backed store (whose RowSource recomputes rows) or a lossy
// store can be reloaded without re-encoding. The format reuses the dataset
// package's binary-io primitives: magic, version, JSON header, a page
// index of (offset, rows, min, max), the page payloads, and a CRC-32C
// trailer over everything after the version word.

const (
	spillMagic   = "WGFS"
	spillVersion = uint32(1)
)

// spillHeader is the JSON file header.
type spillHeader struct {
	Encoding string `json:"encoding"`
	PageRows int    `json:"page_rows"`
	Rows     int64  `json:"rows"`
	Dim      int    `json:"dim"`
}

// spillPageMeta is one page-index entry: where the page's payload starts
// (relative to the payload section) and the codec parameters needed to
// decode it.
type spillPageMeta struct {
	Off  int64
	Rows int32
	Min  float32
	Max  float32
}

// Spill encodes every page of the store (from its row source; no device
// is charged — this is offline preparation, like wggen) and writes them
// with the page index. The bytes are deterministic in (source, options).
func (s *Store) Spill(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(spillMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, spillVersion); err != nil {
		return err
	}
	cw := dataset.NewCRC32Writer(bw)
	hdr, err := json.Marshal(spillHeader{
		Encoding: s.opts.Encoding.String(), PageRows: s.opts.PageRows,
		Rows: s.nRows, Dim: s.dim,
	})
	if err != nil {
		return fmt.Errorf("featstore: encoding spill header: %w", err)
	}
	if err := dataset.WriteBytes(cw, hdr); err != nil {
		return err
	}
	// Index first (fixed-size records), then payloads in page order. Two
	// encode passes — one to size the index, one to stream payloads —
	// keep resident memory at one page regardless of store size.
	var buf []float32
	var off int64
	if err := binary.Write(cw, binary.LittleEndian, int64(s.nPages)); err != nil {
		return err
	}
	metas := make([]spillPageMeta, 0, s.nPages)
	for id := int32(0); id < s.nPages; id++ {
		var pg *page
		pg, buf = s.encodePageInto(id, buf)
		metas = append(metas, spillPageMeta{
			Off: off, Rows: int32(pg.rows), Min: pg.minV, Max: pg.maxV,
		})
		off += int64(len(pg.data))
	}
	for _, m := range metas {
		if err := binary.Write(cw, binary.LittleEndian, m); err != nil {
			return err
		}
	}
	for id := int32(0); id < s.nPages; id++ {
		var pg *page
		pg, buf = s.encodePageInto(id, buf)
		if err := dataset.WriteBytes(cw, pg.data); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, cw.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// SpillFile writes the spill to path.
func (s *Store) SpillFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Spill(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Spilled is a loaded page spill. It implements RowSource by decoding rows
// from its resident encoded pages, so a Store can be rebuilt directly over
// it: featstore.New(spilled, opts). Decoding a Raw spill reproduces the
// original bits; re-encoding a lossy spill at the same encoding is
// idempotent (decode∘encode is a projection), so a Store over a Spilled
// source gathers exactly the spilled values.
type Spilled struct {
	Enc      Encoding
	PageRows int
	Rows     int64
	D        int
	pages    []*page
}

// NumRows implements RowSource.
func (sp *Spilled) NumRows() int64 { return sp.Rows }

// Dim implements RowSource.
func (sp *Spilled) Dim() int { return sp.D }

// FillRow implements RowSource by decoding from the spilled page.
func (sp *Spilled) FillRow(row int64, dst []float32) {
	id := row / int64(sp.PageRows)
	sp.pages[id].decodeRow(sp.Enc, int(row-id*int64(sp.PageRows)), sp.D, dst)
}

// LoadSpill reads a spill written by Spill, verifying the checksum.
func LoadSpill(r io.Reader) (*Spilled, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(spillMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("featstore: reading spill magic: %w", err)
	}
	if string(magic) != spillMagic {
		return nil, fmt.Errorf("featstore: bad spill magic %q", magic)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != spillVersion {
		return nil, fmt.Errorf("featstore: unsupported spill version %d", version)
	}
	cr := dataset.NewCRC32Reader(br)
	hdrBytes, err := dataset.ReadBytes(cr)
	if err != nil {
		return nil, err
	}
	var hdr spillHeader
	if err := json.Unmarshal(hdrBytes, &hdr); err != nil {
		return nil, fmt.Errorf("featstore: decoding spill header: %w", err)
	}
	enc, err := ParseEncoding(hdr.Encoding)
	if err != nil {
		return nil, err
	}
	if hdr.PageRows <= 0 || hdr.Dim <= 0 || hdr.Rows < 0 {
		return nil, fmt.Errorf("featstore: corrupt spill header %+v", hdr)
	}
	var nPages int64
	if err := binary.Read(cr, binary.LittleEndian, &nPages); err != nil {
		return nil, err
	}
	wantPages := (hdr.Rows + int64(hdr.PageRows) - 1) / int64(hdr.PageRows)
	if nPages != wantPages || nPages > math.MaxInt32 {
		return nil, fmt.Errorf("featstore: spill has %d pages, header implies %d", nPages, wantPages)
	}
	metas := make([]spillPageMeta, nPages)
	if err := binary.Read(cr, binary.LittleEndian, metas); err != nil {
		return nil, err
	}
	sp := &Spilled{
		Enc: enc, PageRows: hdr.PageRows, Rows: hdr.Rows, D: hdr.Dim,
		pages: make([]*page, nPages),
	}
	var wantOff int64
	for i, m := range metas {
		data, err := dataset.ReadBytes(cr)
		if err != nil {
			return nil, fmt.Errorf("featstore: reading page %d: %w", i, err)
		}
		if m.Off != wantOff || int(m.Rows)*hdr.Dim*enc.BytesPerElem() != len(data) {
			return nil, fmt.Errorf("featstore: page %d index/payload mismatch", i)
		}
		wantOff += int64(len(data))
		sp.pages[i] = &page{data: data, minV: m.Min, maxV: m.Max, rows: int(m.Rows)}
	}
	sum := cr.Sum32()
	var want uint32
	if err := binary.Read(br, binary.LittleEndian, &want); err != nil {
		return nil, fmt.Errorf("featstore: reading spill checksum: %w", err)
	}
	if sum != want {
		return nil, fmt.Errorf("featstore: spill checksum mismatch (file %08x, computed %08x): corrupt or truncated file", want, sum)
	}
	return sp, nil
}

// LoadSpillFile reads a spill from path.
func LoadSpillFile(path string) (*Spilled, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSpill(f)
}
