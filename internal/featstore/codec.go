// Package featstore is a paged, compressed, columnar feature store: the
// out-of-core backing for node features too large for the flat in-memory
// slab (ogbn-papers100M at full scale is ~57 GB of float32). Rows live in
// fixed-size pages encoded with one of three codecs; each GPU keeps a
// byte-budgeted LRU BlockCache of decoded-on-read pages in its HBM, and a
// page miss pays the Unified-Memory page-fault cost on the device's copy
// stream (the PR-3 dual-stream model), while a hit pays only local HBM.
//
// The raw encoding is bit-exact — training through the store produces
// losses bit-identical to the flat slab — while the float16 and 8-bit
// quantized encodings trade accuracy for a 2x/4x smaller page working set,
// opt-in and reported with accuracy deltas by the featstore ablation.
package featstore

import (
	"fmt"
	"math"

	"wholegraph/internal/sim"
)

// Encoding selects the page codec.
type Encoding uint8

// The supported page encodings.
const (
	// Raw stores IEEE-754 float32 bits: 4 bytes/element, bit-exact.
	Raw Encoding = iota
	// Float16 truncates each float32 to its upper 16 bits (bfloat16-style:
	// sign, full 8-bit exponent, 7 mantissa bits): 2 bytes/element.
	Float16
	// Quant8 linearly quantizes each element to 8 bits against the page's
	// min/max range: 1 byte/element.
	Quant8
)

// String names the encoding as the CLI flags spell it.
func (e Encoding) String() string {
	switch e {
	case Raw:
		return "raw"
	case Float16:
		return "f16"
	case Quant8:
		return "q8"
	}
	return fmt.Sprintf("Encoding(%d)", uint8(e))
}

// ParseEncoding resolves a CLI spelling of an encoding.
func ParseEncoding(s string) (Encoding, error) {
	switch s {
	case "raw", "float32", "":
		return Raw, nil
	case "f16", "float16", "bf16":
		return Float16, nil
	case "q8", "quant8", "int8":
		return Quant8, nil
	}
	return Raw, fmt.Errorf("featstore: unknown encoding %q (want raw, f16 or q8)", s)
}

// BytesPerElem returns the encoded element size.
func (e Encoding) BytesPerElem() int {
	switch e {
	case Float16:
		return 2
	case Quant8:
		return 1
	}
	return 4
}

// decodeFLOPsPerElem is the arithmetic charged per decoded element: raw is
// a pure copy; f16 is one shift/widen; q8 is a multiply-add against the
// page range.
func (e Encoding) decodeFLOPsPerElem() float64 {
	switch e {
	case Float16:
		return 1
	case Quant8:
		return 2
	}
	return 0
}

// page is one encoded page resident in a BlockCache: PageRows (or fewer,
// for the table's last page) rows of dim elements each.
type page struct {
	data []byte
	// minV and maxV bound the page's values; Quant8 decodes against them.
	minV, maxV float32
	rows       int
	// ready is the copy-stream event after which the page is resident on
	// its device (zero — always in the past — for demand faults, which
	// wait inline; set by PrefetchRows so a demand hit on an in-flight
	// prefetch joins the migration instead of time-traveling).
	ready sim.Event
}

// CacheBytes implements Block: encoded payload plus page metadata.
func (p *page) CacheBytes() int64 { return int64(len(p.data)) + 8 }

// encodePage encodes src (rows*dim float32s, row-major) with enc. The
// output is deterministic in src alone, so an evicted page re-encodes to
// identical bytes — decoded values never depend on cache history.
func encodePage(enc Encoding, src []float32, rows, dim int) *page {
	p := &page{rows: rows, data: make([]byte, rows*dim*enc.BytesPerElem())}
	if len(src) > 0 {
		p.minV, p.maxV = src[0], src[0]
		for _, x := range src {
			if x < p.minV {
				p.minV = x
			}
			if x > p.maxV {
				p.maxV = x
			}
		}
	}
	switch enc {
	case Raw:
		for i, x := range src {
			bits := math.Float32bits(x)
			p.data[4*i] = byte(bits)
			p.data[4*i+1] = byte(bits >> 8)
			p.data[4*i+2] = byte(bits >> 16)
			p.data[4*i+3] = byte(bits >> 24)
		}
	case Float16:
		for i, x := range src {
			h := uint16(math.Float32bits(x) >> 16)
			p.data[2*i] = byte(h)
			p.data[2*i+1] = byte(h >> 8)
		}
	case Quant8:
		scale := float64(p.maxV) - float64(p.minV)
		if scale > 0 {
			inv := 255 / scale
			for i, x := range src {
				q := math.Round((float64(x) - float64(p.minV)) * inv)
				p.data[i] = byte(q)
			}
		} // degenerate page (all equal): zeros decode to minV
	default:
		panic(fmt.Sprintf("featstore: encodePage: %v", enc))
	}
	return p
}

// decodeRow decodes row r (within the page) into dst[:dim].
func (p *page) decodeRow(enc Encoding, r, dim int, dst []float32) {
	switch enc {
	case Raw:
		base := 4 * r * dim
		for j := 0; j < dim; j++ {
			o := base + 4*j
			bits := uint32(p.data[o]) | uint32(p.data[o+1])<<8 |
				uint32(p.data[o+2])<<16 | uint32(p.data[o+3])<<24
			dst[j] = math.Float32frombits(bits)
		}
	case Float16:
		base := 2 * r * dim
		for j := 0; j < dim; j++ {
			o := base + 2*j
			h := uint32(p.data[o]) | uint32(p.data[o+1])<<8
			dst[j] = math.Float32frombits(h << 16)
		}
	case Quant8:
		base := r * dim
		step := (float64(p.maxV) - float64(p.minV)) / 255
		for j := 0; j < dim; j++ {
			dst[j] = float32(float64(p.minV) + float64(p.data[base+j])*step)
		}
	default:
		panic(fmt.Sprintf("featstore: decodeRow: %v", enc))
	}
}
