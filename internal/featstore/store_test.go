package featstore

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wholegraph/internal/sim"
)

func testSource(rng *rand.Rand, rows, dim int) *SliceSource {
	return &SliceSource{Data: randMatrix(rng, rows, dim), D: dim}
}

func newTestStore(t *testing.T, src RowSource, opts Options) (*Store, *sim.Device) {
	t.Helper()
	s, err := New(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMachine(sim.DGXA100(1))
	s.Attach(m.Devs...)
	return s, m.Devs[0]
}

// TestGatherRawBitExact: gathering through the paged store with the raw
// encoding returns the source rows bit-identically, in any order, across
// page boundaries and the partial last page.
func TestGatherRawBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const rows, dim = 1000, 7
	src := testSource(rng, rows, dim)
	s, dev := newTestStore(t, src, Options{PageRows: 64}) // 1000/64: partial last page
	if s.NumPages() != 16 {
		t.Fatalf("pages = %d, want 16", s.NumPages())
	}
	idx := make([]int64, 300)
	for i := range idx {
		idx[i] = rng.Int63n(rows)
	}
	idx[0], idx[1] = rows-1, 0 // cover both extremes incl. partial page
	dst := make([]float32, len(idx)*dim)
	s.GatherRows(dev, idx, dim, dst, "test")
	for i, row := range idx {
		for j := 0; j < dim; j++ {
			want := src.Data[row*int64(dim)+int64(j)]
			got := dst[i*dim+j]
			if math.Float32bits(got) != math.Float32bits(want) {
				t.Fatalf("row %d col %d: %g != %g", row, j, got, want)
			}
		}
	}
}

// TestGatherChargesMissesThenHits: the first gather faults pages in (copy
// stream, UM cost) and a repeat of the same rows is served from the
// BlockCache — strictly cheaper, with the hit/miss counters moving.
func TestGatherChargesMissesThenHits(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const rows, dim = 512, 16
	src := testSource(rng, rows, dim)
	s, dev := newTestStore(t, src, Options{PageRows: 32})
	idx := []int64{0, 33, 65, 100, 200, 500}
	dst := make([]float32, len(idx)*dim)

	t0 := dev.Now()
	s.GatherRows(dev, idx, dim, dst, "test")
	missTime := dev.Now() - t0
	st := s.Stats()
	if st.Misses == 0 || st.Hits != 0 {
		t.Fatalf("first gather: %+v", st)
	}
	firstMisses := st.Misses

	t1 := dev.Now()
	s.GatherRows(dev, idx, dim, dst, "test")
	hitTime := dev.Now() - t1
	st = s.Stats()
	if st.Misses != firstMisses {
		t.Errorf("repeat gather faulted pages: %+v", st)
	}
	if st.Hits == 0 {
		t.Errorf("repeat gather recorded no hits: %+v", st)
	}
	if hitTime >= missTime {
		t.Errorf("hit gather (%.3g s) not cheaper than miss gather (%.3g s)", hitTime, missTime)
	}
	if st.ResidentBytes > st.CacheBytes {
		t.Errorf("resident %d over budget %d", st.ResidentBytes, st.CacheBytes)
	}
}

// TestGatherEvictsUnderPressure: a budget far below the touched working
// set forces evictions while every gather still decodes correct values.
func TestGatherEvictsUnderPressure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const rows, dim = 2048, 8
	src := testSource(rng, rows, dim)
	pageBytes := int64(64*dim*4) + 8
	s, err := New(src, Options{PageRows: 64, CacheBytes: 3 * pageBytes})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMachine(sim.DGXA100(1))
	s.Attach(m.Devs...)
	dev := m.Devs[0]
	dst := make([]float32, dim)
	for i := 0; i < 400; i++ {
		row := rng.Int63n(rows)
		s.GatherRows(dev, []int64{row}, dim, dst, "test")
		for j := 0; j < dim; j++ {
			if dst[j] != src.Data[row*int64(dim)+int64(j)] {
				t.Fatalf("iter %d row %d: wrong value after eviction churn", i, row)
			}
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Error("no evictions under a 3-page budget")
	}
	if st.ResidentBytes > 3*pageBytes {
		t.Errorf("resident %d over 3-page budget %d", st.ResidentBytes, 3*pageBytes)
	}
}

// TestReadRowMatchesGather: the uncharged host read decodes exactly what a
// device gather returns, for every encoding (lossy ones included).
func TestReadRowMatchesGather(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const rows, dim = 300, 5
	for _, enc := range []Encoding{Raw, Float16, Quant8} {
		src := testSource(rng, rows, dim)
		s, dev := newTestStore(t, src, Options{Encoding: enc, PageRows: 37})
		got := make([]float32, dim)
		want := make([]float32, dim)
		for i := 0; i < 50; i++ {
			row := rng.Int63n(rows)
			s.ReadRow(row, got)
			s.GatherRows(dev, []int64{row}, dim, want, "test")
			for j := 0; j < dim; j++ {
				if math.Float32bits(got[j]) != math.Float32bits(want[j]) {
					t.Fatalf("%v row %d col %d: ReadRow %g != Gather %g", enc, row, j, got[j], want[j])
				}
			}
		}
	}
}

// TestPerDeviceCaches: each attached device faults its own pages; one
// device's misses do not warm another's cache.
func TestPerDeviceCaches(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := testSource(rng, 256, 4)
	s, _ := newTestStore(t, src, Options{PageRows: 32})
	m := sim.NewMachine(sim.DGXA100(1))
	s.Attach(m.Devs...) // fresh devices; first Attach in helper used another machine
	d0, d1 := m.Devs[0], m.Devs[1]
	dst := make([]float32, 4)
	s.GatherRows(d0, []int64{0}, 4, dst, "t")
	s.GatherRows(d0, []int64{1}, 4, dst, "t") // same page: hit
	s.GatherRows(d1, []int64{2}, 4, dst, "t") // same page, other device: miss
	st := s.Stats()
	if st.Misses != 2 || st.Hits != 1 {
		t.Errorf("cross-device stats: %+v", st)
	}
}

// TestSpillRoundtrip: spill -> load -> rebuild store serves identical
// values, and a corrupted spill file is rejected by the checksum.
func TestSpillRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const rows, dim = 500, 6
	for _, enc := range []Encoding{Raw, Float16, Quant8} {
		src := testSource(rng, rows, dim)
		s, dev := newTestStore(t, src, Options{Encoding: enc, PageRows: 64})
		path := filepath.Join(t.TempDir(), "feat.spill")
		if err := s.SpillFile(path); err != nil {
			t.Fatalf("%v: spill: %v", enc, err)
		}
		sp, err := LoadSpillFile(path)
		if err != nil {
			t.Fatalf("%v: load: %v", enc, err)
		}
		if sp.NumRows() != rows || sp.Dim() != dim {
			t.Fatalf("%v: spill shape %dx%d", enc, sp.NumRows(), sp.Dim())
		}
		// A store over the spill decodes the same values as the original.
		s2, err := New(sp, Options{Encoding: enc, PageRows: 64})
		if err != nil {
			t.Fatal(err)
		}
		m := sim.NewMachine(sim.DGXA100(1))
		s2.Attach(m.Devs...)
		want := make([]float32, dim)
		got := make([]float32, dim)
		for i := 0; i < 40; i++ {
			row := rng.Int63n(rows)
			s.GatherRows(dev, []int64{row}, dim, want, "t")
			s2.GatherRows(m.Devs[0], []int64{row}, dim, got, "t")
			for j := 0; j < dim; j++ {
				if math.Float32bits(got[j]) != math.Float32bits(want[j]) {
					t.Fatalf("%v row %d col %d: spill %g != store %g", enc, row, j, got[j], want[j])
				}
			}
		}
	}
}

func TestSpillCorruptionDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := testSource(rng, 200, 4)
	s, _ := newTestStore(t, src, Options{PageRows: 32})
	path := filepath.Join(t.TempDir(), "feat.spill")
	if err := s.SpillFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte well past the header.
	bad := bytes.Clone(raw)
	bad[len(bad)/2] ^= 0x40
	if _, err := LoadSpill(bytes.NewReader(bad)); err == nil {
		t.Error("corrupted spill accepted")
	} else if !strings.Contains(err.Error(), "checksum") && !strings.Contains(err.Error(), "mismatch") {
		t.Logf("corruption surfaced as: %v", err) // structural errors also acceptable
	}
	// Truncation is detected too.
	if _, err := LoadSpill(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Error("truncated spill accepted")
	}
}

// TestStoreConcurrentGathers drives every device of one machine against
// the same store from real goroutines (the sim.RunParallel shape) — the
// -race regression test for the store's locking.
func TestStoreConcurrentGathers(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const rows, dim = 1024, 8
	src := testSource(rng, rows, dim)
	s, err := New(src, Options{PageRows: 32, CacheBytes: 8 * 1100})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMachine(sim.DGXA100(1))
	s.Attach(m.Devs...)
	sim.RunParallel(len(m.Devs), func(r int) {
		lr := rand.New(rand.NewSource(int64(r)))
		dst := make([]float32, 16*dim)
		idx := make([]int64, 16)
		for it := 0; it < 50; it++ {
			for i := range idx {
				idx[i] = lr.Int63n(rows)
			}
			s.GatherRows(m.Devs[r], idx, dim, dst, "t")
			for i, row := range idx {
				if dst[i*dim] != src.Data[row*int64(dim)] {
					t.Errorf("rank %d: wrong value for row %d", r, row)
					return
				}
			}
		}
	})
	st := s.Stats()
	if st.Hits+st.Misses == 0 {
		t.Error("no lookups recorded")
	}
}
