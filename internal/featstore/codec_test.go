package featstore

import (
	"math"
	"math/rand"
	"testing"
)

func randMatrix(rng *rand.Rand, rows, dim int) []float32 {
	m := make([]float32, rows*dim)
	for i := range m {
		// Mix magnitudes and signs, with occasional exact zeros and
		// denormal-ish values, to stress the codecs.
		switch rng.Intn(8) {
		case 0:
			m[i] = 0
		case 1:
			m[i] = float32(rng.NormFloat64()) * 1e-20
		case 2:
			m[i] = float32(rng.NormFloat64()) * 1e6
		default:
			m[i] = float32(rng.NormFloat64())
		}
	}
	return m
}

// TestRawRoundtripBitExact: the raw codec must reproduce the source bits
// exactly, across random shapes including partial and tiny pages.
func TestRawRoundtripBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		rows := 1 + rng.Intn(40)
		dim := 1 + rng.Intn(24)
		src := randMatrix(rng, rows, dim)
		pg := encodePage(Raw, src, rows, dim)
		dst := make([]float32, dim)
		for r := 0; r < rows; r++ {
			pg.decodeRow(Raw, r, dim, dst)
			for j := 0; j < dim; j++ {
				want := src[r*dim+j]
				if math.Float32bits(dst[j]) != math.Float32bits(want) {
					t.Fatalf("trial %d row %d col %d: %x != %x",
						trial, r, j, math.Float32bits(dst[j]), math.Float32bits(want))
				}
			}
		}
	}
}

// TestFloat16Roundtrip: truncation to the upper 16 bits keeps sign and
// exponent, bounds relative error by the dropped 7 mantissa bits, and is
// idempotent (re-encoding a decoded value reproduces it exactly).
func TestFloat16Roundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		rows := 1 + rng.Intn(40)
		dim := 1 + rng.Intn(24)
		src := randMatrix(rng, rows, dim)
		pg := encodePage(Float16, src, rows, dim)
		dec := make([]float32, rows*dim)
		for r := 0; r < rows; r++ {
			pg.decodeRow(Float16, r, dim, dec[r*dim:(r+1)*dim])
		}
		for i, want := range src {
			got := dec[i]
			if want == 0 {
				if got != 0 {
					t.Fatalf("zero decoded to %g", got)
				}
				continue
			}
			rel := math.Abs(float64(got-want)) / math.Abs(float64(want))
			if rel > 1.0/128 { // 7 mantissa bits dropped: error < 2^-7
				t.Fatalf("trial %d elem %d: %g -> %g (rel err %g)", trial, i, want, got, rel)
			}
		}
		// Idempotence: encode(decode(x)) == decode(x) bit-exactly.
		pg2 := encodePage(Float16, dec, rows, dim)
		dst := make([]float32, dim)
		for r := 0; r < rows; r++ {
			pg2.decodeRow(Float16, r, dim, dst)
			for j := 0; j < dim; j++ {
				if math.Float32bits(dst[j]) != math.Float32bits(dec[r*dim+j]) {
					t.Fatalf("f16 re-encode not idempotent at (%d,%d)", r, j)
				}
			}
		}
	}
}

// TestQuant8Roundtrip: linear quantization error is bounded by half a step
// of the page range, and degenerate (constant) pages decode exactly.
func TestQuant8Roundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		rows := 1 + rng.Intn(40)
		dim := 1 + rng.Intn(24)
		src := make([]float32, rows*dim)
		for i := range src {
			src[i] = float32(rng.NormFloat64())
		}
		pg := encodePage(Quant8, src, rows, dim)
		step := (float64(pg.maxV) - float64(pg.minV)) / 255
		dst := make([]float32, dim)
		for r := 0; r < rows; r++ {
			pg.decodeRow(Quant8, r, dim, dst)
			for j := 0; j < dim; j++ {
				diff := math.Abs(float64(dst[j]) - float64(src[r*dim+j]))
				if diff > step/2+1e-7 {
					t.Fatalf("trial %d (%d,%d): err %g > half-step %g", trial, r, j, diff, step/2)
				}
			}
		}
	}
	// Constant page: scale collapses, everything decodes to the value.
	src := []float32{2.5, 2.5, 2.5, 2.5}
	pg := encodePage(Quant8, src, 2, 2)
	dst := make([]float32, 2)
	for r := 0; r < 2; r++ {
		pg.decodeRow(Quant8, r, 2, dst)
		if dst[0] != 2.5 || dst[1] != 2.5 {
			t.Fatalf("constant page decoded to %v", dst)
		}
	}
}

// TestZeroRowPage: an empty page encodes and reports zero bytes.
func TestZeroRowPage(t *testing.T) {
	for _, enc := range []Encoding{Raw, Float16, Quant8} {
		pg := encodePage(enc, nil, 0, 16)
		if len(pg.data) != 0 || pg.rows != 0 {
			t.Errorf("%v: zero-row page has %d bytes, %d rows", enc, len(pg.data), pg.rows)
		}
	}
}

func TestParseEncoding(t *testing.T) {
	cases := map[string]Encoding{
		"raw": Raw, "": Raw, "float32": Raw,
		"f16": Float16, "float16": Float16, "bf16": Float16,
		"q8": Quant8, "quant8": Quant8, "int8": Quant8,
	}
	for in, want := range cases {
		got, err := ParseEncoding(in)
		if err != nil || got != want {
			t.Errorf("ParseEncoding(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseEncoding("zstd"); err == nil {
		t.Error("unknown encoding accepted")
	}
	if Raw.BytesPerElem() != 4 || Float16.BytesPerElem() != 2 || Quant8.BytesPerElem() != 1 {
		t.Error("wrong encoded element sizes")
	}
}
