package bench

import "testing"

// TestAblationSchedRegression pins the scheduler's performance guarantee at
// the harness level: in every cell the scheduled epoch is no slower than
// the plain captured one (the serial fallback makes this a hard invariant),
// at least one cell shows a strict win, losses match bit-for-bit, and
// scheduled replays actually ran.
func TestAblationSchedRegression(t *testing.T) {
	rows, err := AblationSched(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no cells ran")
	}
	strict := false
	for _, r := range rows {
		if !r.LossMatch {
			t.Errorf("%s/%d overlap=%v: loss drifted between captured and scheduled", r.Arch, r.Nodes, r.Overlap)
		}
		if r.Scheduled == 0 {
			t.Errorf("%s/%d overlap=%v: no scheduled replays", r.Arch, r.Nodes, r.Overlap)
		}
		if r.ScheduledEpoch > r.CapturedEpoch {
			t.Errorf("%s/%d overlap=%v: scheduled epoch %.6g slower than captured %.6g",
				r.Arch, r.Nodes, r.Overlap, r.ScheduledEpoch, r.CapturedEpoch)
		}
		if r.ScheduledEpoch < r.CapturedEpoch {
			strict = true
		}
	}
	if !strict {
		t.Error("no cell showed a strict scheduled win over plain capture")
	}
}
