package bench

import (
	"wholegraph/internal/dataset"
	"wholegraph/internal/gnn"
	"wholegraph/internal/serve"
	"wholegraph/internal/sim"
	"wholegraph/internal/spops"
)

// ServingRow is one serving configuration's measured behavior under the
// same open-loop request stream.
type ServingRow struct {
	Mode     string  `json:"mode"`
	MaxBatch int     `json:"max_batch"`
	Rate     float64 `json:"rate_rps"`
	Replicas int     `json:"replicas"`

	Served        int     `json:"served"`
	Shed          int     `json:"shed"`
	TimedOut      int     `json:"timed_out"`
	MeanBatch     float64 `json:"mean_batch"`
	Throughput    float64 `json:"throughput_rps"`
	Goodput       float64 `json:"goodput_rps"`
	P50           float64 `json:"p50_latency"`
	P99           float64 `json:"p99_latency"`
	SLOAttainment float64 `json:"slo_attainment"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
}

// Serving measures online inference serving: the same Poisson request
// stream is replayed against a batch=1 deployment (every request runs
// alone, the way a naive request-per-kernel server would) and against the
// dynamic batcher at increasing MaxBatch, plus a cache-assisted
// configuration. The open-loop rate is set ~2x above the unbatched
// capacity, so the batch=1 server saturates and sheds while the batcher
// amortizes kernel launches and sampling overhead across coalesced
// requests — higher throughput at equal or better tail latency. (The rate
// and deadline track the serving stack's speed: when the forward pass got
// cheaper after the backward-charge split, both tightened to keep the
// batch=1 server past saturation.)
func Serving(cfg Config) ([]ServingRow, error) {
	cfg = cfg.normalize()
	scale := cfg.Scale
	if scale < 1e-3 {
		scale = 1e-3
	}
	spec := dataset.OgbnProducts.Scaled(scale)
	ds, err := generate(spec)
	if err != nil {
		return nil, err
	}
	replicas := 4
	requests := 4000
	if cfg.Quick {
		replicas = 2
		requests = 1200
	}
	base := serve.Options{
		Rate:     240000,
		Requests: requests,
		MaxDelay: 0.5e-3,
		SLO:      2e-3,
		Deadline: 2e-3,
		QueueCap: 256,
		Fanouts:  []int{5, 5},
		Skew:     1.3,
		Seed:     cfg.Seed,
	}

	cfg.printf("Online serving: dynamic batching vs batch=1 (%s, %d replicas, %.0f rps offered, SLO %.0f ms)\n",
		spec.Name, replicas, base.Rate, base.SLO*1e3)
	cfg.printf("%-14s %6s %6s %6s %8s %11s %10s %10s %8s %6s\n",
		"mode", "served", "shed", "t/out", "batch", "thr (rps)", "p50 (ms)", "p99 (ms)", "SLO %", "cache")

	type variant struct {
		mode      string
		maxBatch  int
		cacheRows int
	}
	variants := []variant{
		{"batch=1", 1, 0},
		{"batch<=8", 8, 0},
		{"batch<=32", 32, 0},
		{"batch<=32+cache", 32, 500},
	}
	if cfg.Quick {
		variants = []variant{{"batch=1", 1, 0}, {"batch<=16", 16, 0}}
	}

	var rows []ServingRow
	for _, v := range variants {
		opts := base
		opts.MaxBatch = v.maxBatch
		opts.CacheRows = v.cacheRows
		res, err := runServing(cfg, ds, replicas, opts)
		if err != nil {
			return nil, err
		}
		row := ServingRow{
			Mode: v.mode, MaxBatch: v.maxBatch, Rate: opts.Rate, Replicas: replicas,
			Served: res.Served, Shed: res.Shed, TimedOut: res.TimedOut,
			MeanBatch: res.MeanBatch, Throughput: res.Throughput, Goodput: res.Goodput,
			P50: res.P50, P99: res.P99, SLOAttainment: res.SLOAttainment,
		}
		var hits, total float64
		for _, st := range res.PerReplica {
			hits += st.CacheHitRate
			total++
		}
		if v.cacheRows > 0 && total > 0 {
			row.CacheHitRate = hits / total
		}
		rows = append(rows, row)
		cfg.printf("%-14s %6d %6d %6d %8.2f %11.0f %10.3f %10.3f %7.1f%% %5.0f%%\n",
			row.Mode, row.Served, row.Shed, row.TimedOut, row.MeanBatch,
			row.Throughput, row.P50*1e3, row.P99*1e3, 100*row.SLOAttainment,
			100*row.CacheHitRate)
	}
	return rows, nil
}

// runServing builds one deployment and serves one stream on it.
func runServing(cfg Config, ds *dataset.Dataset, replicas int, opts serve.Options) (*serve.Result, error) {
	mcfg := sim.DGXA100(1)
	mcfg.GPUsPerNode = replicas
	m := sim.NewMachine(mcfg)
	model := gnn.NewSAGE(gnn.Config{
		InDim: ds.Spec.FeatDim, Hidden: 32, Classes: ds.Spec.NumClasses,
		Layers: len(opts.Normalize().Fanouts), Backend: spops.BackendNative, Seed: cfg.Seed,
	})
	s, err := serve.New(m, 0, ds, model, opts)
	if err != nil {
		return nil, err
	}
	m.Reset() // store partitioning and cache fill are one-time setup
	return s.Run()
}
