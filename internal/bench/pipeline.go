package bench

import (
	"fmt"
	"sync"

	fcache "wholegraph/internal/cache"
	"wholegraph/internal/dataset"
	"wholegraph/internal/train"
)

// PipelineRow reports one cell of the overlap ablation: the same training
// run with and without cross-iteration prefetch on the copy stream.
type PipelineRow struct {
	FeatDim int
	Fanouts string
	// SeqEpoch / PipeEpoch: virtual epoch time without and with the
	// dual-stream batch pipeline. Model math is bit-identical either way.
	SeqEpoch, PipeEpoch float64
	// Build / Train: per-epoch busy time of the batch-build stages
	// (sample + gather) and of the compute stages (forward/backward/step),
	// from the sequential run's stage breakdown.
	Build, Train float64
	// Bound is the best saving overlap can deliver: the smaller of build
	// and train hides entirely behind the larger, except in the first
	// iteration, whose build has nothing to run under.
	Bound   float64
	Speedup float64
}

// AblationPipeline evaluates the dual-stream batch pipeline: while
// iteration i runs forward/backward on the compute stream, the loader
// builds batch i+1 (sample, dedup, gather) on the copy stream. The sweep
// crosses feature width — which moves the workload from compute-bound to
// gather-bound — with sampling fanout, and reports the measured saving next
// to the min(build, train) overlap bound.
func AblationPipeline(cfg Config) ([]PipelineRow, error) {
	cfg = cfg.normalize()
	cfg.printf("Ablation: cross-iteration batch prefetch (GraphSAGE, ogbn-products)\n")
	cfg.printf("%8s %-10s %12s %12s %12s %12s %9s\n",
		"featdim", "fanouts", "sequential", "pipelined", "bound", "saved", "speedup")

	type cell struct {
		dim     int
		fanouts []int
	}
	var cells []cell
	for _, dim := range []int{64, 128, 256} {
		for _, fan := range [][]int{{5, 5}, {10, 10, 10}} {
			cells = append(cells, cell{dim, fan})
		}
	}
	rows := make([]PipelineRow, len(cells))
	err := cfg.runCells(len(cells), func(i int) error {
		c := cells[i]
		spec := dataset.OgbnProducts.Scaled(cfg.Scale)
		spec.FeatDim = c.dim
		// generate memoizes by name; per-dim variants need distinct names.
		spec.Name = fmt.Sprintf("%s-d%d", spec.Name, c.dim)
		ds, err := generate(spec)
		if err != nil {
			return err
		}
		opts := cfg.trainOpts("graphsage")
		opts.Fanouts = c.fanouts
		// Cross-iteration overlap needs several iterations per epoch; at
		// the harness scales the default batch covers a worker's whole
		// training shard in one iteration, which has nothing to pipeline.
		// Size the batch so each of the 8 workers gets ~4 iterations.
		batch := len(ds.Train) / (8 * 4)
		if batch < 1 {
			batch = 1
		}
		if batch > 8 {
			batch = 8
		}
		opts.Batch = batch
		opts.MaxItersPerEpoch = 8

		epoch := func(pipeline bool) (train.EpochStats, error) {
			opts.Pipeline = pipeline
			_, tr, err := newTrainer(FwWholeGraph, 1, ds, opts)
			if err != nil {
				return train.EpochStats{}, err
			}
			return tr.RunEpoch(), nil
		}
		seq, err := epoch(false)
		if err != nil {
			return err
		}
		pipe, err := epoch(true)
		if err != nil {
			return err
		}

		build := seq.Timing.Sample + seq.Timing.Gather
		bound := build
		if seq.Timing.Train < bound {
			bound = seq.Timing.Train
		}
		if seq.Iters > 0 {
			bound *= float64(seq.Iters-1) / float64(seq.Iters)
		}
		rows[i] = PipelineRow{
			FeatDim: c.dim, Fanouts: fmt.Sprint(c.fanouts),
			SeqEpoch: seq.EpochTime, PipeEpoch: pipe.EpochTime,
			Build: build, Train: seq.Timing.Train,
			Bound:   bound,
			Speedup: seq.EpochTime / pipe.EpochTime,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		cfg.printf("%8d %-10s %12s %12s %12s %12s %8.2fx\n",
			r.FeatDim, r.Fanouts, fmtSeconds(r.SeqEpoch), fmtSeconds(r.PipeEpoch),
			fmtSeconds(r.Bound), fmtSeconds(r.SeqEpoch-r.PipeEpoch), r.Speedup)
	}
	return rows, nil
}

// cacheAgg collects every per-worker feature cache the harness builds (only
// when Config.CacheRows asks for them), so the CLI can report an aggregate
// hit rate in its -json output. Locked: experiment cells build trainers
// concurrently under -parallel.
var cacheAgg struct {
	sync.Mutex
	caches []*fcache.FeatureCache
}

func registerCaches(cs []*fcache.FeatureCache) {
	if len(cs) == 0 {
		return
	}
	cacheAgg.Lock()
	cacheAgg.caches = append(cacheAgg.caches, cs...)
	cacheAgg.Unlock()
}

// CacheCounters sums hits and misses across every feature cache built since
// process start. Both are zero unless Config.CacheRows was set.
func CacheCounters() (hits, misses int64) {
	cacheAgg.Lock()
	defer cacheAgg.Unlock()
	for _, c := range cacheAgg.caches {
		hits += c.Hits
		misses += c.Misses
	}
	return hits, misses
}
