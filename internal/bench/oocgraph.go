package bench

import (
	"fmt"

	"wholegraph/internal/blockcache"
	"wholegraph/internal/core"
	"wholegraph/internal/dataset"
	"wholegraph/internal/featstore"
	"wholegraph/internal/sim"
	"wholegraph/internal/topostore"
)

// OOCGraphRow is one row of the out-of-core topology ablation: in-RAM CSR
// against the paged topology+feature stores under LRU, LRU+prefetch, and
// admission+prefetch, all at the same fixed byte budget.
type OOCGraphRow struct {
	Variant    string    // "in-RAM", "paged-lru", "paged+prefetch", "paged+prefetch+admit"
	EpochTime  float64   // virtual seconds, last epoch
	SampleTime float64   // virtual seconds in the sampling phase, last epoch
	Losses     []float64 // per-epoch training loss
	// BitIdentical reports whether every epoch's loss equals the in-RAM
	// baseline's bit-for-bit. Must hold for every variant: paging,
	// prefetch, and admission change only virtual time and residency.
	BitIdentical bool
	// Cache behavior of the paged variants (zero for in-RAM).
	TopoHitRate       float64
	FeatHitRate       float64
	PrefetchHits      int64 // prefetched pages later demanded (topo + feat)
	AdmissionRejects  int64 // pages the admission sketch kept out (topo + feat)
	TopoResidentBytes int64
	TopoCacheBytes    int64
}

// AblationOOCGraph isolates what each out-of-core mechanism buys on the
// papers100M-shaped graph: the in-RAM CSR baseline (same topology and
// features materialized), then the paged stores at a fixed byte budget of
// ~1/4 of the column array / encoded features — first LRU-only, then with
// copy-stream fault prefetch, then with frequency-aware page admission on
// top. Losses are bit-identical across all four by construction; the
// mechanisms may only move virtual epoch time and hit rates.
func AblationOOCGraph(cfg Config) ([]OOCGraphRow, error) {
	cfg = cfg.normalize()
	// The fault-prefetch hook predicts the NEXT batch's pages, so each
	// epoch must be several batches wide; enforce a scale floor — and say
	// so, rather than silently running a different experiment than asked.
	scale := cfg.Scale
	if scale < 1e-3 {
		scale = 1e-3
		cfg.printf("note: requested scale %g is below the 1e-3 floor for this experiment; running at 1e-3\n", cfg.Scale)
	}
	spec := dataset.OgbnPapers100M.Scaled(scale)
	cfg.printf("Out-of-core topology ablation: in-RAM CSR vs paged stores at 1/4 byte budget (%s, GraphSAGE)\n", spec.Name)
	ooc, err := dataset.GenerateOutOfCore(spec)
	if err != nil {
		return nil, err
	}
	// The in-RAM twin: same labels, splits, features, and adjacency as the
	// out-of-core dataset, materialized (only viable at bench scales).
	mat, err := dataset.MaterializeOutOfCore(spec)
	if err != nil {
		return nil, err
	}
	// Fixed byte budgets: a quarter of the data each store serves, so every
	// paged variant runs under the same eviction pressure at any scale.
	topoBudget := ooc.Topo.NumEdges() * 8 / 4
	featBudget := spec.Nodes * int64(spec.FeatDim) * 4 / 4
	prefetch := cfg.PrefetchPages
	if prefetch == 0 {
		prefetch = 16
	}
	epochs := 3
	if cfg.Quick {
		epochs = 2
	}
	variants := []struct {
		name     string
		paged    bool
		prefetch int
		policy   blockcache.Policy
	}{
		{"in-RAM", false, 0, blockcache.PolicyLRU},
		{"paged-lru", true, 0, blockcache.PolicyLRU},
		{"paged+prefetch", true, prefetch, blockcache.PolicyLRU},
		{"paged+prefetch+admit", true, prefetch, blockcache.PolicyAdmit},
	}
	rows := make([]OOCGraphRow, len(variants))
	err = cfg.runCells(len(variants), func(cell int) error {
		v := variants[cell]
		m := sim.NewMachine(sim.DGXA100(1))
		ds := mat
		so := core.StoreOptions{}
		if v.paged {
			ds = ooc
			so = core.StoreOptions{
				PagedFeatures: true,
				Feat:          featstore.Options{CacheBytes: featBudget, Policy: v.policy},
				PagedTopo:     true,
				Topo:          topostore.Options{CacheBytes: topoBudget, Policy: v.policy},
			}
		}
		store, err := core.NewStoreOpts(m, 0, ds, so)
		if err != nil {
			return err
		}
		opts := cfg.trainOpts("graphsage")
		// The store above is the variant; clear the Config-level paging
		// plumbing (consumed only by train.New) and set this variant's
		// prefetch depth.
		opts.PagedFeatures, opts.PagedTopo = false, false
		opts.PrefetchPages = v.prefetch
		// Next-batch fault prefetch needs a next batch: train nodes shard
		// across the node's 8 GPUs (~120 per worker at the scale floor), so
		// force a batch size that gives every worker several iterations per
		// epoch, and measure enough of them for cache steady state.
		opts.Batch = 32
		if opts.MaxItersPerEpoch > 0 && opts.MaxItersPerEpoch < 8 {
			opts.MaxItersPerEpoch = 8
		}
		tr, err := newStoreTrainer(m, store, opts)
		if err != nil {
			return err
		}
		tr.Stores = []*core.Store{store}
		registerFeatStores(tr.FeatStores())
		registerTopoStores(tr.TopoStores())
		registerComm(m)
		m.Reset() // measure training, not store setup
		row := OOCGraphRow{Variant: v.name}
		for e := 0; e < epochs; e++ {
			st := tr.RunEpoch()
			row.Losses = append(row.Losses, st.Loss)
			row.EpochTime = st.EpochTime
			row.SampleTime = st.Timing.Sample
		}
		if v.paged {
			tst := tr.TopoStoreStats()
			fst := tr.FeatStoreStats()
			row.TopoHitRate = tst.HitRate()
			row.FeatHitRate = fst.HitRate()
			row.PrefetchHits = tst.PrefetchHits + fst.PrefetchHits
			row.AdmissionRejects = tst.AdmissionRejects + fst.AdmissionRejects
			row.TopoResidentBytes = tst.ResidentBytes
			row.TopoCacheBytes = tst.CacheBytes
		}
		rows[cell] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].BitIdentical = lossesEqual(rows[i].Losses, rows[0].Losses)
	}
	cfg.printf("topology budget %s (of %s column array), feature budget %s\n",
		fmtBytes(topoBudget), fmtBytes(ooc.Topo.NumEdges()*8), fmtBytes(featBudget))
	cfg.printf("%-21s %12s %12s %12s %9s %9s %9s %8s %6s\n",
		"variant", "epoch", "sample", "final loss", "topo hit", "feat hit", "prefetch", "rejects", "exact")
	for _, r := range rows {
		topoHit, featHit := "-", "-"
		if r.Variant != "in-RAM" {
			topoHit = fmtPct(r.TopoHitRate)
			featHit = fmtPct(r.FeatHitRate)
		}
		cfg.printf("%-21s %12s %12s %12.4f %9s %9s %9d %8d %6v\n",
			r.Variant, fmtSeconds(r.EpochTime), fmtSeconds(r.SampleTime),
			r.Losses[len(r.Losses)-1], topoHit, featHit,
			r.PrefetchHits, r.AdmissionRejects, r.BitIdentical)
	}
	return rows, nil
}

func fmtPct(f float64) string {
	return fmt.Sprintf("%.1f%%", 100*f)
}
