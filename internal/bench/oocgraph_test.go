package bench

import "testing"

// TestAblationOOCGraph pins the out-of-core topology acceptance criteria:
// every paged variant trains bit-identically to the in-RAM CSR, and at the
// fixed byte budget prefetch+admission beats plain paged-LRU on both
// virtual epoch time and hit rate.
func TestAblationOOCGraph(t *testing.T) {
	rows, err := AblationOOCGraph(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byName := map[string]OOCGraphRow{}
	for _, r := range rows {
		byName[r.Variant] = r
		if r.EpochTime <= 0 || len(r.Losses) == 0 {
			t.Errorf("%s: empty result %+v", r.Variant, r)
		}
		if !r.BitIdentical {
			t.Errorf("%s: losses diverge from the in-RAM baseline (%v vs %v)",
				r.Variant, r.Losses, rows[0].Losses)
		}
	}
	lru := byName["paged-lru"]
	pf := byName["paged+prefetch"]
	adm := byName["paged+prefetch+admit"]
	for _, r := range []OOCGraphRow{lru, pf, adm} {
		if r.TopoHitRate <= 0 || r.TopoHitRate >= 1 {
			t.Errorf("%s: topo hit rate %v out of range", r.Variant, r.TopoHitRate)
		}
		if r.TopoResidentBytes > r.TopoCacheBytes {
			t.Errorf("%s: resident %d over budget %d", r.Variant, r.TopoResidentBytes, r.TopoCacheBytes)
		}
	}
	if lru.PrefetchHits != 0 || lru.AdmissionRejects != 0 {
		t.Errorf("paged-lru should neither prefetch nor reject: %+v", lru)
	}
	if pf.PrefetchHits == 0 {
		t.Error("paged+prefetch recorded no prefetch hits")
	}
	if adm.AdmissionRejects == 0 {
		t.Error("paged+prefetch+admit recorded no admission rejects")
	}
	// The headline: at the same byte budget, prefetch+admission must not
	// lose to plain LRU on either axis, and the paged path must cost more
	// virtual time than the in-RAM baseline it replaces (faults are real).
	if adm.EpochTime > lru.EpochTime {
		t.Errorf("prefetch+admission epoch %v slower than paged-lru %v", adm.EpochTime, lru.EpochTime)
	}
	if adm.TopoHitRate < lru.TopoHitRate {
		t.Errorf("prefetch+admission topo hit rate %v below paged-lru %v", adm.TopoHitRate, lru.TopoHitRate)
	}
	inRAM := byName["in-RAM"]
	if lru.EpochTime <= inRAM.EpochTime {
		t.Errorf("paged-lru epoch %v not slower than in-RAM %v", lru.EpochTime, inRAM.EpochTime)
	}
}
