package bench

import (
	"strings"
	"testing"
)

func TestAblationFeatstore(t *testing.T) {
	rows, err := AblationFeatstore(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byName := map[string]FeatstoreVariantRow{}
	for _, r := range rows {
		byName[r.Variant] = r
		if r.EpochTime <= 0 || len(r.Losses) == 0 {
			t.Errorf("%s: empty result %+v", r.Variant, r)
		}
	}
	if !byName["flat"].BitIdentical || !byName["paged/raw"].BitIdentical {
		t.Error("paged/raw losses not bit-identical to the flat slab")
	}
	for _, v := range []string{"paged/raw", "paged/f16", "paged/q8"} {
		r := byName[v]
		if r.HitRate <= 0 || r.EncodedBytes <= 0 {
			t.Errorf("%s: cache stats missing: %+v", v, r)
		}
	}
	// The encodings shrink the encoded working set 4:2:1.
	raw, f16, q8 := byName["paged/raw"].EncodedBytes, byName["paged/f16"].EncodedBytes, byName["paged/q8"].EncodedBytes
	if f16*2 != raw || q8*4 != raw {
		t.Errorf("encoded bytes not 4:2:1 (raw %d, f16 %d, q8 %d)", raw, f16, q8)
	}
}

func TestFeatstoreFull(t *testing.T) {
	cfg := testCfg()
	res, err := FeatstoreFull(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes <= 0 || res.EpochTime <= 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.Encoding != "raw" {
		t.Errorf("default encoding %q, want raw", res.Encoding)
	}
	if res.HitRate <= 0 || res.HitRate > 1 {
		t.Errorf("hit rate %v out of range", res.HitRate)
	}
	if res.ResidentBytes > res.CacheBudgetBytes {
		t.Errorf("resident %d over budget %d", res.ResidentBytes, res.CacheBudgetBytes)
	}
	if res.FlatSlabBytes != res.Nodes*128*4 {
		t.Errorf("flat slab %d for %d nodes", res.FlatSlabBytes, res.Nodes)
	}
	// Nothing is capped: the edge source realizes ~2x the requested pairs
	// as directed CSR entries (probabilistic degree rounding moves it a
	// little), and the paged topology store serves all of them.
	if res.EdgesStored < res.EdgesRequested || res.EdgesStored > res.EdgesRequested*3 {
		t.Errorf("stored edges %d implausible for %d requested pairs", res.EdgesStored, res.EdgesRequested)
	}
	if res.TopoBytes != res.EdgesStored*8 {
		t.Errorf("topo bytes %d, want %d", res.TopoBytes, res.EdgesStored*8)
	}
	if res.TopoHitRate <= 0 || res.TopoHitRate > 1 {
		t.Errorf("topo hit rate %v out of range", res.TopoHitRate)
	}
	if res.TopoResidentBytes > res.TopoCacheBytes {
		t.Errorf("topo resident %d over budget %d", res.TopoResidentBytes, res.TopoCacheBytes)
	}
}

func TestInferenceScaleClampSurfaced(t *testing.T) {
	cfg := testCfg() // scale 2e-4: below the 1e-3 floor
	var sb strings.Builder
	cfg.W = &sb
	rows, err := Inference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if !r.ScaleClamped || r.Scale != 2e-4 || r.ScaleUsed != 1e-3 {
			t.Errorf("clamp not surfaced in result: %+v", r)
		}
	}
	if !strings.Contains(sb.String(), "below the 1e-3 floor") {
		t.Error("clamp note not printed")
	}
}
