package bench

import "testing"

// TestAblationANNShape pins the abl-ann acceptance shape at quick scale:
// a wide-enough beam reaches high recall while staying well under the
// brute-force scan in virtual time, and the serving row reports recall
// next to tail latency. (The full-scale >=10x / recall>=0.95 point is
// checked by the bench harness run; quick scale has a smaller table, so
// the scan is cheaper and the thresholds here are correspondingly looser.)
func TestAblationANNShape(t *testing.T) {
	res, err := AblationANN(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !res.ScaleClamped || res.ScaleUsed != 4e-3 {
		t.Fatalf("expected the 4e-3 quick scale floor, got used=%g clamped=%v", res.ScaleUsed, res.ScaleClamped)
	}
	if res.EmbedVirtual <= 0 || res.BuildVirtual <= 0 || res.BruteVirtual <= 0 {
		t.Fatalf("unmeasured phases: embed %g build %g brute %g",
			res.EmbedVirtual, res.BuildVirtual, res.BruteVirtual)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no sweep rows")
	}
	last := res.Rows[len(res.Rows)-1]
	if last.Recall < 0.9 {
		t.Fatalf("recall@%d at ef=%d = %.3f, want >= 0.9", res.TopK, last.EfSearch, last.Recall)
	}
	if last.Speedup < 1.5 {
		t.Fatalf("speedup at ef=%d = %.2fx, want >= 1.5x even at quick scale", last.EfSearch, last.Speedup)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Recall+1e-9 < res.Rows[i-1].Recall {
			t.Errorf("recall fell as the beam widened: ef=%d %.3f -> ef=%d %.3f",
				res.Rows[i-1].EfSearch, res.Rows[i-1].Recall,
				res.Rows[i].EfSearch, res.Rows[i].Recall)
		}
	}
	s := res.Serving
	if s.Served == 0 {
		t.Fatal("serving row served nothing")
	}
	if s.Recall <= 0.5 || s.Recall > 1 {
		t.Fatalf("serving recall@%d = %.3f", res.TopK, s.Recall)
	}
	if s.P99 <= 0 {
		t.Fatal("serving row has no p99")
	}
	if s.EfSearch == 0 {
		t.Fatal("serving row does not echo the chosen efSearch")
	}
}
