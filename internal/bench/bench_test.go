package bench

import (
	"math"
	"strings"
	"testing"
)

// testCfg is fast enough for CI while preserving every comparison shape.
func testCfg() Config {
	return Config{Quick: true, Scale: 2e-4, Epochs: 3, Seed: 1}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows, err := Table1(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	paper := []struct{ um, p2p float64 }{
		{20.8, 1.35}, {29.6, 1.37}, {32.5, 1.43}, {35.3, 1.51}, {35.8, 1.56},
	}
	if len(rows) != len(paper) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if math.Abs(r.UMLatUs-paper[i].um) > 5 {
			t.Errorf("UM at %g GB = %.1f us, paper %.1f", r.SizeGB, r.UMLatUs, paper[i].um)
		}
		if math.Abs(r.P2PLatUs-paper[i].p2p) > 0.15 {
			t.Errorf("P2P at %g GB = %.2f us, paper %.2f", r.SizeGB, r.P2PLatUs, paper[i].p2p)
		}
		if r.UMLatUs < 10*r.P2PLatUs {
			t.Errorf("UM should be >=10x P2P at %g GB", r.SizeGB)
		}
	}
}

func TestTable2SpecsMatchPaper(t *testing.T) {
	rows, err := Table2(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][2]int64{
		"ogbn-products":   {2_400_000, 61_900_000},
		"ogbn-papers100M": {111_100_000, 1_600_000_000},
		"Friendster":      {68_300_000, 2_600_000_000},
		"UK_domain":       {105_200_000, 3_300_000_000},
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		w, ok := want[r.Name]
		if !ok {
			t.Errorf("unexpected dataset %s", r.Name)
			continue
		}
		if r.SpecNodes != w[0] || r.SpecEdges != w[1] {
			t.Errorf("%s spec = %d/%d, paper %d/%d", r.Name, r.SpecNodes, r.SpecEdges, w[0], w[1])
		}
		if r.GenNodes == 0 || r.GenEdges == 0 {
			t.Errorf("%s generated nothing", r.Name)
		}
	}
}

func TestTable3AccuracyParity(t *testing.T) {
	rows, err := Table3(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 (2 datasets x 3 models)", len(rows))
	}
	for _, r := range rows {
		// Parity: the three frameworks land within a few points of each
		// other (they share the model math; sampling noise remains).
		var lo, hi float64 = 1, 0
		for _, v := range r.Valid {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if hi-lo > 0.10 {
			t.Errorf("%s/%s: framework accuracies diverge: %v", r.Dataset, r.Model, r.Valid)
		}
	}
}

func TestTable4MemoryDistribution(t *testing.T) {
	res, err := Table4(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The paper measures 3.1 GB structure and 6.7 GB features per GPU.
	// Hash partitioning is near-even, so per-GPU ~= total/8; allow the
	// synthetic degree distribution some slack.
	if res.FullStructPerGPU < 2 || res.FullStructPerGPU > 6 {
		t.Errorf("structure per GPU = %.1f GB, paper 3.1", res.FullStructPerGPU)
	}
	if res.FullFeatPerGPU < 5 || res.FullFeatPerGPU > 9 {
		t.Errorf("features per GPU = %.1f GB, paper 6.7", res.FullFeatPerGPU)
	}
	if math.Abs(res.TheoryStructTotal-25.6) > 0.1 {
		t.Errorf("theoretical structure = %.1f GB, paper ~24", res.TheoryStructTotal)
	}
	if math.Abs(res.TheoryFeatTotal-56.9) > 0.5 {
		t.Errorf("theoretical features = %.1f GB, paper ~53", res.TheoryFeatTotal)
	}
	if res.TrainPerGPU <= 0 || res.TrainPerGPU > 40 {
		t.Errorf("training estimate = %.1f GB, paper 20.4", res.TrainPerGPU)
	}
}

func TestTable5SpeedupShape(t *testing.T) {
	rows, err := Table5(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	bySpeedup := map[string]float64{}
	for _, r := range rows {
		// WholeGraph wins against both baselines, and PyG is the slowest,
		// on every dataset and model (Table V).
		if r.EpochTime[FwWholeGraph] >= r.EpochTime[FwDGL] {
			t.Errorf("%s/%s: WholeGraph (%g) not faster than DGL (%g)",
				r.Dataset, r.Model, r.EpochTime[FwWholeGraph], r.EpochTime[FwDGL])
		}
		if r.EpochTime[FwDGL] >= r.EpochTime[FwPyG] {
			t.Errorf("%s/%s: DGL (%g) not faster than PyG (%g)",
				r.Dataset, r.Model, r.EpochTime[FwDGL], r.EpochTime[FwPyG])
		}
		bySpeedup[r.Dataset+"/"+r.Model] = r.SpeedupVsDGL
	}
	// GAT gains less than GCN (more compute share, §IV-C2).
	for _, r := range rows {
		if r.Model != "gcn" {
			continue
		}
		gat := bySpeedup[r.Dataset+"/gat"]
		if gat >= r.SpeedupVsDGL {
			t.Errorf("%s: GAT speedup (%.2f) should be below GCN's (%.2f)",
				r.Dataset, gat, r.SpeedupVsDGL)
		}
	}
}

func TestFig7Parity(t *testing.T) {
	pts, err := Fig7(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != testCfg().Epochs {
		t.Fatalf("points = %d", len(pts))
	}
	last := pts[len(pts)-1]
	if math.Abs(last.DGLAcc-last.WGAcc) > 0.10 {
		t.Errorf("final accuracies diverge: DGL %.3f vs WG %.3f", last.DGLAcc, last.WGAcc)
	}
	// Both curves rise above their start.
	if last.DGLAcc <= pts[0].DGLAcc && last.WGAcc <= pts[0].WGAcc {
		t.Error("no learning visible in either curve")
	}
}

func TestFig8BandwidthCurve(t *testing.T) {
	pts, err := Fig8(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 8 {
		t.Fatalf("points = %d", len(pts))
	}
	// Rising then saturating; small segments proportional-ish.
	for i := 1; i < len(pts); i++ {
		if pts[i].AlgoBWGBs < pts[i-1].AlgoBWGBs*0.97 {
			t.Errorf("bandwidth fell at %dB: %.1f -> %.1f",
				pts[i].SegBytes, pts[i-1].AlgoBWGBs, pts[i].AlgoBWGBs)
		}
	}
	small := pts[0] // 4 B
	large := pts[len(pts)-1]
	if small.AlgoBWGBs > large.AlgoBWGBs/3 {
		t.Errorf("4B segment (%.1f) should be far below plateau (%.1f)", small.AlgoBWGBs, large.AlgoBWGBs)
	}
	// Plateau lands near the paper's ~230 GB/s BusBW (launch overhead at
	// the scaled volume costs some).
	if large.BusBWGBs < 150 || large.BusBWGBs > 235 {
		t.Errorf("plateau BusBW = %.1f GB/s, paper ~230", large.BusBWGBs)
	}
}

func TestFig9BreakdownShape(t *testing.T) {
	rows, err := Fig9(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		wg := r.Timing[FwWholeGraph]
		pyg := r.Timing[FwPyG]
		// WholeGraph: training dominates. PyG: sampling+gathering dominate.
		if wg.Sample+wg.Gather >= wg.Train {
			t.Errorf("%s/%s WholeGraph not train-dominated: %+v", r.Dataset, r.Model, wg)
		}
		// Prep dominance of the baselines needs a graph big enough that
		// per-iteration volumes beat fixed kernel overheads; assert it on
		// papers100M (products at test scale is a few hundred nodes).
		if strings.Contains(r.Dataset, "papers") && r.Model != "gat" &&
			pyg.Sample+pyg.Gather <= pyg.Train {
			t.Errorf("%s/%s PyG not prep-dominated: %+v", r.Dataset, r.Model, pyg)
		}
		// WholeGraph's prep phases are much cheaper than PyG's.
		if wg.Sample+wg.Gather >= (pyg.Sample+pyg.Gather)/2 {
			t.Errorf("%s/%s WholeGraph prep (%g) not well below PyG prep (%g)",
				r.Dataset, r.Model, wg.Sample+wg.Gather, pyg.Sample+pyg.Gather)
		}
	}
}

func TestFig10GatherSpeedup(t *testing.T) {
	rows, err := Fig10(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Paper: speedups above 2x on all datasets.
		if r.Speedup < 2 {
			t.Errorf("%s: gather speedup %.2f < 2", r.Dataset, r.Speedup)
		}
		// The shared gather's whole-op bandwidth is comparable to the NCCL
		// implementation's alltoallv step alone.
		if r.SharedBusBWGBs < r.AlltoAllvBusBWGBs {
			t.Errorf("%s: ours BusBW (%.1f) below alltoallv-only BusBW (%.1f)",
				r.Dataset, r.SharedBusBWGBs, r.AlltoAllvBusBWGBs)
		}
	}
}

func TestFig11LayerBackends(t *testing.T) {
	rows, err := Fig11(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SpeedupVsDGL <= 1 {
			t.Errorf("%s/%s: dgl-layers (%.2f) not slower than native", r.Dataset, r.Model, r.SpeedupVsDGL)
		}
		if r.SpeedupVsPyG <= r.SpeedupVsDGL {
			t.Errorf("%s/%s: pyg-layers (%.2f) should trail dgl-layers (%.2f)",
				r.Dataset, r.Model, r.SpeedupVsPyG, r.SpeedupVsDGL)
		}
		// Paper bounds: up to 1.31x and 2.43x; stay under generous caps.
		if r.SpeedupVsPyG > 3 {
			t.Errorf("%s/%s: pyg-layers ratio %.2f implausibly large", r.Dataset, r.Model, r.SpeedupVsPyG)
		}
	}
}

func TestFig12Utilization(t *testing.T) {
	series, err := Fig12(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	byFw := map[Framework]Fig12Series{}
	for _, s := range series {
		byFw[s.Framework] = s
	}
	if byFw[FwWholeGraph].Mean < 0.90 {
		t.Errorf("WholeGraph utilization %.2f, paper >= 0.95", byFw[FwWholeGraph].Mean)
	}
	if byFw[FwDGL].Mean > 0.70 {
		t.Errorf("DGL utilization %.2f unexpectedly high", byFw[FwDGL].Mean)
	}
	if byFw[FwPyG].Mean >= byFw[FwDGL].Mean {
		t.Errorf("PyG (%.2f) should idle more than DGL (%.2f)", byFw[FwPyG].Mean, byFw[FwDGL].Mean)
	}
}

func TestFig13Scaling(t *testing.T) {
	rows, err := Fig13(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if len(r.Speedup) != 4 {
			t.Fatalf("%s/%s: %d points", r.Dataset, r.Model, len(r.Speedup))
		}
		for i := 1; i < len(r.Speedup); i++ {
			if r.Speedup[i] <= r.Speedup[i-1] {
				t.Errorf("%s/%s: speedup not increasing: %v", r.Dataset, r.Model, r.Speedup)
			}
		}
		// Near-linear: at least 60% efficiency at 8 nodes on the scaled
		// graphs.
		if r.Speedup[3] < 4.5 {
			t.Errorf("%s/%s: 8-node speedup %.2f too sublinear", r.Dataset, r.Model, r.Speedup[3])
		}
	}
}

func TestSetupCost(t *testing.T) {
	res, err := Setup(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		// Paper: tens to one or two hundred milliseconds.
		if r.Seconds <= 0 || r.Seconds > 0.5 {
			t.Errorf("setup of %g GB = %g s, want < 0.5", r.SizeGB, r.Seconds)
		}
	}
	if res[len(res)-1].Seconds <= res[0].Seconds {
		t.Error("setup cost should grow with size")
	}
}

func TestReportWriting(t *testing.T) {
	var sb strings.Builder
	cfg := testCfg()
	cfg.W = &sb
	if _, err := Table1(cfg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "Peer Access") {
		t.Errorf("report missing headers:\n%s", out)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := sortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("sortedKeys = %v", got)
	}
}

func TestAblationStorage(t *testing.T) {
	rows, err := AblationStorage(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// P2P beats UM beats... pinned host on the gather path; epoch times
	// follow the same order.
	if !(rows[0].GatherTime < rows[1].GatherTime && rows[1].GatherTime < rows[2].GatherTime) {
		t.Errorf("gather times not ordered P2P < UM < pinned: %+v", rows)
	}
	if rows[0].EpochTime >= rows[2].EpochTime {
		t.Errorf("P2P epoch (%g) not faster than pinned-host (%g)", rows[0].EpochTime, rows[2].EpochTime)
	}
	// Table I says UM is an order of magnitude slower at the access level;
	// on bulk gathers a solid multiple must remain.
	if rows[1].GatherTime < 2*rows[0].GatherTime {
		t.Errorf("UM gather (%g) should be >=2x P2P (%g)", rows[1].GatherTime, rows[0].GatherTime)
	}
}

func TestAblationUnique(t *testing.T) {
	rows, err := AblationUnique(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.HashTime >= r.SortTime {
			t.Errorf("hash (%g) not cheaper than sort (%g) at %d neighbors",
				r.HashTime, r.SortTime, r.Neighbors)
		}
	}
}

func TestAblationDedup(t *testing.T) {
	rows, err := AblationDedup(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.UniqueRows >= r.SampledRows {
			t.Errorf("%s: dedup did not shrink the gather (%d vs %d)",
				r.Dataset, r.UniqueRows, r.SampledRows)
		}
		if r.DedupTime >= r.NoDedupTime {
			t.Errorf("%s: dedup gather (%g) not faster than raw (%g)",
				r.Dataset, r.DedupTime, r.NoDedupTime)
		}
	}
}

func TestInferenceExperiment(t *testing.T) {
	rows, err := Inference(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SampledTime <= 0 || r.FullGraphTime <= 0 {
			t.Fatalf("%s: missing timings %+v", r.Dataset, r)
		}
		// Full-graph inference avoids recomputing shared neighborhoods;
		// it must beat batch-by-batch sampled inference for embedding all
		// nodes.
		if r.Speedup <= 1 {
			t.Errorf("%s: full-graph inference (%g) not faster than sampled (%g)",
				r.Dataset, r.FullGraphTime, r.SampledTime)
		}
	}
}

func TestAblationCache(t *testing.T) {
	rows, err := AblationCache(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[0].Fraction != 0 {
		t.Fatalf("unexpected rows %+v", rows)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].HitRate < rows[i-1].HitRate {
			t.Errorf("hit rate not monotone in cache size: %+v", rows)
		}
		if rows[i].GatherTime > rows[0].GatherTime {
			t.Errorf("cache at %.0f%% made gathering slower: %g > %g",
				100*rows[i].Fraction, rows[i].GatherTime, rows[0].GatherTime)
		}
	}
	if rows[3].GatherTime >= rows[0].GatherTime {
		t.Error("a 50% cache should reduce gather time")
	}
}

func TestAblationHardware(t *testing.T) {
	rows, err := AblationHardware(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	dgx, pcie := rows[0], rows[1]
	if dgx.SpeedupVsDGL <= 1 || pcie.SpeedupVsDGL <= 1 {
		t.Errorf("WholeGraph should win on both fabrics: %+v", rows)
	}
	// The NVLink fabric is what buys the big factors.
	if dgx.SpeedupVsDGL <= pcie.SpeedupVsDGL {
		t.Errorf("DGX speedup (%.2f) should exceed PCIe-server speedup (%.2f)",
			dgx.SpeedupVsDGL, pcie.SpeedupVsDGL)
	}
	if dgx.WGEpoch >= pcie.WGEpoch {
		t.Errorf("WholeGraph on DGX (%g) should beat itself on PCIe (%g)", dgx.WGEpoch, pcie.WGEpoch)
	}
}

func TestAnalyticsExperiment(t *testing.T) {
	rows, err := Analytics(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PRIterations == 0 || r.CCIterations == 0 || r.Components == 0 {
			t.Errorf("%s: incomplete run %+v", r.Dataset, r)
		}
		if r.PRTime <= 0 || r.CCTime <= 0 {
			t.Errorf("%s: missing virtual time %+v", r.Dataset, r)
		}
	}
}

func TestAblationPartition(t *testing.T) {
	rows, err := AblationPartition(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]PartitionRow{}
	for _, r := range rows {
		byName[r.Strategy] = r
		if r.RemoteFrac <= 0 || r.RemoteFrac >= 1 {
			t.Errorf("%s: remote fraction %g implausible", r.Strategy, r.RemoteFrac)
		}
		if r.EdgeImbalance < 1 {
			t.Errorf("%s: imbalance %g below 1", r.Strategy, r.EdgeImbalance)
		}
	}
	// Community placement exploits homophily: less remote traffic than hash.
	if byName["community"].RemoteFrac >= byName["hash"].RemoteFrac {
		t.Errorf("community remote frac (%g) should beat hash (%g)",
			byName["community"].RemoteFrac, byName["hash"].RemoteFrac)
	}
}

func TestGraphClassExperiment(t *testing.T) {
	res, err := GraphClass(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.TestAccAfter <= res.TestAccBefore {
		t.Errorf("accuracy did not improve: %.3f -> %.3f", res.TestAccBefore, res.TestAccAfter)
	}
	if res.TestAccAfter < 0.6 {
		t.Errorf("final accuracy %.3f too low for separable motifs", res.TestAccAfter)
	}
	if res.VirtualTime <= 0 {
		t.Error("no virtual time recorded")
	}
}
