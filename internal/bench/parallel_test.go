package bench

import (
	"bytes"
	"testing"
)

// TestParallelCellsIdenticalOutput pins the -parallel contract: fanning
// experiment cells across goroutines must produce byte-identical reports
// (same virtual times, same accuracies, same row order) for the converted
// experiments. Table3 exercises the accuracy pipelines, Table5 the timing
// pipelines, Fig13 the multi-node machines.
func TestParallelCellsIdenticalOutput(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  func(Config) error
	}{
		{"table3", func(c Config) error { _, err := Table3(c); return err }},
		{"table5", func(c Config) error { _, err := Table5(c); return err }},
		{"fig13", func(c Config) error { _, err := Fig13(c); return err }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			report := func(parallel bool) string {
				var buf bytes.Buffer
				cfg := Config{Quick: true, Scale: 2e-4, Epochs: 2, Seed: 1, Parallel: parallel, W: &buf}
				if err := tc.run(cfg); err != nil {
					t.Fatal(err)
				}
				return buf.String()
			}
			serial := report(false)
			parallel := report(true)
			if serial != parallel {
				t.Errorf("reports differ\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
			}
			if serial == "" {
				t.Error("empty report")
			}
		})
	}
}

func TestRunCellsErrorAndOrder(t *testing.T) {
	var serialOrder []int
	cfg := Config{}.normalize()
	if err := cfg.runCells(4, func(i int) error {
		serialOrder = append(serialOrder, i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range serialOrder {
		if v != i {
			t.Fatalf("serial cell order %v", serialOrder)
		}
	}

	pcfg := cfg
	pcfg.Parallel = true
	wantErr := false
	err := pcfg.runCells(3, func(i int) error {
		if i == 1 {
			wantErr = true
			return errTest
		}
		return nil
	})
	if err != errTest || !wantErr {
		t.Fatalf("parallel error not propagated: %v", err)
	}
}

var errTest = &cellError{}

type cellError struct{}

func (*cellError) Error() string { return "cell failed" }
