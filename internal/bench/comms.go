package bench

import (
	"sync"

	"wholegraph/internal/dataset"
	"wholegraph/internal/sim"
	"wholegraph/internal/train"
)

// CommsRow reports one cell of the gradient-overlap ablation: the same
// training run with the blocking post-backward AllReduce and with bucketed
// copy-stream AllReduce overlapped into the backward pass.
type CommsRow struct {
	Hidden int
	Nodes  int
	// BlockEpoch / OverlapEpoch: virtual epoch time with the blocking
	// gradient sync and with train.Options.OverlapGrads. Model math is
	// bit-identical either way.
	BlockEpoch, OverlapEpoch float64
	Speedup                  float64
	// NVLinkMB / IBMB: per-link collective traffic of the overlap run
	// (sum over devices), from the DeviceStats link counters.
	NVLinkMB, IBMB float64
	// CommSeconds: total time device streams spent inside collectives
	// during the overlap run (sum over devices).
	CommSeconds float64
}

// AblationOverlapGrads evaluates bucketed gradient-communication overlap
// (train.Options.OverlapGrads): per-layer gradient buckets AllReduce on the
// copy stream while backward still runs, against the blocking sync after
// backward. The sweep crosses model width — which moves the AllReduce from
// latency-bound (where extra per-bucket ring rounds can cost more than the
// overlap hides) to bandwidth-bound — with the node count, which adds the
// InfiniBand stage to every bucket.
func AblationOverlapGrads(cfg Config) ([]CommsRow, error) {
	cfg = cfg.normalize()
	cfg.printf("Ablation: bucketed gradient AllReduce overlap (GraphSAGE, ogbn-products)\n")
	cfg.printf("%7s %6s %12s %12s %9s %10s %8s %10s\n",
		"hidden", "nodes", "blocking", "overlapped", "speedup", "nvlink", "ib", "comm")

	type cell struct {
		hidden, nodes int
	}
	var cells []cell
	hiddens := []int{64, 256}
	if cfg.Quick {
		hiddens = []int{32, 128}
	}
	for _, h := range hiddens {
		for _, nodes := range []int{1, 2} {
			cells = append(cells, cell{h, nodes})
		}
	}
	rows := make([]CommsRow, len(cells))
	err := cfg.runCells(len(cells), func(i int) error {
		c := cells[i]
		ds, err := generate(dataset.OgbnProducts.Scaled(cfg.Scale))
		if err != nil {
			return err
		}
		opts := cfg.trainOpts("graphsage")
		opts.Hidden = c.hidden
		// Overlap only pays when per-layer backward compute exceeds the
		// per-bucket ring latency, so each worker trains on its whole shard
		// per iteration (batch clamps to the shard size) — tiny batches put
		// every cell in the latency-bound regime where bucketing loses.
		batch := len(ds.Train) / 8
		if batch < 8 {
			batch = 8
		}
		if batch > 64 {
			batch = 64
		}
		opts.Batch = batch
		opts.MaxItersPerEpoch = 2

		epoch := func(overlap bool) (train.EpochStats, *sim.Machine, error) {
			opts.OverlapGrads = overlap
			m, tr, err := newTrainer(FwWholeGraph, c.nodes, ds, opts)
			if err != nil {
				return train.EpochStats{}, nil, err
			}
			return tr.RunEpoch(), m, nil
		}
		block, _, err := epoch(false)
		if err != nil {
			return err
		}
		over, m, err := epoch(true)
		if err != nil {
			return err
		}
		var nvlink, ib, comm float64
		for _, d := range m.Devs {
			nvlink += d.Stats.NVLinkTxBytes
			ib += d.Stats.IBTxBytes
			comm += d.Stats.CommSeconds
		}
		rows[i] = CommsRow{
			Hidden: c.hidden, Nodes: c.nodes,
			BlockEpoch: block.EpochTime, OverlapEpoch: over.EpochTime,
			Speedup:  block.EpochTime / over.EpochTime,
			NVLinkMB: nvlink / 1e6, IBMB: ib / 1e6, CommSeconds: comm,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		cfg.printf("%7d %6d %12s %12s %8.2fx %8.2fMB %6.2fMB %10s\n",
			r.Hidden, r.Nodes, fmtSeconds(r.BlockEpoch), fmtSeconds(r.OverlapEpoch),
			r.Speedup, r.NVLinkMB, r.IBMB, fmtSeconds(r.CommSeconds))
	}
	return rows, nil
}

// commAgg collects every machine the harness builds so the CLI can report
// aggregate per-link collective traffic in its -json output. Locked:
// experiment cells build trainers concurrently under -parallel.
var commAgg struct {
	sync.Mutex
	machines []*sim.Machine
}

func registerComm(m *sim.Machine) {
	commAgg.Lock()
	commAgg.machines = append(commAgg.machines, m)
	commAgg.Unlock()
}

// CommCounters sums the collective-engine link counters — NVLink and
// InfiniBand egress bytes plus stream-seconds spent in collectives — across
// every machine built since process start.
func CommCounters() (nvlinkTxBytes, ibTxBytes, commSeconds float64) {
	commAgg.Lock()
	defer commAgg.Unlock()
	for _, m := range commAgg.machines {
		for _, d := range m.Devs {
			nvlinkTxBytes += d.Stats.NVLinkTxBytes
			ibTxBytes += d.Stats.IBTxBytes
			commSeconds += d.Stats.CommSeconds
		}
	}
	return
}
