package bench

import (
	"wholegraph/internal/analytics"
	"wholegraph/internal/autograd"
	"wholegraph/internal/core"
	"wholegraph/internal/dataset"
	"wholegraph/internal/gnn"
	"wholegraph/internal/graphclass"
	"wholegraph/internal/infer"
	"wholegraph/internal/sim"
	"wholegraph/internal/spops"
)

// InferenceResult compares the two ways to embed every node of a graph.
type InferenceResult struct {
	Dataset string
	Nodes   int64
	// Scale is the scale the caller asked for; ScaleUsed is the scale the
	// experiment actually ran at. Requests below the 1e-3 floor (the graph
	// must be many batches wide for the comparison to mean anything) are
	// clamped up, and ScaleClamped records that the substitution happened
	// instead of it being silent.
	Scale        float64
	ScaleUsed    float64
	ScaleClamped bool
	// SampledTime embeds all nodes through the mini-batch pipeline
	// (re-sampling and re-computing shared neighborhoods per batch).
	SampledTime float64
	// FullGraphTime embeds all nodes layer-wise over shared memory.
	FullGraphTime float64
	// PipelinedTime is the layer-wise run with chunked input gathers on the
	// copy stream (infer.Engine.WithChunks): gather c+1 overlaps the
	// forward of chunk c. Outputs are bit-identical to FullGraphTime's run.
	PipelinedTime float64
	Speedup       float64
}

// Inference measures offline-inference throughput: the paper points out
// WholeGraph serves inference too (§I); layer-wise full-graph propagation
// over the shared store computes every embedding once, while the sampled
// pipeline recomputes overlapping neighborhoods batch after batch.
func Inference(cfg Config) ([]InferenceResult, error) {
	cfg = cfg.normalize()
	cfg.printf("Inference: sampled mini-batch vs full-graph layer-wise (GraphSAGE)\n")
	cfg.printf("%-22s %10s %14s %14s %14s %9s\n",
		"dataset", "nodes", "sampled", "full-graph", "pipelined", "speedup")
	// Embedding the whole graph needs the graph to be many batches wide
	// for the comparison to be meaningful; enforce a scale floor — and say
	// so, rather than silently running a different experiment than asked.
	scale := cfg.Scale
	clamped := false
	if scale < 1e-3 {
		scale = 1e-3
		clamped = true
		cfg.printf("note: requested scale %g is below the 1e-3 floor for this experiment; running at 1e-3\n", cfg.Scale)
	}
	specs := []dataset.Spec{
		dataset.OgbnProducts.Scaled(scale),
		dataset.OgbnPapers100M.Scaled(scale),
	}
	if cfg.Quick {
		specs = specs[:1]
	}
	var out []InferenceResult
	for _, spec := range specs {
		ds, err := generate(spec)
		if err != nil {
			return nil, err
		}
		opts := cfg.trainOpts("graphsage")
		mcfg := gnn.Config{
			InDim: ds.Spec.FeatDim, Hidden: opts.Hidden, Classes: ds.Spec.NumClasses,
			Layers: len(opts.Fanouts), Heads: opts.Heads,
			Backend: spops.BackendNative, Seed: cfg.Seed,
		}
		model := gnn.NewSAGE(mcfg)

		// Sampled: embed every node in batches through the loader,
		// charging one device (as an 8-GPU run would per shard; the
		// comparison is per-device work either way).
		m1 := sim.NewMachine(sim.DGXA100(1))
		store1, err := core.NewStore(m1, 0, ds)
		if err != nil {
			return nil, err
		}
		m1.Reset()
		ld := core.NewLoader(store1, m1.Devs[0], opts.Fanouts, cfg.Seed)
		// Measure a sample of batches and extrapolate: embedding all nodes
		// batch-by-batch is O(N/B) identical batches.
		nodesPerShard := ds.Spec.Nodes / int64(len(m1.Devs))
		batches := int((nodesPerShard + int64(opts.Batch) - 1) / int64(opts.Batch))
		measure := batches
		if measure > 4 {
			measure = 4
		}
		ids := make([]int64, opts.Batch)
		for b := 0; b < measure; b++ {
			for i := range ids {
				ids[i] = (int64(b*opts.Batch+i)*2654435761 + 7) % ds.Spec.Nodes
			}
			ids = dedupIDs(ids, ds.Spec.Nodes)
			batch, _ := ld.BuildBatch(ids)
			tp := autograd.NewTape()
			model.Forward(m1.Devs[0], tp, batch, false)
		}
		sampled := m1.Devs[0].Now() * float64(batches) / float64(measure)

		// Full-graph: every rank computes its shard layer-wise; per-device
		// time is the machine span.
		m2 := sim.NewMachine(sim.DGXA100(1))
		store2, err := core.NewStore(m2, 0, ds)
		if err != nil {
			return nil, err
		}
		eng, err := infer.NewEngine(store2, model)
		if err != nil {
			return nil, err
		}
		m2.Reset() // table setup is one-time, like the training store's
		if _, err := eng.Run(); err != nil {
			return nil, err
		}
		full := m2.MaxTime()

		// Pipelined layer-wise: same computation, input gathers chunked
		// onto the copy stream so they overlap neighbor aggregation.
		m3 := sim.NewMachine(sim.DGXA100(1))
		store3, err := core.NewStore(m3, 0, ds)
		if err != nil {
			return nil, err
		}
		engP, err := infer.NewEngine(store3, model)
		if err != nil {
			return nil, err
		}
		m3.Reset()
		if _, err := engP.WithChunks(4).Run(); err != nil {
			return nil, err
		}
		pipelined := m3.MaxTime()

		r := InferenceResult{
			Dataset: spec.Name, Nodes: ds.Spec.Nodes,
			Scale: cfg.Scale, ScaleUsed: scale, ScaleClamped: clamped,
			SampledTime: sampled, FullGraphTime: full, PipelinedTime: pipelined,
			Speedup: sampled / full,
		}
		out = append(out, r)
		cfg.printf("%-22s %10d %14s %14s %14s %8.2fx\n",
			r.Dataset, r.Nodes, fmtSeconds(r.SampledTime), fmtSeconds(r.FullGraphTime),
			fmtSeconds(r.PipelinedTime), r.Speedup)
	}
	return out, nil
}

// dedupIDs replaces duplicate IDs with fresh distinct values.
func dedupIDs(ids []int64, n int64) []int64 {
	seen := make(map[int64]bool, len(ids))
	next := int64(0)
	for i, v := range ids {
		for seen[v] {
			v = (v + 1 + next) % n
			next++
		}
		seen[v] = true
		ids[i] = v
	}
	return ids
}

// AnalyticsRow reports the graph-analytics runs on one dataset.
type AnalyticsRow struct {
	Dataset      string
	PRIterations int
	PRTime       float64
	CCIterations int
	CCTime       float64
	Components   int
}

// Analytics exercises the paper's closing claim that the distributed
// shared-memory store also serves classic sparse graph algorithms: PageRank
// and connected components run over the same partitioned storage the GNN
// pipeline uses, each rank pulling neighbor state through peer access.
func Analytics(cfg Config) ([]AnalyticsRow, error) {
	cfg = cfg.normalize()
	cfg.printf("Graph analytics over the shared store (PageRank d=0.85, label-prop CC)\n")
	cfg.printf("%-22s %8s %12s %8s %12s %12s\n",
		"dataset", "PR iters", "PR time", "CC iters", "CC time", "components")
	specs := cfg.datasets()
	if cfg.Quick {
		specs = specs[:2]
	}
	var rows []AnalyticsRow
	for _, spec := range specs {
		ds, err := generate(spec)
		if err != nil {
			return nil, err
		}
		m := sim.NewMachine(sim.DGXA100(1))
		store, err := core.NewStore(m, 0, ds)
		if err != nil {
			return nil, err
		}
		m.Reset()
		pr, err := analytics.PageRank(store.PG, 0.85, 1e-7, 100)
		if err != nil {
			return nil, err
		}
		cc, err := analytics.ConnectedComponents(store.PG, 200)
		if err != nil {
			return nil, err
		}
		row := AnalyticsRow{
			Dataset:      spec.Name,
			PRIterations: pr.Iterations, PRTime: pr.Time,
			CCIterations: cc.Iterations, CCTime: cc.Time,
			Components: cc.Components,
		}
		rows = append(rows, row)
		cfg.printf("%-22s %8d %12s %8d %12s %12d\n",
			row.Dataset, row.PRIterations, fmtSeconds(row.PRTime),
			row.CCIterations, fmtSeconds(row.CCTime), row.Components)
	}
	return rows, nil
}

// GraphClassResult reports the graph-classification run.
type GraphClassResult struct {
	Graphs        int
	TestAccBefore float64
	TestAccAfter  float64
	// VirtualTime is the device time of the whole training run.
	VirtualTime float64
}

// GraphClass exercises the third GNN task the paper names (§I): classify
// whole small graphs. A GIN trains on disjoint-union batches whose features
// are gathered from shared memory (contiguous per graph — the cheap end of
// Figure 8); topology motifs are the signal, so high accuracy demonstrates
// real structural learning.
func GraphClass(cfg Config) (*GraphClassResult, error) {
	cfg = cfg.normalize()
	spec := graphclass.Spec{
		NumGraphs: 480, MinNodes: 6, MaxNodes: 14,
		FeatDim: 8, NumClasses: 4, TrainFrac: 0.8, Seed: cfg.Seed,
	}
	iters := 160
	if cfg.Quick {
		spec.NumGraphs = 120
		iters = 100
	}
	ds, err := graphclass.Generate(spec)
	if err != nil {
		return nil, err
	}
	m := sim.NewMachine(sim.DGXA100(1))
	store, err := graphclass.NewStore(m, 0, ds)
	if err != nil {
		return nil, err
	}
	m.Reset()
	tr, err := graphclass.New(store, m.Devs[0], graphclass.Options{
		Batch: 32, Layers: 3, Hidden: 24, LR: 0.01, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	res := &GraphClassResult{Graphs: spec.NumGraphs, TestAccBefore: tr.Evaluate(ds.Test)}
	cfg.printf("Graph classification: %d motif graphs, %d classes, GIN encoder\n",
		spec.NumGraphs, spec.NumClasses)
	cfg.printf("%6s %10s %10s\n", "iter", "loss", "test acc")
	cfg.printf("%6d %10s %9.1f%%\n", 0, "-", 100*res.TestAccBefore)
	for it := 1; it <= iters; it++ {
		loss, _ := tr.TrainStep()
		if it%(iters/4) == 0 {
			cfg.printf("%6d %10.4f %9.1f%%\n", it, loss, 100*tr.Evaluate(ds.Test))
		}
	}
	res.TestAccAfter = tr.Evaluate(ds.Test)
	res.VirtualTime = m.MaxTime()
	cfg.printf("total virtual time: %s\n", fmtSeconds(res.VirtualTime))
	return res, nil
}
