package bench

import (
	"wholegraph/internal/ann"
	"wholegraph/internal/core"
	"wholegraph/internal/dataset"
	"wholegraph/internal/gnn"
	"wholegraph/internal/infer"
	"wholegraph/internal/serve"
	"wholegraph/internal/sim"
	"wholegraph/internal/spops"
)

// ANNRow is one efSearch setting of the recall-vs-latency sweep: recall@K
// against the exact oracle and the mean single-query virtual latency,
// compared to the brute-force scan of the same embedding table.
type ANNRow struct {
	EfSearch int     `json:"ef_search"`
	Recall   float64 `json:"recall_at_k"`
	// QueryVirtual is the mean virtual seconds of one HNSW query (one
	// charged kernel per query, distances split local/remote by shard).
	QueryVirtual float64 `json:"query_seconds"`
	// Speedup is brute-force over HNSW single-query virtual latency.
	Speedup float64 `json:"speedup_vs_brute"`
}

// ANNServing is the end-to-end retrieval serving row: the sweep's chosen
// efSearch behind the dynamic batcher, recall and tail latency together.
type ANNServing struct {
	EfSearch      int     `json:"ef_search"`
	Rate          float64 `json:"rate_rps"`
	Offered       int     `json:"offered"`
	Served        int     `json:"served"`
	Shed          int     `json:"shed"`
	TimedOut      int     `json:"timed_out"`
	MeanBatch     float64 `json:"mean_batch"`
	Throughput    float64 `json:"throughput_rps"`
	Recall        float64 `json:"recall_at_k"`
	P50           float64 `json:"p50_latency"`
	P99           float64 `json:"p99_latency"`
	SLOAttainment float64 `json:"slo_attainment"`
}

// ANNResult is the abl-ann experiment's full output.
type ANNResult struct {
	Dataset string `json:"dataset"`
	Nodes   int64  `json:"nodes"`
	Dim     int    `json:"dim"`
	// Scale is what the caller asked for; ScaleUsed what actually ran.
	// Below the floor the sweep is meaningless (a brute scan of a few
	// thousand rows is one cheap kernel, so HNSW cannot show its
	// asymptotic win) and the request is clamped up, recorded rather
	// than silent.
	Scale        float64 `json:"scale"`
	ScaleUsed    float64 `json:"scale_used"`
	ScaleClamped bool    `json:"scale_clamped"`
	TopK         int     `json:"topk"`
	M            int     `json:"m"`
	EfConstruct  int     `json:"ef_construction"`
	// EmbedVirtual: full-graph layer-wise inference producing the
	// embeddings. BuildVirtual: parallel HNSW construction over them.
	// BruteVirtual: mean single-query exact scan.
	EmbedVirtual float64    `json:"embed_seconds"`
	BuildVirtual float64    `json:"build_seconds"`
	BruteVirtual float64    `json:"brute_query_seconds"`
	Rows         []ANNRow   `json:"rows"`
	Serving      ANNServing `json:"serving"`
}

// AblationANN measures the ANN retrieval subsystem end to end: GraphSAGE
// embeds every node of ogbn-products layer-wise, an HNSW index is built
// over the embedding table (sharded across the node's 8 GPUs), and an
// efSearch sweep traces the recall-vs-latency frontier against the exact
// brute-force scan — both sides priced per single query through the same
// virtual-time device model, so the speedup column is launch overhead,
// HBM streaming, and NVLink gather traffic, not host wall-clock. A final
// row serves the chosen operating point through the dynamic batcher and
// reports recall@K next to p99.
//
// The model is seeded and untrained: recall is measured against the exact
// oracle over the same embedding table, so embedding quality is
// orthogonal to what this experiment isolates (index structure vs scan).
func AblationANN(cfg Config) (*ANNResult, error) {
	cfg = cfg.normalize()
	// The brute scan must be many times a kernel launch for the
	// comparison to mean anything: floor the scale so the embedding
	// table is ~100k rows (~10k quick) — and say so, rather than
	// silently running a different experiment than asked.
	floor := 0.04
	if cfg.Quick {
		floor = 4e-3
	}
	scale, clamped := cfg.Scale, false
	if scale < floor {
		scale = floor
		clamped = true
		cfg.printf("note: requested scale %g is below the %g floor for this experiment; running at %g\n",
			cfg.Scale, floor, floor)
	}
	spec := dataset.OgbnProducts.Scaled(scale)
	ds, err := generate(spec)
	if err != nil {
		return nil, err
	}

	hidden := 64
	queries := 512
	efs := []int{8, 16, 32, 64, 128}
	requests := 4000
	if cfg.Quick {
		hidden = 32
		queries = 128
		efs = []int{16, 64}
		requests = 800
	}
	topK := 10

	// Embed every node: full-graph layer-wise inference on the shared
	// store, final-layer dim = the class count.
	m := sim.NewMachine(sim.DGXA100(1))
	store, err := core.NewStore(m, 0, ds)
	if err != nil {
		return nil, err
	}
	model := gnn.NewSAGE(gnn.Config{
		InDim: ds.Spec.FeatDim, Hidden: hidden, Classes: ds.Spec.NumClasses,
		Layers: 2, Backend: spops.BackendNative, Seed: cfg.Seed,
	})
	m.Reset() // measure inference, not store setup
	emb, err := infer.Embeddings(store, model)
	if err != nil {
		return nil, err
	}
	res := &ANNResult{
		Dataset: spec.Name, Nodes: spec.Nodes, Dim: emb.C,
		Scale: cfg.Scale, ScaleUsed: scale, ScaleClamped: clamped,
		TopK: topK, EmbedVirtual: m.MaxTime(),
	}

	// Build the index; construction is charged (parallel frozen-round
	// inserts), so MaxTime after a reset is the build's virtual cost.
	m.Reset()
	opts := ann.Options{M: 12, EfConstruction: 100, Seed: cfg.Seed}
	ix, err := ann.Build(store.Comm, emb, opts)
	if err != nil {
		return nil, err
	}
	res.M, res.EfConstruct = ix.Opts.M, ix.Opts.EfConstruction
	res.BuildVirtual = m.MaxTime()

	cfg.printf("ANN retrieval: HNSW vs brute-force scan (%s, %d nodes, dim %d, M=%d efC=%d, %d queries)\n",
		spec.Name, spec.Nodes, emb.C, ix.Opts.M, ix.Opts.EfConstruction, queries)
	cfg.printf("embed %s virtual, index build %s virtual\n",
		fmtSeconds(res.EmbedVirtual), fmtSeconds(res.BuildVirtual))

	// Query set: random nodes; the query vector is the node's own
	// embedding, so the node itself tops both result lists — the standard
	// self-included recall@K.
	rng := cfg.seededRand(909)
	nodes := make([]int64, queries)
	for i := range nodes {
		nodes[i] = rng.Int63n(spec.Nodes)
	}
	devs := store.Comm.Devs

	// Brute-force baseline: one charged full-scan kernel per query,
	// round-robined over the devices; its results are the exact oracle.
	m.Reset()
	exact := make([][]ann.Result, queries)
	var bruteTotal float64
	for i, node := range nodes {
		dev := devs[i%len(devs)]
		before := dev.Now()
		exact[i] = ix.BruteSearch(dev, ix.Vector(node), topK)
		bruteTotal += dev.Now() - before
	}
	res.BruteVirtual = bruteTotal / float64(queries)
	cfg.printf("brute-force scan: %s/query\n", fmtSeconds(res.BruteVirtual))

	cfg.printf("%-9s %10s %12s %9s\n", "efSearch", "recall@10", "query", "speedup")
	for _, ef := range efs {
		m.Reset()
		var recall, total float64
		for i, node := range nodes {
			dev := devs[i%len(devs)]
			before := dev.Now()
			got := ix.Search(dev, ix.Vector(node), topK, ef)
			total += dev.Now() - before
			recall += ann.Recall(got, exact[i])
		}
		row := ANNRow{
			EfSearch:     ef,
			Recall:       recall / float64(queries),
			QueryVirtual: total / float64(queries),
		}
		row.Speedup = res.BruteVirtual / row.QueryVirtual
		res.Rows = append(res.Rows, row)
		cfg.printf("%-9d %10.3f %12s %8.1fx\n",
			row.EfSearch, row.Recall, fmtSeconds(row.QueryVirtual), row.Speedup)
	}

	// Operating point for serving: the narrowest beam reaching the recall
	// target, else the widest measured.
	target := 0.95
	if cfg.Quick {
		target = 0.90
	}
	bestEf := res.Rows[len(res.Rows)-1].EfSearch
	for _, row := range res.Rows {
		if row.Recall >= target {
			bestEf = row.EfSearch
			break
		}
	}

	// End to end: the chosen beam behind the dynamic batcher under a
	// Zipf-skewed open-loop stream, recall and tail latency together.
	sopts := serve.Options{
		Rate:     300000,
		Requests: requests,
		MaxBatch: 16,
		MaxDelay: 0.2e-3,
		SLO:      1e-3,
		Skew:     1.3,
		TopK:     topK,
		EfSearch: bestEf,
		Seed:     cfg.Seed,
	}
	srv, err := serve.NewRetrieval(ix, sopts)
	if err != nil {
		return nil, err
	}
	m.Reset() // measure serving, not the sweep above
	sres, err := srv.Run()
	if err != nil {
		return nil, err
	}
	res.Serving = ANNServing{
		EfSearch: sres.EfSearch, Rate: sopts.Rate,
		Offered: sres.Offered, Served: sres.Served, Shed: sres.Shed, TimedOut: sres.TimedOut,
		MeanBatch: sres.MeanBatch, Throughput: sres.Throughput, Recall: sres.Recall,
		P50: sres.P50, P99: sres.P99, SLOAttainment: sres.SLOAttainment,
	}
	cfg.printf("serving (ef=%d, %.0f rps offered): served %d/%d, batch %.2f, thr %.0f rps, recall@%d %.3f, p50 %s, p99 %s, SLO %.1f%%\n",
		res.Serving.EfSearch, res.Serving.Rate, res.Serving.Served, res.Serving.Offered,
		res.Serving.MeanBatch, res.Serving.Throughput, topK, res.Serving.Recall,
		fmtSeconds(res.Serving.P50), fmtSeconds(res.Serving.P99), 100*res.Serving.SLOAttainment)
	return res, nil
}
