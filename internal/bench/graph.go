package bench

import (
	"math"
	"runtime"
	"time"

	"wholegraph/internal/dataset"
	"wholegraph/internal/train"
)

// GraphRow reports one cell of the step capture/replay ablation: the same
// training run executed eagerly and with train.Options.CaptureGraph, after
// the capture warm-up, so the graph side is in its replay steady state.
type GraphRow struct {
	Arch  string
	Nodes int
	// EagerEpoch / GraphEpoch: virtual epoch time of a steady-state epoch
	// (graph side: all-replay). Model math is bit-identical either way.
	EagerEpoch, GraphEpoch float64
	Speedup                float64
	// EagerHostNsIter / GraphHostNsIter: measured wall-clock per training
	// iteration, min over interleaved windows. The model math runs on the
	// host either way, so the dispatch saving is a few percent of this
	// number and can drown in machine noise; BenchmarkGraphEpoch{Eager,
	// Replay} in the root package pins the same delta over hundreds of
	// epochs.
	EagerHostNsIter, GraphHostNsIter float64
	// EagerAllocsIter / GraphAllocsIter: measured heap allocations per
	// training iteration over the steady-state epochs. Unlike wall clock
	// this is deterministic: replay skips the tape rebuild, so its
	// allocations drop to buffer rebinding plus kernel-dispatch residue.
	EagerAllocsIter, GraphAllocsIter float64
	// Captures / Replays / Invalidations from the graph run's trainer.
	Captures, Replays, Invalidations int64
	// LossMatch: every epoch's loss was bit-identical between the two runs.
	LossMatch bool
}

// AblationGraph evaluates step capture/replay (train.Options.CaptureGraph):
// the first iteration per loader slot records the step DAG, later
// iterations replay it with one graph launch instead of a kernel launch per
// kernel and with no host-side tape rebuild. Reported per cell: the virtual
// epoch-time win, the measured host ns and allocations per iteration, and a
// bit-identity check of the loss trajectory.
func AblationGraph(cfg Config) ([]GraphRow, error) {
	cfg = cfg.normalize()
	// Host-side counters (wall clock, runtime.MemStats) are process-global:
	// concurrent cells would bleed into each other's measurements.
	cfg.Parallel = false
	cfg.printf("Ablation: step capture/replay vs eager dispatch (ogbn-products)\n")
	cfg.printf("%10s %6s %12s %12s %9s %11s %11s %11s %11s %9s %6s\n",
		"arch", "nodes", "eager", "graph", "speedup",
		"host/iter", "ghost/iter", "allocs/it", "gallocs/it", "cap/rep", "loss")

	type cell struct {
		arch  string
		nodes int
	}
	var cells []cell
	archs := []string{"gcn", "graphsage", "gat"}
	if cfg.Quick {
		archs = []string{"graphsage", "gat"}
	}
	for _, arch := range archs {
		for _, nodes := range []int{1, 2} {
			cells = append(cells, cell{arch, nodes})
		}
	}

	// Host dispatch is a small slice of each iteration's wall clock (the
	// model math runs either way), so ns/iter takes the min over several
	// repetitions — the usual noise-robust estimator — instead of one mean.
	const warmEpochs, measureEpochs, measureReps = 3, 1, 12
	rows := make([]GraphRow, len(cells))
	err := cfg.runCells(len(cells), func(i int) error {
		c := cells[i]
		ds, err := generate(dataset.OgbnProducts.Scaled(cfg.Scale))
		if err != nil {
			return err
		}
		opts := cfg.trainOpts(c.arch)

		type outcome struct {
			losses  []float64
			last    train.EpochStats
			nsIter  float64
			mallocs uint64
			iters   int
			tr      *train.Trainer
		}
		newRun := func(capture bool) (*outcome, error) {
			opts.CaptureGraph = capture
			_, tr, err := newTrainer(FwWholeGraph, c.nodes, ds, opts)
			if err != nil {
				return nil, err
			}
			o := &outcome{tr: tr, nsIter: math.MaxFloat64}
			for e := 0; e < warmEpochs; e++ {
				o.losses = append(o.losses, tr.RunEpoch().Loss)
			}
			return o, nil
		}
		measure := func(o *outcome) {
			runtime.GC() // don't bill this window for another window's garbage
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			t0 := time.Now()
			for e := 0; e < measureEpochs; e++ {
				o.last = o.tr.RunEpoch()
				o.losses = append(o.losses, o.last.Loss)
			}
			wall := time.Since(t0)
			runtime.ReadMemStats(&ms1)
			iters := measureEpochs * o.tr.ItersPerEpoch()
			o.iters += iters
			o.mallocs += ms1.Mallocs - ms0.Mallocs
			if ns := float64(wall.Nanoseconds()) / float64(iters); ns < o.nsIter {
				o.nsIter = ns
			}
		}

		eager, err := newRun(false)
		if err != nil {
			return err
		}
		graph, err := newRun(true)
		if err != nil {
			return err
		}
		// Interleave eager/graph windows so host-load bursts hit both sides
		// rather than whichever run happened to execute second.
		for rep := 0; rep < measureReps; rep++ {
			measure(eager)
			measure(graph)
		}
		match := len(eager.losses) == len(graph.losses)
		for e := range eager.losses {
			if !match || eager.losses[e] != graph.losses[e] {
				match = false
				break
			}
		}
		gc := graph.tr.GraphStats()
		rows[i] = GraphRow{
			Arch: c.arch, Nodes: c.nodes,
			EagerEpoch: eager.last.EpochTime, GraphEpoch: graph.last.EpochTime,
			Speedup:         eager.last.EpochTime / graph.last.EpochTime,
			EagerHostNsIter: eager.nsIter, GraphHostNsIter: graph.nsIter,
			EagerAllocsIter: float64(eager.mallocs) / float64(eager.iters),
			GraphAllocsIter: float64(graph.mallocs) / float64(graph.iters),
			Captures:        gc.Captures, Replays: gc.Replays, Invalidations: gc.Invalidations,
			LossMatch: match,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		loss := "match"
		if !r.LossMatch {
			loss = "DRIFT"
		}
		cfg.printf("%10s %6d %12s %12s %8.2fx %9.0fns %9.0fns %11.1f %11.1f %4d/%-4d %6s\n",
			r.Arch, r.Nodes, fmtSeconds(r.EagerEpoch), fmtSeconds(r.GraphEpoch), r.Speedup,
			r.EagerHostNsIter, r.GraphHostNsIter, r.EagerAllocsIter, r.GraphAllocsIter,
			r.Captures, r.Replays, loss)
	}
	return rows, nil
}
