package bench

import (
	"wholegraph/internal/baseline"
	fcache "wholegraph/internal/cache"
	"wholegraph/internal/core"
	"wholegraph/internal/dataset"
	"wholegraph/internal/graph"
	"wholegraph/internal/sampling"
	"wholegraph/internal/sim"
	"wholegraph/internal/train"
	"wholegraph/internal/unique"
	"wholegraph/internal/wholemem"
)

// Ablations of the design choices DESIGN.md calls out. Each isolates one
// decision the paper makes and measures the alternative it rejects.

// StorageRow reports one feature-storage backing in the storage ablation.
type StorageRow struct {
	Kind       wholemem.Kind
	GatherTime float64 // per-batch feature gather, virtual seconds
	EpochTime  float64
}

// AblationStorage evaluates the §II-B design choice: back the node-feature
// table with GPUDirect peer access (WholeGraph), Unified Memory, or pinned
// host memory, and train identically on each. Peer access must win by the
// margins Table I implies.
func AblationStorage(cfg Config) ([]StorageRow, error) {
	cfg = cfg.normalize()
	ds, err := generate(dataset.OgbnPapers100M.Scaled(cfg.Scale))
	if err != nil {
		return nil, err
	}
	opts := cfg.trainOpts("graphsage")
	cfg.printf("Ablation: feature storage backing (GraphSAGE, ogbn-papers100M)\n")
	cfg.printf("%-14s %14s %14s\n", "backing", "gather/batch", "epoch")
	var rows []StorageRow
	for _, kind := range []wholemem.Kind{wholemem.DeviceP2P, wholemem.DeviceUM, wholemem.PinnedHost} {
		m := sim.NewMachine(sim.DGXA100(1))
		store, err := core.NewStoreWithFeatureKind(m, 0, ds, kind)
		if err != nil {
			return nil, err
		}
		m.Reset()
		// Per-batch gather cost on a representative batch.
		ld := core.NewLoader(store, m.Devs[0], opts.Fanouts, cfg.Seed)
		n := opts.Batch
		if n > len(ds.Train) {
			n = len(ds.Train)
		}
		_, tm := ld.BuildBatch(ds.Train[:n])

		// Epoch time with the same backing, reusing the loader's store via
		// a custom trainer wiring.
		m2 := sim.NewMachine(sim.DGXA100(1))
		store2, err := core.NewStoreWithFeatureKind(m2, 0, ds, kind)
		if err != nil {
			return nil, err
		}
		tr, err := newStoreTrainer(m2, store2, opts)
		if err != nil {
			return nil, err
		}
		m2.Reset()
		st := tr.RunEpoch()

		row := StorageRow{Kind: kind, GatherTime: tm.Gather, EpochTime: st.EpochTime}
		rows = append(rows, row)
		cfg.printf("%-14s %14s %14s\n", kind, fmtSeconds(row.GatherTime), fmtSeconds(row.EpochTime))
	}
	return rows, nil
}

// UniqueRow compares the hash-table and sort-based AppendUnique on one
// sampled workload size.
type UniqueRow struct {
	Neighbors int
	HashTime  float64
	SortTime  float64
}

// AblationUnique evaluates the §III-C2 design choice: the warpcore-style
// hash table against "the sort method used in other frameworks", on
// realistic sampled-batch workloads.
func AblationUnique(cfg Config) ([]UniqueRow, error) {
	cfg = cfg.normalize()
	rng := cfg.seededRand(31)
	cfg.printf("Ablation: AppendUnique hash table vs sort\n")
	cfg.printf("%12s %12s %12s %9s\n", "neighbors", "hash", "sort", "ratio")
	var rows []UniqueRow
	for _, nNeighbors := range []int{1 << 10, 1 << 13, 1 << 16, 1 << 19} {
		targets := make([]graph.GlobalID, 512)
		for i := range targets {
			targets[i] = graph.MakeGlobalID(i%8, int64(1_000_000+i))
		}
		neighbors := make([]graph.GlobalID, nNeighbors)
		for i := range neighbors {
			v := rng.Intn(nNeighbors) // ~63% unique, like sampled batches
			neighbors[i] = graph.MakeGlobalID(v%8, int64(v))
		}
		m := sim.NewMachine(sim.DGXA100(1))
		unique.AppendUnique(m.Devs[0], targets, neighbors)
		unique.AppendUniqueSort(m.Devs[1], targets, neighbors)
		row := UniqueRow{
			Neighbors: nNeighbors,
			HashTime:  m.Devs[0].Now(),
			SortTime:  m.Devs[1].Now(),
		}
		rows = append(rows, row)
		cfg.printf("%12d %12s %12s %8.2fx\n",
			row.Neighbors, fmtSeconds(row.HashTime), fmtSeconds(row.SortTime),
			row.SortTime/row.HashTime)
	}
	return rows, nil
}

// DedupRow compares gathering with and without duplicate removal.
type DedupRow struct {
	Dataset string
	// UniqueRows / SampledRows: feature rows gathered with and without
	// AppendUnique deduplication.
	UniqueRows, SampledRows int
	// DedupTime / NoDedupTime: gather time for the two strategies.
	DedupTime, NoDedupTime float64
}

// AblationDedup evaluates why AppendUnique exists at all (§III-C2: "to
// decrease the amount of gathering features from other GPU, it is better to
// get rid of these duplicate nodes"): gather the features of the unique
// input set versus one row per sampled neighbor occurrence.
func AblationDedup(cfg Config) ([]DedupRow, error) {
	cfg = cfg.normalize()
	cfg.printf("Ablation: feature gathering with vs without deduplication\n")
	cfg.printf("%-22s %10s %10s %12s %12s %8s\n",
		"dataset", "unique", "sampled", "dedup", "no-dedup", "saving")
	opts := cfg.trainOpts("graphsage")
	var rows []DedupRow
	for _, spec := range []dataset.Spec{
		dataset.OgbnProducts.Scaled(cfg.Scale),
		dataset.OgbnPapers100M.Scaled(cfg.Scale),
	} {
		ds, err := generate(spec)
		if err != nil {
			return nil, err
		}
		m := sim.NewMachine(sim.DGXA100(1))
		store, err := core.NewStore(m, 0, ds)
		if err != nil {
			return nil, err
		}
		m.Reset()
		ld := core.NewLoader(store, m.Devs[0], opts.Fanouts, cfg.Seed)
		n := opts.Batch
		if n > len(ds.Train) {
			n = len(ds.Train)
		}
		b, tm := ld.BuildBatch(ds.Train[:n])

		// Without dedup: one gather row per edge endpoint of every block
		// plus the targets, as a pipeline without AppendUnique would fetch.
		sampled := b.BatchSize()
		for _, blk := range b.Blocks {
			sampled += int(blk.NumEdges())
		}
		dim := ds.Spec.FeatDim
		rowsIdx := make([]int64, sampled)
		rng := cfg.seededRand(37)
		maxRow := store.PG.Feat.Len() / int64(dim)
		for i := range rowsIdx {
			rowsIdx[i] = rng.Int63n(maxRow)
		}
		dev := m.Devs[1]
		t0 := dev.Now()
		store.PG.Feat.GatherRows(dev, rowsIdx, dim, make([]float32, sampled*dim), "nodedup")
		noDedup := dev.Now() - t0

		row := DedupRow{
			Dataset:     spec.Name,
			UniqueRows:  b.Feat.R,
			SampledRows: sampled,
			DedupTime:   tm.Gather,
			NoDedupTime: noDedup,
		}
		rows = append(rows, row)
		cfg.printf("%-22s %10d %10d %12s %12s %7.2fx\n",
			row.Dataset, row.UniqueRows, row.SampledRows,
			fmtSeconds(row.DedupTime), fmtSeconds(row.NoDedupTime),
			row.NoDedupTime/row.DedupTime)
	}
	return rows, nil
}

// CacheRow reports one cache size in the caching ablation.
type CacheRow struct {
	Fraction   float64 // cached fraction of the graph's nodes
	HitRate    float64
	GatherTime float64 // summed feature-gather time over the run
}

// AblationCache evaluates the PaGraph-style hot-node feature cache as an
// extension: per-GPU caches of the highest-degree nodes' rows cut NVLink
// traffic; on NVSwitch hardware the win is modest (remote HBM is already
// fast), which is the quantitative reason WholeGraph can skip caching.
func AblationCache(cfg Config) ([]CacheRow, error) {
	cfg = cfg.normalize()
	ds, err := generate(dataset.OgbnProducts.Scaled(cfg.Scale))
	if err != nil {
		return nil, err
	}
	opts := cfg.trainOpts("graphsage")
	cfg.printf("Ablation: hot-node feature cache (GraphSAGE batches, ogbn-products)\n")
	cfg.printf("%10s %10s %14s\n", "cached", "hit rate", "gather total")
	var rows []CacheRow
	for _, frac := range []float64{0, 0.1, 0.25, 0.5} {
		m := sim.NewMachine(sim.DGXA100(1))
		store, err := core.NewStore(m, 0, ds)
		if err != nil {
			return nil, err
		}
		m.Reset()
		ld := core.NewLoader(store, m.Devs[0], opts.Fanouts, cfg.Seed)
		var fc *fcache.FeatureCache
		if frac > 0 {
			fc, err = fcache.NewDegreeCache(store.PG, m.Devs[0], int(float64(ds.Spec.Nodes)*frac))
			if err != nil {
				return nil, err
			}
			ld.WithCache(fc)
		}
		m.Reset() // cache fill is one-time
		var gather float64
		n := opts.Batch
		if n > len(ds.Train) {
			n = len(ds.Train)
		}
		for it := 0; it < 4; it++ {
			off := (it * n) % (len(ds.Train) - n + 1)
			_, tm := ld.BuildBatch(ds.Train[off : off+n])
			gather += tm.Gather
		}
		row := CacheRow{Fraction: frac, GatherTime: gather}
		if fc != nil {
			row.HitRate = fc.HitRate()
		}
		rows = append(rows, row)
		cfg.printf("%9.0f%% %9.2f%% %14s\n", 100*frac, 100*row.HitRate, fmtSeconds(row.GatherTime))
	}
	return rows, nil
}

// HardwareRow compares WholeGraph's advantage on two fabrics.
type HardwareRow struct {
	Machine      string
	WGEpoch      float64
	DGLEpoch     float64
	SpeedupVsDGL float64
}

// AblationHardware evaluates the hardware the design banks on: the same
// WholeGraph-vs-DGL comparison on a DGX-A100 (NVSwitch) and on a commodity
// PCIe-only 8-GPU server. Peer-access graph storage still wins on PCIe
// (the CPU leaves the critical path), but by much less — the NVLink fabric
// is what buys the paper's headline factors.
func AblationHardware(cfg Config) ([]HardwareRow, error) {
	cfg = cfg.normalize()
	ds, err := generate(dataset.OgbnPapers100M.Scaled(cfg.Scale))
	if err != nil {
		return nil, err
	}
	opts := cfg.trainOpts("graphsage")
	cfg.printf("Ablation: fabric dependence (GraphSAGE, ogbn-papers100M)\n")
	cfg.printf("%-14s %12s %12s %10s\n", "machine", "WholeGraph", "DGL", "speedup")
	var rows []HardwareRow
	for _, hw := range []struct {
		name string
		cfgf func(int) sim.MachineConfig
	}{
		{"DGX-A100", sim.DGXA100},
		{"PCIe-server", sim.PCIeServer},
	} {
		epoch := func(fw Framework) (float64, error) {
			m := sim.NewMachine(hw.cfgf(1))
			var tr *train.Trainer
			var err error
			if fw == FwWholeGraph {
				tr, err = train.New(m, ds, opts)
			} else {
				tr, err = baseline.New(m, ds, opts, baseline.DGL)
			}
			if err != nil {
				return 0, err
			}
			m.Reset()
			return tr.RunEpoch().EpochTime, nil
		}
		wg, err := epoch(FwWholeGraph)
		if err != nil {
			return nil, err
		}
		dgl, err := epoch(FwDGL)
		if err != nil {
			return nil, err
		}
		row := HardwareRow{Machine: hw.name, WGEpoch: wg, DGLEpoch: dgl, SpeedupVsDGL: dgl / wg}
		rows = append(rows, row)
		cfg.printf("%-14s %12s %12s %9.2fx\n",
			row.Machine, fmtSeconds(row.WGEpoch), fmtSeconds(row.DGLEpoch), row.SpeedupVsDGL)
	}
	return rows, nil
}

// PartitionRow reports one node-placement strategy.
type PartitionRow struct {
	Strategy string
	// RemoteFrac is the fraction of gathered feature bytes that crossed
	// NVLink during the measured batches.
	RemoteFrac float64
	// EdgeImbalance is max/mean edges per rank (load balance).
	EdgeImbalance float64
	GatherTime    float64
}

// AblationPartition evaluates the §III-B placement choice: hash
// partitioning (the paper's), contiguous ranges, and a community-aware
// placement that co-locates same-class nodes (an idealized METIS stand-in
// possible because the synthetic generator's communities are known).
// Community placement cuts remote traffic but hash keeps load balanced with
// zero metadata — on NVSwitch the traffic saving barely matters, which is
// the design's justification.
func AblationPartition(cfg Config) ([]PartitionRow, error) {
	cfg = cfg.normalize()
	ds, err := generate(dataset.OgbnProducts.Scaled(cfg.Scale))
	if err != nil {
		return nil, err
	}
	opts := cfg.trainOpts("graphsage")
	cfg.printf("Ablation: node placement strategy (GraphSAGE batches, ogbn-products)\n")
	cfg.printf("%-12s %12s %14s %14s\n", "strategy", "remote frac", "edge max/mean", "gather total")

	parts := 8
	strategies := []struct {
		name  string
		owner func(int64) int
	}{
		{"hash", func(v int64) int { return graph.RankFor(v, parts) }},
		{"range", graph.RangeOwner(ds.Spec.Nodes, parts)},
		{"community", func(v int64) int { return int(ds.Spec.Class(v)) % parts }},
	}
	var rows []PartitionRow
	for _, st := range strategies {
		m := sim.NewMachine(sim.DGXA100(1))
		comm, err := wholemem.NewComm(m.NodeDevs(0))
		if err != nil {
			return nil, err
		}
		pg, err := graph.PartitionBy(ds.Graph, ds.Feat, ds.Spec.FeatDim, comm, st.owner)
		if err != nil {
			return nil, err
		}
		m.Reset()
		dev := m.Devs[0]

		// Locality only materializes when a worker trains the targets its
		// own rank owns (placement-aligned sharding): take rank-0-owned
		// training nodes as the batch.
		var targets []graph.GlobalID
		for _, v := range ds.Train {
			if pg.Owner[v].Rank() == 0 {
				targets = append(targets, pg.Owner[v])
			}
			if len(targets) == opts.Batch {
				break
			}
		}
		smp := sampling.NewGPUSampler(pg, dev, cfg.Seed)
		cur := targets
		for _, fan := range opts.Fanouts {
			nb := smp.SampleLayer(cur, fan)
			cur = unique.AppendUnique(dev, cur, nb.Neighbors).Unique
		}
		fRows := make([]int64, len(cur))
		var remote int
		for i, gid := range cur {
			fRows[i] = pg.FeatRow(gid)
			if gid.Rank() != 0 {
				remote++
			}
		}
		dim := ds.Spec.FeatDim
		gather := pg.Feat.GatherRows(dev, fRows, dim, make([]float32, len(fRows)*dim), "abl")

		row := PartitionRow{
			Strategy:      st.name,
			RemoteFrac:    float64(remote) / float64(len(cur)),
			EdgeImbalance: edgeImbalance(pg),
			GatherTime:    gather,
		}
		rows = append(rows, row)
		cfg.printf("%-12s %11.1f%% %14.2f %14s\n",
			row.Strategy, 100*row.RemoteFrac, row.EdgeImbalance, fmtSeconds(row.GatherTime))
	}
	return rows, nil
}

// edgeImbalance returns max/mean stored edges across ranks.
func edgeImbalance(pg *graph.Partitioned) float64 {
	var max, sum float64
	n := 0
	for r := 0; r < pg.Comm.Size(); r++ {
		e := float64(len(pg.Col.Shard(r)))
		sum += e
		if e > max {
			max = e
		}
		n++
	}
	if sum == 0 {
		return 1
	}
	return max / (sum / float64(n))
}
