package bench

import (
	"wholegraph/internal/core"
	"wholegraph/internal/dataset"
	"wholegraph/internal/gather"
	"wholegraph/internal/sim"
	"wholegraph/internal/spops"
	"wholegraph/internal/wholemem"
)

// Table5Row reports the average epoch time of one dataset+model for the
// three frameworks and the speedups of WholeGraph over the baselines.
type Table5Row struct {
	Dataset, Model string
	EpochTime      map[Framework]float64
	Timing         map[Framework]core.Timing
	SpeedupVsPyG   float64
	SpeedupVsDGL   float64
}

// Table5 reproduces Table V (and feeds Figure 9): average epoch time for
// GCN/GraphSAGE/GAT on the four datasets under PyG, DGL and WholeGraph.
func Table5(cfg Config) ([]Table5Row, error) {
	cfg = cfg.normalize()
	specs := cfg.datasets()
	if cfg.Quick {
		specs = specs[:2] // products + papers100M keep the comparison shape
	}
	cfg.printf("Table V: average epoch time (virtual seconds at scale %g) and speedups\n", cfg.Scale)
	cfg.printf("%-22s %-10s %12s %12s %12s %10s %10s\n",
		"Dataset", "Model", "PyG", "DGL", "Ours", "vs PyG", "vs DGL")
	// One cell per dataset x model, fanned out under cfg.Parallel; each
	// cell times the three frameworks on fresh machines.
	type t5cell struct {
		ds   *dataset.Dataset
		arch string
	}
	var cells []t5cell
	for _, spec := range specs {
		ds, err := generate(spec)
		if err != nil {
			return nil, err
		}
		for _, arch := range []string{"gcn", "graphsage", "gat"} {
			cells = append(cells, t5cell{ds, arch})
		}
	}
	rows := make([]Table5Row, len(cells))
	err := cfg.runCells(len(cells), func(ci int) error {
		c := cells[ci]
		row := Table5Row{
			Dataset: c.ds.Spec.Name, Model: c.arch,
			EpochTime: map[Framework]float64{},
			Timing:    map[Framework]core.Timing{},
		}
		for _, fw := range []Framework{FwPyG, FwDGL, FwWholeGraph} {
			_, tr, err := newTrainer(fw, 1, c.ds, cfg.trainOpts(c.arch))
			if err != nil {
				return err
			}
			st := tr.RunEpoch()
			row.EpochTime[fw] = st.EpochTime
			row.Timing[fw] = st.Timing
		}
		row.SpeedupVsPyG = row.EpochTime[FwPyG] / row.EpochTime[FwWholeGraph]
		row.SpeedupVsDGL = row.EpochTime[FwDGL] / row.EpochTime[FwWholeGraph]
		rows[ci] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		cfg.printf("%-22s %-10s %12s %12s %12s %9.2fx %9.2fx\n",
			row.Dataset, row.Model,
			fmtSeconds(row.EpochTime[FwPyG]), fmtSeconds(row.EpochTime[FwDGL]),
			fmtSeconds(row.EpochTime[FwWholeGraph]), row.SpeedupVsPyG, row.SpeedupVsDGL)
	}
	return rows, nil
}

// Fig7Point is one epoch of the validation-accuracy comparison.
type Fig7Point struct {
	Epoch  int
	DGLAcc float64
	WGAcc  float64
}

// Fig7 reproduces Figure 7: DGL and WholeGraph validation accuracy on
// ogbn-products training GraphSAGE, epoch by epoch. Parity holds because
// the training math is shared; only the data path differs.
func Fig7(cfg Config) ([]Fig7Point, error) {
	cfg = cfg.normalize()
	ds, err := generate(dataset.OgbnProducts.Scaled(cfg.Scale))
	if err != nil {
		return nil, err
	}
	evalIDs, evalLabels := evalSet(cfg, ds, 7)
	opts := cfg.accuracyOpts("graphsage")
	_, dgl, err := newTrainer(FwDGL, 1, ds, opts)
	if err != nil {
		return nil, err
	}
	_, wg, err := newTrainer(FwWholeGraph, 1, ds, opts)
	if err != nil {
		return nil, err
	}
	cfg.printf("Figure 7: validation accuracy per epoch (GraphSAGE, ogbn-products)\n")
	cfg.printf("%6s %10s %12s\n", "epoch", "DGL", "WholeGraph")
	var pts []Fig7Point
	for e := 1; e <= cfg.Epochs; e++ {
		dgl.RunEpoch()
		wg.RunEpoch()
		p := Fig7Point{
			Epoch:  e,
			DGLAcc: dgl.EvaluateWithLabels(evalIDs, evalLabels),
			WGAcc:  wg.EvaluateWithLabels(evalIDs, evalLabels),
		}
		pts = append(pts, p)
		cfg.printf("%6d %9.2f%% %11.2f%%\n", e, 100*p.DGLAcc, 100*p.WGAcc)
	}
	return pts, nil
}

// Fig8Point is one segment size of the random-gather bandwidth sweep.
type Fig8Point struct {
	SegBytes  int
	AlgoBWGBs float64
	BusBWGBs  float64
}

// Fig8 reproduces Figure 8: every GPU concurrently gathers random segments
// from memory striped across all 8 GPUs; bandwidth rises with segment size
// and saturates near the NVLink limit once segments pass ~128 bytes.
func Fig8(cfg Config) ([]Fig8Point, error) {
	cfg = cfg.normalize()
	m := sim.NewMachine(sim.DGXA100(1))
	comm, err := wholemem.NewComm(m.NodeDevs(0))
	if err != nil {
		return nil, err
	}
	// Paper: 128 GB pool, 4 GB gathered per GPU. Scaled to keep host
	// memory reasonable while exercising the identical code path; the
	// per-GPU volume stays large enough to amortize the kernel launch as
	// the paper's 4 GB does.
	poolBytes := int64(512 << 20)
	perGPUBytes := int64(64 << 20)
	if cfg.Quick {
		poolBytes, perGPUBytes = 64<<20, 8<<20
	}
	mem := wholemem.Alloc[float32](comm, poolBytes/4)
	rng := cfg.seededRand(8)

	cfg.printf("Figure 8: random gather bandwidth vs segment size\n")
	cfg.printf("%10s %14s %14s\n", "seg (B)", "AlgoBW GB/s", "BusBW GB/s")
	var pts []Fig8Point
	for _, seg := range []int{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096} {
		m.Reset()
		dim := seg / 4
		end := 0.0
		for _, dev := range m.NodeDevs(0) {
			nRows := int(perGPUBytes) / seg
			rows := make([]int64, nRows)
			maxRow := mem.Len() / int64(dim)
			for i := range rows {
				rows[i] = rng.Int63n(maxRow)
			}
			dst := make([]float32, nRows*dim)
			mem.GatherRows(dev, rows, dim, dst, "fig8")
			if dev.Now() > end {
				end = dev.Now()
			}
		}
		algo := float64(perGPUBytes) / end / 1e9
		p := Fig8Point{SegBytes: seg, AlgoBWGBs: algo, BusBWGBs: algo * 7 / 8}
		pts = append(pts, p)
		cfg.printf("%10d %14.1f %14.1f\n", p.SegBytes, p.AlgoBWGBs, p.BusBWGBs)
	}
	return pts, nil
}

// Fig9 reproduces Figure 9, the epoch-time breakdown: it reuses the Table V
// measurement on ogbn-products and ogbn-papers100M and prints the
// sampling / gathering / training split per framework and model.
func Fig9(cfg Config) ([]Table5Row, error) {
	cfg = cfg.normalize()
	saved := cfg.W
	sub := cfg
	sub.W = nil
	sub.Quick = true // products + papers only, as the figure shows
	rows, err := Table5(sub)
	if err != nil {
		return nil, err
	}
	cfg.W = saved
	cfg.printf("Figure 9: epoch time breakdown (sample / gather / train)\n")
	cfg.printf("%-22s %-10s %-12s %12s %12s %12s\n",
		"Dataset", "Model", "Framework", "Sample", "Gather", "Train")
	for _, r := range rows {
		for _, fw := range []Framework{FwPyG, FwDGL, FwWholeGraph} {
			tm := r.Timing[fw]
			cfg.printf("%-22s %-10s %-12s %12s %12s %12s\n",
				r.Dataset, r.Model, fw,
				fmtSeconds(tm.Sample), fmtSeconds(tm.Gather), fmtSeconds(tm.Train))
		}
	}
	return rows, nil
}

// Fig10Row compares the two gather implementations on one dataset.
type Fig10Row struct {
	Dataset        string
	SharedTime     float64
	DistTime       float64
	Speedup        float64
	SharedBusBWGBs float64
	// AlltoAllvBusBWGBs is the bandwidth of the NCCL implementation's
	// feature exchange step alone (the paper's "bandwidth of the final
	// alltoallv").
	AlltoAllvBusBWGBs float64
}

// Fig10 reproduces Figure 10: shared-memory gather vs NCCL-based
// distributed gather on feature workloads taken from real sampled batches
// of each dataset.
func Fig10(cfg Config) ([]Fig10Row, error) {
	cfg = cfg.normalize()
	cfg.printf("Figure 10: gathering features, shared-memory vs NCCL-based\n")
	cfg.printf("%-22s %10s %10s %9s %12s %14s\n",
		"Dataset", "ours", "NCCL", "speedup", "ours BusBW", "alltoallv BusBW")
	var rows []Fig10Row
	for _, spec := range cfg.datasets() {
		ds, err := generate(spec)
		if err != nil {
			return nil, err
		}
		m := sim.NewMachine(sim.DGXA100(1))
		store, err := core.NewStore(m, 0, ds)
		if err != nil {
			return nil, err
		}
		// Build a realistic gather workload: the input node set of one
		// sampled batch per GPU.
		opts := cfg.trainOpts("graphsage")
		dim := ds.Spec.FeatDim
		var reqs []*gather.Request
		var totalBytes float64
		for i, dev := range m.NodeDevs(0) {
			// Size each GPU's request from a real sampled batch's input
			// node set; the row IDs themselves are uniform like the hash
			// partition makes them.
			ld := core.NewLoader(store, dev, opts.Fanouts, cfg.Seed+int64(i))
			n := opts.Batch
			if n > len(ds.Train) {
				n = len(ds.Train)
			}
			b, _ := ld.BuildBatch(ds.Train[:n])
			reqs = append(reqs, randomWorkload(cfg, store, dev, b.Feat.R, dim))
			totalBytes += float64(b.Feat.R * dim * 4)
		}
		m.Reset()
		tShared := gather.SharedMem(store.PG.Feat, dim, reqs)
		m.Reset()
		// Reuse the same requests (and their Out buffers) for the
		// distributed leg: Reset repoints them without reallocating.
		for _, r := range reqs {
			r.Reset(r.Rows, dim)
		}
		_, bd := gather.DistributedWithBreakdown(store.PG.Feat, dim, reqs)

		perGPU := totalBytes / 8
		row := Fig10Row{
			Dataset:           spec.Name,
			SharedTime:        tShared,
			DistTime:          bd.Total(),
			Speedup:           bd.Total() / tShared,
			SharedBusBWGBs:    perGPU / tShared / 1e9 * 7 / 8,
			AlltoAllvBusBWGBs: perGPU / bd.AlltoAllvTime() / 1e9 * 7 / 8,
		}
		rows = append(rows, row)
		cfg.printf("%-22s %10s %10s %8.2fx %11.1f %13.1f\n",
			row.Dataset, fmtSeconds(row.SharedTime), fmtSeconds(row.DistTime),
			row.Speedup, row.SharedBusBWGBs, row.AlltoAllvBusBWGBs)
	}
	return rows, nil
}

// randomWorkload builds a gather request of n random feature rows.
func randomWorkload(cfg Config, store *core.Store, dev *sim.Device, n, dim int) *gather.Request {
	rng := cfg.seededRand(int64(dev.ID) + 100)
	rows := make([]int64, n)
	maxRow := store.PG.Feat.Len() / int64(dim)
	for i := range rows {
		rows[i] = rng.Int63n(maxRow)
	}
	return gather.NewRequest(dev, rows, dim)
}

// Fig11Row reports the breakdown of WholeGraph with third-party layer
// backends (Figure 11).
type Fig11Row struct {
	Dataset, Model string
	Timing         map[string]core.Timing // backend name -> breakdown
	EpochTime      map[string]float64
	SpeedupVsDGL   float64 // native vs dgl-layers
	SpeedupVsPyG   float64 // native vs pyg-layers
}

// Fig11 reproduces Figure 11: the WholeGraph pipeline (GPU sampling +
// shared-memory gather) combined with native, DGL-style, and PyG-style GNN
// layer implementations. Sampling/gathering stay flat; only training time
// moves, by up to ~1.3x (DGL layers) and ~2.4x (PyG layers).
func Fig11(cfg Config) ([]Fig11Row, error) {
	cfg = cfg.normalize()
	specs := []dataset.Spec{
		dataset.OgbnProducts.Scaled(cfg.Scale),
		dataset.OgbnPapers100M.Scaled(cfg.Scale),
	}
	backends := []spops.Backend{spops.BackendNative, spops.BackendDGL, spops.BackendPyG}
	cfg.printf("Figure 11: WholeGraph with native vs third-party GNN layers\n")
	cfg.printf("%-22s %-10s %-12s %12s %12s %12s %12s\n",
		"Dataset", "Model", "Layers", "Sample", "Gather", "Train", "Epoch")
	var rows []Fig11Row
	for _, spec := range specs {
		ds, err := generate(spec)
		if err != nil {
			return nil, err
		}
		for _, arch := range []string{"gcn", "graphsage", "gat"} {
			row := Fig11Row{
				Dataset: spec.Name, Model: arch,
				Timing:    map[string]core.Timing{},
				EpochTime: map[string]float64{},
			}
			for _, be := range backends {
				opts := cfg.trainOpts(arch)
				opts.Backend = be
				_, tr, err := newTrainer(FwWholeGraph, 1, ds, opts)
				if err != nil {
					return nil, err
				}
				st := tr.RunEpoch()
				row.Timing[be.String()] = st.Timing
				row.EpochTime[be.String()] = st.EpochTime
				cfg.printf("%-22s %-10s %-12s %12s %12s %12s %12s\n",
					spec.Name, arch, be,
					fmtSeconds(st.Timing.Sample), fmtSeconds(st.Timing.Gather),
					fmtSeconds(st.Timing.Train), fmtSeconds(st.EpochTime))
			}
			native := row.EpochTime[spops.BackendNative.String()]
			row.SpeedupVsDGL = row.EpochTime[spops.BackendDGL.String()] / native
			row.SpeedupVsPyG = row.EpochTime[spops.BackendPyG.String()] / native
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig12Series is the GPU utilization timeline of one framework.
type Fig12Series struct {
	Framework Framework
	// Util holds the busy fraction of each time bucket across the traced
	// training window.
	Util []float64
	Mean float64
}

// Fig12 reproduces Figure 12: GPU utilization over time. The baselines
// oscillate (idle while the CPU prepares data), WholeGraph stays >= 95%.
func Fig12(cfg Config) ([]Fig12Series, error) {
	cfg = cfg.normalize()
	ds, err := generate(dataset.OgbnPapers100M.Scaled(cfg.Scale))
	if err != nil {
		return nil, err
	}
	const buckets = 40
	cfg.printf("Figure 12: GPU utilization during training (%d buckets over the window)\n", buckets)
	var out []Fig12Series
	for _, fw := range []Framework{FwPyG, FwDGL, FwWholeGraph} {
		opts := cfg.trainOpts("graphsage")
		opts.Trace = true
		_, tr, err := newTrainer(fw, 1, ds, opts)
		if err != nil {
			return nil, err
		}
		dev := tr.Worker0Device()
		t0 := dev.Now()
		epochs := 2
		for e := 0; e < epochs; e++ {
			tr.RunEpoch()
		}
		u := sim.Utilization(dev.Trace(), t0, dev.Now(), buckets)
		mean := 0.0
		for _, v := range u {
			mean += v
		}
		mean /= float64(len(u))
		out = append(out, Fig12Series{Framework: fw, Util: u, Mean: mean})
		cfg.printf("%-12s mean %5.1f%%  ", fw, 100*mean)
		for _, v := range u {
			cfg.printf("%s", sparkChar(v))
		}
		cfg.printf("\n")
	}
	return out, nil
}

// sparkChar renders a utilization value as a spark bar.
func sparkChar(v float64) string {
	bars := []string{" ", "▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"}
	i := int(v * float64(len(bars)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(bars) {
		i = len(bars) - 1
	}
	return bars[i]
}

// Fig13Row reports multi-node scaling for one dataset+model.
type Fig13Row struct {
	Dataset, Model string
	// Speedup[i] is the epoch-time speedup at Nodes[i] nodes vs 1 node.
	Nodes   []int
	Speedup []float64
}

// Fig13 reproduces Figure 13: epoch-time speedup up to 8 DGX nodes with one
// graph replica per node (§III-D); scaling is near-linear because only the
// gradient AllReduce crosses nodes.
func Fig13(cfg Config) ([]Fig13Row, error) {
	cfg = cfg.normalize()
	// Scaling needs enough training nodes that an epoch is many
	// iterations even when sharded over 64 GPUs; enforce a scale floor.
	scale := cfg.Scale
	if scale < 1e-3 {
		scale = 1e-3
	}
	specs := []dataset.Spec{
		dataset.OgbnPapers100M.Scaled(scale),
		dataset.Friendster.Scaled(scale),
		dataset.UKDomain.Scaled(scale),
	}
	models := []string{"gcn", "graphsage", "gat"}
	nodeCounts := []int{1, 2, 4, 8}
	if cfg.Quick {
		models = models[:2]
		specs = specs[:2]
	}
	cfg.printf("Figure 13: multi-node scaling (speedup vs 1 node)\n")
	cfg.printf("%-22s %-10s", "Dataset", "Model")
	for _, n := range nodeCounts {
		cfg.printf(" %6dN", n)
	}
	cfg.printf("\n")
	// One cell per dataset x model; node counts within a cell stay serial
	// because every speedup divides by the same cell's 1-node baseline.
	type f13cell struct {
		ds   *dataset.Dataset
		arch string
	}
	var cells []f13cell
	for _, spec := range specs {
		ds, err := generate(spec)
		if err != nil {
			return nil, err
		}
		for _, arch := range models {
			cells = append(cells, f13cell{ds, arch})
		}
	}
	rows := make([]Fig13Row, len(cells))
	err := cfg.runCells(len(cells), func(ci int) error {
		c := cells[ci]
		opts := cfg.trainOpts(c.arch)
		// Size the batch so a single node runs ~32 iterations per
		// epoch; scaling then has room to show (the paper's epochs
		// are hundreds of iterations).
		opts.Batch = len(c.ds.Train) / 8 / 32
		if opts.Batch < 4 {
			opts.Batch = 4
		}
		row := Fig13Row{Dataset: c.ds.Spec.Name, Model: c.arch, Nodes: nodeCounts}
		var base float64
		for _, n := range nodeCounts {
			_, tr, err := newTrainer(FwWholeGraph, n, c.ds, opts)
			if err != nil {
				return err
			}
			et := tr.RunEpoch().EpochTime
			if n == 1 {
				base = et
			}
			row.Speedup = append(row.Speedup, base/et)
		}
		rows[ci] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		cfg.printf("%-22s %-10s", row.Dataset, row.Model)
		for _, s := range row.Speedup {
			cfg.printf(" %6.2fx", s)
		}
		cfg.printf("\n")
	}
	// The paper's §IV-D claim: "80 epochs of a 3-layer GraphSAGE ... on
	// ogbn-papers100M in 66 seconds with 8 DGX-A100 servers". Reproduce
	// the measurement at our scale: 80 epochs at 8 nodes, virtual time.
	claim, usedScale, err := claim80Epochs(cfg)
	if err != nil {
		return nil, err
	}
	cfg.printf("\n80 epochs GraphSAGE on ogbn-papers100M @ 8 nodes: %s virtual at scale %g\n",
		fmtSeconds(claim), usedScale)
	cfg.printf("(paper §IV-D: 66 s at full scale; naive x%g volume extrapolation: %s)\n",
		1/usedScale, fmtSeconds(claim/usedScale))
	return rows, nil
}

// claim80Epochs measures the virtual time of 80 GraphSAGE epochs on the
// scaled papers100M over 8 simulated DGX nodes (one epoch measured, 80
// extrapolated — epochs are statistically identical). It returns the time
// and the scale actually used (floored like the rest of Fig13).
func claim80Epochs(cfg Config) (float64, float64, error) {
	scale := cfg.Scale
	if scale < 1e-3 {
		scale = 1e-3
	}
	ds, err := generate(dataset.OgbnPapers100M.Scaled(scale))
	if err != nil {
		return 0, 0, err
	}
	opts := cfg.trainOpts("graphsage")
	opts.Batch = len(ds.Train) / 64 / 16 // ~16 iterations per epoch at 64 workers
	if opts.Batch < 4 {
		opts.Batch = 4
	}
	_, tr, err := newTrainer(FwWholeGraph, 8, ds, opts)
	if err != nil {
		return 0, 0, err
	}
	st := tr.RunEpoch()
	return 80 * st.EpochTime, scale, nil
}
