// Package bench implements the paper's evaluation: one runner per table and
// figure of §IV, each reproducing the corresponding workload on the
// simulated DGX-A100 and printing the same rows/series the paper reports.
//
// Graphs run at a configurable scale factor (papers100M does not fit in
// host memory at full size) and, in Quick mode, with reduced model sizes so
// the pure-Go training math stays tractable; EXPERIMENTS.md records the
// exact substitutions next to the paper-vs-measured comparison. The
// *shapes* — which system wins, by roughly what factor, where curves
// plateau — are the reproduction target, not absolute seconds.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"wholegraph/internal/baseline"
	"wholegraph/internal/core"
	"wholegraph/internal/dataset"
	"wholegraph/internal/sim"
	"wholegraph/internal/train"
)

// Config controls an experiment run.
type Config struct {
	// Scale multiplies every dataset's node and edge counts (default 1e-3).
	Scale float64
	// Quick shrinks model sizes and iteration counts for CI-speed runs.
	Quick bool
	// Epochs for accuracy experiments (0 = default: 24 full / 8 quick).
	Epochs int
	// Seed fixes all randomness.
	Seed int64
	// Parallel fans independent experiment cells (dataset x model x
	// framework groups) across goroutines. Reported virtual times and
	// printed rows are identical either way: cells share only read-only
	// state, and rows are printed in order after all cells finish.
	Parallel bool
	// Pipeline runs every WholeGraph trainer with cross-iteration batch
	// prefetch on the copy stream (see train.Options.Pipeline). Model math
	// and accuracy are bit-identical; epoch times shrink by the overlap.
	Pipeline bool
	// CacheRows > 0 gives every WholeGraph worker a hot-node feature cache
	// of that many highest-degree rows (see train.Options.CacheRows).
	// Aggregate hit/miss counts are available from CacheCounters.
	CacheRows int
	// OverlapGrads runs every WholeGraph trainer with bucketed gradient
	// AllReduce overlapped into the backward pass on the copy stream (see
	// train.Options.OverlapGrads). Model math and accuracy are
	// bit-identical; epoch times change by the hidden communication.
	OverlapGrads bool
	// CaptureGraph runs every WholeGraph trainer with step capture/replay
	// (see train.Options.CaptureGraph): after the capture warm-up,
	// iterations replay the recorded step DAG with one graph launch instead
	// of per-kernel launches. Model math and accuracy are bit-identical.
	CaptureGraph bool
	// Schedule routes every WholeGraph trainer's replays through the
	// whole-step scheduler (see train.Options.Schedule): the captured step's
	// charges are list-scheduled onto the compute and copy streams from the
	// recovered dependency DAG. Implies CaptureGraph; model math and
	// accuracy are bit-identical.
	Schedule bool
	// PagedFeatures routes every WholeGraph trainer's features through the
	// out-of-core paged store (see train.Options.PagedFeatures): host
	// features live in encoded pages behind per-device LRU BlockCaches,
	// and page misses are priced through the UM/PCIe fault model. With the
	// raw encoding, model math is bit-identical to the flat slab.
	PagedFeatures bool
	// FeatEncoding selects the page encoding ("raw", "f16", "q8"); only
	// meaningful with PagedFeatures. Non-raw encodings are lossy.
	FeatEncoding string
	// FeatPageRows is the rows-per-page of the paged store (0 = default).
	FeatPageRows int
	// FeatCacheMB is each device's BlockCache budget in MiB (0 = default).
	FeatCacheMB int
	// PagedTopo routes every WholeGraph trainer's CSR column array through
	// the paged topology store (see train.Options.PagedTopo): sampling
	// reads neighbors through page-aware accessors, bit-identical to the
	// in-memory CSR.
	PagedTopo bool
	// TopoPageEdges is the column entries per topology page (0 = default).
	TopoPageEdges int
	// TopoCacheMB is each device's topology BlockCache budget in MiB
	// (0 = default).
	TopoCacheMB int
	// PrefetchPages > 0 has each worker fault-prefetch up to that many
	// predicted pages per paged store ahead of compute (see
	// train.Options.PrefetchPages).
	PrefetchPages int
	// CachePolicy is the BlockCache replacement policy for both paged
	// stores: "lru" (default) or "admit".
	CachePolicy string
	// W receives the human-readable report (nil = io.Discard).
	W io.Writer
}

func (c Config) normalize() Config {
	if c.Scale == 0 {
		c.Scale = 1e-3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Epochs == 0 {
		if c.Quick {
			c.Epochs = 8
		} else {
			c.Epochs = 24
		}
	}
	if c.W == nil {
		c.W = io.Discard
	}
	return c
}

func (c Config) printf(format string, args ...any) {
	fmt.Fprintf(c.W, format, args...)
}

// trainOpts returns the training options for the timing experiments. Paper
// parameters (batch 512, fanout 30/30/30, hidden 256) are reported next to
// the substituted values.
func (c Config) trainOpts(arch string) train.Options {
	o := train.Options{
		Arch: arch, Heads: 4, Dropout: 0.5, LR: 0.003, Seed: c.Seed,
		Pipeline: c.Pipeline, CacheRows: c.CacheRows, OverlapGrads: c.OverlapGrads,
		CaptureGraph: c.CaptureGraph, Schedule: c.Schedule,
		PagedFeatures: c.PagedFeatures, FeatEncoding: c.FeatEncoding,
		FeatPageRows: c.FeatPageRows, FeatCacheMB: c.FeatCacheMB,
		PagedTopo: c.PagedTopo, TopoPageEdges: c.TopoPageEdges,
		TopoCacheMB:   c.TopoCacheMB,
		PrefetchPages: c.PrefetchPages, CachePolicy: c.CachePolicy,
	}
	if c.Quick {
		o.Batch = 64
		o.Fanouts = []int{5, 5, 5}
		o.Hidden = 32
		o.MaxItersPerEpoch = 2
	} else {
		o.Batch = 128
		o.Fanouts = []int{10, 10, 10}
		o.Hidden = 64
		o.MaxItersPerEpoch = 4
	}
	return o
}

// accuracyOpts returns smaller options for the convergence experiments
// (full epochs, many of them).
func (c Config) accuracyOpts(arch string) train.Options {
	o := train.Options{
		Arch: arch, Heads: 2, Dropout: 0.3, LR: 0.01, Seed: c.Seed,
		Pipeline: c.Pipeline, CacheRows: c.CacheRows, OverlapGrads: c.OverlapGrads,
		CaptureGraph: c.CaptureGraph, Schedule: c.Schedule,
		PagedFeatures: c.PagedFeatures, FeatEncoding: c.FeatEncoding,
		FeatPageRows: c.FeatPageRows, FeatCacheMB: c.FeatCacheMB,
		PagedTopo: c.PagedTopo, TopoPageEdges: c.TopoPageEdges,
		TopoCacheMB:   c.TopoCacheMB,
		PrefetchPages: c.PrefetchPages, CachePolicy: c.CachePolicy,
	}
	if c.Quick {
		o.Batch = 64
		o.Fanouts = []int{4, 4}
		o.Hidden = 16
	} else {
		o.Batch = 128
		o.Fanouts = []int{5, 5}
		o.Hidden = 32
	}
	return o
}

// datasets returns the four evaluation graphs at the configured scale, in
// paper order.
func (c Config) datasets() []dataset.Spec {
	var out []dataset.Spec
	for _, s := range dataset.All() {
		out = append(out, s.Scaled(c.Scale))
	}
	return out
}

// generate memoizes dataset generation within one harness process. The
// cache is shared by concurrently running experiment cells, hence the lock;
// generated datasets themselves are read-only.
var (
	dsMu    sync.Mutex
	dsCache = map[string]*dataset.Dataset{}
)

func generate(spec dataset.Spec) (*dataset.Dataset, error) {
	dsMu.Lock()
	defer dsMu.Unlock()
	if ds, ok := dsCache[spec.Name]; ok {
		return ds, nil
	}
	ds, err := dataset.Generate(spec)
	if err != nil {
		return nil, err
	}
	dsCache[spec.Name] = ds
	return ds, nil
}

// runCells executes n independent experiment cells, concurrently when
// cfg.Parallel is set. Cells must confine writes to their own result slot
// and not touch cfg.W (printing happens after the join, in cell order, so
// reports are byte-identical to a serial run). The lowest-indexed cell
// error is returned, matching what a serial run would have hit first.
//
// In-flight cells are capped at GOMAXPROCS: each cell holds a whole
// simulated machine (up to 64 devices for the multi-node experiments)
// live, so unbounded fan-out inflates the heap and turns into GC time
// instead of speedup once cells outnumber cores.
func (c Config) runCells(n int, fn func(cell int) error) error {
	if !c.Parallel || n <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Framework identifies a training pipeline in reports.
type Framework string

// The compared pipelines.
const (
	FwPyG        Framework = "PyG"
	FwDGL        Framework = "DGL"
	FwWholeGraph Framework = "WholeGraph"
)

// newTrainer builds the trainer for a framework on a fresh machine.
func newTrainer(fw Framework, nodes int, ds *dataset.Dataset, opts train.Options) (*sim.Machine, *train.Trainer, error) {
	m := sim.NewMachine(sim.DGXA100(nodes))
	var tr *train.Trainer
	var err error
	switch fw {
	case FwPyG:
		tr, err = baseline.New(m, ds, opts, baseline.PyG)
	case FwDGL:
		tr, err = baseline.New(m, ds, opts, baseline.DGL)
	case FwWholeGraph:
		tr, err = train.New(m, ds, opts)
		if err == nil {
			registerCaches(tr.Caches())
			registerFeatStores(tr.FeatStores())
			registerTopoStores(tr.TopoStores())
		}
	default:
		err = fmt.Errorf("bench: unknown framework %q", fw)
	}
	if err != nil {
		return nil, nil, err
	}
	registerComm(m)
	m.Reset() // measure training, not store setup
	return m, tr, nil
}

// newStoreTrainer builds a WholeGraph trainer over an existing store
// (used by ablations that customize the store's memory backing).
func newStoreTrainer(m *sim.Machine, store *core.Store, opts train.Options) (*train.Trainer, error) {
	opts = opts.Normalize()
	return train.NewCustom(m, store.DS, opts, func(w int, dev *sim.Device) train.BatchLoader {
		return core.NewLoader(store, dev, opts.Fanouts, opts.Seed+int64(w))
	})
}

// fmtSeconds renders a virtual duration compactly.
func fmtSeconds(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.2f s", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2f ms", s*1e3)
	default:
		return fmt.Sprintf("%.1f us", s*1e6)
	}
}

// sortedKeys returns map keys in sorted order for deterministic reports.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// evalSet returns a fixed random node sample with ground-truth labels for
// accuracy evaluation. The scaled datasets have too few held-out labeled
// nodes for a low-variance estimate (papers100M at 1/1000 has ~120 val
// nodes), but the synthetic generator knows every node's true class, so
// the harness evaluates on a larger sample — a luxury the real datasets do
// not offer, noted in EXPERIMENTS.md.
func evalSet(cfg Config, ds *dataset.Dataset, salt int64) ([]int64, []int32) {
	n := 2048
	if cfg.Quick {
		n = 512
	}
	if int64(n) > ds.Spec.Nodes {
		n = int(ds.Spec.Nodes)
	}
	rng := cfg.seededRand(salt)
	ids := make([]int64, 0, n)
	labels := make([]int32, 0, n)
	seen := make(map[int64]bool, n)
	for len(ids) < n {
		v := rng.Int63n(ds.Spec.Nodes)
		if seen[v] {
			continue // target nodes of a batch must be distinct
		}
		seen[v] = true
		ids = append(ids, v)
		labels = append(labels, ds.Spec.Class(v))
	}
	return ids, labels
}

// seededRand builds a deterministic RNG namespaced by the experiment.
func (c Config) seededRand(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(c.Seed*1000003 + salt))
}
