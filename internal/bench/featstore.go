package bench

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"

	"wholegraph/internal/dataset"
	"wholegraph/internal/featstore"
	"wholegraph/internal/topostore"
)

// FeatstoreVariantRow is one row of the paged-feature-store ablation: the
// flat in-memory slab against the paged store under each encoding.
type FeatstoreVariantRow struct {
	Variant    string    // "flat", "paged/raw", "paged/f16", "paged/q8"
	EpochTime  float64   // virtual seconds, last epoch
	GatherTime float64   // virtual seconds in the gather phase, last epoch
	Losses     []float64 // per-epoch training loss
	// BitIdentical reports whether every epoch's loss equals the flat
	// baseline's bit-for-bit. Must hold for paged/raw; must not be relied
	// on for the lossy encodings.
	BitIdentical  bool
	HitRate       float64 // BlockCache page hit rate
	EncodedBytes  int64   // total encoded feature bytes (virtual)
	ResidentBytes int64   // encoded bytes resident in BlockCaches after the run
}

// AblationFeatstore compares training through the flat feature slab against
// the out-of-core paged store (§IV ablation style): the raw encoding must
// reproduce the slab bit-for-bit while bounding feature residency, and the
// lossy encodings trade feature precision for a 2-4x smaller working set.
func AblationFeatstore(cfg Config) ([]FeatstoreVariantRow, error) {
	cfg = cfg.normalize()
	spec := dataset.OgbnProducts.Scaled(cfg.Scale)
	cfg.printf("Feature store ablation: flat slab vs paged+encoded host features (%s, GraphSAGE)\n", spec.Name)
	ds, err := generate(spec)
	if err != nil {
		return nil, err
	}
	epochs := 3
	if cfg.Quick {
		epochs = 2
	}
	variants := []struct {
		name     string
		paged    bool
		encoding string
	}{
		{"flat", false, ""},
		{"paged/raw", true, "raw"},
		{"paged/f16", true, "f16"},
		{"paged/q8", true, "q8"},
	}
	rows := make([]FeatstoreVariantRow, len(variants))
	err = cfg.runCells(len(variants), func(cell int) error {
		v := variants[cell]
		opts := cfg.trainOpts("graphsage")
		opts.PagedFeatures = v.paged
		opts.FeatEncoding = v.encoding
		if v.paged && opts.FeatPageRows == 0 {
			opts.FeatPageRows = 64
		}
		_, tr, err := newTrainer(FwWholeGraph, 1, ds, opts)
		if err != nil {
			return err
		}
		row := FeatstoreVariantRow{Variant: v.name}
		for e := 0; e < epochs; e++ {
			st := tr.RunEpoch()
			row.Losses = append(row.Losses, st.Loss)
			row.EpochTime = st.EpochTime
			row.GatherTime = st.Timing.Gather
		}
		if v.paged {
			fst := tr.FeatStoreStats()
			row.HitRate = fst.HitRate()
			row.EncodedBytes = fst.EncodedBytes
			row.ResidentBytes = fst.ResidentBytes
		}
		rows[cell] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].BitIdentical = lossesEqual(rows[i].Losses, rows[0].Losses)
	}
	cfg.printf("%-10s %12s %12s %12s %9s %12s %12s %6s\n",
		"variant", "epoch", "gather", "final loss", "hit rate", "encoded", "resident", "exact")
	for _, r := range rows {
		hit, enc, res := "-", "-", "-"
		if strings.HasPrefix(r.Variant, "paged") {
			hit = fmt.Sprintf("%.1f%%", 100*r.HitRate)
			enc = fmtBytes(r.EncodedBytes)
			res = fmtBytes(r.ResidentBytes)
		}
		cfg.printf("%-10s %12s %12s %12.4f %9s %12s %12s %6v\n",
			r.Variant, fmtSeconds(r.EpochTime), fmtSeconds(r.GatherTime),
			r.Losses[len(r.Losses)-1], hit, enc, res, r.BitIdentical)
	}
	return rows, nil
}

func lossesEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FeatstoreFullResult reports the headline out-of-core run: the
// papers100M-shaped graph trained end-to-end through the paged feature and
// topology stores at a scale where neither the flat feature slab nor the
// CSR column array would fit in host memory.
type FeatstoreFullResult struct {
	Dataset string
	Scale   float64
	Nodes   int64
	// EdgesRequested is the spec's undirected edge-pair count at this
	// scale; EdgesStored is the directed CSR entry count the hash-defined
	// edge source realizes (~2x pairs, minus per-node probabilistic
	// rounding). Nothing is capped: the paged topology store serves the
	// full column array without materializing it.
	EdgesRequested int64
	EdgesStored    int64
	Encoding       string
	PageRows       int
	Epochs         int
	EpochTime      float64 // virtual seconds per epoch (last epoch)
	FinalLoss      float64
	HitRate        float64
	// FlatSlabBytes is the float32 slab the paged store replaces (the
	// out-of-core win: this never materializes). EncodedBytes is the
	// virtual encoded feature total; ResidentBytes what the BlockCaches
	// held; CacheBudgetBytes their configured ceiling.
	FlatSlabBytes    int64
	EncodedBytes     int64
	ResidentBytes    int64
	CacheBudgetBytes int64
	// Topology accounting, mirroring the feature fields: TopoBytes is the
	// virtual column array served page-by-page (never materialized),
	// TopoResidentBytes what the topology BlockCaches held after training
	// under the TopoCacheBytes budget, TopoHitRate their page hit rate.
	TopoBytes         int64
	TopoResidentBytes int64
	TopoCacheBytes    int64
	TopoHitRate       float64
	// HostRSSBytes is the process's resident set after training (from
	// /proc/self/status); RSSUnderSlab asserts it stayed below the flat
	// feature slab plus the column array the stores avoided materializing.
	HostRSSBytes int64
	RSSUnderSlab bool
}

// FeatstoreFull trains GraphSAGE on the papers100M-shaped graph through the
// out-of-core paged stores at cfg.Scale. At scale 1.0 the flat feature slab
// would be ~57 GB of float32 (111.1 M nodes x 128 dims) and the CSR column
// array ~26 GB (3.2 B directed entries x 8 B) — neither is ever built:
// features are generated per page on demand and topology pages are decoded
// from the hash-defined edge source, both cached under per-device BlockCache
// budgets with page faults priced through the UM/PCIe model.
func FeatstoreFull(cfg Config) (*FeatstoreFullResult, error) {
	cfg = cfg.normalize()
	spec := dataset.OgbnPapers100M.Scaled(cfg.Scale)
	res := &FeatstoreFullResult{
		Dataset: spec.Name, Scale: cfg.Scale, Nodes: spec.Nodes,
		EdgesRequested: spec.Edges,
	}
	cfg.printf("Out-of-core training: %s at scale %g (%d nodes, %d edge pairs requested)\n",
		spec.Name, cfg.Scale, spec.Nodes, spec.Edges)
	ds, err := dataset.GenerateOutOfCore(spec)
	if err != nil {
		return nil, err
	}
	res.EdgesStored = ds.Topo.NumEdges()
	cfg.printf("edge source defined: %d directed CSR entries (vs %d requested pairs); feature slab of %s and column array of %s stay virtual\n",
		res.EdgesStored, res.EdgesRequested,
		fmtBytes(spec.Nodes*int64(spec.FeatDim)*4), fmtBytes(res.EdgesStored*8))

	opts := cfg.trainOpts("graphsage")
	opts.PagedFeatures = true
	opts.PagedTopo = true
	if opts.FeatEncoding == "" {
		opts.FeatEncoding = "raw"
	}
	if opts.FeatPageRows == 0 {
		// Small pages keep the on-demand page encodes (O(PageRows x dim)
		// host work per miss) tractable at 1e8-node scale.
		opts.FeatPageRows = 16
	}
	_, tr, err := newTrainer(FwWholeGraph, 1, ds, opts)
	if err != nil {
		return nil, err
	}
	// Two epochs minimum: the second revisits the first's training nodes,
	// so the BlockCache hit rates reflect steady-state reuse rather than
	// the cold first pass.
	epochs := 2
	res.Epochs = epochs
	for e := 0; e < epochs; e++ {
		st := tr.RunEpoch()
		res.EpochTime = st.EpochTime
		res.FinalLoss = st.Loss
		cfg.printf("epoch %d: loss %.4f, virtual epoch time %s\n", e+1, st.Loss, fmtSeconds(st.EpochTime))
	}
	fst := tr.FeatStoreStats()
	res.Encoding = fst.Encoding
	res.PageRows = fst.PageRows
	res.HitRate = fst.HitRate()
	res.FlatSlabBytes = spec.Nodes * int64(spec.FeatDim) * 4
	res.EncodedBytes = fst.EncodedBytes
	res.ResidentBytes = fst.ResidentBytes
	res.CacheBudgetBytes = fst.CacheBytes
	tst := tr.TopoStoreStats()
	res.TopoBytes = tst.TopoBytes
	res.TopoResidentBytes = tst.ResidentBytes
	res.TopoCacheBytes = tst.CacheBytes
	res.TopoHitRate = tst.HitRate()
	res.HostRSSBytes = hostRSSBytes()
	avoided := res.FlatSlabBytes + res.TopoBytes
	res.RSSUnderSlab = res.HostRSSBytes > 0 && res.HostRSSBytes < avoided
	cfg.printf("features: encoding %s, %d rows/page, hit rate %.1f%%, resident %s of %s budget\n",
		res.Encoding, res.PageRows, 100*res.HitRate,
		fmtBytes(res.ResidentBytes), fmtBytes(res.CacheBudgetBytes))
	cfg.printf("topology: %s virtual column array, hit rate %.1f%%, resident %s of %s budget\n",
		fmtBytes(res.TopoBytes), 100*res.TopoHitRate,
		fmtBytes(res.TopoResidentBytes), fmtBytes(res.TopoCacheBytes))
	cfg.printf("host RSS %s vs %s avoided (features + topology; under: %v)\n",
		fmtBytes(res.HostRSSBytes), fmtBytes(avoided), res.RSSUnderSlab)
	return res, nil
}

// hostRSSBytes reads the process resident set from /proc/self/status.
// Returns 0 on platforms without procfs.
func hostRSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// fmtBytes renders a byte count compactly.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// featAgg collects every paged feature store the harness builds (only when
// Config.PagedFeatures asks for them), so the CLI can report aggregate
// BlockCache counters in its -json output. Locked: experiment cells build
// trainers concurrently under -parallel.
var featAgg struct {
	sync.Mutex
	stores []*featstore.Store
}

func registerFeatStores(ss []*featstore.Store) {
	if len(ss) == 0 {
		return
	}
	featAgg.Lock()
	featAgg.stores = append(featAgg.stores, ss...)
	featAgg.Unlock()
}

// StoreCounters aggregates BlockCache counters across every paged store of
// one kind (features or topology) built since process start.
type StoreCounters struct {
	Hits             int64 `json:"hits"`
	Misses           int64 `json:"misses"`
	Evictions        int64 `json:"evictions"`
	PrefetchHits     int64 `json:"prefetch_hits"`
	AdmissionRejects int64 `json:"admission_rejects"`
	ResidentBytes    int64 `json:"resident_bytes"`
}

// HitRate returns the fraction of page lookups served from a BlockCache.
func (c StoreCounters) HitRate() float64 {
	if c.Hits+c.Misses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Hits+c.Misses)
}

// FeatStoreCounters sums BlockCache hits, misses, evictions, prefetch hits,
// admission rejects and resident bytes across every paged feature store
// built since process start. All zero unless Config.PagedFeatures was set.
func FeatStoreCounters() StoreCounters {
	featAgg.Lock()
	defer featAgg.Unlock()
	var c StoreCounters
	for _, s := range featAgg.stores {
		st := s.Stats()
		c.Hits += st.Hits
		c.Misses += st.Misses
		c.Evictions += st.Evictions
		c.PrefetchHits += st.PrefetchHits
		c.AdmissionRejects += st.AdmissionRejects
		c.ResidentBytes += st.ResidentBytes
	}
	return c
}

// topoAgg mirrors featAgg for the paged topology stores (built when
// Config.PagedTopo asks for them).
var topoAgg struct {
	sync.Mutex
	stores []*topostore.Store
}

func registerTopoStores(ss []*topostore.Store) {
	if len(ss) == 0 {
		return
	}
	topoAgg.Lock()
	topoAgg.stores = append(topoAgg.stores, ss...)
	topoAgg.Unlock()
}

// TopoStoreCounters sums BlockCache counters across every paged topology
// store built since process start. All zero unless Config.PagedTopo was set.
func TopoStoreCounters() StoreCounters {
	topoAgg.Lock()
	defer topoAgg.Unlock()
	var c StoreCounters
	for _, s := range topoAgg.stores {
		st := s.Stats()
		c.Hits += st.Hits
		c.Misses += st.Misses
		c.Evictions += st.Evictions
		c.PrefetchHits += st.PrefetchHits
		c.AdmissionRejects += st.AdmissionRejects
		c.ResidentBytes += st.ResidentBytes
	}
	return c
}
