package bench

import (
	"wholegraph/internal/dataset"
	"wholegraph/internal/train"
)

// SchedRow reports one cell of the whole-step scheduler ablation: the same
// training run in capture/replay steady state, replayed serially (plain
// CaptureGraph) and through the whole-step scheduler (train.Options.
// Schedule), which list-schedules each step's recovered dependency DAG onto
// the compute and copy streams.
type SchedRow struct {
	Arch    string
	Nodes   int
	Overlap bool // bucketed gradient overlap active in both runs
	// CapturedEpoch / ScheduledEpoch: virtual epoch time of a steady-state
	// epoch. Model math is bit-identical either way.
	CapturedEpoch, ScheduledEpoch float64
	Speedup                       float64
	// Scheduled counts the scheduled run's scheduler-placed replays.
	Scheduled int64
	// LossMatch: every epoch's loss was bit-identical between the two runs.
	LossMatch bool
}

// AblationSched evaluates the whole-step scheduler against plain
// capture/replay: both sides replay the same captured step, but the
// scheduled side re-places the step's kernel charges by list scheduling —
// a Linear's dX and dW backward GEMMs and sibling branches overlap across
// the two streams — and extends the graph bracket over loss and optimizer.
// The scheduler's serial fallback guarantees scheduled <= captured per
// step; the interesting number is how much the DAG's width buys per
// architecture.
func AblationSched(cfg Config) ([]SchedRow, error) {
	cfg = cfg.normalize()
	cfg.printf("Ablation: whole-step DAG scheduling vs plain capture/replay (ogbn-products)\n")
	cfg.printf("%10s %6s %8s %12s %12s %9s %10s %6s\n",
		"arch", "nodes", "overlap", "captured", "scheduled", "speedup", "sched-its", "loss")

	type cell struct {
		arch    string
		nodes   int
		overlap bool
	}
	var cells []cell
	archs := []string{"gcn", "graphsage", "gat"}
	if cfg.Quick {
		archs = []string{"graphsage", "gat"}
	}
	for _, arch := range archs {
		for _, nodes := range []int{1, 2} {
			if cfg.Quick && nodes > 1 && arch != "graphsage" {
				continue
			}
			for _, overlap := range []bool{false, true} {
				if cfg.Quick && overlap && arch != "graphsage" {
					continue
				}
				cells = append(cells, cell{arch, nodes, overlap})
			}
		}
	}

	const warmEpochs, measureEpochs = 2, 1
	rows := make([]SchedRow, len(cells))
	err := cfg.runCells(len(cells), func(i int) error {
		c := cells[i]
		ds, err := generate(dataset.OgbnProducts.Scaled(cfg.Scale))
		if err != nil {
			return err
		}
		opts := cfg.trainOpts(c.arch)
		opts.OverlapGrads = c.overlap

		run := func(schedule bool) (losses []float64, last train.EpochStats, tr *train.Trainer, err error) {
			opts.CaptureGraph = true
			opts.Schedule = schedule
			_, tr, err = newTrainer(FwWholeGraph, c.nodes, ds, opts)
			if err != nil {
				return nil, train.EpochStats{}, nil, err
			}
			for e := 0; e < warmEpochs+measureEpochs; e++ {
				last = tr.RunEpoch()
				losses = append(losses, last.Loss)
			}
			return losses, last, tr, nil
		}
		capLosses, capLast, _, err := run(false)
		if err != nil {
			return err
		}
		schedLosses, schedLast, schedTr, err := run(true)
		if err != nil {
			return err
		}
		match := len(capLosses) == len(schedLosses)
		for e := range capLosses {
			if !match || capLosses[e] != schedLosses[e] {
				match = false
				break
			}
		}
		rows[i] = SchedRow{
			Arch: c.arch, Nodes: c.nodes, Overlap: c.overlap,
			CapturedEpoch: capLast.EpochTime, ScheduledEpoch: schedLast.EpochTime,
			Speedup:   capLast.EpochTime / schedLast.EpochTime,
			Scheduled: schedTr.GraphStats().Scheduled,
			LossMatch: match,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		loss := "match"
		if !r.LossMatch {
			loss = "DRIFT"
		}
		ov := "off"
		if r.Overlap {
			ov = "on"
		}
		cfg.printf("%10s %6d %8s %12s %12s %8.2fx %10d %6s\n",
			r.Arch, r.Nodes, ov, fmtSeconds(r.CapturedEpoch), fmtSeconds(r.ScheduledEpoch),
			r.Speedup, r.Scheduled, loss)
	}
	return rows, nil
}

// GraphCounterTotals is the aggregate step-graph accounting across every
// trainer built since process start.
type GraphCounterTotals struct {
	Captures      int64 `json:"captures"`
	Replays       int64 `json:"replays"`
	Invalidations int64 `json:"invalidations"`
	Fallbacks     int64 `json:"fallbacks"`
	Scheduled     int64 `json:"scheduled"`
}

// GraphCountersTotal reports capture/replay/invalidation/fallback/scheduled
// counts across every trainer built since process start. It reads the train
// package's process-wide atomic totals rather than holding trainers in a
// registry — a registry would keep every cell's machine alive for the run.
func GraphCountersTotal() GraphCounterTotals {
	c := train.GlobalGraphCounters()
	return GraphCounterTotals{
		Captures:      c.Captures,
		Replays:       c.Replays,
		Invalidations: c.Invalidations,
		Fallbacks:     c.Fallbacks,
		Scheduled:     c.Scheduled,
	}
}
