package bench

import (
	"wholegraph/internal/core"
	"wholegraph/internal/dataset"
	"wholegraph/internal/sim"
	"wholegraph/internal/wholemem"
)

// Table1Row is one row of the UM vs P2P latency microbenchmark.
type Table1Row struct {
	SizeGB   float64
	UMLatUs  float64
	P2PLatUs float64
}

// Table1 reproduces Table I: dependent random-access latency over memory
// striped across the 8 GPUs, under Unified Memory vs GPUDirect P2P. The
// pointer chase is real (each access depends on the previous value); the
// per-access service time comes from the calibrated latency models, with
// the working-set size scaled down in backing storage but declared at the
// paper's sizes.
func Table1(cfg Config) ([]Table1Row, error) {
	cfg = cfg.normalize()
	accesses := 100_000
	if cfg.Quick {
		accesses = 5_000
	}
	m := sim.NewMachine(sim.DGXA100(1))
	comm, err := wholemem.NewComm(m.NodeDevs(0))
	if err != nil {
		return nil, err
	}
	// Backing array for the chase: 1M slots standing in for the declared
	// working set.
	const slots = 1 << 20
	mem := wholemem.Alloc[int64](comm, slots)
	rng := cfg.seededRand(1)
	perm := rng.Perm(slots)
	// Random cyclic permutation so the chain visits the whole array.
	for i := 0; i < slots; i++ {
		mem.Set(int64(perm[i]), int64(perm[(i+1)%slots]))
	}

	cfg.printf("Table I: UM vs GPUDirect P2P access latency (us)\n")
	cfg.printf("%-10s %12s %12s\n", "Size (GB)", "UM", "Peer Access")
	var rows []Table1Row
	for _, gb := range []float64{8, 16, 32, 64, 128} {
		dev := m.Devs[0]
		chase := func(kind string) float64 {
			m.Reset()
			idx := int64(0)
			for i := 0; i < accesses; i++ {
				idx = mem.Get(idx)
			}
			if idx < 0 {
				panic("unreachable")
			}
			if kind == "um" {
				return dev.ChaseUM(accesses, gb) / float64(accesses)
			}
			return dev.ChaseP2P(accesses, gb) / float64(accesses)
		}
		row := Table1Row{
			SizeGB:   gb,
			UMLatUs:  chase("um") * 1e6,
			P2PLatUs: chase("p2p") * 1e6,
		}
		rows = append(rows, row)
		cfg.printf("%-10.0f %12.1f %12.2f\n", row.SizeGB, row.UMLatUs, row.P2PLatUs)
	}
	return rows, nil
}

// Table2Row is one dataset row: the paper-scale spec and the generated
// scaled instance.
type Table2Row struct {
	Name                 string
	SpecNodes, SpecEdges int64
	FeatDim              int
	GenNodes, GenEdges   int64
}

// Table2 reproduces Table II: the evaluation datasets. Full-scale counts
// come from the specs; the generated columns show the scaled instances the
// other experiments run on.
func Table2(cfg Config) ([]Table2Row, error) {
	cfg = cfg.normalize()
	cfg.printf("Table II: evaluation graphs (spec @ full scale, generated @ %g)\n", cfg.Scale)
	cfg.printf("%-18s %12s %12s %6s %12s %12s\n", "Graph", "Nodes", "Edges", "Feat", "GenNodes", "GenEdges")
	var rows []Table2Row
	for _, full := range dataset.All() {
		ds, err := generate(full.Scaled(cfg.Scale))
		if err != nil {
			return nil, err
		}
		row := Table2Row{
			Name:      full.Name,
			SpecNodes: full.Nodes,
			SpecEdges: full.Edges,
			FeatDim:   full.FeatDim,
			GenNodes:  ds.Graph.N,
			GenEdges:  ds.NumEdgePairs(),
		}
		rows = append(rows, row)
		cfg.printf("%-18s %12d %12d %6d %12d %12d\n",
			row.Name, row.SpecNodes, row.SpecEdges, row.FeatDim, row.GenNodes, row.GenEdges)
	}
	return rows, nil
}

// Table3Row reports validation/test accuracy for one dataset+model across
// the three frameworks.
type Table3Row struct {
	Dataset, Model string
	Valid, Test    map[Framework]float64
}

// Table3 reproduces Table III: PyG, DGL and WholeGraph converge to the same
// accuracy because they train the same models on the same samples; the
// table verifies the parity on the two labeled datasets.
func Table3(cfg Config) ([]Table3Row, error) {
	cfg = cfg.normalize()
	specs := []dataset.Spec{
		dataset.OgbnProducts.Scaled(cfg.Scale),
		dataset.OgbnPapers100M.Scaled(cfg.Scale),
	}
	models := []string{"gcn", "graphsage", "gat"}
	fws := []Framework{FwDGL, FwPyG, FwWholeGraph}
	cfg.printf("Table III: validation/test accuracy after %d epochs\n", cfg.Epochs)
	cfg.printf("%-22s %-10s %18s %18s %18s\n", "Graph", "Model", "DGL", "PyG", "WholeGraph")
	// One cell per dataset x model; each cell trains all three frameworks
	// on its own machines. Datasets and eval sets are prepared up front
	// (they are shared read-only across cells), rows print after the join.
	type t3cell struct {
		ds                   *dataset.Dataset
		valIDs, testIDs      []int64
		valLabels, tstLabels []int32
		arch                 string
	}
	var cells []t3cell
	for _, spec := range specs {
		ds, err := generate(spec)
		if err != nil {
			return nil, err
		}
		valIDs, valLabels := evalSet(cfg, ds, 3)
		testIDs, testLabels := evalSet(cfg, ds, 4)
		for _, arch := range models {
			cells = append(cells, t3cell{ds, valIDs, testIDs, valLabels, testLabels, arch})
		}
	}
	rows := make([]Table3Row, len(cells))
	err := cfg.runCells(len(cells), func(ci int) error {
		c := cells[ci]
		row := Table3Row{
			Dataset: c.ds.Spec.Name, Model: c.arch,
			Valid: map[Framework]float64{}, Test: map[Framework]float64{},
		}
		for _, fw := range fws {
			_, tr, err := newTrainer(fw, 1, c.ds, cfg.accuracyOpts(c.arch))
			if err != nil {
				return err
			}
			for e := 0; e < cfg.Epochs; e++ {
				tr.RunEpoch()
			}
			row.Valid[fw] = tr.EvaluateWithLabels(c.valIDs, c.valLabels)
			row.Test[fw] = tr.EvaluateWithLabels(c.testIDs, c.tstLabels)
		}
		rows[ci] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		cfg.printf("%-22s %-10s   %6.2f%% / %6.2f%%  %6.2f%% / %6.2f%%  %6.2f%% / %6.2f%%\n",
			row.Dataset, row.Model,
			100*row.Valid[FwDGL], 100*row.Test[FwDGL],
			100*row.Valid[FwPyG], 100*row.Test[FwPyG],
			100*row.Valid[FwWholeGraph], 100*row.Test[FwWholeGraph])
	}
	return rows, nil
}

// Table4Result reports the memory accounting for ogbn-papers100M.
type Table4Result struct {
	// Measured bytes per GPU on the scaled instance.
	ScaledStructPerGPU, ScaledFeatPerGPU int64
	// Extrapolated to full scale (divide by the scale factor), in GB.
	FullStructPerGPU, FullFeatPerGPU float64
	// Theoretical full-scale totals (paper: 24 GB structure, 53 GB
	// features), in GB.
	TheoryStructTotal, TheoryFeatTotal float64
	// Estimated full-scale training memory per GPU in GB (paper: 20.4).
	TrainPerGPU float64
}

// Table4 reproduces Table IV: where ogbn-papers100M's bytes live. The
// scaled store is measured for real; full-scale numbers extrapolate by the
// scale factor and are checked against the paper's theoretical totals.
func Table4(cfg Config) (*Table4Result, error) {
	cfg = cfg.normalize()
	spec := dataset.OgbnPapers100M.Scaled(cfg.Scale)
	ds, err := generate(spec)
	if err != nil {
		return nil, err
	}
	m := sim.NewMachine(sim.DGXA100(1))
	store, err := core.NewStore(m, 0, ds)
	if err != nil {
		return nil, err
	}
	res := &Table4Result{}
	// Mean per GPU: hash partitioning balances nodes; the synthetic power
	// law at small scale can park a mega-hub's edges on one rank, so the
	// mean is the representative per-GPU figure the paper reports.
	var structSum, featSum int64
	for _, b := range store.PG.StructureBytesPerRank() {
		structSum += b
	}
	for _, b := range store.PG.FeatureBytesPerRank() {
		featSum += b
	}
	ranks := int64(store.Comm.Size())
	res.ScaledStructPerGPU = structSum / ranks
	res.ScaledFeatPerGPU = featSum / ranks
	res.FullStructPerGPU = float64(res.ScaledStructPerGPU) / cfg.Scale / 1e9
	res.FullFeatPerGPU = float64(res.ScaledFeatPerGPU) / cfg.Scale / 1e9

	full := dataset.OgbnPapers100M
	// Paper accounting: undirected doubles the 1.6B edges, 8 bytes each.
	res.TheoryStructTotal = float64(2*full.Edges*8) / 1e9
	res.TheoryFeatTotal = float64(full.Nodes*int64(full.FeatDim)*4) / 1e9

	// Training memory estimate at paper parameters: per-layer activation
	// footprints (forward + backward + Adam temporaries) using the layer
	// fan-out volumes with the deduplication ratio measured on the scaled
	// graph.
	res.TrainPerGPU = estimateTrainingGB(store, full.Nodes, 512, []int{30, 30, 30}, full.FeatDim, 256, full.NumClasses)

	cfg.printf("Table IV: memory usage of WholeGraph for ogbn-papers100M (per GPU, full-scale)\n")
	cfg.printf("%-18s %22s %22s\n", "", "Measured/GPU (GB)", "Theoretical total (GB)")
	cfg.printf("%-18s %22.1f %22.1f\n", "Graph Structure", res.FullStructPerGPU, res.TheoryStructTotal)
	cfg.printf("%-18s %22.1f %22.1f\n", "Node Feature", res.FullFeatPerGPU, res.TheoryFeatTotal)
	cfg.printf("%-18s %22.1f %22s\n", "Training (est.)", res.TrainPerGPU, "-")
	return res, nil
}

// estimateTrainingGB estimates the per-GPU training footprint at full
// scale: model and optimizer state plus per-layer activation tensors for
// forward, backward and workspace copies. The per-hop deduplication ratio
// is measured with one real batch on the scaled graph; hop volumes then
// expand at the paper's batch size and fanouts, capped by the full graph
// size.
func estimateTrainingGB(store *core.Store, fullNodes int64, batch int, fanouts []int, inDim, hidden, classes int) float64 {
	ld := core.NewLoader(store, store.Comm.Devs[0], []int{5, 5, 5}, 99)
	n := 64
	if len(store.DS.Train) < n {
		n = len(store.DS.Train)
	}
	b, _ := ld.BuildBatch(store.DS.Train[:n])
	dedup := make([]float64, len(b.Blocks))
	for l, blk := range b.Blocks {
		raw := float64(blk.NumTargets) * 5
		dedup[l] = float64(blk.NumNodes-blk.NumTargets) / raw
		if dedup[l] > 1 {
			dedup[l] = 1
		}
	}
	nodes := float64(batch)
	var act float64
	// Input dimension of each expanding hop, outermost last: the innermost
	// (largest) set carries raw features.
	for l := len(fanouts) - 1; l >= 0; l-- {
		d := hidden
		if l == 0 {
			d = inDim
		}
		keep := dedup[min(l, len(dedup)-1)]
		next := nodes + nodes*float64(fanouts[l])*keep
		if next > float64(fullNodes) {
			next = float64(fullNodes)
		}
		// Activations in+out, gradients, and two workspace copies.
		act += next * float64(d) * 4 * 5
		nodes = next
	}
	params := float64((inDim+hidden)*hidden+hidden*classes) * 4
	return (act + params*4) / 1e9
}

// SetupResult reports the distributed shared memory setup cost (§III-B).
type SetupResult struct {
	SizeGB  float64
	Seconds float64
}

// Setup measures the one-time shared-memory construction cost the paper
// quotes as "tens to one or two hundred milliseconds".
func Setup(cfg Config) ([]SetupResult, error) {
	cfg = cfg.normalize()
	cfg.printf("Shared-memory setup cost (one-time, per allocation)\n")
	var out []SetupResult
	for _, gb := range []float64{1, 8, 32, 128} {
		m := sim.NewMachine(sim.DGXA100(1))
		comm, err := wholemem.NewComm(m.NodeDevs(0))
		if err != nil {
			return nil, err
		}
		// Allocate a small real backing array; the charged cost uses the
		// declared size through a synthetic malloc charge per rank.
		wholemem.Alloc[int64](comm, 1<<16)
		for _, d := range m.NodeDevs(0) {
			d.Malloc(gb * 1e9 / 8)
		}
		out = append(out, SetupResult{SizeGB: gb, Seconds: m.MaxTime()})
		cfg.printf("  %6.0f GB: %s\n", gb, fmtSeconds(m.MaxTime()))
	}
	return out, nil
}
