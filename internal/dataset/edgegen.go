package dataset

import (
	"math"
	"sync"
)

// EdgeGen defines a graph's adjacency as a pure function: every node's
// out-degree and every neighbor slot (v, k) are computed from the spec
// seed by hashing, so the edge list is never materialized — the topology
// analogue of FeatureGen. It mirrors the marginal structure of Generate's
// COO sampler (Zipf degrees scattered by the affine permutation,
// homophilous endpoints, no self-loops) without replaying its sequential
// RNG, which is what makes O(1) random access possible: papers100M's
// 3.2B stored edges (~26 GB of CSR column) stay virtual, paged in range
// by range through internal/topostore.
//
// EdgeGen satisfies graph.TopoSource structurally.
type EdgeGen struct {
	spec Spec
	perm affinePerm

	// Expected degree model: d(v) = zipfCoef*P(slot(v)) + unif, where
	// P(k) = (k+1)^{-s} / hNorm is the popularity of slot k. For
	// undirected specs both endpoints of a pair contribute stored degree
	// (Zipf as source, Zipf-or-uniform-in-class as destination), giving
	// zipfCoef = Edges*(2-Homophily) and unif = Edges*Homophily/Nodes.
	hNorm    float64
	zipfCoef float64
	unif     float64

	// Inverse-CDF constants for the continuous Zipf endpoint draw:
	// slot(t) = floor((1 + t*powA)^{powInv}) - 1 over slots [0, n).
	powA   float64
	powInv float64

	once  sync.Once
	total int64
}

// NewEdgeGen builds the generator for s (spec must validate).
func NewEdgeGen(s Spec) *EdgeGen {
	n := s.Nodes
	g := &EdgeGen{spec: s, perm: newAffinePerm(n)}
	g.hNorm = zipfNorm(n, s.ZipfS)
	e := float64(s.Edges)
	if s.Undirected {
		g.zipfCoef = e * (2 - s.Homophily)
		g.unif = e * s.Homophily / float64(n)
	} else {
		g.zipfCoef = e
	}
	g.powA = math.Pow(float64(n+1), 1-s.ZipfS) - 1
	g.powInv = 1 / (1 - s.ZipfS)
	return g
}

// zipfNorm computes H(n,s) = sum_{j=1..n} j^{-s}: an exact partial sum
// over the head (where the mass is) plus the midpoint-rule integral tail,
// so full-size specs (n > 1e8) don't pay 1e8 Pow calls at construction.
func zipfNorm(n int64, s float64) float64 {
	head := n
	if head > 100_000 {
		head = 100_000
	}
	var h float64
	for j := int64(1); j <= head; j++ {
		h += math.Pow(float64(j), -s)
	}
	if head < n {
		// integral of x^-s over [head+0.5, n+0.5]
		h += (math.Pow(float64(n)+0.5, 1-s) - math.Pow(float64(head)+0.5, 1-s)) / (1 - s)
	}
	return h
}

// NumNodes implements graph.TopoSource.
func (g *EdgeGen) NumNodes() int64 { return g.spec.Nodes }

// Degree returns node v's stored out-degree: the expected degree of its
// popularity slot, probabilistically rounded by a per-node hash and
// capped at n-1. Deterministic in (spec, v).
func (g *EdgeGen) Degree(v int64) int64 {
	slot := g.perm.invert(v)
	d := g.zipfCoef*math.Pow(float64(slot+1), -g.spec.ZipfS)/g.hNorm + g.unif
	base := math.Floor(d)
	u := uniform(mix64(g.hashBase(v, -1) + gamma1))
	deg := int64(base)
	if u < d-base {
		deg++
	}
	if max := g.spec.Nodes - 1; deg > max {
		deg = max
	}
	return deg
}

// NumEdges returns the total stored (directed) edge count, the sum of all
// realized degrees. Computed once, lazily: O(n) with one Pow per node.
func (g *EdgeGen) NumEdges() int64 {
	g.once.Do(func() {
		var t int64
		for v := int64(0); v < g.spec.Nodes; v++ {
			t += g.Degree(v)
		}
		g.total = t
	})
	return g.total
}

// FillNeighbors implements graph.TopoSource: it writes neighbor slots
// [k0, k1) of node v into dst. Each slot is an independent hash draw
// mirroring Generate's endpoint sampler: with probability Homophily a
// uniform same-class node, otherwise a Zipf-popular node via the inverse
// CDF, with a hashed re-draw displacing self-loops.
func (g *EdgeGen) FillNeighbors(v, k0, k1 int64, dst []int64) {
	s := g.spec
	n := s.Nodes
	c := int64(s.NumClasses)
	cls := v % c
	cnt := (n-cls-1)/c + 1
	for k := k0; k < k1; k++ {
		base := g.hashBase(v, k)
		u1 := uniform(mix64(base + gamma1))
		u2 := mix64(base + gamma2)
		var d int64
		if u1 < s.Homophily {
			d = cls + c*int64(u2%uint64(cnt))
		} else {
			d = g.perm.apply(g.zipfSlot(uniform(u2)))
		}
		if d == v {
			u3 := mix64(base + gamma3)
			d = (v + 1 + int64(u3%uint64(n-1))) % n
		}
		dst[k-k0] = d
	}
}

// NeighborAt returns the single neighbor at slot (v, k).
func (g *EdgeGen) NeighborAt(v, k int64) int64 {
	var one [1]int64
	g.FillNeighbors(v, k, k+1, one[:])
	return one[0]
}

// zipfSlot inverts the continuous Zipf CDF: t in [0,1) to a slot in
// [0, n) with P(slot) ~ (slot+1)^-s.
func (g *EdgeGen) zipfSlot(t float64) int64 {
	x := math.Pow(1+t*g.powA, g.powInv)
	slot := int64(x) - 1
	if slot < 0 {
		slot = 0
	}
	if max := g.spec.Nodes - 1; slot > max {
		slot = max
	}
	return slot
}

// Wrapped multiples of the splitmix64 golden gamma, salting the
// independent per-slot draws.
const (
	gamma1 uint64 = 0x9e3779b97f4a7c15
	gamma2 uint64 = 0x3c6ef372fe94f82a // 2*gamma1 mod 2^64
	gamma3 uint64 = 0xdaa66d2c7ddf743f // 3*gamma1 mod 2^64
)

// hashBase keys the (v, k) slot; k = -1 keys per-node draws.
func (g *EdgeGen) hashBase(v, k int64) uint64 {
	return uint64(g.spec.Seed)*gamma1 +
		uint64(v)*0xbf58476d1ce4e5b9 + uint64(k)*0x94d049bb133111eb
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// uniform maps a hash to [0,1) with 53 bits of precision.
func uniform(h uint64) float64 { return float64(h>>11) / (1 << 53) }
