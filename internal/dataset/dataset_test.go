package dataset

import (
	"bytes"
	"math"
	"os"
	"strings"
	"testing"
)

func smallSpec() Spec {
	s := OgbnProducts.Scaled(0.001) // ~2400 nodes, ~62k edges
	return s
}

func TestValidate(t *testing.T) {
	for _, s := range All() {
		if err := s.Validate(); err != nil {
			t.Errorf("registry spec %s invalid: %v", s.Name, err)
		}
	}
	bad := OgbnProducts
	bad.ZipfS = 1.0
	if err := bad.Validate(); err == nil {
		t.Error("ZipfS=1 accepted")
	}
	bad = OgbnProducts
	bad.NumClasses = 1
	if err := bad.Validate(); err == nil {
		t.Error("NumClasses=1 accepted")
	}
	bad = OgbnProducts
	bad.TrainFrac = 0.9
	bad.ValFrac = 0.2
	if err := bad.Validate(); err == nil {
		t.Error("overlapping split accepted")
	}
}

func TestScaled(t *testing.T) {
	s := OgbnPapers100M.Scaled(0.0001)
	if s.Nodes != 11110 || s.Edges != 160000 {
		t.Errorf("scaled sizes: %d nodes %d edges", s.Nodes, s.Edges)
	}
	if s.FeatDim != 128 {
		t.Errorf("scaling changed feature dim")
	}
	if s.Name == OgbnPapers100M.Name {
		t.Error("scaled name should record the factor")
	}
	// Scale floor keeps tiny factors usable.
	tiny := OgbnProducts.Scaled(1e-9)
	if tiny.Nodes < 64 || tiny.Edges < 128 {
		t.Errorf("scale floor violated: %d/%d", tiny.Nodes, tiny.Edges)
	}
}

func TestGenerateShapes(t *testing.T) {
	d, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	s := d.Spec
	if d.Graph.N != s.Nodes {
		t.Fatalf("nodes = %d, want %d", d.Graph.N, s.Nodes)
	}
	if d.NumEdgePairs() != s.Edges {
		t.Fatalf("edge pairs = %d, want %d", d.NumEdgePairs(), s.Edges)
	}
	if d.Graph.NumEdges() != 2*s.Edges {
		t.Fatalf("undirected storage should double edges: %d", d.Graph.NumEdges())
	}
	if int64(len(d.Feat)) != s.Nodes*int64(s.FeatDim) {
		t.Fatalf("feature length %d", len(d.Feat))
	}
	nLab := len(d.Train) + len(d.Val) + len(d.Test)
	wantLab := int(float64(s.Nodes) * s.LabelRatio)
	if nLab < wantLab-1 || nLab > wantLab+1 {
		t.Errorf("labeled = %d, want ~%d", nLab, wantLab)
	}
	if len(d.Train) < 7*nLab/10 {
		t.Errorf("train split too small: %d of %d", len(d.Train), nLab)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("edge counts differ across runs")
	}
	for i := range a.Graph.Col {
		if a.Graph.Col[i] != b.Graph.Col[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
	for i := range a.Feat {
		if a.Feat[i] != b.Feat[i] {
			t.Fatalf("feature %d differs", i)
		}
	}
	for i := range a.Train {
		if a.Train[i] != b.Train[i] {
			t.Fatalf("train id %d differs", i)
		}
	}
}

func TestLabelsConsistent(t *testing.T) {
	d, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	s := d.Spec
	seen := map[int64]bool{}
	for _, set := range [][]int64{d.Train, d.Val, d.Test} {
		for _, v := range set {
			if seen[v] {
				t.Fatalf("node %d appears in two splits", v)
			}
			seen[v] = true
			if d.Labels[v] != s.Class(v) {
				t.Fatalf("label of %d = %d, want %d", v, d.Labels[v], s.Class(v))
			}
			if d.Labels[v] < 0 || d.Labels[v] >= int32(s.NumClasses) {
				t.Fatalf("label of %d out of range: %d", v, d.Labels[v])
			}
		}
	}
	unlabeled := 0
	for _, l := range d.Labels {
		if l == -1 {
			unlabeled++
		}
	}
	if unlabeled == 0 {
		t.Error("no unlabeled nodes despite LabelRatio < 1")
	}
}

func TestDegreeDistributionHeavyTailed(t *testing.T) {
	d, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	maxDeg := d.Graph.MaxDegree()
	avg := float64(d.Graph.NumEdges()) / float64(d.Graph.N)
	if float64(maxDeg) < 10*avg {
		t.Errorf("max degree %d not heavy-tailed vs avg %.1f", maxDeg, avg)
	}
}

func TestHomophily(t *testing.T) {
	d, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	s := d.Spec
	same, total := 0, 0
	for v := int64(0); v < d.Graph.N; v++ {
		for _, w := range d.Graph.Neighbors(v) {
			total++
			if s.Class(v) == s.Class(w) {
				same++
			}
		}
	}
	frac := float64(same) / float64(total)
	// With homophily 0.6 and 47 classes, same-class edges should be far
	// above the 1/47 random baseline.
	if frac < 0.3 {
		t.Errorf("same-class edge fraction = %.3f, want >= 0.3", frac)
	}
}

func TestFeaturesClassSeparated(t *testing.T) {
	d, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	s := d.Spec
	dim := s.FeatDim
	// Mean intra-class distance to the class mean must be below the mean
	// distance to another class's mean — otherwise nothing is learnable.
	means := make([]float64, s.NumClasses*dim)
	counts := make([]float64, s.NumClasses)
	for v := int64(0); v < s.Nodes; v++ {
		c := int(s.Class(v))
		counts[c]++
		for j := 0; j < dim; j++ {
			means[c*dim+j] += float64(d.Feat[v*int64(dim)+int64(j)])
		}
	}
	for c := 0; c < s.NumClasses; c++ {
		for j := 0; j < dim; j++ {
			means[c*dim+j] /= counts[c]
		}
	}
	dist := func(v int64, c int) float64 {
		var sum float64
		for j := 0; j < dim; j++ {
			df := float64(d.Feat[v*int64(dim)+int64(j)]) - means[c*dim+j]
			sum += df * df
		}
		return math.Sqrt(sum)
	}
	var own, other float64
	n := int64(500)
	for v := int64(0); v < n; v++ {
		c := int(s.Class(v))
		own += dist(v, c)
		other += dist(v, (c+1)%s.NumClasses)
	}
	if own >= other {
		t.Errorf("features not class-separated: own dist %.2f >= other %.2f", own/float64(n), other/float64(n))
	}
}

func TestRegistryComplete(t *testing.T) {
	for _, name := range []string{"ogbn-products", "ogbn-papers100M", "Friendster", "UK_domain"} {
		if _, ok := Registry[name]; !ok {
			t.Errorf("registry missing %s", name)
		}
	}
	if len(All()) != 4 {
		t.Errorf("All() returned %d specs", len(All()))
	}
}

func TestNoSelfLoops(t *testing.T) {
	d, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < d.Graph.N; v++ {
		for _, w := range d.Graph.Neighbors(v) {
			if w == v {
				t.Fatalf("self loop at %d", v)
			}
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	orig, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/ds.bin"
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec != orig.Spec {
		t.Fatalf("spec mismatch: %+v vs %+v", got.Spec, orig.Spec)
	}
	if got.Graph.N != orig.Graph.N || got.Graph.NumEdges() != orig.Graph.NumEdges() {
		t.Fatal("graph size mismatch")
	}
	for i := range orig.Graph.Col {
		if got.Graph.Col[i] != orig.Graph.Col[i] {
			t.Fatalf("col %d differs", i)
		}
	}
	for i := range orig.Feat {
		if got.Feat[i] != orig.Feat[i] {
			t.Fatalf("feat %d differs", i)
		}
	}
	for i := range orig.Labels {
		if got.Labels[i] != orig.Labels[i] {
			t.Fatalf("label %d differs", i)
		}
	}
	for i := range orig.Train {
		if got.Train[i] != orig.Train[i] {
			t.Fatalf("train %d differs", i)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a dataset")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader("WGDS")); err == nil {
		t.Error("truncated file accepted")
	}
	// Wrong version.
	var sb strings.Builder
	sb.WriteString("WGDS")
	sb.Write([]byte{99, 0, 0, 0})
	if _, err := Load(strings.NewReader(sb.String())); err == nil {
		t.Error("wrong version accepted")
	}
}

// TestLoadDetectsCorruption: flipping any byte after the version word makes
// the CRC-32C trailer reject the file.
func TestLoadDetectsCorruption(t *testing.T) {
	orig, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/ds.bin"
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{16, len(raw) / 2, len(raw) - 10} {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x01
		_, err := Load(bytes.NewReader(bad))
		if err == nil {
			t.Fatalf("corruption at offset %d accepted", off)
		}
		if !strings.Contains(err.Error(), "checksum") && !strings.Contains(err.Error(), "read") {
			t.Logf("offset %d surfaced as: %v", off, err)
		}
	}
	// Truncation (losing part of the trailer) is also rejected.
	if _, err := Load(bytes.NewReader(raw[:len(raw)-2])); err == nil {
		t.Error("truncated trailer accepted")
	}
}

// TestLoadRejectsV1: pre-checksum files are refused with a clear message
// instead of being misparsed.
func TestLoadRejectsV1(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("WGDS")
	buf.Write([]byte{1, 0, 0, 0})
	_, err := Load(&buf)
	if err == nil {
		t.Fatal("v1 file accepted")
	}
	if !strings.Contains(err.Error(), "version 1") {
		t.Errorf("unhelpful v1 error: %v", err)
	}
}

// TestOutOfCoreEquivalence: GenerateOutOfCore must agree with its in-RAM
// twin MaterializeOutOfCore on everything — adjacency (hash-defined vs
// materialized CSR), labels, splits, and every feature row bit-exactly —
// while materializing nothing itself.
func TestOutOfCoreEquivalence(t *testing.T) {
	spec := smallSpec()
	full, err := MaterializeOutOfCore(spec)
	if err != nil {
		t.Fatal(err)
	}
	ooc, err := GenerateOutOfCore(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ooc.Feat != nil {
		t.Fatal("out-of-core dataset materialized a slab")
	}
	if ooc.Graph != nil {
		t.Fatal("out-of-core dataset materialized a CSR")
	}
	if ooc.Gen == nil || ooc.Topo == nil {
		t.Fatal("out-of-core dataset missing a generator")
	}
	if full.Graph == nil || full.Topo == nil || full.Feat == nil {
		t.Fatal("materialized twin incomplete")
	}
	n := spec.Nodes
	if full.Graph.N != n || ooc.Topo.NumNodes() != n {
		t.Fatal("node counts differ")
	}
	if got, want := ooc.Topo.NumEdges(), full.Graph.NumEdges(); got != want {
		t.Fatalf("edge counts differ: %d != %d", got, want)
	}
	if got, want := ooc.NumEdgePairs(), full.NumEdgePairs(); got != want {
		t.Fatalf("edge pairs differ: %d != %d", got, want)
	}
	// Adjacency: every row of the materialized CSR must equal the
	// hash-defined lists, both whole-row and sliced.
	buf := make([]int64, 0)
	for v := int64(0); v < n; v++ {
		deg := ooc.Topo.Degree(v)
		if got := full.Graph.Degree(v); got != deg {
			t.Fatalf("node %d degree %d != %d", v, deg, got)
		}
		if int64(cap(buf)) < deg {
			buf = make([]int64, deg)
		}
		row := buf[:deg]
		ooc.Topo.FillNeighbors(v, 0, deg, row)
		want := full.Graph.Neighbors(v)
		for k, d := range row {
			if d == v {
				t.Fatalf("self-loop at node %d slot %d", v, k)
			}
			if d < 0 || d >= n {
				t.Fatalf("node %d slot %d out of range: %d", v, k, d)
			}
			if d != want[k] {
				t.Fatalf("node %d slot %d: %d != %d", v, k, d, want[k])
			}
		}
		// Sliced fill must agree with the whole-row fill.
		if deg >= 2 {
			half := make([]int64, deg-1)
			ooc.Topo.FillNeighbors(v, 1, deg, half)
			for k, d := range half {
				if d != row[k+1] {
					t.Fatalf("node %d sliced fill diverges at slot %d", v, k+1)
				}
			}
		}
	}
	for i := range full.Labels {
		if ooc.Labels[i] != full.Labels[i] {
			t.Fatalf("label %d differs", i)
		}
	}
	for i := range full.Train {
		if ooc.Train[i] != full.Train[i] {
			t.Fatalf("train split %d differs", i)
		}
	}
	for i := range full.Val {
		if ooc.Val[i] != full.Val[i] {
			t.Fatalf("val split %d differs", i)
		}
	}
	dim := spec.FeatDim
	row := make([]float32, dim)
	for _, v := range []int64{0, 1, n / 2, n - 1} {
		ooc.FillFeatRow(v, row)
		for j := 0; j < dim; j++ {
			want := full.Feat[v*int64(dim)+int64(j)]
			if math.Float32bits(row[j]) != math.Float32bits(want) {
				t.Fatalf("node %d col %d: %g != %g", v, j, row[j], want)
			}
		}
	}
	// Out-of-core datasets cannot be saved (no slab, no CSR to write).
	if err := ooc.Save(&bytes.Buffer{}); err == nil {
		t.Error("Save accepted an out-of-core dataset")
	}
}

// TestEdgeGenDeterminism: two independently constructed generators agree,
// and the degree model produces the spec's edge budget with a heavy tail.
func TestEdgeGenDeterminism(t *testing.T) {
	spec := smallSpec()
	a, b := NewEdgeGen(spec), NewEdgeGen(spec)
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edge totals differ: %d != %d", a.NumEdges(), b.NumEdges())
	}
	n := spec.Nodes
	var maxDeg int64
	buf1 := make([]int64, 64)
	buf2 := make([]int64, 64)
	for v := int64(0); v < n; v += 7 {
		if a.Degree(v) != b.Degree(v) {
			t.Fatalf("degree(%d) differs", v)
		}
		deg := a.Degree(v)
		if deg > maxDeg {
			maxDeg = deg
		}
		k1 := deg
		if k1 > 64 {
			k1 = 64
		}
		a.FillNeighbors(v, 0, k1, buf1[:k1])
		b.FillNeighbors(v, 0, k1, buf2[:k1])
		for k := int64(0); k < k1; k++ {
			if buf1[k] != buf2[k] {
				t.Fatalf("neighbor (%d,%d) differs", v, k)
			}
		}
	}
	// Stored edges ~ 2x pairs (undirected), within rounding of the target.
	stored := a.NumEdges()
	want := 2 * spec.Edges
	if stored < want/2 || stored > want+want/2 {
		t.Errorf("stored edges %d far from target %d", stored, want)
	}
	// Heavy tail: the hub degree dwarfs the mean.
	mean := float64(stored) / float64(n)
	if float64(maxDeg) < 10*mean {
		t.Errorf("max degree %d not heavy-tailed (mean %.1f)", maxDeg, mean)
	}
	if maxDeg > n-1 {
		t.Errorf("max degree %d exceeds cap %d", maxDeg, n-1)
	}
	// Homophily: a large same-class neighbor fraction (spec.Homophily 0.6
	// plus same-class mass from the power-law draw).
	same, total := 0, 0
	c := int64(spec.NumClasses)
	for v := int64(0); v < n; v += 11 {
		deg := a.Degree(v)
		if deg > 32 {
			deg = 32
		}
		a.FillNeighbors(v, 0, deg, buf1[:deg])
		for _, d := range buf1[:deg] {
			if d%c == v%c {
				same++
			}
			total++
		}
	}
	if frac := float64(same) / float64(total); frac < 0.4 {
		t.Errorf("same-class neighbor fraction %.2f too low for homophily %.2f", frac, spec.Homophily)
	}
}

// TestOutOfCoreRejectsWeighted: edge weights need a materialized column.
func TestOutOfCoreRejectsWeighted(t *testing.T) {
	spec := smallSpec()
	spec.Weighted = true
	if _, err := GenerateOutOfCore(spec); err == nil {
		t.Error("weighted out-of-core dataset accepted")
	}
	if _, err := MaterializeOutOfCore(spec); err == nil {
		t.Error("weighted materialized-out-of-core dataset accepted")
	}
}
