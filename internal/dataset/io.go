package dataset

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"wholegraph/internal/graph"
)

// Binary dataset serialization, so expensive generations (the larger scale
// factors take minutes) can be produced once with wggen and reloaded by the
// harness. Format v2: a magic string, a format version, then a JSON-encoded
// Spec header and the raw little-endian arrays with length prefixes, all
// covered by a trailing CRC-32C so a truncated or bit-flipped cache file
// fails loudly instead of deserializing garbage.

const (
	ioMagic = "WGDS"
	// ioVersion 2 added the CRC-32C trailer; v1 files (no checksum) are
	// rejected and must be regenerated.
	ioVersion = uint32(2)
)

// crcTable is the Castagnoli polynomial, hardware-accelerated on amd64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// CRC32Writer wraps a writer and folds everything written into a running
// CRC-32C. Shared by the dataset format and the feature-store page spill.
type CRC32Writer struct {
	w   io.Writer
	sum uint32
}

// NewCRC32Writer starts a checksummed section on w.
func NewCRC32Writer(w io.Writer) *CRC32Writer { return &CRC32Writer{w: w} }

// Write implements io.Writer.
func (c *CRC32Writer) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.sum = crc32.Update(c.sum, crcTable, p[:n])
	return n, err
}

// Sum32 returns the checksum of everything written so far.
func (c *CRC32Writer) Sum32() uint32 { return c.sum }

// CRC32Reader wraps a reader and folds everything read into a running
// CRC-32C, for verifying a CRC32Writer trailer.
type CRC32Reader struct {
	r   io.Reader
	sum uint32
}

// NewCRC32Reader starts a checksummed section on r.
func NewCRC32Reader(r io.Reader) *CRC32Reader { return &CRC32Reader{r: r} }

// Read implements io.Reader.
func (c *CRC32Reader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.sum = crc32.Update(c.sum, crcTable, p[:n])
	return n, err
}

// Sum32 returns the checksum of everything read so far.
func (c *CRC32Reader) Sum32() uint32 { return c.sum }

// Save writes the dataset in the binary format.
func (d *Dataset) Save(w io.Writer) error {
	if d.Feat == nil && d.Gen != nil {
		return fmt.Errorf("dataset: %s is out-of-core (no feature slab); spill its feature store instead of saving", d.Spec.Name)
	}
	if d.Graph == nil {
		return fmt.Errorf("dataset: %s is out-of-core (no materialized CSR); the format stores adjacency explicitly", d.Spec.Name)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(ioMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, ioVersion); err != nil {
		return err
	}
	cw := NewCRC32Writer(bw)
	hdr, err := json.Marshal(d.Spec)
	if err != nil {
		return fmt.Errorf("dataset: encoding spec: %w", err)
	}
	if err := WriteBytes(cw, hdr); err != nil {
		return err
	}
	for _, arr := range [][]int64{d.Graph.RowPtr, d.Graph.Col, d.Train, d.Val, d.Test} {
		if err := WriteSlice(cw, arr); err != nil {
			return err
		}
	}
	if err := WriteSlice(cw, d.Feat); err != nil {
		return err
	}
	if err := WriteSlice(cw, d.Labels); err != nil {
		return err
	}
	// Trailer: checksum of everything after the version word.
	if err := binary.Write(bw, binary.LittleEndian, cw.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// Load reads a dataset written by Save, verifying the checksum trailer.
func Load(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(ioMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("dataset: reading magic: %w", err)
	}
	if string(magic) != ioMagic {
		return nil, fmt.Errorf("dataset: bad magic %q", magic)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	switch version {
	case ioVersion:
	case 1:
		return nil, fmt.Errorf("dataset: version 1 file predates the checksum trailer; regenerate it with wggen")
	default:
		return nil, fmt.Errorf("dataset: unsupported version %d", version)
	}
	cr := NewCRC32Reader(br)
	hdr, err := ReadBytes(cr)
	if err != nil {
		return nil, err
	}
	d := &Dataset{Graph: &graph.CSR{}}
	if err := json.Unmarshal(hdr, &d.Spec); err != nil {
		return nil, fmt.Errorf("dataset: decoding spec: %w", err)
	}
	for _, arr := range []*[]int64{&d.Graph.RowPtr, &d.Graph.Col, &d.Train, &d.Val, &d.Test} {
		if *arr, err = ReadSlice[int64](cr); err != nil {
			return nil, err
		}
	}
	if d.Feat, err = ReadSlice[float32](cr); err != nil {
		return nil, err
	}
	if d.Labels, err = ReadSlice[int32](cr); err != nil {
		return nil, err
	}
	sum := cr.Sum32()
	var want uint32
	if err := binary.Read(br, binary.LittleEndian, &want); err != nil {
		return nil, fmt.Errorf("dataset: reading checksum trailer: %w", err)
	}
	if sum != want {
		return nil, fmt.Errorf("dataset: checksum mismatch (file %08x, computed %08x): corrupt or truncated file", want, sum)
	}
	d.Graph.N = int64(len(d.Graph.RowPtr)) - 1
	if d.Graph.N < 0 || d.Graph.N != d.Spec.Nodes {
		return nil, fmt.Errorf("dataset: corrupt file: %d rowptr entries for %d nodes",
			len(d.Graph.RowPtr), d.Spec.Nodes)
	}
	return d, nil
}

// SaveFile writes the dataset to path.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a dataset from path.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// WriteBytes writes a length-prefixed byte block (the format's primitive;
// exported for the feature-store page spill, which shares the encoding).
func WriteBytes(w io.Writer, b []byte) error {
	if err := binary.Write(w, binary.LittleEndian, uint64(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

// ReadBytes reads a block written by WriteBytes.
func ReadBytes(r io.Reader) ([]byte, error) {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > 1<<34 {
		return nil, fmt.Errorf("dataset: implausible block size %d", n)
	}
	b := make([]byte, n)
	_, err := io.ReadFull(r, b)
	return b, err
}

// Elem is the element set the binary format stores.
type Elem interface{ int64 | int32 | float32 }

// WriteSlice writes a length-prefixed little-endian array.
func WriteSlice[T Elem](w io.Writer, s []T) error {
	if err := binary.Write(w, binary.LittleEndian, uint64(len(s))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, s)
}

// ReadSlice reads an array written by WriteSlice.
func ReadSlice[T Elem](r io.Reader) ([]T, error) {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > 1<<33 {
		return nil, fmt.Errorf("dataset: implausible slice length %d", n)
	}
	s := make([]T, n)
	if err := binary.Read(r, binary.LittleEndian, s); err != nil {
		return nil, err
	}
	return s, nil
}
