package dataset

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"wholegraph/internal/graph"
)

// Binary dataset serialization, so expensive generations (the larger scale
// factors take minutes) can be produced once with wggen and reloaded by the
// harness. Format: a magic string, a JSON-encoded Spec header, then the raw
// little-endian arrays with length prefixes.

const (
	ioMagic   = "WGDS"
	ioVersion = uint32(1)
)

// Save writes the dataset in the binary format.
func (d *Dataset) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(ioMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, ioVersion); err != nil {
		return err
	}
	hdr, err := json.Marshal(d.Spec)
	if err != nil {
		return fmt.Errorf("dataset: encoding spec: %w", err)
	}
	if err := writeBytes(bw, hdr); err != nil {
		return err
	}
	for _, arr := range [][]int64{d.Graph.RowPtr, d.Graph.Col, d.Train, d.Val, d.Test} {
		if err := writeSlice(bw, arr); err != nil {
			return err
		}
	}
	if err := writeSlice(bw, d.Feat); err != nil {
		return err
	}
	if err := writeSlice(bw, d.Labels); err != nil {
		return err
	}
	return bw.Flush()
}

// Load reads a dataset written by Save.
func Load(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(ioMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("dataset: reading magic: %w", err)
	}
	if string(magic) != ioMagic {
		return nil, fmt.Errorf("dataset: bad magic %q", magic)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != ioVersion {
		return nil, fmt.Errorf("dataset: unsupported version %d", version)
	}
	hdr, err := readBytes(br)
	if err != nil {
		return nil, err
	}
	d := &Dataset{Graph: &graph.CSR{}}
	if err := json.Unmarshal(hdr, &d.Spec); err != nil {
		return nil, fmt.Errorf("dataset: decoding spec: %w", err)
	}
	for _, arr := range []*[]int64{&d.Graph.RowPtr, &d.Graph.Col, &d.Train, &d.Val, &d.Test} {
		if *arr, err = readSlice[int64](br); err != nil {
			return nil, err
		}
	}
	if d.Feat, err = readSlice[float32](br); err != nil {
		return nil, err
	}
	if d.Labels, err = readSlice[int32](br); err != nil {
		return nil, err
	}
	d.Graph.N = int64(len(d.Graph.RowPtr)) - 1
	if d.Graph.N < 0 || d.Graph.N != d.Spec.Nodes {
		return nil, fmt.Errorf("dataset: corrupt file: %d rowptr entries for %d nodes",
			len(d.Graph.RowPtr), d.Spec.Nodes)
	}
	return d, nil
}

// SaveFile writes the dataset to path.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a dataset from path.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

func writeBytes(w io.Writer, b []byte) error {
	if err := binary.Write(w, binary.LittleEndian, uint64(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func readBytes(r io.Reader) ([]byte, error) {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > 1<<34 {
		return nil, fmt.Errorf("dataset: implausible block size %d", n)
	}
	b := make([]byte, n)
	_, err := io.ReadFull(r, b)
	return b, err
}

type ioElem interface{ int64 | int32 | float32 }

func writeSlice[T ioElem](w io.Writer, s []T) error {
	if err := binary.Write(w, binary.LittleEndian, uint64(len(s))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, s)
}

func readSlice[T ioElem](r io.Reader) ([]T, error) {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > 1<<33 {
		return nil, fmt.Errorf("dataset: implausible slice length %d", n)
	}
	s := make([]T, n)
	if err := binary.Read(r, binary.LittleEndian, s); err != nil {
		return nil, err
	}
	return s, nil
}
