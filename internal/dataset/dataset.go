// Package dataset generates the synthetic stand-ins for the four graphs the
// paper evaluates on (Table II): ogbn-products, ogbn-papers100M, Friendster
// and UK_domain. The real datasets are not redistributable/downloadable in
// this offline environment (papers100M alone is >50 GB of features), so we
// generate power-law graphs that preserve what drives the paper's
// measurements — node count, edge count, feature dimension, label ratio and
// a heavy-tailed degree distribution — at a configurable scale factor.
//
// Features are label-correlated (class centroid plus Gaussian noise) and
// edges are homophilous (neighbors tend to share classes), so GNN training
// genuinely learns and the accuracy experiments (Figure 7, Table III) are
// meaningful rather than decorative.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"wholegraph/internal/graph"
)

// Spec describes a dataset to generate.
type Spec struct {
	Name string
	// Nodes and Edges are the target sizes; Edges counts edge pairs before
	// any undirected doubling (the counts reported in Table II).
	Nodes int64
	Edges int64
	// FeatDim is the node feature dimension, NumClasses the label count.
	FeatDim    int
	NumClasses int
	// LabelRatio is the fraction of nodes that carry labels; labeled nodes
	// are split TrainFrac/ValFrac/TestFrac (the paper uses 1% labels split
	// 80/10/10 for Friendster and UK_domain).
	LabelRatio         float64
	TrainFrac, ValFrac float64
	// Undirected stores each edge in both directions, as the paper does
	// for ogbn-papers100M.
	Undirected bool
	// ZipfS shapes the degree power law (>1; larger = lighter tail).
	ZipfS float64
	// Homophily is the probability an edge endpoint is drawn from the
	// source's own class, giving GNNs signal to learn from.
	Homophily float64
	// NoiseSigma scales the Gaussian feature noise around class centroids.
	NoiseSigma float64
	// Weighted attaches synthetic edge weights (graph.HashEdgeWeight) to
	// the stored edges, exercising the paper's edge-feature path e_{s,t}.
	Weighted bool
	Seed     int64
}

// Validate reports whether the spec can be generated.
func (s Spec) Validate() error {
	switch {
	case s.Nodes <= 0:
		return fmt.Errorf("dataset %s: Nodes must be positive", s.Name)
	case s.Edges < 0:
		return fmt.Errorf("dataset %s: Edges must be non-negative", s.Name)
	case s.FeatDim <= 0:
		return fmt.Errorf("dataset %s: FeatDim must be positive", s.Name)
	case s.NumClasses < 2:
		return fmt.Errorf("dataset %s: NumClasses must be >= 2", s.Name)
	case s.LabelRatio <= 0 || s.LabelRatio > 1:
		return fmt.Errorf("dataset %s: LabelRatio must be in (0,1]", s.Name)
	case s.TrainFrac < 0 || s.ValFrac < 0 || s.TrainFrac+s.ValFrac > 1:
		return fmt.Errorf("dataset %s: bad train/val split", s.Name)
	case s.ZipfS <= 1:
		return fmt.Errorf("dataset %s: ZipfS must be > 1", s.Name)
	case s.Homophily < 0 || s.Homophily > 1:
		return fmt.Errorf("dataset %s: Homophily must be in [0,1]", s.Name)
	}
	return nil
}

// Scaled returns the spec with node and edge counts multiplied by f,
// keeping the average degree. The name records the scale.
func (s Spec) Scaled(f float64) Spec {
	if f == 1 {
		return s
	}
	s.Name = fmt.Sprintf("%s@%g", s.Name, f)
	s.Nodes = int64(math.Max(64, float64(s.Nodes)*f))
	s.Edges = int64(math.Max(128, float64(s.Edges)*f))
	return s
}

// Specs for the four evaluation graphs of Table II at full size.
var (
	OgbnProducts = Spec{
		Name: "ogbn-products", Nodes: 2_400_000, Edges: 61_900_000,
		FeatDim: 100, NumClasses: 47, LabelRatio: 0.10,
		TrainFrac: 0.8, ValFrac: 0.1, Undirected: true,
		ZipfS: 1.35, Homophily: 0.6, NoiseSigma: 1.0, Seed: 11,
	}
	OgbnPapers100M = Spec{
		Name: "ogbn-papers100M", Nodes: 111_100_000, Edges: 1_600_000_000,
		FeatDim: 128, NumClasses: 172, LabelRatio: 0.011,
		TrainFrac: 0.8, ValFrac: 0.1, Undirected: true,
		ZipfS: 1.3, Homophily: 0.55, NoiseSigma: 1.2, Seed: 12,
	}
	Friendster = Spec{
		Name: "Friendster", Nodes: 68_300_000, Edges: 2_600_000_000,
		FeatDim: 128, NumClasses: 64, LabelRatio: 0.01,
		TrainFrac: 0.8, ValFrac: 0.1, Undirected: true,
		ZipfS: 1.3, Homophily: 0.5, NoiseSigma: 1.2, Seed: 13,
	}
	UKDomain = Spec{
		Name: "UK_domain", Nodes: 105_200_000, Edges: 3_300_000_000,
		FeatDim: 128, NumClasses: 64, LabelRatio: 0.01,
		TrainFrac: 0.8, ValFrac: 0.1, Undirected: true,
		ZipfS: 1.25, Homophily: 0.5, NoiseSigma: 1.2, Seed: 14,
	}
)

// Registry maps dataset names to their full-size specs.
var Registry = map[string]Spec{
	OgbnProducts.Name:   OgbnProducts,
	OgbnPapers100M.Name: OgbnPapers100M,
	Friendster.Name:     Friendster,
	UKDomain.Name:       UKDomain,
}

// All returns the four paper datasets in evaluation order.
func All() []Spec {
	return []Spec{OgbnProducts, OgbnPapers100M, Friendster, UKDomain}
}

// Dataset is a generated graph with features, labels and splits.
type Dataset struct {
	Spec  Spec
	Graph *graph.CSR
	// Topo is the hash-defined adjacency of out-of-core datasets
	// (GenerateOutOfCore leaves Graph nil and sets Topo; the paged
	// topology store reads edge ranges from it on demand).
	// MaterializeOutOfCore sets both, with Graph holding exactly the
	// lists Topo defines.
	Topo *EdgeGen
	// Feat is the materialized feature slab, row-major [Nodes x FeatDim].
	// Out-of-core datasets (GenerateOutOfCore) leave it nil and carry only
	// Gen; consumers that need rows use FillFeatRow or a paged store.
	Feat   []float32
	Gen    *FeatureGen
	Labels []int32 // -1 for unlabeled nodes
	// Train, Val and Test hold labeled node IDs.
	Train, Val, Test []int64
}

// FillFeatRow writes node v's feature row into dst, from the slab when
// materialized and from the generator otherwise. Both paths produce
// bit-identical values: the slab is filled by the same generator.
func (d *Dataset) FillFeatRow(v int64, dst []float32) {
	if d.Feat != nil {
		dim := int64(d.Spec.FeatDim)
		copy(dst, d.Feat[v*dim:(v+1)*dim])
		return
	}
	d.Gen.FillRow(v, dst)
}

// Class returns node v's class, which is fixed by construction (v mod C)
// so that homophilous edge sampling is O(1).
func (s Spec) Class(v int64) int32 { return int32(v % int64(s.NumClasses)) }

// Generate builds the dataset described by s. Generation is deterministic
// for a given spec (including seed).
func Generate(s Spec) (*Dataset, error) {
	return generate(s, true)
}

// GenerateOutOfCore builds the dataset without materializing either big
// array: Dataset.Feat stays nil (rows come on demand from Dataset.Gen,
// each from its own hash-seeded stream) and Dataset.Graph stays nil too —
// the adjacency is Dataset.Topo, an EdgeGen that computes any neighbor
// range by hashing, so the ~26 GB papers100M CSR column is never built.
// Labels, splits and feature centroids still come from the spec-seeded
// RNG and are shared bit-for-bit with MaterializeOutOfCore, the in-RAM
// twin used by equivalence tests and ablation baselines.
//
// Note: the hash-defined topology is a different (same-distribution)
// graph than Generate's sequential COO sampler produces — random access
// to an edge stream that was defined by a sequential RNG is not possible,
// so out-of-core datasets define the graph functionally instead. Training
// it requires train.Options.PagedTopo (and PagedFeatures).
func GenerateOutOfCore(s Spec) (*Dataset, error) {
	return generateOOC(s, false)
}

// MaterializeOutOfCore builds the in-RAM twin of GenerateOutOfCore: the
// same labels, splits and feature generator, with the feature slab filled
// and the EdgeGen adjacency materialized into a CSR holding exactly the
// lists Topo defines (row by row, no re-sorting). Paged-topology training
// over GenerateOutOfCore(s) is bit-identical to in-RAM training over
// MaterializeOutOfCore(s); only viable at bench scales, by design.
func MaterializeOutOfCore(s Spec) (*Dataset, error) {
	return generateOOC(s, true)
}

func generateOOC(s Spec, materialize bool) (*Dataset, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Weighted {
		return nil, fmt.Errorf("dataset %s: out-of-core topology does not support edge weights", s.Name)
	}
	rng := rand.New(rand.NewSource(s.Seed))
	ds := &Dataset{Spec: s, Topo: NewEdgeGen(s)}
	ds.generateFeatures(rng, materialize)
	ds.generateSplits(rng)
	if materialize {
		n := s.Nodes
		rowPtr := make([]int64, n+1)
		for v := int64(0); v < n; v++ {
			rowPtr[v+1] = rowPtr[v] + ds.Topo.Degree(v)
		}
		col := make([]int64, rowPtr[n])
		for v := int64(0); v < n; v++ {
			lo, hi := rowPtr[v], rowPtr[v+1]
			ds.Topo.FillNeighbors(v, 0, hi-lo, col[lo:hi])
		}
		ds.Graph = &graph.CSR{N: n, RowPtr: rowPtr, Col: col}
	}
	return ds, nil
}

func generate(s Spec, materialize bool) (*Dataset, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	n := s.Nodes
	c := int64(s.NumClasses)

	// Degree power law: sources drawn from a Zipf over "popularity slots",
	// scattered over node IDs by a fixed affine permutation so hubs do not
	// cluster in one hash partition.
	zipf := rand.NewZipf(rng, s.ZipfS, 1, uint64(n-1))
	perm := newAffinePerm(n)

	coo := graph.COO{N: n}
	coo.Src = make([]int64, 0, s.Edges)
	coo.Dst = make([]int64, 0, s.Edges)
	for i := int64(0); i < s.Edges; i++ {
		src := perm.apply(int64(zipf.Uint64()))
		var dst int64
		if rng.Float64() < s.Homophily {
			// Same-class endpoint: classes are v mod C, so a uniform
			// same-class draw is class + C*k.
			cls := src % c
			k := rng.Int63n((n-cls-1)/c + 1)
			dst = cls + c*k
		} else {
			dst = perm.apply(int64(zipf.Uint64()))
		}
		if dst == src {
			dst = (src + 1 + rng.Int63n(n-1)) % n
		}
		coo.Src = append(coo.Src, src)
		coo.Dst = append(coo.Dst, dst)
	}
	csr, err := graph.FromCOO(coo, s.Undirected)
	if err != nil {
		return nil, err
	}

	ds := &Dataset{Spec: s, Graph: csr}
	ds.generateFeatures(rng, materialize)
	ds.generateSplits(rng)
	return ds, nil
}

// FeatureGen regenerates any node's label-correlated feature row on
// demand: each class has a random centroid direction (drawn once from the
// dataset RNG) and every node is its centroid plus Gaussian noise from the
// node's own hash-seeded stream. FillRow is deterministic per node and
// safe for concurrent calls with distinct dst buffers, which makes the
// generator a featstore.RowSource — the backing for out-of-core datasets.
type FeatureGen struct {
	spec      Spec
	centroids []float32
}

func newFeatureGen(s Spec, rng *rand.Rand) *FeatureGen {
	g := &FeatureGen{spec: s, centroids: make([]float32, s.NumClasses*s.FeatDim)}
	for i := range g.centroids {
		g.centroids[i] = float32(rng.NormFloat64())
	}
	return g
}

// NumRows returns the node count (featstore.RowSource).
func (g *FeatureGen) NumRows() int64 { return g.spec.Nodes }

// Dim returns the feature dimension (featstore.RowSource).
func (g *FeatureGen) Dim() int { return g.spec.FeatDim }

// FillRow writes node v's feature row into dst[:Dim()].
func (g *FeatureGen) FillRow(v int64, dst []float32) {
	s := g.spec
	dim := s.FeatDim
	cls := int(s.Class(v))
	// Per-node noise from a cheap hash-seeded stream keeps generation
	// deterministic regardless of node order.
	nr := rand.New(rand.NewSource(s.Seed ^ (v+1)*0x9e3779b9))
	for j := 0; j < dim; j++ {
		dst[j] = g.centroids[cls*dim+j] + float32(nr.NormFloat64())*float32(s.NoiseSigma)
	}
}

// generateFeatures draws the class centroids (the only feature randomness
// taken from the shared RNG) and, when materialize is set, fills the slab
// row by row from the generator.
func (d *Dataset) generateFeatures(rng *rand.Rand, materialize bool) {
	s := d.Spec
	d.Gen = newFeatureGen(s, rng)
	if !materialize {
		return
	}
	dim := int64(s.FeatDim)
	d.Feat = make([]float32, s.Nodes*dim)
	for v := int64(0); v < s.Nodes; v++ {
		d.Gen.FillRow(v, d.Feat[v*dim:(v+1)*dim])
	}
}

// generateSplits labels LabelRatio of the nodes and splits them into
// train/val/test.
func (d *Dataset) generateSplits(rng *rand.Rand) {
	s := d.Spec
	d.Labels = make([]int32, s.Nodes)
	for i := range d.Labels {
		d.Labels[i] = -1
	}
	nLabeled := int64(float64(s.Nodes) * s.LabelRatio)
	if nLabeled < int64(s.NumClasses) {
		nLabeled = min64(int64(s.NumClasses), s.Nodes)
	}
	ids := rng.Perm(int(s.Nodes))[:nLabeled]
	nTrain := int64(float64(nLabeled) * s.TrainFrac)
	nVal := int64(float64(nLabeled) * s.ValFrac)
	for i, id := range ids {
		v := int64(id)
		d.Labels[v] = s.Class(v)
		switch {
		case int64(i) < nTrain:
			d.Train = append(d.Train, v)
		case int64(i) < nTrain+nVal:
			d.Val = append(d.Val, v)
		default:
			d.Test = append(d.Test, v)
		}
	}
}

// NumEdgePairs returns the generated edge-pair count (Table II
// convention). For out-of-core datasets it sums the hash-defined degrees
// (O(Nodes), computed once).
func (d *Dataset) NumEdgePairs() int64 {
	var stored int64
	switch {
	case d.Graph != nil:
		stored = d.Graph.NumEdges()
	case d.Topo != nil:
		stored = d.Topo.NumEdges()
	default:
		return 0
	}
	if d.Spec.Undirected {
		return stored / 2
	}
	return stored
}

// affinePerm is a bijection over [0,n): x -> (a*x+b) mod n with gcd(a,n)=1.
type affinePerm struct{ a, inv, b, n int64 }

func newAffinePerm(n int64) affinePerm {
	a := int64(6364136223846793005 % uint64(n))
	if a <= 1 {
		a = 1
	}
	for gcd(a, n) != 1 {
		a++
	}
	return affinePerm{a: a, inv: modInverse(a, n), b: n / 3, n: n}
}

func (p affinePerm) apply(x int64) int64 {
	hi := (p.a % p.n) * (x % p.n) % p.n // avoid overflow for n < 2^31.5
	return (hi + p.b) % p.n
}

// invert maps a node ID back to its popularity slot: apply(invert(y)) == y.
func (p affinePerm) invert(y int64) int64 {
	x := (y - p.b) % p.n
	if x < 0 {
		x += p.n
	}
	return (p.inv % p.n) * (x % p.n) % p.n
}

// modInverse returns a^-1 mod n for gcd(a,n)=1 (extended Euclid).
func modInverse(a, n int64) int64 {
	t, newT := int64(0), int64(1)
	r, newR := n, a%n
	for newR != 0 {
		q := r / newR
		t, newT = newT, t-q*newT
		r, newR = newR, r-q*newR
	}
	if t < 0 {
		t += n
	}
	return t
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
