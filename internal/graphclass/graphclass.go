// Package graphclass implements graph classification over the shared-memory
// store — the third GNN task the paper names ("predicting categories of
// nodes or even graphs ... node classification and graph classification",
// §I), and the "dataset with millions of graphs" regime its introduction
// motivates. Many small graphs live concatenated in distributed shared
// memory; a training batch gathers the selected graphs' feature rows
// (contiguous per graph — large segments, the cheap end of the Figure 8
// curve), builds their disjoint union as one message-flow block, encodes it
// with a GIN, and mean-pools each graph's node embeddings into a prediction.
package graphclass

import (
	"fmt"
	"math/rand"

	"wholegraph/internal/autograd"
	"wholegraph/internal/gnn"
	"wholegraph/internal/nn"
	"wholegraph/internal/sim"
	"wholegraph/internal/spops"
	"wholegraph/internal/tensor"
	"wholegraph/internal/wholemem"
)

// Spec describes a synthetic graph-classification dataset: each class is a
// topology motif (cycle, star, clique, path, double-cycle, wheel) whose
// structure the model must recognize; node features are noise plus a weak
// degree signal, so topology is the discriminative information.
type Spec struct {
	NumGraphs          int
	MinNodes, MaxNodes int
	FeatDim            int
	NumClasses         int // up to 6 motifs
	TrainFrac          float64
	Seed               int64
}

// Validate reports whether the spec is generatable.
func (s Spec) Validate() error {
	switch {
	case s.NumGraphs < 2:
		return fmt.Errorf("graphclass: need at least 2 graphs")
	case s.MinNodes < 3 || s.MaxNodes < s.MinNodes:
		return fmt.Errorf("graphclass: bad node range [%d,%d]", s.MinNodes, s.MaxNodes)
	case s.FeatDim < 1:
		return fmt.Errorf("graphclass: FeatDim must be positive")
	case s.NumClasses < 2 || s.NumClasses > 6:
		return fmt.Errorf("graphclass: NumClasses must be in [2,6]")
	case s.TrainFrac <= 0 || s.TrainFrac >= 1:
		return fmt.Errorf("graphclass: TrainFrac must be in (0,1)")
	}
	return nil
}

// Small is one small graph: N nodes and undirected edges.
type Small struct {
	N     int
	Edges [][2]int32
}

// Dataset is a set of labeled small graphs with node features.
type Dataset struct {
	Spec   Spec
	Graphs []Small
	// Feat concatenates all graphs' node features row-major; graph g's
	// rows start at RowBase[g].
	Feat    []float32
	RowBase []int64
	Labels  []int32
	// Train and Test index into Graphs.
	Train, Test []int
}

// Generate builds the dataset (deterministic per spec).
func Generate(s Spec) (*Dataset, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	d := &Dataset{Spec: s}
	var rows int64
	for g := 0; g < s.NumGraphs; g++ {
		cls := int32(g % s.NumClasses)
		n := s.MinNodes + rng.Intn(s.MaxNodes-s.MinNodes+1)
		sm := motif(int(cls), n)
		d.Graphs = append(d.Graphs, sm)
		d.Labels = append(d.Labels, cls)
		d.RowBase = append(d.RowBase, rows)
		rows += int64(sm.N)
	}
	d.RowBase = append(d.RowBase, rows)

	// Features: Gaussian noise plus the node's degree in the first
	// dimension (a weak structural hint; motifs remain the signal).
	deg := make(map[[2]int]int)
	for g, sm := range d.Graphs {
		for _, e := range sm.Edges {
			deg[[2]int{g, int(e[0])}]++
			deg[[2]int{g, int(e[1])}]++
		}
	}
	d.Feat = make([]float32, rows*int64(s.FeatDim))
	for g, sm := range d.Graphs {
		for v := 0; v < sm.N; v++ {
			row := d.Feat[(d.RowBase[g]+int64(v))*int64(s.FeatDim):]
			for j := 0; j < s.FeatDim; j++ {
				row[j] = float32(rng.NormFloat64()) * 0.3
			}
			row[0] += float32(deg[[2]int{g, v}]) * 0.5
		}
	}

	perm := rng.Perm(s.NumGraphs)
	nTrain := int(float64(s.NumGraphs) * s.TrainFrac)
	d.Train = append(d.Train, perm[:nTrain]...)
	d.Test = append(d.Test, perm[nTrain:]...)
	return d, nil
}

// motif builds the class's topology over n nodes.
func motif(cls, n int) Small {
	sm := Small{N: n}
	add := func(a, b int) {
		sm.Edges = append(sm.Edges, [2]int32{int32(a), int32(b)})
	}
	switch cls {
	case 0: // cycle
		for v := 0; v < n; v++ {
			add(v, (v+1)%n)
		}
	case 1: // star
		for v := 1; v < n; v++ {
			add(0, v)
		}
	case 2: // clique
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				add(a, b)
			}
		}
	case 3: // path
		for v := 0; v+1 < n; v++ {
			add(v, v+1)
		}
	case 4: // two disjoint cycles
		h := n / 2
		for v := 0; v < h; v++ {
			add(v, (v+1)%h)
		}
		for v := h; v < n; v++ {
			next := v + 1
			if next == n {
				next = h
			}
			add(v, next)
		}
	default: // wheel: cycle + hub
		for v := 1; v < n; v++ {
			add(v, v%(n-1)+1)
			add(0, v)
		}
	}
	return sm
}

// Store holds the dataset in distributed shared memory: all node features
// concatenated into one table, graph structures on the host (they are tiny
// and batch construction is metadata work, as in the real system).
type Store struct {
	DS   *Dataset
	Comm *wholemem.Comm
	Feat *wholemem.Memory[float32]
}

// NewStore places the dataset's features into the shared memory of machine
// node `node`, charging the setup.
func NewStore(m *sim.Machine, node int, ds *Dataset) (*Store, error) {
	comm, err := wholemem.NewComm(m.NodeDevs(node))
	if err != nil {
		return nil, err
	}
	// Shard on feature-row boundaries so no row straddles two ranks.
	dim := int64(ds.Spec.FeatDim)
	totalRows := int64(len(ds.Feat)) / dim
	parts := int64(comm.Size())
	rowsPerRank := (totalRows + parts - 1) / parts
	sizes := make([]int64, parts)
	left := totalRows
	for r := range sizes {
		n := rowsPerRank
		if n > left {
			n = left
		}
		sizes[r] = n * dim
		left -= n
	}
	feat := wholemem.AllocSharded[float32](comm, sizes)
	feat.FillFrom(ds.Feat)
	return &Store{DS: ds, Comm: comm, Feat: feat}, nil
}

// Options configures the graph-classification trainer.
type Options struct {
	Batch  int // graphs per iteration
	Layers int
	Hidden int
	LR     float64
	Seed   int64
}

func (o Options) normalize() Options {
	if o.Batch == 0 {
		o.Batch = 32
	}
	if o.Layers == 0 {
		o.Layers = 3
	}
	if o.Hidden == 0 {
		o.Hidden = 32
	}
	if o.LR == 0 {
		o.LR = 0.01
	}
	return o
}

// Trainer trains a GIN over batches of small graphs on one device.
type Trainer struct {
	Store   *Store
	Dev     *sim.Device
	Encoder *gnn.GIN
	Opts    Options

	opt *nn.Adam
	rng *rand.Rand
}

// New builds the trainer on dev.
func New(store *Store, dev *sim.Device, opts Options) (*Trainer, error) {
	opts = opts.normalize()
	if store.Comm.RankOfDevice(dev) < 0 {
		return nil, fmt.Errorf("graphclass: device %d not in the store's communicator", dev.ID)
	}
	cfg := gnn.Config{
		InDim:   store.DS.Spec.FeatDim,
		Hidden:  opts.Hidden,
		Classes: store.DS.Spec.NumClasses,
		Layers:  opts.Layers,
		Heads:   1,
		Backend: spops.BackendNative,
		Seed:    opts.Seed,
	}
	return &Trainer{
		Store:   store,
		Dev:     dev,
		Encoder: gnn.NewGIN(cfg),
		Opts:    opts,
		opt:     nn.NewAdam(opts.LR),
		rng:     rand.New(rand.NewSource(opts.Seed ^ 0x6c)),
	}, nil
}

// unionBatch builds the disjoint-union block over the selected graphs and
// gathers their feature rows from shared memory (contiguous per graph).
func (t *Trainer) unionBatch(ids []int) (*spops.SubCSR, *tensor.Dense, []int, []int32) {
	ds := t.Store.DS
	var totalN int
	offsets := []int{0}
	for _, g := range ids {
		totalN += ds.Graphs[g].N
		offsets = append(offsets, totalN)
	}
	blk := &spops.SubCSR{NumTargets: totalN, NumNodes: totalN}
	adj := make([][]int32, totalN)
	for i, g := range ids {
		base := int32(offsets[i])
		for _, e := range ds.Graphs[g].Edges {
			a, b := base+e[0], base+e[1]
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
		}
	}
	blk.RowPtr = make([]int64, 1, totalN+1)
	for v := 0; v < totalN; v++ {
		blk.Col = append(blk.Col, adj[v]...)
		blk.RowPtr = append(blk.RowPtr, int64(len(blk.Col)))
	}
	blk.DupCount = make([]int32, totalN)
	for _, c := range blk.Col {
		blk.DupCount[c]++
	}

	// Gather features: one contiguous row range per graph.
	dim := ds.Spec.FeatDim
	feat := tensor.New(totalN, dim)
	rows := make([]int64, totalN)
	k := 0
	for _, g := range ids {
		for v := int64(0); v < int64(ds.Graphs[g].N); v++ {
			rows[k] = ds.RowBase[g] + v
			k++
		}
	}
	t.Store.Feat.GatherRows(t.Dev, rows, dim, feat.V, "gather.graphs")

	labels := make([]int32, len(ids))
	for i, g := range ids {
		labels[i] = ds.Labels[g]
	}
	return blk, feat, offsets, labels
}

// forward encodes a union block and returns pooled per-graph logits.
func (t *Trainer) forward(blk *spops.SubCSR, feat *tensor.Dense, offsets []int, train bool) (*autograd.Tape, *autograd.Var) {
	tp := autograd.NewTape()
	t.Encoder.Params().Bind(tp)
	x := tp.Const(feat)
	for l := 0; l < t.Encoder.NumLayers(); l++ {
		x = t.Encoder.ForwardLayer(t.Dev, l, blk, x, l == t.Encoder.NumLayers()-1, train)
	}
	return tp, autograd.SegmentMeanRows(x, offsets)
}

// TrainStep runs one iteration over a random batch of training graphs and
// returns (loss, batch accuracy).
func (t *Trainer) TrainStep() (float64, float64) {
	ids := make([]int, t.Opts.Batch)
	for i := range ids {
		ids[i] = t.Store.DS.Train[t.rng.Intn(len(t.Store.DS.Train))]
	}
	blk, feat, offsets, labels := t.unionBatch(ids)
	tp, logits := t.forward(blk, feat, offsets, true)
	grad := tensor.New(logits.Value.R, logits.Value.C)
	loss := tensor.CrossEntropy(logits.Value, labels, grad)
	acc := tensor.Accuracy(logits.Value, labels)
	tp.Backward(logits, grad)
	t.opt.Step(t.Dev, t.Encoder.Params())
	return loss, acc
}

// Evaluate returns accuracy over the given graph IDs.
func (t *Trainer) Evaluate(ids []int) float64 {
	var correct, total float64
	for off := 0; off < len(ids); off += t.Opts.Batch {
		end := off + t.Opts.Batch
		if end > len(ids) {
			end = len(ids)
		}
		blk, feat, offsets, labels := t.unionBatch(ids[off:end])
		_, logits := t.forward(blk, feat, offsets, false)
		correct += tensor.Accuracy(logits.Value, labels) * float64(end-off)
		total += float64(end - off)
	}
	if total == 0 {
		return 0
	}
	return correct / total
}
