package graphclass

import (
	"testing"

	"wholegraph/internal/sim"
)

func testSpec() Spec {
	return Spec{
		NumGraphs: 120, MinNodes: 6, MaxNodes: 12,
		FeatDim: 8, NumClasses: 3, TrainFrac: 0.8, Seed: 1,
	}
}

func TestValidate(t *testing.T) {
	if err := testSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testSpec()
	bad.NumClasses = 7
	if bad.Validate() == nil {
		t.Error("7 classes accepted")
	}
	bad = testSpec()
	bad.MaxNodes = 2
	if bad.Validate() == nil {
		t.Error("bad node range accepted")
	}
	bad = testSpec()
	bad.TrainFrac = 1
	if bad.Validate() == nil {
		t.Error("TrainFrac=1 accepted")
	}
}

func TestMotifTopologies(t *testing.T) {
	const n = 8
	degrees := func(sm Small) []int {
		d := make([]int, sm.N)
		for _, e := range sm.Edges {
			d[e[0]]++
			d[e[1]]++
		}
		return d
	}
	// Cycle: every degree 2.
	for _, d := range degrees(motif(0, n)) {
		if d != 2 {
			t.Errorf("cycle degree %d", d)
		}
	}
	// Star: hub n-1, leaves 1.
	ds := degrees(motif(1, n))
	if ds[0] != n-1 {
		t.Errorf("star hub degree %d", ds[0])
	}
	for _, d := range ds[1:] {
		if d != 1 {
			t.Errorf("star leaf degree %d", d)
		}
	}
	// Clique: every degree n-1.
	for _, d := range degrees(motif(2, n)) {
		if d != n-1 {
			t.Errorf("clique degree %d", d)
		}
	}
	// Path: two endpoints of degree 1.
	ends := 0
	for _, d := range degrees(motif(3, n)) {
		if d == 1 {
			ends++
		}
	}
	if ends != 2 {
		t.Errorf("path has %d endpoints", ends)
	}
	// Two cycles: all degree 2, like one cycle, but disconnected — check
	// edge count equals n (each half closes).
	if got := len(motif(4, n).Edges); got != n {
		t.Errorf("double-cycle edges = %d", got)
	}
}

func TestGenerateShapes(t *testing.T) {
	d, err := Generate(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Graphs) != 120 || len(d.Labels) != 120 {
		t.Fatalf("graphs = %d", len(d.Graphs))
	}
	if len(d.Train)+len(d.Test) != 120 {
		t.Fatalf("splits cover %d", len(d.Train)+len(d.Test))
	}
	var rows int64
	for g, sm := range d.Graphs {
		if d.RowBase[g] != rows {
			t.Fatalf("rowbase[%d] = %d, want %d", g, d.RowBase[g], rows)
		}
		rows += int64(sm.N)
	}
	if int64(len(d.Feat)) != rows*int64(d.Spec.FeatDim) {
		t.Fatalf("feature length %d", len(d.Feat))
	}
}

func TestTrainerLearnsMotifs(t *testing.T) {
	d, err := Generate(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMachine(sim.DGXA100(1))
	store, err := NewStore(m, 0, d)
	if err != nil {
		t.Fatal(err)
	}
	m.Reset()
	tr, err := New(store, m.Devs[0], Options{Batch: 24, Layers: 2, Hidden: 16, LR: 0.02, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	before := tr.Evaluate(d.Test)
	var firstLoss, lastLoss float64
	for it := 0; it < 80; it++ {
		loss, _ := tr.TrainStep()
		if it == 0 {
			firstLoss = loss
		}
		lastLoss = loss
	}
	after := tr.Evaluate(d.Test)
	if lastLoss >= firstLoss {
		t.Errorf("loss did not decrease: %.3f -> %.3f", firstLoss, lastLoss)
	}
	if after <= before {
		t.Errorf("test accuracy did not improve: %.3f -> %.3f", before, after)
	}
	// Motifs are cleanly separable by topology: expect strong accuracy.
	if after < 0.8 {
		t.Errorf("final accuracy %.3f too low (chance %.3f)", after, 1.0/3)
	}
	if m.MaxTime() == 0 {
		t.Error("training charged nothing")
	}
}

func TestTrainerRejectsForeignDevice(t *testing.T) {
	d, err := Generate(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMachine(sim.DGXA100(2))
	store, err := NewStore(m, 0, d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(store, m.NodeDevs(1)[0], Options{}); err == nil {
		t.Error("device from another node accepted")
	}
}

func TestUnionBatchStructure(t *testing.T) {
	d, err := Generate(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMachine(sim.DGXA100(1))
	store, err := NewStore(m, 0, d)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(store, m.Devs[0], Options{})
	if err != nil {
		t.Fatal(err)
	}
	ids := []int{0, 5, 10}
	blk, feat, offsets, labels := tr.unionBatch(ids)
	if err := blk.Validate(); err != nil {
		t.Fatal(err)
	}
	wantN := d.Graphs[0].N + d.Graphs[5].N + d.Graphs[10].N
	if blk.NumNodes != wantN || feat.R != wantN {
		t.Fatalf("union has %d nodes, want %d", blk.NumNodes, wantN)
	}
	if len(offsets) != 4 || offsets[3] != wantN {
		t.Fatalf("offsets %v", offsets)
	}
	for i, g := range ids {
		if labels[i] != d.Labels[g] {
			t.Fatalf("label %d mismatch", i)
		}
	}
	// No edge crosses graph boundaries.
	for gi := 0; gi < 3; gi++ {
		for v := offsets[gi]; v < offsets[gi+1]; v++ {
			for e := blk.RowPtr[v]; e < blk.RowPtr[v+1]; e++ {
				c := int(blk.Col[e])
				if c < offsets[gi] || c >= offsets[gi+1] {
					t.Fatalf("edge from %d escapes its graph", v)
				}
			}
		}
	}
	// Features match the dataset rows.
	dim := d.Spec.FeatDim
	for v := 0; v < d.Graphs[0].N; v++ {
		for j := 0; j < dim; j++ {
			want := d.Feat[(d.RowBase[0]+int64(v))*int64(dim)+int64(j)]
			if feat.At(v, j) != want {
				t.Fatalf("feature mismatch at (%d,%d)", v, j)
			}
		}
	}
}
