package ann

import (
	"runtime"

	"wholegraph/internal/sim"
)

// The brute-force oracle, in two flavors: BruteSearch is the charged exact
// scan — what a GPU without an index would run per query, the baseline the
// recall-vs-latency ablation compares HNSW against — and Exact/ExactNodes
// are uncharged host-side twins used as ground truth for recall.

// exactInto computes the exact top-k of q over all rows by a full scan,
// appending to dst. The maintained set is the lexicographically least
// (Dist, ID) k-set, so ties are deterministic.
func (ix *Index) exactInto(q []float32, k int, h *maxHeap, dst []Result) []Result {
	h.reset()
	var st searchStats // discarded: callers charge the scan wholesale
	for v := 0; v < ix.n; v++ {
		d := ix.l2(q, ix.Vector(int64(v)), &st)
		it := heapItem{d, int64(v)}
		if h.len() < k {
			h.push(it)
		} else if itemLess(it, h.top()) {
			h.pop()
			h.push(it)
		}
	}
	items := append([]heapItem(nil), h.a...)
	sortItems(items)
	for _, it := range items {
		dst = append(dst, Result{ID: it.id, Dist: it.d})
	}
	return dst
}

// Exact returns the exact top-k neighbors of q by full host-side scan,
// charging nothing — the ground-truth oracle for recall measurement.
func (ix *Index) Exact(q []float32, k int) []Result {
	var h maxHeap
	return ix.exactInto(q, k, &h, make([]Result, 0, k))
}

// ExactNodes computes the exact top-k for many node-ID queries at once,
// fanning the host scans across goroutines under sim.RunParallel (worker
// slots own disjoint result stripes, so the output is identical for any
// worker count or with parallelism disabled). Uncharged, like Exact.
func (ix *Index) ExactNodes(ids []int64, k int) [][]Result {
	out := make([][]Result, len(ids))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(ids) {
		workers = len(ids)
	}
	sim.RunParallel(workers, func(w int) {
		var h maxHeap
		for i := w; i < len(ids); i += workers {
			out[i] = ix.exactInto(ix.Vector(ids[i]), k, &h, make([]Result, 0, k))
		}
	})
	return out
}

// BruteSearch answers one exact top-k query on dev, charging the full
// table scan: every row streams through the device — its own shard from
// local HBM, the rest over NVLink peer access at row-segment granularity —
// with 3·dim FLOPs per distance. Results equal Exact's bit-for-bit.
func (ix *Index) BruteSearch(dev *sim.Device, q []float32, k int) []Result {
	rank := ix.mustRank(dev)
	var h maxHeap
	out := ix.exactInto(q, k, &h, make([]Result, 0, k))
	rowBytes := float64(ix.dim * 4)
	local := ix.shardRows(rank)
	dev.Kernel(sim.KernelCost{
		FLOPs:          3 * float64(ix.dim) * float64(ix.n),
		StreamBytes:    float64(local) * rowBytes,
		RemoteBytes:    float64(int64(ix.n)-local) * rowBytes,
		RemoteSegBytes: rowBytes,
		Tag:            "ann.brute",
	})
	return out
}

// shardRows returns how many vector rows rank r's shard holds.
func (ix *Index) shardRows(r int) int64 {
	lo := int64(r) * ix.rowsPerRank
	hi := lo + ix.rowsPerRank
	if hi > int64(ix.n) {
		hi = int64(ix.n)
	}
	if lo > hi {
		return 0
	}
	return hi - lo
}

// Recall returns |approx ∩ exact| / |exact| by ID — recall@k when exact
// holds the true top-k.
func Recall(approx, exact []Result) float64 {
	if len(exact) == 0 {
		return 0
	}
	hit := 0
	for _, e := range exact {
		for _, a := range approx {
			if a.ID == e.ID {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(len(exact))
}
