// Package ann implements approximate nearest-neighbor retrieval over GNN
// embeddings: a deterministic, pure-Go HNSW index (Malkov & Yashunin,
// "Efficient and robust approximate nearest neighbor search using
// Hierarchical Navigable Small World graphs") built on the final-layer
// output of internal/infer and queried through the simulated device model.
//
// The index follows the repo's simulation contract: every distance is
// really computed on the host, and the traffic it implies is charged to a
// virtual device. Vectors live in a wholemem shared allocation sharded
// row-aligned across the communicator, so a search running on rank r pays
// HBM random-access bytes for rows in r's shard and NVLink peer-access
// bytes (at the row's segment size, i.e. the Figure 8 bandwidth point) for
// everything else, plus streamed adjacency bytes and 3·dim FLOPs per L2
// distance. One logical search is one kernel launch; batched searches
// (SearchMany) amortize the launch like a real batched query kernel.
//
// Construction is parallelized across the communicator's devices under the
// sim.RunParallel ownership model without giving up determinism: nodes are
// inserted in ID order in geometrically growing rounds, each round
// searching the graph *frozen* at the round boundary (read-only, so any
// rank may search concurrently) and then applying all link updates
// serially in ID order from the orchestrator. Because the frozen-graph
// searches depend only on the round boundaries — never on which rank ran
// them — the resulting graph and every device clock are bit-identical
// serial or parallel, for any device count.
package ann

import (
	"fmt"
	"math"

	"wholegraph/internal/sim"
	"wholegraph/internal/tensor"
	"wholegraph/internal/wholemem"
)

// maxLevelCap bounds the geometric level draw so a pathological uniform
// sample cannot allocate an absurd tower (2^30 expected nodes per level at
// the cap; unreachable at any realistic index size).
const maxLevelCap = 30

// Options configures index construction and the search default. Zero
// values take defaults via Normalize.
type Options struct {
	// M caps each node's neighbor list on levels >= 1 (default 12).
	M int
	// M0 caps level-0 neighbor lists (default 2*M).
	M0 int
	// EfConstruction is the beam width of insertion searches (default 100).
	EfConstruction int
	// EfSearch is the query beam width used when a search passes ef <= 0
	// (default 64).
	EfSearch int
	// LevelMult scales the geometric level distribution: a node's level is
	// floor(-ln(u) * LevelMult) (default 1/ln(M), the paper's choice).
	LevelMult float64
	// Seed fixes the level draw; two indexes over the same vectors with
	// the same Options are identical (default 1).
	Seed int64
	// RoundCap bounds how many nodes one frozen-graph build round inserts
	// (default 1024). Rounds grow geometrically 1, 2, 4, ... up to the
	// cap, so early inserts see a well-connected graph while the bulk of
	// the build still parallelizes across the communicator.
	RoundCap int
}

// Normalize fills defaults.
func (o Options) Normalize() Options {
	if o.M == 0 {
		o.M = 12
	}
	if o.M0 == 0 {
		o.M0 = 2 * o.M
	}
	if o.EfConstruction == 0 {
		o.EfConstruction = 100
	}
	if o.EfSearch == 0 {
		o.EfSearch = 64
	}
	if o.LevelMult == 0 {
		o.LevelMult = 1 / math.Log(float64(o.M))
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.RoundCap == 0 {
		o.RoundCap = 1024
	}
	return o
}

// Validate rejects unusable option combinations.
func (o Options) Validate() error {
	switch {
	case o.M < 2:
		return fmt.Errorf("ann: M must be >= 2, got %d", o.M)
	case o.M0 < o.M:
		return fmt.Errorf("ann: M0 (%d) must be >= M (%d)", o.M0, o.M)
	case o.EfConstruction < 1:
		return fmt.Errorf("ann: EfConstruction must be >= 1, got %d", o.EfConstruction)
	case o.EfSearch < 1:
		return fmt.Errorf("ann: EfSearch must be >= 1, got %d", o.EfSearch)
	case o.LevelMult < 0:
		return fmt.Errorf("ann: LevelMult must be >= 0, got %g", o.LevelMult)
	case o.RoundCap < 1:
		return fmt.Errorf("ann: RoundCap must be >= 1, got %d", o.RoundCap)
	}
	return nil
}

// Result is one retrieved neighbor: the vector's row ID and its squared L2
// distance to the query. Ties order by (Dist, ID).
type Result struct {
	ID   int64   `json:"id"`
	Dist float32 `json:"dist"`
}

// Index is an immutable-after-Build HNSW index over N dim-dimensional
// vectors. Searches on distinct communicator ranks may run concurrently
// (per-rank scratch); the graph itself is read-only after Build.
type Index struct {
	Opts Options

	n, dim      int
	comm        *wholemem.Comm
	vecs        *wholemem.Memory[float32]
	host        []float32 // row-major [n x dim] host view (aliases the Build input)
	rowsPerRank int64

	levels   []int32
	maxLevel int32
	entry    int64 // node with the highest level; -1 while empty
	// links[l][v] is v's neighbor list at level l (nil above v's level).
	links [][][]int32

	scratch []*searchScratch // one per communicator rank
}

// N returns the number of indexed vectors.
func (ix *Index) N() int { return ix.n }

// Dim returns the vector dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// Comm returns the communicator the vector shards are allocated over.
func (ix *Index) Comm() *wholemem.Comm { return ix.comm }

// MaxLevel returns the top layer of the hierarchy.
func (ix *Index) MaxLevel() int { return int(ix.maxLevel) }

// Entry returns the entry-point node (the one drawn at MaxLevel).
func (ix *Index) Entry() int64 { return ix.entry }

// Level returns node v's drawn level.
func (ix *Index) Level(v int64) int { return int(ix.levels[v]) }

// Neighbors returns node v's neighbor list at the given level (nil above
// v's level). The returned slice is the index's own storage: read-only.
func (ix *Index) Neighbors(level int, v int64) []int32 {
	if level >= len(ix.links) {
		return nil
	}
	return ix.links[level][v]
}

// RankOfRow returns the communicator rank whose shard holds row v.
func (ix *Index) RankOfRow(v int64) int {
	r := int(v / ix.rowsPerRank)
	if r >= ix.comm.Size() {
		r = ix.comm.Size() - 1
	}
	return r
}

// Vector returns the host view of row v (read-only).
func (ix *Index) Vector(v int64) []float32 {
	return ix.host[int(v)*ix.dim : (int(v)+1)*ix.dim]
}

// GatherQueries gathers the embedding rows of ids into dst (len(ids)*dim
// elements) through the shared vector table, charging dev for the gather —
// the staging step of a retrieval batch, meant for the copy stream.
func (ix *Index) GatherQueries(dev *sim.Device, ids []int64, dst []float32) {
	ix.vecs.GatherRows(dev, ids, ix.dim, dst, "ann.queries")
}

// degreeCap returns the neighbor-list cap at a level.
func (ix *Index) degreeCap(level int) int {
	if level == 0 {
		return ix.Opts.M0
	}
	return ix.Opts.M
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix used
// to derive each node's level from (seed, id) independently of insertion
// order, worker count, and device count.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// levelFor draws node id's level: geometric via inverse-CDF of an
// exponential, floor(-ln(u) * mult).
func levelFor(seed, id int64, mult float64) int32 {
	z := splitmix64(uint64(seed)<<32 ^ uint64(id)*0x2545F4914F6CDD1D)
	// 53 uniform bits in (0, 1]; the +1 keeps u > 0 so ln is finite.
	u := (float64(z>>11) + 1) / (1 << 53)
	l := int32(-math.Log(u) * mult)
	if l < 0 {
		l = 0
	}
	if l > maxLevelCap {
		l = maxLevelCap
	}
	return l
}

// Build constructs an HNSW index over the rows of emb (an [N x dim] host
// matrix, typically infer.Embeddings output). The vectors are placed in a
// row-aligned wholemem shared allocation over comm — charging the IPC
// setup like every store — and construction runs in frozen-graph rounds
// whose insertion searches fan out across comm's devices under
// sim.RunParallel, each device paying for the distances it computed. The
// index (graph, entry point, and per-device virtual time) is bit-identical
// whether the rounds run serially or in parallel. The index aliases emb's
// storage; the caller must not mutate it afterwards.
func Build(comm *wholemem.Comm, emb *tensor.Dense, opts Options) (*Index, error) {
	opts = opts.Normalize()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if emb == nil || emb.R == 0 || emb.C == 0 {
		return nil, fmt.Errorf("ann: empty embedding matrix")
	}
	n, dim := emb.R, emb.C
	ranks := comm.Size()
	rowsPer := (int64(n) + int64(ranks) - 1) / int64(ranks)
	sizes := make([]int64, ranks)
	left := int64(n)
	for r := range sizes {
		s := rowsPer
		if s > left {
			s = left
		}
		sizes[r] = s * int64(dim)
		left -= s
	}
	ix := &Index{
		Opts:        opts,
		n:           n,
		dim:         dim,
		comm:        comm,
		vecs:        wholemem.AllocSharded[float32](comm, sizes),
		host:        emb.V,
		rowsPerRank: rowsPer,
		levels:      make([]int32, n),
		entry:       -1,
	}
	ix.vecs.FillFrom(emb.V)
	maxL := int32(0)
	for v := 0; v < n; v++ {
		l := levelFor(opts.Seed, int64(v), opts.LevelMult)
		ix.levels[v] = l
		if l > maxL {
			maxL = l
		}
	}
	for l := int32(0); l <= maxL; l++ {
		ix.links = append(ix.links, make([][]int32, n))
	}
	ix.scratch = make([]*searchScratch, ranks)
	for r := range ix.scratch {
		ix.scratch[r] = newSearchScratch(n)
	}

	plans := make([]insertPlan, 0, opts.RoundCap)
	fixups := make([]searchStats, ranks)
	lo, size := 0, 1
	for lo < n {
		hi := lo + size
		if hi > n {
			hi = n
		}
		ix.buildRound(lo, hi, plans[:0], fixups)
		lo = hi
		if size < opts.RoundCap {
			size *= 2
			if size > opts.RoundCap {
				size = opts.RoundCap
			}
		}
	}
	return ix, nil
}

// insertPlan is one node's planned links, produced against the frozen
// graph in the parallel phase and applied serially.
type insertPlan struct {
	id int64
	// sel[l] is the diversity-pruned neighbor selection at level l
	// (l <= min(node level, frozen max level)).
	sel [][]int32
}

// buildRound inserts nodes [lo, hi): phase A searches the frozen graph in
// parallel across the communicator's devices (node v is planned by rank
// v mod ranks, each rank charging one insertion kernel per node it plans);
// phase B applies the plans serially in ID order, accumulating the
// reverse-edge pruning traffic per rank and flushing it as one fixup
// kernel per rank at the round boundary.
func (ix *Index) buildRound(lo, hi int, plans []insertPlan, fixups []searchStats) {
	devs := ix.comm.Devs
	ranks := len(devs)
	plans = plans[:hi-lo]
	sim.RunParallel(ranks, func(r int) {
		dev := devs[r]
		sc := ix.scratch[r]
		for v := lo; v < hi; v++ {
			if v%ranks != r {
				continue
			}
			var st searchStats
			plans[v-lo] = ix.planInsert(r, sc, &st, int64(v))
			ix.flush(dev, &st, "ann.insert")
		}
	})
	for i := range plans {
		ix.applyInsert(&plans[i], &fixups[int(plans[i].id)%ranks])
	}
	for r, dev := range devs {
		ix.flush(dev, &fixups[r], "ann.fixup")
	}
}

// planInsert runs node id's insertion searches against the frozen graph:
// greedy descent from the entry point through the levels above the node's,
// then an efConstruction beam search plus diversity selection at each
// level the node joins. It mutates only rank-owned scratch.
func (ix *Index) planInsert(rank int, sc *searchScratch, st *searchStats, id int64) insertPlan {
	plan := insertPlan{id: id}
	if ix.entry < 0 {
		return plan // first node: becomes the entry with no links
	}
	q := ix.Vector(id)
	level := int(ix.levels[id])
	top := int(ix.maxLevel)
	ep := ix.entry
	epD := ix.dist(rank, st, q, ep)
	for l := top; l > level; l-- {
		ep, epD = ix.greedy(rank, st, q, ep, epD, l)
	}
	joinTop := level
	if joinTop > top {
		joinTop = top
	}
	plan.sel = make([][]int32, joinTop+1)
	for l := joinTop; l >= 0; l-- {
		cands := ix.searchLayer(rank, sc, st, q, ep, epD, l, ix.Opts.EfConstruction)
		plan.sel[l] = ix.selectNeighbors(rank, st, cands, ix.degreeCap(l),
			make([]int32, 0, ix.degreeCap(l)))
		ep, epD = cands[0].id, cands[0].d
	}
	return plan
}

// applyInsert installs one plan: forward links, reverse edges, and
// overflow pruning with the same diversity heuristic. Runs serially in ID
// order; the pruning distances accrue to the planning rank's fixup stats.
func (ix *Index) applyInsert(plan *insertPlan, st *searchStats) {
	id := plan.id
	for l, sel := range plan.sel {
		lst := make([]int32, len(sel), ix.degreeCap(l)+1)
		copy(lst, sel)
		ix.links[l][id] = lst
		for _, nb := range sel {
			ix.addLink(l, int64(nb), id, st)
		}
	}
	if ix.entry < 0 || ix.levels[id] > ix.maxLevel {
		ix.entry = id
		ix.maxLevel = ix.levels[id]
	}
}

// addLink appends a reverse edge id to node nb's level-l list, re-running
// the diversity selection over the overflowing list when it exceeds the
// degree cap.
func (ix *Index) addLink(level int, nb, id int64, st *searchStats) {
	lst := append(ix.links[level][nb], int32(id))
	cap := ix.degreeCap(level)
	if len(lst) <= cap {
		ix.links[level][nb] = lst
		return
	}
	// Rank nb's neighbors by distance to nb and keep the diverse prefix.
	rank := ix.RankOfRow(nb) // pruning reads nb's row from its own shard's rank perspective
	nv := ix.Vector(nb)
	ix.countRow(st, rank, nb)
	cands := make([]heapItem, len(lst))
	for i, v := range lst {
		cands[i] = heapItem{d: ix.dist(rank, st, nv, int64(v)), id: int64(v)}
	}
	sortItems(cands)
	ix.links[level][nb] = ix.selectNeighbors(rank, st, cands, cap, lst[:0])
}

// selectNeighbors is the HNSW neighbor-diversity heuristic: walk the
// candidates in ascending distance and keep one only if it is closer to
// the query than to every neighbor already kept, so the list spans
// directions instead of crowding one cluster.
func (ix *Index) selectNeighbors(rank int, st *searchStats, cands []heapItem, cap int, dst []int32) []int32 {
	for _, c := range cands {
		if len(dst) >= cap {
			break
		}
		keep := true
		for _, s := range dst {
			ix.countRow(st, rank, c.id)
			ix.countRow(st, rank, int64(s))
			if ix.l2(ix.Vector(c.id), ix.Vector(int64(s)), st) < c.d {
				keep = false
				break
			}
		}
		if keep {
			dst = append(dst, int32(c.id))
		}
	}
	return dst
}
