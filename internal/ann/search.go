package ann

import (
	"fmt"
	"sort"

	"wholegraph/internal/sim"
)

// searchStats accumulates one kernel's traffic: distance evaluations,
// vector rows read (split local/remote relative to the charged rank), and
// adjacency bytes streamed. flush converts it into one Kernel charge.
type searchStats struct {
	dists      int64
	localRows  int64
	remoteRows int64
	edgeBytes  int64
}

// countRow records a read of row v from rank's perspective: rows in the
// rank's own shard are local HBM traffic, the rest cross NVLink.
func (ix *Index) countRow(st *searchStats, rank int, v int64) {
	if ix.RankOfRow(v) == rank {
		st.localRows++
	} else {
		st.remoteRows++
	}
}

// l2 computes the squared L2 distance between two vectors and counts the
// evaluation. Row reads are counted by the caller (the query side is
// usually already in registers).
func (ix *Index) l2(a, b []float32, st *searchStats) float32 {
	st.dists++
	var s float32
	b = b[:len(a)]
	for j, av := range a {
		d := av - b[j]
		s += d * d
	}
	return s
}

// dist computes the squared L2 distance from query q to row v, counting
// the distance and v's row read.
func (ix *Index) dist(rank int, st *searchStats, q []float32, v int64) float32 {
	ix.countRow(st, rank, v)
	return ix.l2(q, ix.Vector(v), st)
}

// flush charges dev for the accumulated traffic as one kernel and resets
// the stats. A search that touched nothing charges nothing.
func (ix *Index) flush(dev *sim.Device, st *searchStats, tag string) float64 {
	if st.dists == 0 && st.localRows == 0 && st.remoteRows == 0 && st.edgeBytes == 0 {
		return 0
	}
	rowBytes := float64(ix.dim * 4)
	dt := dev.Kernel(sim.KernelCost{
		FLOPs:          3 * float64(ix.dim) * float64(st.dists),
		StreamBytes:    float64(st.edgeBytes),
		RandBytes:      float64(st.localRows) * rowBytes,
		RemoteBytes:    float64(st.remoteRows) * rowBytes,
		RemoteSegBytes: rowBytes,
		Tag:            tag,
	})
	*st = searchStats{}
	return dt
}

// heapItem orders by (d, id) ascending — the total order every queue and
// tie-break in the package uses, so results are deterministic even among
// exactly equal distances.
type heapItem struct {
	d  float32
	id int64
}

func itemLess(a, b heapItem) bool {
	if a.d != b.d {
		return a.d < b.d
	}
	return a.id < b.id
}

func sortItems(items []heapItem) {
	sort.Slice(items, func(i, j int) bool { return itemLess(items[i], items[j]) })
}

// minHeap pops the closest item first (the expansion frontier).
type minHeap struct{ a []heapItem }

func (h *minHeap) reset()   { h.a = h.a[:0] }
func (h *minHeap) len() int { return len(h.a) }
func (h *minHeap) push(x heapItem) {
	h.a = append(h.a, x)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !itemLess(h.a[i], h.a[p]) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}
func (h *minHeap) pop() heapItem {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && itemLess(h.a[l], h.a[m]) {
			m = l
		}
		if r < last && itemLess(h.a[r], h.a[m]) {
			m = r
		}
		if m == i {
			break
		}
		h.a[i], h.a[m] = h.a[m], h.a[i]
		i = m
	}
	return top
}

// maxHeap keeps the ef best seen so far, worst on top for cheap eviction.
type maxHeap struct{ a []heapItem }

func (h *maxHeap) reset()        { h.a = h.a[:0] }
func (h *maxHeap) len() int      { return len(h.a) }
func (h *maxHeap) top() heapItem { return h.a[0] }
func (h *maxHeap) push(x heapItem) {
	h.a = append(h.a, x)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !itemLess(h.a[p], h.a[i]) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}
func (h *maxHeap) pop() heapItem {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && itemLess(h.a[m], h.a[l]) {
			m = l
		}
		if r < last && itemLess(h.a[m], h.a[r]) {
			m = r
		}
		if m == i {
			break
		}
		h.a[i], h.a[m] = h.a[m], h.a[i]
		i = m
	}
	return top
}

// searchScratch is one rank's reusable search working set. Visited marks
// use an epoch counter so clearing is O(1) per search.
type searchScratch struct {
	visited []int32
	epoch   int32
	cand    minHeap
	res     maxHeap
	out     []heapItem
}

func newSearchScratch(n int) *searchScratch {
	return &searchScratch{visited: make([]int32, n)}
}

func (sc *searchScratch) begin() {
	sc.epoch++
	if sc.epoch == 0 { // wrapped: hard-clear the stamps
		for i := range sc.visited {
			sc.visited[i] = 0
		}
		sc.epoch = 1
	}
	sc.cand.reset()
	sc.res.reset()
}

func (sc *searchScratch) seen(v int64) bool {
	if sc.visited[v] == sc.epoch {
		return true
	}
	sc.visited[v] = sc.epoch
	return false
}

// greedy walks level l from ep to a local minimum of the distance to q:
// repeatedly move to the closest neighbor while it improves on the current
// position (ties never improve, so the walk terminates).
func (ix *Index) greedy(rank int, st *searchStats, q []float32, ep int64, epD float32, level int) (int64, float32) {
	for {
		improved := false
		for _, nb := range ix.links[level][ep] {
			st.edgeBytes += 4
			d := ix.dist(rank, st, q, int64(nb))
			if itemLess(heapItem{d, int64(nb)}, heapItem{epD, ep}) {
				ep, epD = int64(nb), d
				improved = true
			}
		}
		if !improved {
			return ep, epD
		}
	}
}

// searchLayer is the ef-bounded beam search of one level: expand the
// closest unexpanded candidate until none can improve the current ef-best
// set. Returns the best items sorted ascending (at least one: ep itself).
// The returned slice aliases sc.out and is valid until the next search on
// this scratch.
func (ix *Index) searchLayer(rank int, sc *searchScratch, st *searchStats, q []float32, ep int64, epD float32, level, ef int) []heapItem {
	sc.begin()
	sc.seen(ep)
	start := heapItem{epD, ep}
	sc.cand.push(start)
	sc.res.push(start)
	for sc.cand.len() > 0 {
		c := sc.cand.pop()
		if sc.res.len() >= ef && itemLess(sc.res.top(), c) {
			break
		}
		for _, nb := range ix.links[level][c.id] {
			st.edgeBytes += 4
			if sc.seen(int64(nb)) {
				continue
			}
			d := ix.dist(rank, st, q, int64(nb))
			it := heapItem{d, int64(nb)}
			if sc.res.len() < ef {
				sc.cand.push(it)
				sc.res.push(it)
			} else if itemLess(it, sc.res.top()) {
				sc.cand.push(it)
				sc.res.pop()
				sc.res.push(it)
			}
		}
	}
	sc.out = append(sc.out[:0], sc.res.a...)
	sortItems(sc.out)
	return sc.out
}

// mustRank resolves dev to its communicator rank; searches can only run
// on devices that opened the shared vector table.
func (ix *Index) mustRank(dev *sim.Device) int {
	r := ix.comm.RankOfDevice(dev)
	if r < 0 {
		panic(fmt.Sprintf("ann: device %d is not part of the index communicator", dev.ID))
	}
	return r
}

// searchOne runs the full multi-level descent for one query against the
// built index and appends the k best to dst.
func (ix *Index) searchOne(rank int, sc *searchScratch, st *searchStats, q []float32, k, ef int, dst []Result) []Result {
	if ef < k {
		ef = k
	}
	ep := ix.entry
	epD := ix.dist(rank, st, q, ep)
	for l := int(ix.maxLevel); l >= 1; l-- {
		ep, epD = ix.greedy(rank, st, q, ep, epD, l)
	}
	items := ix.searchLayer(rank, sc, st, q, ep, epD, 0, ef)
	if k > len(items) {
		k = len(items)
	}
	for _, it := range items[:k] {
		dst = append(dst, Result{ID: it.id, Dist: it.d})
	}
	return dst
}

// Search answers one top-k query on dev as a single kernel: greedy descent
// through the upper levels, then an ef-wide beam at level 0 (ef <= 0 takes
// Options.EfSearch; ef is raised to k if below). The query q must be a
// dim-length vector; pass a row of the indexed matrix (Vector) to search
// by node.
func (ix *Index) Search(dev *sim.Device, q []float32, k, ef int) []Result {
	if ef <= 0 {
		ef = ix.Opts.EfSearch
	}
	rank := ix.mustRank(dev)
	var st searchStats
	out := ix.searchOne(rank, ix.scratch[rank], &st, q, k, ef, make([]Result, 0, k))
	ix.flush(dev, &st, "ann.search")
	return out
}

// SearchMany answers len(queries)/dim top-k queries from one flat buffer
// (row-major, as filled by GatherQueries) in a single batched kernel: the
// launch overhead is paid once and the summed traffic bounds the kernel,
// which is how a real batched search kernel behaves.
func (ix *Index) SearchMany(dev *sim.Device, queries []float32, k, ef int) [][]Result {
	if ef <= 0 {
		ef = ix.Opts.EfSearch
	}
	if len(queries)%ix.dim != 0 {
		panic(fmt.Sprintf("ann: SearchMany buffer length %d is not a multiple of dim %d", len(queries), ix.dim))
	}
	rank := ix.mustRank(dev)
	sc := ix.scratch[rank]
	nq := len(queries) / ix.dim
	out := make([][]Result, nq)
	var st searchStats
	for i := 0; i < nq; i++ {
		q := queries[i*ix.dim : (i+1)*ix.dim]
		out[i] = ix.searchOne(rank, sc, &st, q, k, ef, make([]Result, 0, k))
	}
	ix.flush(dev, &st, "ann.search")
	return out
}
