package ann

import (
	"math/rand"
	"testing"

	"wholegraph/internal/sim"
	"wholegraph/internal/tensor"
	"wholegraph/internal/wholemem"
)

// clustered builds an [n x dim] matrix of points around k Gaussian cluster
// centers — the structured geometry HNSW is supposed to exploit.
func clustered(n, dim, k int, seed int64) *tensor.Dense {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float32, k)
	for c := range centers {
		centers[c] = make([]float32, dim)
		for j := range centers[c] {
			centers[c][j] = float32(rng.NormFloat64())
		}
	}
	emb := tensor.New(n, dim)
	for i := 0; i < n; i++ {
		center := centers[rng.Intn(k)]
		row := emb.Row(i)
		for j := range row {
			row[j] = center[j] + 0.1*float32(rng.NormFloat64())
		}
	}
	return emb
}

func newTestIndex(t *testing.T, emb *tensor.Dense, opts Options) (*sim.Machine, *Index) {
	t.Helper()
	m := sim.NewMachine(sim.DGXA100(1))
	comm, err := wholemem.NewComm(m.NodeDevs(0))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(comm, emb, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m, ix
}

func TestBruteMatchesExact(t *testing.T) {
	emb := clustered(500, 8, 10, 3)
	m, ix := newTestIndex(t, emb, Options{})
	dev := m.Devs[2]
	before := dev.Now()
	for qi := 0; qi < 20; qi++ {
		q := emb.Row(qi * 17 % emb.R)
		got := ix.BruteSearch(dev, q, 10)
		want := ix.Exact(q, 10)
		if len(got) != len(want) {
			t.Fatalf("query %d: brute returned %d results, exact %d", qi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d result %d: brute %+v != exact %+v", qi, i, got[i], want[i])
			}
		}
	}
	if dev.Now() <= before {
		t.Fatal("BruteSearch charged no virtual time")
	}
}

func TestRecallOnClusteredEmbeddings(t *testing.T) {
	emb := clustered(4000, 16, 25, 7)
	m, ix := newTestIndex(t, emb, Options{M: 12, EfConstruction: 100})
	dev := m.Devs[0]
	queries := 200
	var recall float64
	for qi := 0; qi < queries; qi++ {
		q := emb.Row((qi * 31) % emb.R)
		got := ix.Search(dev, q, 10, 64)
		recall += Recall(got, ix.Exact(q, 10))
	}
	recall /= float64(queries)
	if recall < 0.9 {
		t.Fatalf("recall@10 = %.3f at ef=64 on clustered data, want >= 0.9", recall)
	}
	// A wider beam can only search more of the graph.
	var wide float64
	for qi := 0; qi < 50; qi++ {
		q := emb.Row((qi * 31) % emb.R)
		wide += Recall(ix.Search(dev, q, 10, 256), ix.Exact(q, 10))
	}
	wide /= 50
	if wide < recall-0.05 {
		t.Fatalf("recall fell from %.3f to %.3f when ef grew 64 -> 256", recall, wide)
	}
}

// buildFingerprint captures everything the build produced: the graph, the
// entry point, and the per-device virtual clocks.
func buildFingerprint(m *sim.Machine, ix *Index) (levels []int32, entry int64, links [][][]int32, clocks []float64) {
	levels = append(levels, ix.levels...)
	entry = ix.entry
	links = make([][][]int32, len(ix.links))
	for l := range ix.links {
		links[l] = make([][]int32, ix.n)
		for v := 0; v < ix.n; v++ {
			links[l][v] = append([]int32(nil), ix.Neighbors(l, int64(v))...)
		}
	}
	for _, d := range m.Devs {
		clocks = append(clocks, d.Now())
	}
	return
}

func TestBuildDeterministicSerialVsParallel(t *testing.T) {
	emb := clustered(1500, 12, 10, 11)
	opts := Options{M: 8, EfConstruction: 48, Seed: 5}

	prev := sim.SetParallel(false)
	mSer, ixSer := newTestIndex(t, emb.Clone(), opts)
	sim.SetParallel(true)
	mPar, ixPar := newTestIndex(t, emb.Clone(), opts)
	sim.SetParallel(prev)

	lSer, eSer, gSer, cSer := buildFingerprint(mSer, ixSer)
	lPar, ePar, gPar, cPar := buildFingerprint(mPar, ixPar)
	if eSer != ePar {
		t.Fatalf("entry point differs: serial %d, parallel %d", eSer, ePar)
	}
	for v := range lSer {
		if lSer[v] != lPar[v] {
			t.Fatalf("node %d level differs: serial %d, parallel %d", v, lSer[v], lPar[v])
		}
	}
	if len(gSer) != len(gPar) {
		t.Fatalf("level count differs: serial %d, parallel %d", len(gSer), len(gPar))
	}
	for l := range gSer {
		for v := range gSer[l] {
			a, b := gSer[l][v], gPar[l][v]
			if len(a) != len(b) {
				t.Fatalf("level %d node %d degree differs: serial %v, parallel %v", l, v, a, b)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("level %d node %d neighbors differ: serial %v, parallel %v", l, v, a, b)
				}
			}
		}
	}
	for i := range cSer {
		if cSer[i] != cPar[i] {
			t.Fatalf("device %d clock differs: serial %v, parallel %v", i, cSer[i], cPar[i])
		}
	}

	// Searches against bit-identical graphs return bit-identical results.
	for qi := 0; qi < 25; qi++ {
		q := emb.Row(qi * 13 % emb.R)
		a := ixSer.Search(mSer.Devs[1], q, 10, 32)
		b := ixPar.Search(mPar.Devs[1], q, 10, 32)
		if len(a) != len(b) {
			t.Fatalf("query %d: result count differs", qi)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d result %d: %+v != %+v", qi, i, a[i], b[i])
			}
		}
	}
}

func TestBuildDeterministicAcrossSeeds(t *testing.T) {
	emb := clustered(800, 8, 6, 2)
	_, a := newTestIndex(t, emb.Clone(), Options{Seed: 3})
	_, b := newTestIndex(t, emb.Clone(), Options{Seed: 3})
	_, c := newTestIndex(t, emb.Clone(), Options{Seed: 4})
	for v := 0; v < a.n; v++ {
		if a.levels[v] != b.levels[v] {
			t.Fatalf("same seed, node %d level %d != %d", v, a.levels[v], b.levels[v])
		}
	}
	diff := false
	for v := 0; v < a.n && !diff; v++ {
		diff = a.levels[v] != c.levels[v]
	}
	if !diff {
		t.Fatal("seeds 3 and 4 drew identical level assignments for 800 nodes")
	}
}

func TestGraphInvariants(t *testing.T) {
	emb := clustered(2000, 10, 8, 9)
	_, ix := newTestIndex(t, emb, Options{M: 6, EfConstruction: 40})
	if int(ix.levels[ix.entry]) != ix.MaxLevel() {
		t.Fatalf("entry node %d has level %d, index max level is %d",
			ix.entry, ix.levels[ix.entry], ix.MaxLevel())
	}
	for l := 0; l <= ix.MaxLevel(); l++ {
		cap := ix.degreeCap(l)
		for v := int64(0); v < int64(ix.n); v++ {
			nbs := ix.Neighbors(l, v)
			if int(ix.levels[v]) < l {
				if nbs != nil {
					t.Fatalf("node %d (level %d) has links at level %d", v, ix.levels[v], l)
				}
				continue
			}
			if len(nbs) > cap {
				t.Fatalf("node %d level %d degree %d exceeds cap %d", v, l, len(nbs), cap)
			}
			for _, nb := range nbs {
				if int64(nb) == v {
					t.Fatalf("node %d has a self-link at level %d", v, l)
				}
				if nb < 0 || int(nb) >= ix.n {
					t.Fatalf("node %d level %d links out-of-range node %d", v, l, nb)
				}
				if int(ix.levels[nb]) < l {
					t.Fatalf("node %d level %d links node %d whose level is only %d",
						v, l, nb, ix.levels[nb])
				}
			}
		}
	}
}

func TestSearchChargesLocalAndRemoteTraffic(t *testing.T) {
	emb := clustered(3000, 16, 12, 5)
	m, ix := newTestIndex(t, emb, Options{})
	dev := m.Devs[0]
	m.Reset()
	for qi := 0; qi < 10; qi++ {
		ix.Search(dev, emb.Row(qi*101%emb.R), 10, 64)
	}
	if dev.Now() <= 0 {
		t.Fatal("searches charged no virtual time")
	}
	if dev.Stats.LocalBytes <= 0 || dev.Stats.RemoteBytes <= 0 {
		t.Fatalf("expected both local and remote traffic over an 8-way shard, got local=%g remote=%g",
			dev.Stats.LocalBytes, dev.Stats.RemoteBytes)
	}
	if dev.Stats.FLOPs <= 0 {
		t.Fatal("searches charged no FLOPs")
	}
}

func TestExactNodesMatchesExact(t *testing.T) {
	emb := clustered(600, 8, 5, 13)
	_, ix := newTestIndex(t, emb, Options{})
	ids := []int64{0, 17, 599, 300, 17}
	many := ix.ExactNodes(ids, 10)
	for i, id := range ids {
		want := ix.Exact(ix.Vector(id), 10)
		if len(many[i]) != len(want) {
			t.Fatalf("id %d: %d results vs %d", id, len(many[i]), len(want))
		}
		for j := range want {
			if many[i][j] != want[j] {
				t.Fatalf("id %d result %d: %+v != %+v", id, j, many[i][j], want[j])
			}
		}
	}
}
