package baseline

import (
	"testing"

	"wholegraph/internal/dataset"
	"wholegraph/internal/sim"
	"wholegraph/internal/train"
)

func smallOpts() train.Options {
	return train.Options{
		Arch: "graphsage", Batch: 32, Fanouts: []int{4, 4},
		Hidden: 16, Heads: 2, Dropout: 0.2, LR: 0.01, Seed: 5,
	}
}

func smallDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.OgbnProducts.Scaled(0.001))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestHostLoaderBatchValid(t *testing.T) {
	m := sim.NewMachine(sim.DGXA100(1))
	ds := smallDataset(t)
	ld := NewHostLoader(ds, m.CPUs[0], m.Devs[0], []int{4, 4}, DGL, 1)
	b, tm := ld.BuildBatch(ds.Train[:16])
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.BatchSize() != 16 {
		t.Fatalf("batch size = %d", b.BatchSize())
	}
	if tm.Sample <= 0 || tm.Gather <= 0 {
		t.Errorf("host loader timing incomplete: %+v", tm)
	}
	// The GPU must have spent idle time waiting on CPU + PCIe.
	if m.Devs[0].Stats.IdleSeconds <= 0 {
		t.Error("GPU never idled during host batch preparation")
	}
	if m.Devs[0].Stats.HostBytes <= 0 {
		t.Error("no PCIe traffic recorded")
	}
	// Targets' features are the first rows.
	dim := ds.Spec.FeatDim
	for i, v := range ds.Train[:16] {
		for j := 0; j < dim; j++ {
			if b.Feat.At(i, j) != ds.Feat[v*int64(dim)+int64(j)] {
				t.Fatalf("feature mismatch at target %d", i)
			}
		}
	}
}

func TestBaselineEpochRuns(t *testing.T) {
	m := sim.NewMachine(sim.DGXA100(1))
	// Realistic batch/fanout so data preparation, not kernel launch
	// overhead, sets the shape (as at paper scale).
	ds, err := dataset.Generate(dataset.OgbnProducts.Scaled(0.005))
	if err != nil {
		t.Fatal(err)
	}
	opts := smallOpts()
	opts.Batch = 128
	opts.Fanouts = []int{10, 10}
	tr, err := New(m, ds, opts, DGL)
	if err != nil {
		t.Fatal(err)
	}
	st := tr.RunEpoch()
	if st.EpochTime <= 0 || st.Iters == 0 {
		t.Fatalf("bad epoch stats: %+v", st)
	}
	// Baseline signature (Figure 9, left bars): sampling + gathering
	// dominate the epoch.
	if st.Timing.Sample+st.Timing.Gather < st.Timing.Train {
		t.Errorf("baseline should be sample/gather bound: %+v", st.Timing)
	}
}

func TestPyGSlowerThanDGL(t *testing.T) {
	ds := smallDataset(t)
	epoch := func(f Flavor) float64 {
		m := sim.NewMachine(sim.DGXA100(1))
		tr, err := New(m, ds, smallOpts(), f)
		if err != nil {
			t.Fatal(err)
		}
		m.Reset()
		return tr.RunEpoch().EpochTime
	}
	dgl, pyg := epoch(DGL), epoch(PyG)
	if pyg <= dgl {
		t.Errorf("PyG epoch (%g) should exceed DGL epoch (%g)", pyg, dgl)
	}
}

func TestWholeGraphBeatsBaselines(t *testing.T) {
	// The headline (Table V): WholeGraph is much faster than both
	// baselines for identical models and workloads. This needs a
	// non-trivial workload — on toy batches kernel-launch overhead
	// dominates every pipeline equally.
	ds, err := dataset.Generate(dataset.OgbnProducts.Scaled(0.005))
	if err != nil {
		t.Fatal(err)
	}
	opts := smallOpts()
	opts.Batch = 128
	opts.Fanouts = []int{10, 10}

	m1 := sim.NewMachine(sim.DGXA100(1))
	wg, err := train.New(m1, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	m1.Reset()
	wgTime := wg.RunEpoch().EpochTime

	m2 := sim.NewMachine(sim.DGXA100(1))
	dgl, err := New(m2, ds, opts, DGL)
	if err != nil {
		t.Fatal(err)
	}
	m2.Reset()
	dglTime := dgl.RunEpoch().EpochTime

	if dglTime < 3*wgTime {
		t.Errorf("DGL epoch %g not >=3x WholeGraph epoch %g", dglTime, wgTime)
	}
}

func TestBaselineAccuracyParity(t *testing.T) {
	// Table III: the baselines and WholeGraph train to comparable accuracy
	// because the model math is shared; verify the baseline also learns.
	m := sim.NewMachine(sim.DGXA100(1))
	ds := smallDataset(t)
	opts := smallOpts()
	opts.Arch = "gcn"
	opts.LR = 0.02
	tr, err := New(m, ds, opts, DGL)
	if err != nil {
		t.Fatal(err)
	}
	first := tr.RunEpoch()
	var last train.EpochStats
	for e := 0; e < 30; e++ {
		last = tr.RunEpoch()
	}
	if last.Loss >= first.Loss || last.TrainAcc <= first.TrainAcc {
		t.Errorf("baseline failed to learn: loss %.3f->%.3f acc %.3f->%.3f",
			first.Loss, last.Loss, first.TrainAcc, last.TrainAcc)
	}
}

func TestBaselineUtilizationLow(t *testing.T) {
	m := sim.NewMachine(sim.DGXA100(1))
	// Realistic per-iteration volumes: at toy sizes kernel launches keep
	// the GPU busy enough to mask the waiting (see Figure 12's premise).
	ds, err0 := dataset.Generate(dataset.OgbnProducts.Scaled(0.005))
	if err0 != nil {
		t.Fatal(err0)
	}
	opts := smallOpts()
	opts.Batch = 128
	opts.Fanouts = []int{10, 10}
	opts.Trace = true
	tr, err := New(m, ds, opts, DGL)
	if err != nil {
		t.Fatal(err)
	}
	dev := tr.Worker0Device()
	t0 := dev.Now()
	for e := 0; e < 3; e++ {
		tr.RunEpoch()
	}
	bf := sim.BusyFraction(dev.Trace(), t0, dev.Now())
	// Figure 12: baseline GPU utilization fluctuates and stays low.
	if bf > 0.6 {
		t.Errorf("baseline GPU utilization %.3f unexpectedly high", bf)
	}
}

func TestFlavorName(t *testing.T) {
	if FlavorName(DGL) != "DGL" || FlavorName(PyG) != "PyG" {
		t.Error("flavor names changed")
	}
}
