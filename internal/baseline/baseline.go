// Package baseline implements the host-memory GNN training pipelines the
// paper compares against (DGL v0.7.2 and PyG v2.0.2 style): graph structure
// and features live in host memory, neighbor sampling and feature gathering
// run on the CPU, and the prepared mini-batch crosses PCIe to the GPU each
// iteration (Figure 1). The GPU sits idle while the CPU prepares data,
// which is what caps these frameworks' GPU utilization in Figure 12.
//
// The training math is identical to the WholeGraph pipeline (the same
// models run on the same autograd stack), so accuracy parity (Table III,
// Figure 7) holds by construction, as it does in the paper; only the data
// path differs.
package baseline

import (
	"fmt"
	"math/rand"

	"wholegraph/internal/core"
	"wholegraph/internal/dataset"
	"wholegraph/internal/gnn"
	"wholegraph/internal/graph"
	"wholegraph/internal/sampling"
	"wholegraph/internal/sim"
	"wholegraph/internal/spops"
	"wholegraph/internal/tensor"
	"wholegraph/internal/train"
)

// Flavor selects which framework the pipeline emulates.
type Flavor = sampling.Flavor

// Framework flavors.
const (
	DGL = sampling.FlavorDGL
	PyG = sampling.FlavorPyG
)

// FlavorName returns the display name used in tables.
func FlavorName(f Flavor) string {
	if f == DGL {
		return "DGL"
	}
	return "PyG"
}

// HostLoader builds batches the DGL/PyG way: CPU sampling, CPU
// deduplication, CPU feature gather, then PCIe transfer of structure and
// features to the training GPU.
type HostLoader struct {
	DS      *dataset.Dataset
	CPU     *sim.CPU
	Dev     *sim.Device
	Fanouts []int
	Flavor  Flavor

	sampler *sampling.CPUSampler
	rng     *rand.Rand
}

// NewHostLoader creates a loader for dev whose CPU work is charged to cpu.
func NewHostLoader(ds *dataset.Dataset, cpu *sim.CPU, dev *sim.Device, fanouts []int, flavor Flavor, seed int64) *HostLoader {
	return &HostLoader{
		DS: ds, CPU: cpu, Dev: dev, Fanouts: fanouts, Flavor: flavor,
		sampler: sampling.NewCPUSampler(ds.Graph, cpu, flavor, seed),
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Device implements train.BatchLoader.
func (l *HostLoader) Device() *sim.Device { return l.Dev }

// hostUniqueOps is the charged host cost per hash-map operation during CPU
// deduplication (hashing, probing, Python/C++ dispatch amortized).
const hostUniqueOps = 12

// BuildBatch implements train.BatchLoader. Phase attribution follows
// Figure 9: "sampling" covers CPU sampling + dedup + the sub-graph
// structure transfer; "gathering" covers the CPU feature gather + the
// feature transfer; training time is recorded by the caller.
func (l *HostLoader) BuildBatch(targets []int64) (*gnn.Batch, core.Timing) {
	var tm core.Timing
	// The CPU starts preparing when the GPU asks for the next batch:
	// no pipelining, as the paper's utilization traces show.
	l.CPU.SetNow(l.Dev.Now())

	c0 := l.CPU.Now()
	cur := targets
	blocks := make([]*spops.SubCSR, len(l.Fanouts))
	var structBytes float64
	for hop, fan := range l.Fanouts {
		nb := l.sampler.SampleLayer(cur, fan)
		// CPU-side append-unique with a hash map.
		index := make(map[int64]int32, len(cur)+len(nb.Neighbors))
		uniq := make([]int64, len(cur), len(cur)+len(nb.Neighbors))
		copy(uniq, cur)
		for i, v := range cur {
			index[v] = int32(i)
		}
		subID := make([]int32, len(nb.Neighbors))
		for i, v := range nb.Neighbors {
			id, ok := index[v]
			if !ok {
				id = int32(len(uniq))
				index[v] = id
				uniq = append(uniq, v)
			}
			subID[i] = id
		}
		dup := make([]int32, len(uniq))
		for _, id := range subID {
			dup[id]++
		}
		l.CPU.Ops(hostUniqueOps * float64(len(cur)+len(nb.Neighbors)))
		blk := &spops.SubCSR{
			NumTargets: len(cur),
			NumNodes:   len(uniq),
			RowPtr:     nb.Offsets,
			Col:        subID,
			DupCount:   dup,
		}
		if l.DS.Spec.Weighted {
			// Host-side edge-weight lookup for the sampled edges.
			blk.EdgeW = make([]float32, 0, len(nb.Neighbors))
			for i, tgt := range cur {
				for _, v := range nb.Neighbors[nb.Offsets[i]:nb.Offsets[i+1]] {
					blk.EdgeW = append(blk.EdgeW, graph.HashEdgeWeight(tgt, v))
				}
			}
			l.CPU.Gather(float64(4 * len(blk.EdgeW)))
			structBytes += float64(4 * len(blk.EdgeW))
		}
		blocks[len(l.Fanouts)-1-hop] = blk
		structBytes += float64(8*len(nb.Offsets) + 4*len(subID))
		cur = uniq
	}
	sampleCPU := l.CPU.Now() - c0

	// CPU feature gather for the input node set.
	dim := l.DS.Spec.FeatDim
	feat := tensor.New(len(cur), dim)
	for i, v := range cur {
		copy(feat.Row(i), l.DS.Feat[v*int64(dim):(v+1)*int64(dim)])
	}
	featBytes := float64(4 * len(cur) * dim)
	l.CPU.Gather(featBytes)
	gatherCPU := l.CPU.Now() - c0 - sampleCPU

	// The GPU waits for the CPU, then receives structure and features
	// over its PCIe share.
	d0 := l.Dev.Now()
	l.Dev.IdleUntil(l.CPU.Now())
	wait := l.Dev.Now() - d0
	// Attribute the wait proportionally to the two CPU phases.
	total := sampleCPU + gatherCPU
	if total > 0 {
		tm.Sample += wait * sampleCPU / total
		tm.Gather += wait * gatherCPU / total
	}
	tm.Sample += l.Dev.HostCopy(structBytes)
	tm.Gather += l.Dev.HostCopy(featBytes)

	labels := make([]int32, len(targets))
	for i, v := range targets {
		labels[i] = l.DS.Labels[v]
	}
	return &gnn.Batch{Blocks: blocks, Feat: feat, Labels: labels}, tm
}

// New builds a DGL-like or PyG-like trainer over the machine. The layer
// backend follows the flavor (DGL layers for DGL, PyG layers for PyG),
// matching how the paper benchmarks the stock frameworks. Each worker gets
// its own host executor (the frameworks spawn one dataloader process per
// worker), so workers sample concurrently in virtual time and may run on
// real goroutines under sim.RunParallel; the first worker uses the node's
// primary CPU, keeping single-worker virtual times identical to earlier
// revisions.
func New(m *sim.Machine, ds *dataset.Dataset, opts train.Options, flavor Flavor) (*train.Trainer, error) {
	if ds.Graph == nil {
		return nil, fmt.Errorf("baseline: %s is out-of-core (no materialized CSR); the host-memory baselines sample from an in-RAM graph", ds.Spec.Name)
	}
	if flavor == DGL {
		opts.Backend = spops.BackendDGL
	} else {
		opts.Backend = spops.BackendPyG
	}
	return train.NewCustom(m, ds, opts, func(w int, dev *sim.Device) train.BatchLoader {
		cpu := m.CPUs[dev.Node]
		if w > 0 {
			cpu = m.AddCPU(dev.Node)
		}
		return NewHostLoader(ds, cpu, dev, opts.Normalize().Fanouts, flavor, opts.Seed+int64(w))
	})
}
