package train_test

import (
	"runtime"
	"testing"

	"wholegraph/internal/baseline"
	"wholegraph/internal/dataset"
	"wholegraph/internal/sim"
	"wholegraph/internal/train"
)

func eqOpts(arch string) train.Options {
	return train.Options{
		Arch: arch, Batch: 32, Fanouts: []int{4, 4},
		Hidden: 16, Heads: 2, Dropout: 0.2, LR: 0.01, Seed: 5,
	}
}

func eqDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.OgbnProducts.Scaled(0.001))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// runEpochs builds a fresh trainer over a fresh machine and runs it for the
// given epochs, returning the stats plus the final clocks of every device
// and CPU. flavor selects the pipeline: -1 for WholeGraph, otherwise a
// baseline.Flavor.
func runEpochs(t *testing.T, epochs, workers int, flavor baseline.Flavor, wholegraph bool) ([]train.EpochStats, []float64) {
	t.Helper()
	m := sim.NewMachine(sim.DGXA100(1))
	ds := eqDataset(t)
	opts := eqOpts("graphsage")
	opts.RealWorkers = workers
	var tr *train.Trainer
	var err error
	if wholegraph {
		tr, err = train.New(m, ds, opts)
	} else {
		tr, err = baseline.New(m, ds, opts, flavor)
	}
	if err != nil {
		t.Fatal(err)
	}
	var stats []train.EpochStats
	for e := 0; e < epochs; e++ {
		stats = append(stats, tr.RunEpoch())
	}
	var clocks []float64
	for _, d := range m.Devs {
		clocks = append(clocks, d.Now())
	}
	for _, c := range m.CPUs {
		clocks = append(clocks, c.Now())
	}
	return stats, clocks
}

// TestSerialParallelEquivalence is the correctness anchor for parallel
// device execution (ISSUE 1): with pinned seeds, running the per-worker
// epoch body on real goroutines must produce bit-identical losses,
// accuracies, phase breakdowns and virtual clocks to the serial reference
// path under GOMAXPROCS=1.
func TestSerialParallelEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name       string
		flavor     baseline.Flavor
		wholegraph bool
	}{
		{"wholegraph", 0, true},
		{"dgl", baseline.DGL, false},
		{"pyg", baseline.PyG, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const epochs, workers = 2, 3

			prevProcs := runtime.GOMAXPROCS(1)
			prevPar := sim.SetParallel(false)
			serialStats, serialClocks := runEpochs(t, epochs, workers, tc.flavor, tc.wholegraph)
			sim.SetParallel(prevPar)
			runtime.GOMAXPROCS(prevProcs)

			prevPar = sim.SetParallel(true)
			parStats, parClocks := runEpochs(t, epochs, workers, tc.flavor, tc.wholegraph)
			sim.SetParallel(prevPar)

			if len(serialStats) != len(parStats) {
				t.Fatalf("epoch count %d vs %d", len(serialStats), len(parStats))
			}
			for e := range serialStats {
				if serialStats[e] != parStats[e] {
					t.Errorf("epoch %d stats differ:\n serial   %+v\n parallel %+v",
						e+1, serialStats[e], parStats[e])
				}
			}
			for i := range serialClocks {
				if serialClocks[i] != parClocks[i] {
					t.Errorf("clock %d: serial %v vs parallel %v", i, serialClocks[i], parClocks[i])
				}
			}
		})
	}
}

// TestParallelEvaluateDeterministic checks the evaluation path too: a model
// trained under parallel execution scores identically to one trained
// serially (the replica weights must match bit-for-bit for this to hold).
func TestParallelEvaluateDeterministic(t *testing.T) {
	ds := eqDataset(t)
	score := func(parallel bool) float64 {
		prev := sim.SetParallel(parallel)
		defer sim.SetParallel(prev)
		m := sim.NewMachine(sim.DGXA100(1))
		opts := eqOpts("gcn")
		opts.RealWorkers = 2
		tr, err := train.New(m, ds, opts)
		if err != nil {
			t.Fatal(err)
		}
		tr.RunEpoch()
		return tr.Evaluate(ds.Val, 128)
	}
	if s, p := score(false), score(true); s != p {
		t.Errorf("eval accuracy serial %v vs parallel %v", s, p)
	}
}
