package train_test

import (
	"runtime"
	"testing"

	"wholegraph/internal/dataset"
	"wholegraph/internal/sim"
	"wholegraph/internal/train"
)

// overlapRun trains a fresh model for the given epochs and returns the
// stats, the final parameter values of every replica, and the machine.
func overlapRun(t *testing.T, ds *dataset.Dataset, opts train.Options, nodes, epochs int) ([]train.EpochStats, [][][]float32, *sim.Machine) {
	t.Helper()
	m := sim.NewMachine(sim.DGXA100(nodes))
	tr, err := train.New(m, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	var stats []train.EpochStats
	for e := 0; e < epochs; e++ {
		stats = append(stats, tr.RunEpoch())
	}
	var params [][][]float32
	for _, mdl := range tr.Models {
		var ps [][]float32
		for _, p := range mdl.Params().Params() {
			v := make([]float32, len(p.W.V))
			copy(v, p.W.V)
			ps = append(ps, v)
		}
		params = append(params, ps)
	}
	return stats, params, m
}

// TestOverlapGradsBitIdentical is the correctness anchor of the overlap
// path: with pinned seeds, bucketed copy-stream gradient AllReduce must
// produce bit-identical losses, accuracies and final parameters to the
// blocking path — only virtual time may differ.
func TestOverlapGradsBitIdentical(t *testing.T) {
	ds := eqDataset(t)
	opts := eqOpts("graphsage")
	opts.RealWorkers = 3
	opts.MaxItersPerEpoch = 3

	off := opts
	on := opts
	on.OverlapGrads = true
	offStats, offParams, _ := overlapRun(t, ds, off, 1, 2)
	onStats, onParams, _ := overlapRun(t, ds, on, 1, 2)

	for e := range offStats {
		if offStats[e].Loss != onStats[e].Loss || offStats[e].TrainAcc != onStats[e].TrainAcc {
			t.Errorf("epoch %d: loss/acc differ: blocking %v/%v overlap %v/%v",
				e+1, offStats[e].Loss, offStats[e].TrainAcc, onStats[e].Loss, onStats[e].TrainAcc)
		}
	}
	for w := range offParams {
		for pi := range offParams[w] {
			for i := range offParams[w][pi] {
				if offParams[w][pi][i] != onParams[w][pi][i] {
					t.Fatalf("worker %d param %d elem %d: blocking %v overlap %v",
						w, pi, i, offParams[w][pi][i], onParams[w][pi][i])
				}
			}
		}
	}
}

// TestOverlapGradsSerialParallelEquivalence checks the overlap path under
// real worker goroutines: stats and every device clock must match the
// serial reference bit-for-bit, like the base path's equivalence test.
func TestOverlapGradsSerialParallelEquivalence(t *testing.T) {
	ds := eqDataset(t)
	run := func(parallel bool) ([]train.EpochStats, []float64) {
		prev := sim.SetParallel(parallel)
		defer sim.SetParallel(prev)
		opts := eqOpts("gcn")
		opts.RealWorkers = 3
		opts.MaxItersPerEpoch = 3
		opts.OverlapGrads = true
		stats, _, m := overlapRun(t, ds, opts, 1, 2)
		var clocks []float64
		for _, d := range m.Devs {
			clocks = append(clocks, d.Span())
		}
		return stats, clocks
	}

	prevProcs := runtime.GOMAXPROCS(1)
	serialStats, serialClocks := run(false)
	runtime.GOMAXPROCS(prevProcs)
	parStats, parClocks := run(true)

	for e := range serialStats {
		if serialStats[e] != parStats[e] {
			t.Errorf("epoch %d stats differ:\n serial   %+v\n parallel %+v", e+1, serialStats[e], parStats[e])
		}
	}
	for i := range serialClocks {
		if serialClocks[i] != parClocks[i] {
			t.Errorf("clock %d: serial %v vs parallel %v", i, serialClocks[i], parClocks[i])
		}
	}
}

// TestOverlapGradsReducesEpochTime pins the performance claim: on a
// multi-GPU machine with a model large enough that gradient communication
// is bandwidth-bound, hiding per-bucket AllReduce under backward compute
// must shorten the epoch. Same seeds, so the compute work is identical.
func TestOverlapGradsReducesEpochTime(t *testing.T) {
	ds := eqDataset(t)
	opts := train.Options{
		Arch: "graphsage", Batch: 96, Fanouts: []int{4, 4}, Hidden: 256,
		LR: 0.01, Seed: 5, RealWorkers: 1, MaxItersPerEpoch: 2,
	}
	off := opts
	on := opts
	on.OverlapGrads = true
	offStats, _, _ := overlapRun(t, ds, off, 1, 1)
	onStats, _, _ := overlapRun(t, ds, on, 1, 1)
	if onStats[0].EpochTime >= offStats[0].EpochTime {
		t.Errorf("overlap epoch %.6gs not faster than blocking %.6gs",
			onStats[0].EpochTime, offStats[0].EpochTime)
	}
	if onStats[0].Loss != offStats[0].Loss {
		t.Errorf("loss drifted: overlap %v blocking %v", onStats[0].Loss, offStats[0].Loss)
	}
}

// TestOverlapGradsComposesWithPipeline runs overlap together with the
// prefetch pipeline: both overlays on, results still bit-identical to the
// plain path and comm traffic recorded on the devices.
func TestOverlapGradsComposesWithPipeline(t *testing.T) {
	ds := eqDataset(t)
	opts := eqOpts("graphsage")
	opts.RealWorkers = 2
	opts.MaxItersPerEpoch = 3

	plain := opts
	both := opts
	both.OverlapGrads = true
	both.Pipeline = true
	plainStats, plainParams, _ := overlapRun(t, ds, plain, 1, 1)
	bothStats, bothParams, m := overlapRun(t, ds, both, 1, 1)

	if plainStats[0].Loss != bothStats[0].Loss {
		t.Errorf("loss differs: plain %v pipelined+overlap %v", plainStats[0].Loss, bothStats[0].Loss)
	}
	for w := range plainParams {
		for pi := range plainParams[w] {
			for i := range plainParams[w][pi] {
				if plainParams[w][pi][i] != bothParams[w][pi][i] {
					t.Fatalf("worker %d param %d elem %d differs", w, pi, i)
				}
			}
		}
	}
	var comm float64
	for _, d := range m.Devs {
		comm += d.Stats.CommSeconds
		if d.Stats.NVLinkTxBytes == 0 {
			t.Errorf("device %d sent no NVLink traffic during overlap training", d.ID)
		}
	}
	if comm == 0 {
		t.Error("no CommSeconds recorded")
	}
}
