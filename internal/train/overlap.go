package train

import (
	"wholegraph/internal/autograd"
	"wholegraph/internal/sched"
	"wholegraph/internal/sim"
)

// Gradient-communication overlap (Options.OverlapGrads): instead of one
// blocking AllReduce over the whole gradient vector after backward, the
// model's parameters are coalesced into byte-bounded buckets (DDP's
// bucket_cap_mb scheme: consecutive parameters accumulate into a bucket
// until its gradient payload reaches Options.BucketBytes) and each bucket's
// hierarchical AllReduce is issued on the copy stream as soon as every
// worker's backward pass has finalized that bucket's gradients — the tape
// reports readiness through BackwardHooked.
// Communication for layer l+1 then rides under the backward compute of
// layer l, and the optimizer only waits for each device's own last bucket.
// The averaging math per bucket is byte-for-byte the code averageGradients
// runs per parameter, in the same worker order, so losses, gradients and
// model state are bit-identical to the blocking path; only virtual time
// improves.

// overlapState is the lazily-built per-trainer bucket machinery.
type overlapState struct {
	buckets     [][]int   // bucket -> parameter indices (contiguous runs)
	paramBucket []int     // parameter index -> bucket
	bucketBytes []float64 // gradient payload per bucket (4 bytes/element)

	// Per real worker, reused every iteration.
	watch    [][]*autograd.Var // parameter Vars on the current tape
	left     [][]int           // per bucket: parameters not yet final
	readyAt  [][]float64       // per bucket: compute-stream readiness time
	readyFns []func(int)       // BackwardHooked callback, one per worker

	// Orchestrator scratch.
	devWorker []int // device index -> real-worker index, -1 for mirrors
	maxReady  []float64
	order     []int
	startAt   []float64
	lastDone  []float64 // per device: its completion time of its last bucket
}

// defaultBucketBytes is the coalescing threshold when Options.BucketBytes
// is unset: 256 KiB of gradient payload per bucket, small enough that the
// paper-scale models still split into several buckets and backward/comm
// overlap has pipeline stages to fill.
const defaultBucketBytes = 256 << 10

// ensureOverlap builds the bucket layout and per-worker scratch on first use.
// Consecutive parameters (registration order, which matches backward
// finalization order in reverse) coalesce into one bucket until the bucket
// holds at least bucketCap gradient bytes, then the next parameter opens a
// fresh bucket — tiny biases ride with their layer's weights instead of
// paying a standalone AllReduce's latency.
func (t *Trainer) ensureOverlap() {
	if t.ov != nil {
		return
	}
	t.ensureAvgState()
	bucketCap := float64(t.Opts.BucketBytes)
	if bucketCap <= 0 {
		bucketCap = defaultBucketBytes
	}
	s := &overlapState{}
	params := t.Models[0].Params().Params()
	s.paramBucket = make([]int, len(params))
	for pi, p := range params {
		if pi == 0 || s.bucketBytes[len(s.buckets)-1] >= bucketCap {
			s.buckets = append(s.buckets, nil)
			s.bucketBytes = append(s.bucketBytes, 0)
		}
		b := len(s.buckets) - 1
		s.buckets[b] = append(s.buckets[b], pi)
		s.bucketBytes[b] += float64(4 * len(p.W.V))
		s.paramBucket[pi] = b
	}
	nw, nb := len(t.Models), len(s.buckets)
	s.watch = make([][]*autograd.Var, nw)
	s.left = make([][]int, nw)
	s.readyAt = make([][]float64, nw)
	s.readyFns = make([]func(int), nw)
	for w := 0; w < nw; w++ {
		s.watch[w] = make([]*autograd.Var, 0, len(params))
		s.left[w] = make([]int, nb)
		s.readyAt[w] = make([]float64, nb)
		w := w
		dev := t.loaders[w].Device()
		s.readyFns[w] = func(pi int) {
			b := s.paramBucket[pi]
			s.left[w][b]--
			if s.left[w][b] == 0 {
				s.readyAt[w][b] = dev.StreamNow(sim.StreamCompute)
			}
		}
	}
	s.devWorker = make([]int, len(t.Machine.Devs))
	for i, d := range t.Machine.Devs {
		s.devWorker[i] = -1
		for w := range t.loaders {
			if t.loaders[w].Device() == d {
				s.devWorker[i] = w
			}
		}
	}
	s.maxReady = make([]float64, nb)
	s.order = make([]int, 0, nb)
	s.startAt = make([]float64, len(t.Machine.Devs))
	s.lastDone = make([]float64, len(t.Machine.Devs))
	t.ov = s
}

// overlapGradSync averages each gradient bucket across replicas and issues
// its hierarchical AllReduce on the copy stream, gated per device at the
// moment that device's bucket became ready. Mirror devices are gated at the
// busiest worker's readiness (matching how their compute is mirrored) and
// joined here; real workers join inside the optimizer region via
// WaitGradSync. Orchestrator-only, like every collective launch.
func (t *Trainer) overlapGradSync() {
	s := t.ov
	m := t.Machine
	for b := range s.buckets {
		mr := 0.0
		for w := range t.Models {
			if s.readyAt[w][b] > mr {
				mr = s.readyAt[w][b]
			}
		}
		s.maxReady[b] = mr
	}
	// Issue order and per-device gates are scheduler decisions
	// (internal/sched): buckets flush in fleet readiness order, each device
	// joining at its own backward readiness.
	s.order = sched.BucketOrder(s.maxReady, s.order)
	clear(s.lastDone)
	for _, b := range s.order {
		if len(t.Models) > 1 {
			for _, pi := range s.buckets[b] {
				t.averageParam(pi)
			}
		}
		sched.GateStarts(s.devWorker, s.readyAt, b, s.maxReady[b], s.startAt)
		c := sim.StartHierarchicalAllReduce(m, s.bucketBytes[b], sim.CollOpts{
			Stream: sim.StreamCopy, StartAt: s.startAt, Tag: "allreduce.grads",
		})
		for i := range m.Devs {
			if done := c.Done[i].T; done > s.lastDone[i] {
				s.lastDone[i] = done
			}
		}
	}
	for i, d := range m.Devs {
		if s.devWorker[i] < 0 {
			d.WaitEvent(sim.Event{T: s.lastDone[i]}, "grad-sync")
		}
	}
}
