package train

import (
	"testing"

	"wholegraph/internal/sim"
)

// epochAllocBudget bounds per-iteration steady-state allocations once the
// trainer is warm (tapes, arenas, dedupers, loader scratch all populated by
// the first epoch). The residue per iteration is the backward closures the
// autograd ops record plus a handful of per-epoch slices (shuffled batch
// list, stats) amortized over the epoch — nothing proportional to batch
// size, fanout, or feature width. The seed code allocated hundreds of times
// per iteration (every tensor, neighborhood, hash table, and sort buffer
// was fresh); this test fails tier-1 if that regresses.
const epochAllocBudget = 60 // per iteration

// TestSteadyStateEpochAllocs measures second-and-later epochs of a small
// trainer under serial execution (goroutine fan-out is wall-clock
// machinery, not training-loop churn) and asserts the per-iteration
// allocation budget.
func TestSteadyStateEpochAllocs(t *testing.T) {
	prev := sim.SetParallel(false)
	defer sim.SetParallel(prev)

	m := sim.NewMachine(sim.DGXA100(1))
	ds := smallDataset(t)
	opts := smallOpts("graphsage")
	opts.Batch = 8 // several iterations per epoch, so per-iter churn shows up
	tr, err := New(m, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	tr.RunEpoch() // warm-up: populates every pool with this workload's shapes
	tr.RunEpoch()

	iters := tr.ItersPerEpoch()
	if iters == 0 {
		t.Fatal("no iterations per epoch")
	}
	n := testing.AllocsPerRun(5, func() {
		tr.RunEpoch()
	})
	perIter := n / float64(iters)
	t.Logf("steady-state epoch: %.0f allocs (%.1f/iter over %d iters, budget %d/iter)",
		n, perIter, iters, epochAllocBudget)
	if perIter > epochAllocBudget {
		t.Fatalf("steady-state epoch allocated %.1f times per iteration (%d iters), budget %d",
			perIter, iters, epochAllocBudget)
	}
}

// TestSteadyStatePipelinedEpochAllocs holds the pipelined loader to the
// same per-iteration budget as the sequential path: double-buffering the
// batch scratch doubles warm-up allocation but must add zero steady-state
// allocs — prefetch just moves the same builds onto the copy stream.
func TestSteadyStatePipelinedEpochAllocs(t *testing.T) {
	prev := sim.SetParallel(false)
	defer sim.SetParallel(prev)

	m := sim.NewMachine(sim.DGXA100(1))
	ds := smallDataset(t)
	opts := smallOpts("graphsage")
	opts.Batch = 8
	opts.Pipeline = true
	tr, err := New(m, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Pipelined() {
		t.Fatal("trainer did not take the pipelined path")
	}
	tr.RunEpoch() // warm-up: populates both ring slots with this workload's shapes
	tr.RunEpoch()

	iters := tr.ItersPerEpoch()
	if iters == 0 {
		t.Fatal("no iterations per epoch")
	}
	n := testing.AllocsPerRun(5, func() {
		tr.RunEpoch()
	})
	perIter := n / float64(iters)
	t.Logf("steady-state pipelined epoch: %.0f allocs (%.1f/iter over %d iters, budget %d/iter)",
		n, perIter, iters, epochAllocBudget)
	if perIter > epochAllocBudget {
		t.Fatalf("steady-state pipelined epoch allocated %.1f times per iteration (%d iters), budget %d",
			perIter, iters, epochAllocBudget)
	}
}
