package train

import (
	"runtime"
	"testing"

	"wholegraph/internal/gnn"
	"wholegraph/internal/sim"
	"wholegraph/internal/tensor"
)

// graphRun trains a fresh model for the given epochs and returns the stats,
// the final parameter values of every replica, the trainer, and the machine.
func graphRun(t *testing.T, opts Options, nodes, epochs int) ([]EpochStats, [][][]float32, *Trainer, *sim.Machine) {
	t.Helper()
	m := sim.NewMachine(sim.DGXA100(nodes))
	ds := smallDataset(t)
	tr, err := New(m, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	var stats []EpochStats
	for e := 0; e < epochs; e++ {
		stats = append(stats, tr.RunEpoch())
	}
	var params [][][]float32
	for _, mdl := range tr.Models {
		var ps [][]float32
		for _, p := range mdl.Params().Params() {
			v := make([]float32, len(p.W.V))
			copy(v, p.W.V)
			ps = append(ps, v)
		}
		params = append(params, ps)
	}
	return stats, params, tr, m
}

func compareRuns(t *testing.T, label string, aStats, bStats []EpochStats, aParams, bParams [][][]float32) {
	t.Helper()
	for e := range aStats {
		if aStats[e].Loss != bStats[e].Loss || aStats[e].TrainAcc != bStats[e].TrainAcc {
			t.Errorf("%s: epoch %d loss/acc differ: %v/%v vs %v/%v", label, e+1,
				aStats[e].Loss, aStats[e].TrainAcc, bStats[e].Loss, bStats[e].TrainAcc)
		}
	}
	for w := range aParams {
		for pi := range aParams[w] {
			for i := range aParams[w][pi] {
				if aParams[w][pi][i] != bParams[w][pi][i] {
					t.Fatalf("%s: worker %d param %d elem %d: %v vs %v", label,
						w, pi, i, aParams[w][pi][i], bParams[w][pi][i])
				}
			}
		}
	}
}

// TestCaptureGraphBitIdentical is the correctness anchor of step
// capture/replay: for every architecture, training with CaptureGraph must
// produce bit-identical losses, accuracies and final parameters to eager
// execution — replay re-runs the same math in the same order, including the
// dropout RNG draws — while replay iterations actually happen.
func TestCaptureGraphBitIdentical(t *testing.T) {
	for _, arch := range []string{"gcn", "graphsage", "gat", "gin"} {
		t.Run(arch, func(t *testing.T) {
			opts := smallOpts(arch)
			opts.Batch = 8 // several iterations per epoch
			eager := opts
			graph := opts
			graph.CaptureGraph = true
			eStats, eParams, _, _ := graphRun(t, eager, 1, 3)
			gStats, gParams, gtr, _ := graphRun(t, graph, 1, 3)
			compareRuns(t, arch, eStats, gStats, eParams, gParams)
			gc := gtr.GraphStats()
			if gc.Captures == 0 || gc.Replays == 0 {
				t.Errorf("%s: expected captures and replays, got %d/%d", arch, gc.Captures, gc.Replays)
			}
			if gc.Captures > maxGraphsPerWorker {
				t.Errorf("%s: %d captures for a 2-slot loader", arch, gc.Captures)
			}
		})
	}
}

// TestCaptureGraphReducesEpochTime pins the virtual-time claim: once both
// loader slots are captured, a replay-only epoch must be strictly faster
// than the same eager epoch (same seeds, identical compute) because replay
// charges one graph launch instead of one kernel launch per kernel.
func TestCaptureGraphReducesEpochTime(t *testing.T) {
	opts := smallOpts("graphsage")
	opts.Batch = 8
	eager := opts
	graph := opts
	graph.CaptureGraph = true
	eStats, _, _, _ := graphRun(t, eager, 1, 4)
	gStats, _, gtr, _ := graphRun(t, graph, 1, 4)
	last := len(gStats) - 1
	if gStats[last].EpochTime >= eStats[last].EpochTime {
		t.Errorf("replay epoch %.6gs not faster than eager %.6gs",
			gStats[last].EpochTime, eStats[last].EpochTime)
	}
	if gc := gtr.GraphStats(); gc.Replays == 0 {
		t.Fatal("no replays happened; time comparison is meaningless")
	}
	if gStats[last].Loss != eStats[last].Loss {
		t.Errorf("loss drifted: graph %v eager %v", gStats[last].Loss, eStats[last].Loss)
	}
}

// TestCaptureGraphComposes runs capture/replay together with the prefetch
// pipeline and bucketed gradient overlap: all three overlays on, results
// still bit-identical to the plain eager path.
func TestCaptureGraphComposes(t *testing.T) {
	opts := smallOpts("graphsage")
	opts.Batch = 8
	opts.RealWorkers = 2
	plain := opts
	all := opts
	all.CaptureGraph = true
	all.Pipeline = true
	all.OverlapGrads = true
	pStats, pParams, _, _ := graphRun(t, plain, 1, 3)
	aStats, aParams, atr, _ := graphRun(t, all, 1, 3)
	compareRuns(t, "pipeline+overlap+graph", pStats, aStats, pParams, aParams)
	if gc := atr.GraphStats(); gc.Replays == 0 {
		t.Error("composed run never replayed")
	}
}

// TestCaptureGraphSerialParallelEquivalence checks the replay path under
// real worker goroutines (the -race gate): stats and device clocks must
// match the serial reference bit-for-bit.
func TestCaptureGraphSerialParallelEquivalence(t *testing.T) {
	run := func(parallel bool) ([]EpochStats, []float64) {
		prev := sim.SetParallel(parallel)
		defer sim.SetParallel(prev)
		opts := smallOpts("gcn")
		opts.Batch = 8
		opts.RealWorkers = 3
		opts.CaptureGraph = true
		opts.OverlapGrads = true
		stats, _, _, m := graphRun(t, opts, 1, 3)
		var clocks []float64
		for _, d := range m.Devs {
			clocks = append(clocks, d.Span())
		}
		return stats, clocks
	}

	prevProcs := runtime.GOMAXPROCS(1)
	serialStats, serialClocks := run(false)
	runtime.GOMAXPROCS(prevProcs)
	parStats, parClocks := run(true)

	for e := range serialStats {
		if serialStats[e] != parStats[e] {
			t.Errorf("epoch %d stats differ:\n serial   %+v\n parallel %+v", e+1, serialStats[e], parStats[e])
		}
	}
	for i := range serialClocks {
		if serialClocks[i] != parClocks[i] {
			t.Errorf("clock %d: serial %v vs parallel %v", i, serialClocks[i], parClocks[i])
		}
	}
}

// TestCaptureGraphInvalidatesOnStructureChange simulates a batch whose
// structure moved under a captured graph (the feature tensor replaced): the
// replay-validity check must catch it, re-capture eagerly, and keep the
// training trajectory bit-identical to a run that never invalidated.
func TestCaptureGraphInvalidatesOnStructureChange(t *testing.T) {
	opts := smallOpts("graphsage")
	opts.Batch = 8
	opts.CaptureGraph = true

	m := sim.NewMachine(sim.DGXA100(1))
	ds := smallDataset(t)
	tr, err := New(m, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	var losses []float64
	losses = append(losses, tr.RunEpoch().Loss, tr.RunEpoch().Loss)
	// Pretend the loader replaced the feature tensor of one captured slot.
	for _, g := range tr.gs.graphs[0] {
		g.feat = tensor.New(1, 1)
		break
	}
	losses = append(losses, tr.RunEpoch().Loss, tr.RunEpoch().Loss)
	gc := tr.GraphStats()
	if gc.Invalidations == 0 {
		t.Fatalf("structure change not invalidated (captures=%d replays=%d)", gc.Captures, gc.Replays)
	}
	if gc.Replays == 0 {
		t.Error("no replays after re-capture")
	}

	ref := opts
	refStats, _, _, _ := graphRun(t, ref, 1, 4)
	for e, l := range losses {
		if refStats[e].Loss != l {
			t.Errorf("epoch %d: loss after invalidation %v differs from undisturbed run %v", e+1, l, refStats[e].Loss)
		}
	}
}

// TestCaptureGraphFallsBackOnChurningBatches covers loaders that never
// reuse batch objects: once a worker exceeds maxGraphsPerWorker distinct
// batches it must drop to permanent eager execution with results identical
// to CaptureGraph=false.
func TestCaptureGraphFallsBackOnChurningBatches(t *testing.T) {
	opts := smallOpts("gcn")
	opts.Batch = 8
	opts.CaptureGraph = true

	m := sim.NewMachine(sim.DGXA100(1))
	ds := smallDataset(t)
	tr, err := New(m, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-poison worker 0's graph cache as if earlier iterations saw
	// maxGraphsPerWorker one-shot batch objects.
	tr.ensureGraphState()
	for i := 0; i < maxGraphsPerWorker; i++ {
		tr.gs.graphs[0][&gnn.Batch{}] = &stepGraph{}
	}
	stats := tr.RunEpoch()
	if !tr.gs.fallback[0] {
		t.Fatal("worker did not fall back to eager execution")
	}
	if gc := tr.GraphStats(); gc.Captures != 0 || gc.Replays != 0 || gc.Fallbacks == 0 {
		t.Errorf("fallback worker counters off: %+v", gc)
	}

	eager := opts
	eager.CaptureGraph = false
	eStats, _, _, _ := graphRun(t, eager, 1, 1)
	if stats.Loss != eStats[0].Loss {
		t.Errorf("fallback loss %v differs from eager %v", stats.Loss, eStats[0].Loss)
	}
}

// TestCaptureGraphEvaluateInterleaved interleaves Evaluate (which rebinds
// the parameters onto the evaluation tape) with replayed training epochs:
// replayStep must rebind the parameters back to the captured tape, keeping
// both the training losses and the evaluation scores bit-identical to
// eager.
func TestCaptureGraphEvaluateInterleaved(t *testing.T) {
	ds := smallDataset(t)
	run := func(capture bool) (losses, evals []float64) {
		m := sim.NewMachine(sim.DGXA100(1))
		opts := smallOpts("graphsage")
		opts.Batch = 8
		opts.CaptureGraph = capture
		tr, err := New(m, ds, opts)
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < 3; e++ {
			losses = append(losses, tr.RunEpoch().Loss)
			evals = append(evals, tr.Evaluate(ds.Val, 64))
		}
		return losses, evals
	}
	eLosses, eEvals := run(false)
	gLosses, gEvals := run(true)
	for e := range eLosses {
		if eLosses[e] != gLosses[e] {
			t.Errorf("epoch %d loss: eager %v graph %v", e+1, eLosses[e], gLosses[e])
		}
		if eEvals[e] != gEvals[e] {
			t.Errorf("epoch %d eval: eager %v graph %v", e+1, eEvals[e], gEvals[e])
		}
	}
}

// replayAllocBudget bounds per-iteration host allocations of an all-replay
// epoch. Replay walks no tape and records no closures: the residue is the
// per-epoch bookkeeping (shuffled batch list, stats) amortized over the
// iterations. Eager iterations allocate the backward closures every step
// (epochAllocBudget); replay must be well under that.
const replayAllocBudget = 25 // per iteration

// TestReplayEpochAllocs pins the host-side win of capture/replay: once both
// loader slots are captured, a replay epoch allocates strictly less than
// the eager steady state and stays under replayAllocBudget.
func TestReplayEpochAllocs(t *testing.T) {
	prev := sim.SetParallel(false)
	defer sim.SetParallel(prev)

	measure := func(capture bool) (perIter float64, iters int) {
		m := sim.NewMachine(sim.DGXA100(1))
		ds := smallDataset(t)
		opts := smallOpts("graphsage")
		opts.Batch = 8
		opts.CaptureGraph = capture
		tr, err := New(m, ds, opts)
		if err != nil {
			t.Fatal(err)
		}
		tr.RunEpoch() // warm-up + capture of both ring slots
		tr.RunEpoch()
		tr.RunEpoch()
		iters = tr.ItersPerEpoch()
		if iters == 0 {
			t.Fatal("no iterations per epoch")
		}
		n := testing.AllocsPerRun(5, func() {
			tr.RunEpoch()
		})
		return n / float64(iters), iters
	}

	eagerPerIter, _ := measure(false)
	replayPerIter, iters := measure(true)
	t.Logf("allocs/iter over %d iters: eager %.1f, replay %.1f (budget %d)",
		iters, eagerPerIter, replayPerIter, replayAllocBudget)
	if replayPerIter > replayAllocBudget {
		t.Fatalf("replay epoch allocated %.1f times per iteration, budget %d", replayPerIter, replayAllocBudget)
	}
	if replayPerIter >= eagerPerIter {
		t.Errorf("replay allocations %.1f/iter not below eager %.1f/iter", replayPerIter, eagerPerIter)
	}
}

// TestGradBucketCoalescer checks the byte-threshold bucket layout: a
// threshold of one byte gives one bucket per parameter, a huge threshold
// coalesces everything into one, and under any threshold every bucket
// except the last closed at or above the cap.
func TestGradBucketCoalescer(t *testing.T) {
	layout := func(bucketBytes int) *overlapState {
		m := sim.NewMachine(sim.DGXA100(1))
		ds := smallDataset(t)
		opts := smallOpts("graphsage")
		opts.OverlapGrads = true
		opts.BucketBytes = bucketBytes
		tr, err := New(m, ds, opts)
		if err != nil {
			t.Fatal(err)
		}
		tr.ensureOverlap()
		return tr.ov
	}

	nParams := func() int {
		m := sim.NewMachine(sim.DGXA100(1))
		tr, err := New(m, smallDataset(t), smallOpts("graphsage"))
		if err != nil {
			t.Fatal(err)
		}
		return len(tr.Models[0].Params().Params())
	}()

	if s := layout(1); len(s.buckets) != nParams {
		t.Errorf("1-byte cap: %d buckets for %d params", len(s.buckets), nParams)
	}
	if s := layout(1 << 30); len(s.buckets) != 1 {
		t.Errorf("1GiB cap: %d buckets, want 1", len(s.buckets))
	}
	s := layout(4 << 10)
	if len(s.buckets) <= 1 || len(s.buckets) >= nParams {
		t.Errorf("4KiB cap: %d buckets, want a proper coalescing between 1 and %d", len(s.buckets), nParams)
	}
	for b := 0; b < len(s.buckets)-1; b++ {
		if s.bucketBytes[b] < 4<<10 {
			t.Errorf("bucket %d closed at %g bytes, below the 4KiB cap", b, s.bucketBytes[b])
		}
	}
	for pi, b := range s.paramBucket {
		found := false
		for _, q := range s.buckets[b] {
			if q == pi {
				found = true
			}
		}
		if !found {
			t.Errorf("param %d missing from its bucket %d", pi, b)
		}
	}
}
