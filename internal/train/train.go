// Package train implements the WholeGraph training pipeline of §III: every
// GPU runs one data-parallel worker that samples on-GPU, deduplicates with
// AppendUnique, gathers features through distributed shared memory, trains
// its model replica, and synchronizes gradients with an AllReduce
// (hierarchical NVLink + InfiniBand for multi-node, §III-D).
//
// To keep host cost manageable, the simulation executes a configurable
// number of representative workers for real (default 1) and mirrors their
// measured per-iteration time onto the remaining devices; collectives are
// charged over the full machine. Epoch times and phase breakdowns are
// virtual seconds. Real workers execute on real goroutines between gradient
// synchronization points (sim.RunParallel): each worker owns its device,
// loader and model replica, and the loss/accuracy sums are reduced in
// worker order after the join, so results are bit-identical to serial
// execution regardless of sim.SetParallel.
package train

import (
	"fmt"
	"math/rand"

	"wholegraph/internal/autograd"
	"wholegraph/internal/blockcache"
	"wholegraph/internal/cache"
	"wholegraph/internal/core"
	"wholegraph/internal/dataset"
	"wholegraph/internal/featstore"
	"wholegraph/internal/gnn"
	"wholegraph/internal/nn"
	"wholegraph/internal/sched"
	"wholegraph/internal/sim"
	"wholegraph/internal/spops"
	"wholegraph/internal/tensor"
	"wholegraph/internal/topostore"
)

// Options configures a training run. Zero values take paper defaults via
// Normalize.
type Options struct {
	Arch    string // "gcn", "graphsage", "gat"
	Batch   int
	Fanouts []int
	Hidden  int
	Heads   int
	Dropout float32
	LR      float64
	// WeightDecay enables AdamW-style decoupled decay when non-zero.
	WeightDecay float64
	// ClipNorm clips the global gradient norm per step when positive.
	ClipNorm float64
	Backend  spops.Backend
	Seed     int64
	// RealWorkers is how many data-parallel workers execute for real per
	// node; the rest mirror their timing.
	RealWorkers int
	// MaxItersPerEpoch caps the measured iterations per epoch (0 = full
	// epoch); the epoch time is extrapolated from the measured mean.
	MaxItersPerEpoch int
	// Trace enables busy/idle interval recording on worker 0's device.
	Trace bool
	// Pipeline overlaps batch extraction with model compute: each worker's
	// loader prefetches batch i+1 on its device's copy stream while
	// iteration i runs forward/backward on the compute stream (§IV,
	// Fig. 10). Model state, losses and gradients are bit-identical to the
	// sequential run; only virtual time improves. Ignored when a loader
	// does not implement PrefetchingLoader (the host-memory baselines).
	Pipeline bool
	// CacheRows, when positive, fronts each worker's feature gathers with
	// a degree-ordered hot-node cache of that many rows (internal/cache).
	// Gather values are unchanged; only the local/remote traffic split —
	// and therefore virtual gather time — moves.
	CacheRows int
	// OverlapGrads overlaps gradient synchronization with the backward
	// pass: parameters are bucketed per layer (DDP-style) and each bucket's
	// hierarchical AllReduce is issued on the copy stream the moment
	// backward finalizes its gradients, so communication for one layer
	// hides under the backward compute of the next. Losses, gradients and
	// model state are bit-identical to the blocking path; only virtual time
	// improves. Composes with Pipeline.
	OverlapGrads bool
	// CaptureGraph captures each worker's training step as a replayable
	// graph (CUDA-Graph style): the first iterations on a given batch slot
	// record the op sequence, and subsequent iterations replay it with no
	// tape walk and no per-op dispatch, charging one graph launch in virtual
	// time instead of one launch per kernel. Row counts may vary between
	// replays (shapes are rebound from the live batch); a change of batch
	// structure invalidates the capture and falls back to eager execution
	// with re-capture. Losses, gradients and model state are bit-identical
	// to eager execution. Composes with Pipeline and OverlapGrads.
	CaptureGraph bool
	// Schedule routes each captured step's replay through the whole-step
	// scheduler (internal/sched, DESIGN.md §13): the replay's device charges
	// are recorded into a dependency DAG recovered from the tape's tensor
	// producers and consumers, then list-scheduled onto the compute and copy
	// streams so independent kernels — a Linear's dX and dW backward GEMMs,
	// sibling attention heads — run concurrently. The graph bracket extends
	// over loss and optimizer, so the whole step replays as one launch. Host
	// math still runs in the captured order: losses, gradients and model
	// state are bit-identical to eager execution; a scheduled step is never
	// slower than a plain captured one (the scheduler falls back to the
	// serial order when list scheduling finds no win). Implies CaptureGraph;
	// composes with Pipeline and OverlapGrads.
	Schedule bool
	// BucketBytes is the gradient-bucket coalescing threshold in bytes for
	// OverlapGrads (DDP bucket_cap_mb-style): consecutive parameters are
	// packed into one bucket until it holds at least this many gradient
	// bytes. 0 takes the 256 KiB default.
	BucketBytes int
	// PagedFeatures serves node features from the paged, compressed
	// feature store (internal/featstore) instead of the flat wholemem
	// slab: rows decode out of per-GPU LRU BlockCaches and page misses pay
	// the Unified-Memory fault cost on the copy stream. With the raw
	// encoding losses are bit-identical to the slab path; f16/q8 are
	// lossy and opt-in. Required for out-of-core datasets
	// (dataset.GenerateOutOfCore), whose slab was never materialized.
	PagedFeatures bool
	// FeatEncoding selects the page codec ("raw", "f16", "q8"; default
	// raw). Only meaningful with PagedFeatures.
	FeatEncoding string
	// FeatPageRows is the paged store's rows-per-page (0 = 256).
	FeatPageRows int
	// FeatCacheMB is each GPU's BlockCache budget in MiB (0 = 256).
	FeatCacheMB int
	// PagedTopo serves the CSR column array from the paged topology store
	// (internal/topostore) instead of a resident wholemem array: sampling
	// reads neighbors through a page-aware accessor whose misses pay the
	// Unified-Memory fault cost on the copy stream. Decoded neighbors are
	// bit-identical to the in-memory CSR. Required for out-of-core
	// datasets, whose edge list was never materialized. Incompatible with
	// Weighted datasets (edge weights need a materialized column).
	PagedTopo bool
	// TopoPageEdges is the paged topology store's column entries per page
	// (0 = 4096).
	TopoPageEdges int
	// TopoCacheMB is each GPU's topology BlockCache budget in MiB
	// (0 = 256).
	TopoCacheMB int
	// PrefetchPages, when positive, has each worker predict the paged
	// pages (topology and features) an upcoming batch will touch and fault
	// up to that many of each on the copy stream ahead of compute.
	// Prediction reads only host-visible metadata; batch contents, losses
	// and model state are bit-identical — hit rates and virtual time are
	// the only effect. Under Options.Pipeline the prediction targets the
	// batch one past the in-flight prefetch (whose full build already
	// faults its own pages); sequentially it targets the next batch.
	PrefetchPages int
	// CachePolicy selects the BlockCache replacement policy for both paged
	// stores: "lru" (default) or "admit" (TinyLFU-style frequency sketch
	// that rejects cold pages instead of evicting hot ones). Residency
	// only — decoded values never change.
	CachePolicy string
}

// Normalize fills defaults (paper's §IV settings scaled only where the
// caller overrides them).
func (o Options) Normalize() Options {
	if o.Arch == "" {
		o.Arch = "graphsage"
	}
	if o.Batch == 0 {
		o.Batch = 512
	}
	if len(o.Fanouts) == 0 {
		o.Fanouts = []int{30, 30, 30}
	}
	if o.Hidden == 0 {
		o.Hidden = 256
	}
	if o.Heads == 0 {
		o.Heads = 4
	}
	if o.LR == 0 {
		o.LR = 0.003
	}
	if o.RealWorkers == 0 {
		o.RealWorkers = 1
	}
	if o.Schedule {
		o.CaptureGraph = true
	}
	return o
}

// EpochStats reports one epoch of training.
type EpochStats struct {
	Epoch     int
	Iters     int     // iterations per worker this epoch
	EpochTime float64 // virtual seconds, max across devices
	Timing    core.Timing
	Loss      float64 // mean training loss
	TrainAcc  float64 // mean training batch accuracy
}

// BatchLoader produces training batches for one worker device. The
// WholeGraph pipeline uses core.Loader; the host-memory baselines use
// their own loaders (internal/baseline).
type BatchLoader interface {
	// BuildBatch samples, deduplicates and gathers the batch for the given
	// target nodes (original IDs), charging whatever executors it uses.
	BuildBatch(targets []int64) (*gnn.Batch, core.Timing)
	// Device is the GPU the worker trains on.
	Device() *sim.Device
}

// PrefetchingLoader is a BatchLoader that can additionally build the next
// batch on its device's copy stream while compute consumes the current
// one (core.Loader's two-slot ring). Options.Pipeline uses this path when
// every worker's loader implements it; baselines that only BuildBatch run
// sequentially regardless.
type PrefetchingLoader interface {
	BatchLoader
	// Prefetch starts building the batch for targets on the copy stream.
	Prefetch(targets []int64)
	// Collect waits for and returns the prefetched batch.
	Collect() (*gnn.Batch, core.Timing)
	// Release marks the most recently collected batch dead, unblocking
	// reuse of its ring slot.
	Release()
}

// PagePrefetcher is a BatchLoader that can fault the paged-store pages an
// upcoming batch will touch on the copy stream ahead of demand
// (core.Loader over paged stores). Options.PrefetchPages uses this path
// in the sequential loop; loaders without paged stores return 0 from it.
type PagePrefetcher interface {
	// PrefetchPages predicts and faults up to maxPages pages per paged
	// store for the given targets, returning the count actually faulted.
	PrefetchPages(targets []int64, maxPages int) int
}

// Trainer is the data-parallel trainer over a simulated machine. With the
// WholeGraph loader each machine node holds one replica of the graph store
// (§III-D); with a baseline loader the graph lives in host memory.
type Trainer struct {
	Machine *sim.Machine
	Opts    Options
	Stores  []*core.Store // one per node; nil for baseline pipelines
	Models  []gnn.Model   // one per real worker
	Opts4   []*nn.Adam    // optimizer per real worker
	ds      *dataset.Dataset
	loaders []BatchLoader
	caches  []*cache.FeatureCache // per real worker; empty without Options.CacheRows
	shards  [][]int64             // training shard per worker slot (all devices)
	rng     *rand.Rand
	epoch   int

	// tapes holds one arena-backed tape per real worker, Reset at the top of
	// every iteration so the steady state reuses the previous step's tensors.
	// Each tape (and its arena) is owned by its worker's goroutine inside
	// sim.RunParallel, mirroring device ownership.
	tapes []*autograd.Tape
	// averageGradients scratch: the per-replica parameter lists are stable
	// across iterations, as are the per-parameter accumulator shapes.
	avgParams [][]*nn.Param
	avgSums   []*tensor.Dense
	// ov is the gradient-overlap bucket state (Options.OverlapGrads),
	// built lazily by ensureOverlap.
	ov *overlapState
	// gs is the step-graph capture state (Options.CaptureGraph), built
	// lazily by ensureGraphState.
	gs *graphState
	// plans is per-worker scratch for the pipelined loop's scheduler-issued
	// action sequence (sched.PipelinePlan).
	plans [][]sched.PlanStep
}

// New builds a WholeGraph trainer: it partitions the store onto every node
// (charging setup) and instantiates identical model replicas. With
// Options.CacheRows it also builds one degree-ordered feature cache per
// worker, charging the one-time fill.
func New(m *sim.Machine, ds *dataset.Dataset, opts Options) (*Trainer, error) {
	opts = opts.Normalize()
	if ds.Feat == nil && ds.Gen != nil && !opts.PagedFeatures {
		return nil, fmt.Errorf("train: %s is out-of-core; set Options.PagedFeatures", ds.Spec.Name)
	}
	if ds.Graph == nil && !opts.PagedTopo {
		return nil, fmt.Errorf("train: %s is out-of-core (no materialized CSR); set Options.PagedTopo", ds.Spec.Name)
	}
	policy, err := blockcache.ParsePolicy(opts.CachePolicy)
	if err != nil {
		return nil, err
	}
	so := core.StoreOptions{
		PagedFeatures: opts.PagedFeatures,
		PagedTopo:     opts.PagedTopo,
	}
	if opts.PagedFeatures {
		enc, encErr := featstore.ParseEncoding(opts.FeatEncoding)
		if encErr != nil {
			return nil, encErr
		}
		so.Feat = featstore.Options{
			Encoding:   enc,
			PageRows:   opts.FeatPageRows,
			CacheBytes: int64(opts.FeatCacheMB) << 20,
			Policy:     policy,
		}
	}
	if opts.PagedTopo {
		so.Topo = topostore.Options{
			PageEdges:  opts.TopoPageEdges,
			CacheBytes: int64(opts.TopoCacheMB) << 20,
			Policy:     policy,
		}
	}
	var stores []*core.Store
	for n := 0; n < m.Cfg.Nodes; n++ {
		s, err := core.NewStoreOpts(m, n, ds, so)
		if err != nil {
			return nil, err
		}
		stores = append(stores, s)
	}
	var caches []*cache.FeatureCache
	var cacheErr error
	t, err := NewCustom(m, ds, opts, func(w int, dev *sim.Device) BatchLoader {
		ld := core.NewLoader(stores[0], dev, opts.Fanouts, opts.Seed+int64(w))
		if opts.CacheRows > 0 && cacheErr == nil {
			fc, err := cache.NewDegreeCache(stores[0].PG, dev, opts.CacheRows)
			if err != nil {
				cacheErr = err
				return ld
			}
			caches = append(caches, fc)
			ld.WithCache(fc)
		}
		return ld
	})
	if err != nil {
		return nil, err
	}
	if cacheErr != nil {
		return nil, fmt.Errorf("train: building feature cache: %w", cacheErr)
	}
	t.Stores = stores
	t.caches = caches
	return t, nil
}

// NewCustom builds a trainer whose batches come from mkLoader (one loader
// per real worker). It is the extension point the baseline pipelines use.
func NewCustom(m *sim.Machine, ds *dataset.Dataset, opts Options,
	mkLoader func(w int, dev *sim.Device) BatchLoader) (*Trainer, error) {
	opts = opts.Normalize()
	t := &Trainer{Machine: m, Opts: opts, ds: ds, rng: rand.New(rand.NewSource(opts.Seed))}
	cfg := gnn.Config{
		InDim:   ds.Spec.FeatDim,
		Hidden:  opts.Hidden,
		Classes: ds.Spec.NumClasses,
		Layers:  len(opts.Fanouts),
		Heads:   opts.Heads,
		Dropout: opts.Dropout,
		Backend: opts.Backend,
		Seed:    opts.Seed,
	}
	totalWorkers := len(m.Devs)
	t.shards = core.ShardTraining(ds.Train, totalWorkers)
	if opts.RealWorkers > m.Cfg.GPUsPerNode {
		return nil, fmt.Errorf("train: RealWorkers %d > GPUs per node %d", opts.RealWorkers, m.Cfg.GPUsPerNode)
	}
	for w := 0; w < opts.RealWorkers; w++ {
		t.Models = append(t.Models, gnn.New(opts.Arch, cfg))
		opt := nn.NewAdam(opts.LR)
		opt.WeightDecay = opts.WeightDecay
		t.Opts4 = append(t.Opts4, opt)
		dev := m.NodeDevs(0)[w]
		if opts.Trace && w == 0 {
			dev.Tracing = true
		}
		t.loaders = append(t.loaders, mkLoader(w, dev))
		t.tapes = append(t.tapes, autograd.NewTapeArena(tensor.NewArena()))
	}
	return t, nil
}

// Dataset returns the training dataset.
func (t *Trainer) Dataset() *dataset.Dataset { return t.ds }

// ItersPerEpoch returns the iteration count each worker runs per epoch.
func (t *Trainer) ItersPerEpoch() int {
	shard := len(t.shards[0])
	b := t.Opts.Batch
	return (shard + b - 1) / b
}

// Step runs forward/backward/optimizer for one worker on one batch and
// returns (loss, accuracy). All compute is charged to the worker's device.
func Step(model gnn.Model, opt *nn.Adam, dev *sim.Device, b *gnn.Batch, train bool) (float64, float64) {
	tp := autograd.NewTape()
	logits := model.Forward(dev, tp, b, train)
	grad := tensor.New(logits.Value.R, logits.Value.C)
	loss := tensor.CrossEntropy(logits.Value, b.Labels, grad)
	acc := tensor.Accuracy(logits.Value, b.Labels)
	if train {
		tp.Backward(logits, grad)
		opt.Step(dev, model.Params())
	}
	return loss, acc
}

// ensureAvgState builds the stable per-replica parameter lists and the
// per-parameter accumulator slots used by gradient averaging.
func (t *Trainer) ensureAvgState() {
	if t.avgParams == nil {
		t.avgParams = make([][]*nn.Param, len(t.Models))
		for w, mdl := range t.Models {
			t.avgParams[w] = mdl.Params().Params()
		}
		t.avgSums = make([]*tensor.Dense, len(t.avgParams[0]))
	}
}

// averageParam averages parameter pi's gradient across the replicas in
// worker order and writes the mean back into every replica. The overlap
// path calls this per bucket and the blocking path for every parameter, so
// both produce bit-identical gradients.
func (t *Trainer) averageParam(pi int) {
	params := t.avgParams
	var sum *tensor.Dense
	n := 0
	for w := range params {
		g := params[w][pi].Grad()
		if g == nil {
			continue
		}
		if sum == nil {
			if t.avgSums[pi] == nil {
				t.avgSums[pi] = tensor.New(g.R, g.C)
			}
			sum = t.avgSums[pi]
			copy(sum.V, g.V)
		} else {
			tensor.AccumInto(sum, g)
		}
		n++
	}
	if sum == nil {
		return
	}
	tensor.ScaleInto(sum, sum, 1/float32(n))
	for w := range params {
		if g := params[w][pi].Grad(); g != nil {
			copy(g.V, sum.V)
		}
	}
}

// averageGradients replicates data-parallel gradient averaging across the
// real workers (pure math) and charges one blocking full-machine
// hierarchical AllReduce for the model's gradient bytes.
func (t *Trainer) averageGradients() {
	if len(t.Models) > 1 {
		t.ensureAvgState()
		for pi := range t.avgParams[0] {
			t.averageParam(pi)
		}
	}
	bytes := float64(4 * t.Models[0].Params().NumElements())
	sim.HierarchicalAllReduce(t.Machine, bytes)
}

// Pipelined reports whether epochs run the overlapped loader path:
// Options.Pipeline is set and every worker's loader supports prefetching.
func (t *Trainer) Pipelined() bool {
	if !t.Opts.Pipeline {
		return false
	}
	for _, ld := range t.loaders {
		if _, ok := ld.(PrefetchingLoader); !ok {
			return false
		}
	}
	return true
}

// maxComputeTime is the largest compute-stream clock in the machine; the
// pipelined path uses it as the iteration baseline so in-flight copy
// streams (which may run ahead) do not skew the mirror-device charge.
func maxComputeTime(m *sim.Machine) float64 {
	t := 0.0
	for _, d := range m.Devs {
		if n := d.StreamNow(sim.StreamCompute); n > t {
			t = n
		}
	}
	for _, c := range m.CPUs {
		if c.Now() > t {
			t = c.Now()
		}
	}
	return t
}

// RunEpoch trains one epoch and returns its statistics. Per iteration, each
// real worker builds and trains on its own batch; mirror devices are
// advanced by the real workers' mean busy time so machine-level clocks and
// the AllReduce barrier behave as with a full worker set.
//
// With Options.Pipeline and prefetch-capable loaders, each worker collects
// the batch its loader prefetched on the copy stream, immediately issues
// the prefetch of the next batch, and only then runs forward/backward — so
// batch i+1's sample/dedup/gather overlaps iteration i's compute. The real
// (host) execution per worker stays serial and the loader consumes targets
// in the same order, so losses, gradients and model state are bit-identical
// to the sequential path; only the virtual clocks differ.
func (t *Trainer) RunEpoch() EpochStats {
	t.epoch++
	stats := EpochStats{Epoch: t.epoch}
	iters := t.ItersPerEpoch()
	measured := iters
	if t.Opts.MaxItersPerEpoch > 0 && measured > t.Opts.MaxItersPerEpoch {
		measured = t.Opts.MaxItersPerEpoch
	}
	pipelined := t.Pipelined()
	if pipelined && t.plans == nil {
		t.plans = make([][]sched.PlanStep, len(t.Models))
	}
	overlap := t.Opts.OverlapGrads
	if overlap {
		t.ensureOverlap()
	}
	captureGraph := t.Opts.CaptureGraph
	if captureGraph {
		t.ensureGraphState()
	}
	start := t.Machine.MaxTime()
	batches := make([][][]int64, len(t.Models))
	for w := range t.Models {
		batches[w] = core.EpochBatches(t.shards[w], t.Opts.Batch, t.rng)
	}

	var lossSum, accSum float64
	timings := make([]core.Timing, len(t.Models))
	iterDevStart := make([]float64, len(t.Models))
	trainStart := make([]float64, len(t.Models))
	// Per-worker results of one iteration's parallel region; losses and
	// accuracies are reduced in worker order after the join so the sums are
	// bit-identical to serial execution.
	results := make([]stepResult, len(t.Models))
	for it := 0; it < measured; it++ {
		iterStart := t.Machine.MaxTime()
		if pipelined {
			iterStart = maxComputeTime(t.Machine)
		}
		// Forward + backward on every real worker. Workers are independent
		// until the gradient AllReduce: each owns its device, loader, model
		// replica and RNG streams, so they run on real goroutines.
		sim.RunParallel(len(t.Models), func(w int) {
			mdl := t.Models[w]
			dev := t.loaders[w].Device()
			iterDevStart[w] = dev.Now()
			if pipelined {
				// The iteration's issue order — prime, collect, re-arm the
				// ring, optionally page-prefetch further ahead, compute — is a
				// scheduler decision (sched.PipelinePlan).
				pl := t.loaders[w].(PrefetchingLoader)
				pp, hasPP := t.loaders[w].(PagePrefetcher)
				pagePf := t.Opts.PrefetchPages > 0 && hasPP
				t.plans[w] = sched.PipelinePlan(t.plans[w], it, measured, pagePf)
				var b *gnn.Batch
				for _, step := range t.plans[w] {
					targets := batches[w][step.Batch%len(batches[w])]
					switch step.Op {
					case sched.OpPrime, sched.OpPrefetch:
						pl.Prefetch(targets)
					case sched.OpCollect:
						b, timings[w] = pl.Collect()
					case sched.OpPrefetchPages:
						pp.PrefetchPages(targets, t.Opts.PrefetchPages)
					case sched.OpCompute:
						trainStart[w] = dev.Now()
						results[w] = t.trainOn(w, mdl, dev, b, overlap, captureGraph)
					}
				}
				pl.Release()
			} else {
				b, tm := t.loaders[w].BuildBatch(batches[w][it%len(batches[w])])
				// Fault prefetch: predict the pages the NEXT batch will
				// touch and migrate them on the copy stream while this
				// iteration's forward/backward runs on compute.
				if t.Opts.PrefetchPages > 0 {
					if pp, ok := t.loaders[w].(PagePrefetcher); ok {
						if next := it + 1; next < measured {
							pp.PrefetchPages(batches[w][next%len(batches[w])], t.Opts.PrefetchPages)
						}
					}
				}
				timings[w] = tm
				trainStart[w] = dev.Now()
				results[w] = t.trainOn(w, mdl, dev, b, overlap, captureGraph)
			}
		})
		for w := range results {
			lossSum += results[w].loss
			accSum += results[w].acc
		}
		// Mirror the real workers' busy time onto the non-real devices so
		// the AllReduce barrier sees a realistic arrival pattern.
		var busiest float64
		for w := range t.Models {
			if busy := t.loaders[w].Device().Now() - iterStart; busy > busiest {
				busiest = busy
			}
		}
		for _, dev := range t.Machine.Devs {
			if t.isRealWorker(dev) {
				continue
			}
			dev.Kernel(sim.KernelCost{
				FLOPs: busiest * t.Machine.Cfg.Device.FP32TFLOPS * 1e12 * t.Machine.Cfg.Device.GemmEff,
				Tag:   "mirror",
			})
		}
		// Data parallelism: average gradients across replicas, then every
		// worker takes the identical optimizer step on its own replica.
		if overlap {
			t.overlapGradSync()
		} else {
			t.averageGradients()
		}
		sim.RunParallel(len(t.Models), func(w int) {
			mdl := t.Models[w]
			dev := t.loaders[w].Device()
			if overlap {
				// Join this device's compute stream with the completion of
				// its own last gradient bucket on the copy stream.
				dev.WaitEvent(sim.Event{T: t.ov.lastDone[dev.ID]}, "grad-sync")
			}
			if t.Opts.ClipNorm > 0 {
				nn.ClipGradNorm(mdl.Params(), t.Opts.ClipNorm)
			}
			t.Opts4[w].Step(dev, mdl.Params())
			if captureGraph && t.gs.schedOpen[w] {
				// Close the scheduled step's graph bracket: loss, gradient
				// sync and the optimizer all replayed inside it, so the whole
				// step cost one graph launch.
				dev.EndGraphReplay()
				t.gs.schedOpen[w] = false
			}
			timings[w].Train += dev.Now() - trainStart[w]
			// Compute-stream span of the whole iteration: with a sequential
			// loader this equals Sample+Gather+Train; pipelined it is
			// shorter because extraction hides behind compute.
			timings[w].Crit = dev.Now() - iterDevStart[w]
		})
		for w := range t.Models {
			stats.Timing.Add(timings[w])
		}
	}
	stats.Iters = iters
	stats.Loss = lossSum / float64(measured*len(t.Models))
	stats.TrainAcc = accSum / float64(measured*len(t.Models))
	elapsed := t.Machine.MaxTime() - start
	// Extrapolate to the full epoch when iterations were capped, and
	// normalize the phase breakdown to a per-worker view comparable with
	// the epoch time.
	scale := float64(iters) / float64(measured) / float64(len(t.Models))
	stats.EpochTime = elapsed * float64(iters) / float64(measured)
	stats.Timing.Sample *= scale
	stats.Timing.Gather *= scale
	stats.Timing.Train *= scale
	stats.Timing.Crit *= scale
	return stats
}

// trainOn runs the forward/backward step for one worker's batch,
// dispatching to the capture/replay machinery when enabled. Runs inside the
// parallel region.
func (t *Trainer) trainOn(w int, mdl gnn.Model, dev *sim.Device, b *gnn.Batch, overlap, captureGraph bool) stepResult {
	if captureGraph && !t.gs.fallback[w] {
		return t.graphStep(w, mdl, dev, b, overlap)
	}
	return t.eagerStep(w, mdl, dev, b, overlap)
}

func (t *Trainer) isRealWorker(dev *sim.Device) bool {
	for _, ld := range t.loaders {
		if ld.Device() == dev {
			return true
		}
	}
	return false
}

// Evaluate measures accuracy on up to maxNodes of the given split using
// worker 0's model and sampled inference (no dropout), charged to the
// worker's device. Epoch statistics are measured as deltas, so interleaving
// evaluation between epochs does not distort them.
func (t *Trainer) Evaluate(ids []int64, maxNodes int) float64 {
	if len(ids) == 0 {
		return 0
	}
	if maxNodes > 0 && len(ids) > maxNodes {
		ids = ids[:maxNodes]
	}
	model := t.Models[0]
	dev := t.loaders[0].Device()
	var correct, total float64
	for off := 0; off < len(ids); off += t.Opts.Batch {
		end := off + t.Opts.Batch
		if end > len(ids) {
			end = len(ids)
		}
		b, _ := t.loaders[0].BuildBatch(ids[off:end])
		tp := t.tapes[0]
		tp.Reset()
		logits := model.Forward(dev, tp, b, false)
		correct += tensor.Accuracy(logits.Value, b.Labels) * float64(end-off)
		total += float64(end - off)
	}
	return correct / total
}

// EvaluateWithLabels measures accuracy over the given nodes against
// caller-provided ground-truth labels (the synthetic datasets know every
// node's true class, which gives the harness a lower-variance estimate
// than the small held-out splits of a scaled graph).
func (t *Trainer) EvaluateWithLabels(ids []int64, labels []int32) float64 {
	if len(ids) != len(labels) {
		panic(fmt.Sprintf("train: %d ids, %d labels", len(ids), len(labels)))
	}
	if len(ids) == 0 {
		return 0
	}
	model := t.Models[0]
	dev := t.loaders[0].Device()
	var correct, total float64
	for off := 0; off < len(ids); off += t.Opts.Batch {
		end := off + t.Opts.Batch
		if end > len(ids) {
			end = len(ids)
		}
		b, _ := t.loaders[0].BuildBatch(ids[off:end])
		tp := t.tapes[0]
		tp.Reset()
		logits := model.Forward(dev, tp, b, false)
		correct += tensor.Accuracy(logits.Value, labels[off:end]) * float64(end-off)
		total += float64(end - off)
	}
	return correct / total
}

// Predict returns the model's output vectors (logit rows) for the given
// nodes, running sampled inference in evaluation mode on worker 0. Output
// row i corresponds to ids[i]. Downstream tasks such as link prediction use
// the rows as node embeddings.
func (t *Trainer) Predict(ids []int64) [][]float32 {
	out := make([][]float32, 0, len(ids))
	model := t.Models[0]
	dev := t.loaders[0].Device()
	for off := 0; off < len(ids); off += t.Opts.Batch {
		end := off + t.Opts.Batch
		if end > len(ids) {
			end = len(ids)
		}
		b, _ := t.loaders[0].BuildBatch(ids[off:end])
		tp := t.tapes[0]
		tp.Reset()
		logits := model.Forward(dev, tp, b, false)
		for i := 0; i < logits.Value.R; i++ {
			row := make([]float32, logits.Value.C)
			copy(row, logits.Value.Row(i))
			out = append(out, row)
		}
	}
	return out
}

// Worker0Device returns the traced device of the first real worker.
func (t *Trainer) Worker0Device() *sim.Device { return t.loaders[0].Device() }

// Caches returns the per-worker feature caches; empty when the trainer was
// built without Options.CacheRows (or through NewCustom).
func (t *Trainer) Caches() []*cache.FeatureCache { return t.caches }

// CacheStats sums hit/miss counts across the per-worker feature caches.
// Both are zero when no cache is attached.
func (t *Trainer) CacheStats() (hits, misses int64) {
	for _, c := range t.caches {
		hits += c.Hits
		misses += c.Misses
	}
	return hits, misses
}

// FeatStores returns the paged feature stores behind the trainer's stores
// (one per machine node); empty unless Options.PagedFeatures was set.
func (t *Trainer) FeatStores() []*featstore.Store {
	var out []*featstore.Store
	for _, s := range t.Stores {
		if fs := s.FeatStore(); fs != nil {
			out = append(out, fs)
		}
	}
	return out
}

// FeatStoreStats aggregates BlockCache counters across every paged store.
// The zero Stats is returned when the trainer is not paged.
func (t *Trainer) FeatStoreStats() featstore.Stats {
	var agg featstore.Stats
	for _, fs := range t.FeatStores() {
		st := fs.Stats()
		if agg.Encoding == "" {
			agg.Encoding, agg.PageRows, agg.Policy = st.Encoding, st.PageRows, st.Policy
		}
		agg.Pages += st.Pages
		agg.EncodedBytes += st.EncodedBytes
		agg.CacheBytes += st.CacheBytes
		agg.Devices += st.Devices
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.Evictions += st.Evictions
		agg.PrefetchHits += st.PrefetchHits
		agg.AdmissionRejects += st.AdmissionRejects
		agg.ResidentBytes += st.ResidentBytes
	}
	return agg
}

// TopoStores returns the paged topology stores behind the trainer's stores
// (one per machine node); empty unless Options.PagedTopo was set.
func (t *Trainer) TopoStores() []*topostore.Store {
	var out []*topostore.Store
	for _, s := range t.Stores {
		if ts := s.TopoStore(); ts != nil {
			out = append(out, ts)
		}
	}
	return out
}

// TopoStoreStats aggregates topology BlockCache counters across every
// paged topology store. The zero Stats is returned when topology is
// resident.
func (t *Trainer) TopoStoreStats() topostore.Stats {
	var agg topostore.Stats
	for _, ts := range t.TopoStores() {
		st := ts.Stats()
		if agg.PageEdges == 0 {
			agg.PageEdges, agg.Policy = st.PageEdges, st.Policy
			agg.TopoBytes = st.TopoBytes
		}
		agg.Pages += st.Pages
		agg.CacheBytes += st.CacheBytes
		agg.Devices += st.Devices
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.Evictions += st.Evictions
		agg.PrefetchHits += st.PrefetchHits
		agg.AdmissionRejects += st.AdmissionRejects
		agg.ResidentBytes += st.ResidentBytes
	}
	return agg
}
