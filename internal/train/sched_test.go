package train

import (
	"runtime"
	"testing"

	"wholegraph/internal/dataset"
	"wholegraph/internal/sim"
)

// TestScheduleBitIdentical is the correctness anchor of the whole-step
// scheduler: for every architecture, training with Options.Schedule must
// produce bit-identical losses, accuracies and final parameters to eager
// execution — the scheduler only re-places virtual-time charges, never the
// host math — while scheduled replays actually happen.
func TestScheduleBitIdentical(t *testing.T) {
	for _, arch := range []string{"gcn", "graphsage", "gat", "gin"} {
		t.Run(arch, func(t *testing.T) {
			opts := smallOpts(arch)
			opts.Batch = 8
			eager := opts
			scheduled := opts
			scheduled.Schedule = true
			eStats, eParams, _, _ := graphRun(t, eager, 1, 3)
			sStats, sParams, str, _ := graphRun(t, scheduled, 1, 3)
			compareRuns(t, arch, eStats, sStats, eParams, sParams)
			if gc := str.GraphStats(); gc.Scheduled == 0 {
				t.Errorf("%s: no scheduled replays happened", arch)
			}
		})
	}
}

// TestScheduleNeverSlowerThanCapture pins the performance guarantee: a
// scheduled epoch in replay steady state is never slower than the same
// epoch under plain CaptureGraph (the scheduler falls back to the serial
// order when list scheduling finds no win), and on this bandwidth-bound
// configuration it is strictly faster.
func TestScheduleNeverSlowerThanCapture(t *testing.T) {
	opts := smallOpts("graphsage")
	opts.Batch = 8
	captured := opts
	captured.CaptureGraph = true
	scheduled := opts
	scheduled.Schedule = true
	cStats, _, _, _ := graphRun(t, captured, 1, 4)
	sStats, _, str, _ := graphRun(t, scheduled, 1, 4)
	last := len(sStats) - 1
	if sStats[last].EpochTime > cStats[last].EpochTime {
		t.Errorf("scheduled epoch %.6gs slower than captured %.6gs",
			sStats[last].EpochTime, cStats[last].EpochTime)
	}
	if sStats[last].EpochTime >= cStats[last].EpochTime {
		t.Errorf("scheduled epoch %.6gs not strictly faster than captured %.6gs",
			sStats[last].EpochTime, cStats[last].EpochTime)
	}
	if gc := str.GraphStats(); gc.Scheduled == 0 {
		t.Fatal("no scheduled replays; time comparison is meaningless")
	}
	if sStats[last].Loss != cStats[last].Loss {
		t.Errorf("loss drifted: scheduled %v captured %v", sStats[last].Loss, cStats[last].Loss)
	}
}

// TestScheduleComposes runs the scheduler together with the prefetch
// pipeline and bucketed gradient overlap across two real workers: all
// overlays on, results still bit-identical to the plain eager path.
func TestScheduleComposes(t *testing.T) {
	opts := smallOpts("graphsage")
	opts.Batch = 8
	opts.RealWorkers = 2
	plain := opts
	all := opts
	all.Schedule = true
	all.Pipeline = true
	all.OverlapGrads = true
	pStats, pParams, _, _ := graphRun(t, plain, 1, 3)
	aStats, aParams, atr, _ := graphRun(t, all, 1, 3)
	compareRuns(t, "pipeline+overlap+schedule", pStats, aStats, pParams, aParams)
	if gc := atr.GraphStats(); gc.Scheduled == 0 {
		t.Error("composed run never scheduled a replay")
	}
}

// TestScheduleSerialParallelEquivalence checks the scheduled-replay path
// under real worker goroutines (the -race gate): stats and device clocks
// must match the serial reference bit-for-bit — each worker's recorder is
// goroutine-owned like its device and tape.
func TestScheduleSerialParallelEquivalence(t *testing.T) {
	run := func(parallel bool) ([]EpochStats, []float64) {
		prev := sim.SetParallel(parallel)
		defer sim.SetParallel(prev)
		opts := smallOpts("gcn")
		opts.Batch = 8
		opts.RealWorkers = 3
		opts.Schedule = true
		opts.OverlapGrads = true
		stats, _, _, m := graphRun(t, opts, 1, 3)
		var clocks []float64
		for _, d := range m.Devs {
			clocks = append(clocks, d.Span())
		}
		return stats, clocks
	}

	prevProcs := runtime.GOMAXPROCS(1)
	serialStats, serialClocks := run(false)
	runtime.GOMAXPROCS(prevProcs)
	parStats, parClocks := run(true)

	for e := range serialStats {
		if serialStats[e] != parStats[e] {
			t.Errorf("epoch %d stats differ:\n serial   %+v\n parallel %+v", e+1, serialStats[e], parStats[e])
		}
	}
	for i := range serialClocks {
		if serialClocks[i] != parClocks[i] {
			t.Errorf("clock %d: serial %v vs parallel %v", i, serialClocks[i], parClocks[i])
		}
	}
}

// TestScheduleTraceAnnotations checks the Chrome-trace surface: a traced
// scheduled run emits busy intervals tagged with their DAG node IDs and
// scheduler-decision spans on the decision lane, and every decision span
// brackets its node's applied charges.
func TestScheduleTraceAnnotations(t *testing.T) {
	opts := smallOpts("graphsage")
	opts.Batch = 8
	opts.Schedule = true
	opts.Trace = true
	m := sim.NewMachine(sim.DGXA100(1))
	tr, err := New(m, smallDataset(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	tr.RunEpoch()
	tr.RunEpoch() // replay steady state: scheduler-placed intervals exist
	var tagged, decisions int
	for _, iv := range tr.Worker0Device().Trace() {
		if iv.Decision {
			decisions++
			if iv.Node <= 0 {
				t.Fatalf("decision interval %q without a node ID", iv.Tag)
			}
			if iv.End < iv.Start {
				t.Fatalf("decision interval %q ends before it starts", iv.Tag)
			}
			continue
		}
		if iv.Node > 0 {
			tagged++
		}
	}
	if tagged == 0 {
		t.Error("no busy intervals carry scheduler node IDs")
	}
	if decisions == 0 {
		t.Error("no scheduler-decision intervals recorded")
	}
}

// TestPipelinePagePrefetchBitIdentical enables Options.PrefetchPages under
// Options.Pipeline (the scheduler's pipeline plan orders the ring prefetch,
// the page prefetch one batch further ahead, and the compute): batch
// contents, losses and model state stay bit-identical to the plain
// pipelined paged run, and the prefetched pages actually land as hits.
func TestPipelinePagePrefetchBitIdentical(t *testing.T) {
	// A dataset larger than the 1 MiB caches, so pages churn and the
	// prefetched entries are genuinely new residency.
	ds, err := dataset.Generate(dataset.OgbnProducts.Scaled(0.004))
	if err != nil {
		t.Fatal(err)
	}
	paged := smallOpts("graphsage")
	paged.Pipeline = true
	paged.PagedTopo = true
	paged.TopoPageEdges = 256
	paged.TopoCacheMB = 1
	paged.PagedFeatures = true
	paged.FeatPageRows = 64
	paged.FeatCacheMB = 1
	base, _ := runEpochsOn(t, ds, paged, 2)

	pre := paged
	pre.PrefetchPages = 16
	got, tr := runEpochsOn(t, ds, pre, 2)
	for e := range base {
		if got[e].Loss != base[e].Loss || got[e].TrainAcc != base[e].TrainAcc {
			t.Errorf("epoch %d: pipelined page prefetch changed results (loss %v != %v)",
				e, got[e].Loss, base[e].Loss)
		}
	}
	if tr.TopoStoreStats().PrefetchHits+tr.FeatStoreStats().PrefetchHits == 0 {
		t.Error("pipelined page-prefetch run recorded no prefetch hits")
	}
}
