package train

import (
	"sync/atomic"

	"wholegraph/internal/autograd"
	"wholegraph/internal/gnn"
	"wholegraph/internal/sched"
	"wholegraph/internal/sim"
	"wholegraph/internal/spops"
	"wholegraph/internal/tensor"
)

// Step capture/replay (Options.CaptureGraph): the training loop re-runs an
// identical op sequence every iteration, yet the eager path re-walks the
// tape, re-dispatches every op and pays KernelLaunch per kernel — the host
// overhead CUDA Graphs eliminate. Here the first iteration on each batch
// slot runs eagerly on a plain capture tape (autograd.BeginCapture),
// recording the forward program and the backward gradient buffers; later
// iterations on the same slot replay the frozen tape: no tape rebuild, no
// per-op closure allocation, only parameter/gradient buffer rebinding, and
// the device charges one GraphLaunch instead of one KernelLaunch per
// kernel (sim.BeginGraphReplay). Loss/accuracy, gradient averaging and the
// optimizer stay live outside the captured program, so losses, gradients
// and model state are bit-identical to eager execution.
//
// Captures tolerate varying row counts (every replay closure reads shapes
// from the live block/feature buffers); they are keyed by batch identity
// and invalidated when the batch's structure moves (feature tensor or
// block pointers replaced), falling back to an eager re-capture. Loaders
// that never reuse batch objects (the host-memory baselines) blow through
// maxGraphsPerWorker and drop to permanent eager fallback.

// maxGraphsPerWorker bounds how many captured step graphs a worker keeps.
// The WholeGraph loader's two-slot ring needs two; anything past this means
// the loader does not reuse batch objects and capture cannot pay off.
const maxGraphsPerWorker = 4

// stepResult is one worker's loss/accuracy from a training step.
type stepResult struct {
	loss, acc float64
}

// stepGraph is one captured training step for one batch slot.
type stepGraph struct {
	tape   *autograd.Tape
	logits *autograd.Var
	grad   *tensor.Dense // loss-gradient seed, resized per replay
	// paramVars snapshots the capture tape's parameter bindings so replays
	// can point the optimizer back at them.
	paramVars []*autograd.Var
	// Structural identity at capture: replay is valid only while the batch
	// still presents these exact objects.
	feat   *tensor.Dense
	blocks []*spops.SubCSR
}

// matches reports whether the batch still has the structure g captured.
func (g *stepGraph) matches(b *gnn.Batch) bool {
	if b.Feat != g.feat || len(b.Blocks) != len(g.blocks) {
		return false
	}
	for i, blk := range b.Blocks {
		if blk != g.blocks[i] {
			return false
		}
	}
	return true
}

// graphState is the per-trainer capture machinery. Every slice is indexed
// by real worker, and each worker touches only its own entries inside the
// parallel region, mirroring device ownership.
type graphState struct {
	graphs   []map[*gnn.Batch]*stepGraph
	fallback []bool // worker exceeded maxGraphsPerWorker: stay eager

	// sch is each worker's whole-step scheduler recorder (Options.Schedule);
	// schedOpen marks a scheduled graph bracket held open across the
	// gradient sync so the optimizer's kernels land inside it.
	sch       []*sched.Recorder
	schedOpen []bool

	captures      []int64
	replays       []int64
	invalidations []int64
	fallbacks     []int64
	scheduled     []int64
}

// GraphCounters aggregates the step-graph machinery's counters across
// workers. All zero unless Options.CaptureGraph ran.
type GraphCounters struct {
	Captures      int64 // eager-priced capture iterations
	Replays       int64 // iterations replayed from a captured graph
	Invalidations int64 // captures dropped because batch structure moved
	Fallbacks     int64 // workers that dropped to permanent eager fallback
	Scheduled     int64 // replays routed through the whole-step scheduler
}

// GraphStats sums the capture machinery's counters across workers.
func (t *Trainer) GraphStats() GraphCounters {
	var c GraphCounters
	if t.gs == nil {
		return c
	}
	for w := range t.gs.graphs {
		c.Captures += t.gs.captures[w]
		c.Replays += t.gs.replays[w]
		c.Invalidations += t.gs.invalidations[w]
		c.Fallbacks += t.gs.fallbacks[w]
		c.Scheduled += t.gs.scheduled[w]
	}
	return c
}

// globalGraph mirrors every trainer's counters process-wide, so harnesses
// can report step-graph totals without holding the trainers themselves
// alive (counters are bumped per iteration at most; atomic because workers
// increment concurrently under sim.RunParallel).
var globalGraph struct {
	captures, replays, invalidations, fallbacks, scheduled atomic.Int64
}

// GlobalGraphCounters returns the process-wide step-graph totals across
// every trainer since process start.
func GlobalGraphCounters() GraphCounters {
	return GraphCounters{
		Captures:      globalGraph.captures.Load(),
		Replays:       globalGraph.replays.Load(),
		Invalidations: globalGraph.invalidations.Load(),
		Fallbacks:     globalGraph.fallbacks.Load(),
		Scheduled:     globalGraph.scheduled.Load(),
	}
}

func (t *Trainer) ensureGraphState() {
	if t.gs != nil {
		return
	}
	nw := len(t.Models)
	gs := &graphState{
		graphs:        make([]map[*gnn.Batch]*stepGraph, nw),
		fallback:      make([]bool, nw),
		schedOpen:     make([]bool, nw),
		captures:      make([]int64, nw),
		replays:       make([]int64, nw),
		invalidations: make([]int64, nw),
		fallbacks:     make([]int64, nw),
		scheduled:     make([]int64, nw),
	}
	for w := range gs.graphs {
		gs.graphs[w] = make(map[*gnn.Batch]*stepGraph, maxGraphsPerWorker)
	}
	if t.Opts.Schedule {
		gs.sch = make([]*sched.Recorder, nw)
		for w := range gs.sch {
			gs.sch[w] = sched.NewRecorder()
		}
	}
	t.gs = gs
}

// resetOverlapWatch refills worker w's overlap watch list from vars and
// re-arms the per-bucket countdowns for one backward pass.
func (t *Trainer) resetOverlapWatch(w int, vars []*autograd.Var) []*autograd.Var {
	s := t.ov
	wl := append(s.watch[w][:0], vars...)
	s.watch[w] = wl
	for b := range s.buckets {
		s.left[w][b] = len(s.buckets[b])
		s.readyAt[w][b] = 0
	}
	return wl
}

// eagerStep is the classic training step: reset the worker's arena tape,
// forward, loss, backward. Runs inside the parallel region.
func (t *Trainer) eagerStep(w int, mdl gnn.Model, dev *sim.Device, b *gnn.Batch, overlap bool) stepResult {
	tp := t.tapes[w]
	tp.Reset()
	logits := mdl.Forward(dev, tp, b, true)
	grad := tp.NewTensor(logits.Value.R, logits.Value.C)
	res := stepResult{
		loss: tensor.CrossEntropy(logits.Value, b.Labels, grad),
		acc:  tensor.Accuracy(logits.Value, b.Labels),
	}
	if overlap {
		// Track when backward finalizes each parameter bucket so the
		// orchestrator can gate that bucket's AllReduce there.
		s := t.ov
		wl := t.resetOverlapWatch(w, nil)
		for _, p := range mdl.Params().Params() {
			wl = append(wl, p.Var())
		}
		s.watch[w] = wl
		tp.BackwardHooked(logits, grad, wl, s.readyFns[w])
	} else {
		tp.Backward(logits, grad)
	}
	return res
}

// graphStep replays the captured graph for b, capturing (or invalidating
// and re-capturing) as needed. Runs inside the parallel region.
func (t *Trainer) graphStep(w int, mdl gnn.Model, dev *sim.Device, b *gnn.Batch, overlap bool) stepResult {
	gs := t.gs
	if g, ok := gs.graphs[w][b]; ok {
		if g.matches(b) {
			gs.replays[w]++
			globalGraph.replays.Add(1)
			return t.replayStep(w, mdl, dev, b, g, overlap)
		}
		// Structure moved under the same batch object: drop and re-capture.
		delete(gs.graphs[w], b)
		gs.invalidations[w]++
		globalGraph.invalidations.Add(1)
	}
	if len(gs.graphs[w]) >= maxGraphsPerWorker {
		// The loader is not reusing batch objects; capture cannot amortize.
		gs.fallback[w] = true
		gs.fallbacks[w]++
		globalGraph.fallbacks.Add(1)
		return t.eagerStep(w, mdl, dev, b, overlap)
	}
	return t.captureStep(w, mdl, dev, b, overlap)
}

// captureStep runs one eager-priced iteration on a fresh plain tape with
// capture enabled, freezing the step graph for b.
func (t *Trainer) captureStep(w int, mdl gnn.Model, dev *sim.Device, b *gnn.Batch, overlap bool) stepResult {
	tp := autograd.NewTape()
	tp.BeginCapture()
	logits := mdl.Forward(dev, tp, b, true)
	grad := tensor.New(logits.Value.R, logits.Value.C)
	res := stepResult{
		loss: tensor.CrossEntropy(logits.Value, b.Labels, grad),
		acc:  tensor.Accuracy(logits.Value, b.Labels),
	}
	if overlap {
		s := t.ov
		wl := t.resetOverlapWatch(w, nil)
		for _, p := range mdl.Params().Params() {
			wl = append(wl, p.Var())
		}
		s.watch[w] = wl
		tp.BackwardHooked(logits, grad, wl, s.readyFns[w])
	} else {
		tp.Backward(logits, grad)
	}
	tp.EndCapture()
	t.gs.graphs[w][b] = &stepGraph{
		tape:      tp,
		logits:    logits,
		grad:      grad,
		paramVars: mdl.Params().BoundVars(nil),
		feat:      b.Feat,
		blocks:    append([]*spops.SubCSR(nil), b.Blocks...),
	}
	t.gs.captures[w]++
	globalGraph.captures.Add(1)
	return res
}

// replayStep re-executes a captured step: rebind the parameters to the
// capture tape, replay forward inside a graph-launch bracket, recompute
// loss/accuracy live (the loss layer is outside the graph, as its output
// feeds the host), and replay backward over the frozen tape. With
// Options.Schedule the replay routes through the whole-step scheduler
// instead.
func (t *Trainer) replayStep(w int, mdl gnn.Model, dev *sim.Device, b *gnn.Batch, g *stepGraph, overlap bool) stepResult {
	if t.Opts.Schedule {
		return t.scheduledStep(w, mdl, dev, b, g, overlap)
	}
	mdl.Params().RebindVars(g.paramVars)
	dev.BeginGraphReplay("step-graph")
	g.tape.ReplayForward()
	g.grad.Resize(g.logits.Value.R, g.logits.Value.C)
	res := stepResult{
		loss: tensor.CrossEntropy(g.logits.Value, b.Labels, g.grad),
		acc:  tensor.Accuracy(g.logits.Value, b.Labels),
	}
	if overlap {
		wl := t.resetOverlapWatch(w, g.paramVars)
		g.tape.ReplayBackward(g.logits, g.grad, wl, t.ov.readyFns[w])
	} else {
		g.tape.ReplayBackward(g.logits, g.grad, nil, nil)
	}
	dev.EndGraphReplay()
	return res
}

// scheduledStep is replayStep through the whole-step scheduler
// (Options.Schedule, DESIGN.md §13). The replay runs with a sched.Recorder
// attached to the device, so every charge routes to a DAG node instead of
// advancing the clocks, and the tape reports node boundaries and tensor
// reads/writes through the replay observer. Host math still runs in the
// captured order — losses, gradients and model state are bit-identical to
// eager and to plain replay — then the recorded DAG is list-scheduled onto
// the compute and copy streams and its charges applied at their scheduled
// positions. Under OverlapGrads the per-bucket AllReduce gates come from the
// scheduled end times of the bucket's gradient-producing nodes (the eager
// path's clock-read hooks are meaningless while charges are being
// recorded). The graph bracket opened here stays open across loss, gradient
// sync and the optimizer; RunEpoch closes it after the optimizer step so
// the whole training step replays as one graph launch.
func (t *Trainer) scheduledStep(w int, mdl gnn.Model, dev *sim.Device, b *gnn.Batch, g *stepGraph, overlap bool) stepResult {
	rec := t.gs.sch[w]
	rec.Reset()
	mdl.Params().RebindVars(g.paramVars)
	dev.AttachRecorder(rec)
	dev.BeginGraphReplay("step-graph")
	g.tape.SetReplayObserver(rec)
	g.tape.ReplayForward()
	rec.LossNode(g.logits)
	g.grad.Resize(g.logits.Value.R, g.logits.Value.C)
	res := stepResult{
		loss: tensor.CrossEntropy(g.logits.Value, b.Labels, g.grad),
		acc:  tensor.Accuracy(g.logits.Value, b.Labels),
	}
	g.tape.ReplayBackward(g.logits, g.grad, nil, nil)
	g.tape.SetReplayObserver(nil)
	dev.DetachRecorder()
	makespan := rec.Schedule(dev.StreamNow(sim.StreamCompute), dev.StreamNow(sim.StreamCopy))
	rec.Apply(dev)
	if overlap {
		// Bucket b is ready when its last gradient-producing node finishes in
		// the schedule; the watch machinery is bypassed (nil watch above).
		t.resetOverlapWatch(w, g.paramVars)
		s := t.ov
		for bkt := range s.buckets {
			mr := 0.0
			for _, pi := range s.buckets[bkt] {
				if rt := rec.GradReadyTime(g.paramVars[pi], makespan); rt > mr {
					mr = rt
				}
			}
			s.readyAt[w][bkt] = mr
		}
	}
	t.gs.scheduled[w]++
	globalGraph.scheduled.Add(1)
	t.gs.schedOpen[w] = true
	return res
}
