package train

import (
	"wholegraph/internal/autograd"
	"wholegraph/internal/gnn"
	"wholegraph/internal/sim"
	"wholegraph/internal/spops"
	"wholegraph/internal/tensor"
)

// Step capture/replay (Options.CaptureGraph): the training loop re-runs an
// identical op sequence every iteration, yet the eager path re-walks the
// tape, re-dispatches every op and pays KernelLaunch per kernel — the host
// overhead CUDA Graphs eliminate. Here the first iteration on each batch
// slot runs eagerly on a plain capture tape (autograd.BeginCapture),
// recording the forward program and the backward gradient buffers; later
// iterations on the same slot replay the frozen tape: no tape rebuild, no
// per-op closure allocation, only parameter/gradient buffer rebinding, and
// the device charges one GraphLaunch instead of one KernelLaunch per
// kernel (sim.BeginGraphReplay). Loss/accuracy, gradient averaging and the
// optimizer stay live outside the captured program, so losses, gradients
// and model state are bit-identical to eager execution.
//
// Captures tolerate varying row counts (every replay closure reads shapes
// from the live block/feature buffers); they are keyed by batch identity
// and invalidated when the batch's structure moves (feature tensor or
// block pointers replaced), falling back to an eager re-capture. Loaders
// that never reuse batch objects (the host-memory baselines) blow through
// maxGraphsPerWorker and drop to permanent eager fallback.

// maxGraphsPerWorker bounds how many captured step graphs a worker keeps.
// The WholeGraph loader's two-slot ring needs two; anything past this means
// the loader does not reuse batch objects and capture cannot pay off.
const maxGraphsPerWorker = 4

// stepResult is one worker's loss/accuracy from a training step.
type stepResult struct {
	loss, acc float64
}

// stepGraph is one captured training step for one batch slot.
type stepGraph struct {
	tape   *autograd.Tape
	logits *autograd.Var
	grad   *tensor.Dense // loss-gradient seed, resized per replay
	// paramVars snapshots the capture tape's parameter bindings so replays
	// can point the optimizer back at them.
	paramVars []*autograd.Var
	// Structural identity at capture: replay is valid only while the batch
	// still presents these exact objects.
	feat   *tensor.Dense
	blocks []*spops.SubCSR
}

// matches reports whether the batch still has the structure g captured.
func (g *stepGraph) matches(b *gnn.Batch) bool {
	if b.Feat != g.feat || len(b.Blocks) != len(g.blocks) {
		return false
	}
	for i, blk := range b.Blocks {
		if blk != g.blocks[i] {
			return false
		}
	}
	return true
}

// graphState is the per-trainer capture machinery. Every slice is indexed
// by real worker, and each worker touches only its own entries inside the
// parallel region, mirroring device ownership.
type graphState struct {
	graphs   []map[*gnn.Batch]*stepGraph
	fallback []bool // worker exceeded maxGraphsPerWorker: stay eager

	captures      []int64
	replays       []int64
	invalidations []int64
}

// GraphStats sums capture/replay/invalidation counts across workers. All
// zero unless Options.CaptureGraph ran.
func (t *Trainer) GraphStats() (captures, replays, invalidations int64) {
	if t.gs == nil {
		return 0, 0, 0
	}
	for w := range t.gs.graphs {
		captures += t.gs.captures[w]
		replays += t.gs.replays[w]
		invalidations += t.gs.invalidations[w]
	}
	return captures, replays, invalidations
}

func (t *Trainer) ensureGraphState() {
	if t.gs != nil {
		return
	}
	nw := len(t.Models)
	gs := &graphState{
		graphs:        make([]map[*gnn.Batch]*stepGraph, nw),
		fallback:      make([]bool, nw),
		captures:      make([]int64, nw),
		replays:       make([]int64, nw),
		invalidations: make([]int64, nw),
	}
	for w := range gs.graphs {
		gs.graphs[w] = make(map[*gnn.Batch]*stepGraph, maxGraphsPerWorker)
	}
	t.gs = gs
}

// resetOverlapWatch refills worker w's overlap watch list from vars and
// re-arms the per-bucket countdowns for one backward pass.
func (t *Trainer) resetOverlapWatch(w int, vars []*autograd.Var) []*autograd.Var {
	s := t.ov
	wl := append(s.watch[w][:0], vars...)
	s.watch[w] = wl
	for b := range s.buckets {
		s.left[w][b] = len(s.buckets[b])
		s.readyAt[w][b] = 0
	}
	return wl
}

// eagerStep is the classic training step: reset the worker's arena tape,
// forward, loss, backward. Runs inside the parallel region.
func (t *Trainer) eagerStep(w int, mdl gnn.Model, dev *sim.Device, b *gnn.Batch, overlap bool) stepResult {
	tp := t.tapes[w]
	tp.Reset()
	logits := mdl.Forward(dev, tp, b, true)
	grad := tp.NewTensor(logits.Value.R, logits.Value.C)
	res := stepResult{
		loss: tensor.CrossEntropy(logits.Value, b.Labels, grad),
		acc:  tensor.Accuracy(logits.Value, b.Labels),
	}
	if overlap {
		// Track when backward finalizes each parameter bucket so the
		// orchestrator can gate that bucket's AllReduce there.
		s := t.ov
		wl := t.resetOverlapWatch(w, nil)
		for _, p := range mdl.Params().Params() {
			wl = append(wl, p.Var())
		}
		s.watch[w] = wl
		tp.BackwardHooked(logits, grad, wl, s.readyFns[w])
	} else {
		tp.Backward(logits, grad)
	}
	return res
}

// graphStep replays the captured graph for b, capturing (or invalidating
// and re-capturing) as needed. Runs inside the parallel region.
func (t *Trainer) graphStep(w int, mdl gnn.Model, dev *sim.Device, b *gnn.Batch, overlap bool) stepResult {
	gs := t.gs
	if g, ok := gs.graphs[w][b]; ok {
		if g.matches(b) {
			gs.replays[w]++
			return t.replayStep(w, mdl, dev, b, g, overlap)
		}
		// Structure moved under the same batch object: drop and re-capture.
		delete(gs.graphs[w], b)
		gs.invalidations[w]++
	}
	if len(gs.graphs[w]) >= maxGraphsPerWorker {
		// The loader is not reusing batch objects; capture cannot amortize.
		gs.fallback[w] = true
		return t.eagerStep(w, mdl, dev, b, overlap)
	}
	return t.captureStep(w, mdl, dev, b, overlap)
}

// captureStep runs one eager-priced iteration on a fresh plain tape with
// capture enabled, freezing the step graph for b.
func (t *Trainer) captureStep(w int, mdl gnn.Model, dev *sim.Device, b *gnn.Batch, overlap bool) stepResult {
	tp := autograd.NewTape()
	tp.BeginCapture()
	logits := mdl.Forward(dev, tp, b, true)
	grad := tensor.New(logits.Value.R, logits.Value.C)
	res := stepResult{
		loss: tensor.CrossEntropy(logits.Value, b.Labels, grad),
		acc:  tensor.Accuracy(logits.Value, b.Labels),
	}
	if overlap {
		s := t.ov
		wl := t.resetOverlapWatch(w, nil)
		for _, p := range mdl.Params().Params() {
			wl = append(wl, p.Var())
		}
		s.watch[w] = wl
		tp.BackwardHooked(logits, grad, wl, s.readyFns[w])
	} else {
		tp.Backward(logits, grad)
	}
	tp.EndCapture()
	t.gs.graphs[w][b] = &stepGraph{
		tape:      tp,
		logits:    logits,
		grad:      grad,
		paramVars: mdl.Params().BoundVars(nil),
		feat:      b.Feat,
		blocks:    append([]*spops.SubCSR(nil), b.Blocks...),
	}
	t.gs.captures[w]++
	return res
}

// replayStep re-executes a captured step: rebind the parameters to the
// capture tape, replay forward inside a graph-launch bracket, recompute
// loss/accuracy live (the loss layer is outside the graph, as its output
// feeds the host), and replay backward over the frozen tape.
func (t *Trainer) replayStep(w int, mdl gnn.Model, dev *sim.Device, b *gnn.Batch, g *stepGraph, overlap bool) stepResult {
	mdl.Params().RebindVars(g.paramVars)
	dev.BeginGraphReplay("step-graph")
	g.tape.ReplayForward()
	g.grad.Resize(g.logits.Value.R, g.logits.Value.C)
	res := stepResult{
		loss: tensor.CrossEntropy(g.logits.Value, b.Labels, g.grad),
		acc:  tensor.Accuracy(g.logits.Value, b.Labels),
	}
	if overlap {
		wl := t.resetOverlapWatch(w, g.paramVars)
		g.tape.ReplayBackward(g.logits, g.grad, wl, t.ov.readyFns[w])
	} else {
		g.tape.ReplayBackward(g.logits, g.grad, nil, nil)
	}
	dev.EndGraphReplay()
	return res
}
