package train

import (
	"testing"

	"wholegraph/internal/dataset"
	"wholegraph/internal/sim"
)

func runEpochsOn(t *testing.T, ds *dataset.Dataset, opts Options, epochs int) ([]EpochStats, *Trainer) {
	t.Helper()
	m := sim.NewMachine(sim.DGXA100(1))
	tr, err := New(m, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	var out []EpochStats
	for e := 0; e < epochs; e++ {
		out = append(out, tr.RunEpoch())
	}
	return out, tr
}

func runEpochs(t *testing.T, opts Options, epochs int) ([]EpochStats, *Trainer) {
	t.Helper()
	return runEpochsOn(t, smallDataset(t), opts, epochs)
}

// TestPagedTopoBitIdentical: training through the paged topology store is
// bit-identical to the in-memory CSR — losses and accuracies match every
// epoch, serially and with real parallel workers — the tentpole
// equivalence guarantee for out-of-core topology.
func TestPagedTopoBitIdentical(t *testing.T) {
	base, _ := runEpochs(t, smallOpts("graphsage"), 2)

	paged := smallOpts("graphsage")
	paged.PagedTopo = true
	paged.TopoPageEdges = 512
	paged.TopoCacheMB = 1
	got, tr := runEpochs(t, paged, 2)
	for e := range base {
		if got[e].Loss != base[e].Loss || got[e].TrainAcc != base[e].TrainAcc {
			t.Errorf("epoch %d: paged topo (loss %v acc %v) != in-RAM (loss %v acc %v)",
				e, got[e].Loss, got[e].TrainAcc, base[e].Loss, base[e].TrainAcc)
		}
	}
	st := tr.TopoStoreStats()
	if st.Hits+st.Misses == 0 {
		t.Error("paged-topology run recorded no page lookups")
	}

	// Fully paged (topology + features) must also match the flat run.
	full := paged
	full.PagedFeatures = true
	full.FeatPageRows = 64
	full.FeatCacheMB = 1
	gotFull, _ := runEpochs(t, full, 2)
	for e := range base {
		if gotFull[e].Loss != base[e].Loss {
			t.Errorf("epoch %d: fully paged loss %v != flat %v", e, gotFull[e].Loss, base[e].Loss)
		}
	}

	// Real parallel workers: paged and flat still agree bit-for-bit.
	basePar := smallOpts("graphsage")
	basePar.RealWorkers = 4
	flatPar, _ := runEpochs(t, basePar, 2)
	par := paged
	par.RealWorkers = 4
	gotPar, _ := runEpochs(t, par, 2)
	for e := range flatPar {
		if gotPar[e].Loss != flatPar[e].Loss {
			t.Errorf("epoch %d: parallel paged-topo loss %v != parallel flat %v", e, gotPar[e].Loss, flatPar[e].Loss)
		}
	}
}

// TestPrefetchAndAdmissionKeepResults: fault prefetch and the admission
// policy touch only cache residency and virtual time — losses and
// accuracies stay bit-identical to the plain paged run, prefetch hits are
// recorded, and the admission sketch rejects pages under pressure.
func TestPrefetchAndAdmissionKeepResults(t *testing.T) {
	// A dataset larger than the 1 MiB caches, so pages churn and the
	// prefetched entries are genuinely new residency.
	ds, err := dataset.Generate(dataset.OgbnProducts.Scaled(0.004))
	if err != nil {
		t.Fatal(err)
	}
	paged := smallOpts("graphsage")
	paged.PagedTopo = true
	paged.TopoPageEdges = 256
	paged.TopoCacheMB = 1
	paged.PagedFeatures = true
	paged.FeatPageRows = 64
	paged.FeatCacheMB = 1
	base, _ := runEpochsOn(t, ds, paged, 2)

	pre := paged
	pre.PrefetchPages = 16
	got, tr := runEpochsOn(t, ds, pre, 2)
	for e := range base {
		if got[e].Loss != base[e].Loss || got[e].TrainAcc != base[e].TrainAcc {
			t.Errorf("epoch %d: prefetch changed results (loss %v != %v)", e, got[e].Loss, base[e].Loss)
		}
	}
	if tr.TopoStoreStats().PrefetchHits+tr.FeatStoreStats().PrefetchHits == 0 {
		t.Error("prefetching run recorded no prefetch hits")
	}

	adm := pre
	adm.CachePolicy = "admit"
	gotAdm, trAdm := runEpochsOn(t, ds, adm, 2)
	for e := range base {
		if gotAdm[e].Loss != base[e].Loss || gotAdm[e].TrainAcc != base[e].TrainAcc {
			t.Errorf("epoch %d: admission changed results (loss %v != %v)", e, gotAdm[e].Loss, base[e].Loss)
		}
	}
	if trAdm.TopoStoreStats().Policy != "admit" || trAdm.FeatStoreStats().Policy != "admit" {
		t.Error("admission policy did not reach the stores")
	}

	// Bad policy spelling is rejected up front.
	bad := paged
	bad.CachePolicy = "clock"
	if _, err := New(sim.NewMachine(sim.DGXA100(1)), smallDataset(t), bad); err == nil {
		t.Error("unknown cache policy accepted")
	}
}

// TestPagedTopoRejectsWeighted: edge weights need a materialized column.
func TestPagedTopoRejectsWeighted(t *testing.T) {
	spec := dataset.OgbnProducts.Scaled(0.001)
	spec.Weighted = true
	wds, err := dataset.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	opts := smallOpts("graphsage")
	opts.PagedTopo = true
	if _, err := New(sim.NewMachine(sim.DGXA100(1)), wds, opts); err == nil {
		t.Error("weighted dataset accepted with paged topology")
	}
}
