package train_test

import (
	"testing"

	"wholegraph/internal/sim"
	"wholegraph/internal/train"
)

// runPipelineEpochs builds a fresh WholeGraph trainer over a fresh machine
// and trains for the given epochs, returning the trainer, its per-epoch
// stats and a final validation accuracy. Mirrors runEpochs but keeps the
// trainer so callers can compare model parameters.
func runPipelineEpochs(t *testing.T, epochs int, pipeline bool) (*train.Trainer, []train.EpochStats, float64) {
	t.Helper()
	m := sim.NewMachine(sim.DGXA100(1))
	ds := eqDataset(t)
	opts := eqOpts("graphsage")
	opts.RealWorkers = 2
	opts.Batch = 8 // several iterations per epoch, so cross-iteration overlap shows up
	opts.Pipeline = pipeline
	tr, err := train.New(m, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	var stats []train.EpochStats
	for e := 0; e < epochs; e++ {
		stats = append(stats, tr.RunEpoch())
	}
	return tr, stats, tr.Evaluate(ds.Val, 128)
}

// TestPipelinedSequentialEquivalence is the correctness anchor for the
// overlapped batch pipeline (ISSUE 3), mirroring the serial/parallel suite
// of ISSUE 1: prefetching batches on the copy stream must leave model
// parameters, losses and accuracies bit-identical to sequential training —
// the loader consumes the same targets through the same RNG streams in the
// same real order — while strictly improving the virtual epoch time.
func TestPipelinedSequentialEquivalence(t *testing.T) {
	const epochs = 2
	seqTr, seqStats, seqEval := runPipelineEpochs(t, epochs, false)
	pipeTr, pipeStats, pipeEval := runPipelineEpochs(t, epochs, true)

	for e := range seqStats {
		s, p := seqStats[e], pipeStats[e]
		if s.Loss != p.Loss || s.TrainAcc != p.TrainAcc || s.Iters != p.Iters {
			t.Errorf("epoch %d training outputs differ:\n sequential %+v\n pipelined  %+v", e+1, s, p)
		}
		if p.EpochTime >= s.EpochTime {
			t.Errorf("epoch %d: pipelined epoch time %g >= sequential %g (no overlap win)",
				e+1, p.EpochTime, s.EpochTime)
		}
		// The per-stage busy times are identical work, just charged to the
		// copy stream; the critical path is where the two runs differ.
		if s.Timing.Sample != p.Timing.Sample || s.Timing.Gather != p.Timing.Gather {
			t.Errorf("epoch %d: stage busy times differ: sequential %+v pipelined %+v",
				e+1, s.Timing, p.Timing)
		}
		if p.Timing.Crit >= s.Timing.Crit {
			t.Errorf("epoch %d: pipelined critical path %g >= sequential %g",
				e+1, p.Timing.Crit, s.Timing.Crit)
		}
	}
	if seqEval != pipeEval {
		t.Errorf("eval accuracy sequential %v vs pipelined %v", seqEval, pipeEval)
	}
	for w := range seqTr.Models {
		sp := seqTr.Models[w].Params().Params()
		pp := pipeTr.Models[w].Params().Params()
		if len(sp) != len(pp) {
			t.Fatalf("worker %d: param count %d vs %d", w, len(sp), len(pp))
		}
		for i := range sp {
			sv, pv := sp[i].W.V, pp[i].W.V
			if len(sv) != len(pv) {
				t.Fatalf("worker %d param %s: %d vs %d elements", w, sp[i].Name, len(sv), len(pv))
			}
			for j := range sv {
				if sv[j] != pv[j] {
					t.Fatalf("worker %d param %s[%d]: sequential %v vs pipelined %v",
						w, sp[i].Name, j, sv[j], pv[j])
				}
			}
		}
	}
}

// TestPipelinedSerialParallelEquivalence checks the pipelined path under
// both execution modes of sim.RunParallel: goroutine fan-out must not
// change stats or clocks when loaders juggle two streams.
func TestPipelinedSerialParallelEquivalence(t *testing.T) {
	run := func(parallel bool) ([]train.EpochStats, float64) {
		prev := sim.SetParallel(parallel)
		defer sim.SetParallel(prev)
		tr, stats, eval := runPipelineEpochs(t, 2, true)
		_ = tr
		return stats, eval
	}
	serialStats, serialEval := run(false)
	parStats, parEval := run(true)
	for e := range serialStats {
		if serialStats[e] != parStats[e] {
			t.Errorf("epoch %d stats differ:\n serial   %+v\n parallel %+v",
				e+1, serialStats[e], parStats[e])
		}
	}
	if serialEval != parEval {
		t.Errorf("eval accuracy serial %v vs parallel %v", serialEval, parEval)
	}
}

// TestPipelinedOverlapBound quantifies the win: the virtual time saved per
// epoch must reach the overlap bound min(sample+gather, train) scaled by
// the (measured-1)/measured prologue factor — iteration 0 has nothing to
// hide behind. A small tolerance absorbs the shorter tail batch and event
// waits.
func TestPipelinedOverlapBound(t *testing.T) {
	_, seqStats, _ := runPipelineEpochs(t, 1, false)
	_, pipeStats, _ := runPipelineEpochs(t, 1, true)
	s, p := seqStats[0], pipeStats[0]

	build := s.Timing.Sample + s.Timing.Gather
	bound := build
	if s.Timing.Train < bound {
		bound = s.Timing.Train
	}
	m := float64(s.Iters)
	bound *= (m - 1) / m
	saved := s.EpochTime - p.EpochTime
	t.Logf("sequential %.3fms pipelined %.3fms saved %.3fms bound %.3fms (build %.3fms train %.3fms)",
		s.EpochTime*1e3, p.EpochTime*1e3, saved*1e3, bound*1e3, build*1e3, s.Timing.Train*1e3)
	if saved < 0.85*bound {
		t.Errorf("saved %g s < 85%% of overlap bound %g s", saved, bound)
	}
	// The saving can also never exceed the total extraction time.
	if saved > build {
		t.Errorf("saved %g s exceeds total extraction time %g s", saved, build)
	}
	// Sequentially the critical path is the whole iteration; pipelined the
	// per-stage busy sum exceeds it (stages overlap).
	if got, want := s.Timing.Crit, s.Timing.Total(); got < 0.999*want || got > 1.001*want {
		t.Errorf("sequential Crit %g != Total %g", got, want)
	}
	if p.Timing.Crit >= p.Timing.Total() {
		t.Errorf("pipelined Crit %g >= Total %g: no overlap visible", p.Timing.Crit, p.Timing.Total())
	}
}

// TestPipelinedWithCacheEquivalence: the feature cache changes only where
// gathered bytes come from, never their values — training with CacheRows
// must reproduce the uncached model bit-for-bit while serving hits.
func TestPipelinedWithCacheEquivalence(t *testing.T) {
	ds := eqDataset(t)
	run := func(cacheRows int) (*train.Trainer, train.EpochStats) {
		m := sim.NewMachine(sim.DGXA100(1))
		opts := eqOpts("graphsage")
		opts.Pipeline = true
		opts.CacheRows = cacheRows
		tr, err := train.New(m, ds, opts)
		if err != nil {
			t.Fatal(err)
		}
		return tr, tr.RunEpoch()
	}
	plain, plainStats := run(0)
	cached, cachedStats := run(2000)

	if plainStats.Loss != cachedStats.Loss || plainStats.TrainAcc != cachedStats.TrainAcc {
		t.Errorf("cache changed training outputs: %+v vs %+v", plainStats, cachedStats)
	}
	pp, cp := plain.Models[0].Params().Params(), cached.Models[0].Params().Params()
	for i := range pp {
		for j := range pp[i].W.V {
			if pp[i].W.V[j] != cp[i].W.V[j] {
				t.Fatalf("param %s[%d] differs with cache", pp[i].Name, j)
			}
		}
	}
	hits, misses := cached.CacheStats()
	if hits == 0 {
		t.Error("cache served no hits")
	}
	if h, m := plain.CacheStats(); h != 0 || m != 0 {
		t.Errorf("uncached trainer reports cache traffic: %d hits %d misses", h, m)
	}
	if len(cached.Caches()) != 1 {
		t.Fatalf("caches = %d, want 1", len(cached.Caches()))
	}
	t.Logf("cache: %d hits %d misses (%.1f%% hit rate)", hits, misses,
		100*cached.Caches()[0].HitRate())
}
