package train

import (
	"testing"

	"wholegraph/internal/dataset"
	"wholegraph/internal/sim"
)

func smallOpts(arch string) Options {
	return Options{
		Arch: arch, Batch: 32, Fanouts: []int{4, 4},
		Hidden: 16, Heads: 2, Dropout: 0.2, LR: 0.01, Seed: 5,
	}
}

func smallDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.OgbnProducts.Scaled(0.001))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestNormalizeDefaults(t *testing.T) {
	o := Options{}.Normalize()
	if o.Arch != "graphsage" || o.Batch != 512 || len(o.Fanouts) != 3 ||
		o.Fanouts[0] != 30 || o.Hidden != 256 || o.Heads != 4 || o.RealWorkers != 1 {
		t.Errorf("paper defaults drifted: %+v", o)
	}
}

func TestRunEpochStats(t *testing.T) {
	m := sim.NewMachine(sim.DGXA100(1))
	ds := smallDataset(t)
	tr, err := New(m, ds, smallOpts("graphsage"))
	if err != nil {
		t.Fatal(err)
	}
	st := tr.RunEpoch()
	if st.Epoch != 1 || st.Iters != tr.ItersPerEpoch() || st.Iters == 0 {
		t.Errorf("epoch bookkeeping wrong: %+v", st)
	}
	if st.EpochTime <= 0 {
		t.Error("epoch time not positive")
	}
	if st.Timing.Sample <= 0 || st.Timing.Gather <= 0 || st.Timing.Train <= 0 {
		t.Errorf("phase breakdown incomplete: %+v", st.Timing)
	}
	if st.Timing.Total() > st.EpochTime*1.05 {
		t.Errorf("worker breakdown %.4g exceeds epoch time %.4g", st.Timing.Total(), st.EpochTime)
	}
	// WholeGraph's signature: training dominates, sampling+gathering are
	// the minority (Figure 9, right bars).
	if st.Timing.Sample+st.Timing.Gather > st.Timing.Train {
		t.Errorf("sample+gather (%g) should be below train (%g) for WholeGraph",
			st.Timing.Sample+st.Timing.Gather, st.Timing.Train)
	}
}

func TestTrainingLearns(t *testing.T) {
	m := sim.NewMachine(sim.DGXA100(1))
	ds := smallDataset(t)
	opts := smallOpts("gcn")
	opts.LR = 0.02
	tr, err := New(m, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	first := tr.RunEpoch()
	var last EpochStats
	for e := 0; e < 30; e++ {
		last = tr.RunEpoch()
	}
	if last.Loss >= first.Loss {
		t.Errorf("loss did not decrease: %.3f -> %.3f", first.Loss, last.Loss)
	}
	if last.TrainAcc <= first.TrainAcc {
		t.Errorf("train accuracy did not improve: %.3f -> %.3f", first.TrainAcc, last.TrainAcc)
	}
	// Validation accuracy should clear the random baseline (1/47).
	val := tr.Evaluate(ds.Val, 0)
	if val < 0.15 {
		t.Errorf("validation accuracy %.3f barely above chance", val)
	}
}

func TestMultiWorkerGradientSync(t *testing.T) {
	m := sim.NewMachine(sim.DGXA100(1))
	ds := smallDataset(t)
	opts := smallOpts("gcn")
	opts.RealWorkers = 2
	tr, err := New(m, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	tr.RunEpoch()
	// After averaging + identical optimizer steps the replicas must agree.
	p0 := tr.Models[0].Params().Params()
	p1 := tr.Models[1].Params().Params()
	for i := range p0 {
		for j := range p0[i].W.V {
			if p0[i].W.V[j] != p1[i].W.V[j] {
				t.Fatalf("replicas diverged at param %s[%d]", p0[i].Name, j)
			}
		}
	}
}

func TestRealWorkersBounded(t *testing.T) {
	m := sim.NewMachine(sim.DGXA100(1))
	ds := smallDataset(t)
	opts := smallOpts("gcn")
	opts.RealWorkers = 9
	if _, err := New(m, ds, opts); err == nil {
		t.Error("RealWorkers > GPUs accepted")
	}
}

func TestMultiNodeScaling(t *testing.T) {
	ds := smallDataset(t)
	epoch := func(nodes int) float64 {
		m := sim.NewMachine(sim.DGXA100(nodes))
		opts := smallOpts("graphsage")
		opts.Batch = 8 // more iterations so scaling is visible
		tr, err := New(m, ds, opts)
		if err != nil {
			t.Fatal(err)
		}
		m.Reset() // exclude store setup
		return tr.RunEpoch().EpochTime
	}
	t1 := epoch(1)
	t4 := epoch(4)
	if t4 >= t1 {
		t.Errorf("4-node epoch (%g) not faster than 1-node (%g)", t4, t1)
	}
	// Near-linear: at least 2.2x speedup at 4 nodes on this small graph.
	if t1/t4 < 2.2 {
		t.Errorf("4-node speedup only %.2fx", t1/t4)
	}
}

func TestMaxItersExtrapolates(t *testing.T) {
	m := sim.NewMachine(sim.DGXA100(1))
	ds := smallDataset(t)
	opts := smallOpts("gcn")
	opts.Batch = 4 // many iterations
	opts.MaxItersPerEpoch = 2
	tr, err := New(m, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := tr.RunEpoch()
	if st.Iters <= opts.MaxItersPerEpoch {
		t.Fatalf("expected more iters (%d) than the cap", st.Iters)
	}
	if st.EpochTime <= 0 {
		t.Error("extrapolated epoch time missing")
	}
}

func TestTraceUtilizationHigh(t *testing.T) {
	m := sim.NewMachine(sim.DGXA100(1))
	ds := smallDataset(t)
	opts := smallOpts("graphsage")
	opts.Trace = true
	opts.Dropout = 0.5
	tr, err := New(m, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	dev := tr.Worker0Device()
	t0 := dev.Now()
	for e := 0; e < 3; e++ {
		tr.RunEpoch()
	}
	bf := sim.BusyFraction(dev.Trace(), t0, dev.Now())
	// Figure 12: WholeGraph sustains >= 95% GPU utilization.
	if bf < 0.95 {
		t.Errorf("WholeGraph GPU utilization %.3f, want >= 0.95", bf)
	}
}

func TestWeightedDatasetTrains(t *testing.T) {
	// End-to-end with edge weights: the loader gathers per-edge weights
	// (4-byte accesses) and the models aggregate with weighted means; the
	// WholeGraph and DGL pipelines must agree on the block weights and
	// both learn.
	spec := dataset.OgbnProducts.Scaled(0.001)
	spec.Weighted = true
	ds, err := dataset.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMachine(sim.DGXA100(1))
	opts := smallOpts("graphsage")
	opts.LR = 0.02
	tr, err := New(m, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	first := tr.RunEpoch()
	var last EpochStats
	for e := 0; e < 20; e++ {
		last = tr.RunEpoch()
	}
	if last.Loss >= first.Loss {
		t.Errorf("weighted training did not learn: %.3f -> %.3f", first.Loss, last.Loss)
	}
	// Edge-weight gathering shows up in the gather phase.
	if last.Timing.Gather <= 0 {
		t.Error("no gather time recorded")
	}
}

// TestPagedRawBitIdentical: training through the paged feature store with
// the raw encoding must reproduce the flat-slab run bit-for-bit — losses
// and accuracies identical across epochs, including with real parallel
// workers. This is the tentpole equivalence guarantee: paging is a memory
// optimization, not a numerics change.
func TestPagedRawBitIdentical(t *testing.T) {
	ds := smallDataset(t)
	run := func(opts Options) []EpochStats {
		m := sim.NewMachine(sim.DGXA100(1))
		tr, err := New(m, ds, opts)
		if err != nil {
			t.Fatal(err)
		}
		var out []EpochStats
		for e := 0; e < 2; e++ {
			out = append(out, tr.RunEpoch())
		}
		return out
	}
	base := run(smallOpts("graphsage"))

	paged := smallOpts("graphsage")
	paged.PagedFeatures = true
	paged.FeatPageRows = 64
	paged.FeatCacheMB = 1
	got := run(paged)
	for e := range base {
		if got[e].Loss != base[e].Loss || got[e].TrainAcc != base[e].TrainAcc {
			t.Errorf("epoch %d: paged raw (loss %v acc %v) != flat (loss %v acc %v)",
				e, got[e].Loss, got[e].TrainAcc, base[e].Loss, base[e].TrainAcc)
		}
	}

	// With real parallel workers (which reorder batches across devices,
	// changing numerics identically for both feature paths), paged and
	// flat must still agree bit-for-bit with each other.
	basePar := smallOpts("graphsage")
	basePar.RealWorkers = 4
	flatPar := run(basePar)
	par := paged
	par.RealWorkers = 4
	gotPar := run(par)
	for e := range flatPar {
		if gotPar[e].Loss != flatPar[e].Loss {
			t.Errorf("epoch %d: parallel paged loss %v != parallel flat %v", e, gotPar[e].Loss, flatPar[e].Loss)
		}
	}
}

// TestPagedLossyTrains: lossy encodings are opt-in and must still learn;
// stats plumbing reports the encoding and cache activity.
func TestPagedLossyTrains(t *testing.T) {
	ds := smallDataset(t)
	for _, enc := range []string{"f16", "q8"} {
		m := sim.NewMachine(sim.DGXA100(1))
		opts := smallOpts("graphsage")
		opts.PagedFeatures = true
		opts.FeatEncoding = enc
		opts.FeatPageRows = 64
		tr, err := New(m, ds, opts)
		if err != nil {
			t.Fatalf("%s: %v", enc, err)
		}
		first := tr.RunEpoch()
		var last EpochStats
		for e := 0; e < 5; e++ {
			last = tr.RunEpoch()
		}
		if !(last.Loss < first.Loss) {
			t.Errorf("%s: loss did not improve (%v -> %v)", enc, first.Loss, last.Loss)
		}
		st := tr.FeatStoreStats()
		if st.Encoding != enc {
			t.Errorf("stats encoding %q, want %q", st.Encoding, enc)
		}
		if st.Hits+st.Misses == 0 {
			t.Errorf("%s: no page lookups recorded", enc)
		}
	}
}

// TestOutOfCoreRequiresPaged: a dataset with neither feature slab nor
// materialized CSR is rejected unless both paged stores are enabled, and
// trains once they are.
func TestOutOfCoreRequiresPaged(t *testing.T) {
	ds, err := dataset.GenerateOutOfCore(dataset.OgbnProducts.Scaled(0.001))
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMachine(sim.DGXA100(1))
	if _, err := New(m, ds, smallOpts("graphsage")); err == nil {
		t.Fatal("out-of-core dataset accepted without PagedFeatures")
	}
	featOnly := smallOpts("graphsage")
	featOnly.PagedFeatures = true
	if _, err := New(m, ds, featOnly); err == nil {
		t.Fatal("out-of-core dataset accepted without PagedTopo")
	}
	opts := smallOpts("graphsage")
	opts.PagedFeatures = true
	opts.FeatPageRows = 64
	opts.PagedTopo = true
	opts.TopoPageEdges = 512
	tr, err := New(sim.NewMachine(sim.DGXA100(1)), ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := tr.RunEpoch()
	if st.Iters == 0 || st.EpochTime <= 0 {
		t.Errorf("out-of-core epoch did not run: %+v", st)
	}
	ts := tr.TopoStoreStats()
	if ts.Hits+ts.Misses == 0 {
		t.Error("out-of-core epoch recorded no topology page lookups")
	}
}
