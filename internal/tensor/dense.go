// Package tensor implements the dense float32 matrix math underlying the
// neural-network stack: blocked matrix multiply, broadcast elementwise
// operations, row softmax and reductions. It is the stand-in for the dense
// CUDA kernels PyTorch provides to the real WholeGraph; cost accounting for
// the simulated devices happens in the layers that call it, not here.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a row-major [R x C] float32 matrix.
type Dense struct {
	R, C int
	V    []float32
}

// New allocates a zero matrix of the given shape.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", r, c))
	}
	return &Dense{R: r, C: c, V: make([]float32, r*c)}
}

// FromSlice wraps v (not copied) as an [r x c] matrix.
func FromSlice(r, c int, v []float32) *Dense {
	if len(v) != r*c {
		panic(fmt.Sprintf("tensor: %d values for %dx%d", len(v), r, c))
	}
	return &Dense{R: r, C: c, V: v}
}

// Randn fills a new [r x c] matrix with N(0, std) entries from rng.
func Randn(r, c int, std float64, rng *rand.Rand) *Dense {
	d := New(r, c)
	for i := range d.V {
		d.V[i] = float32(rng.NormFloat64() * std)
	}
	return d
}

// Glorot returns a Glorot/Xavier-initialized [in x out] weight matrix.
func Glorot(in, out int, rng *rand.Rand) *Dense {
	std := math.Sqrt(2.0 / float64(in+out))
	return Randn(in, out, std, rng)
}

// At returns element (i, j).
func (d *Dense) At(i, j int) float32 { return d.V[i*d.C+j] }

// Set assigns element (i, j).
func (d *Dense) Set(i, j int, v float32) { d.V[i*d.C+j] = v }

// Row returns row i as a shared sub-slice.
func (d *Dense) Row(i int) []float32 { return d.V[i*d.C : (i+1)*d.C] }

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	o := New(d.R, d.C)
	copy(o.V, d.V)
	return o
}

// Zero clears all elements in place.
func (d *Dense) Zero() {
	for i := range d.V {
		d.V[i] = 0
	}
}

// Resize reshapes d to [r x c] in place, reusing the existing backing slice
// when it has capacity and reallocating only on growth. The content is always
// zeroed, so a resized tensor is indistinguishable from a freshly allocated
// one — accumulate-style kernels (SpMM's fused +=, scatter backward passes)
// rely on starting from zeros.
func (d *Dense) Resize(r, c int) {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", r, c))
	}
	n := r * c
	if n > cap(d.V) {
		d.V = make([]float32, n)
	} else {
		d.V = d.V[:n]
		for i := range d.V {
			d.V[i] = 0
		}
	}
	d.R, d.C = r, c
}

// SameShape reports whether d and o have identical shapes.
func (d *Dense) SameShape(o *Dense) bool { return d.R == o.R && d.C == o.C }

func (d *Dense) mustSameShape(o *Dense, op string) {
	if !d.SameShape(o) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, d.R, d.C, o.R, o.C))
	}
}

// AddInto sets dst = a + b elementwise.
func AddInto(dst, a, b *Dense) {
	a.mustSameShape(b, "add")
	a.mustSameShape(dst, "add")
	for i := range dst.V {
		dst.V[i] = a.V[i] + b.V[i]
	}
}

// AccumInto adds src into dst elementwise.
func AccumInto(dst, src *Dense) {
	dst.mustSameShape(src, "accum")
	for i := range dst.V {
		dst.V[i] += src.V[i]
	}
}

// ScaleInto sets dst = s * a.
func ScaleInto(dst, a *Dense, s float32) {
	a.mustSameShape(dst, "scale")
	for i := range dst.V {
		dst.V[i] = s * a.V[i]
	}
}

// MulInto sets dst = a * b elementwise (Hadamard).
func MulInto(dst, a, b *Dense) {
	a.mustSameShape(b, "mul")
	a.mustSameShape(dst, "mul")
	for i := range dst.V {
		dst.V[i] = a.V[i] * b.V[i]
	}
}

// AddRowInto sets dst = a with row vector b (1 x C) added to every row.
func AddRowInto(dst, a, b *Dense) {
	if b.R != 1 || b.C != a.C {
		panic(fmt.Sprintf("tensor: bias shape %dx%d for %dx%d", b.R, b.C, a.R, a.C))
	}
	a.mustSameShape(dst, "addrow")
	for i := 0; i < a.R; i++ {
		ar, dr := a.Row(i), dst.Row(i)
		for j, bv := range b.V {
			dr[j] = ar[j] + bv
		}
	}
}

// ColSumInto sets dst (1 x C) to the column sums of a.
func ColSumInto(dst, a *Dense) {
	if dst.R != 1 || dst.C != a.C {
		panic("tensor: colsum shape mismatch")
	}
	dst.Zero()
	for i := 0; i < a.R; i++ {
		ar := a.Row(i)
		for j, v := range ar {
			dst.V[j] += v
		}
	}
}

// MaxAbs returns the largest absolute entry (useful for tests and gradient
// clipping diagnostics).
func (d *Dense) MaxAbs() float32 {
	var m float32
	for _, v := range d.V {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}
