package tensor

import "testing"

func TestArenaGetZeroesReusedMemory(t *testing.T) {
	a := NewArena()
	d := a.Get(4, 8)
	for i := range d.V {
		d.V[i] = float32(i + 1)
	}
	a.Put(d)
	d2 := a.Get(4, 8)
	if d2.R != 4 || d2.C != 8 || len(d2.V) != 32 {
		t.Fatalf("got shape %dx%d len %d", d2.R, d2.C, len(d2.V))
	}
	for i, v := range d2.V {
		if v != 0 {
			t.Fatalf("reused memory not zeroed at %d: %g", i, v)
		}
	}
}

func TestArenaReusesSlabAndHeader(t *testing.T) {
	a := NewArena()
	d := a.Get(3, 5)
	slab, hdr := &d.V[0], d
	a.Put(d)
	d2 := a.Get(5, 3) // same element count, same bucket
	if &d2.V[0] != slab {
		t.Error("slab not reused for same-bucket request")
	}
	if d2 != hdr {
		t.Error("Dense header not reused")
	}
	st := a.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
}

func TestArenaBucketing(t *testing.T) {
	// A pooled slab serves any request up to its capacity class.
	a := NewArena()
	a.PutSlice(make([]float32, 1000, 1024))
	v := a.GetSlice(600) // bucket 10, slab cap 1024 qualifies
	if cap(v) != 1024 || len(v) != 600 {
		t.Fatalf("got len %d cap %d, want 600/1024", len(v), cap(v))
	}
	// A request one class up must not be served by the smaller slab.
	a.PutSlice(v)
	w := a.GetSlice(1500)
	if cap(w) == 1024 {
		t.Error("1500-element request served from 1024-capacity slab")
	}

	if bucketFor(1) != 0 || bucketFor(2) != 1 || bucketFor(1024) != 10 || bucketFor(1025) != 11 {
		t.Errorf("bucketFor: 1->%d 2->%d 1024->%d 1025->%d", bucketFor(1), bucketFor(2), bucketFor(1024), bucketFor(1025))
	}
	if slabClass(1024) != 10 || slabClass(1100) != 10 || slabClass(2048) != 11 {
		t.Errorf("slabClass: 1024->%d 1100->%d 2048->%d", slabClass(1024), slabClass(1100), slabClass(2048))
	}
}

func TestArenaViewAndPutHeader(t *testing.T) {
	a := NewArena()
	backing := []float32{1, 2, 3, 4, 5, 6}
	v := a.View(2, 3, backing)
	if v.R != 2 || v.C != 3 || &v.V[0] != &backing[0] {
		t.Fatal("view does not wrap backing slice")
	}
	a.PutHeader(v)
	if backing[0] != 1 {
		t.Error("PutHeader touched the backing memory")
	}
	// The header is recycled, and the backing slice was not pooled.
	d := a.Get(2, 3)
	if d != v {
		t.Error("header not recycled after PutHeader")
	}
	if &d.V[0] == &backing[0] {
		t.Error("view backing slice leaked into the slab pool")
	}

	defer func() {
		if recover() == nil {
			t.Error("mis-sized View did not panic")
		}
	}()
	a.View(2, 4, backing)
}

func TestArenaResetDropsPool(t *testing.T) {
	a := NewArena()
	a.Put(a.Get(16, 16))
	if a.Stats().HeldBytes == 0 {
		t.Fatal("nothing pooled before Reset")
	}
	a.Reset()
	if got := a.Stats().HeldBytes; got != 0 {
		t.Errorf("HeldBytes %d after Reset, want 0", got)
	}
	d := a.Get(16, 16)
	if a.Stats().Misses != 2 {
		t.Errorf("post-Reset Get should miss, stats: %+v", a.Stats())
	}
	_ = d
}

func TestArenaZeroSizeRequests(t *testing.T) {
	a := NewArena()
	if v := a.GetSlice(0); v != nil {
		t.Errorf("GetSlice(0) = %v, want nil", v)
	}
	a.PutSlice(nil) // must not pool or panic
	if a.Stats().HeldBytes != 0 {
		t.Error("PutSlice(nil) pooled bytes")
	}
}

func TestArenaSteadyStateAllocFree(t *testing.T) {
	a := NewArena()
	// Warm the pool with the shapes the loop will request.
	warm := []*Dense{a.Get(8, 16), a.Get(32, 4), a.Get(1, 100)}
	for _, d := range warm {
		a.Put(d)
	}
	if n := testing.AllocsPerRun(50, func() {
		x := a.Get(8, 16)
		y := a.Get(32, 4)
		z := a.Get(1, 100)
		a.Put(z)
		a.Put(y)
		a.Put(x)
	}); n > 0 {
		t.Fatalf("warm arena allocated %.1f times per run, want 0", n)
	}
}
