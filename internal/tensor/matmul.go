package tensor

import "fmt"

// Matrix multiplication kernels. The i-k-j loop order with hoisted row
// slices keeps the inner loop a streaming multiply-add, which is the best a
// pure-Go single-threaded kernel can do; everything downstream (training
// epochs, benchmarks) is sized with this throughput in mind.

// MatMulInto sets dst = a [m x k] * b [k x n].
func MatMulInto(dst, a, b *Dense) {
	if a.C != b.R {
		panic(fmt.Sprintf("tensor: matmul inner dims %d vs %d", a.C, b.R))
	}
	if dst.R != a.R || dst.C != b.C {
		panic(fmt.Sprintf("tensor: matmul dst %dx%d for %dx%d", dst.R, dst.C, a.R, b.C))
	}
	dst.Zero()
	parallelRows(a.R, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := a.Row(i)
			dr := dst.Row(i)
			for k, av := range ar {
				if av == 0 {
					continue
				}
				br := b.Row(k)
				for j, bv := range br {
					dr[j] += av * bv
				}
			}
		}
	})
}

// MatMul returns a * b in a fresh matrix.
func MatMul(a, b *Dense) *Dense {
	dst := New(a.R, b.C)
	MatMulInto(dst, a, b)
	return dst
}

// MatMulTInto sets dst = a [m x k] * bᵀ where b is [n x k].
func MatMulTInto(dst, a, b *Dense) {
	if a.C != b.C {
		panic(fmt.Sprintf("tensor: matmulT inner dims %d vs %d", a.C, b.C))
	}
	if dst.R != a.R || dst.C != b.R {
		panic(fmt.Sprintf("tensor: matmulT dst %dx%d for %dx%d", dst.R, dst.C, a.R, b.R))
	}
	parallelRows(a.R, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := a.Row(i)
			dr := dst.Row(i)
			for j := 0; j < b.R; j++ {
				br := b.Row(j)
				var sum float32
				for k, av := range ar {
					sum += av * br[k]
				}
				dr[j] = sum
			}
		}
	})
}

// TMatMulInto sets dst = aᵀ * b where a is [k x m] and b is [k x n];
// dst is [m x n]. This is the weight-gradient kernel Xᵀ·dY.
func TMatMulInto(dst, a, b *Dense) {
	if a.R != b.R {
		panic(fmt.Sprintf("tensor: tmatmul outer dims %d vs %d", a.R, b.R))
	}
	if dst.R != a.C || dst.C != b.C {
		panic(fmt.Sprintf("tensor: tmatmul dst %dx%d for %dx%d", dst.R, dst.C, a.C, b.C))
	}
	dst.Zero()
	for k := 0; k < a.R; k++ {
		ar := a.Row(k)
		br := b.Row(k)
		for i, av := range ar {
			if av == 0 {
				continue
			}
			dr := dst.Row(i)
			for j, bv := range br {
				dr[j] += av * bv
			}
		}
	}
}

// Transpose returns aᵀ in a fresh matrix.
func Transpose(a *Dense) *Dense {
	dst := New(a.C, a.R)
	for i := 0; i < a.R; i++ {
		ar := a.Row(i)
		for j, v := range ar {
			dst.V[j*a.R+i] = v
		}
	}
	return dst
}
