package tensor

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatMulSmall(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.V[i] != w {
			t.Fatalf("c[%d] = %g, want %g", i, c.V[i], w)
		}
	}
}

func naiveMatMul(a, b *Dense) *Dense {
	c := New(a.R, b.C)
	for i := 0; i < a.R; i++ {
		for j := 0; j < b.C; j++ {
			var s float64
			for k := 0; k < a.C; k++ {
				s += float64(a.At(i, k)) * float64(b.At(k, j))
			}
			c.Set(i, j, float32(s))
		}
	}
	return c
}

func TestMatMulVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := Randn(13, 17, 1, rng)
	b := Randn(17, 11, 1, rng)
	want := naiveMatMul(a, b)

	got := MatMul(a, b)
	for i := range want.V {
		if !almostEq(float64(got.V[i]), float64(want.V[i]), 1e-4) {
			t.Fatalf("MatMul[%d] = %g, want %g", i, got.V[i], want.V[i])
		}
	}

	// a * bT via MatMulT equals a * Transpose(b).
	bt := Transpose(b) // [11 x 17]
	got2 := New(13, 11)
	MatMulTInto(got2, a, bt)
	for i := range want.V {
		if !almostEq(float64(got2.V[i]), float64(want.V[i]), 1e-4) {
			t.Fatalf("MatMulT[%d] = %g, want %g", i, got2.V[i], want.V[i])
		}
	}

	// aT * b via TMatMul equals Transpose(a) * b.
	at := Transpose(a) // [17 x 13]
	got3 := New(13, 11)
	TMatMulInto(got3, at, b)
	for i := range want.V {
		if !almostEq(float64(got3.V[i]), float64(want.V[i]), 1e-4) {
			t.Fatalf("TMatMul[%d] = %g, want %g", i, got3.V[i], want.V[i])
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	a, b := New(2, 3), New(4, 2)
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch did not panic")
		}
	}()
	MatMul(a, b)
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(8)
		c := 1 + rng.Intn(8)
		a := Randn(r, c, 1, rng)
		tt := Transpose(Transpose(a))
		if !a.SameShape(tt) {
			return false
		}
		for i := range a.V {
			if a.V[i] != tt.V[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestElementwise(t *testing.T) {
	a := FromSlice(2, 2, []float32{1, -2, 3, -4})
	b := FromSlice(2, 2, []float32{10, 20, 30, 40})
	dst := New(2, 2)

	AddInto(dst, a, b)
	if dst.V[1] != 18 {
		t.Errorf("add: %v", dst.V)
	}
	MulInto(dst, a, b)
	if dst.V[3] != -160 {
		t.Errorf("mul: %v", dst.V)
	}
	ScaleInto(dst, a, -1)
	if dst.V[0] != -1 || dst.V[1] != 2 {
		t.Errorf("scale: %v", dst.V)
	}
	AccumInto(dst, a)
	if dst.V[0] != 0 {
		t.Errorf("accum: %v", dst.V)
	}

	bias := FromSlice(1, 2, []float32{100, 200})
	AddRowInto(dst, a, bias)
	if dst.V[0] != 101 || dst.V[3] != 196 {
		t.Errorf("addrow: %v", dst.V)
	}

	cs := New(1, 2)
	ColSumInto(cs, a)
	if cs.V[0] != 4 || cs.V[1] != -6 {
		t.Errorf("colsum: %v", cs.V)
	}

	if a.MaxAbs() != 4 {
		t.Errorf("maxabs = %g", a.MaxAbs())
	}
}

func TestReLU(t *testing.T) {
	a := FromSlice(1, 4, []float32{-1, 0, 2, -3})
	dst := New(1, 4)
	ReLUInto(dst, a)
	want := []float32{0, 0, 2, 0}
	for i, w := range want {
		if dst.V[i] != w {
			t.Fatalf("relu[%d] = %g", i, dst.V[i])
		}
	}
	grad := FromSlice(1, 4, []float32{5, 6, 7, 8})
	g := New(1, 4)
	ReLUGradInto(g, a, grad)
	wantg := []float32{0, 0, 7, 0}
	for i, w := range wantg {
		if g.V[i] != w {
			t.Fatalf("relugrad[%d] = %g", i, g.V[i])
		}
	}
}

func TestLeakyReLU(t *testing.T) {
	if LeakyReLU(2, 0.2) != 2 || LeakyReLU(-2, 0.2) != -0.4 {
		t.Error("leakyrelu values wrong")
	}
	if LeakyReLUGrad(2, 0.2) != 1 || LeakyReLUGrad(-2, 0.2) != 0.2 {
		t.Error("leakyrelu grad wrong")
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Randn(5, 9, 10, rng) // large magnitudes stress stability
	s := New(5, 9)
	SoftmaxInto(s, a)
	for i := 0; i < 5; i++ {
		var sum float64
		for _, v := range s.Row(i) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %g", v)
			}
			sum += float64(v)
		}
		if !almostEq(sum, 1, 1e-5) {
			t.Fatalf("row %d sums to %g", i, sum)
		}
	}
}

func TestCrossEntropy(t *testing.T) {
	// Uniform logits over 4 classes: loss = ln 4.
	logits := New(3, 4)
	labels := []int32{0, 3, -1}
	grad := New(3, 4)
	loss := CrossEntropy(logits, labels, grad)
	if !almostEq(loss, math.Log(4), 1e-6) {
		t.Fatalf("loss = %g, want ln4", loss)
	}
	// Unlabeled row has zero grad.
	for _, v := range grad.Row(2) {
		if v != 0 {
			t.Fatal("unlabeled row received gradient")
		}
	}
	// Gradient rows sum to ~0 and the label entry is negative.
	for i := 0; i < 2; i++ {
		var sum float64
		for _, v := range grad.Row(i) {
			sum += float64(v)
		}
		if !almostEq(sum, 0, 1e-6) {
			t.Fatalf("grad row %d sums to %g", i, sum)
		}
		if grad.Row(i)[labels[i]] >= 0 {
			t.Fatal("label gradient not negative")
		}
	}
	// All-unlabeled batch.
	if l := CrossEntropy(logits, []int32{-1, -1, -1}, grad); l != 0 {
		t.Fatalf("all-unlabeled loss = %g", l)
	}
}

func TestCrossEntropyGradNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	logits := Randn(4, 6, 1, rng)
	labels := []int32{1, 5, 0, 2}
	grad := New(4, 6)
	CrossEntropy(logits, labels, grad)
	const eps = 1e-3
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			orig := logits.At(i, j)
			logits.Set(i, j, orig+eps)
			lp := CrossEntropy(logits, labels, nil)
			logits.Set(i, j, orig-eps)
			lm := CrossEntropy(logits, labels, nil)
			logits.Set(i, j, orig)
			num := (lp - lm) / (2 * eps)
			if !almostEq(num, float64(grad.At(i, j)), 1e-3) {
				t.Fatalf("grad(%d,%d) = %g, numeric %g", i, j, grad.At(i, j), num)
			}
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := FromSlice(3, 2, []float32{1, 0, 0, 1, 1, 0})
	if a := Accuracy(logits, []int32{0, 1, 1}); !almostEq(a, 2.0/3, 1e-9) {
		t.Errorf("accuracy = %g", a)
	}
	if a := Accuracy(logits, []int32{-1, -1, -1}); a != 0 {
		t.Errorf("all-unlabeled accuracy = %g", a)
	}
}

func TestDropout(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := New(10, 10)
	for i := range a.V {
		a.V[i] = 1
	}
	dst, mask := New(10, 10), New(10, 10)
	DropoutInto(dst, a, mask, 0.5, rng.Float32)
	zeros := 0
	for i, v := range dst.V {
		switch v {
		case 0:
			zeros++
			if mask.V[i] != 0 {
				t.Fatal("mask/value disagree")
			}
		case 2:
			if mask.V[i] != 2 {
				t.Fatal("mask/value disagree")
			}
		default:
			t.Fatalf("unexpected dropout value %g", v)
		}
	}
	if zeros < 25 || zeros > 75 {
		t.Errorf("dropout kept %d of 100 at p=0.5", 100-zeros)
	}
	// p=0 is identity with unit mask.
	DropoutInto(dst, a, mask, 0, nil)
	for i := range dst.V {
		if dst.V[i] != 1 || mask.V[i] != 1 {
			t.Fatal("p=0 dropout not identity")
		}
	}
}

func TestGlorotScale(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := Glorot(100, 100, rng)
	var sum, sq float64
	for _, v := range w.V {
		sum += float64(v)
		sq += float64(v) * float64(v)
	}
	mean := sum / float64(len(w.V))
	std := math.Sqrt(sq/float64(len(w.V)) - mean*mean)
	want := math.Sqrt(2.0 / 200)
	if math.Abs(std-want) > 0.01 {
		t.Errorf("glorot std = %g, want %g", std, want)
	}
}

func TestBCEWithLogits(t *testing.T) {
	// Zero scores: loss = ln 2, grad = (0.5 - y)/n.
	s := New(4, 1)
	labels := []float32{1, 0, 1, 0}
	grad := New(4, 1)
	loss := BCEWithLogits(s, labels, grad)
	if !almostEq(loss, math.Log(2), 1e-9) {
		t.Fatalf("loss = %g, want ln2", loss)
	}
	for i, y := range labels {
		want := (0.5 - float64(y)) / 4
		if !almostEq(float64(grad.V[i]), want, 1e-6) {
			t.Fatalf("grad[%d] = %g, want %g", i, grad.V[i], want)
		}
	}
	// Numeric gradient check on random scores.
	rng := rand.New(rand.NewSource(2))
	sc := Randn(6, 1, 2, rng)
	lbl := []float32{1, 1, 0, 1, 0, 0}
	g := New(6, 1)
	BCEWithLogits(sc, lbl, g)
	const eps = 1e-3
	for i := range sc.V {
		orig := sc.V[i]
		sc.V[i] = orig + eps
		lp := BCEWithLogits(sc, lbl, nil)
		sc.V[i] = orig - eps
		lm := BCEWithLogits(sc, lbl, nil)
		sc.V[i] = orig
		num := (lp - lm) / (2 * eps)
		if !almostEq(num, float64(g.V[i]), 1e-4) {
			t.Fatalf("bce grad[%d] = %g, numeric %g", i, g.V[i], num)
		}
	}
	// Stability at extreme logits.
	ext := FromSlice(2, 1, []float32{80, -80})
	if l := BCEWithLogits(ext, []float32{1, 0}, nil); math.IsNaN(l) || math.IsInf(l, 0) || l > 1e-6 {
		t.Errorf("extreme-logit loss = %g", l)
	}
}

func TestAUC(t *testing.T) {
	// Perfect separation.
	if a := AUC([]float64{3, 4, 1, 2}, []float32{1, 1, 0, 0}); a != 1 {
		t.Errorf("perfect AUC = %g", a)
	}
	// Inverted.
	if a := AUC([]float64{1, 2, 3, 4}, []float32{1, 1, 0, 0}); a != 0 {
		t.Errorf("inverted AUC = %g", a)
	}
	// All ties -> 0.5, one-class -> 0.5.
	if a := AUC([]float64{1, 1, 1, 1}, []float32{1, 0, 1, 0}); a != 0.5 {
		t.Errorf("tied AUC = %g", a)
	}
	if a := AUC([]float64{1, 2}, []float32{1, 1}); a != 0.5 {
		t.Errorf("one-class AUC = %g", a)
	}
}

func TestParallelMatMulMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := Randn(64, 33, 1, rng)
	b := Randn(33, 17, 1, rng)

	prev := SetWorkers(1)
	serial := MatMul(a, b)
	SetWorkers(8)
	parallel := MatMul(a, b)
	SetWorkers(prev)

	// Row-splitting must be bit-identical to the serial path.
	for i := range serial.V {
		if serial.V[i] != parallel.V[i] {
			t.Fatalf("parallel result differs at %d", i)
		}
	}
}

func TestSetWorkersClamps(t *testing.T) {
	prev := SetWorkers(-3)
	if Workers() != 1 {
		t.Errorf("workers = %d, want clamp to 1", Workers())
	}
	SetWorkers(prev)
	if Workers() != prev {
		t.Errorf("workers = %d, want restored %d", Workers(), prev)
	}
}

func TestParallelRowsBalancedCoverage(t *testing.T) {
	prev := Workers()
	defer SetWorkers(prev)
	for _, w := range []int{2, 3, 7, 8} {
		for _, n := range []int{4 * w, 4*w + 1, 97, 128} {
			SetWorkers(w)
			var mu sync.Mutex
			covered := make([]int32, n)
			var sizes []int
			parallelRows(n, func(lo, hi int) {
				mu.Lock()
				sizes = append(sizes, hi-lo)
				mu.Unlock()
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&covered[i], 1)
				}
			})
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("w=%d n=%d: row %d covered %d times", w, n, i, c)
				}
			}
			// Balanced chunking: sizes differ by at most one row.
			mn, mx := sizes[0], sizes[0]
			for _, s := range sizes {
				if s < mn {
					mn = s
				}
				if s > mx {
					mx = s
				}
			}
			if mx-mn > 1 {
				t.Fatalf("w=%d n=%d: chunk sizes %v not balanced", w, n, sizes)
			}
		}
	}
}

// TestParallelRowsConcurrentCallers drives many simultaneous parallelRows
// calls through the shared pool, the shape sim.RunParallel regions produce;
// the inline-fallback path must keep this deadlock-free and correct.
func TestParallelRowsConcurrentCallers(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	const callers, n = 16, 64
	var wg sync.WaitGroup
	sums := make([]int64, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				var sum int64
				parallelRows(n, func(lo, hi int) {
					var s int64
					for i := lo; i < hi; i++ {
						s += int64(i)
					}
					atomic.AddInt64(&sum, s)
				})
				if sum != n*(n-1)/2 {
					t.Errorf("caller %d: sum %d", c, sum)
					return
				}
				sums[c] = sum
			}
		}(c)
	}
	wg.Wait()
}

func benchMatMul(b *testing.B, workers int) {
	rng := rand.New(rand.NewSource(5))
	x := Randn(256, 128, 1, rng)
	y := Randn(128, 128, 1, rng)
	prev := SetWorkers(workers)
	defer SetWorkers(prev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMulSerial(b *testing.B)  { benchMatMul(b, 1) }
func BenchmarkMatMulPooled(b *testing.B)  { benchMatMul(b, runtime.NumCPU()) }
func BenchmarkMatMulPooled8(b *testing.B) { benchMatMul(b, 8) }
