package tensor

import "math"

// ReLUInto sets dst = max(a, 0).
func ReLUInto(dst, a *Dense) {
	a.mustSameShape(dst, "relu")
	for i, v := range a.V {
		if v > 0 {
			dst.V[i] = v
		} else {
			dst.V[i] = 0
		}
	}
}

// ReLUGradInto sets dst = grad where a > 0, else 0 (backward of ReLU).
func ReLUGradInto(dst, a, grad *Dense) {
	a.mustSameShape(grad, "relugrad")
	a.mustSameShape(dst, "relugrad")
	for i, v := range a.V {
		if v > 0 {
			dst.V[i] = grad.V[i]
		} else {
			dst.V[i] = 0
		}
	}
}

// LeakyReLU applies max(x, slope*x) elementwise to a scalar.
func LeakyReLU(x, slope float32) float32 {
	if x > 0 {
		return x
	}
	return slope * x
}

// LeakyReLUGrad returns the derivative of LeakyReLU at x.
func LeakyReLUGrad(x, slope float32) float32 {
	if x > 0 {
		return 1
	}
	return slope
}

// LogSoftmaxInto sets dst to the row-wise log-softmax of a (numerically
// stable: subtract the row max).
func LogSoftmaxInto(dst, a *Dense) {
	a.mustSameShape(dst, "logsoftmax")
	for i := 0; i < a.R; i++ {
		ar, dr := a.Row(i), dst.Row(i)
		maxv := ar[0]
		for _, v := range ar[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range ar {
			sum += math.Exp(float64(v - maxv))
		}
		lse := float32(math.Log(sum)) + maxv
		for j, v := range ar {
			dr[j] = v - lse
		}
	}
}

// SoftmaxInto sets dst to the row-wise softmax of a.
func SoftmaxInto(dst, a *Dense) {
	LogSoftmaxInto(dst, a)
	for i, v := range dst.V {
		dst.V[i] = float32(math.Exp(float64(v)))
	}
}

// CrossEntropy computes the mean negative log-likelihood of the labels
// under row-wise softmax of logits, and, if grad is non-nil, writes the
// gradient d(loss)/d(logits) = (softmax - onehot)/rows into grad. Rows with
// label < 0 are ignored (unlabeled).
func CrossEntropy(logits *Dense, labels []int32, grad *Dense) float64 {
	if len(labels) != logits.R {
		panic("tensor: label count mismatch")
	}
	ls := New(logits.R, logits.C)
	LogSoftmaxInto(ls, logits)
	var loss float64
	n := 0
	for i, lab := range labels {
		if lab < 0 {
			continue
		}
		n++
		loss -= float64(ls.Row(i)[lab])
	}
	if n == 0 {
		if grad != nil {
			grad.Zero()
		}
		return 0
	}
	if grad != nil {
		grad.mustSameShape(logits, "crossentropy")
		inv := float32(1.0 / float64(n))
		for i, lab := range labels {
			gr := grad.Row(i)
			if lab < 0 {
				for j := range gr {
					gr[j] = 0
				}
				continue
			}
			lr := ls.Row(i)
			for j := range gr {
				gr[j] = float32(math.Exp(float64(lr[j]))) * inv
			}
			gr[lab] -= inv
		}
	}
	return loss / float64(n)
}

// Accuracy returns the fraction of rows whose argmax equals the label,
// ignoring rows with label < 0.
func Accuracy(logits *Dense, labels []int32) float64 {
	correct, n := 0, 0
	for i, lab := range labels {
		if lab < 0 {
			continue
		}
		n++
		row := logits.Row(i)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		if int32(best) == lab {
			correct++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(correct) / float64(n)
}

// DropoutInto zeroes each element of a with probability p and scales the
// survivors by 1/(1-p), recording the mask (0 or 1/(1-p)) for backward.
// rng must not be nil when p > 0.
func DropoutInto(dst, a, mask *Dense, p float32, rnd func() float32) {
	a.mustSameShape(dst, "dropout")
	a.mustSameShape(mask, "dropout")
	if p <= 0 {
		copy(dst.V, a.V)
		for i := range mask.V {
			mask.V[i] = 1
		}
		return
	}
	scale := 1 / (1 - p)
	for i, v := range a.V {
		if rnd() < p {
			mask.V[i] = 0
			dst.V[i] = 0
		} else {
			mask.V[i] = scale
			dst.V[i] = v * scale
		}
	}
}

// BCEWithLogits computes the mean binary cross-entropy of labels (0 or 1)
// under sigmoid(scores), where scores is an [n x 1] column. If grad is
// non-nil it receives d(loss)/d(scores) = (sigmoid(s) - y)/n. The
// log1p(exp(·)) form is numerically stable for large |s|.
func BCEWithLogits(scores *Dense, labels []float32, grad *Dense) float64 {
	if scores.C != 1 || len(labels) != scores.R {
		panic("tensor: BCEWithLogits shape mismatch")
	}
	n := float64(scores.R)
	var loss float64
	for i, y := range labels {
		s := float64(scores.V[i])
		// loss_i = max(s,0) - s*y + log(1+exp(-|s|))
		loss += math.Max(s, 0) - s*float64(y) + math.Log1p(math.Exp(-math.Abs(s)))
		if grad != nil {
			sig := 1 / (1 + math.Exp(-s))
			grad.V[i] = float32((sig - float64(y)) / n)
		}
	}
	return loss / n
}

// AUC estimates the area under the ROC curve for scores with binary labels
// by exact pairwise comparison (ties count half).
func AUC(scores []float64, labels []float32) float64 {
	var pos, neg []float64
	for i, y := range labels {
		if y > 0.5 {
			pos = append(pos, scores[i])
		} else {
			neg = append(neg, scores[i])
		}
	}
	if len(pos) == 0 || len(neg) == 0 {
		return 0.5
	}
	var wins float64
	for _, p := range pos {
		for _, q := range neg {
			switch {
			case p > q:
				wins++
			case p == q:
				wins += 0.5
			}
		}
	}
	return wins / float64(len(pos)*len(neg))
}
