package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Host-side parallelism for the row-independent kernels. Output rows of a
// matrix product are independent, so splitting them across goroutines
// changes nothing numerically — results are bit-identical to the serial
// path. The worker count defaults to GOMAXPROCS and can be pinned for
// reproducible benchmarking.
//
// Work runs on a lazily started persistent pool rather than per-call
// goroutines: a parallelRows call enqueues its chunks on a shared task
// channel and executes the last chunk itself. When the queue is full (e.g.
// many simulated devices inside sim.RunParallel all hitting dense kernels
// at once) the submitting goroutine runs the chunk inline, which both
// bounds memory and makes nested parallelism deadlock-free.

var numWorkers int64 = int64(runtime.GOMAXPROCS(0))

// SetWorkers sets the number of goroutines row-parallel kernels may use
// (minimum 1) and returns the previous setting. SetWorkers(1) disables
// chunking entirely; the pool itself persists once started.
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(atomic.SwapInt64(&numWorkers, int64(n)))
}

// Workers returns the current worker count.
func Workers() int { return int(atomic.LoadInt64(&numWorkers)) }

var pool struct {
	once  sync.Once
	tasks chan func()
}

// startPool launches the persistent workers, once, sized to the physical
// parallelism of the host (not Workers(), which callers may raise and lower
// at will).
func startPool() {
	pool.once.Do(func() {
		n := runtime.NumCPU()
		pool.tasks = make(chan func(), 4*n)
		for i := 0; i < n; i++ {
			go func() {
				for t := range pool.tasks {
					t()
				}
			}()
		}
	})
}

// parallelRows invokes f over disjoint [lo, hi) row ranges covering [0, n),
// in parallel when both the worker count and the row count warrant it.
// Chunk sizes differ by at most one row (the first n%w chunks take the
// extra row), so no tail chunk straggles.
func parallelRows(n int, f func(lo, hi int)) {
	w := Workers()
	// Tiny matrices are not worth the round-trip through the pool.
	if w <= 1 || n < 4*w {
		f(0, n)
		return
	}
	startPool()
	base, extra := n/w, n%w
	var wg sync.WaitGroup
	lo := 0
	for i := 0; i < w-1; i++ {
		hi := lo + base
		if i < extra {
			hi++
		}
		cl, ch := lo, hi
		lo = hi
		wg.Add(1)
		task := func() {
			defer wg.Done()
			f(cl, ch)
		}
		select {
		case pool.tasks <- task:
		default:
			task() // queue full: run inline on the submitter
		}
	}
	// The caller works the final chunk itself instead of idling in Wait.
	f(lo, n)
	wg.Wait()
}
