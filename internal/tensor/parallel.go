package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Host-side parallelism for the row-independent kernels. Output rows of a
// matrix product are independent, so splitting them across goroutines
// changes nothing numerically — results are bit-identical to the serial
// path. The worker count defaults to GOMAXPROCS and can be pinned for
// reproducible benchmarking.

var numWorkers int64 = int64(runtime.GOMAXPROCS(0))

// SetWorkers sets the number of goroutines row-parallel kernels may use
// (minimum 1) and returns the previous setting.
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(atomic.SwapInt64(&numWorkers, int64(n)))
}

// Workers returns the current worker count.
func Workers() int { return int(atomic.LoadInt64(&numWorkers)) }

// parallelRows invokes f over disjoint [lo, hi) row ranges covering [0, n),
// in parallel when both the worker count and the row count warrant it.
func parallelRows(n int, f func(lo, hi int)) {
	w := Workers()
	// Tiny matrices are not worth the goroutine round-trip.
	if w <= 1 || n < 4*w {
		f(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
