package tensor

import "math/bits"

// Arena is a size-bucketed free list of Dense tensors and raw float32
// slices. It exists to make the steady-state training loop allocation-free:
// every per-iteration scratch tensor (op outputs, gradients, message
// buffers, dropout masks) is drawn from the arena and returned to it when
// the iteration's tape is reset, so the second and every later step reuse
// the first step's memory instead of re-allocating it.
//
// Slabs are bucketed by power-of-two capacity class: a request for n
// elements is served from bucket ceil(log2(n)), whose slabs all have
// capacity >= n. Get zeroes the returned memory, so a pooled tensor is
// indistinguishable from a freshly allocated one — this is what keeps
// pooled and non-pooled runs bit-identical.
//
// Ownership: an Arena is NOT safe for concurrent use. Under sim.RunParallel
// each worker goroutine owns its own arena (one per training worker, one
// per inference rank), exactly like it owns its device clock; arenas must
// never be shared across slots of a parallel region.
type Arena struct {
	slabs   [48][][]float32
	headers []*Dense

	hits, misses int64
	heldBytes    int64
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// bucketFor returns the capacity class for a request of n elements
// (n <= 1<<bucketFor(n)).
func bucketFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// slabClass returns the bucket a slab of the given capacity belongs to
// (1<<slabClass(c) <= c), so a slab popped from bucket b always has
// capacity >= 1<<b.
func slabClass(c int) int {
	if c <= 1 {
		return 0
	}
	return bits.Len(uint(c)) - 1
}

// GetSlice returns a zeroed float32 slice of length n, reusing pooled
// memory when available.
func (a *Arena) GetSlice(n int) []float32 {
	if n == 0 {
		return nil
	}
	b := bucketFor(n)
	if s := a.slabs[b]; len(s) > 0 {
		v := s[len(s)-1]
		s[len(s)-1] = nil
		a.slabs[b] = s[:len(s)-1]
		v = v[:n]
		clear(v)
		a.hits++
		a.heldBytes -= int64(4 * cap(v))
		return v
	}
	a.misses++
	return make([]float32, n, 1<<b)
}

// PutSlice returns a slice to the pool. The caller must not retain any
// reference to it.
func (a *Arena) PutSlice(v []float32) {
	c := cap(v)
	if c == 0 {
		return
	}
	b := slabClass(c)
	a.slabs[b] = append(a.slabs[b], v[:c])
	a.heldBytes += int64(4 * c)
}

// Get returns a zeroed [r x c] tensor backed by pooled memory. The Dense
// header itself is pooled too, so a warm Get performs no allocation.
func (a *Arena) Get(r, c int) *Dense {
	d := a.header()
	d.R, d.C = r, c
	d.V = a.GetSlice(r * c)
	return d
}

// Put returns a tensor (header and values) to the pool. The caller must not
// use d, or any slice of d.V, afterwards.
func (a *Arena) Put(d *Dense) {
	a.PutSlice(d.V)
	a.putHeader(d)
}

// header pops a pooled Dense header (or allocates one).
func (a *Arena) header() *Dense {
	if n := len(a.headers); n > 0 {
		d := a.headers[n-1]
		a.headers[n-1] = nil
		a.headers = a.headers[:n-1]
		return d
	}
	return &Dense{}
}

// putHeader returns just a Dense header to the pool, leaving the value
// slice alone. Tapes use it to recycle view headers whose backing memory
// belongs to another tensor.
func (a *Arena) putHeader(d *Dense) {
	d.R, d.C, d.V = 0, 0, nil
	a.headers = append(a.headers, d)
}

// View returns a pooled [r x c] header wrapping v (not copied, not owned:
// returning the view with PutHeader releases only the header).
func (a *Arena) View(r, c int, v []float32) *Dense {
	if len(v) != r*c {
		panic("tensor: arena view size mismatch")
	}
	d := a.header()
	d.R, d.C, d.V = r, c, v
	return d
}

// PutHeader releases a header obtained from View without touching the
// backing memory.
func (a *Arena) PutHeader(d *Dense) { a.putHeader(d) }

// Reset drops every pooled slab and header, releasing the arena's memory to
// the garbage collector. Call it between workload phases whose tensor
// shapes differ wildly (e.g. switching from training to full-graph
// inference); the steady-state loop never needs it.
func (a *Arena) Reset() {
	for i := range a.slabs {
		a.slabs[i] = nil
	}
	a.headers = nil
	a.heldBytes = 0
}

// ArenaStats reports pool effectiveness.
type ArenaStats struct {
	Hits, Misses int64 // slab requests served from / past the pool
	HeldBytes    int64 // bytes currently parked in free lists
}

// Stats returns cumulative hit/miss counts and current pooled bytes.
func (a *Arena) Stats() ArenaStats {
	return ArenaStats{Hits: a.hits, Misses: a.misses, HeldBytes: a.heldBytes}
}
