// Package linkpred implements supervised link prediction over the
// shared-memory store — one of the three GNN tasks the paper names
// alongside node and graph classification (§I). Each iteration samples a
// batch of existing edges as positives and random non-adjacent pairs as
// negatives, encodes all endpoint nodes with a GNN through the WholeGraph
// sampling/gather pipeline, scores each candidate pair with the dot product
// of its endpoint embeddings, and trains end to end with binary
// cross-entropy; gradients flow through the score head into the encoder.
package linkpred

import (
	"fmt"
	"math/rand"

	"wholegraph/internal/autograd"
	"wholegraph/internal/core"
	"wholegraph/internal/gnn"
	"wholegraph/internal/nn"
	"wholegraph/internal/sim"
	"wholegraph/internal/spops"
	"wholegraph/internal/tensor"
)

// Options configures the link-prediction trainer.
type Options struct {
	// EdgeBatch is the number of positive edges per iteration (an equal
	// number of negatives is drawn).
	EdgeBatch int
	// Fanouts are the encoder's per-layer sample counts.
	Fanouts []int
	// Dim is the encoder's hidden and output embedding width.
	Dim  int
	LR   float64
	Seed int64
}

func (o Options) normalize() Options {
	if o.EdgeBatch == 0 {
		o.EdgeBatch = 128
	}
	if len(o.Fanouts) == 0 {
		o.Fanouts = []int{5, 5}
	}
	if o.Dim == 0 {
		o.Dim = 32
	}
	if o.LR == 0 {
		o.LR = 0.01
	}
	return o
}

// Trainer trains a GraphSAGE encoder for link prediction on one device of
// a shared-memory store.
type Trainer struct {
	Store   *core.Store
	Dev     *sim.Device
	Encoder *gnn.SAGE
	Opts    Options

	loader *core.Loader
	opt    *nn.Adam
	rng    *rand.Rand
}

// New builds a link-prediction trainer over the store on dev.
func New(store *core.Store, dev *sim.Device, opts Options) (*Trainer, error) {
	opts = opts.normalize()
	if store.PG.Features() == nil {
		return nil, fmt.Errorf("linkpred: store has no node features")
	}
	cfg := gnn.Config{
		InDim:   store.DS.Spec.FeatDim,
		Hidden:  opts.Dim,
		Classes: opts.Dim, // output layer emits embeddings, not logits
		Layers:  len(opts.Fanouts),
		Heads:   1,
		Backend: spops.BackendNative,
		Seed:    opts.Seed,
	}
	return &Trainer{
		Store:   store,
		Dev:     dev,
		Encoder: gnn.NewSAGE(cfg),
		Opts:    opts,
		loader:  core.NewLoader(store, dev, opts.Fanouts, opts.Seed),
		opt:     nn.NewAdam(opts.LR),
		rng:     rand.New(rand.NewSource(opts.Seed ^ 0x11bb)),
	}, nil
}

// pairBatch is a sampled set of candidate edges over a deduplicated
// endpoint node list.
type pairBatch struct {
	nodes  []int64 // distinct endpoint node IDs
	u, v   []int   // indices into nodes per pair
	labels []float32
}

// samplePairs draws n positive edges and n negatives (rejecting real edges)
// and deduplicates the endpoints.
func (t *Trainer) samplePairs(n int) pairBatch {
	g := t.Store.DS.Graph
	var b pairBatch
	index := map[int64]int{}
	add := func(v int64) int {
		if i, ok := index[v]; ok {
			return i
		}
		i := len(b.nodes)
		index[v] = i
		b.nodes = append(b.nodes, v)
		return i
	}
	hasEdge := func(u, v int64) bool {
		for _, w := range g.Neighbors(u) {
			if w == v {
				return true
			}
		}
		return false
	}
	for len(b.labels) < n {
		e := t.rng.Int63n(g.NumEdges())
		// Locate the source of stored edge e by binary search on RowPtr.
		u := searchRow(g.RowPtr, e)
		v := g.Col[e]
		if u == v {
			continue
		}
		b.u = append(b.u, add(u))
		b.v = append(b.v, add(v))
		b.labels = append(b.labels, 1)
	}
	for neg := 0; neg < n; {
		u := t.rng.Int63n(g.N)
		v := t.rng.Int63n(g.N)
		if u == v || hasEdge(u, v) {
			continue
		}
		b.u = append(b.u, add(u))
		b.v = append(b.v, add(v))
		b.labels = append(b.labels, 0)
		neg++
	}
	return b
}

// searchRow returns the row whose [RowPtr[r], RowPtr[r+1]) contains e.
func searchRow(rowptr []int64, e int64) int64 {
	lo, hi := int64(0), int64(len(rowptr)-2)
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if rowptr[mid] <= e {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// score encodes the batch's endpoints and returns the per-pair dot scores
// plus the tape they were computed on.
func (t *Trainer) score(b pairBatch, train bool) (*autograd.Tape, *autograd.Var) {
	batch, _ := t.loader.BuildBatch(b.nodes)
	tp := autograd.NewTape()
	emb := t.Encoder.Forward(t.Dev, tp, batch, train)
	eu := autograd.GatherRows(emb, b.u)
	ev := autograd.GatherRows(emb, b.v)
	return tp, autograd.RowDot(eu, ev)
}

// TrainStep runs one iteration and returns its BCE loss.
func (t *Trainer) TrainStep() float64 {
	b := t.samplePairs(t.Opts.EdgeBatch)
	tp, scores := t.score(b, true)
	grad := tensor.New(scores.Value.R, 1)
	loss := tensor.BCEWithLogits(scores.Value, b.labels, grad)
	tp.Backward(scores, grad)
	t.opt.Step(t.Dev, t.Encoder.Params())
	return loss
}

// EvalAUC scores n held-out positive edges against n fresh negatives and
// returns the ROC AUC.
func (t *Trainer) EvalAUC(n int) float64 {
	b := t.samplePairs(n)
	_, scores := t.score(b, false)
	s := make([]float64, scores.Value.R)
	for i, v := range scores.Value.V {
		s[i] = float64(v)
	}
	return tensor.AUC(s, b.labels)
}
