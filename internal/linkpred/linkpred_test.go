package linkpred

import (
	"testing"

	"wholegraph/internal/core"
	"wholegraph/internal/dataset"
	"wholegraph/internal/sim"
)

func setup(t *testing.T) (*sim.Machine, *core.Store) {
	t.Helper()
	m := sim.NewMachine(sim.DGXA100(1))
	ds, err := dataset.Generate(dataset.OgbnProducts.Scaled(0.001))
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewStore(m, 0, ds)
	if err != nil {
		t.Fatal(err)
	}
	m.Reset()
	return m, s
}

func TestSamplePairs(t *testing.T) {
	m, s := setup(t)
	tr, err := New(s, m.Devs[0], Options{EdgeBatch: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b := tr.samplePairs(32)
	if len(b.labels) != 64 || len(b.u) != 64 || len(b.v) != 64 {
		t.Fatalf("pair counts: %d labels", len(b.labels))
	}
	g := s.DS.Graph
	for i := range b.labels {
		u, v := b.nodes[b.u[i]], b.nodes[b.v[i]]
		has := false
		for _, w := range g.Neighbors(u) {
			if w == v {
				has = true
			}
		}
		if b.labels[i] == 1 && !has {
			t.Fatalf("positive pair (%d,%d) is not an edge", u, v)
		}
		if b.labels[i] == 0 && has {
			t.Fatalf("negative pair (%d,%d) is an edge", u, v)
		}
	}
	// Endpoint list is deduplicated.
	seen := map[int64]bool{}
	for _, v := range b.nodes {
		if seen[v] {
			t.Fatal("duplicate endpoint in node list")
		}
		seen[v] = true
	}
}

func TestSearchRow(t *testing.T) {
	rowptr := []int64{0, 3, 3, 7, 10}
	cases := map[int64]int64{0: 0, 2: 0, 3: 2, 6: 2, 7: 3, 9: 3}
	for e, want := range cases {
		if got := searchRow(rowptr, e); got != want {
			t.Errorf("searchRow(%d) = %d, want %d", e, got, want)
		}
	}
}

func TestLinkPredictionLearns(t *testing.T) {
	m, s := setup(t)
	tr, err := New(s, m.Devs[0], Options{EdgeBatch: 64, Fanouts: []int{4, 4}, Dim: 16, LR: 0.02, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	before := tr.EvalAUC(256)
	first := tr.TrainStep()
	var last float64
	for i := 0; i < 60; i++ {
		last = tr.TrainStep()
	}
	after := tr.EvalAUC(256)
	if last >= first {
		t.Errorf("BCE loss did not decrease: %.4f -> %.4f", first, last)
	}
	if after <= before {
		t.Errorf("AUC did not improve: %.3f -> %.3f", before, after)
	}
	if after < 0.7 {
		t.Errorf("final AUC %.3f too low (started at %.3f)", after, before)
	}
	if m.MaxTime() == 0 {
		t.Error("training charged nothing")
	}
}

func TestNewRejectsFeaturelessStore(t *testing.T) {
	m, s := setup(t)
	s2 := *s
	pg := *s.PG
	pg.Feat = nil
	pg.SetFeatures(nil)
	s2.PG = &pg
	if _, err := New(&s2, m.Devs[0], Options{}); err == nil {
		t.Error("featureless store accepted")
	}
}
