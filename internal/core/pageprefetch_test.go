package core

import (
	"math"
	"testing"

	"wholegraph/internal/dataset"
	"wholegraph/internal/featstore"
	"wholegraph/internal/sim"
	"wholegraph/internal/topostore"
)

func testPagedStore(t *testing.T) (*sim.Machine, *Store) {
	t.Helper()
	m := sim.NewMachine(sim.DGXA100(1))
	ds, err := dataset.Generate(dataset.OgbnProducts.Scaled(0.001))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStoreOpts(m, 0, ds, StoreOptions{
		PagedFeatures: true,
		Feat:          featstore.Options{PageRows: 32},
		PagedTopo:     true,
		Topo:          topostore.Options{PageEdges: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, s
}

// TestPagePrefetchNoTimeTravel mirrors TestPrefetchOverlapsCompute for
// the paged-store fault prefetch: PrefetchPages issues only copy-stream
// work, compute is never advanced by the prefetch itself, and a batch
// built afterwards never completes before the transfer's ready event.
func TestPagePrefetchNoTimeTravel(t *testing.T) {
	m, s := testPagedStore(t)
	m.Reset()
	dev := m.Devs[0]
	ld := NewLoader(s, dev, []int{4, 4}, 3)
	targets := s.DS.Train[:8]

	n := ld.PrefetchPages(targets, 64)
	if n == 0 {
		t.Fatal("prefetch faulted no pages on a cold store")
	}
	ready := dev.StreamNow(sim.StreamCopy)
	if ready <= 0 {
		t.Fatal("prefetch charged nothing to the copy stream")
	}
	if now := dev.StreamNow(sim.StreamCompute); now != 0 {
		t.Fatalf("prefetch advanced the compute stream to %g", now)
	}
	ld.BuildBatch(targets)
	if now := dev.Now(); now < ready {
		t.Errorf("batch finished at %g, before the prefetch transfer at %g", now, ready)
	}
	ts, fs := s.TopoStore(), s.FeatStore()
	if ts.Stats().PrefetchHits == 0 {
		t.Error("topology demand path recorded no prefetch hits")
	}
	if fs.Stats().PrefetchHits == 0 {
		t.Error("feature demand path recorded no prefetch hits")
	}
}

// TestPagePrefetchKeepsBatchBitIdentical: the same loader seed with and
// without prefetch produces bit-identical batches — prefetch touches no
// RNG and no sampler state, only cache residency and virtual time.
func TestPagePrefetchKeepsBatchBitIdentical(t *testing.T) {
	_, s1 := testPagedStore(t)
	_, s2 := testPagedStore(t)
	ld1 := NewLoader(s1, s1.Comm.Devs[0], []int{4, 4}, 9)
	ld2 := NewLoader(s2, s2.Comm.Devs[0], []int{4, 4}, 9)
	for it := 0; it < 4; it++ {
		targets := s1.DS.Train[it*8 : (it+1)*8]
		ld2.PrefetchPages(targets, 32)
		b1, _ := ld1.BuildBatch(targets)
		b2, _ := ld2.BuildBatch(targets)
		if len(b1.Feat.V) != len(b2.Feat.V) {
			t.Fatalf("iter %d: feature tensor shapes differ", it)
		}
		for i := range b1.Feat.V {
			if math.Float32bits(b1.Feat.V[i]) != math.Float32bits(b2.Feat.V[i]) {
				t.Fatalf("iter %d: feature %d differs under prefetch", it, i)
			}
		}
		for i := range b1.Labels {
			if b1.Labels[i] != b2.Labels[i] {
				t.Fatalf("iter %d: label %d differs", it, i)
			}
		}
		for bi := range b1.Blocks {
			x, y := b1.Blocks[bi], b2.Blocks[bi]
			if x.NumNodes != y.NumNodes || x.NumTargets != y.NumTargets {
				t.Fatalf("iter %d block %d: shape differs", it, bi)
			}
			for i := range x.Col {
				if x.Col[i] != y.Col[i] {
					t.Fatalf("iter %d block %d: column %d differs", it, bi, i)
				}
			}
		}
	}
	if s2.TopoStore().Stats().PrefetchHits == 0 {
		t.Error("prefetching loader recorded no topology prefetch hits")
	}
}

// TestNewStoreOptsValidation: out-of-core datasets demand both paged
// backends; weighted graphs reject paged topology.
func TestNewStoreOptsValidation(t *testing.T) {
	m := sim.NewMachine(sim.DGXA100(1))
	spec := dataset.OgbnProducts.Scaled(0.001)
	ooc, err := dataset.GenerateOutOfCore(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStoreOpts(m, 0, ooc, StoreOptions{PagedFeatures: true}); err == nil {
		t.Error("out-of-core dataset accepted without paged topology")
	}
	if _, err := NewStoreOpts(m, 0, ooc, StoreOptions{PagedTopo: true}); err == nil {
		t.Error("out-of-core dataset accepted without paged features")
	}
	if _, err := NewStoreOpts(m, 0, ooc, StoreOptions{PagedFeatures: true, PagedTopo: true}); err != nil {
		t.Errorf("fully paged out-of-core store rejected: %v", err)
	}
	wspec := spec
	wspec.Weighted = true
	wds, err := dataset.Generate(wspec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStoreOpts(m, 0, wds, StoreOptions{PagedTopo: true}); err == nil {
		t.Error("weighted dataset accepted with paged topology")
	}
}
