package core

import (
	"math/rand"
	"testing"

	"wholegraph/internal/dataset"
	"wholegraph/internal/graph"
	"wholegraph/internal/sim"
)

func testStore(t *testing.T) (*sim.Machine, *Store) {
	t.Helper()
	m := sim.NewMachine(sim.DGXA100(1))
	ds, err := dataset.Generate(dataset.OgbnProducts.Scaled(0.001))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStore(m, 0, ds)
	if err != nil {
		t.Fatal(err)
	}
	return m, s
}

func TestNewStoreSetupCost(t *testing.T) {
	_, s := testStore(t)
	// Paper §III-B: setting up the shared memory takes tens to ~200 ms.
	if st := s.SetupTime(); st <= 0 || st > 0.5 {
		t.Errorf("setup time = %g s, want (0, 0.5]", st)
	}
}

func TestBuildBatchStructure(t *testing.T) {
	m, s := testStore(t)
	m.Reset()
	ld := NewLoader(s, m.Devs[0], []int{4, 4, 4}, 1)
	targets := s.DS.Train[:16]
	b, tm := ld.BuildBatch(targets)

	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.BatchSize() != 16 {
		t.Fatalf("batch size = %d", b.BatchSize())
	}
	if len(b.Blocks) != 3 {
		t.Fatalf("blocks = %d", len(b.Blocks))
	}
	// Input sets shrink from inner to outer block.
	if b.Blocks[0].NumNodes < b.Blocks[2].NumNodes {
		t.Errorf("block 0 (%d nodes) should be the largest (block 2 has %d)",
			b.Blocks[0].NumNodes, b.Blocks[2].NumNodes)
	}
	// Labels match the dataset.
	for i, v := range targets {
		if b.Labels[i] != s.DS.Labels[v] {
			t.Fatalf("label %d mismatch", i)
		}
	}
	if tm.Sample <= 0 || tm.Gather <= 0 {
		t.Errorf("timing not recorded: %+v", tm)
	}
	if tm.Train != 0 {
		t.Errorf("loader should not record training time: %+v", tm)
	}
}

func TestBuildBatchGathersCorrectFeatures(t *testing.T) {
	m, s := testStore(t)
	m.Reset()
	ld := NewLoader(s, m.Devs[2], []int{3}, 2)
	targets := s.DS.Train[:8]
	b, _ := ld.BuildBatch(targets)

	// The first batch-size rows of Feat are the targets' own features
	// (targets lead the unique list).
	dim := s.DS.Spec.FeatDim
	for i, v := range targets {
		for j := 0; j < dim; j++ {
			want := s.DS.Feat[v*int64(dim)+int64(j)]
			if b.Feat.At(i, j) != want {
				t.Fatalf("feature (%d,%d) = %g, want %g", i, j, b.Feat.At(i, j), want)
			}
		}
	}
}

func TestBuildBatchBlockEdgesAreRealEdges(t *testing.T) {
	m, s := testStore(t)
	m.Reset()
	ld := NewLoader(s, m.Devs[0], []int{5, 5}, 3)
	targets := s.DS.Train[:8]
	b, _ := ld.BuildBatch(targets)

	// Reconstruct the unique node lists per hop by walking the loader
	// again is complex; instead check the inner block's edges: each
	// column ID must be < NumNodes and rows non-empty only when the
	// original node has neighbors.
	for l, blk := range b.Blocks {
		if err := blk.Validate(); err != nil {
			t.Fatalf("block %d: %v", l, err)
		}
	}
}

func TestEpochBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := make([]int64, 103)
	for i := range train {
		train[i] = int64(i)
	}
	batches := EpochBatches(train, 25, rng)
	if len(batches) != 5 {
		t.Fatalf("batches = %d, want 5", len(batches))
	}
	if len(batches[4]) != 3 {
		t.Fatalf("tail batch = %d, want 3", len(batches[4]))
	}
	seen := map[int64]bool{}
	for _, b := range batches {
		for _, v := range b {
			if seen[v] {
				t.Fatalf("node %d in two batches", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != 103 {
		t.Fatalf("covered %d nodes", len(seen))
	}
	// Shuffled: not identity order (astronomically unlikely).
	identity := true
	for i, v := range batches[0] {
		if v != int64(i) {
			identity = false
			break
		}
	}
	if identity {
		t.Error("EpochBatches did not shuffle")
	}
}

func TestShardTraining(t *testing.T) {
	train := make([]int64, 10)
	for i := range train {
		train[i] = int64(i)
	}
	shards := ShardTraining(train, 4)
	if len(shards) != 4 {
		t.Fatalf("shards = %d", len(shards))
	}
	total := 0
	for _, s := range shards {
		total += len(s)
	}
	if total != 10 {
		t.Fatalf("sharded %d of 10", total)
	}
	if len(shards[0]) != 3 || len(shards[1]) != 3 || len(shards[2]) != 2 || len(shards[3]) != 2 {
		t.Errorf("shard sizes uneven beyond round-robin: %v", shards)
	}
}

func TestLoaderDeterministicWithSeed(t *testing.T) {
	m, s := testStore(t)
	m.Reset()
	a := NewLoader(s, m.Devs[0], []int{4, 4}, 7)
	b := NewLoader(s, m.Devs[1], []int{4, 4}, 7)
	targets := s.DS.Train[:8]
	ba, _ := a.BuildBatch(targets)
	bb, _ := b.BuildBatch(targets)
	if ba.Blocks[0].NumNodes != bb.Blocks[0].NumNodes {
		t.Error("same seed produced different batches")
	}
	for i := range ba.Feat.V {
		if ba.Feat.V[i] != bb.Feat.V[i] {
			t.Fatal("same seed produced different features")
		}
	}
}

func TestWeightedStoreGathersEdgeWeights(t *testing.T) {
	m := sim.NewMachine(sim.DGXA100(1))
	spec := dataset.OgbnProducts.Scaled(0.001)
	spec.Weighted = true
	ds, err := dataset.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStore(m, 0, ds)
	if err != nil {
		t.Fatal(err)
	}
	if s.PG.EdgeW == nil {
		t.Fatal("weighted spec did not attach edge weights")
	}
	m.Reset()
	ld := NewLoader(s, m.Devs[0], []int{4, 4}, 1)
	b, _ := ld.BuildBatch(ds.Train[:8])
	for l, blk := range b.Blocks {
		if blk.EdgeW == nil {
			t.Fatalf("block %d missing edge weights", l)
		}
		if int64(len(blk.EdgeW)) != blk.NumEdges() {
			t.Fatalf("block %d: %d weights for %d edges", l, len(blk.EdgeW), blk.NumEdges())
		}
		for _, w := range blk.EdgeW {
			if w < 0.5 || w >= 1.5 {
				t.Fatalf("edge weight %g outside HashEdgeWeight range", w)
			}
		}
		if err := blk.Validate(); err != nil {
			t.Fatalf("block %d: %v", l, err)
		}
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeWeightValuesMatchHashFunction(t *testing.T) {
	m := sim.NewMachine(sim.DGXA100(1))
	spec := dataset.OgbnProducts.Scaled(0.0005)
	spec.Weighted = true
	ds, err := dataset.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStore(m, 0, ds)
	if err != nil {
		t.Fatal(err)
	}
	pg := s.PG
	// Every stored weight equals HashEdgeWeight(src, dst).
	for v := int64(0); v < min(ds.Graph.N, 100); v++ {
		gid := pg.Owner[v]
		for k, w := range ds.Graph.Neighbors(v) {
			pos := pg.EdgeIndex(gid, int64(k))
			got := pg.EdgeW.Get(pos)
			want := graph.HashEdgeWeight(v, w)
			if got != want {
				t.Fatalf("edge (%d,%d): stored %g, want %g", v, w, got, want)
			}
		}
	}
}
