// Package core assembles the paper's primary contribution: the WholeGraph
// graph store (structure + features partitioned over the GPUs of one node
// in distributed shared memory, §III-B) and the GPU-resident mini-batch
// loader that chains the multi-GPU sampling op, the AppendUnique op and the
// global feature gather op (§III-C) into message-flow-graph batches ready
// for GNN training.
package core

import (
	"fmt"
	"math/rand"

	"wholegraph/internal/cache"
	"wholegraph/internal/dataset"
	"wholegraph/internal/gnn"
	"wholegraph/internal/graph"
	"wholegraph/internal/sampling"
	"wholegraph/internal/sim"
	"wholegraph/internal/spops"
	"wholegraph/internal/tensor"
	"wholegraph/internal/unique"
	"wholegraph/internal/wholemem"
)

// Store is a dataset resident in the multi-GPU distributed shared memory of
// one machine node: every GPU holds a hash partition of the nodes, their
// outgoing edges and their feature rows, and can read all other partitions
// through peer access.
type Store struct {
	Machine *sim.Machine
	Node    int
	Comm    *wholemem.Comm
	DS      *dataset.Dataset
	PG      *graph.Partitioned
}

// NewStore partitions ds across the GPUs of machine node `node`, charging
// the allocation and IPC-setup cost (§III-B: tens to ~200 ms, once per
// training run).
func NewStore(m *sim.Machine, node int, ds *dataset.Dataset) (*Store, error) {
	comm, err := wholemem.NewComm(m.NodeDevs(node))
	if err != nil {
		return nil, err
	}
	pg, err := graph.Partition(ds.Graph, ds.Feat, ds.Spec.FeatDim, comm)
	if err != nil {
		return nil, fmt.Errorf("core: partitioning %s: %w", ds.Spec.Name, err)
	}
	if ds.Spec.Weighted {
		pg.AttachEdgeWeights(graph.HashEdgeWeight)
	}
	return &Store{Machine: m, Node: node, Comm: comm, DS: ds, PG: pg}, nil
}

// SetupTime returns the virtual time the store construction took (the
// maximum device clock right after NewStore on a fresh machine).
func (s *Store) SetupTime() float64 { return s.Machine.MaxTime() }

// NewStoreWithFeatureKind is NewStore with the node-feature table backed by
// the given memory kind (DeviceP2P, DeviceUM or PinnedHost). It exists for
// the storage ablation: the paper's design choice of GPUDirect peer access
// is evaluated against the Unified Memory and host-memory alternatives it
// rejects (§II-B, Table I).
func NewStoreWithFeatureKind(m *sim.Machine, node int, ds *dataset.Dataset, kind wholemem.Kind) (*Store, error) {
	s, err := NewStore(m, node, ds)
	if err != nil {
		return nil, err
	}
	if s.PG.Feat != nil {
		s.PG.Feat.WithKind(kind)
	}
	return s, nil
}

// Loader builds training batches for one device. One loader per training
// process, as in the paper's one-process-per-GPU layout.
type Loader struct {
	Store   *Store
	Dev     *sim.Device
	Fanouts []int
	sampler *sampling.GPUSampler
	cache   *cache.FeatureCache
	rng     *rand.Rand

	// Batch-building scratch, reused across BuildBatch calls so the
	// steady-state loop allocates nothing: per-hop neighborhoods, dedup
	// workspaces and sub-CSR blocks (each hop needs its own, since all hops'
	// blocks are alive in the returned batch at once), plus the frontier,
	// feature-row, feature and label buffers. The returned Batch aliases
	// them and is valid only until the next BuildBatch on this loader.
	curBuf []graph.GlobalID
	nbs    []*sampling.Neighborhood
	deds   []*unique.Deduper
	blocks []*spops.SubCSR
	rows   []int64
	feat   *tensor.Dense
	labels []int32
	batch  gnn.Batch
}

// NewLoader creates a loader on dev sampling with the given per-layer
// fanouts (paper: 30,30,30).
func NewLoader(s *Store, dev *sim.Device, fanouts []int, seed int64) *Loader {
	return &Loader{
		Store:   s,
		Dev:     dev,
		Fanouts: fanouts,
		sampler: sampling.NewGPUSampler(s.PG, dev, seed),
		rng:     rand.New(rand.NewSource(seed ^ 0x5eed)),
	}
}

// Device returns the GPU this loader samples and trains on.
func (l *Loader) Device() *sim.Device { return l.Dev }

// WithCache routes the loader's feature gathers through a hot-node cache
// (see internal/cache); the cache must belong to the same device.
func (l *Loader) WithCache(c *cache.FeatureCache) *Loader {
	if c != nil && c.Dev != l.Dev {
		panic("core: cache bound to a different device")
	}
	l.cache = c
	return l
}

// Timing is the per-phase virtual-time breakdown of Figure 9: how long the
// device spent sampling (including AppendUnique), gathering features, and
// training.
type Timing struct {
	Sample float64
	Gather float64
	Train  float64
}

// Total returns the summed phase time.
func (t Timing) Total() float64 { return t.Sample + t.Gather + t.Train }

// Add accumulates another timing.
func (t *Timing) Add(o Timing) {
	t.Sample += o.Sample
	t.Gather += o.Gather
	t.Train += o.Train
}

// BuildBatch samples the multi-layer neighborhood of the given target nodes
// (original IDs), deduplicates each hop with AppendUnique, gathers the
// input features with the single-kernel global gather, and returns the
// batch plus the sample/gather timing split.
func (l *Loader) BuildBatch(targets []int64) (*gnn.Batch, Timing) {
	var tm Timing
	pg := l.Store.PG

	if l.nbs == nil {
		l.nbs = make([]*sampling.Neighborhood, len(l.Fanouts))
		l.deds = make([]*unique.Deduper, len(l.Fanouts))
		l.blocks = make([]*spops.SubCSR, len(l.Fanouts))
		for i := range l.nbs {
			l.nbs[i] = new(sampling.Neighborhood)
			l.deds[i] = unique.NewDeduper()
			l.blocks[i] = new(spops.SubCSR)
		}
	}

	if cap(l.curBuf) < len(targets) {
		l.curBuf = make([]graph.GlobalID, len(targets))
	}
	cur := l.curBuf[:len(targets)]
	for i, v := range targets {
		cur[i] = pg.Owner[v]
	}

	t0 := l.Dev.Now()
	blocks := l.blocks
	for hop, fan := range l.Fanouts {
		nb := l.sampler.SampleLayerInto(l.nbs[hop], cur, fan)
		uq := l.deds[hop].AppendUnique(l.Dev, cur, nb.Neighbors)
		// The first sampled hop feeds the last GNN layer.
		blk := blocks[len(l.Fanouts)-1-hop]
		blk.NumTargets = len(cur)
		blk.NumNodes = len(uq.Unique)
		blk.RowPtr = nb.Offsets
		blk.Col = uq.NeighborSubID
		blk.DupCount = uq.DupCount
		if pg.EdgeW != nil {
			// Gather the sampled edges' weights: single-element (4-byte)
			// accesses, the worst point of the Figure 8 curve.
			if cap(blk.EdgeW) < len(nb.EdgePos) {
				blk.EdgeW = make([]float32, len(nb.EdgePos))
			}
			blk.EdgeW = blk.EdgeW[:len(nb.EdgePos)]
			pg.EdgeW.GatherElems(l.Dev, nb.EdgePos, blk.EdgeW, "gather.edgew")
		}
		cur = uq.Unique
	}
	tm.Sample = l.Dev.Now() - t0

	// Global gather: one kernel reading every input node's feature row
	// from whichever GPU owns it.
	dim := pg.Dim
	if cap(l.rows) < len(cur) {
		l.rows = make([]int64, len(cur))
	}
	rows := l.rows[:len(cur)]
	for i, gid := range cur {
		rows[i] = pg.FeatRow(gid)
	}
	if l.feat == nil {
		l.feat = tensor.New(len(cur), dim)
	} else {
		n := len(cur) * dim
		if cap(l.feat.V) < n {
			l.feat.V = make([]float32, n)
		}
		l.feat.R, l.feat.C, l.feat.V = len(cur), dim, l.feat.V[:n]
	}
	feat := l.feat
	t1 := l.Dev.Now()
	if l.cache != nil {
		l.cache.GatherRows(rows, dim, feat.V, "gather.feat")
	} else {
		pg.Feat.GatherRows(l.Dev, rows, dim, feat.V, "gather.feat")
	}
	tm.Gather = l.Dev.Now() - t1

	if cap(l.labels) < len(targets) {
		l.labels = make([]int32, len(targets))
	}
	labels := l.labels[:len(targets)]
	for i, v := range targets {
		labels[i] = l.Store.DS.Labels[v]
	}
	l.batch = gnn.Batch{Blocks: blocks, Feat: feat, Labels: labels}
	return &l.batch, tm
}

// EpochBatches partitions the training set into shuffled mini-batches for
// one epoch. Every call reshuffles.
func EpochBatches(train []int64, batchSize int, rng *rand.Rand) [][]int64 {
	ids := append([]int64(nil), train...)
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	var out [][]int64
	for len(ids) > 0 {
		n := batchSize
		if n > len(ids) {
			n = len(ids)
		}
		out = append(out, ids[:n])
		ids = ids[n:]
	}
	return out
}

// ShardTraining splits the training IDs across nGPUs workers round-robin,
// the data-parallel partition of §III-D.
func ShardTraining(train []int64, nWorkers int) [][]int64 {
	out := make([][]int64, nWorkers)
	for i, v := range train {
		out[i%nWorkers] = append(out[i%nWorkers], v)
	}
	return out
}
