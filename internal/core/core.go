// Package core assembles the paper's primary contribution: the WholeGraph
// graph store (structure + features partitioned over the GPUs of one node
// in distributed shared memory, §III-B) and the GPU-resident mini-batch
// loader that chains the multi-GPU sampling op, the AppendUnique op and the
// global feature gather op (§III-C) into message-flow-graph batches ready
// for GNN training.
package core

import (
	"fmt"
	"math/rand"

	"wholegraph/internal/cache"
	"wholegraph/internal/dataset"
	"wholegraph/internal/featstore"
	"wholegraph/internal/gnn"
	"wholegraph/internal/graph"
	"wholegraph/internal/sampling"
	"wholegraph/internal/sim"
	"wholegraph/internal/spops"
	"wholegraph/internal/tensor"
	"wholegraph/internal/topostore"
	"wholegraph/internal/unique"
	"wholegraph/internal/wholemem"
)

// Store is a dataset resident in the multi-GPU distributed shared memory of
// one machine node: every GPU holds a hash partition of the nodes, their
// outgoing edges and their feature rows, and can read all other partitions
// through peer access.
type Store struct {
	Machine *sim.Machine
	Node    int
	Comm    *wholemem.Comm
	DS      *dataset.Dataset
	PG      *graph.Partitioned
}

// StoreOptions selects the storage backend per table: the flat resident
// layout (defaults), the paged feature store, and/or the paged topology
// store. Out-of-core datasets (GenerateOutOfCore: no CSR, no slab)
// require both paged backends.
type StoreOptions struct {
	// PagedFeatures serves node features from internal/featstore
	// (configured by Feat) instead of a resident wholemem slab.
	PagedFeatures bool
	Feat          featstore.Options
	// PagedTopo serves the CSR column array from internal/topostore
	// (configured by Topo) instead of a resident wholemem array; RowPtr
	// stays resident either way.
	PagedTopo bool
	Topo      topostore.Options
}

// NewStore partitions ds across the GPUs of machine node `node`, charging
// the allocation and IPC-setup cost (§III-B: tens to ~200 ms, once per
// training run).
func NewStore(m *sim.Machine, node int, ds *dataset.Dataset) (*Store, error) {
	return NewStoreOpts(m, node, ds, StoreOptions{})
}

// NewStoreOpts is NewStore with explicit storage backends. Decoded
// values are bit-identical across all backend combinations (Raw feature
// encoding): paging changes virtual time and cache hit rates, never
// training results.
func NewStoreOpts(m *sim.Machine, node int, ds *dataset.Dataset, opts StoreOptions) (*Store, error) {
	if ds.Graph == nil && !opts.PagedTopo {
		return nil, fmt.Errorf("core: %s is out-of-core (no materialized CSR); it requires the paged topology store (StoreOptions.PagedTopo)", ds.Spec.Name)
	}
	if ds.Feat == nil && ds.Gen != nil && !opts.PagedFeatures {
		return nil, fmt.Errorf("core: %s has no materialized feature slab; it requires the paged feature store (StoreOptions.PagedFeatures)", ds.Spec.Name)
	}
	if ds.Spec.Weighted && opts.PagedTopo {
		return nil, fmt.Errorf("core: %s is weighted; edge weights require a materialized column array", ds.Spec.Name)
	}
	comm, err := wholemem.NewComm(m.NodeDevs(node))
	if err != nil {
		return nil, err
	}
	// Features partitioned with the graph only in flat-slab mode; the
	// paged store installs its own FeatureSource below.
	feat := ds.Feat
	if opts.PagedFeatures {
		feat = nil
	}
	var pg *graph.Partitioned
	if opts.PagedTopo {
		var src graph.TopoSource
		if ds.Graph != nil {
			src = graph.CSRTopo{G: ds.Graph}
		} else {
			src = ds.Topo
		}
		pg, err = graph.PartitionPaged(src, feat, ds.Spec.FeatDim, comm, opts.Topo)
	} else {
		pg, err = graph.Partition(ds.Graph, feat, ds.Spec.FeatDim, comm)
	}
	if err != nil {
		return nil, fmt.Errorf("core: partitioning %s: %w", ds.Spec.Name, err)
	}
	if ds.Spec.Weighted {
		pg.AttachEdgeWeights(graph.HashEdgeWeight)
	}
	if opts.PagedFeatures {
		if ds.Feat == nil && ds.Gen == nil {
			return nil, fmt.Errorf("core: %s has no features for the paged store", ds.Spec.Name)
		}
		fs, err := featstore.New(&partitionRows{pg: pg, ds: ds}, opts.Feat)
		if err != nil {
			return nil, err
		}
		fs.Attach(comm.Devs...)
		pg.SetFeatures(fs)
	}
	return &Store{Machine: m, Node: node, Comm: comm, DS: ds, PG: pg}, nil
}

// SetupTime returns the virtual time the store construction took (the
// maximum device clock right after NewStore on a fresh machine).
func (s *Store) SetupTime() float64 { return s.Machine.MaxTime() }

// NewStoreWithFeatureKind is NewStore with the node-feature table backed by
// the given memory kind (DeviceP2P, DeviceUM or PinnedHost). It exists for
// the storage ablation: the paper's design choice of GPUDirect peer access
// is evaluated against the Unified Memory and host-memory alternatives it
// rejects (§II-B, Table I).
func NewStoreWithFeatureKind(m *sim.Machine, node int, ds *dataset.Dataset, kind wholemem.Kind) (*Store, error) {
	s, err := NewStore(m, node, ds)
	if err != nil {
		return nil, err
	}
	if s.PG.Feat != nil {
		s.PG.Feat.WithKind(kind)
	}
	return s, nil
}

// NewStorePaged is NewStore with node features served by the paged,
// compressed feature store (internal/featstore) instead of the flat
// wholemem slab: the graph is partitioned without a feature table and a
// Store over the dataset's rows — the materialized slab when present, the
// on-demand generator for out-of-core datasets — is installed as the
// graph's FeatureSource, with one BlockCache per GPU. With the Raw
// encoding the decoded rows are bit-identical to the slab, so training
// losses match the flat path exactly; lossy encodings are opt-in.
func NewStorePaged(m *sim.Machine, node int, ds *dataset.Dataset, opts featstore.Options) (*Store, error) {
	return NewStoreOpts(m, node, ds, StoreOptions{PagedFeatures: true, Feat: opts})
}

// FeatStore returns the paged feature store behind a NewStorePaged store,
// or nil for slab-backed stores.
func (s *Store) FeatStore() *featstore.Store {
	fs, _ := s.PG.Features().(*featstore.Store)
	return fs
}

// TopoStore returns the paged topology store behind a paged-topology
// store, or nil when the column array is materialized.
func (s *Store) TopoStore() *topostore.Store { return s.PG.PagedTopo() }

// partitionRows adapts the dataset's per-node rows to the partitioned
// feature-row order (rank-major, FeatRow indices) the loader gathers with.
type partitionRows struct {
	pg *graph.Partitioned
	ds *dataset.Dataset
}

func (p *partitionRows) NumRows() int64 { return p.pg.N }
func (p *partitionRows) Dim() int       { return p.pg.Dim }
func (p *partitionRows) FillRow(row int64, dst []float32) {
	p.ds.FillFeatRow(p.pg.RowOrig(row), dst)
}

// loaderSlot is one entry of the loader's two-slot batch ring: the full
// batch-building scratch plus everything the produced batch aliases, and
// the two events that order slot reuse across streams. Each slot's scratch
// is reused in place, so the steady-state loop allocates nothing: per-hop
// neighborhoods, dedup workspaces and sub-CSR blocks (each hop needs its
// own, since all hops' blocks are alive in the returned batch at once),
// plus the frontier, feature-row, feature and label buffers.
type loaderSlot struct {
	curBuf []graph.GlobalID
	nbs    []*sampling.Neighborhood
	deds   []*unique.Deduper
	blocks []*spops.SubCSR
	rows   []int64
	feat   *tensor.Dense
	labels []int32
	batch  gnn.Batch
	tm     Timing
	// ready is recorded on the copy stream when a prefetched build
	// completes; free is recorded on the compute stream when the slot's
	// batch has been consumed (Release). The zero events never block.
	ready sim.Event
	free  sim.Event
}

// Loader builds training batches for one device. One loader per training
// process, as in the paper's one-process-per-GPU layout.
//
// Batches come out of a two-slot ring: a returned batch aliases its slot's
// scratch and stays valid while the other slot is (re)built, which is what
// lets Prefetch construct batch i+1 on the device's copy stream while
// compute still reads batch i. Ownership: the loader — and both slots —
// belongs to its worker's goroutine; prefetching overlaps virtual time,
// not host execution, so no locking is involved.
type Loader struct {
	Store   *Store
	Dev     *sim.Device
	Fanouts []int
	sampler *sampling.GPUSampler
	cache   *cache.FeatureCache
	rng     *rand.Rand

	slots [2]loaderSlot
	// next indexes the slot the next build (BuildBatch or Prefetch) writes
	// to; the most recently returned batch lives in slots[next^1].
	next int
	// pending is set between Prefetch and Collect.
	pending bool
}

// NewLoader creates a loader on dev sampling with the given per-layer
// fanouts (paper: 30,30,30).
func NewLoader(s *Store, dev *sim.Device, fanouts []int, seed int64) *Loader {
	return &Loader{
		Store:   s,
		Dev:     dev,
		Fanouts: fanouts,
		sampler: sampling.NewGPUSampler(s.PG, dev, seed),
		rng:     rand.New(rand.NewSource(seed ^ 0x5eed)),
	}
}

// Device returns the GPU this loader samples and trains on.
func (l *Loader) Device() *sim.Device { return l.Dev }

// WithCache routes the loader's feature gathers through a hot-node cache
// (see internal/cache); the cache must belong to the same device.
func (l *Loader) WithCache(c *cache.FeatureCache) *Loader {
	if c != nil && c.Dev != l.Dev {
		panic("core: cache bound to a different device")
	}
	l.cache = c
	return l
}

// Timing is the per-phase virtual-time breakdown of Figure 9: how long the
// executing stream spent sampling (including AppendUnique), gathering
// features, and training. The three stage fields are busy times on
// whichever stream ran the stage: sequentially all three lie on the
// device's single compute timeline; under the pipelined loader Sample and
// Gather accrue on the copy stream, concurrently with Train on the compute
// stream.
type Timing struct {
	Sample float64
	Gather float64
	Train  float64
	// Crit is the iteration critical path: the compute-stream span from
	// iteration start to optimizer-step end. Sequentially it equals
	// Sample+Gather+Train (everything is on the critical path); pipelined
	// it is shorter, because the next batch's Sample+Gather hide behind
	// Train and only the residual wait surfaces.
	Crit float64
}

// Total returns the summed per-stage busy time. Stages on different
// streams overlap, so under the pipelined loader Total exceeds the elapsed
// critical path; use Crit for elapsed-time claims and Total for busy-time
// breakdowns (Figure 9 stacks busy time, so it uses Total either way).
func (t Timing) Total() float64 { return t.Sample + t.Gather + t.Train }

// Add accumulates another timing field-wise — per-stage busy times and the
// critical path alike. Sums of per-worker timings are a busy-time view
// across workers; callers rescale to a per-worker average afterwards (as
// train.RunEpoch does) when comparing against elapsed time.
func (t *Timing) Add(o Timing) {
	t.Sample += o.Sample
	t.Gather += o.Gather
	t.Train += o.Train
	t.Crit += o.Crit
}

// BuildBatch samples the multi-layer neighborhood of the given target nodes
// (original IDs), deduplicates each hop with AppendUnique, gathers the
// input features with the single-kernel global gather, and returns the
// batch plus the sample/gather timing split. Everything is charged to the
// device's current stream (the compute stream in the sequential training
// path). The returned batch aliases loader scratch and is valid only until
// the next-but-one build on this loader.
func (l *Loader) BuildBatch(targets []int64) (*gnn.Batch, Timing) {
	if l.pending {
		panic("core: BuildBatch with a prefetch pending; Collect it first")
	}
	s := &l.slots[l.next]
	l.next ^= 1
	l.buildInto(s, targets)
	return &s.batch, s.tm
}

// Prefetch builds the batch for the given targets on the device's copy
// stream, overlapping whatever the compute stream is doing. The build goes
// into the ring slot not aliased by the most recently returned batch; the
// copy stream first waits for that slot's release event, so a prefetch can
// never overwrite a batch compute still reads. Exactly one Collect must
// follow before the next Prefetch or BuildBatch.
//
// Prefetching changes only which virtual timeline the build is charged to:
// the sampler RNG and dedup order are those of a sequential BuildBatch
// with the same targets, so batch contents are bit-identical.
func (l *Loader) Prefetch(targets []int64) {
	if l.pending {
		panic("core: Prefetch with a prefetch already pending")
	}
	s := &l.slots[l.next]
	// The build starts no earlier than its issue point on the current
	// (compute) stream — a stream cannot run work before the host enqueued
	// it — and no earlier than the slot's release.
	issue := l.Dev.RecordEvent()
	prev := l.Dev.SetStream(sim.StreamCopy)
	l.Dev.WaitEvent(issue, "wait.issue")
	l.Dev.WaitEvent(s.free, "wait.slot")
	l.buildInto(s, targets)
	s.ready = l.Dev.RecordEvent()
	l.Dev.SetStream(prev)
	l.pending = true
}

// Collect returns the batch built by the preceding Prefetch, stalling the
// compute stream until the copy stream's ready event if the build is still
// in flight. The returned Timing carries the copy-stream Sample/Gather
// busy times of the build.
func (l *Loader) Collect() (*gnn.Batch, Timing) {
	if !l.pending {
		panic("core: Collect without a pending Prefetch")
	}
	s := &l.slots[l.next]
	l.next ^= 1
	l.pending = false
	l.Dev.WaitEvent(s.ready, "wait.batch")
	return &s.batch, s.tm
}

// Release records on the compute stream that the most recently returned
// batch (from Collect or BuildBatch) is dead — typically right after
// backward. The slot's next Prefetch waits on this event before
// overwriting the scratch.
func (l *Loader) Release() {
	l.slots[l.next^1].free = l.Dev.RecordEvent()
}

// PrefetchPages predicts which paged-store pages the batch for `targets`
// will touch — the first sampling hop's column ranges and the targets'
// feature rows — and faults up to maxPages of each (topology, features)
// on the copy stream ahead of demand, without blocking compute. The
// prediction is a heuristic over host-readable metadata (degrees, row
// indices); it never advances the sampler RNG, so batch contents are
// unchanged — hit rates and virtual time are the only effect. Returns
// the number of pages actually faulted. No-op on fully resident stores.
func (l *Loader) PrefetchPages(targets []int64, maxPages int) int {
	if maxPages <= 0 {
		return 0
	}
	pg := l.Store.PG
	var total int
	if ts := pg.PagedTopo(); ts != nil && len(l.Fanouts) > 0 {
		fan := int64(l.Fanouts[0])
		seen := make(map[int32]struct{}, maxPages)
		ids := make([]int32, 0, maxPages)
		add := func(id int32) {
			if _, ok := seen[id]; !ok {
				seen[id] = struct{}{}
				ids = append(ids, id)
			}
		}
	predict:
		for _, v := range targets {
			gid := pg.Owner[v]
			deg := pg.Degree(gid)
			if deg == 0 {
				continue
			}
			e0 := pg.EdgeIndex(gid, 0)
			last := e0
			if deg <= fan {
				// Full-list read: every page the row spans.
				last = e0 + deg - 1
			}
			// Hubs get their first page only — sampled positions are
			// scattered and prefetching a hub's whole list would thrash.
			for id := ts.PageOf(e0); id <= ts.PageOf(last); id++ {
				if len(ids) >= maxPages {
					break predict
				}
				add(id)
			}
		}
		total += ts.PrefetchPages(l.Dev, ids)
	}
	if fs := l.Store.FeatStore(); fs != nil {
		rows := make([]int64, len(targets))
		for i, v := range targets {
			rows[i] = pg.FeatRow(pg.Owner[v])
		}
		total += fs.PrefetchRows(l.Dev, rows, maxPages)
	}
	return total
}

// buildInto runs the sample/dedup/gather chain for targets into slot s,
// charging the device's current stream.
func (l *Loader) buildInto(s *loaderSlot, targets []int64) {
	s.tm = Timing{}
	pg := l.Store.PG

	if s.nbs == nil {
		s.nbs = make([]*sampling.Neighborhood, len(l.Fanouts))
		s.deds = make([]*unique.Deduper, len(l.Fanouts))
		s.blocks = make([]*spops.SubCSR, len(l.Fanouts))
		for i := range s.nbs {
			s.nbs[i] = new(sampling.Neighborhood)
			s.deds[i] = unique.NewDeduper()
			s.blocks[i] = new(spops.SubCSR)
		}
	}

	if cap(s.curBuf) < len(targets) {
		s.curBuf = make([]graph.GlobalID, len(targets))
	}
	cur := s.curBuf[:len(targets)]
	for i, v := range targets {
		cur[i] = pg.Owner[v]
	}

	t0 := l.Dev.Now()
	blocks := s.blocks
	for hop, fan := range l.Fanouts {
		nb := l.sampler.SampleLayerInto(s.nbs[hop], cur, fan)
		uq := s.deds[hop].AppendUnique(l.Dev, cur, nb.Neighbors)
		// The first sampled hop feeds the last GNN layer.
		blk := blocks[len(l.Fanouts)-1-hop]
		blk.NumTargets = len(cur)
		blk.NumNodes = len(uq.Unique)
		blk.RowPtr = nb.Offsets
		blk.Col = uq.NeighborSubID
		blk.DupCount = uq.DupCount
		if pg.EdgeW != nil {
			// Gather the sampled edges' weights: single-element (4-byte)
			// accesses, the worst point of the Figure 8 curve.
			if cap(blk.EdgeW) < len(nb.EdgePos) {
				blk.EdgeW = make([]float32, len(nb.EdgePos))
			}
			blk.EdgeW = blk.EdgeW[:len(nb.EdgePos)]
			pg.EdgeW.GatherElems(l.Dev, nb.EdgePos, blk.EdgeW, "gather.edgew")
		}
		cur = uq.Unique
	}
	s.tm.Sample = l.Dev.Now() - t0

	// Global gather: one kernel reading every input node's feature row
	// from whichever GPU owns it.
	dim := pg.Dim
	if cap(s.rows) < len(cur) {
		s.rows = make([]int64, len(cur))
	}
	rows := s.rows[:len(cur)]
	for i, gid := range cur {
		rows[i] = pg.FeatRow(gid)
	}
	if s.feat == nil {
		s.feat = tensor.New(len(cur), dim)
	} else {
		n := len(cur) * dim
		if cap(s.feat.V) < n {
			s.feat.V = make([]float32, n)
		}
		s.feat.R, s.feat.C, s.feat.V = len(cur), dim, s.feat.V[:n]
	}
	feat := s.feat
	t1 := l.Dev.Now()
	if l.cache != nil {
		l.cache.GatherRows(rows, dim, feat.V, "gather.feat")
	} else {
		pg.Features().GatherRows(l.Dev, rows, dim, feat.V, "gather.feat")
	}
	s.tm.Gather = l.Dev.Now() - t1

	if cap(s.labels) < len(targets) {
		s.labels = make([]int32, len(targets))
	}
	labels := s.labels[:len(targets)]
	for i, v := range targets {
		labels[i] = l.Store.DS.Labels[v]
	}
	s.batch = gnn.Batch{Blocks: blocks, Feat: feat, Labels: labels}
}

// EpochBatches partitions the training set into shuffled mini-batches for
// one epoch. Every call reshuffles.
func EpochBatches(train []int64, batchSize int, rng *rand.Rand) [][]int64 {
	ids := append([]int64(nil), train...)
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	var out [][]int64
	for len(ids) > 0 {
		n := batchSize
		if n > len(ids) {
			n = len(ids)
		}
		out = append(out, ids[:n])
		ids = ids[n:]
	}
	return out
}

// ShardTraining splits the training IDs across nGPUs workers round-robin,
// the data-parallel partition of §III-D.
func ShardTraining(train []int64, nWorkers int) [][]int64 {
	out := make([][]int64, nWorkers)
	for i, v := range train {
		out[i%nWorkers] = append(out[i%nWorkers], v)
	}
	return out
}
