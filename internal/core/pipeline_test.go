package core

import (
	"testing"

	"wholegraph/internal/sim"
)

// clone deep-copies the fields of a batch that later builds may overwrite.
func cloneBatchData(b *batchSnapshot, feat []float32, labels []int32, nodes []int) {
	b.feat = append([]float32(nil), feat...)
	b.labels = append([]int32(nil), labels...)
	b.nodes = append([]int(nil), nodes...)
}

type batchSnapshot struct {
	feat   []float32
	labels []int32
	nodes  []int
}

func snapshot(l *Loader, targets []int64) batchSnapshot {
	b, _ := l.BuildBatch(targets)
	var s batchSnapshot
	nodes := make([]int, len(b.Blocks))
	for i, blk := range b.Blocks {
		nodes[i] = blk.NumNodes
	}
	cloneBatchData(&s, b.Feat.V, b.Labels, nodes)
	return s
}

// TestRingKeepsPreviousBatchAlive: a returned batch must stay intact while
// the next one is built — the property the pipelined trainer relies on to
// run forward/backward on batch i while batch i+1 materializes.
func TestRingKeepsPreviousBatchAlive(t *testing.T) {
	m, s := testStore(t)
	m.Reset()
	ld := NewLoader(s, m.Devs[0], []int{4, 4}, 1)
	a, _ := ld.BuildBatch(s.DS.Train[:8])
	var snap batchSnapshot
	nodes := make([]int, len(a.Blocks))
	for i, blk := range a.Blocks {
		nodes[i] = blk.NumNodes
	}
	cloneBatchData(&snap, a.Feat.V, a.Labels, nodes)

	ld.BuildBatch(s.DS.Train[8:16]) // overwrites the other slot only

	for i, v := range snap.feat {
		if a.Feat.V[i] != v {
			t.Fatalf("feature %d of batch A changed during build of batch B", i)
		}
	}
	for i, v := range snap.labels {
		if a.Labels[i] != v {
			t.Fatalf("label %d of batch A changed during build of batch B", i)
		}
	}
	for i, blk := range a.Blocks {
		if blk.NumNodes != snap.nodes[i] {
			t.Fatalf("block %d of batch A resized during build of batch B", i)
		}
	}
}

// TestPrefetchMatchesBuildBatch: prefetching must change only which stream
// is charged, never the batch contents — same sampler RNG, same dedup
// order, same gathered rows.
func TestPrefetchMatchesBuildBatch(t *testing.T) {
	// Two identical machines: the device index must match, because the
	// local/remote gather split — and so the charged time — depends on
	// which partitions are local to the loader's device.
	m1, s1 := testStore(t)
	m1.Reset()
	m2, s2 := testStore(t)
	m2.Reset()
	seq := NewLoader(s1, m1.Devs[0], []int{4, 4}, 9)
	pre := NewLoader(s2, m2.Devs[0], []int{4, 4}, 9)
	for round := 0; round < 3; round++ {
		targets := s1.DS.Train[round*8 : round*8+8]
		sb, stm := seq.BuildBatch(targets)
		pre.Prefetch(targets)
		pb, ptm := pre.Collect()
		pre.Release()
		if stm.Sample != ptm.Sample || stm.Gather != ptm.Gather {
			t.Errorf("round %d: stage times differ: sequential %+v prefetched %+v", round, stm, ptm)
		}
		if len(sb.Feat.V) != len(pb.Feat.V) {
			t.Fatalf("round %d: feature sizes differ", round)
		}
		for i := range sb.Feat.V {
			if sb.Feat.V[i] != pb.Feat.V[i] {
				t.Fatalf("round %d: feature %d differs", round, i)
			}
		}
		for i := range sb.Blocks {
			if sb.Blocks[i].NumNodes != pb.Blocks[i].NumNodes ||
				sb.Blocks[i].NumEdges() != pb.Blocks[i].NumEdges() {
				t.Fatalf("round %d block %d: shape differs", round, i)
			}
		}
	}
}

// TestPrefetchOverlapsCompute exercises the event protocol end to end: a
// prefetch issued before compute work runs concurrently with it on the
// virtual timeline, and Collect only pays the residual wait.
func TestPrefetchOverlapsCompute(t *testing.T) {
	m, s := testStore(t)
	m.Reset()
	dev := m.Devs[0]
	ld := NewLoader(s, dev, []int{4, 4}, 3)

	ld.Prefetch(s.DS.Train[:8])
	buildTime := dev.StreamNow(sim.StreamCopy) - dev.StreamNow(sim.StreamCompute)
	if buildTime <= 0 {
		t.Fatal("prefetch charged nothing to the copy stream")
	}
	// Compute longer than the build: Collect must not block at all.
	dev.Kernel(sim.KernelCost{FLOPs: 1e9, Tag: "train"})
	if dev.Now() <= dev.StreamNow(sim.StreamCopy) {
		t.Fatalf("test setup: compute %g did not outlast the build %g",
			dev.Now(), dev.StreamNow(sim.StreamCopy))
	}
	before := dev.Now()
	ld.Collect()
	if dev.Now() != before {
		t.Errorf("Collect stalled %g s despite the build having finished", dev.Now()-before)
	}
	ld.Release()

	// Now the converse: prefetch with idle compute; Collect pays the full
	// residual build time.
	ld.Prefetch(s.DS.Train[8:16])
	before = dev.Now()
	ld.Collect()
	if dev.Now() <= before {
		t.Error("Collect did not wait for an in-flight build")
	}
	ld.Release()
}

// TestPrefetchWaitsForSlotRelease: the copy stream must not overwrite a
// slot before the compute stream released it.
func TestPrefetchWaitsForSlotRelease(t *testing.T) {
	m, s := testStore(t)
	m.Reset()
	dev := m.Devs[0]
	ld := NewLoader(s, dev, []int{4}, 4)

	ld.Prefetch(s.DS.Train[:8])
	ld.Collect() // batch 0 in flight on compute
	ld.Prefetch(s.DS.Train[8:16])
	ld.Collect()
	// Long compute before releasing batch 1's slot.
	dev.Kernel(sim.KernelCost{FLOPs: 1e10, Tag: "train"})
	ld.Release()
	releasedAt := dev.Now()
	ld.Prefetch(s.DS.Train[16:24]) // reuses the slot released just now
	// The new build must start at or after the release point.
	copyEnd := dev.StreamNow(sim.StreamCopy)
	if copyEnd < releasedAt {
		t.Errorf("prefetch finished at %g, before the slot release at %g", copyEnd, releasedAt)
	}
	ld.Collect()
	ld.Release()
}

// TestLoaderGuards: misuse of the prefetch protocol panics rather than
// corrupting the ring.
func TestLoaderGuards(t *testing.T) {
	m, s := testStore(t)
	m.Reset()
	ld := NewLoader(s, m.Devs[0], []int{4}, 5)
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("Collect without Prefetch", func() { ld.Collect() })
	ld.Prefetch(s.DS.Train[:4])
	expectPanic("double Prefetch", func() { ld.Prefetch(s.DS.Train[4:8]) })
	expectPanic("BuildBatch with pending prefetch", func() { ld.BuildBatch(s.DS.Train[4:8]) })
	ld.Collect()
	ld.Release()
}
