// Package sched is the whole-step scheduler: it turns one captured
// training step (internal/autograd capture/replay, DESIGN.md §9) into an
// explicit dependency DAG and re-places the step's device charges onto the
// simulated GPU's two streams by list scheduling, so independent kernels —
// a Linear layer's dX and dW backward GEMMs, sibling attention heads — run
// concurrently the way a CUDA Graph with multi-stream capture would.
//
// The substrate is record-and-schedule replay: all host math still runs in
// the original captured order (losses, gradients and model state stay
// bit-identical to eager execution); only the *virtual-time placement* of
// the device charges is decided by the scheduler. A Recorder attaches to
// the device (sim.ChargeRecorder) so charges route to DAG nodes instead of
// advancing the clocks, observes the replay through autograd.ReplayObserver
// to open nodes and recover producer/consumer edges (value tensors keyed by
// buffer identity, gradients keyed by their Var), then schedules the DAG
// and applies each node's charges at its scheduled position.
//
// The same package owns the two smaller issue-ordering decisions the
// trainer used to hand-wire: the readiness order and per-device start gates
// of gradient-bucket AllReduces (BucketOrder, GateStarts — consumed by
// train's overlap engine), and the per-iteration action sequence of the
// pipelined epoch loop (PipelinePlan).
package sched

import (
	"fmt"

	"wholegraph/internal/autograd"
	"wholegraph/internal/sim"
	"wholegraph/internal/tensor"
)

// Charge is one device charge recorded for a DAG node, in record order.
type Charge struct {
	Dur  float64
	Tag  string
	Comm bool
}

// Node is one schedulable unit of a captured step: a forward op (opened by
// a CaptureRW step), a tape node's backward closure, a targeted backward
// hook, the loss, or the root graph-launch node (ID 1). Deps point at
// lower-ID nodes (record order is topological).
type Node struct {
	ID      int // 1-based; 0 is never a valid node
	Label   string
	Deps    []int
	Charges []Charge
	Dur     float64 // sum of charge durations

	// Filled by Schedule.
	Copy       bool // placed on the copy stream (else compute)
	Start, End float64
}

// Recorder builds and schedules the DAG for one replayed step. It is owned
// by one worker goroutine, like the device and tape it observes, and is
// reused across iterations via Reset.
type Recorder struct {
	nodes []Node
	cur   int // ID of the node currently accepting charges

	// Last-writer maps for dependency recovery. Value tensors are
	// pointer-stable across replays of a valid capture; gradients are keyed
	// by Var because their tensors allocate lazily.
	valWriter  map[*tensor.Dense]int
	gradWriter map[*autograd.Var]int

	// Schedule results and scratch, reused across iterations.
	makespan float64
	serial   bool // fell back to serial order (schedule was no better)
	prio     []float64
	est      []float64
	rem      []int
	succs    [][]int
	order    []int // node indices in placement order
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		valWriter:  make(map[*tensor.Dense]int),
		gradWriter: make(map[*autograd.Var]int),
	}
}

// Reset clears the DAG for the next step and opens the root graph-launch
// node (ID 1): charges recorded before the first observed op — the
// GraphLaunch of sim.BeginGraphReplay — attach there, and every later node
// implicitly starts after it.
func (r *Recorder) Reset() {
	for i := range r.nodes {
		r.nodes[i].Deps = r.nodes[i].Deps[:0]
		r.nodes[i].Charges = r.nodes[i].Charges[:0]
	}
	r.nodes = r.nodes[:0]
	clear(r.valWriter)
	clear(r.gradWriter)
	r.makespan, r.serial = 0, false
	r.open("launch")
}

// open appends a fresh node, makes it current, and returns it. Every node
// but the root depends on the root.
func (r *Recorder) open(label string) *Node {
	n := len(r.nodes)
	if n < cap(r.nodes) {
		r.nodes = r.nodes[:n+1]
	} else {
		r.nodes = append(r.nodes, Node{})
	}
	nd := &r.nodes[n]
	nd.ID, nd.Label = n+1, label
	nd.Deps, nd.Charges = nd.Deps[:0], nd.Charges[:0]
	nd.Dur, nd.Start, nd.End, nd.Copy = 0, 0, 0, false
	if nd.ID != 1 {
		nd.Deps = append(nd.Deps, 1)
	}
	r.cur = nd.ID
	return nd
}

// dep adds an edge nd -> id (nd starts after id ends), deduplicated.
func (r *Recorder) dep(nd *Node, id int) {
	for _, d := range nd.Deps {
		if d == id {
			return
		}
	}
	nd.Deps = append(nd.Deps, id)
}

// RecordCharge implements sim.ChargeRecorder: the charge attaches to the
// current node. Plain Capture riders (cost annotations recorded next to an
// op) land on the op's node because they replay while it is current.
func (r *Recorder) RecordCharge(dt float64, tag string, comm bool) {
	nd := &r.nodes[r.cur-1]
	nd.Charges = append(nd.Charges, Charge{Dur: dt, Tag: tag, Comm: comm})
	nd.Dur += dt
}

// ForwardNode implements autograd.ReplayObserver for a CaptureRW step:
// RAW edges from the writers of its reads, WAW edges from (and then to)
// the writers of its writes.
func (r *Recorder) ForwardNode(label string, reads, writes []*tensor.Dense) {
	nd := r.open(label)
	for _, t := range reads {
		if w, ok := r.valWriter[t]; ok {
			r.dep(nd, w)
		}
	}
	for _, t := range writes {
		if w, ok := r.valWriter[t]; ok {
			r.dep(nd, w)
		}
		r.valWriter[t] = nd.ID
	}
}

// BackwardNode implements autograd.ReplayObserver for a tape node's
// backward closure: it reads v's gradient and the forward values of v and
// its inputs, and accumulates into each needs-grad input's gradient. It is
// opened before the closure runs because custom ops (spops) charge their
// backward kernels inline within it.
func (r *Recorder) BackwardNode(v *autograd.Var) {
	nd := r.open("bwd")
	if w, ok := r.gradWriter[v]; ok {
		r.dep(nd, w)
	}
	if w, ok := r.valWriter[v.Value]; ok {
		r.dep(nd, w)
	}
	for _, in := range v.Inputs() {
		if w, ok := r.valWriter[in.Value]; ok {
			r.dep(nd, w)
		}
		if in.NeedsGrad() {
			if w, ok := r.gradWriter[in]; ok {
				r.dep(nd, w)
			}
			r.gradWriter[in] = nd.ID
		}
	}
}

// HookNode implements autograd.ReplayObserver for a targeted backward hook
// (OnBackwardFor): a node producing target's gradient from v's. Splitting
// these off the backward spine is what lets a Linear layer's dW GEMM
// schedule concurrently with the dX chain below it.
func (r *Recorder) HookNode(v, target *autograd.Var) {
	nd := r.open("hook")
	if w, ok := r.gradWriter[v]; ok {
		r.dep(nd, w)
	}
	if w, ok := r.valWriter[v.Value]; ok {
		r.dep(nd, w)
	}
	for _, in := range v.Inputs() {
		if w, ok := r.valWriter[in.Value]; ok {
			r.dep(nd, w)
		}
	}
	if w, ok := r.gradWriter[target]; ok {
		r.dep(nd, w)
	}
	r.gradWriter[target] = nd.ID
}

// LossNode marks the loss/seed region between forward and backward replay:
// it reads the logits value and produces the logits gradient, joining the
// forward frontier to the backward spine. The loss math itself is host
// work and carries no device charges.
func (r *Recorder) LossNode(logits *autograd.Var) {
	nd := r.open("loss")
	if w, ok := r.valWriter[logits.Value]; ok {
		r.dep(nd, w)
	}
	r.gradWriter[logits] = nd.ID
}

// Nodes returns the recorded DAG (valid until the next Reset).
func (r *Recorder) Nodes() []Node { return r.nodes }

// Makespan returns the completion time of the scheduled step (absolute
// virtual time), valid after Schedule.
func (r *Recorder) Makespan() float64 { return r.makespan }

// Serial reports whether Schedule fell back to the serial compute-stream
// order because list scheduling found no improvement.
func (r *Recorder) Serial() bool { return r.serial }

// GradReadyTime returns the scheduled end of the last node producing v's
// gradient, or def if no node wrote it. The overlap engine derives bucket
// AllReduce gates from this instead of the eager path's replay-time clock
// reads (which are meaningless while charges are being recorded).
func (r *Recorder) GradReadyTime(v *autograd.Var, def float64) float64 {
	if id, ok := r.gradWriter[v]; ok {
		return r.nodes[id-1].End
	}
	return def
}

// Schedule places the recorded nodes onto the two streams by list
// scheduling and returns the makespan. computeFree/copyFree are the
// streams' current clocks. Priority is critical-path length; the highest
// priority ready node goes to whichever stream finishes it earlier (ties
// to compute), which keeps the dependence spine on the compute stream and
// shunts off-spine work (dW GEMMs, sibling branches) to the copy stream
// when it is idle. If the resulting makespan would exceed the plain serial
// order — possible, greedy list scheduling is not optimal — the schedule
// falls back to serial so a scheduled step is never slower than a captured
// one. Deterministic: same DAG and clocks, same schedule, on any worker
// count.
func (r *Recorder) Schedule(computeFree, copyFree float64) float64 {
	n := len(r.nodes)
	if n == 0 {
		r.makespan = computeFree
		return r.makespan
	}
	r.prio = grow(r.prio, n)
	r.est = grow(r.est, n)
	r.rem = growInt(r.rem, n)
	r.order = r.order[:0]
	for len(r.succs) < n {
		r.succs = append(r.succs, nil)
	}
	succs := r.succs[:n]
	for i := range succs {
		succs[i] = succs[i][:0]
	}
	// Critical-path priority: record order is topological (deps point to
	// lower IDs), so one descending sweep finalizes each node's priority
	// before relaxing its deps.
	for i := 0; i < n; i++ {
		r.prio[i] = r.nodes[i].Dur
		r.est[i] = 0
		r.rem[i] = len(r.nodes[i].Deps)
		for _, d := range r.nodes[i].Deps {
			succs[d-1] = append(succs[d-1], i)
		}
	}
	for j := n - 1; j >= 1; j-- {
		pj := r.prio[j]
		for _, dep := range r.nodes[j].Deps {
			d := dep - 1
			if c := r.nodes[d].Dur + pj; c > r.prio[d] {
				r.prio[d] = c
			}
		}
	}
	compute, copyT := computeFree, copyFree
	total := 0.0
	for i := range r.nodes {
		total += r.nodes[i].Dur
	}
	placed := 0
	makespan := computeFree
	for placed < n {
		best := -1
		for i := 0; i < n; i++ {
			if r.rem[i] == 0 && !scheduledMark(&r.nodes[i]) {
				if best == -1 || r.prio[i] > r.prio[best] {
					best = i
				}
			}
		}
		nd := &r.nodes[best]
		s := r.est[best]
		startC := max2(compute, s)
		startK := max2(copyT, s)
		// The root stays on compute (a graph launch is host dispatch on the
		// compute stream); everything else picks the earlier finisher.
		if best == 0 || startC <= startK {
			nd.Copy, nd.Start = false, startC
			compute = startC + nd.Dur
			nd.End = compute
		} else {
			nd.Copy, nd.Start = true, startK
			copyT = startK + nd.Dur
			nd.End = copyT
		}
		if nd.End > makespan {
			makespan = nd.End
		}
		markScheduled(nd)
		r.order = append(r.order, best)
		for _, sj := range succs[best] {
			r.rem[sj]--
			if nd.End > r.est[sj] {
				r.est[sj] = nd.End
			}
		}
		placed++
	}
	serialEnd := computeFree + total
	if makespan > serialEnd {
		// Greedy placement lost to the serial order; redo everything on the
		// compute stream in record order so scheduled <= captured holds.
		r.serial = true
		r.order = r.order[:0]
		t := computeFree
		for i := range r.nodes {
			nd := &r.nodes[i]
			nd.Copy, nd.Start = false, t
			t += nd.Dur
			nd.End = t
			r.order = append(r.order, i)
		}
		makespan = t
	}
	// Restore the IDs the placement loop negated, so the DAG is readable
	// (and reschedulable) without an Apply in between.
	for i := range r.nodes {
		if r.nodes[i].ID < 0 {
			r.nodes[i].ID = -r.nodes[i].ID
		}
	}
	r.makespan = makespan
	return makespan
}

// scheduledMark/markScheduled track placement without an extra slice: an
// unplaced node has Start == End == 0 and rem == 0 is not enough (zero-dur
// nodes at time 0 would alias), so placement is marked by setting ID
// negative for the duration of the placement loop.
func scheduledMark(nd *Node) bool { return nd.ID < 0 }
func markScheduled(nd *Node)      { nd.ID = -nd.ID }

// Apply replays the recorded charges onto dev at their scheduled
// positions: per node, switch to its stream, idle up to its start, and
// apply its charges in record order — so BusySeconds/CommSeconds accrue
// exactly once, at placement. Afterwards the compute stream joins the
// makespan (the step is not done until every node is), annotated trace
// intervals carry the node IDs, and — when tracing — each node's reserved
// span is emitted on the scheduler decision lane.
func (r *Recorder) Apply(dev *sim.Device) {
	prev := dev.CurrentStream()
	for _, i := range r.order {
		nd := &r.nodes[i]
		k := sim.StreamCompute
		if nd.Copy {
			k = sim.StreamCopy
		}
		dev.SetStream(k)
		dev.IdleUntil(nd.Start)
		if dev.Tracing && nd.Dur > 0 {
			lane := "compute"
			if nd.Copy {
				lane = "copy"
			}
			dev.RecordDecision(nd.Start, nd.End, fmt.Sprintf("%s@%s", nd.Label, lane), nd.ID)
		}
		dev.SetSchedNode(nd.ID)
		for _, c := range nd.Charges {
			dev.ApplyCharge(c.Dur, c.Tag, c.Comm)
		}
		dev.SetSchedNode(0)
	}
	dev.SetStream(sim.StreamCompute)
	dev.IdleUntil(r.makespan)
	dev.SetStream(prev)
}

func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
