package sched

import (
	"math/rand"
	"testing"

	"wholegraph/internal/sim"
	"wholegraph/internal/tensor"
)

// randomDAG fills r with a random step: nTensors buffers, nOps forward
// nodes each reading and writing random buffers (RAW/WAW edges emerge from
// the last-writer maps), with random charge durations.
func randomDAG(r *Recorder, rng *rand.Rand, nTensors, nOps int) {
	r.Reset()
	bufs := make([]*tensor.Dense, nTensors)
	for i := range bufs {
		bufs[i] = tensor.New(1, 1)
	}
	r.RecordCharge(1e-6, "launch", false) // root graph-launch cost
	for op := 0; op < nOps; op++ {
		var reads, writes []*tensor.Dense
		for n := rng.Intn(3); len(reads) <= n; {
			reads = append(reads, bufs[rng.Intn(nTensors)])
		}
		writes = append(writes, bufs[rng.Intn(nTensors)])
		r.ForwardNode("op", reads, writes)
		for c := rng.Intn(3); len(r.nodes[r.cur-1].Charges) <= c; {
			r.RecordCharge(rng.Float64()*1e-4, "k", false)
		}
	}
}

// TestScheduleNoTimeTravel is the property test over random DAGs: no node
// starts before any of its dependencies end or before its stream's initial
// clock, nodes on the same lane never overlap, the makespan covers every
// node and never exceeds the serial order, and scheduling is deterministic.
func TestScheduleNoTimeTravel(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r := NewRecorder()
		randomDAG(r, rng, 2+rng.Intn(6), 1+rng.Intn(40))
		computeFree := rng.Float64() * 1e-3
		copyFree := rng.Float64() * 1e-3
		var total float64
		for _, nd := range r.Nodes() {
			total += nd.Dur
		}
		makespan := r.Schedule(computeFree, copyFree)

		nodes := r.Nodes()
		for i := range nodes {
			nd := &nodes[i]
			free := computeFree
			if nd.Copy {
				free = copyFree
			}
			if nd.Start < free-1e-18 {
				t.Fatalf("seed %d: node %d starts %.18g before its stream's clock %.18g", seed, nd.ID, nd.Start, free)
			}
			for _, dep := range nd.Deps {
				if nd.Start < nodes[dep-1].End-1e-18 {
					t.Fatalf("seed %d: node %d starts %.18g before dep %d ends %.18g",
						seed, nd.ID, nd.Start, dep, nodes[dep-1].End)
				}
			}
			if nd.End > makespan+1e-18 {
				t.Fatalf("seed %d: node %d ends %.18g past makespan %.18g", seed, nd.ID, nd.End, makespan)
			}
		}
		// Per-lane intervals must not overlap.
		for _, lane := range []bool{false, true} {
			var spans [][2]float64
			for i := range nodes {
				if nodes[i].Copy == lane && nodes[i].Dur > 0 {
					spans = append(spans, [2]float64{nodes[i].Start, nodes[i].End})
				}
			}
			for a := range spans {
				for b := a + 1; b < len(spans); b++ {
					lo, hi := spans[a], spans[b]
					if lo[0] > hi[0] {
						lo, hi = hi, lo
					}
					if hi[0] < lo[1]-1e-18 {
						t.Fatalf("seed %d: lane copy=%v overlap: [%g,%g) vs [%g,%g)", seed, lane, lo[0], lo[1], hi[0], hi[1])
					}
				}
			}
		}
		if serialEnd := computeFree + total; makespan > serialEnd+1e-18 {
			t.Fatalf("seed %d: makespan %.18g exceeds serial bound %.18g", seed, makespan, serialEnd)
		}

		// Determinism: the same recorder state re-scheduled from the same
		// clocks reproduces every placement.
		starts := make([]float64, len(nodes))
		copies := make([]bool, len(nodes))
		for i := range nodes {
			starts[i], copies[i] = nodes[i].Start, nodes[i].Copy
		}
		r.Schedule(computeFree, copyFree)
		for i := range nodes {
			if nodes[i].Start != starts[i] || nodes[i].Copy != copies[i] {
				t.Fatalf("seed %d: reschedule moved node %d", seed, nodes[i].ID)
			}
		}
	}
}

// TestScheduleSplitsIndependentWork: two independent heavy ops behind a
// shared producer should land on different streams, beating the serial
// order; the dependent chain must still serialize.
func TestScheduleSplitsIndependentWork(t *testing.T) {
	r := NewRecorder()
	r.Reset()
	a, b, c := tensor.New(1, 1), tensor.New(1, 1), tensor.New(1, 1)
	r.ForwardNode("produce", nil, []*tensor.Dense{a})
	r.RecordCharge(1e-4, "k", false)
	r.ForwardNode("left", []*tensor.Dense{a}, []*tensor.Dense{b})
	r.RecordCharge(5e-4, "k", false)
	r.ForwardNode("right", []*tensor.Dense{a}, []*tensor.Dense{c})
	r.RecordCharge(5e-4, "k", false)
	makespan := r.Schedule(0, 0)
	if want := 1e-4 + 5e-4; makespan > want+1e-12 {
		t.Errorf("independent branches did not overlap: makespan %g, want ~%g", makespan, want)
	}
	if r.Serial() {
		t.Error("scheduler fell back to serial on an overlappable DAG")
	}
	nodes := r.Nodes()
	if nodes[2].Copy == nodes[3].Copy {
		t.Errorf("left and right branches share a stream (copy=%v)", nodes[2].Copy)
	}
}

// TestApplyAdvancesDeviceToMakespan: applying a schedule replays the
// charges onto the device and joins the compute stream with the makespan.
func TestApplyAdvancesDeviceToMakespan(t *testing.T) {
	m := sim.NewMachine(sim.DGXA100(1))
	dev := m.Devs[0]
	r := NewRecorder()
	r.Reset()
	a, b, c := tensor.New(1, 1), tensor.New(1, 1), tensor.New(1, 1)
	r.ForwardNode("produce", nil, []*tensor.Dense{a})
	r.RecordCharge(1e-4, "k", false)
	r.ForwardNode("left", []*tensor.Dense{a}, []*tensor.Dense{b})
	r.RecordCharge(5e-4, "k", false)
	r.ForwardNode("right", []*tensor.Dense{a}, []*tensor.Dense{c})
	r.RecordCharge(5e-4, "k", false)
	busy0 := dev.Stats.BusySeconds + dev.Stats.CopyBusySeconds
	makespan := r.Schedule(dev.StreamNow(sim.StreamCompute), dev.StreamNow(sim.StreamCopy))
	r.Apply(dev)
	if got := dev.StreamNow(sim.StreamCompute); got != makespan {
		t.Errorf("compute stream at %g after Apply, want makespan %g", got, makespan)
	}
	if dev.StreamNow(sim.StreamCopy) > makespan {
		t.Errorf("copy stream ran past the makespan")
	}
	if gained := dev.Stats.BusySeconds + dev.Stats.CopyBusySeconds - busy0; gained < 11e-4-1e-12 {
		t.Errorf("busy seconds gained %g, want the full 1.1ms of charges", gained)
	}
}

// TestBucketOrder: readiness order with ties broken by index.
func TestBucketOrder(t *testing.T) {
	order := BucketOrder([]float64{3, 1, 2, 1}, nil)
	want := []int{1, 3, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	if len(BucketOrder(nil, order)) != 0 {
		t.Error("empty readiness produced a non-empty order")
	}
}

// TestGateStarts: real workers gate at their own readiness, mirrors at the
// fleet max.
func TestGateStarts(t *testing.T) {
	devWorker := []int{0, -1, 1, -1}
	readyAt := [][]float64{{5, 7}, {6, 8}}
	startAt := make([]float64, 4)
	GateStarts(devWorker, readyAt, 1, 9, startAt)
	want := []float64{7, 9, 8, 9}
	for i := range want {
		if startAt[i] != want[i] {
			t.Fatalf("startAt %v, want %v", startAt, want)
		}
	}
}

// TestPipelinePlan: the per-iteration action sequence primes only on the
// first iteration, always collects before re-arming, page-prefetches two
// batches ahead only when enabled and in range, and computes last.
func TestPipelinePlan(t *testing.T) {
	check := func(got []PlanStep, want ...PlanStep) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("plan %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("plan %v, want %v", got, want)
			}
		}
	}
	check(PipelinePlan(nil, 0, 4, false),
		PlanStep{OpPrime, 0}, PlanStep{OpCollect, 0}, PlanStep{OpPrefetch, 1}, PlanStep{OpCompute, 0})
	check(PipelinePlan(nil, 1, 4, false),
		PlanStep{OpCollect, 1}, PlanStep{OpPrefetch, 2}, PlanStep{OpCompute, 1})
	check(PipelinePlan(nil, 3, 4, false),
		PlanStep{OpCollect, 3}, PlanStep{OpCompute, 3})
	check(PipelinePlan(nil, 1, 8, true),
		PlanStep{OpCollect, 1}, PlanStep{OpPrefetch, 2}, PlanStep{OpPrefetchPages, 3}, PlanStep{OpCompute, 1})
	check(PipelinePlan(nil, 6, 8, true),
		PlanStep{OpCollect, 6}, PlanStep{OpPrefetch, 7}, PlanStep{OpCompute, 6})
	// Scratch reuse: a big plan's backing array serves a smaller one.
	scratch := PipelinePlan(nil, 0, 8, true)
	reused := PipelinePlan(scratch, 5, 8, false)
	if &scratch[0] != &reused[0] {
		t.Error("plan scratch was not reused")
	}
}
