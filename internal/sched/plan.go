package sched

// Issue-ordering decisions the trainer delegates to the scheduler: the
// order and per-device gates of gradient-bucket AllReduces, and the action
// sequence of one pipelined epoch-loop iteration. Pure functions of their
// inputs, deterministic, allocation-free on reuse.

// BucketOrder fills order with all bucket indices sorted by fleet-wide
// readiness (ties by index) — the order DDP's reducer flushes buckets.
// maxReady[b] is bucket b's readiness across workers; order's backing
// array is reused when large enough.
func BucketOrder(maxReady []float64, order []int) []int {
	order = order[:0]
	for b := range maxReady {
		order = append(order, b)
	}
	// Insertion sort: bucket counts are small and this stays allocation-free.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && maxReady[order[j]] < maxReady[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// GateStarts fills startAt (one entry per device) with the earliest time
// each device may join bucket b's AllReduce: real workers at their own
// backward readiness, mirror devices at the busiest worker's (matching how
// their compute is mirrored). devWorker maps device index to real-worker
// index, -1 for mirrors; readyAt is indexed [worker][bucket].
func GateStarts(devWorker []int, readyAt [][]float64, b int, maxReady float64, startAt []float64) {
	for i, w := range devWorker {
		if w >= 0 {
			startAt[i] = readyAt[w][b]
		} else {
			startAt[i] = maxReady
		}
	}
}

// Op is one kind of pipelined-loop action.
type Op int

const (
	// OpPrime issues the very first Prefetch of the epoch (iteration 0).
	OpPrime Op = iota
	// OpCollect joins the in-flight Prefetch of this iteration's batch.
	OpCollect
	// OpPrefetch issues the copy-stream build of the next batch.
	OpPrefetch
	// OpPrefetchPages fault-prefetches out-of-core pages for the batch one
	// past the in-flight one (its full build already faults its own pages).
	OpPrefetchPages
	// OpCompute runs the training step on the collected batch.
	OpCompute
)

// PlanStep is one action of a worker's per-iteration plan: perform Op on
// batch index Batch (callers wrap Batch modulo their ring size).
type PlanStep struct {
	Op    Op
	Batch int
}

// PipelinePlan returns the issue order for iteration it of measured
// iterations: prime the ring on the first iteration, collect the batch in
// flight, immediately re-arm the ring with the next batch so its build
// overlaps this step's compute, optionally page-prefetch one batch further
// ahead (pagePrefetch — Options.PrefetchPages under Options.Pipeline), and
// only then compute. dst's backing array is reused when large enough.
func PipelinePlan(dst []PlanStep, it, measured int, pagePrefetch bool) []PlanStep {
	dst = dst[:0]
	if it == 0 {
		dst = append(dst, PlanStep{Op: OpPrime, Batch: 0})
	}
	dst = append(dst, PlanStep{Op: OpCollect, Batch: it})
	if next := it + 1; next < measured {
		dst = append(dst, PlanStep{Op: OpPrefetch, Batch: next})
	}
	if ahead := it + 2; pagePrefetch && ahead < measured {
		dst = append(dst, PlanStep{Op: OpPrefetchPages, Batch: ahead})
	}
	dst = append(dst, PlanStep{Op: OpCompute, Batch: it})
	return dst
}
