package blockcache

import "testing"

// TestAdmissionHotSetSurvivesScan is the property TinyLFU admission
// exists for: a hot working set that fits the budget must survive a long
// one-touch cold scan. Under plain LRU the same scan flushes it.
func TestAdmissionHotSetSurvivesScan(t *testing.T) {
	const (
		hotPages = 8
		scanLen  = 400
	)
	run := func(p Policy) (survived int, st CacheStats) {
		c := NewBlockCacheWithPolicy(hotPages*108, p)
		// Establish the hot set with repeated touches.
		for round := 0; round < 20; round++ {
			for id := int32(0); id < hotPages; id++ {
				if c.Get(id) == nil {
					c.Put(id, testPage(100))
				}
			}
		}
		// One-touch cold scan over pages the workload never revisits.
		for i := 0; i < scanLen; i++ {
			id := int32(1000 + i)
			if c.Get(id) == nil {
				c.Put(id, testPage(100))
			}
		}
		for id := int32(0); id < hotPages; id++ {
			if c.Contains(id) {
				survived++
			}
		}
		return survived, c.Stats()
	}

	gotAdmit, stAdmit := run(PolicyAdmit)
	if gotAdmit != hotPages {
		t.Errorf("PolicyAdmit: %d/%d hot pages survived the cold scan", gotAdmit, hotPages)
	}
	if stAdmit.AdmissionRejects == 0 {
		t.Error("PolicyAdmit: cold scan recorded no admission rejects")
	}
	gotLRU, stLRU := run(PolicyLRU)
	if gotLRU != 0 {
		t.Errorf("PolicyLRU: %d hot pages survived a scan longer than the budget", gotLRU)
	}
	if stLRU.AdmissionRejects != 0 {
		t.Errorf("PolicyLRU: admission rejects %d != 0", stLRU.AdmissionRejects)
	}
}

// TestAdmissionColdPageEventuallyAdmitted: a page that keeps being
// demanded builds sketch frequency and is eventually admitted past an
// equally-warm victim — admission must not permanently starve new pages.
func TestAdmissionColdPageEventuallyAdmitted(t *testing.T) {
	c := NewBlockCacheWithPolicy(2*108, PolicyAdmit)
	for round := 0; round < 4; round++ {
		for id := int32(0); id < 2; id++ {
			if c.Get(id) == nil {
				c.Put(id, testPage(100))
			}
		}
	}
	admitted := false
	for i := 0; i < 10 && !admitted; i++ {
		if c.Get(99) == nil {
			admitted = c.Put(99, testPage(100))
		} else {
			admitted = true
		}
	}
	if !admitted {
		t.Error("repeatedly-demanded page never admitted")
	}
}

// TestAdmissionDeterministic: the sketch and cache are pure functions of
// the op sequence — two caches fed the same accesses agree on counters
// and on the resident set.
func TestAdmissionDeterministic(t *testing.T) {
	mk := func() *BlockCache { return NewBlockCacheWithPolicy(16*108, PolicyAdmit) }
	a, b := mk(), mk()
	x := uint64(12345)
	for i := 0; i < 5000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		id := int32(x % 64)
		for _, c := range []*BlockCache{a, b} {
			if c.Get(id) == nil {
				c.Put(id, testPage(100))
			}
		}
	}
	sa, sb := a.Stats(), b.Stats()
	if sa != sb {
		t.Errorf("diverged: %+v vs %+v", sa, sb)
	}
	for id := int32(0); id < 64; id++ {
		if a.Contains(id) != b.Contains(id) {
			t.Errorf("resident sets diverge at page %d", id)
		}
	}
}

// TestPrefetchHitCounting: a prefetched page counts one PrefetchHit on
// its first demand Get only; Contains never counts anything.
func TestPrefetchHitCounting(t *testing.T) {
	c := NewBlockCache(1000)
	if !c.PutPrefetched(5, testPage(100)) {
		t.Fatal("prefetched page not admitted")
	}
	if c.Contains(5) != true {
		t.Fatal("prefetched page not resident")
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 || st.PrefetchHits != 0 {
		t.Fatalf("Contains touched counters: %+v", st)
	}
	if c.Get(5) == nil {
		t.Fatal("prefetched page missing on demand")
	}
	c.Get(5)
	st := c.Stats()
	if st.PrefetchHits != 1 {
		t.Errorf("prefetch hits %d != 1", st.PrefetchHits)
	}
	if st.Hits != 2 {
		t.Errorf("hits %d != 2", st.Hits)
	}
}
