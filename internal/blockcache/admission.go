package blockcache

// freqSketch is a small count-min sketch with periodic aging, the
// frequency estimator behind PolicyAdmit (the TinyLFU construction:
// 4 hash rows of 4-bit-saturating counters, halved every sampleSize
// recordings so estimates track *recent* popularity rather than all of
// history). It is owned by a BlockCache and guarded by the cache mutex.
type freqSketch struct {
	rows    [sketchRows][]uint8
	mask    uint32
	adds    int
	samples int
}

const (
	sketchRows  = 4
	sketchWidth = 1 << 13 // counters per row; 32 KiB total
	sketchMax   = 15      // 4-bit saturation, so halving always loses mass
)

// Per-row multiplicative hash constants (odd, high-entropy).
var sketchSeeds = [sketchRows]uint32{0x9e3779b1, 0x85ebca77, 0xc2b2ae3d, 0x27d4eb2f}

func newFreqSketch() *freqSketch {
	s := &freqSketch{mask: sketchWidth - 1, samples: sketchWidth * 8}
	for i := range s.rows {
		s.rows[i] = make([]uint8, sketchWidth)
	}
	return s
}

func (s *freqSketch) slot(row int, id int32) uint32 {
	h := (uint32(id) + 1) * sketchSeeds[row]
	h ^= h >> 15
	h *= 0x2c1b3c6d
	h ^= h >> 12
	return h & s.mask
}

// record notes one access to page id.
func (s *freqSketch) record(id int32) {
	for i := 0; i < sketchRows; i++ {
		j := s.slot(i, id)
		if s.rows[i][j] < sketchMax {
			s.rows[i][j]++
		}
	}
	s.adds++
	if s.adds >= s.samples {
		s.age()
	}
}

// estimate returns the (conservative, min-over-rows) access frequency of
// page id within the current aging window.
func (s *freqSketch) estimate(id int32) uint32 {
	min := uint32(sketchMax + 1)
	for i := 0; i < sketchRows; i++ {
		if v := uint32(s.rows[i][s.slot(i, id)]); v < min {
			min = v
		}
	}
	return min
}

// age halves every counter, decaying stale popularity.
func (s *freqSketch) age() {
	for i := range s.rows {
		row := s.rows[i]
		for j := range row {
			row[j] >>= 1
		}
	}
	s.adds = 0
}
