package blockcache

import (
	"sync"
	"testing"
)

// testBlock mirrors the stores' pages: payload bytes plus 8 of metadata.
type testBlock struct{ payload int64 }

func (b testBlock) CacheBytes() int64 { return b.payload + 8 }

func testPage(bytes int) Block { return testBlock{int64(bytes)} }

func TestBlockCacheLRU(t *testing.T) {
	// Each page costs 100 data bytes + 8 metadata; capacity fits 3.
	c := NewBlockCache(330)
	for id := int32(0); id < 3; id++ {
		if c.Get(id) != nil {
			t.Fatalf("page %d resident before put", id)
		}
		c.Put(id, testPage(100))
	}
	st := c.Stats()
	if st.ResidentPages != 3 || st.Misses != 3 || st.Hits != 0 || st.Evictions != 0 {
		t.Fatalf("after fill: %+v", st)
	}
	// Touch 0 so 1 becomes LRU; inserting 3 must evict 1.
	if c.Get(0) == nil {
		t.Fatal("page 0 missing")
	}
	c.Put(3, testPage(100))
	if c.Get(1) != nil {
		t.Error("LRU page 1 not evicted")
	}
	for _, id := range []int32{0, 2, 3} {
		if c.Get(id) == nil {
			t.Errorf("page %d evicted unexpectedly", id)
		}
	}
	st = c.Stats()
	if st.Evictions != 1 || st.ResidentPages != 3 {
		t.Errorf("after eviction: %+v", st)
	}
	if st.ResidentBytes != 3*108 {
		t.Errorf("resident bytes %d != %d", st.ResidentBytes, 3*108)
	}
}

// TestBlockCacheOversizedPage: a single page above the budget is admitted
// (gathers must proceed) and evicts everything else.
func TestBlockCacheOversizedPage(t *testing.T) {
	c := NewBlockCache(200)
	c.Put(0, testPage(100))
	c.Put(1, testPage(500))
	if c.Get(1) == nil {
		t.Error("oversized page not admitted")
	}
	if c.Get(0) != nil {
		t.Error("page 0 survived an over-budget insert")
	}
}

// TestBlockCacheDoublePut: a racing second put of the same page keeps the
// resident copy and does not double-count bytes.
func TestBlockCacheDoublePut(t *testing.T) {
	c := NewBlockCache(1000)
	c.Put(7, testPage(100))
	c.Put(7, testPage(100))
	st := c.Stats()
	if st.ResidentPages != 1 || st.ResidentBytes != 108 {
		t.Errorf("double put: %+v", st)
	}
}

// TestBlockCacheConcurrent hammers one cache from many goroutines; run
// under -race (scripts/check.sh) this is the regression test for the
// cache's locking. Invariants checked after the join: counters add up and
// the resident set respects the budget.
func TestBlockCacheConcurrent(t *testing.T) {
	const (
		workers = 8
		ops     = 2000
		pages   = 64
	)
	c := NewBlockCache(20 * 108) // ~20 resident of 64 hot pages
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			x := uint64(seed)*2654435761 + 1
			for i := 0; i < ops; i++ {
				x = x*6364136223846793005 + 1442695040888963407
				id := int32(x % pages)
				if c.Get(id) == nil {
					c.Put(id, testPage(100))
				}
			}
		}(int64(w))
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != workers*ops {
		t.Errorf("lookups %d != %d", st.Hits+st.Misses, workers*ops)
	}
	if st.ResidentBytes > 20*108 {
		t.Errorf("resident %d over budget", st.ResidentBytes)
	}
	if st.ResidentPages == 0 {
		t.Error("cache empty after hammer")
	}
}
