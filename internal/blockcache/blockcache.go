// Package blockcache is the byte-budgeted per-device page cache shared
// by the out-of-core stores: internal/featstore (encoded feature pages)
// and internal/topostore (decoded CSR column ranges). It provides plain
// LRU replacement plus an opt-in TinyLFU-style frequency-sketch
// admission policy, and per-cache hit/miss/eviction/prefetch/admission
// counters.
package blockcache

import (
	"fmt"
	"sync"
)

// Block is a cacheable page payload. CacheBytes is the resident
// footprint charged against the cache budget.
type Block interface {
	CacheBytes() int64
}

// Policy selects the BlockCache replacement/admission policy.
type Policy uint8

// The supported cache policies.
const (
	// PolicyLRU is plain least-recently-used eviction: every faulted page
	// is admitted and the coldest resident page is evicted under pressure.
	PolicyLRU Policy = iota
	// PolicyAdmit adds a TinyLFU-style frequency-sketch admission test on
	// top of LRU: under eviction pressure a candidate page is admitted
	// only if its estimated access frequency exceeds the eviction
	// victim's, so one cold scan cannot flush the hot set. Rejected pages
	// are still served to the requesting gather (the transient copy is
	// used once and dropped), so results never depend on the policy.
	PolicyAdmit
)

// String names the policy as the CLI flags spell it.
func (p Policy) String() string {
	switch p {
	case PolicyLRU:
		return "lru"
	case PolicyAdmit:
		return "admit"
	}
	return fmt.Sprintf("Policy(%d)", uint8(p))
}

// ParsePolicy resolves a CLI spelling of a cache policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "lru":
		return PolicyLRU, nil
	case "admit", "tinylfu":
		return PolicyAdmit, nil
	}
	return PolicyLRU, fmt.Errorf("blockcache: unknown cache policy %q (want lru or admit)", s)
}

// BlockCache is a byte-budgeted page cache, one per attached device (it
// models that GPU's HBM page pool). Replacement is LRU; PolicyAdmit fronts
// insertion with a frequency-sketch admission test. It is mutex-guarded:
// the store itself is shared read-only across workers, but each device's
// cache mutates on every gather, and sim.RunParallel drives devices from
// separate goroutines.
type BlockCache struct {
	mu       sync.Mutex
	capacity int64
	bytes    int64
	policy   Policy
	sketch   *freqSketch
	entries  map[int32]*blockEntry
	// Doubly-linked LRU list threaded through the entries; head is the
	// most recently used, tail the eviction candidate.
	head, tail *blockEntry

	hits, misses, evictions        int64
	prefetchHits, admissionRejects int64
}

type blockEntry struct {
	id int32
	b  Block
	// prefetched marks an entry inserted ahead of demand; the first
	// demand Get that lands on it counts as a prefetch hit.
	prefetched bool
	prev, next *blockEntry
}

// NewBlockCache creates an LRU cache bounded to capacityBytes of page
// payload (plus fixed per-page metadata). A single page larger than the
// budget is still admitted — gathers must be able to proceed — so the
// effective floor is one page.
func NewBlockCache(capacityBytes int64) *BlockCache {
	return NewBlockCacheWithPolicy(capacityBytes, PolicyLRU)
}

// NewBlockCacheWithPolicy is NewBlockCache with an explicit policy.
func NewBlockCacheWithPolicy(capacityBytes int64, p Policy) *BlockCache {
	c := &BlockCache{capacity: capacityBytes, policy: p, entries: make(map[int32]*blockEntry)}
	if p == PolicyAdmit {
		c.sketch = newFreqSketch()
	}
	return c
}

// Policy returns the cache's replacement/admission policy.
func (c *BlockCache) Policy() Policy { return c.policy }

// Get returns the cached block and promotes it to most-recently-used, or
// nil on a miss. Hit/miss counters track demand lookups; with PolicyAdmit
// every lookup also feeds the frequency sketch, so repeatedly-missed pages
// build up the estimate that eventually admits them.
func (c *BlockCache) Get(id int32) Block {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sketch != nil {
		c.sketch.record(id)
	}
	e, ok := c.entries[id]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	if e.prefetched {
		c.prefetchHits++
		e.prefetched = false
	}
	c.unlink(e)
	c.pushFront(e)
	return e.b
}

// Contains reports residency without touching any counter, promotion or
// sketch state — the prefetcher's probe.
func (c *BlockCache) Contains(id int32) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[id]
	return ok
}

// Put inserts a freshly faulted-in block as most-recently-used and evicts
// from the LRU tail until the budget holds (never evicting the new block
// itself). Under PolicyAdmit an insert that would evict is first tested
// against the frequency sketch: if the eviction victim is estimated
// hotter than the candidate, the candidate is rejected (returns false)
// and the resident set is untouched. Callers keep using their transient
// copy of a rejected block, so rejection changes cache contents only.
func (c *BlockCache) Put(id int32, b Block) bool {
	return c.insert(id, b, false)
}

// PutPrefetched is Put for pages faulted ahead of demand: the entry is
// marked so the first demand Get on it counts as a prefetch hit.
func (c *BlockCache) PutPrefetched(id int32, b Block) bool {
	return c.insert(id, b, true)
}

func (c *BlockCache) insert(id int32, b Block, prefetched bool) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[id]; ok {
		// Another worker faulted the page in between our Get and Put;
		// keep the resident copy (identical bytes — page production is
		// deterministic) and just promote it.
		c.unlink(e)
		c.pushFront(e)
		return true
	}
	if c.sketch != nil && c.tail != nil && c.bytes+b.CacheBytes() > c.capacity {
		// Admission test under eviction pressure: the candidate must beat
		// the victim it would displace.
		if c.sketch.estimate(c.tail.id) > c.sketch.estimate(id) {
			c.admissionRejects++
			return false
		}
	}
	e := &blockEntry{id: id, b: b, prefetched: prefetched}
	c.entries[id] = e
	c.pushFront(e)
	c.bytes += b.CacheBytes()
	for c.bytes > c.capacity && c.tail != nil && c.tail != e {
		victim := c.tail
		c.unlink(victim)
		delete(c.entries, victim.id)
		c.bytes -= victim.b.CacheBytes()
		c.evictions++
	}
	return true
}

func (c *BlockCache) pushFront(e *blockEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *BlockCache) unlink(e *blockEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// CacheStats is a point-in-time snapshot of one BlockCache.
type CacheStats struct {
	Hits, Misses, Evictions int64
	// PrefetchHits counts demand lookups served by a page that a prefetch
	// faulted in ahead of time (each prefetched page counts at most once).
	PrefetchHits int64
	// AdmissionRejects counts candidate pages the PolicyAdmit sketch kept
	// out of the resident set. Always zero under PolicyLRU.
	AdmissionRejects int64
	ResidentBytes    int64
	ResidentPages    int
	CapacityBytes    int64
}

// Stats snapshots the cache counters.
func (c *BlockCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		PrefetchHits: c.prefetchHits, AdmissionRejects: c.admissionRejects,
		ResidentBytes: c.bytes, ResidentPages: len(c.entries),
		CapacityBytes: c.capacity,
	}
}
