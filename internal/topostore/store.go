// Package topostore is the out-of-core topology analogue of
// internal/featstore: the CSR column array (destination GlobalIDs,
// sharded by source rank and concatenated into one global edge index
// space) is served from fixed-edge-range pages produced on demand by a
// fill function, behind the same per-device byte-budgeted BlockCaches.
// A page miss pays the Unified-Memory fault dance on the device's copy
// stream; a hit reads local HBM. Sampling reads neighbors through an
// Access, which batches one fault dance per sampling kernel and joins
// any in-flight prefetch transfers, so paged sampling is bit-identical
// to the in-memory CSR — only virtual time and hit rates change.
package topostore

import (
	"fmt"
	"sync"

	"wholegraph/internal/blockcache"
	"wholegraph/internal/sim"
)

// Fill writes the column values (destination GlobalIDs as uint64) for
// global edge indices [e0, e1) into dst. Implementations must be
// deterministic and safe for concurrent calls with distinct dst buffers
// (graph.PartitionPaged provides one backed by a graph.TopoSource).
type Fill func(e0, e1 int64, dst []uint64)

// Options configures a Store.
type Options struct {
	// PageEdges is the number of column entries per page (default 4096,
	// 32 KiB of payload). The last page may be partial.
	PageEdges int
	// CacheBytes is each attached device's BlockCache budget in bytes of
	// decoded column payload (default 256 MiB).
	CacheBytes int64
	// Policy selects the BlockCache replacement/admission policy
	// (default blockcache.PolicyLRU). Residency-only: decoded neighbors
	// are identical under either policy.
	Policy blockcache.Policy
}

func (o Options) normalize() Options {
	if o.PageEdges <= 0 {
		o.PageEdges = 4096
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = 256 << 20
	}
	return o
}

// colPage is one resident column range.
type colPage struct {
	col []uint64
	// ready is the copy-stream event after which the page is resident
	// (zero for demand faults, which wait inline; set by PrefetchPages).
	ready sim.Event
}

// CacheBytes implements blockcache.Block.
func (p *colPage) CacheBytes() int64 { return int64(len(p.col))*8 + 16 }

// Store is the paged column table. Immutable after construction; all
// mutable state lives in the per-device caches.
type Store struct {
	fill     Fill
	opts     Options
	numEdges int64
	nPages   int32

	// caches holds one entry per attached device; extended only by
	// Attach, before training starts.
	caches []*devCache

	// hostPg memoizes the last page decoded by ReadEdge (the uncharged
	// host-side path used by tests and host-side neighbor walks).
	hostMu sync.Mutex
	hostID int32
	hostPg *colPage
}

// devCache is one device's view of the store: its BlockCache plus the
// Access scratch. Like featstore's devCache, the scratch is unlocked —
// each device is driven by exactly one goroutine at a time — while the
// BlockCache keeps its own mutex.
type devCache struct {
	dev *sim.Device
	bc  *blockcache.BlockCache
	acc Access
}

// New builds a store over numEdges column entries served by fill.
func New(numEdges int64, fill Fill, opts Options) (*Store, error) {
	opts = opts.normalize()
	if numEdges < 0 {
		return nil, fmt.Errorf("topostore: negative edge count %d", numEdges)
	}
	if fill == nil {
		return nil, fmt.Errorf("topostore: nil fill function")
	}
	s := &Store{
		fill: fill, opts: opts, numEdges: numEdges,
		nPages: int32((numEdges + int64(opts.PageEdges) - 1) / int64(opts.PageEdges)),
		hostID: -1,
	}
	return s, nil
}

// Attach gives each device its own BlockCache. Call once per device
// before the first access.
func (s *Store) Attach(devs ...*sim.Device) {
	for _, d := range devs {
		dc := &devCache{
			dev: d,
			bc:  blockcache.NewBlockCacheWithPolicy(s.opts.CacheBytes, s.opts.Policy),
		}
		dc.acc = Access{s: s, dc: dc, pages: make(map[int32]*colPage)}
		s.caches = append(s.caches, dc)
	}
}

// NumEdges returns the stored column entry count.
func (s *Store) NumEdges() int64 { return s.numEdges }

// NumPages returns the page count (last page possibly partial).
func (s *Store) NumPages() int { return int(s.nPages) }

// PageEdges returns the edges-per-page setting.
func (s *Store) PageEdges() int { return s.opts.PageEdges }

// TopoBytes returns the virtual column footprint — what a materialized
// wholemem Col array would occupy, and the UM working set the
// fault-latency model sees.
func (s *Store) TopoBytes() int64 { return s.numEdges * 8 }

// CacheBudgetBytes returns the per-device BlockCache capacity.
func (s *Store) CacheBudgetBytes() int64 { return s.opts.CacheBytes }

// PageOf returns the page holding global edge index e.
func (s *Store) PageOf(e int64) int32 { return int32(e / int64(s.opts.PageEdges)) }

func (s *Store) cacheFor(dev *sim.Device) *devCache {
	for _, dc := range s.caches {
		if dc.dev == dev {
			return dc
		}
	}
	panic(fmt.Sprintf("topostore: device %d not attached", dev.ID))
}

// pageSpan returns page id's edge range [lo, hi).
func (s *Store) pageSpan(id int32) (lo, hi int64) {
	lo = int64(id) * int64(s.opts.PageEdges)
	hi = lo + int64(s.opts.PageEdges)
	if hi > s.numEdges {
		hi = s.numEdges
	}
	return
}

// fillPage produces page id. Deterministic in (fill, id): an evicted page
// refills to identical values, so decoded neighbors never depend on cache
// history.
func (s *Store) fillPage(id int32) *colPage {
	lo, hi := s.pageSpan(id)
	pg := &colPage{col: make([]uint64, hi-lo)}
	s.fill(lo, hi, pg.col)
	return pg
}

// Begin starts a page-aware access batch on dev: At decodes single
// column entries, tracking which pages were touched and which missed;
// Flush charges one copy-stream fault dance for all misses, joins any
// in-flight prefetch transfers, and resets the batch. One Access per
// device — Begin while a batch is open resets it.
func (s *Store) Begin(dev *sim.Device) *Access {
	acc := &s.cacheFor(dev).acc
	acc.reset()
	return acc
}

// Access is an open access batch; see Store.Begin.
type Access struct {
	s         *Store
	dc        *devCache
	pages     map[int32]*colPage
	fresh     []*colPage
	missBytes int64
	inflight  sim.Event
}

func (a *Access) reset() {
	clear(a.pages)
	a.fresh = a.fresh[:0]
	a.missBytes = 0
	a.inflight = sim.Event{}
}

// At returns the column value at global edge index e, faulting the
// holding page host-side if missing (the virtual-time charge is deferred
// to Flush). The value is identical whether the page was resident,
// missing, or admission-rejected.
func (a *Access) At(e int64) uint64 {
	s := a.s
	if e < 0 || e >= s.numEdges {
		panic(fmt.Sprintf("topostore: edge %d outside [0,%d)", e, s.numEdges))
	}
	id := s.PageOf(e)
	pg, ok := a.pages[id]
	if !ok {
		pg, _ = a.dc.bc.Get(id).(*colPage)
		if pg == nil {
			pg = s.fillPage(id)
			// A rejected insert (PolicyAdmit) still serves this batch via
			// a.pages; only residency for future batches changes.
			a.dc.bc.Put(id, pg)
			a.fresh = append(a.fresh, pg)
			a.missBytes += pg.CacheBytes()
		} else if pg.ready.T > a.inflight.T {
			a.inflight = pg.ready
		}
		a.pages[id] = pg
	}
	lo := int64(id) * int64(s.opts.PageEdges)
	return pg.col[e-lo]
}

// Flush charges the batch's page faults — one copy-stream UM fault dance
// covering every page missed since Begin/the last Flush — and makes the
// current stream wait for the migration plus any in-flight prefetched
// page the batch touched. Call before the kernel that consumes the
// decoded values. Returns the number of pages faulted.
func (a *Access) Flush(tag string) int {
	dev := a.dc.dev
	faulted := len(a.fresh)
	if faulted > 0 {
		issue := dev.RecordEvent()
		prev := dev.SetStream(sim.StreamCopy)
		dev.WaitEvent(issue, "topostore.issue")
		ws := float64(a.s.TopoBytes()) / 1e9
		dev.IdleFor(float64(faulted)*dev.UMAccessLatency(ws), "topostore.fault")
		dev.Kernel(sim.KernelCost{UMBytes: float64(a.missBytes), Tag: "topostore.pagein"})
		ready := dev.RecordEvent()
		dev.SetStream(prev)
		for _, pg := range a.fresh {
			pg.ready = ready
		}
		dev.WaitEvent(ready, "topostore.ready")
	}
	dev.WaitEvent(a.inflight, "topostore.prefetch.join")
	a.reset()
	return faulted
}

// PrefetchPages faults pages ids into dev's BlockCache ahead of demand.
// Issued on the copy stream with nothing waiting on it: pages carry the
// transfer's ready event and the first access batch to touch one joins
// it (free if the transfer already finished — the overlap win). Already
// resident pages are skipped without touching the demand counters; under
// PolicyAdmit the sketch can reject a speculative page outright, in
// which case no fault is charged. Returns the pages actually faulted.
func (s *Store) PrefetchPages(dev *sim.Device, ids []int32) int {
	dc := s.cacheFor(dev)
	var fresh []*colPage
	var missBytes int64
	for _, id := range ids {
		if id < 0 || id >= s.nPages || dc.bc.Contains(id) {
			continue
		}
		pg := s.fillPage(id)
		if !dc.bc.PutPrefetched(id, pg) {
			continue
		}
		fresh = append(fresh, pg)
		missBytes += pg.CacheBytes()
	}
	if len(fresh) == 0 {
		return 0
	}
	issue := dev.RecordEvent()
	prev := dev.SetStream(sim.StreamCopy)
	dev.WaitEvent(issue, "topostore.prefetch.issue")
	ws := float64(s.TopoBytes()) / 1e9
	dev.IdleFor(float64(len(fresh))*dev.UMAccessLatency(ws), "topostore.prefetch.fault")
	dev.Kernel(sim.KernelCost{UMBytes: float64(missBytes), Tag: "topostore.prefetch"})
	ready := dev.RecordEvent()
	dev.SetStream(prev)
	for _, pg := range fresh {
		pg.ready = ready
	}
	return len(fresh)
}

// ReadEdge is the uncharged host-side read: the column value at e,
// exactly what an Access would decode, without touching device caches.
func (s *Store) ReadEdge(e int64) uint64 {
	if e < 0 || e >= s.numEdges {
		panic(fmt.Sprintf("topostore: edge %d outside [0,%d)", e, s.numEdges))
	}
	id := s.PageOf(e)
	s.hostMu.Lock()
	defer s.hostMu.Unlock()
	if s.hostID != id {
		s.hostPg = s.fillPage(id)
		s.hostID = id
	}
	lo := int64(id) * int64(s.opts.PageEdges)
	return s.hostPg.col[e-lo]
}

// Stats aggregates the store's configuration with every attached
// device's BlockCache counters.
type Stats struct {
	PageEdges        int    `json:"page_edges"`
	Pages            int    `json:"pages"`
	TopoBytes        int64  `json:"topo_bytes"`
	CacheBytes       int64  `json:"cache_budget_bytes"`
	Devices          int    `json:"devices"`
	Policy           string `json:"policy"`
	Hits             int64  `json:"hits"`
	Misses           int64  `json:"misses"`
	Evictions        int64  `json:"evictions"`
	PrefetchHits     int64  `json:"prefetch_hits"`
	AdmissionRejects int64  `json:"admission_rejects"`
	ResidentBytes    int64  `json:"resident_bytes"`
}

// HitRate returns the fraction of page lookups served from a BlockCache.
func (st Stats) HitRate() float64 {
	if st.Hits+st.Misses == 0 {
		return 0
	}
	return float64(st.Hits) / float64(st.Hits+st.Misses)
}

// Stats snapshots the aggregate counters.
func (s *Store) Stats() Stats {
	st := Stats{
		PageEdges: s.opts.PageEdges, Pages: int(s.nPages),
		TopoBytes: s.TopoBytes(), CacheBytes: s.opts.CacheBytes,
		Devices: len(s.caches), Policy: s.opts.Policy.String(),
	}
	for _, dc := range s.caches {
		cs := dc.bc.Stats()
		st.Hits += cs.Hits
		st.Misses += cs.Misses
		st.Evictions += cs.Evictions
		st.PrefetchHits += cs.PrefetchHits
		st.AdmissionRejects += cs.AdmissionRejects
		st.ResidentBytes += cs.ResidentBytes
	}
	return st
}
