package topostore

import (
	"testing"

	"wholegraph/internal/blockcache"
	"wholegraph/internal/sim"
)

// testFill writes a deterministic function of the edge index so decoded
// values are checkable without a backing array.
func testFill(e0, e1 int64, dst []uint64) {
	for e := e0; e < e1; e++ {
		dst[e-e0] = uint64(e)*2654435761 + 7
	}
}

func wantCol(e int64) uint64 { return uint64(e)*2654435761 + 7 }

func newTestStore(t *testing.T, numEdges int64, opts Options) (*Store, *sim.Device) {
	t.Helper()
	s, err := New(numEdges, testFill, opts)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMachine(sim.DGXA100(1))
	s.Attach(m.Devs...)
	return s, m.Devs[0]
}

// TestAccessDecodesExact: At returns the fill values bit-exactly across
// page boundaries and the partial last page, resident or not.
func TestAccessDecodesExact(t *testing.T) {
	const numEdges = 1000
	s, dev := newTestStore(t, numEdges, Options{PageEdges: 64}) // partial last page
	if s.NumPages() != 16 {
		t.Fatalf("pages = %d, want 16", s.NumPages())
	}
	acc := s.Begin(dev)
	for _, e := range []int64{0, 1, 63, 64, 65, 500, 960, numEdges - 1} {
		if got := acc.At(e); got != wantCol(e) {
			t.Fatalf("edge %d: %d != %d", e, got, wantCol(e))
		}
	}
	acc.Flush("test")
	// Repeat after the flush: same values from resident pages.
	acc = s.Begin(dev)
	for e := int64(0); e < numEdges; e++ {
		if got := acc.At(e); got != wantCol(e) {
			t.Fatalf("edge %d after flush: %d != %d", e, got, wantCol(e))
		}
	}
	acc.Flush("test")
	if got := s.ReadEdge(999); got != wantCol(999) {
		t.Fatalf("ReadEdge: %d != %d", got, wantCol(999))
	}
}

// TestFlushChargesMissesThenHits: the first batch faults pages on the
// copy stream; repeating the same edges is served from the cache —
// strictly cheaper, with the counters moving accordingly.
func TestFlushChargesMissesThenHits(t *testing.T) {
	s, dev := newTestStore(t, 4096, Options{PageEdges: 128})
	edges := []int64{0, 130, 260, 1000, 2000, 4000}

	t0 := dev.Now()
	acc := s.Begin(dev)
	for _, e := range edges {
		acc.At(e)
	}
	if faulted := acc.Flush("test"); faulted != 6 {
		t.Fatalf("faulted %d pages, want 6", faulted)
	}
	missTime := dev.Now() - t0
	st := s.Stats()
	if st.Misses != 6 || st.Hits != 0 {
		t.Fatalf("first batch: %+v", st)
	}

	t1 := dev.Now()
	acc = s.Begin(dev)
	for _, e := range edges {
		acc.At(e)
	}
	if faulted := acc.Flush("test"); faulted != 0 {
		t.Fatalf("repeat batch faulted %d pages", faulted)
	}
	hitTime := dev.Now() - t1
	st = s.Stats()
	if st.Misses != 6 || st.Hits != 6 {
		t.Errorf("repeat batch: %+v", st)
	}
	if hitTime >= missTime {
		t.Errorf("hit batch (%.3g s) not cheaper than miss batch (%.3g s)", hitTime, missTime)
	}
	// Within one batch, repeated edges on the same page count one lookup.
	acc = s.Begin(dev)
	acc.At(0)
	acc.At(1)
	acc.At(2)
	acc.Flush("test")
	if got := s.Stats().Hits; got != 7 {
		t.Errorf("batched lookups: hits = %d, want 7", got)
	}
}

// TestEvictionChurnKeepsValues: a tiny budget forces evictions; every
// refilled page decodes the same values (fill determinism).
func TestEvictionChurnKeepsValues(t *testing.T) {
	pageBytes := int64(64*8) + 16
	s, dev := newTestStore(t, 4096, Options{PageEdges: 64, CacheBytes: 3 * pageBytes})
	x := uint64(12345)
	for i := 0; i < 300; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		e := int64(x % 4096)
		acc := s.Begin(dev)
		if got := acc.At(e); got != wantCol(e) {
			t.Fatalf("iter %d edge %d: wrong value after eviction churn", i, e)
		}
		acc.Flush("test")
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Error("no evictions under a 3-page budget")
	}
	if st.ResidentBytes > 3*pageBytes {
		t.Errorf("resident %d over budget %d", st.ResidentBytes, 3*pageBytes)
	}
}

// TestPrefetchOverlapsAndJoins: a prefetch issued before compute runs on
// the copy stream without blocking it; the first demand batch joins the
// transfer (counted as prefetch hits) and faults nothing.
func TestPrefetchOverlapsAndJoins(t *testing.T) {
	s, dev := newTestStore(t, 4096, Options{PageEdges: 128})

	n := s.PrefetchPages(dev, []int32{0, 1, 2})
	if n != 3 {
		t.Fatalf("prefetched %d pages, want 3", n)
	}
	// The prefetch must not advance the compute stream.
	if now := dev.StreamNow(sim.StreamCompute); now != 0 {
		t.Fatalf("prefetch advanced compute stream to %g", now)
	}
	dev.Kernel(sim.KernelCost{FLOPs: 1e12, Tag: "compute"}) // overlapping work

	acc := s.Begin(dev)
	acc.At(0)   // page 0, prefetched
	acc.At(129) // page 1, prefetched
	if faulted := acc.Flush("test"); faulted != 0 {
		t.Fatalf("demand batch faulted %d prefetched pages", faulted)
	}
	st := s.Stats()
	if st.PrefetchHits != 2 {
		t.Errorf("prefetch hits = %d, want 2", st.PrefetchHits)
	}
	if st.Misses != 0 {
		t.Errorf("misses = %d after full prefetch coverage", st.Misses)
	}
	// Re-prefetching resident pages is a no-op.
	if n := s.PrefetchPages(dev, []int32{0, 1, 2}); n != 0 {
		t.Errorf("re-prefetch faulted %d resident pages", n)
	}
	// Out-of-range ids are skipped.
	if n := s.PrefetchPages(dev, []int32{-1, 1000}); n != 0 {
		t.Errorf("out-of-range prefetch faulted %d pages", n)
	}
}

// TestPrefetchNoTimeTravel: a demand batch that joins an in-flight
// prefetch never completes before the transfer's ready event.
func TestPrefetchNoTimeTravel(t *testing.T) {
	s, dev := newTestStore(t, 4096, Options{PageEdges: 128})
	s.PrefetchPages(dev, []int32{5})
	ready := dev.StreamNow(sim.StreamCopy)
	if ready <= 0 {
		t.Fatal("prefetch charged nothing on the copy stream")
	}
	acc := s.Begin(dev)
	acc.At(5 * 128)
	acc.Flush("test")
	if now := dev.StreamNow(sim.StreamCompute); now < ready {
		t.Errorf("demand batch finished at %g before prefetch ready %g", now, ready)
	}
}

// TestAdmitPolicyWiring: PolicyAdmit reaches the per-device caches and
// rejected pages still serve correct values for the faulting batch.
func TestAdmitPolicyWiring(t *testing.T) {
	pageBytes := int64(64*8) + 16
	s, dev := newTestStore(t, 64*300, Options{
		PageEdges:  64,
		CacheBytes: 4 * pageBytes,
		Policy:     blockcache.PolicyAdmit,
	})
	// Hot set: pages 0..3, touched repeatedly; then a cold scan.
	for round := 0; round < 30; round++ {
		acc := s.Begin(dev)
		for p := int64(0); p < 4; p++ {
			e := p * 64
			if got := acc.At(e); got != wantCol(e) {
				t.Fatalf("hot edge %d wrong", e)
			}
		}
		acc.Flush("test")
	}
	for p := int64(4); p < 300; p++ {
		e := p * 64
		acc := s.Begin(dev)
		if got := acc.At(e); got != wantCol(e) {
			t.Fatalf("cold edge %d wrong under admission", e)
		}
		acc.Flush("test")
	}
	st := s.Stats()
	if st.AdmissionRejects == 0 {
		t.Error("cold scan produced no admission rejects")
	}
	if st.Policy != "admit" {
		t.Errorf("policy = %q", st.Policy)
	}
	// Hot pages survived the scan: one more hot round, all hits.
	before := s.Stats().Misses
	acc := s.Begin(dev)
	for p := int64(0); p < 4; p++ {
		acc.At(p * 64)
	}
	acc.Flush("test")
	if after := s.Stats().Misses; after != before {
		t.Errorf("hot pages evicted by cold scan: %d new misses", after-before)
	}
}

// TestPerDeviceIsolation: each attached device gets its own cache and
// Access scratch; concurrent per-device accesses race-clean and decode
// correct values (run under -race via scripts/check.sh).
func TestPerDeviceIsolation(t *testing.T) {
	s, err := New(8192, testFill, Options{PageEdges: 64})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMachine(sim.DGXA100(1))
	devs := m.Devs[:2]
	s.Attach(devs...)
	errs := make(chan error, len(devs))
	sim.RunParallel(len(devs), func(r int) {
		dev := devs[r]
		x := uint64(r)*2654435761 + 99
		for i := 0; i < 200; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			e := int64(x % 8192)
			acc := s.Begin(dev)
			if got := acc.At(e); got != wantCol(e) {
				errs <- nil
				return
			}
			acc.Flush("test")
		}
	})
	close(errs)
	if len(errs) > 0 {
		t.Fatal("wrong value under concurrent per-device access")
	}
	st := s.Stats()
	if st.Devices != 2 {
		t.Fatalf("devices = %d", st.Devices)
	}
	if st.Hits+st.Misses != 2*200 {
		t.Errorf("lookups %d != %d", st.Hits+st.Misses, 2*200)
	}
}
