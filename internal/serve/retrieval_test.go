package serve

import (
	"math/rand"
	"testing"

	"wholegraph/internal/ann"
	"wholegraph/internal/sim"
	"wholegraph/internal/tensor"
	"wholegraph/internal/wholemem"
)

// retrievalSetup builds a small clustered index over a fresh machine and a
// retrieval server on it.
func retrievalSetup(t *testing.T, opts Options) (*sim.Machine, *Server) {
	t.Helper()
	m := sim.NewMachine(sim.DGXA100(1))
	comm, err := wholemem.NewComm(m.NodeDevs(0))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	emb := tensor.New(1200, 12)
	for i := range emb.V {
		emb.V[i] = float32(rng.NormFloat64())
	}
	ix, err := ann.Build(comm, emb, ann.Options{M: 8, EfConstruction: 48})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewRetrieval(ix, opts)
	if err != nil {
		t.Fatal(err)
	}
	m.Reset()
	return m, srv
}

func baseRetrievalOpts() Options {
	return Options{
		Rate:     200000,
		Requests: 600,
		MaxBatch: 8,
		MaxDelay: 0.2e-3,
		SLO:      1e-3,
		Skew:     1.3,
		TopK:     10,
		EfSearch: 64,
		Seed:     3,
	}
}

func TestRetrievalServing(t *testing.T) {
	_, srv := retrievalSetup(t, baseRetrievalOpts())
	res, err := srv.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Served == 0 {
		t.Fatal("no requests served")
	}
	if res.Served+res.Shed+res.TimedOut != res.Offered {
		t.Fatalf("outcome counts %d+%d+%d != offered %d", res.Served, res.Shed, res.TimedOut, res.Offered)
	}
	if res.Recall <= 0.5 || res.Recall > 1 {
		t.Fatalf("mean recall@%d = %.3f, expected a sane (0.5, 1] value at ef=64", res.TopK, res.Recall)
	}
	if res.TopK != 10 || res.EfSearch != 64 {
		t.Fatalf("result echoes topk=%d ef=%d", res.TopK, res.EfSearch)
	}
	if res.P99 <= 0 {
		t.Fatal("no p99 latency reported")
	}
	if res.MeanBatch <= 1 {
		t.Fatalf("dynamic batcher never coalesced (mean batch %.2f)", res.MeanBatch)
	}
	for _, q := range res.Trace {
		if q.Outcome == OutcomeServed && srv.index.RankOfRow(q.Node) != q.Replica {
			// Default policy degrades to owner routing for retrieval.
			t.Fatalf("request %d for node %d served by replica %d, owner is %d",
				q.ID, q.Node, q.Replica, srv.index.RankOfRow(q.Node))
		}
	}
}

// TestRetrievalDeterministic pins the acceptance contract: the retrieval
// trace — every field of every request, including recall — is
// bit-identical whether the replicas run serially or under
// sim.RunParallel.
func TestRetrievalDeterministic(t *testing.T) {
	prev := sim.SetParallel(false)
	_, srvSer := retrievalSetup(t, baseRetrievalOpts())
	resSer, err := srvSer.Run()
	if err != nil {
		t.Fatal(err)
	}
	sim.SetParallel(true)
	_, srvPar := retrievalSetup(t, baseRetrievalOpts())
	resPar, err := srvPar.Run()
	sim.SetParallel(prev)
	if err != nil {
		t.Fatal(err)
	}
	if len(resSer.Trace) != len(resPar.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(resSer.Trace), len(resPar.Trace))
	}
	for i := range resSer.Trace {
		a, b := *resSer.Trace[i], *resPar.Trace[i]
		if a != b {
			t.Fatalf("request %d differs:\nserial:   %+v\nparallel: %+v", i, a, b)
		}
	}
	if resSer.Recall != resPar.Recall || resSer.P99 != resPar.P99 || resSer.Throughput != resPar.Throughput {
		t.Fatalf("aggregates differ: recall %v/%v p99 %v/%v thr %v/%v",
			resSer.Recall, resPar.Recall, resSer.P99, resPar.P99, resSer.Throughput, resPar.Throughput)
	}
}

// TestRetrievalBeamWidthTradesRecall pins the knob the ablation sweeps: a
// wider beam may only raise recall, a width-1 beam should visibly miss.
func TestRetrievalBeamWidthTradesRecall(t *testing.T) {
	recallAt := func(ef int) float64 {
		opts := baseRetrievalOpts()
		opts.EfSearch = ef
		_, srv := retrievalSetup(t, opts)
		res, err := srv.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Recall
	}
	narrow, wide := recallAt(10), recallAt(128)
	if wide < narrow {
		t.Fatalf("recall fell as the beam widened: ef=10 %.3f, ef=128 %.3f", narrow, wide)
	}
	if wide < 0.85 {
		t.Fatalf("recall@10 at ef=128 = %.3f, expected near-exact on 1200 vectors", wide)
	}
}

func TestNewRejectsRetrievalWorkload(t *testing.T) {
	opts := baseRetrievalOpts()
	opts.Workload = WorkloadRetrieval
	if err := opts.Normalize().Validate(); err != nil {
		t.Fatalf("retrieval workload should validate: %v", err)
	}
	if _, err := New(nil, 0, nil, nil, opts); err == nil {
		t.Fatal("New accepted the retrieval workload; it must come from NewRetrieval")
	}
}
