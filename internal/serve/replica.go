package serve

import (
	"math"

	"wholegraph/internal/autograd"
	"wholegraph/internal/cache"
	"wholegraph/internal/core"
	"wholegraph/internal/gnn"
	"wholegraph/internal/sim"
)

// Outcome records what happened to one request.
type Outcome uint8

const (
	// OutcomeServed: the request was batched, executed and answered.
	OutcomeServed Outcome = iota
	// OutcomeShed: the replica's queue was full at arrival (load
	// shedding; the client sees an immediate rejection).
	OutcomeShed
	// OutcomeTimedOut: the request was admitted but its deadline passed
	// before its batch launched, so it was dropped unexecuted.
	OutcomeTimedOut
)

func (o Outcome) String() string {
	switch o {
	case OutcomeServed:
		return "served"
	case OutcomeShed:
		return "shed"
	case OutcomeTimedOut:
		return "timeout"
	}
	return "unknown"
}

// Request is one node-inference request. The generator fills ID, Node and
// Arrival; routing fills Replica; serving fills the rest. All times are
// virtual seconds.
type Request struct {
	ID      int     `json:"id"`
	Node    int64   `json:"node"`
	Arrival float64 `json:"arrival"`
	Replica int     `json:"replica"`

	Outcome Outcome `json:"outcome"`
	// Start and Done are the batch launch and completion times of a
	// served request (zero otherwise).
	Start float64 `json:"start,omitempty"`
	Done  float64 `json:"done,omitempty"`
	// Batch is the replica-local sequence number of the serving batch,
	// BatchSize how many requests it coalesced (including this one).
	Batch     int `json:"batch,omitempty"`
	BatchSize int `json:"batch_size,omitempty"`
	// Class is the predicted class of a served request (inference
	// workload only).
	Class int32 `json:"class,omitempty"`
	// Recall is the request's recall@K against the exact oracle
	// (retrieval workload only).
	Recall float64 `json:"recall,omitempty"`
}

// Latency returns the request's response latency (served requests only).
func (q *Request) Latency() float64 { return q.Done - q.Arrival }

// replica is one serving worker: a GPU, its model copy, loader and
// optional cache. Between sim.RunParallel barriers a replica (and its
// device, both streams) is owned by exactly one goroutine.
type replica struct {
	id     int
	srv    *Server
	dev    *sim.Device
	model  gnn.LayerwiseModel
	loader *core.Loader
	cache  *cache.FeatureCache
	tape   *autograd.Tape

	// Serving stats, filled by serve.
	batches int
	targets int // unique seed nodes executed (<= requests served)

	// scratch reused across batches.
	batchReqs []*Request
	ids       []int64
	reqSlot   []int
	qbuf      []float32 // retrieval: staged query vectors
}

// dedupe coalesces a batch's duplicate seed nodes: ids is the unique node
// list in first-come order, reqSlot maps each request to its node's slot.
// Both alias replica scratch, valid until the next batch.
func (r *replica) dedupe(batch []*Request) ([]int64, []int) {
	ids := r.ids[:0]
	reqSlot := r.reqSlot[:0]
	for _, q := range batch {
		at := -1
		for i, v := range ids {
			if v == q.Node {
				at = i
				break
			}
		}
		if at < 0 {
			at = len(ids)
			ids = append(ids, q.Node)
		}
		reqSlot = append(reqSlot, at)
	}
	r.ids, r.reqSlot = ids, reqSlot
	return ids, reqSlot
}

// serve runs the replica's whole request stream to completion. reqs are
// the requests routed to this replica in arrival order. The loop is a
// two-event discrete simulation: the next pending arrival vs the next
// batch formation; whichever is earlier in virtual time happens first.
//
// A batch forms when the replica can launch it: its trigger — MaxBatch
// requests waiting, or the oldest waiting request having waited MaxDelay —
// has fired, the copy stream has finished the previous batch's build, and
// the loader ring slot it will overwrite has been released by the forward
// two batches back. The build is charged to the copy stream and the
// forward to the compute stream, so batch b+1's sample/dedup/gather
// overlaps batch b's forward exactly like the training pipeline.
func (r *replica) serve(reqs []*Request) {
	o := r.srv.Opts
	var queue []*Request
	// slotDone[p] is the completion time of the forward that last
	// consumed loader ring slot p; a build into that slot must wait for
	// it (the two-slot ring of core.Loader).
	var slotDone [2]float64
	slot := 0
	copyFree := 0.0
	next := 0 // next arrival index

	for next < len(reqs) || len(queue) > 0 {
		tForm := math.Inf(1)
		if len(queue) > 0 {
			trigger := queue[0].Arrival + o.MaxDelay
			if len(queue) >= o.MaxBatch {
				if t := queue[o.MaxBatch-1].Arrival; t < trigger {
					trigger = t
				}
			}
			tForm = math.Max(trigger, math.Max(copyFree, slotDone[slot]))
		}
		if next < len(reqs) && reqs[next].Arrival < tForm {
			q := reqs[next]
			next++
			if len(queue) >= o.QueueCap {
				q.Outcome = OutcomeShed
				continue
			}
			queue = append(queue, q)
			continue
		}

		// Form the batch at tForm: drop requests whose deadline already
		// passed, then take up to MaxBatch of the rest, oldest first.
		batch := r.batchReqs[:0]
		for len(queue) > 0 && len(batch) < o.MaxBatch {
			q := queue[0]
			if o.Deadline > 0 && q.Arrival+o.Deadline < tForm {
				q.Outcome = OutcomeTimedOut
				queue = queue[1:]
				continue
			}
			batch = append(batch, q)
			queue = queue[1:]
		}
		r.batchReqs = batch
		if len(batch) == 0 {
			continue // everything expired; the loop re-evaluates
		}
		done := r.runBatch(batch, tForm)
		slotDone[slot] = done
		slot ^= 1
		copyFree = r.dev.StreamNow(sim.StreamCopy)
	}
}

// runBatch executes one batch launched at tStart and returns its
// completion time. tStart already accounts for the copy stream being free
// and the loader ring slot having been released (see serve). Duplicate
// seed nodes are coalesced: the sampled gather and forward run once per
// unique node, and every request for that node shares the result (and the
// completion time).
func (r *replica) runBatch(batch []*Request, tStart float64) float64 {
	if r.srv.index != nil {
		return r.runRetrievalBatch(batch, tStart)
	}
	dev := r.dev

	// Unique seed nodes, first-come order; reqSlot maps each request to
	// its node's row in the batch output.
	ids, reqSlot := r.dedupe(batch)

	// Build (sample, dedup, gather) on the copy stream. The stream idles
	// to the launch point first: the host cannot enqueue the build before
	// the batcher decided to launch.
	prev := dev.SetStream(sim.StreamCopy)
	dev.IdleUntil(tStart)
	b, _ := r.loader.BuildBatch(ids)
	buildDone := dev.Now()
	dev.SetStream(prev)

	// Forward on the compute stream, queued behind the previous batch's
	// forward and gated on the gather.
	dev.IdleUntil(buildDone)
	r.tape.Reset()
	logits := r.model.Forward(dev, r.tape, b, false)
	classes := logits.Value.C
	// Response extraction: one streaming argmax over the logits.
	dev.Kernel(sim.KernelCost{
		StreamBytes: float64(4 * len(ids) * classes),
		Tag:         "serve.argmax",
	})
	done := dev.Now()

	for i, q := range batch {
		q.Outcome = OutcomeServed
		q.Start = tStart
		q.Done = done
		q.Batch = r.batches
		q.BatchSize = len(batch)
		q.Class = argmaxRow(logits.Value.Row(reqSlot[i]))
	}
	r.batches++
	r.targets += len(ids)
	return done
}

func argmaxRow(row []float32) int32 {
	best := 0
	for j, v := range row {
		if v > row[best] {
			best = j
		}
	}
	return int32(best)
}
