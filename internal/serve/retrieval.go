package serve

import (
	"fmt"

	"wholegraph/internal/ann"
	"wholegraph/internal/sim"
)

// The retrieval workload: requests are top-K nearest-neighbor queries over
// an ann.Index of GNN embeddings, flowing through the same generator,
// router, and per-replica dynamic batcher as inference. A batch stages its
// unique query vectors out of the shared embedding table on the copy
// stream (overlapping the previous batch's search on the compute stream),
// then answers all of them in one batched HNSW search kernel. Each served
// request reports recall@K against the exact brute-force oracle, which is
// precomputed host-side for the trace's unique nodes before the parallel
// serving region — replicas only read it.

// NewRetrieval builds a retrieval deployment over a built ANN index: one
// replica per device of the index's communicator. The model/loader/cache
// serving chain is absent — batches execute against the index — so
// inference-only options (Fanouts, CacheRows, paged features) are ignored.
func NewRetrieval(ix *ann.Index, opts Options) (*Server, error) {
	opts.Workload = WorkloadRetrieval
	opts = opts.Normalize()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if ix == nil || ix.N() == 0 {
		return nil, fmt.Errorf("serve: retrieval needs a non-empty ANN index")
	}
	if opts.TopK > ix.N() {
		return nil, fmt.Errorf("serve: TopK %d exceeds index size %d", opts.TopK, ix.N())
	}
	s := &Server{Opts: opts, index: ix}
	for r, dev := range ix.Comm().Devs {
		s.replicas = append(s.replicas, &replica{id: r, dev: dev, srv: s})
	}
	return s, nil
}

// Index returns the ANN index of a retrieval deployment (nil for
// inference).
func (s *Server) Index() *ann.Index { return s.index }

// buildOracle precomputes the exact top-K answer for every distinct node
// the trace requests, host-side and uncharged (it is measurement
// apparatus, not served work). Runs before the replicas start so the map
// is read-only during the parallel region.
func (s *Server) buildOracle(trace []*Request) {
	uniq := make([]int64, 0, len(trace))
	seen := make(map[int64]bool, len(trace))
	for _, q := range trace {
		if !seen[q.Node] {
			seen[q.Node] = true
			uniq = append(uniq, q.Node)
		}
	}
	exact := s.index.ExactNodes(uniq, s.Opts.TopK)
	s.oracle = make(map[int64][]ann.Result, len(uniq))
	for i, node := range uniq {
		s.oracle[node] = exact[i]
	}
}

// runRetrievalBatch executes one retrieval batch launched at tStart and
// returns its completion time: gather the unique query rows on the copy
// stream, one batched HNSW search kernel plus a streaming result writeback
// on the compute stream. Duplicate nodes are coalesced like inference.
func (r *replica) runRetrievalBatch(batch []*Request, tStart float64) float64 {
	dev := r.dev
	ix := r.srv.index
	o := r.srv.Opts
	ids, reqSlot := r.dedupe(batch)

	// Stage the unique query vectors from the shared embedding table on
	// the copy stream, idled to the launch decision.
	prev := dev.SetStream(sim.StreamCopy)
	dev.IdleUntil(tStart)
	need := len(ids) * ix.Dim()
	if cap(r.qbuf) < need {
		r.qbuf = make([]float32, need)
	}
	q := r.qbuf[:need]
	ix.GatherQueries(dev, ids, q)
	gatherDone := dev.Now()
	dev.SetStream(prev)

	// One batched search kernel on the compute stream, gated on the
	// gather, then a streaming writeback of (id, dist) pairs.
	dev.IdleUntil(gatherDone)
	res := ix.SearchMany(dev, q, o.TopK, o.EfSearch)
	dev.Kernel(sim.KernelCost{
		StreamBytes: float64(12 * len(ids) * o.TopK),
		Tag:         "serve.topk",
	})
	done := dev.Now()

	for i, req := range batch {
		req.Outcome = OutcomeServed
		req.Start = tStart
		req.Done = done
		req.Batch = r.batches
		req.BatchSize = len(batch)
		req.Recall = ann.Recall(res[reqSlot[i]], r.srv.oracle[req.Node])
	}
	r.batches++
	r.targets += len(ids)
	return done
}
