// Package serve implements online GNN inference serving over the
// distributed shared-memory store — the request-driven counterpart of the
// offline pipelines in internal/train and internal/infer.
//
// The paper's argument is that irregular feature gathering dominates GNN
// workloads (Figure 8), and an online serving layer exercises exactly that
// cost under open-loop load: each request asks for the model's prediction
// on one seed node, which requires sampling its multi-hop neighborhood,
// deduplicating it, gathering the input features through peer access, and
// running a layer-wise forward. The subsystem simulates, in virtual time:
//
//   - a seeded open-loop request generator (Poisson arrivals, optionally
//     Zipf-skewed toward high-degree nodes),
//   - static cache-aware routing across the replicas (one per GPU of the
//     store's node),
//   - a per-replica dynamic batcher that coalesces queued requests until
//     MaxBatch requests are waiting or the oldest has waited MaxDelay,
//   - admission control: a bounded per-replica queue that sheds arrivals
//     when full, plus per-request deadlines that drop requests whose
//     deadline passed before their batch launched,
//   - batch execution that reuses the training loader's sample/dedup/
//     gather chain and the model forward, with each batch's build running
//     on the device's copy stream so it overlaps the previous batch's
//     forward on the compute stream (the PR-3 dual-stream model).
//
// Everything is deterministic: the same seed and options produce a
// bit-identical request trace and latency percentiles, whether the
// replicas run serially or on real goroutines under sim.RunParallel.
package serve

import (
	"fmt"
	"math/rand"
	"sort"

	"wholegraph/internal/ann"
	"wholegraph/internal/autograd"
	"wholegraph/internal/cache"
	"wholegraph/internal/core"
	"wholegraph/internal/dataset"
	"wholegraph/internal/featstore"
	"wholegraph/internal/gnn"
	"wholegraph/internal/sim"
	"wholegraph/internal/tensor"
)

// Policy selects how arriving requests are routed to replicas. All
// policies are static (computable from the request alone plus a running
// counter), which keeps the per-replica serving loops independent and
// lets them run under sim.RunParallel.
type Policy string

const (
	// PolicyCacheAware routes hot nodes — whose feature rows every
	// non-owner replica caches — round-robin across all replicas, and
	// cold nodes to the rank that owns their feature shard. With no cache
	// configured it degrades to PolicyOwner.
	PolicyCacheAware Policy = "cache"
	// PolicyOwner routes every request to the rank owning the seed
	// node's feature row (the hash partition balances load in
	// expectation and the seed row gather is always local).
	PolicyOwner Policy = "owner"
	// PolicyRoundRobin ignores locality and spreads requests evenly.
	PolicyRoundRobin Policy = "rr"
)

// Workloads a Server can run.
const (
	// WorkloadInference answers each request with the model's predicted
	// class for the seed node (sample, gather, forward).
	WorkloadInference = "inference"
	// WorkloadRetrieval answers each request with the seed node's top-K
	// nearest neighbors in embedding space, through an ann.Index
	// (NewRetrieval). Requests report recall@K against the exact oracle.
	WorkloadRetrieval = "retrieval"
)

// Options configures a serving run. Zero values take defaults via
// Normalize.
type Options struct {
	// Rate is the mean Poisson arrival rate in requests per virtual
	// second (default 2000).
	Rate float64
	// Requests is the open-loop request count (default 2000).
	Requests int
	// MaxBatch caps how many requests one batch coalesces (default 16;
	// 1 disables batching — every request runs alone).
	MaxBatch int
	// MaxDelay is the longest a queued request waits for companions
	// before its batch launches anyway, in virtual seconds (default 1ms).
	MaxDelay float64
	// SLO is the latency target reported against, in virtual seconds
	// (default 20ms).
	SLO float64
	// Deadline drops requests whose batch has not launched within this
	// many virtual seconds of arrival (0 = no timeouts).
	Deadline float64
	// QueueCap bounds each replica's waiting queue; arrivals beyond it
	// are shed (default 8*MaxBatch).
	QueueCap int
	// CacheRows, when positive, fronts each replica's feature gathers
	// with a degree-ordered hot-node cache of that many rows.
	CacheRows int
	// Fanouts are the per-layer sampling fanouts (default 10,10).
	Fanouts []int
	// Skew, when > 1, draws seed nodes from a Zipf distribution over the
	// degree ranking (rank 0 = highest degree), modelling the popularity
	// skew of real traffic; 0 draws them uniformly.
	Skew float64
	// Policy is the routing policy (default PolicyCacheAware).
	Policy Policy
	// Seed fixes the arrival process and seed-node draw.
	Seed int64
	// PagedFeatures serves node features from the paged feature store
	// (internal/featstore) instead of a resident wholemem slab — the
	// serving-side counterpart of train.Options.PagedFeatures.
	PagedFeatures bool
	// FeatEncoding is the page codec ("raw", "f16", "q8"; default raw).
	FeatEncoding string
	// FeatPageRows is the paged store's rows-per-page (0 = 256).
	FeatPageRows int
	// FeatCacheMB is each GPU's BlockCache budget in MiB (0 = 256).
	FeatCacheMB int
	// CachePolicy selects the BlockCache policy ("lru" or "admit").
	CachePolicy string
	// Workload selects what a request asks for: WorkloadInference
	// (default) or WorkloadRetrieval. New always serves inference;
	// retrieval deployments come from NewRetrieval.
	Workload string
	// TopK is the neighbor count of a retrieval request (default 10).
	TopK int
	// EfSearch is the HNSW beam width retrieval batches search with
	// (0 = the index's Options.EfSearch default).
	EfSearch int
}

// Normalize fills defaults.
func (o Options) Normalize() Options {
	if o.Rate == 0 {
		o.Rate = 2000
	}
	if o.Requests == 0 {
		o.Requests = 2000
	}
	if o.MaxBatch == 0 {
		o.MaxBatch = 16
	}
	if o.MaxDelay == 0 {
		o.MaxDelay = 1e-3
	}
	if o.SLO == 0 {
		o.SLO = 20e-3
	}
	if o.QueueCap == 0 {
		o.QueueCap = 8 * o.MaxBatch
	}
	if len(o.Fanouts) == 0 {
		o.Fanouts = []int{10, 10}
	}
	if o.Policy == "" {
		o.Policy = PolicyCacheAware
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workload == "" {
		o.Workload = WorkloadInference
	}
	if o.TopK == 0 {
		o.TopK = 10
	}
	return o
}

// Validate rejects unusable option combinations.
func (o Options) Validate() error {
	switch {
	case o.Rate <= 0:
		return fmt.Errorf("serve: Rate must be positive, got %g", o.Rate)
	case o.Requests <= 0:
		return fmt.Errorf("serve: Requests must be positive, got %d", o.Requests)
	case o.MaxBatch < 1:
		return fmt.Errorf("serve: MaxBatch must be >= 1, got %d", o.MaxBatch)
	case o.MaxDelay < 0:
		return fmt.Errorf("serve: MaxDelay must be >= 0, got %g", o.MaxDelay)
	case o.Deadline < 0:
		return fmt.Errorf("serve: Deadline must be >= 0, got %g", o.Deadline)
	case o.QueueCap < 1:
		return fmt.Errorf("serve: QueueCap must be >= 1, got %d", o.QueueCap)
	case o.Skew != 0 && o.Skew <= 1:
		return fmt.Errorf("serve: Skew must be > 1 (or 0 for uniform), got %g", o.Skew)
	}
	switch o.Policy {
	case PolicyCacheAware, PolicyOwner, PolicyRoundRobin:
	default:
		return fmt.Errorf("serve: unknown routing policy %q", o.Policy)
	}
	switch o.Workload {
	case WorkloadInference, WorkloadRetrieval:
	default:
		return fmt.Errorf("serve: unknown workload %q", o.Workload)
	}
	if o.TopK < 1 {
		return fmt.Errorf("serve: TopK must be >= 1, got %d", o.TopK)
	}
	if o.EfSearch < 0 {
		return fmt.Errorf("serve: EfSearch must be >= 0, got %d", o.EfSearch)
	}
	return nil
}

// Server serves node-inference requests from the replicas of one store.
// Each replica is one GPU of the store's node: it runs its own model copy,
// loader and (optionally) hot-node feature cache, and gathers input
// features from every rank's shard through peer access.
type Server struct {
	Opts  Options
	Store *core.Store
	Model gnn.LayerwiseModel

	replicas []*replica
	// byDegree maps a popularity rank (0 = hottest) to a node ID; built
	// when Opts.Skew draws seed nodes by popularity or the cache-aware
	// router needs hotness. rankOf is its lazily-built inverse.
	byDegree []int64
	rankOf   map[int64]int64
	rr       int // round-robin cursor shared by the routing policies

	// Retrieval-workload state (nil for inference): the ANN index the
	// replicas search, and the exact top-K oracle precomputed before the
	// parallel serving region so replicas can fill per-request recall
	// from a read-only map.
	index  *ann.Index
	oracle map[int64][]ann.Result
}

// New builds a serving deployment: the dataset is partitioned over the
// GPUs of machine node `node` (one serving replica per GPU), and the given
// trained model is replicated onto each. Construction charges the store
// setup and cache fill; callers measuring steady-state serving should
// m.Reset() afterwards, as the benchmarks do.
func New(m *sim.Machine, node int, ds *dataset.Dataset, model gnn.LayerwiseModel, opts Options) (*Server, error) {
	opts = opts.Normalize()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Workload == WorkloadRetrieval {
		return nil, fmt.Errorf("serve: retrieval deployments are built with NewRetrieval over an ann.Index")
	}
	var store *core.Store
	var err error
	if opts.PagedFeatures {
		enc, encErr := featstore.ParseEncoding(opts.FeatEncoding)
		if encErr != nil {
			return nil, encErr
		}
		policy, polErr := featstore.ParsePolicy(opts.CachePolicy)
		if polErr != nil {
			return nil, polErr
		}
		store, err = core.NewStorePaged(m, node, ds, featstore.Options{
			Encoding:   enc,
			PageRows:   opts.FeatPageRows,
			CacheBytes: int64(opts.FeatCacheMB) << 20,
			Policy:     policy,
		})
	} else {
		store, err = core.NewStore(m, node, ds)
	}
	if err != nil {
		return nil, err
	}
	if store.PG.Features() == nil {
		return nil, fmt.Errorf("serve: store has no node features")
	}
	cfg := model.Config()
	if cfg.InDim != store.PG.Dim {
		return nil, fmt.Errorf("serve: model input dim %d != feature dim %d", cfg.InDim, store.PG.Dim)
	}
	if cfg.Classes != ds.Spec.NumClasses {
		return nil, fmt.Errorf("serve: model classes %d != dataset classes %d", cfg.Classes, ds.Spec.NumClasses)
	}
	if len(opts.Fanouts) != cfg.Layers {
		return nil, fmt.Errorf("serve: %d fanouts for a %d-layer model", len(opts.Fanouts), cfg.Layers)
	}
	s := &Server{Opts: opts, Store: store, Model: model}
	devs := store.Comm.Devs
	for r, dev := range devs {
		rep := &replica{id: r, dev: dev, srv: s}
		if r == 0 {
			rep.model = model
		} else {
			mr, ok := gnn.New(model.Name(), cfg).(gnn.LayerwiseModel)
			if !ok {
				return nil, fmt.Errorf("serve: %s replica does not implement LayerwiseModel", model.Name())
			}
			rep.model = mr
		}
		rep.loader = core.NewLoader(store, dev, opts.Fanouts, opts.Seed+int64(r))
		if opts.CacheRows > 0 {
			fc, err := cache.NewDegreeCache(store.PG, dev, opts.CacheRows)
			if err != nil {
				return nil, fmt.Errorf("serve: building replica %d cache: %w", r, err)
			}
			rep.cache = fc
			rep.loader.WithCache(fc)
		}
		rep.tape = autograd.NewTapeArena(tensor.NewArena())
		s.replicas = append(s.replicas, rep)
	}
	if opts.Skew > 1 || (opts.Policy == PolicyCacheAware && opts.CacheRows > 0) {
		s.byDegree = degreeRanking(store)
	}
	return s, nil
}

// Replicas returns the number of serving replicas (GPUs of the node).
func (s *Server) Replicas() int { return len(s.replicas) }

// FeatStoreStats snapshots the paged feature store's BlockCache counters;
// the zero Stats when Options.PagedFeatures is off or the deployment has
// no store (retrieval).
func (s *Server) FeatStoreStats() featstore.Stats {
	if s.Store == nil {
		return featstore.Stats{}
	}
	if fs := s.Store.FeatStore(); fs != nil {
		return fs.Stats()
	}
	return featstore.Stats{}
}

// Caches returns the per-replica feature caches (nil entries when
// Options.CacheRows is 0).
func (s *Server) Caches() []*cache.FeatureCache {
	out := make([]*cache.FeatureCache, len(s.replicas))
	for i, r := range s.replicas {
		out[i] = r.cache
	}
	return out
}

// Run generates the request stream, routes it, serves it, and returns the
// aggregated result. Model weights are synchronized to replica 0's model
// at the start, like infer.Engine.Run. Each call continues the machine's
// virtual clocks from wherever they are; benchmarks Reset between runs.
func (s *Server) Run() (*Result, error) {
	if s.Model != nil {
		for _, rep := range s.replicas[1:] {
			rep.model.Params().CopyFrom(s.Model.Params())
		}
	}
	trace := s.generate()
	if s.index != nil {
		s.buildOracle(trace)
	}
	perReplica := s.route(trace)

	sim.RunParallel(len(s.replicas), func(r int) {
		s.replicas[r].serve(perReplica[r])
	})

	res := s.aggregate(trace)
	return res, nil
}

// numNodes returns the request-node domain: graph nodes for inference,
// indexed embedding rows for retrieval.
func (s *Server) numNodes() int64 {
	if s.index != nil {
		return int64(s.index.N())
	}
	return s.Store.PG.N
}

// generate draws the open-loop arrival process: exponential inter-arrival
// gaps at Opts.Rate, seed nodes uniform or Zipf-skewed by popularity.
// Inference popularity follows the degree ranking (hot = high degree);
// retrieval has no degree notion, so popularity rank is the node ID
// itself (low IDs hottest) — a fixed, documented skew shape.
func (s *Server) generate() []*Request {
	o := s.Opts
	rng := rand.New(rand.NewSource(o.Seed*7919 + 13))
	var zipf *rand.Zipf
	if o.Skew > 1 {
		zipf = rand.NewZipf(rng, o.Skew, 1, uint64(s.numNodes()-1))
	}
	reqs := make([]*Request, o.Requests)
	t := 0.0
	for i := range reqs {
		t += rng.ExpFloat64() / o.Rate
		var node int64
		switch {
		case zipf != nil && s.index != nil:
			// Popularity rank scattered over the table by a fixed odd
			// multiplier: the index shards rows contiguously, so rank==ID
			// would pile every hot query onto replica 0's shard. Hot
			// embeddings hash across shards the way hot training nodes do.
			node = int64((zipf.Uint64() * 2654435761) % uint64(s.numNodes()))
		case zipf != nil:
			node = s.byDegree[int64(zipf.Uint64())]
		default:
			node = rng.Int63n(s.numNodes())
		}
		reqs[i] = &Request{ID: i, Node: node, Arrival: t}
	}
	return reqs
}

// route assigns every request a replica under the configured policy and
// returns the per-replica streams (still in arrival order).
func (s *Server) route(reqs []*Request) [][]*Request {
	out := make([][]*Request, len(s.replicas))
	for _, q := range reqs {
		q.Replica = s.routeOne(q)
		out[q.Replica] = append(out[q.Replica], q)
	}
	return out
}

// routeOne picks the replica for one request. Static by design: routing
// must not depend on queue state, so the replica streams are fixed before
// serving starts and the replicas can run concurrently.
func (s *Server) routeOne(q *Request) int {
	n := len(s.replicas)
	var owner int
	if s.index != nil {
		owner = s.index.RankOfRow(q.Node)
	} else {
		owner = s.Store.PG.Owner[q.Node].Rank()
	}
	switch s.Opts.Policy {
	case PolicyRoundRobin:
		r := s.rr % n
		s.rr++
		return r
	case PolicyOwner:
		return owner
	default: // PolicyCacheAware
		// A row within the cache capacity of the degree ranking is local
		// on its owner and cached everywhere else, so any replica serves
		// it from local memory — spread those round-robin. Cold rows go
		// to their owner, whose shard holds them. Retrieval replicas have
		// no hot-row cache, so the policy degrades to owner routing
		// (the query row gather is then always local).
		if s.index == nil && s.Opts.CacheRows > 0 && s.degreeRank(q.Node) < int64(s.Opts.CacheRows) {
			r := s.rr % n
			s.rr++
			return r
		}
		return owner
	}
}

// degreeRank returns the node's position in the degree ranking (0 =
// highest degree), matching cache.NewDegreeCache's fill order.
func (s *Server) degreeRank(node int64) int64 {
	if s.rankOf == nil {
		s.rankOf = make(map[int64]int64, len(s.byDegree))
		for i, v := range s.byDegree {
			s.rankOf[v] = int64(i)
		}
	}
	return s.rankOf[node]
}

// degreeRanking orders all node IDs by degree descending, ties by ID —
// the exact order cache.NewDegreeCache fills in.
func degreeRanking(store *core.Store) []int64 {
	pg := store.PG
	nodes := make([]int64, pg.N)
	for v := range nodes {
		nodes[v] = int64(v)
	}
	sort.Slice(nodes, func(i, j int) bool {
		di, dj := pg.Degree(pg.Owner[nodes[i]]), pg.Degree(pg.Owner[nodes[j]])
		if di != dj {
			return di > dj
		}
		return nodes[i] < nodes[j]
	})
	return nodes
}
