package serve

import (
	"math"
	"sort"
)

// ReplicaStats summarizes one replica's share of a run.
type ReplicaStats struct {
	Replica  int `json:"replica"`
	Requests int `json:"requests"`
	Served   int `json:"served"`
	Shed     int `json:"shed"`
	TimedOut int `json:"timed_out"`
	Batches  int `json:"batches"`
	// Targets counts unique seed nodes executed; Served minus Targets is
	// the work saved by coalescing duplicate requests within a batch.
	Targets int `json:"targets"`
	// BusySeconds and CopyBusySeconds are the device's compute- and
	// copy-stream busy time over the run.
	BusySeconds     float64 `json:"busy_seconds"`
	CopyBusySeconds float64 `json:"copy_busy_seconds"`
	// CacheHitRate is the feature cache's hit rate (0 without a cache).
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// Result is the aggregated outcome of one serving run. All durations are
// virtual seconds.
type Result struct {
	Offered  int `json:"offered"`
	Served   int `json:"served"`
	Shed     int `json:"shed"`
	TimedOut int `json:"timed_out"`
	Batches  int `json:"batches"`
	// MeanBatch is the mean coalesced batch size (served requests per
	// batch).
	MeanBatch float64 `json:"mean_batch"`
	// Duration spans the first arrival to the last completion (or last
	// arrival when nothing was served).
	Duration float64 `json:"duration"`
	// Throughput is served requests per virtual second over Duration.
	Throughput float64 `json:"throughput_rps"`
	// Latency percentiles over served requests (arrival to completion).
	P50         float64 `json:"p50_latency"`
	P95         float64 `json:"p95_latency"`
	P99         float64 `json:"p99_latency"`
	MeanLatency float64 `json:"mean_latency"`
	MaxLatency  float64 `json:"max_latency"`
	// SLO echoes the configured target; SLOAttainment is the fraction of
	// served requests answered within it, and Goodput the rate of those
	// requests over Duration.
	SLO           float64 `json:"slo"`
	SLOAttainment float64 `json:"slo_attainment"`
	Goodput       float64 `json:"goodput_rps"`

	// Retrieval-workload fields (zero for inference): the configured
	// neighbor count and beam width, and the mean recall@K of served
	// requests against the exact oracle.
	TopK     int     `json:"topk,omitempty"`
	EfSearch int     `json:"ef_search,omitempty"`
	Recall   float64 `json:"recall_at_k,omitempty"`

	PerReplica []ReplicaStats `json:"per_replica"`
	// Trace is the full request trace in arrival order; it is what the
	// determinism tests compare bit-for-bit.
	Trace []*Request `json:"-"`
}

// aggregate folds the served trace into a Result, replica stats merged in
// replica order so the output is deterministic.
func (s *Server) aggregate(trace []*Request) *Result {
	res := &Result{Offered: len(trace), SLO: s.Opts.SLO, Trace: trace}
	if s.index != nil {
		res.TopK = s.Opts.TopK
		res.EfSearch = s.Opts.EfSearch
		if res.EfSearch == 0 {
			res.EfSearch = s.index.Opts.EfSearch
		}
	}
	var lat []float64
	within := 0
	lastDone := 0.0
	firstArrival := 0.0
	lastArrival := 0.0
	if len(trace) > 0 {
		firstArrival = trace[0].Arrival
		lastArrival = trace[len(trace)-1].Arrival
	}
	for _, q := range trace {
		switch q.Outcome {
		case OutcomeServed:
			res.Served++
			res.Recall += q.Recall
			l := q.Latency()
			lat = append(lat, l)
			res.MeanLatency += l
			if l > res.MaxLatency {
				res.MaxLatency = l
			}
			if l <= s.Opts.SLO {
				within++
			}
			if q.Done > lastDone {
				lastDone = q.Done
			}
		case OutcomeShed:
			res.Shed++
		case OutcomeTimedOut:
			res.TimedOut++
		}
	}
	end := lastDone
	if end < lastArrival {
		end = lastArrival
	}
	res.Duration = end - firstArrival
	if res.Served > 0 {
		res.Recall /= float64(res.Served)
		res.MeanLatency /= float64(res.Served)
		res.P50 = percentile(lat, 0.50)
		res.P95 = percentile(lat, 0.95)
		res.P99 = percentile(lat, 0.99)
		res.SLOAttainment = float64(within) / float64(res.Served)
	}
	if res.Duration > 0 {
		res.Throughput = float64(res.Served) / res.Duration
		res.Goodput = float64(within) / res.Duration
	}
	for _, rep := range s.replicas {
		st := ReplicaStats{
			Replica:         rep.id,
			Batches:         rep.batches,
			Targets:         rep.targets,
			BusySeconds:     rep.dev.Stats.BusySeconds,
			CopyBusySeconds: rep.dev.Stats.CopyBusySeconds,
		}
		if rep.cache != nil {
			st.CacheHitRate = rep.cache.HitRate()
		}
		res.PerReplica = append(res.PerReplica, st)
	}
	for _, q := range trace {
		st := &res.PerReplica[q.Replica]
		st.Requests++
		switch q.Outcome {
		case OutcomeServed:
			st.Served++
		case OutcomeShed:
			st.Shed++
		case OutcomeTimedOut:
			st.TimedOut++
		}
	}
	res.Batches = 0
	for _, st := range res.PerReplica {
		res.Batches += st.Batches
	}
	if res.Batches > 0 {
		res.MeanBatch = float64(res.Served) / float64(res.Batches)
	}
	return res
}

// percentile returns the nearest-rank p-quantile (0 < p <= 1) of the
// values; it sorts a copy, so the caller's order is preserved.
func percentile(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	k := int(math.Ceil(p*float64(len(s)))) - 1
	if k < 0 {
		k = 0
	}
	if k >= len(s) {
		k = len(s) - 1
	}
	return s[k]
}
