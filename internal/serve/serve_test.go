package serve_test

import (
	"math"
	"reflect"
	"testing"

	"wholegraph/internal/dataset"
	"wholegraph/internal/gnn"
	"wholegraph/internal/serve"
	"wholegraph/internal/sim"
	"wholegraph/internal/spops"
)

// testDataset generates the small serving graph shared by the tests.
func testDataset(t testing.TB) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.OgbnProducts.Scaled(0.001))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// newServer builds a fresh machine with the given replica count, a model
// and a server, and resets the machine so runs measure steady-state
// serving only.
func newServer(t testing.TB, ds *dataset.Dataset, replicas int, opts serve.Options) (*sim.Machine, *serve.Server) {
	t.Helper()
	cfg := sim.DGXA100(1)
	cfg.GPUsPerNode = replicas
	m := sim.NewMachine(cfg)
	model := gnn.NewSAGE(gnn.Config{
		InDim: ds.Spec.FeatDim, Hidden: 16, Classes: ds.Spec.NumClasses,
		Layers: len(opts.Normalize().Fanouts), Backend: spops.BackendNative, Seed: 7,
	})
	s, err := serve.New(m, 0, ds, model, opts)
	if err != nil {
		t.Fatal(err)
	}
	m.Reset()
	return m, s
}

func baseOpts() serve.Options {
	return serve.Options{
		Rate:     5000,
		Requests: 600,
		MaxBatch: 16,
		MaxDelay: 0.5e-3,
		SLO:      20e-3,
		Fanouts:  []int{4, 4},
		Seed:     3,
	}
}

func run(t testing.TB, ds *dataset.Dataset, replicas int, opts serve.Options) *serve.Result {
	t.Helper()
	_, s := newServer(t, ds, replicas, opts)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestServeBasics(t *testing.T) {
	ds := testDataset(t)
	res := run(t, ds, 2, baseOpts())
	if res.Offered != 600 {
		t.Fatalf("offered %d != 600", res.Offered)
	}
	if res.Served+res.Shed+res.TimedOut != res.Offered {
		t.Fatalf("outcome counts %d+%d+%d don't sum to offered %d",
			res.Served, res.Shed, res.TimedOut, res.Offered)
	}
	if res.Served == 0 {
		t.Fatal("nothing served")
	}
	if res.Batches == 0 || res.MeanBatch < 1 {
		t.Fatalf("batches %d, mean batch %.2f", res.Batches, res.MeanBatch)
	}
	if !(res.P50 <= res.P95 && res.P95 <= res.P99 && res.P99 <= res.MaxLatency) {
		t.Fatalf("percentiles not monotone: p50 %g p95 %g p99 %g max %g",
			res.P50, res.P95, res.P99, res.MaxLatency)
	}
	if res.P50 <= 0 {
		t.Fatalf("p50 %g not positive", res.P50)
	}
	if res.Throughput <= 0 || res.Duration <= 0 {
		t.Fatalf("throughput %g duration %g", res.Throughput, res.Duration)
	}
	if res.SLOAttainment < 0 || res.SLOAttainment > 1 {
		t.Fatalf("SLO attainment %g outside [0,1]", res.SLOAttainment)
	}
	for _, q := range res.Trace {
		if q.Outcome != serve.OutcomeServed {
			continue
		}
		if q.Start < q.Arrival {
			t.Fatalf("request %d started %.6f before arrival %.6f", q.ID, q.Start, q.Arrival)
		}
		if q.Done <= q.Start {
			t.Fatalf("request %d done %.6f not after start %.6f", q.ID, q.Done, q.Start)
		}
		if q.BatchSize < 1 || q.BatchSize > 16 {
			t.Fatalf("request %d batch size %d outside [1,16]", q.ID, q.BatchSize)
		}
	}
}

// TestServeDeterministic pins the acceptance criterion: same seed and
// config produce a bit-identical request trace and latency percentiles.
func TestServeDeterministic(t *testing.T) {
	ds := testDataset(t)
	a := run(t, ds, 2, baseOpts())
	b := run(t, ds, 2, baseOpts())
	if !reflect.DeepEqual(a.Trace, b.Trace) {
		t.Fatal("request traces differ between identically-seeded runs")
	}
	if a.P50 != b.P50 || a.P95 != b.P95 || a.P99 != b.P99 {
		t.Fatalf("percentiles differ: (%g,%g,%g) vs (%g,%g,%g)",
			a.P50, a.P95, a.P99, b.P50, b.P95, b.P99)
	}
	if !reflect.DeepEqual(a.PerReplica, b.PerReplica) {
		t.Fatal("per-replica stats differ between identically-seeded runs")
	}
}

// TestServeParallelMatchesSerial proves replicas running on real
// goroutines under sim.RunParallel serve bit-identically to serial
// execution.
func TestServeParallelMatchesSerial(t *testing.T) {
	ds := testDataset(t)
	par := run(t, ds, 4, baseOpts())

	prev := sim.SetParallel(false)
	defer sim.SetParallel(prev)
	ser := run(t, ds, 4, baseOpts())

	if !reflect.DeepEqual(par.Trace, ser.Trace) {
		t.Fatal("parallel trace differs from serial trace")
	}
	if !reflect.DeepEqual(par.PerReplica, ser.PerReplica) {
		t.Fatal("parallel per-replica stats differ from serial")
	}
	if par.P99 != ser.P99 || par.Throughput != ser.Throughput {
		t.Fatalf("parallel summary differs: p99 %g vs %g, throughput %g vs %g",
			par.P99, ser.P99, par.Throughput, ser.Throughput)
	}
}

// TestBatchingBeatsBatchOne pins the serving benchmark's claim: at a rate
// that saturates unbatched replicas, dynamic batching serves more
// requests per second at equal or better p99.
func TestBatchingBeatsBatchOne(t *testing.T) {
	ds := testDataset(t)
	opts := baseOpts()
	opts.Rate = 80000 // ~2x the two replicas' unbatched capacity
	opts.Deadline = opts.SLO
	opts.QueueCap = 128 // same absolute queue bound for both modes

	batched := run(t, ds, 2, opts)

	opts1 := opts
	opts1.MaxBatch = 1
	single := run(t, ds, 2, opts1)

	if batched.Throughput <= single.Throughput {
		t.Fatalf("batched throughput %.1f rps not above batch=1 %.1f rps",
			batched.Throughput, single.Throughput)
	}
	if single.Served > 0 && batched.P99 > single.P99 {
		t.Fatalf("batched p99 %.4fs worse than batch=1 %.4fs", batched.P99, single.P99)
	}
	if batched.MeanBatch <= 1.2 {
		t.Fatalf("dynamic batcher barely coalescing: mean batch %.2f", batched.MeanBatch)
	}
}

// TestAdmissionControl drives the server far past capacity with a tiny
// queue and checks that shedding and deadline timeouts engage.
func TestAdmissionControl(t *testing.T) {
	ds := testDataset(t)
	opts := baseOpts()
	opts.Rate = 200000
	opts.Requests = 400
	opts.MaxBatch = 4
	opts.QueueCap = 8
	opts.Deadline = 2e-3
	res := run(t, ds, 1, opts)
	if res.Shed == 0 {
		t.Error("overloaded bounded queue shed nothing")
	}
	if res.Served+res.Shed+res.TimedOut != res.Offered {
		t.Errorf("outcomes %d+%d+%d != offered %d", res.Served, res.Shed, res.TimedOut, res.Offered)
	}
	// Deadlines bound the queueing delay of anything that did run: no
	// served request can have waited longer than Deadline for launch.
	for _, q := range res.Trace {
		if q.Outcome == serve.OutcomeServed && q.Start-q.Arrival > opts.Deadline+1e-12 {
			t.Fatalf("request %d launched %.6fs after arrival, deadline %.6fs",
				q.ID, q.Start-q.Arrival, opts.Deadline)
		}
	}
}

// TestDeadlineTimeouts uses a deadline shorter than the batcher's delay so
// delayed requests provably expire.
func TestDeadlineTimeouts(t *testing.T) {
	ds := testDataset(t)
	opts := baseOpts()
	opts.Rate = 200000
	opts.Requests = 300
	opts.MaxBatch = 2
	opts.QueueCap = 1000 // no shedding: timeouts must do the bounding
	opts.Deadline = 0.5e-3
	res := run(t, ds, 1, opts)
	if res.TimedOut == 0 {
		t.Error("expected deadline timeouts under overload with an unbounded queue")
	}
	if res.Shed != 0 {
		t.Errorf("queue cap %d should not shed, got %d", opts.QueueCap, res.Shed)
	}
}

func TestRoutingPolicies(t *testing.T) {
	ds := testDataset(t)

	t.Run("round-robin", func(t *testing.T) {
		opts := baseOpts()
		opts.Policy = serve.PolicyRoundRobin
		res := run(t, ds, 4, opts)
		for i, q := range res.Trace {
			if q.Replica != i%4 {
				t.Fatalf("request %d routed to %d, want %d", i, q.Replica, i%4)
			}
		}
	})

	t.Run("owner", func(t *testing.T) {
		opts := baseOpts()
		opts.Policy = serve.PolicyOwner
		_, s := newServer(t, ds, 4, opts)
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		pg := s.Store.PG
		for _, q := range res.Trace {
			if q.Replica != pg.Owner[q.Node].Rank() {
				t.Fatalf("request %d for node %d routed to %d, owner is %d",
					q.ID, q.Node, q.Replica, pg.Owner[q.Node].Rank())
			}
		}
	})

	t.Run("cache-aware", func(t *testing.T) {
		opts := baseOpts()
		opts.Policy = serve.PolicyCacheAware
		opts.CacheRows = 100
		opts.Skew = 1.3 // popular nodes are the cached ones
		_, s := newServer(t, ds, 4, opts)
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		// Hot requests spread across replicas; cold ones go to owners.
		pg := s.Store.PG
		offOwner := 0
		for _, q := range res.Trace {
			if q.Replica != pg.Owner[q.Node].Rank() {
				offOwner++
			}
		}
		if offOwner == 0 {
			t.Error("cache-aware routing never spread a hot node off its owner")
		}
		// Cache-aware placement keeps gathers local: every replica's seed
		// rows are cached or owner-local, so hit rates should be high.
		for i, c := range s.Caches() {
			if c == nil {
				t.Fatalf("replica %d has no cache", i)
			}
		}
	})
}

// TestCoalescing pins request coalescing: duplicate seed nodes inside one
// batch run once but answer every requester.
func TestCoalescing(t *testing.T) {
	ds := testDataset(t)
	opts := baseOpts()
	opts.Skew = 1.8 // heavy duplication of the hottest nodes
	opts.Requests = 400
	res := run(t, ds, 1, opts)
	var targets int
	for _, st := range res.PerReplica {
		targets += st.Targets
	}
	if targets >= res.Served {
		t.Fatalf("no coalescing: %d unique targets for %d served requests", targets, res.Served)
	}
	for _, q := range res.Trace {
		if q.Outcome == serve.OutcomeServed && q.Class < 0 {
			t.Fatalf("request %d served without a prediction", q.ID)
		}
	}
}

// TestOverlap verifies the dual-stream pipeline actually overlaps: under
// sustained load the copy stream accumulates busy time concurrent with
// compute, and the makespan is shorter than the serialized sum of the two.
func TestOverlap(t *testing.T) {
	ds := testDataset(t)
	opts := baseOpts()
	opts.Rate = 1e6 // saturate so batches queue back-to-back
	opts.Requests = 300
	opts.QueueCap = 1000
	m, s := newServer(t, ds, 1, opts)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	st := res.PerReplica[0]
	if st.CopyBusySeconds <= 0 || st.BusySeconds <= 0 {
		t.Fatalf("expected busy time on both streams: compute %g copy %g",
			st.BusySeconds, st.CopyBusySeconds)
	}
	span := m.MaxTime()
	serialized := st.BusySeconds + st.CopyBusySeconds
	if span >= serialized {
		t.Fatalf("no overlap: makespan %.6f >= serialized busy %.6f", span, serialized)
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := []serve.Options{
		{Rate: -1},
		{Requests: -5},
		{MaxBatch: -1},
		{MaxDelay: -1},
		{Deadline: -1},
		{QueueCap: -1},
		{Skew: 0.5},
		{Policy: "nope"},
	}
	for i, o := range bad {
		if err := o.Normalize().Validate(); err == nil {
			t.Errorf("case %d: invalid options %+v accepted", i, o)
		}
	}
	if err := (serve.Options{}).Normalize().Validate(); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
}

func TestPercentileMath(t *testing.T) {
	// Exercised through a run with a known tiny trace: one replica, huge
	// MaxDelay forces full batches, so latencies are deterministic and the
	// percentile ordering plus SLO accounting can be cross-checked by
	// recomputation.
	ds := testDataset(t)
	opts := baseOpts()
	opts.Requests = 64
	res := run(t, ds, 1, opts)
	var lat []float64
	within := 0
	for _, q := range res.Trace {
		if q.Outcome == serve.OutcomeServed {
			lat = append(lat, q.Latency())
			if q.Latency() <= res.SLO {
				within++
			}
		}
	}
	if len(lat) != res.Served {
		t.Fatalf("trace has %d served, result says %d", len(lat), res.Served)
	}
	if got := float64(within) / float64(res.Served); math.Abs(got-res.SLOAttainment) > 1e-12 {
		t.Fatalf("SLO attainment %g, recomputed %g", res.SLOAttainment, got)
	}
	mean := 0.0
	for _, l := range lat {
		mean += l
	}
	mean /= float64(len(lat))
	if math.Abs(mean-res.MeanLatency) > 1e-9 {
		t.Fatalf("mean latency %g, recomputed %g", res.MeanLatency, mean)
	}
}
