package nn

import (
	"math"
	"math/rand"
	"testing"

	"wholegraph/internal/autograd"
	"wholegraph/internal/sim"
	"wholegraph/internal/tensor"
)

func TestLinearLearnsRegression(t *testing.T) {
	// Fit y = x*Wtrue with a single Linear via Adam; loss must collapse.
	rng := rand.New(rand.NewSource(1))
	wTrue := tensor.Randn(4, 2, 1, rng)
	x := tensor.Randn(64, 4, 1, rng)
	y := tensor.MatMul(x, wTrue)

	var ps ParamSet
	lin := NewLinear(&ps, "fit", 4, 2, rng)
	opt := NewAdam(0.05)

	var first, last float64
	for it := 0; it < 300; it++ {
		tp := autograd.NewTape()
		ps.Bind(tp)
		pred := lin.Apply(nil, tp.Const(x))
		// MSE loss gradient: 2*(pred-y)/n.
		diff := tensor.New(64, 2)
		var loss float64
		for i := range diff.V {
			d := pred.Value.V[i] - y.V[i]
			diff.V[i] = 2 * d / float32(len(diff.V))
			loss += float64(d) * float64(d)
		}
		loss /= float64(len(diff.V))
		if it == 0 {
			first = loss
		}
		last = loss
		tp.Backward(pred, diff)
		opt.Step(nil, &ps)
	}
	if last > first/100 {
		t.Errorf("loss did not collapse: first %g last %g", first, last)
	}
}

func TestParamSetBookkeeping(t *testing.T) {
	var ps ParamSet
	rng := rand.New(rand.NewSource(2))
	NewLinear(&ps, "a", 3, 5, rng)
	NewLinear(&ps, "b", 5, 2, rng)
	if len(ps.Params()) != 4 {
		t.Fatalf("params = %d, want 4 (2 W + 2 B)", len(ps.Params()))
	}
	if ps.NumElements() != 3*5+5+5*2+2 {
		t.Fatalf("elements = %d", ps.NumElements())
	}
	names := map[string]bool{}
	for _, p := range ps.Params() {
		names[p.Name] = true
	}
	for _, want := range []string{"a.W", "a.B", "b.W", "b.B"} {
		if !names[want] {
			t.Errorf("missing param %s", want)
		}
	}
}

func TestVarPanicsBeforeBind(t *testing.T) {
	var ps ParamSet
	p := ps.New("w", tensor.New(1, 1))
	defer func() {
		if recover() == nil {
			t.Error("Var before Bind did not panic")
		}
	}()
	p.Var()
}

func TestAdamSkipsGradlessParams(t *testing.T) {
	var ps ParamSet
	rng := rand.New(rand.NewSource(3))
	used := NewLinear(&ps, "used", 2, 2, rng)
	unused := NewLinear(&ps, "unused", 2, 2, rng)
	before := unused.W.W.Clone()

	tp := autograd.NewTape()
	ps.Bind(tp)
	x := tp.Const(tensor.Randn(4, 2, 1, rng))
	y := used.Apply(nil, x)
	seed := tensor.New(4, 2)
	for i := range seed.V {
		seed.V[i] = 1
	}
	tp.Backward(y, seed)
	NewAdam(0.1).Step(nil, &ps)

	for i := range before.V {
		if unused.W.W.V[i] != before.V[i] {
			t.Fatal("unused parameter was updated")
		}
	}
	if used.W.Grad() == nil {
		t.Fatal("used parameter has no grad")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = sum(w^2) by feeding grad = 2w directly.
	var ps ParamSet
	w := ps.New("w", tensor.FromSlice(1, 3, []float32{5, -7, 3}))
	opt := NewAdam(0.1)
	for it := 0; it < 500; it++ {
		tp := autograd.NewTape()
		ps.Bind(tp)
		g := tensor.New(1, 3)
		for i, v := range w.W.V {
			g.V[i] = 2 * v
		}
		w.Var().AccumGrad(g)
		opt.Step(nil, &ps)
	}
	for i, v := range w.W.V {
		if math.Abs(float64(v)) > 1e-2 {
			t.Errorf("w[%d] = %g, want ~0", i, v)
		}
	}
}

func TestChargingAdvancesDevice(t *testing.T) {
	m := sim.NewMachine(sim.DGXA100(1))
	d := m.Devs[0]
	ChargeLinear(d, 1024, 256, 256)
	if d.Now() == 0 || d.Stats.Kernels != 3 {
		t.Errorf("ChargeLinear: now=%g kernels=%d", d.Now(), d.Stats.Kernels)
	}
	t0 := d.Now()
	ChargeElementwise(d, 1<<20)
	if d.Now() <= t0 {
		t.Error("ChargeElementwise did not advance clock")
	}
	// nil device is a no-op.
	ChargeLinear(nil, 10, 10, 10)
	ChargeElementwise(nil, 10)
}

func TestAdamChargesDevice(t *testing.T) {
	m := sim.NewMachine(sim.DGXA100(1))
	d := m.Devs[0]
	var ps ParamSet
	w := ps.New("w", tensor.New(10, 10))
	tp := autograd.NewTape()
	ps.Bind(tp)
	w.Var().AccumGrad(tensor.New(10, 10))
	NewAdam(0.1).Step(d, &ps)
	if d.Now() == 0 {
		t.Error("Adam step did not charge device")
	}
}

func TestWeightDecayShrinksUnusedDirections(t *testing.T) {
	// With zero gradients, AdamW decay alone must shrink the weights;
	// plain Adam must leave them unchanged.
	run := func(decay float64) float32 {
		var ps ParamSet
		w := ps.New("w", tensor.FromSlice(1, 2, []float32{4, -4}))
		opt := NewAdam(0.1)
		opt.WeightDecay = decay
		for i := 0; i < 50; i++ {
			tp := autograd.NewTape()
			ps.Bind(tp)
			w.Var().AccumGrad(tensor.New(1, 2)) // zero gradient
			opt.Step(nil, &ps)
		}
		return w.W.MaxAbs()
	}
	if got := run(0); got != 4 {
		t.Errorf("no-decay weights moved: %g", got)
	}
	if got := run(0.1); got >= 4 {
		t.Errorf("decay did not shrink weights: %g", got)
	}
}

func TestClipGradNorm(t *testing.T) {
	var ps ParamSet
	w := ps.New("w", tensor.New(1, 2))
	tp := autograd.NewTape()
	ps.Bind(tp)
	w.Var().AccumGrad(tensor.FromSlice(1, 2, []float32{3, 4})) // norm 5
	if norm := ClipGradNorm(&ps, 1); math.Abs(norm-5) > 1e-6 {
		t.Fatalf("pre-clip norm = %g, want 5", norm)
	}
	g := w.Grad()
	if math.Abs(float64(g.V[0])-0.6) > 1e-6 || math.Abs(float64(g.V[1])-0.8) > 1e-6 {
		t.Fatalf("clipped grad = %v, want [0.6 0.8]", g.V)
	}
	// Within bounds: untouched.
	if norm := ClipGradNorm(&ps, 10); math.Abs(norm-1) > 1e-6 {
		t.Fatalf("second norm = %g, want 1", norm)
	}
	if g.V[0] != 0.6 {
		t.Error("in-bounds clip modified gradients")
	}
	// maxNorm <= 0 is a no-op.
	ClipGradNorm(&ps, 0)
	if g.V[0] != 0.6 {
		t.Error("maxNorm=0 modified gradients")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a ParamSet
	NewLinear(&a, "l1", 4, 8, rng)
	NewLinear(&a, "l2", 8, 3, rng)
	path := t.TempDir() + "/model.ckpt"
	if err := a.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// A fresh model with a different seed must load to identical weights.
	rng2 := rand.New(rand.NewSource(99))
	var b ParamSet
	NewLinear(&b, "l1", 4, 8, rng2)
	NewLinear(&b, "l2", 8, 3, rng2)
	if err := b.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	for i, p := range a.Params() {
		q := b.Params()[i]
		if p.Name != q.Name {
			t.Fatalf("param order changed: %s vs %s", p.Name, q.Name)
		}
		for j := range p.W.V {
			if p.W.V[j] != q.W.V[j] {
				t.Fatalf("param %s[%d] differs after load", p.Name, j)
			}
		}
	}
}

func TestCheckpointRejectsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var a ParamSet
	NewLinear(&a, "l1", 4, 8, rng)
	path := t.TempDir() + "/model.ckpt"
	if err := a.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Wrong shape.
	var b ParamSet
	NewLinear(&b, "l1", 4, 9, rng)
	if err := b.LoadFile(path); err == nil {
		t.Error("shape mismatch accepted")
	}
	// Wrong name.
	var c ParamSet
	NewLinear(&c, "other", 4, 8, rng)
	if err := c.LoadFile(path); err == nil {
		t.Error("name mismatch accepted")
	}
	// Wrong parameter count.
	var d ParamSet
	NewLinear(&d, "l1", 4, 8, rng)
	NewLinear(&d, "l2", 8, 3, rng)
	if err := d.LoadFile(path); err == nil {
		t.Error("count mismatch accepted")
	}
}
