// Package nn provides the neural-network training substrate: named
// trainable parameters, a Linear layer, the Adam optimizer, and helpers for
// charging dense-layer costs to a simulated device. GNN-specific layers
// live in internal/gnn; the sparse message-passing ops in internal/spops.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"wholegraph/internal/autograd"
	"wholegraph/internal/sim"
	"wholegraph/internal/tensor"
)

// Param is one trainable tensor plus its optimizer state.
type Param struct {
	Name string
	W    *tensor.Dense

	// cur is this iteration's tape variable; its Grad is consumed by the
	// optimizer after Backward.
	cur *autograd.Var
	// Adam moments.
	m, v *tensor.Dense
}

// ParamSet is the collection of a model's parameters.
type ParamSet struct {
	list []*Param
}

// New registers a parameter with the given name and initial value.
func (s *ParamSet) New(name string, w *tensor.Dense) *Param {
	p := &Param{Name: name, W: w, m: tensor.New(w.R, w.C), v: tensor.New(w.R, w.C)}
	s.list = append(s.list, p)
	return p
}

// Params returns the registered parameters in registration order.
func (s *ParamSet) Params() []*Param { return s.list }

// NumElements returns the total trainable element count.
func (s *ParamSet) NumElements() int64 {
	var n int64
	for _, p := range s.list {
		n += int64(len(p.W.V))
	}
	return n
}

// Bind creates fresh tape variables for every parameter at the start of an
// iteration. It must be called once per tape before layers use Var. Bind
// mutates the parameters' current-tape binding, so goroutines that forward
// concurrently need their own ParamSet (see CopyFrom).
func (s *ParamSet) Bind(tp *autograd.Tape) {
	for _, p := range s.list {
		p.cur = tp.Param(p.W)
	}
}

// BoundVars appends the parameters' current tape variables to dst and
// returns it. The step-graph trainer snapshots these right after a capture
// iteration so replays can restore them with RebindVars.
func (s *ParamSet) BoundVars(dst []*autograd.Var) []*autograd.Var {
	for _, p := range s.list {
		dst = append(dst, p.Var())
	}
	return dst
}

// RebindVars restores a binding snapshot taken with BoundVars: parameter i
// becomes bound to vs[i]. After a graph replay the optimizer then reads its
// gradients from the captured tape's variables.
func (s *ParamSet) RebindVars(vs []*autograd.Var) {
	if len(vs) != len(s.list) {
		panic(fmt.Sprintf("nn: RebindVars with %d vars for %d params", len(vs), len(s.list)))
	}
	for i, p := range s.list {
		p.cur = vs[i]
	}
}

// CopyFrom copies src's parameter values into s, matching by registration
// order. It panics if the sets have different structure; optimizer state and
// tape bindings are not copied. It is how per-goroutine model replicas are
// refreshed from a shared master before a parallel forward pass.
func (s *ParamSet) CopyFrom(src *ParamSet) {
	if len(s.list) != len(src.list) {
		panic(fmt.Sprintf("nn: CopyFrom across different models: %d vs %d params", len(s.list), len(src.list)))
	}
	for i, p := range s.list {
		q := src.list[i]
		if p.W.R != q.W.R || p.W.C != q.W.C {
			panic(fmt.Sprintf("nn: CopyFrom shape mismatch at %s: %dx%d vs %dx%d", p.Name, p.W.R, p.W.C, q.W.R, q.W.C))
		}
		copy(p.W.V, q.W.V)
	}
}

// Var returns the parameter's variable on the currently bound tape.
func (p *Param) Var() *autograd.Var {
	if p.cur == nil {
		panic(fmt.Sprintf("nn: parameter %s used before Bind", p.Name))
	}
	return p.cur
}

// Grad returns this iteration's gradient, or nil if none flowed.
func (p *Param) Grad() *tensor.Dense {
	if p.cur == nil {
		return nil
	}
	return p.cur.Grad
}

// Linear is a dense layer y = x*W + b.
type Linear struct {
	In, Out int
	W, B    *Param
}

// NewLinear creates a Glorot-initialized Linear registered in s.
func NewLinear(s *ParamSet, name string, in, out int, rng *rand.Rand) *Linear {
	return &Linear{
		In: in, Out: out,
		W: s.New(name+".W", tensor.Glorot(in, out, rng)),
		B: s.New(name+".B", tensor.New(1, out)),
	}
}

// Apply computes x*W + b on the tape, charging the forward GEMM to dev now
// and the two backward GEMMs at tape-replay time via backward hooks on the
// matmul node — so backward compute lands on the device clock exactly when
// the gradient work happens, which is what lets gradient communication
// overlap with it. The dX and dW charges are registered as separate
// targeted hooks (OnBackwardFor): they are independent GEMMs, and the
// whole-step scheduler exploits that by placing them on different streams.
// The forward charge is captured after the matmul step so it rides the
// matmul's DAG node on replays. dev may be nil for pure computation.
func (l *Linear) Apply(dev *sim.Device, x *autograd.Var) *autograd.Var {
	tp := x.Tape()
	ChargeLinearForward(dev, x.Value.R, l.In, l.Out)
	wv := l.W.Var()
	mm := autograd.MatMul(x, wv)
	if dev != nil && tp.Capturing() {
		tp.Capture(func() { ChargeLinearForward(dev, x.Value.R, l.In, l.Out) })
	}
	if dev != nil {
		// Row count is read live so replayed iterations charge the GEMMs of
		// their own batch size.
		mm.OnBackwardFor(x, func() { ChargeLinearBackwardDX(dev, x.Value.R, l.In, l.Out) })
		mm.OnBackwardFor(wv, func() { ChargeLinearBackwardDW(dev, x.Value.R, l.In, l.Out) })
	}
	return autograd.AddBias(mm, l.B.Var())
}

// ChargeLinearForward charges dev the forward GEMM of a Linear of the given
// sizes. nil dev charges nothing.
func ChargeLinearForward(dev *sim.Device, rows, in, out int) {
	if dev == nil {
		return
	}
	dev.Gemm(rows, out, in, "linear.fwd")
}

// ChargeLinearBackwardDX charges dev the dX backward GEMM of a Linear of
// the given sizes. nil dev charges nothing.
func ChargeLinearBackwardDX(dev *sim.Device, rows, in, out int) {
	if dev == nil {
		return
	}
	dev.Gemm(rows, in, out, "linear.bwd.dx")
}

// ChargeLinearBackwardDW charges dev the dW backward GEMM of a Linear of
// the given sizes. nil dev charges nothing.
func ChargeLinearBackwardDW(dev *sim.Device, rows, in, out int) {
	if dev == nil {
		return
	}
	dev.Gemm(in, out, rows, "linear.bwd.dw")
}

// ChargeLinearBackward charges dev the two backward GEMMs (dX and dW) of a
// Linear of the given sizes. nil dev charges nothing.
func ChargeLinearBackward(dev *sim.Device, rows, in, out int) {
	ChargeLinearBackwardDX(dev, rows, in, out)
	ChargeLinearBackwardDW(dev, rows, in, out)
}

// ChargeLinear charges dev for a Linear of the given sizes: one forward
// GEMM plus the two backward GEMMs (dX and dW). nil dev charges nothing.
func ChargeLinear(dev *sim.Device, rows, in, out int) {
	ChargeLinearForward(dev, rows, in, out)
	ChargeLinearBackward(dev, rows, in, out)
}

// ClipGradNorm rescales all gradients in s so their global L2 norm is at
// most maxNorm, returning the pre-clip norm. A standard stabilizer for GAT
// training; it is a no-op when the norm is already within bounds or when
// maxNorm <= 0.
func ClipGradNorm(s *ParamSet, maxNorm float64) float64 {
	var sq float64
	for _, p := range s.Params() {
		if g := p.Grad(); g != nil {
			for _, v := range g.V {
				sq += float64(v) * float64(v)
			}
		}
	}
	norm := math.Sqrt(sq)
	if maxNorm <= 0 || norm <= maxNorm || norm == 0 {
		return norm
	}
	scale := float32(maxNorm / norm)
	for _, p := range s.Params() {
		if g := p.Grad(); g != nil {
			for i := range g.V {
				g.V[i] *= scale
			}
		}
	}
	return norm
}

// ChargeElementwiseForward charges dev the forward half of a memory-bound
// elementwise pass over n float32 elements (read + write), e.g. ReLU or
// dropout.
func ChargeElementwiseForward(dev *sim.Device, n int64) {
	if dev == nil {
		return
	}
	dev.Kernel(sim.KernelCost{StreamBytes: float64(4 * n * 2), Tag: "eltwise.fwd"})
}

// ChargeElementwiseBackward charges dev the backward half of an elementwise
// pass (gradient read + write). Layers hook it via OnBackward so the cost
// lands on the device clock when the gradient work actually happens — the
// same replay-time charging Linear's backward GEMMs use — which sharpens
// gradient-bucket ready times for the overlap engine.
func ChargeElementwiseBackward(dev *sim.Device, n int64) {
	if dev == nil {
		return
	}
	dev.Kernel(sim.KernelCost{StreamBytes: float64(4 * n * 2), Tag: "eltwise.bwd"})
}

// ChargeElementwise charges both halves at once (forward-record-time
// charging, kept for callers without a backward pass to hook).
func ChargeElementwise(dev *sim.Device, n int64) {
	ChargeElementwiseForward(dev, n)
	ChargeElementwiseBackward(dev, n)
}

// Adam is the Adam optimizer over a ParamSet. A non-zero WeightDecay turns
// it into AdamW (decoupled decay, applied directly to the weights).
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	WeightDecay           float64
	t                     int
}

// NewAdam returns Adam with the standard defaults and the given learning
// rate.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one Adam update using each parameter's current gradient and
// charges the (memory-bound) update kernels to dev. Parameters with no
// gradient this iteration are skipped.
func (a *Adam) Step(dev *sim.Device, s *ParamSet) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	var touched int64
	for _, p := range s.Params() {
		g := p.Grad()
		if g == nil {
			continue
		}
		touched += int64(len(p.W.V))
		b1, b2 := float32(a.Beta1), float32(a.Beta2)
		decay := float32(a.LR * a.WeightDecay)
		for i := range p.W.V {
			gi := g.V[i]
			p.m.V[i] = b1*p.m.V[i] + (1-b1)*gi
			p.v.V[i] = b2*p.v.V[i] + (1-b2)*gi*gi
			mh := float64(p.m.V[i]) / bc1
			vh := float64(p.v.V[i]) / bc2
			p.W.V[i] -= float32(a.LR*mh/(math.Sqrt(vh)+a.Eps)) + decay*p.W.V[i]
		}
	}
	if dev != nil && touched > 0 {
		// m, v, w reads + writes and g read: ~7 arrays touched.
		dev.Kernel(sim.KernelCost{StreamBytes: float64(7 * 4 * touched), Tag: "adam"})
	}
}
