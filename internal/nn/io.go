package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Model checkpointing: parameters are serialized by name with their shapes
// so a checkpoint can be reloaded into a freshly constructed model of the
// same architecture (optimizer moments are not saved; fine-tuning restarts
// Adam, as PyTorch state-dict loading commonly does too).

const ckptMagic = "WGCK"

// Save writes all parameters (name, shape, float32 data) to w.
func (s *ParamSet) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(ckptMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(s.list))); err != nil {
		return err
	}
	for _, p := range s.list {
		name := []byte(p.Name)
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(name))); err != nil {
			return err
		}
		if _, err := bw.Write(name); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(p.W.R)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(p.W.C)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, p.W.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a checkpoint written by Save into this parameter set. Every
// checkpoint entry must match a registered parameter's name and shape, and
// every registered parameter must be present — architecture mismatches are
// errors, not silent partial loads.
func (s *ParamSet) Load(r io.Reader) error {
	br := bufio.NewReader(r)
	magic := make([]byte, len(ckptMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("nn: reading checkpoint magic: %w", err)
	}
	if string(magic) != ckptMagic {
		return fmt.Errorf("nn: bad checkpoint magic %q", magic)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return err
	}
	byName := make(map[string]*Param, len(s.list))
	for _, p := range s.list {
		byName[p.Name] = p
	}
	if int(count) != len(s.list) {
		return fmt.Errorf("nn: checkpoint has %d parameters, model has %d", count, len(s.list))
	}
	for i := uint32(0); i < count; i++ {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return err
		}
		if nameLen > 4096 {
			return fmt.Errorf("nn: implausible parameter name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return err
		}
		var rows, cols uint32
		if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
			return err
		}
		if err := binary.Read(br, binary.LittleEndian, &cols); err != nil {
			return err
		}
		p, ok := byName[string(name)]
		if !ok {
			return fmt.Errorf("nn: checkpoint parameter %q not in model", name)
		}
		if int(rows) != p.W.R || int(cols) != p.W.C {
			return fmt.Errorf("nn: parameter %q shape %dx%d, model has %dx%d",
				name, rows, cols, p.W.R, p.W.C)
		}
		if err := binary.Read(br, binary.LittleEndian, p.W.V); err != nil {
			return err
		}
	}
	return nil
}

// SaveFile writes the checkpoint to path.
func (s *ParamSet) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a checkpoint from path.
func (s *ParamSet) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Load(f)
}
