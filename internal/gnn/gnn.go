// Package gnn implements the three GNN models the paper evaluates (GCN,
// GraphSAGE with mean aggregation, and GAT with multi-head attention) over
// sampled multi-layer sub-graphs, on top of the autograd tape, the dense nn
// layers and the sparse spops kernels.
//
// The models are framework-agnostic in the paper's sense: the same model
// runs inside the WholeGraph pipeline and inside the DGL-like/PyG-like
// baseline pipelines, with the layer backend (spops.Backend) choosing whose
// kernel implementations carry the compute (Figure 11).
package gnn

import (
	"fmt"
	"math/rand"

	"wholegraph/internal/autograd"
	"wholegraph/internal/nn"
	"wholegraph/internal/sim"
	"wholegraph/internal/spops"
	"wholegraph/internal/tensor"
)

// Batch is one training mini-batch in message-flow-graph form. Blocks[l] is
// the sampled bipartite block consumed by GNN layer l: its NumNodes input
// nodes carry the layer's input features (the block's NumTargets targets
// are the first NumTargets of them), and its targets become the next
// block's input nodes. Feat holds the gathered features of Blocks[0]'s
// input nodes; Labels label the final targets.
type Batch struct {
	Blocks []*spops.SubCSR
	Feat   *tensor.Dense
	Labels []int32
}

// Validate checks the block chaining invariants.
func (b *Batch) Validate() error {
	if len(b.Blocks) == 0 {
		return fmt.Errorf("gnn: batch has no blocks")
	}
	for l, blk := range b.Blocks {
		if err := blk.Validate(); err != nil {
			return fmt.Errorf("gnn: block %d: %w", l, err)
		}
		if l+1 < len(b.Blocks) && blk.NumTargets != b.Blocks[l+1].NumNodes {
			return fmt.Errorf("gnn: block %d targets %d != block %d nodes %d",
				l, blk.NumTargets, l+1, b.Blocks[l+1].NumNodes)
		}
	}
	if b.Feat.R != b.Blocks[0].NumNodes {
		return fmt.Errorf("gnn: feature rows %d != block 0 nodes %d", b.Feat.R, b.Blocks[0].NumNodes)
	}
	last := b.Blocks[len(b.Blocks)-1]
	if len(b.Labels) != last.NumTargets {
		return fmt.Errorf("gnn: %d labels for %d targets", len(b.Labels), last.NumTargets)
	}
	return nil
}

// BatchSize returns the number of final target nodes.
func (b *Batch) BatchSize() int { return b.Blocks[len(b.Blocks)-1].NumTargets }

// Model is a GNN producing logits for a batch's final targets.
type Model interface {
	// Forward binds the parameters on tp and returns the logits
	// [BatchSize x classes]. dev may be nil to skip cost accounting;
	// train enables dropout.
	Forward(dev *sim.Device, tp *autograd.Tape, b *Batch, train bool) *autograd.Var
	// Params exposes the trainable parameters.
	Params() *nn.ParamSet
	// Name identifies the architecture ("gcn", "graphsage", "gat").
	Name() string
}

// LayerwiseModel is a Model whose layers can be applied one at a time to a
// single block, enabling full-graph layer-wise inference (internal/infer).
// All three built-in architectures implement it.
type LayerwiseModel interface {
	Model
	// Config returns the model's hyperparameters.
	Config() Config
	// NumLayers returns the layer count.
	NumLayers() int
	// ForwardLayer applies layer l to block blk over input features x
	// (whose tape must already have the model's parameters bound). last
	// marks the output layer (no activation/dropout); train enables
	// dropout.
	ForwardLayer(dev *sim.Device, l int, blk *spops.SubCSR, x *autograd.Var, last, train bool) *autograd.Var
}

// LayerOutDim returns the width of layer l's output under cfg.
func (c Config) LayerOutDim(l int) int {
	if l == c.Layers-1 {
		return c.Classes
	}
	return c.Hidden
}

// Config holds the common hyperparameters of the paper's evaluation:
// 3 layers, hidden 256, 4 GAT heads, dropout 0.5.
type Config struct {
	InDim   int
	Hidden  int
	Classes int
	Layers  int
	Heads   int // GAT only
	Dropout float32
	Backend spops.Backend
	Seed    int64
}

// PaperConfig returns the evaluation defaults of §IV for a dataset with the
// given feature dimension and class count.
func PaperConfig(inDim, classes int) Config {
	return Config{
		InDim: inDim, Hidden: 256, Classes: classes,
		Layers: 3, Heads: 4, Dropout: 0.5,
		Backend: spops.BackendNative, Seed: 1,
	}
}

// withSelfLoops returns g with one self edge (t -> t) appended to every
// target row; targets are the first NumTargets input nodes, so the column
// index equals the row index. GCN and GAT aggregate over the closed
// neighborhood.
func withSelfLoops(g *spops.SubCSR) *spops.SubCSR {
	return withSelfLoopsInto(new(spops.SubCSR), g)
}

// withSelfLoopsInto is withSelfLoops writing into a caller-owned block,
// truncating and reusing its slices. GCN and GAT keep one block per layer
// as model-private scratch (each concurrent worker or inference rank owns
// its own model replica), so the steady state rebuilds the closed
// neighborhood without allocating. The result is valid until the next call
// with the same dst; backward closures capturing it fire within the same
// iteration, before any rewrite.
func withSelfLoopsInto(dst, g *spops.SubCSR) *spops.SubCSR {
	dst.NumTargets = g.NumTargets
	dst.NumNodes = g.NumNodes
	dst.RowPtr = append(dst.RowPtr[:0], 0)
	dst.Col = dst.Col[:0]
	if g.DupCount != nil {
		dst.DupCount = append(dst.DupCount[:0], g.DupCount...)
	} else {
		if cap(dst.DupCount) < g.NumNodes {
			dst.DupCount = make([]int32, g.NumNodes)
		}
		dst.DupCount = dst.DupCount[:g.NumNodes]
		clear(dst.DupCount)
	}
	if g.EdgeW != nil {
		dst.EdgeW = dst.EdgeW[:0]
	} else {
		dst.EdgeW = nil
	}
	for t := 0; t < g.NumTargets; t++ {
		dst.Col = append(dst.Col, g.Col[g.RowPtr[t]:g.RowPtr[t+1]]...)
		if g.EdgeW != nil {
			dst.EdgeW = append(dst.EdgeW, g.EdgeW[g.RowPtr[t]:g.RowPtr[t+1]]...)
		}
		dst.Col = append(dst.Col, int32(t))
		if g.EdgeW != nil {
			dst.EdgeW = append(dst.EdgeW, 1) // self edges carry unit weight
		}
		dst.DupCount[t]++
		dst.RowPtr = append(dst.RowPtr, int64(len(dst.Col)))
	}
	return dst
}

// loopScratch lazily provides per-layer self-loop blocks for models that
// aggregate over the closed neighborhood.
type loopScratch struct {
	loops []*spops.SubCSR
}

func (s *loopScratch) loop(l int) *spops.SubCSR {
	for len(s.loops) <= l {
		s.loops = append(s.loops, new(spops.SubCSR))
	}
	return s.loops[l]
}

// chargeEltwiseFwd charges the forward half of an elementwise pass over x
// now, and records the charge for replay when the tape is capturing (the
// element count is read live, tracking the batch size).
func chargeEltwiseFwd(dev *sim.Device, x *autograd.Var) {
	nn.ChargeElementwiseForward(dev, int64(len(x.Value.V)))
	if tp := x.Tape(); dev != nil && tp.Capturing() {
		tp.Capture(func() { nn.ChargeElementwiseForward(dev, int64(len(x.Value.V))) })
	}
}

// hookEltwiseBwd charges the backward half of an elementwise pass at
// tape-replay time, when out's gradient is actually computed — mirroring
// how Linear charges its backward GEMMs. in is the op's input: declaring
// the hook as producing in's gradient (OnBackwardFor) gives the charge its
// own node in the whole-step scheduler's DAG.
func hookEltwiseBwd(dev *sim.Device, out, in *autograd.Var) {
	if dev != nil {
		out.OnBackwardFor(in, func() { nn.ChargeElementwiseBackward(dev, int64(len(out.Value.V))) })
	}
}

// captureSelfLoops records blk's self-loop rebuild into the replay program
// when capturing, so replays refresh the scratch block from the live raw
// block before the ops that read it.
func captureSelfLoops(tp *autograd.Tape, dst, raw *spops.SubCSR) {
	if tp.Capturing() {
		tp.Capture(func() { withSelfLoopsInto(dst, raw) })
	}
}

// sliceTargets slices the target rows off a feature block: the capturable
// RowsLive when the tape is recording a step graph, the allocation-lean
// Rows otherwise. blk must be the stable per-slot block pointer so replays
// read the live target count.
func sliceTargets(x *autograd.Var, blk *spops.SubCSR) *autograd.Var {
	if x.Tape().Capturing() {
		return autograd.RowsLive(x, func() int { return blk.NumTargets })
	}
	return autograd.Rows(x, blk.NumTargets)
}

// dropoutVar applies dropout when training with p > 0. The forward charge
// is recorded after the op so its capture rider lands on the dropout's DAG
// node (the element counts are equal either way).
func dropoutVar(dev *sim.Device, x *autograd.Var, p float32, train bool, rng *rand.Rand) *autograd.Var {
	if !train || p <= 0 {
		return x
	}
	out := autograd.Dropout(x, p, rng.Float32)
	chargeEltwiseFwd(dev, out)
	hookEltwiseBwd(dev, out, x)
	return out
}
