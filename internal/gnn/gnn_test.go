package gnn

import (
	"math/rand"
	"testing"

	"wholegraph/internal/autograd"
	"wholegraph/internal/nn"
	"wholegraph/internal/sim"
	"wholegraph/internal/spops"
	"wholegraph/internal/tensor"
)

// randomBlock builds a bipartite block with the given target/node counts.
func randomBlock(rng *rand.Rand, targets, nodes, fanout int) *spops.SubCSR {
	g := &spops.SubCSR{NumTargets: targets, NumNodes: nodes, RowPtr: []int64{0}}
	for t := 0; t < targets; t++ {
		deg := 1 + rng.Intn(fanout)
		for k := 0; k < deg; k++ {
			g.Col = append(g.Col, int32(rng.Intn(nodes)))
		}
		g.RowPtr = append(g.RowPtr, int64(len(g.Col)))
	}
	g.DupCount = make([]int32, nodes)
	for _, c := range g.Col {
		g.DupCount[c]++
	}
	return g
}

// randomBatch chains layer blocks outside-in so Validate passes.
func randomBatch(rng *rand.Rand, batch, layers, fanout, inDim, classes int) *Batch {
	sizes := make([]int, layers+1)
	sizes[layers] = batch
	for l := layers - 1; l >= 0; l-- {
		sizes[l] = sizes[l+1] * 2
	}
	b := &Batch{}
	for l := 0; l < layers; l++ {
		b.Blocks = append(b.Blocks, randomBlock(rng, sizes[l+1], sizes[l], fanout))
	}
	b.Feat = tensor.Randn(sizes[0], inDim, 1, rng)
	b.Labels = make([]int32, batch)
	for i := range b.Labels {
		b.Labels[i] = int32(rng.Intn(classes))
	}
	return b
}

func smallConfig(inDim, classes int, be spops.Backend) Config {
	return Config{
		InDim: inDim, Hidden: 8, Classes: classes,
		Layers: 2, Heads: 2, Dropout: 0, Backend: be, Seed: 3,
	}
}

func TestBatchValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := randomBatch(rng, 4, 2, 3, 5, 3)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := randomBatch(rng, 4, 2, 3, 5, 3)
	bad.Labels = bad.Labels[:2]
	if err := bad.Validate(); err == nil {
		t.Error("short labels accepted")
	}
	bad2 := randomBatch(rng, 4, 2, 3, 5, 3)
	bad2.Feat = tensor.New(3, 5)
	if err := bad2.Validate(); err == nil {
		t.Error("wrong feature rows accepted")
	}
	if (&Batch{}).Validate() == nil {
		t.Error("empty batch accepted")
	}
}

func TestWithSelfLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomBlock(rng, 5, 12, 4)
	sl := withSelfLoops(g)
	if err := sl.Validate(); err != nil {
		t.Fatal(err)
	}
	if sl.NumEdges() != g.NumEdges()+5 {
		t.Fatalf("self-loop edges = %d, want %d", sl.NumEdges(), g.NumEdges()+5)
	}
	for tgt := 0; tgt < 5; tgt++ {
		found := false
		for e := sl.RowPtr[tgt]; e < sl.RowPtr[tgt+1]; e++ {
			if sl.Col[e] == int32(tgt) {
				found = true
			}
		}
		if !found {
			t.Fatalf("target %d missing self loop", tgt)
		}
		if sl.DupCount[tgt] != g.DupCount[tgt]+1 {
			t.Fatalf("self-loop dupcount wrong at %d", tgt)
		}
	}
	// Original untouched.
	if g.NumEdges() == sl.NumEdges() {
		t.Error("withSelfLoops mutated input")
	}
}

func TestModelsProduceLogits(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const batch, inDim, classes = 6, 5, 4
	b := randomBatch(rng, batch, 2, 3, inDim, classes)
	for _, arch := range Architectures() {
		m := New(arch, smallConfig(inDim, classes, spops.BackendNative))
		tp := autograd.NewTape()
		out := m.Forward(nil, tp, b, false)
		if out.Value.R != batch || out.Value.C != classes {
			t.Errorf("%s logits %dx%d, want %dx%d", arch, out.Value.R, out.Value.C, batch, classes)
		}
		if m.Name() != arch && !(arch == "graphsage" && m.Name() == "graphsage") {
			t.Errorf("name mismatch: %s vs %s", m.Name(), arch)
		}
		if m.Params().NumElements() == 0 {
			t.Errorf("%s has no parameters", arch)
		}
	}
}

func TestModelsTrainToOverfit(t *testing.T) {
	// A learnable toy task: the label of each target is determined by
	// which feature dimension dominates among its neighbors. All three
	// architectures must overfit a fixed batch.
	rng := rand.New(rand.NewSource(4))
	const batch, inDim, classes = 16, 4, 4
	b := randomBatch(rng, batch, 2, 3, inDim, classes)
	// Make features one-hot-ish by class of a hidden assignment, and set
	// target labels from their own (target rows are shared across layers).
	hidden := make([]int32, b.Blocks[0].NumNodes)
	for i := range hidden {
		hidden[i] = int32(rng.Intn(classes))
		row := b.Feat.Row(i)
		for j := range row {
			row[j] = 0
		}
		row[hidden[i]] = 1
	}
	for i := range b.Labels {
		b.Labels[i] = hidden[i] // targets are input rows 0..batch-1 of block 0? not exactly, but fixed => learnable
	}

	for _, arch := range Architectures() {
		m := New(arch, smallConfig(inDim, classes, spops.BackendNative))
		opt := nn.NewAdam(0.02)
		var acc float64
		for it := 0; it < 150; it++ {
			tp := autograd.NewTape()
			logits := m.Forward(nil, tp, b, true)
			grad := tensor.New(logits.Value.R, logits.Value.C)
			tensor.CrossEntropy(logits.Value, b.Labels, grad)
			tp.Backward(logits, grad)
			opt.Step(nil, m.Params())
			acc = tensor.Accuracy(logits.Value, b.Labels)
			if acc >= 0.95 {
				break
			}
		}
		if acc < 0.8 {
			t.Errorf("%s failed to overfit fixed batch: accuracy %.2f", arch, acc)
		}
	}
}

func TestForwardChargesDevice(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := randomBatch(rng, 4, 2, 3, 5, 3)
	m := sim.NewMachine(sim.DGXA100(1))
	for i, arch := range Architectures() {
		dev := m.Devs[i]
		model := New(arch, smallConfig(5, 3, spops.BackendNative))
		tp := autograd.NewTape()
		model.Forward(dev, tp, b, true)
		if dev.Now() == 0 {
			t.Errorf("%s forward charged nothing", arch)
		}
	}
}

func TestBackendAffectsCostNotResult(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := randomBatch(rng, 8, 2, 3, 6, 3)
	m := sim.NewMachine(sim.DGXA100(1))
	var ref *tensor.Dense
	var costs []float64
	for i, be := range []spops.Backend{spops.BackendNative, spops.BackendDGL, spops.BackendPyG} {
		dev := m.Devs[i]
		model := New("gcn", smallConfig(6, 3, be))
		tp := autograd.NewTape()
		out := model.Forward(dev, tp, b, false)
		grad := tensor.New(out.Value.R, out.Value.C)
		tensor.CrossEntropy(out.Value, b.Labels, grad)
		tp.Backward(out, grad)
		if ref == nil {
			ref = out.Value
		} else {
			// Backends reorder float accumulation (PyG scales after the
			// reduce), so allow rounding-level differences only.
			for j := range ref.V {
				d := float64(out.Value.V[j] - ref.V[j])
				if d > 1e-4 || d < -1e-4 {
					t.Fatalf("backend %v changed forward result at %d: %g vs %g",
						be, j, out.Value.V[j], ref.V[j])
				}
			}
		}
		costs = append(costs, dev.Now())
	}
	if !(costs[0] <= costs[1] && costs[1] <= costs[2]) {
		t.Errorf("backend costs not ordered: %v", costs)
	}
}

func TestPaperConfig(t *testing.T) {
	cfg := PaperConfig(100, 47)
	if cfg.Hidden != 256 || cfg.Layers != 3 || cfg.Heads != 4 {
		t.Errorf("paper config drifted: %+v", cfg)
	}
}

func TestGATRejectsBadHeads(t *testing.T) {
	cfg := smallConfig(4, 3, spops.BackendNative)
	cfg.Heads = 3 // does not divide hidden 8
	defer func() {
		if recover() == nil {
			t.Error("bad head count did not panic")
		}
	}()
	NewGAT(cfg)
}

func TestNewPanicsOnUnknownArch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown arch did not panic")
		}
	}()
	New("transformer", smallConfig(4, 3, spops.BackendNative))
}

func TestGINTrainsAndInfers(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const batch, inDim, classes = 16, 4, 4
	b := randomBatch(rng, batch, 2, 3, inDim, classes)
	hidden := make([]int32, b.Blocks[0].NumNodes)
	for i := range hidden {
		hidden[i] = int32(rng.Intn(classes))
		row := b.Feat.Row(i)
		for j := range row {
			row[j] = 0
		}
		row[hidden[i]] = 1
	}
	for i := range b.Labels {
		b.Labels[i] = hidden[i]
	}
	m := New("gin", smallConfig(inDim, classes, spops.BackendNative))
	if m.Name() != "gin" {
		t.Fatalf("name = %s", m.Name())
	}
	if _, ok := m.(LayerwiseModel); !ok {
		t.Fatal("GIN does not implement LayerwiseModel")
	}
	opt := nn.NewAdam(0.02)
	var acc float64
	for it := 0; it < 150; it++ {
		tp := autograd.NewTape()
		logits := m.Forward(nil, tp, b, true)
		grad := tensor.New(logits.Value.R, logits.Value.C)
		tensor.CrossEntropy(logits.Value, b.Labels, grad)
		tp.Backward(logits, grad)
		opt.Step(nil, m.Params())
		acc = tensor.Accuracy(logits.Value, b.Labels)
		if acc >= 0.95 {
			break
		}
	}
	if acc < 0.8 {
		t.Errorf("GIN failed to overfit: accuracy %.2f", acc)
	}
}

func TestScaleByScalarPlusOneGradient(t *testing.T) {
	tp := autograd.NewTape()
	xv := tensor.FromSlice(2, 2, []float32{1, 2, 3, 4})
	sv := tensor.FromSlice(1, 1, []float32{0.5})
	x := tp.Param(xv)
	s := tp.Param(sv)
	y := autograd.ScaleByScalarPlusOne(x, s)
	if y.Value.At(1, 1) != 6 {
		t.Fatalf("forward = %v, want 1.5x", y.Value.V)
	}
	seed := tensor.FromSlice(2, 2, []float32{1, 1, 1, 1})
	tp.Backward(y, seed)
	if x.Grad.At(0, 0) != 1.5 {
		t.Errorf("dx = %g, want 1.5", x.Grad.At(0, 0))
	}
	if s.Grad.V[0] != 10 { // sum of x
		t.Errorf("ds = %g, want 10", s.Grad.V[0])
	}
}
