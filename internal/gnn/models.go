package gnn

import (
	"math/rand"

	"wholegraph/internal/autograd"
	"wholegraph/internal/nn"
	"wholegraph/internal/sim"
	"wholegraph/internal/spops"
	"wholegraph/internal/tensor"
)

// GCN is a sampled graph convolutional network: every layer averages over
// the closed (self-loop-augmented) sampled neighborhood and applies a
// linear transform; ReLU and dropout between layers.
type GCN struct {
	cfg    Config
	ps     nn.ParamSet
	layers []*nn.Linear
	rng    *rand.Rand
	sl     loopScratch
}

// NewGCN builds a GCN from cfg.
func NewGCN(cfg Config) *GCN {
	m := &GCN{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	in := cfg.InDim
	for l := 0; l < cfg.Layers; l++ {
		out := cfg.Hidden
		if l == cfg.Layers-1 {
			out = cfg.Classes
		}
		m.layers = append(m.layers, nn.NewLinear(&m.ps, layerName("gcn", l), in, out, m.rng))
		in = out
	}
	return m
}

// Name implements Model.
func (m *GCN) Name() string { return "gcn" }

// Params implements Model.
func (m *GCN) Params() *nn.ParamSet { return &m.ps }

// Forward implements Model.
func (m *GCN) Forward(dev *sim.Device, tp *autograd.Tape, b *Batch, train bool) *autograd.Var {
	m.ps.Bind(tp)
	x := tp.Const(b.Feat)
	for l, blk := range b.Blocks {
		x = m.ForwardLayer(dev, l, blk, x, l == len(b.Blocks)-1, train)
	}
	return x
}

// Config implements LayerwiseModel.
func (m *GCN) Config() Config { return m.cfg }

// NumLayers implements LayerwiseModel.
func (m *GCN) NumLayers() int { return m.cfg.Layers }

// ForwardLayer implements LayerwiseModel. Parameters must already be bound
// on x's tape.
func (m *GCN) ForwardLayer(dev *sim.Device, l int, blk *spops.SubCSR, x *autograd.Var, last, train bool) *autograd.Var {
	slBlk := withSelfLoopsInto(m.sl.loop(l), blk)
	captureSelfLoops(x.Tape(), m.sl.loop(l), blk)
	agg := spops.SpMM(dev, m.cfg.Backend, slBlk, x, nil, spops.AggMean)
	out := m.layers[l].Apply(dev, agg)
	if !last {
		pre := out
		out = autograd.ReLU(out)
		chargeEltwiseFwd(dev, out)
		hookEltwiseBwd(dev, out, pre)
		out = dropoutVar(dev, out, m.cfg.Dropout, train, m.rng)
	}
	return out
}

// SAGE is GraphSAGE with mean aggregation: each layer concatenates the
// target's own features with the mean of its sampled neighbors and applies
// a linear transform (Hamilton et al.'s W·[h_self || h_neigh]).
type SAGE struct {
	cfg    Config
	ps     nn.ParamSet
	layers []*nn.Linear
	rng    *rand.Rand
}

// NewSAGE builds a GraphSAGE model from cfg.
func NewSAGE(cfg Config) *SAGE {
	m := &SAGE{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	in := cfg.InDim
	for l := 0; l < cfg.Layers; l++ {
		out := cfg.Hidden
		if l == cfg.Layers-1 {
			out = cfg.Classes
		}
		m.layers = append(m.layers, nn.NewLinear(&m.ps, layerName("sage", l), 2*in, out, m.rng))
		in = out
	}
	return m
}

// Name implements Model.
func (m *SAGE) Name() string { return "graphsage" }

// Params implements Model.
func (m *SAGE) Params() *nn.ParamSet { return &m.ps }

// Forward implements Model.
func (m *SAGE) Forward(dev *sim.Device, tp *autograd.Tape, b *Batch, train bool) *autograd.Var {
	m.ps.Bind(tp)
	x := tp.Const(b.Feat)
	for l, blk := range b.Blocks {
		x = m.ForwardLayer(dev, l, blk, x, l == len(b.Blocks)-1, train)
	}
	return x
}

// Config implements LayerwiseModel.
func (m *SAGE) Config() Config { return m.cfg }

// NumLayers implements LayerwiseModel.
func (m *SAGE) NumLayers() int { return m.cfg.Layers }

// ForwardLayer implements LayerwiseModel. Parameters must already be bound
// on x's tape.
func (m *SAGE) ForwardLayer(dev *sim.Device, l int, blk *spops.SubCSR, x *autograd.Var, last, train bool) *autograd.Var {
	self := sliceTargets(x, blk)
	agg := spops.SpMM(dev, m.cfg.Backend, blk, x, nil, spops.AggMean)
	out := m.layers[l].Apply(dev, autograd.ConcatCols(self, agg))
	if !last {
		pre := out
		out = autograd.ReLU(out)
		chargeEltwiseFwd(dev, out)
		hookEltwiseBwd(dev, out, pre)
		out = dropoutVar(dev, out, m.cfg.Dropout, train, m.rng)
	}
	return out
}

// GAT is a multi-head graph attention network. Each head projects the
// inputs, scores every sampled edge with LeakyReLU(a_l·Wh_t + a_r·Wh_s)
// (a g-SDDMM), normalizes scores per target with a segment softmax, and
// aggregates with an edge-weighted g-SpMM. Hidden layers concatenate the
// heads; the output layer averages them.
type GAT struct {
	cfg   Config
	ps    nn.ParamSet
	proj  [][]*nn.Linear // [layer][head]
	attnL [][]*nn.Param  // [layer][head] a_l, shape [headDim x 1]
	attnR [][]*nn.Param
	rng   *rand.Rand
	sl    loopScratch
}

// NewGAT builds a GAT from cfg; cfg.Hidden must divide by cfg.Heads.
func NewGAT(cfg Config) *GAT {
	if cfg.Heads <= 0 || cfg.Hidden%cfg.Heads != 0 {
		panic("gnn: GAT hidden size must be a positive multiple of heads")
	}
	m := &GAT{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	in := cfg.InDim
	for l := 0; l < cfg.Layers; l++ {
		headDim := cfg.Hidden / cfg.Heads
		if l == cfg.Layers-1 {
			headDim = cfg.Classes // output heads are averaged
		}
		var projs []*nn.Linear
		var als, ars []*nn.Param
		for h := 0; h < cfg.Heads; h++ {
			name := layerName("gat", l) + headName(h)
			projs = append(projs, nn.NewLinear(&m.ps, name+".proj", in, headDim, m.rng))
			als = append(als, m.ps.New(name+".al", glorotVec(headDim, m.rng)))
			ars = append(ars, m.ps.New(name+".ar", glorotVec(headDim, m.rng)))
		}
		m.proj = append(m.proj, projs)
		m.attnL = append(m.attnL, als)
		m.attnR = append(m.attnR, ars)
		if l == cfg.Layers-1 {
			in = cfg.Classes
		} else {
			in = cfg.Hidden
		}
	}
	return m
}

// Name implements Model.
func (m *GAT) Name() string { return "gat" }

// Params implements Model.
func (m *GAT) Params() *nn.ParamSet { return &m.ps }

// Forward implements Model.
func (m *GAT) Forward(dev *sim.Device, tp *autograd.Tape, b *Batch, train bool) *autograd.Var {
	m.ps.Bind(tp)
	x := tp.Const(b.Feat)
	for l, blk := range b.Blocks {
		x = m.ForwardLayer(dev, l, blk, x, l == len(b.Blocks)-1, train)
	}
	return x
}

// Config implements LayerwiseModel.
func (m *GAT) Config() Config { return m.cfg }

// NumLayers implements LayerwiseModel.
func (m *GAT) NumLayers() int { return m.cfg.Layers }

// ForwardLayer implements LayerwiseModel. Parameters must already be bound
// on x's tape.
func (m *GAT) ForwardLayer(dev *sim.Device, l int, rawBlk *spops.SubCSR, x *autograd.Var, last, train bool) *autograd.Var {
	blk := withSelfLoopsInto(m.sl.loop(l), rawBlk)
	captureSelfLoops(x.Tape(), m.sl.loop(l), rawBlk)
	var headsOut *autograd.Var
	for h := 0; h < m.cfg.Heads; h++ {
		hproj := m.proj[l][h].Apply(dev, x) // [nodes x headDim]
		ht := sliceTargets(hproj, blk)
		sl := autograd.MatMul(ht, m.attnL[l][h].Var())    // [targets x 1]
		sr := autograd.MatMul(hproj, m.attnR[l][h].Var()) // [nodes x 1]
		e := spops.EdgeLeakyReLU(dev, spops.EdgeScore(dev, blk, sl, sr), 0.2)
		alpha := spops.SegmentSoftmax(dev, blk, e)
		out := spops.SpMM(dev, m.cfg.Backend, blk, hproj, alpha, spops.AggSum)
		switch {
		case headsOut == nil:
			headsOut = out
		case last:
			headsOut = autograd.Add(headsOut, out) // average later
		default:
			headsOut = autograd.ConcatCols(headsOut, out)
		}
	}
	if last {
		return autograd.Scale(headsOut, 1/float32(m.cfg.Heads))
	}
	relu := autograd.ReLU(headsOut)
	chargeEltwiseFwd(dev, relu)
	hookEltwiseBwd(dev, relu, headsOut)
	return dropoutVar(dev, relu, m.cfg.Dropout, train, m.rng)
}

// New constructs a model by architecture name ("gcn", "graphsage", "gat").
func New(arch string, cfg Config) Model {
	switch arch {
	case "gcn":
		return NewGCN(cfg)
	case "graphsage", "sage":
		return NewSAGE(cfg)
	case "gat":
		return NewGAT(cfg)
	case "gin":
		return NewGIN(cfg)
	}
	panic("gnn: unknown architecture " + arch)
}

// Architectures lists the evaluated model names in paper order. GIN is
// available via New("gin", ...) but excluded here because the paper's
// experiments cover only these three.
func Architectures() []string { return []string{"gcn", "graphsage", "gat"} }

func layerName(arch string, l int) string { return arch + "." + string(rune('0'+l)) }
func headName(h int) string               { return ".h" + string(rune('0'+h)) }

func glorotVec(dim int, rng *rand.Rand) *tensor.Dense {
	return tensor.Glorot(dim, 1, rng)
}

// GIN is a Graph Isomorphism Network layer stack: each layer computes
// MLP((1+eps)·h_v + sum over sampled neighbors), with a learnable eps per
// layer (Xu et al. 2019). It is not part of the paper's evaluation but
// demonstrates that the op set (sum-aggregation g-SpMM + dense layers)
// supports architectures beyond the evaluated three.
type GIN struct {
	cfg  Config
	ps   nn.ParamSet
	mlp1 []*nn.Linear
	mlp2 []*nn.Linear
	eps  []*nn.Param
	rng  *rand.Rand
}

// NewGIN builds a GIN from cfg.
func NewGIN(cfg Config) *GIN {
	m := &GIN{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	in := cfg.InDim
	for l := 0; l < cfg.Layers; l++ {
		out := cfg.Hidden
		if l == cfg.Layers-1 {
			out = cfg.Classes
		}
		name := layerName("gin", l)
		m.mlp1 = append(m.mlp1, nn.NewLinear(&m.ps, name+".mlp1", in, cfg.Hidden, m.rng))
		m.mlp2 = append(m.mlp2, nn.NewLinear(&m.ps, name+".mlp2", cfg.Hidden, out, m.rng))
		m.eps = append(m.eps, m.ps.New(name+".eps", tensor.New(1, 1)))
		in = out
	}
	return m
}

// Name implements Model.
func (m *GIN) Name() string { return "gin" }

// Params implements Model.
func (m *GIN) Params() *nn.ParamSet { return &m.ps }

// Config implements LayerwiseModel.
func (m *GIN) Config() Config { return m.cfg }

// NumLayers implements LayerwiseModel.
func (m *GIN) NumLayers() int { return m.cfg.Layers }

// Forward implements Model.
func (m *GIN) Forward(dev *sim.Device, tp *autograd.Tape, b *Batch, train bool) *autograd.Var {
	m.ps.Bind(tp)
	x := tp.Const(b.Feat)
	for l, blk := range b.Blocks {
		x = m.ForwardLayer(dev, l, blk, x, l == len(b.Blocks)-1, train)
	}
	return x
}

// ForwardLayer implements LayerwiseModel.
func (m *GIN) ForwardLayer(dev *sim.Device, l int, blk *spops.SubCSR, x *autograd.Var, last, train bool) *autograd.Var {
	agg := spops.SpMM(dev, m.cfg.Backend, blk, x, nil, spops.AggSum)
	self := sliceTargets(x, blk)
	// (1+eps)*self + agg, with eps a learnable scalar.
	scaled := autograd.ScaleByScalarPlusOne(self, m.eps[l].Var())
	h := autograd.Add(scaled, agg)
	out := m.mlp2[l].Apply(dev, autograd.ReLU(m.mlp1[l].Apply(dev, h)))
	if !last {
		pre := out
		out = autograd.ReLU(out)
		chargeEltwiseFwd(dev, out)
		hookEltwiseBwd(dev, out, pre)
		out = dropoutVar(dev, out, m.cfg.Dropout, train, m.rng)
	}
	return out
}
