// Package gather implements the two global feature-gather strategies of
// Figure 4. The input on every GPU is a random list of feature-row indices
// whose rows may live on any GPU; the output is those rows, in input order,
// in the requesting GPU's memory.
//
//   - SharedMem: WholeGraph's approach. One gather kernel per GPU reads
//     every row directly over NVLink peer access; the switch fabric does
//     the communication (right side of Figure 4).
//   - Distributed: the distributed-memory baseline. Five explicit steps
//     with NCCL: bucket IDs by home GPU, exchange counts + IDs, local
//     gather on every home GPU, AlltoAllv the features back, reorder to
//     the input order (left side of Figure 4).
//
// Both produce identical outputs; they differ in time and traffic, which is
// exactly what Figure 10 measures.
package gather

import (
	"fmt"
	"unsafe"

	"wholegraph/internal/nccl"
	"wholegraph/internal/sim"
	"wholegraph/internal/wholemem"
)

// Request is one GPU's gather: Rows are feature-row indices into the shared
// feature table; Out receives len(Rows)*dim floats in Rows order.
type Request struct {
	Dev  *sim.Device
	Rows []int64
	Out  []float32
}

// NewRequest allocates a request with a correctly sized output buffer.
func NewRequest(dev *sim.Device, rows []int64, dim int) *Request {
	return &Request{Dev: dev, Rows: rows, Out: make([]float32, len(rows)*dim)}
}

// Reset repoints the request at a new row list, reusing the Out buffer when
// its capacity suffices and growing it otherwise. Steady-state loops keep
// one Request per device and Reset it each iteration instead of allocating
// a fresh output buffer.
func (r *Request) Reset(rows []int64, dim int) *Request {
	r.Rows = rows
	n := len(rows) * dim
	if cap(r.Out) < n {
		r.Out = make([]float32, n)
	} else {
		r.Out = r.Out[:n]
	}
	return r
}

// outSpan returns the address range [lo, hi) covered by r.Out's useful
// prefix, for alias detection. Empty buffers span nothing.
func (r *Request) outSpan(dim int) (lo, hi uintptr) {
	n := len(r.Rows) * dim
	if n == 0 {
		return 0, 0
	}
	lo = uintptr(unsafe.Pointer(&r.Out[0]))
	return lo, lo + uintptr(n)*unsafe.Sizeof(float32(0))
}

func checkReqs(dim int, reqs []*Request) {
	for i, r := range reqs {
		if len(r.Out) < len(r.Rows)*dim {
			panic(fmt.Sprintf("gather: request %d output too small: %d for %d rows", i, len(r.Out), len(r.Rows)))
		}
	}
	// Requests execute concurrently and each scatters into its own Out; two
	// requests sharing (an overlapping slice of) one buffer would race and
	// silently clobber each other's rows, so reject aliasing up front.
	for i := range reqs {
		li, hi := reqs[i].outSpan(dim)
		if li == hi {
			continue
		}
		for j := i + 1; j < len(reqs); j++ {
			lj, hj := reqs[j].outSpan(dim)
			if lj == hj {
				continue
			}
			if li < hj && lj < hi {
				panic(fmt.Sprintf("gather: requests %d and %d alias the same Out buffer", i, j))
			}
		}
	}
}

// SharedMem performs every request with one peer-access gather kernel and
// returns the latest completion time across the devices. Requests must
// target distinct devices (as on the real machine, where each GPU issues
// its own gather kernel); they execute concurrently under sim.RunParallel.
func SharedMem(feat *wholemem.Memory[float32], dim int, reqs []*Request) float64 {
	checkReqs(dim, reqs)
	sim.RunParallel(len(reqs), func(i int) {
		r := reqs[i]
		feat.GatherRows(r.Dev, r.Rows, dim, r.Out, "gather.shared")
	})
	end := 0.0
	for _, r := range reqs {
		if r.Dev.Now() > end {
			end = r.Dev.Now()
		}
	}
	return end
}

// DistributedBreakdown reports the five step completion times of the
// distributed-memory gather, in seconds from the start of the operation:
// bucket, ID exchange (counts + IDs), local gather, feature AlltoAllv, and
// the final reorder. Figure 10 compares the last AlltoAllv's bandwidth with
// the whole-operation bandwidth of the shared-memory gather.
type DistributedBreakdown struct {
	Start float64
	Steps [5]float64
}

// Total returns the end-to-end distributed gather time.
func (b DistributedBreakdown) Total() float64 { return b.Steps[4] - b.Start }

// AlltoAllvTime returns the duration of step 4 (the feature exchange).
func (b DistributedBreakdown) AlltoAllvTime() float64 { return b.Steps[3] - b.Steps[2] }

// Distributed performs the requests with the 5-step NCCL scheme of
// Figure 4 (left) and returns the latest completion time.
func Distributed(feat *wholemem.Memory[float32], dim int, reqs []*Request) float64 {
	end, _ := DistributedWithBreakdown(feat, dim, reqs)
	return end
}

// DistributedWithBreakdown is Distributed with per-step timing.
func DistributedWithBreakdown(feat *wholemem.Memory[float32], dim int, reqs []*Request) (float64, DistributedBreakdown) {
	checkReqs(dim, reqs)
	devs := make([]*sim.Device, len(reqs))
	for i, r := range reqs {
		devs[i] = r.Dev
	}
	nRanks := feat.Comm().Size()
	if len(reqs) != nRanks {
		panic(fmt.Sprintf("gather: Distributed needs one request per rank (%d), got %d", nRanks, len(reqs)))
	}
	var bd DistributedBreakdown
	bd.Start = sim.Barrier(devs)

	// Step 1: bucket node IDs by home GPU. One pass over the ID list plus
	// the bucketed write. Each rank buckets its own request concurrently.
	sendIDs := make([][][]int64, nRanks)
	backPos := make([][][]int64, nRanks) // original position of each bucketed ID
	sim.RunParallel(len(reqs), func(i int) {
		r := reqs[i]
		sendIDs[i] = make([][]int64, nRanks)
		backPos[i] = make([][]int64, nRanks)
		for pos, row := range r.Rows {
			home := feat.RankOf(row * int64(dim))
			sendIDs[i][home] = append(sendIDs[i][home], row)
			backPos[i][home] = append(backPos[i][home], int64(pos))
		}
		r.Dev.Kernel(sim.KernelCost{
			StreamBytes: float64(2 * 8 * len(r.Rows)),
			Tag:         "gather.bucket",
		})
	})
	bd.Steps[0] = sim.Barrier(devs)

	// Step 2: send the per-pair counts, then the node IDs themselves.
	counts := make([][][]int64, nRanks)
	for i := range counts {
		counts[i] = make([][]int64, nRanks)
		for j := range counts[i] {
			counts[i][j] = []int64{int64(len(sendIDs[i][j]))}
		}
	}
	nccl.AlltoAllv(devs, counts, 8)
	recvIDs := nccl.AlltoAllv(devs, sendIDs, 8)
	bd.Steps[1] = sim.Barrier(devs)

	// Step 3: every home GPU gathers locally for all requesters,
	// concurrently (each reads only its own shard).
	sendFeats := make([][][]float32, nRanks)
	sim.RunParallel(nRanks, func(home int) {
		sendFeats[home] = make([][]float32, nRanks)
		var rows int64
		shard := feat.Shard(home)
		start := feat.ShardStart(home)
		for from := 0; from < nRanks; from++ {
			ids := recvIDs[home][from]
			buf := make([]float32, len(ids)*dim)
			for k, row := range ids {
				off := row*int64(dim) - start
				copy(buf[k*dim:(k+1)*dim], shard[off:off+int64(dim)])
			}
			sendFeats[home][from] = buf
			rows += int64(len(ids))
		}
		devs[home].Kernel(sim.KernelCost{
			RandBytes:   float64(rows * int64(dim) * 4),
			StreamBytes: float64(rows * int64(dim) * 4),
			Tag:         "gather.local",
		})
	})
	bd.Steps[2] = sim.Barrier(devs)

	// Step 4: AlltoAllv the gathered features back to the requesters.
	recvFeats := nccl.AlltoAllv(devs, sendFeats, 4)
	bd.Steps[3] = sim.Barrier(devs)

	// Step 5: local reorder into the original input order, per rank.
	sim.RunParallel(len(reqs), func(i int) {
		r := reqs[i]
		for home := 0; home < nRanks; home++ {
			buf := recvFeats[i][home]
			for k, pos := range backPos[i][home] {
				copy(r.Out[pos*int64(dim):(pos+1)*int64(dim)], buf[k*dim:(k+1)*dim])
			}
		}
		r.Dev.Kernel(sim.KernelCost{
			StreamBytes: float64(2 * 4 * len(r.Rows) * dim),
			Tag:         "gather.reorder",
		})
	})
	bd.Steps[4] = sim.Barrier(devs)
	return bd.Steps[4], bd
}
