package gather

import (
	"testing"

	"wholegraph/internal/sim"
)

// TestRequestResetReusesBuffer verifies the steady-state contract: Reset
// keeps the Out allocation when capacity suffices and grows it otherwise.
func TestRequestResetReusesBuffer(t *testing.T) {
	m := sim.NewMachine(sim.DGXA100(1))
	const dim = 8
	r := NewRequest(m.Devs[0], []int64{1, 2, 3, 4}, dim)
	p0 := &r.Out[0]

	r.Reset([]int64{5, 6}, dim)
	if len(r.Out) != 2*dim {
		t.Fatalf("Out length %d after shrink, want %d", len(r.Out), 2*dim)
	}
	if &r.Out[0] != p0 {
		t.Error("Reset reallocated Out although capacity sufficed")
	}

	r.Reset([]int64{1, 2, 3, 4}, dim)
	if &r.Out[0] != p0 {
		t.Error("Reset to original size reallocated Out")
	}

	r.Reset(make([]int64, 100), dim)
	if len(r.Out) != 100*dim {
		t.Fatalf("Out length %d after grow, want %d", len(r.Out), 100*dim)
	}
}

// TestAliasedOutBuffersPanic: two requests scattering into overlapping
// slices of one array would race under sim.RunParallel; checkReqs must
// reject that before any kernel runs.
func TestAliasedOutBuffersPanic(t *testing.T) {
	const nRows, dim = 256, 4
	m, feat := setup(t, nRows, dim)
	backing := make([]float32, 3*dim)
	reqs := []*Request{
		{Dev: m.Devs[0], Rows: []int64{1, 2}, Out: backing[:2*dim]},
		{Dev: m.Devs[1], Rows: []int64{3, 4}, Out: backing[dim : 3*dim]}, // overlaps rows 1 of req 0
	}
	defer func() {
		if recover() == nil {
			t.Error("aliased Out buffers did not panic")
		}
	}()
	SharedMem(feat, dim, reqs)
}

// TestDisjointSlicesOfOneArrayAllowed: adjacent, non-overlapping windows of
// a single backing array are a legitimate layout (one big output tensor
// split across ranks) and must pass the alias check.
func TestDisjointSlicesOfOneArrayAllowed(t *testing.T) {
	const nRows, dim = 256, 4
	m, feat := setup(t, nRows, dim)
	backing := make([]float32, 4*dim)
	reqs := []*Request{
		{Dev: m.Devs[0], Rows: []int64{1, 2}, Out: backing[:2*dim]},
		{Dev: m.Devs[1], Rows: []int64{3, 4}, Out: backing[2*dim:]},
	}
	SharedMem(feat, dim, reqs)
	checkOutputs(t, reqs, dim)
}

// TestSharedMemReusedRequestsAllocFree: with Reset-ed requests and serial
// execution, the shared-memory gather performs no per-row or per-request
// allocation. The budget is 1: the closure handed to sim.RunParallel
// escapes (it may run on goroutines) — a fixed cost independent of how many
// rows or requests are gathered.
func TestSharedMemReusedRequestsAllocFree(t *testing.T) {
	const nRows, dim = 1024, 16
	m, feat := setup(t, nRows, dim)
	reqs := makeReqs(m, nRows, dim, 200, 42)
	SharedMem(feat, dim, reqs) // warm up

	prev := sim.SetParallel(false)
	defer sim.SetParallel(prev)
	if n := testing.AllocsPerRun(10, func() {
		for _, r := range reqs {
			r.Reset(r.Rows, dim)
		}
		SharedMem(feat, dim, reqs)
	}); n > 1 {
		t.Fatalf("reused SharedMem gather allocated %.1f times per run, budget 1 (the RunParallel closure)", n)
	}
}
