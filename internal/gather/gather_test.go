package gather

import (
	"math/rand"
	"testing"

	"wholegraph/internal/sim"
	"wholegraph/internal/wholemem"
)

func setup(t *testing.T, nRows int64, dim int) (*sim.Machine, *wholemem.Memory[float32]) {
	t.Helper()
	m := sim.NewMachine(sim.DGXA100(1))
	comm, err := wholemem.NewComm(m.NodeDevs(0))
	if err != nil {
		t.Fatal(err)
	}
	feat := wholemem.Alloc[float32](comm, nRows*int64(dim))
	for i := int64(0); i < feat.Len(); i++ {
		feat.Set(i, float32(i))
	}
	m.Reset()
	return m, feat
}

func makeReqs(m *sim.Machine, nRows int64, dim, perDev int, seed int64) []*Request {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]*Request, 8)
	for i, d := range m.NodeDevs(0) {
		rows := make([]int64, perDev)
		for j := range rows {
			rows[j] = rng.Int63n(nRows)
		}
		reqs[i] = NewRequest(d, rows, dim)
	}
	return reqs
}

func checkOutputs(t *testing.T, reqs []*Request, dim int) {
	t.Helper()
	for i, r := range reqs {
		for k, row := range r.Rows {
			for j := 0; j < dim; j++ {
				want := float32(row*int64(dim) + int64(j))
				if r.Out[k*dim+j] != want {
					t.Fatalf("req %d row %d dim %d: got %g, want %g", i, k, j, r.Out[k*dim+j], want)
				}
			}
		}
	}
}

func TestSharedMemGatherCorrect(t *testing.T) {
	const nRows, dim = 4096, 16
	m, feat := setup(t, nRows, dim)
	reqs := makeReqs(m, nRows, dim, 300, 1)
	end := SharedMem(feat, dim, reqs)
	if end <= 0 {
		t.Fatal("no time charged")
	}
	checkOutputs(t, reqs, dim)
}

func TestDistributedGatherCorrect(t *testing.T) {
	const nRows, dim = 4096, 16
	m, feat := setup(t, nRows, dim)
	reqs := makeReqs(m, nRows, dim, 300, 2)
	end := Distributed(feat, dim, reqs)
	if end <= 0 {
		t.Fatal("no time charged")
	}
	checkOutputs(t, reqs, dim)
}

func TestBothImplementationsAgree(t *testing.T) {
	const nRows, dim = 1024, 8
	m, feat := setup(t, nRows, dim)
	a := makeReqs(m, nRows, dim, 100, 3)
	b := makeReqs(m, nRows, dim, 100, 3) // same seed, same rows
	SharedMem(feat, dim, a)
	m.Reset()
	Distributed(feat, dim, b)
	for i := range a {
		for j := range a[i].Out {
			if a[i].Out[j] != b[i].Out[j] {
				t.Fatalf("implementations disagree at req %d elem %d", i, j)
			}
		}
	}
}

// TestSharedMemFaster verifies the Figure 10 headline: the single-kernel
// shared-memory gather completes in less than half the time of the 5-step
// NCCL-based distributed gather on a realistic feature workload.
func TestSharedMemFaster(t *testing.T) {
	const nRows, dim = 1 << 15, 128
	m, feat := setup(t, nRows, dim)
	reqs := makeReqs(m, nRows, dim, 4096, 4)
	tShared := SharedMem(feat, dim, reqs)
	m.Reset()
	reqs2 := makeReqs(m, nRows, dim, 4096, 4)
	tDist := Distributed(feat, dim, reqs2)
	if tShared*2 > tDist {
		t.Errorf("shared-mem gather %.3gs not >=2x faster than distributed %.3gs", tShared, tDist)
	}
}

func TestDistributedRequiresAllRanks(t *testing.T) {
	const nRows, dim = 256, 4
	m, feat := setup(t, nRows, dim)
	reqs := makeReqs(m, nRows, dim, 10, 5)[:3]
	defer func() {
		if recover() == nil {
			t.Error("partial-rank distributed gather did not panic")
		}
	}()
	Distributed(feat, dim, reqs)
}

func TestRequestOutputTooSmallPanics(t *testing.T) {
	const nRows, dim = 256, 4
	m, feat := setup(t, nRows, dim)
	r := &Request{Dev: m.Devs[0], Rows: []int64{1, 2}, Out: make([]float32, 3)}
	defer func() {
		if recover() == nil {
			t.Error("undersized output did not panic")
		}
	}()
	SharedMem(feat, dim, []*Request{r})
}
