package autograd

import (
	"math/rand"
	"testing"

	"wholegraph/internal/tensor"
)

// TestOnBackwardFiresAfterBack checks that a post hook fires exactly once,
// after the variable's backward closure ran (the input gradient exists by
// then), and that it does not fire when no gradient reaches the variable.
func TestOnBackwardFiresAfterBack(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xv := tensor.Randn(3, 4, 1, rng)
	wv := tensor.Randn(4, 2, 1, rng)

	tp := NewTape()
	x := tp.Const(xv)
	w := tp.Param(wv)
	y := MatMul(x, w)
	fired := 0
	y.OnBackward(func() {
		fired++
		if w.Grad == nil {
			t.Error("hook ran before backward closure populated w.Grad")
		}
	})
	tp.Backward(y, ones(3, 2))
	if fired != 1 {
		t.Fatalf("hook fired %d times, want 1", fired)
	}

	// A branch the loss gradient never reaches: its hook must stay silent.
	tp2 := NewTape()
	a := tp2.Param(tensor.Randn(2, 2, 1, rng))
	dead := ReLU(a)
	dead.OnBackward(func() { t.Error("hook fired on unreached node") })
	live := Scale(tp2.Param(tensor.Randn(2, 2, 1, rng)), 2)
	tp2.Backward(live, ones(2, 2))
}

// TestResetClearsHooks checks that recycled Var nodes do not re-fire hooks
// registered before a Reset.
func TestResetClearsHooks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	arena := tensor.NewArena()
	tp := NewTapeArena(arena)
	wv := tensor.Randn(2, 2, 1, rng)

	stale := 0
	w := tp.Param(wv)
	y := ReLU(w)
	y.OnBackward(func() { stale++ })
	tp.Backward(y, ones(2, 2))
	if stale != 1 {
		t.Fatalf("hook fired %d times before Reset, want 1", stale)
	}

	tp.Reset()
	w2 := tp.Param(wv)
	y2 := ReLU(w2)
	tp.Backward(y2, ones(2, 2))
	if stale != 1 {
		t.Fatalf("stale hook re-fired after Reset (count %d)", stale)
	}
}

// TestBackwardHookedReadyOrder checks the gradient-readiness protocol: in a
// chain p2 is consumed by a later tape node than p1, so the reverse replay
// finalizes p2's gradient first; each watch index is reported exactly once,
// with the gradient already accumulated; unconsumed watches fire at the end.
func TestBackwardHookedReadyOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tp := NewTape()
	x := tp.Const(tensor.Randn(3, 4, 1, rng))
	p1 := tp.Param(tensor.Randn(4, 4, 1, rng))
	p2 := tp.Param(tensor.Randn(4, 2, 1, rng))
	unused := tp.Param(tensor.Randn(1, 1, 1, rng))

	h := ReLU(MatMul(x, p1)) // consumes p1 early in the tape
	y := MatMul(h, p2)       // consumes p2 later

	var order []int
	tp.BackwardHooked(y, ones(3, 2), []*Var{p1, p2, unused}, func(i int) {
		order = append(order, i)
		switch i {
		case 0:
			if p1.Grad == nil {
				t.Error("p1 reported ready without a gradient")
			}
		case 1:
			if p2.Grad == nil {
				t.Error("p2 reported ready without a gradient")
			}
		}
	})
	if len(order) != 3 {
		t.Fatalf("got %d ready callbacks, want 3 (order %v)", len(order), order)
	}
	if order[0] != 1 || order[1] != 0 || order[2] != 2 {
		t.Fatalf("ready order = %v, want [1 0 2] (p2 first, unconsumed last)", order)
	}
}

// TestBackwardHookedMatchesBackward checks that the hooked replay computes
// the same gradients as plain Backward.
func TestBackwardHookedMatchesBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xv := tensor.Randn(3, 4, 1, rng)
	w1v := tensor.Randn(4, 4, 1, rng)
	w2v := tensor.Randn(4, 2, 1, rng)

	run := func(hooked bool) (*tensor.Dense, *tensor.Dense) {
		tp := NewTape()
		x := tp.Const(xv)
		w1 := tp.Param(w1v)
		w2 := tp.Param(w2v)
		y := MatMul(ReLU(MatMul(x, w1)), w2)
		if hooked {
			tp.BackwardHooked(y, ones(3, 2), []*Var{w1, w2}, func(int) {})
		} else {
			tp.Backward(y, ones(3, 2))
		}
		return w1.Grad, w2.Grad
	}
	g1a, g2a := run(false)
	g1b, g2b := run(true)
	for i := range g1a.V {
		if g1a.V[i] != g1b.V[i] {
			t.Fatalf("w1 grad[%d] differs: %g vs %g", i, g1a.V[i], g1b.V[i])
		}
	}
	for i := range g2a.V {
		if g2a.V[i] != g2b.V[i] {
			t.Fatalf("w2 grad[%d] differs: %g vs %g", i, g2a.V[i], g2b.V[i])
		}
	}
}
