package autograd

import (
	"math/rand"
	"testing"

	"wholegraph/internal/tensor"
)

func fillSeq(d *tensor.Dense, base float32) {
	for i := range d.V {
		d.V[i] = base + float32(i%7) - 3
	}
}

// buildChain runs a small op chain (matmul, bias, relu, row slice) on tp
// over the shared buffers and returns the output plus the parameter vars.
func buildChain(tp *Tape, x, w, b *tensor.Dense, rows func() int) (*Var, *Var, *Var) {
	xv := tp.Const(x)
	wv := tp.Param(w)
	bv := tp.Param(b)
	h := AddBias(MatMul(xv, wv), bv)
	h = ReLU(h)
	var out *Var
	if tp.Capturing() {
		out = RowsLive(h, rows)
	} else {
		out = Rows(h, rows())
	}
	return out, wv, bv
}

// TestCaptureReplayDynamicShapes captures an op chain once, then changes
// both the input values and the row counts and replays: values and
// parameter gradients must be bit-identical to a fresh eager recompute on
// the same buffers.
func TestCaptureReplayDynamicShapes(t *testing.T) {
	x := tensor.New(5, 4)
	w := tensor.New(4, 3)
	b := tensor.New(1, 3)
	fillSeq(x, 0.5)
	fillSeq(w, -0.25)
	fillSeq(b, 0.125)
	targets := 4

	ct := NewTape()
	ct.BeginCapture()
	out, wv, bv := buildChain(ct, x, w, b, func() int { return targets })
	seed := tensor.New(out.Value.R, out.Value.C)
	for i := range seed.V {
		seed.V[i] = 1
	}
	ct.Backward(out, seed)
	ct.EndCapture()
	if ct.ProgramLen() == 0 {
		t.Fatal("capture recorded no replay steps")
	}

	// Shrink the batch and change every input value.
	x.Resize(3, 4)
	fillSeq(x, 2)
	fillSeq(w, 0.75)
	targets = 2

	ct.ReplayForward()
	seed.Resize(out.Value.R, out.Value.C)
	for i := range seed.V {
		seed.V[i] = 1
	}
	ct.ReplayBackward(out, seed, nil, nil)

	et := NewTape()
	eOut, eWv, eBv := buildChain(et, x, w, b, func() int { return targets })
	eSeed := tensor.New(eOut.Value.R, eOut.Value.C)
	for i := range eSeed.V {
		eSeed.V[i] = 1
	}
	et.Backward(eOut, eSeed)

	if out.Value.R != eOut.Value.R || out.Value.C != eOut.Value.C {
		t.Fatalf("replay shape %dx%d vs eager %dx%d", out.Value.R, out.Value.C, eOut.Value.R, eOut.Value.C)
	}
	for i := range eOut.Value.V {
		if out.Value.V[i] != eOut.Value.V[i] {
			t.Fatalf("output elem %d: replay %v eager %v", i, out.Value.V[i], eOut.Value.V[i])
		}
	}
	for i := range eWv.Grad.V {
		if wv.Grad.V[i] != eWv.Grad.V[i] {
			t.Fatalf("w grad elem %d: replay %v eager %v", i, wv.Grad.V[i], eWv.Grad.V[i])
		}
	}
	for i := range eBv.Grad.V {
		if bv.Grad.V[i] != eBv.Grad.V[i] {
			t.Fatalf("b grad elem %d: replay %v eager %v", i, bv.Grad.V[i], eBv.Grad.V[i])
		}
	}
}

// TestCaptureReplayDropoutRNG checks the RNG contract of replayed dropout:
// a replay draws the next values from the persistent RNG stream, exactly
// like a second eager iteration would, so graph and eager stay on the same
// trajectory.
func TestCaptureReplayDropoutRNG(t *testing.T) {
	x := tensor.New(6, 3)
	fillSeq(x, 1)

	run := func(tp *Tape, rnd func() float32) *Var {
		return Dropout(tp.Const(x), 0.5, rnd)
	}

	// Graph path: capture draws 1..n, replay draws n+1..2n.
	rngG := rand.New(rand.NewSource(7))
	ct := NewTape()
	ct.BeginCapture()
	out := run(ct, rngG.Float32)
	seed := tensor.New(out.Value.R, out.Value.C)
	for i := range seed.V {
		seed.V[i] = 1
	}
	ct.Backward(out, seed)
	ct.EndCapture()
	ct.ReplayForward()
	ct.ReplayBackward(out, seed, nil, nil)

	// Eager path: two iterations off the same persistent stream.
	rngE := rand.New(rand.NewSource(7))
	run(NewTape(), rngE.Float32)
	eOut := run(NewTape(), rngE.Float32)

	for i := range eOut.Value.V {
		if out.Value.V[i] != eOut.Value.V[i] {
			t.Fatalf("elem %d: replay %v, second eager iteration %v", i, out.Value.V[i], eOut.Value.V[i])
		}
	}
}

// TestCaptureRequiresPlainTape pins the arena restriction: captured tensors
// must outlive Reset, so arena tapes refuse to capture.
func TestCaptureRequiresPlainTape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BeginCapture on an arena tape did not panic")
		}
	}()
	NewTapeArena(tensor.NewArena()).BeginCapture()
}

// TestReplaySteadyStateAllocs checks that a warmed replay (forward +
// backward) performs no per-iteration tape or tensor allocation: the
// gradient buffers recorded at capture are reused via the backward cursor.
// The only residue is the parallelRows dispatch closure inside the matmul
// kernel (paid identically by eager execution), so the budget is the number
// of row-parallel kernels in the chain, not zero.
func TestReplaySteadyStateAllocs(t *testing.T) {
	x := tensor.New(5, 4)
	w := tensor.New(4, 3)
	b := tensor.New(1, 3)
	fillSeq(x, 0.5)
	fillSeq(w, -0.25)
	targets := 4

	ct := NewTape()
	ct.BeginCapture()
	out, _, _ := buildChain(ct, x, w, b, func() int { return targets })
	seed := tensor.New(out.Value.R, out.Value.C)
	ct.Backward(out, seed)
	ct.EndCapture()
	ct.ReplayForward()
	ct.ReplayBackward(out, seed, nil, nil)

	replay := testing.AllocsPerRun(10, func() {
		ct.ReplayForward()
		ct.ReplayBackward(out, seed, nil, nil)
	})
	eager := testing.AllocsPerRun(10, func() {
		et := NewTape()
		eOut, _, _ := buildChain(et, x, w, b, func() int { return targets })
		eSeed := tensor.New(eOut.Value.R, eOut.Value.C)
		et.Backward(eOut, eSeed)
	})
	t.Logf("allocs per iteration: replay %.1f, eager %.1f", replay, eager)
	if replay > 2 {
		t.Errorf("steady-state replay allocates %.1f times per iteration, budget 2", replay)
	}
	if replay >= eager {
		t.Errorf("replay allocations %.1f not below eager tape rebuild %.1f", replay, eager)
	}
}
