// Package autograd implements tape-based reverse-mode automatic
// differentiation over dense float32 matrices. It is the stand-in for the
// PyTorch autograd engine the real WholeGraph builds on (paper §III-A):
// layers record operations on a tape during the forward pass and Backward
// replays them in reverse, accumulating gradients.
//
// The package is deliberately minimal and extensible: graph-specific sparse
// operations (g-SpMM, g-SDDMM, segment softmax) register themselves through
// Tape.Op with custom backward closures, exactly as custom CUDA ops plug
// into torch.autograd.Function.
package autograd

import (
	"fmt"

	"wholegraph/internal/tensor"
)

// Var is a node in the computation graph: a value and, after Backward, its
// gradient.
type Var struct {
	Value *tensor.Dense
	// Grad is allocated lazily on first accumulation; nil means "no
	// gradient flowed here" (or a constant).
	Grad *tensor.Dense

	tape     *Tape
	needGrad bool
	inputs   []*Var
	// back propagates v.Grad into the inputs' Grad fields.
	back func(v *Var)
	// post hooks run right after back during replay (see OnBackward).
	post []postHook
}

// postHook is one registered backward hook. A nil target rides the
// variable's backward step; a non-nil target declares the hook's work as
// the production of target's gradient, which lets the whole-step scheduler
// give it its own DAG node (e.g. splitting a Linear layer's dX and dW GEMM
// charges into independently schedulable nodes).
type postHook struct {
	fn     func()
	target *Var
}

// OnBackward registers fn to run immediately after this variable's backward
// closure executes during tape replay. Hooks fire only if a gradient reached
// the variable (mirroring how its backward work only happens then); layers
// use this to charge backward kernel costs on the device at replay time
// rather than at forward-record time. Hooks are discarded by Tape.Reset.
func (v *Var) OnBackward(fn func()) { v.post = append(v.post, postHook{fn: fn}) }

// OnBackwardFor is OnBackward with a declared output: fn's work produces
// target's gradient (reading v's). The scheduler uses the declaration to
// recover a dependency edge and schedule the hook independently of its
// siblings; execution order and semantics are identical to OnBackward.
func (v *Var) OnBackwardFor(target *Var, fn func()) {
	v.post = append(v.post, postHook{fn: fn, target: target})
}

// Inputs returns the variables this one was computed from (nil for leaves).
// The returned slice is owned by the tape — callers must not mutate it.
func (v *Var) Inputs() []*Var { return v.inputs }

// NeedsGrad reports whether gradients flow to this variable.
func (v *Var) NeedsGrad() bool { return v.needGrad }

// Tape returns the tape this variable was recorded on; custom operations
// defined outside this package (e.g. the sparse ops in internal/spops) use
// it to register themselves via Tape.Op.
func (v *Var) Tape() *Tape { return v.tape }

// AccumGrad adds g into v's gradient, allocating it on first use. It is a
// no-op for variables that do not need gradients.
func (v *Var) AccumGrad(g *tensor.Dense) {
	if !v.needGrad {
		return
	}
	if v.Grad == nil {
		v.Grad = v.tape.NewTensor(v.Value.R, v.Value.C)
	}
	tensor.AccumInto(v.Grad, g)
}

// Tape records operations in execution order for reverse-mode replay.
//
// A tape may be backed by a tensor.Arena (NewTapeArena): every tensor it
// hands out through NewTensor/NewView/Scratch is then pooled and recycled
// by Reset, together with the Var nodes themselves, making the
// second-and-later training iterations allocation-free. A tape (and its
// arena) is owned by one worker goroutine, like the device it trains on.
type Tape struct {
	nodes []*Var

	arena *tensor.Arena // nil: plain allocation, nothing recycled
	vars  []*Var        // every Var handed out since the last Reset
	free  []*Var        // recycled Var nodes
	owned []*tensor.Dense
	views []*tensor.Dense
	bufs  [][]float32

	// BackwardHooked scratch, reused across calls.
	watchMin []int
	watchIdx map[*Var]int

	// Step capture/replay state (see BeginCapture). While capturing, op
	// constructors append replay closures to program; the backward pass
	// records every gradient tensor it allocates into bwdSeq so replays can
	// rebind the same buffers instead of allocating.
	capturing bool
	program   []progStep
	capBwd    bool
	replayBwd bool
	bwdSeq    []*tensor.Dense
	bwdCursor int
	// obs, when non-nil, is notified of each replayed step's dependency
	// metadata (see ReplayObserver); set by the whole-step scheduler for
	// the duration of a scheduled replay.
	obs ReplayObserver
}

// progStep is one recorded replay step. Steps recorded through CaptureRW
// carry the tensors they read and write (open = true: they open a new
// scheduler DAG node); plain Capture steps are riders whose charges attach
// to whatever node is current (device cost annotations, view rebinds).
type progStep struct {
	fn            func()
	label         string
	reads, writes []*tensor.Dense
	open          bool
}

// ReplayObserver is notified, during ReplayForward/ReplayBackward, of each
// step that should become a node in a whole-step dependency DAG, just
// before the step's math (and therefore its device charges) runs:
// ForwardNode for each CaptureRW step with the tensors it reads/writes,
// BackwardNode for each tape node's backward closure, HookNode for each
// targeted backward hook (OnBackwardFor). Implemented by internal/sched.
type ReplayObserver interface {
	ForwardNode(label string, reads, writes []*tensor.Dense)
	BackwardNode(v *Var)
	HookNode(v, target *Var)
}

// SetReplayObserver installs (or, with nil, removes) the observer for
// subsequent replays on this tape.
func (t *Tape) SetReplayObserver(o ReplayObserver) { t.obs = o }

// NewTape returns an empty tape. A fresh tape is typically created per
// training iteration; steady-state loops instead keep one arena-backed tape
// per worker (NewTapeArena) and Reset it between iterations.
func NewTape() *Tape { return &Tape{} }

// NewTapeArena returns a tape whose scratch tensors are pooled in a: Reset
// returns them (and the tape's Var nodes) to the pool for the next
// iteration. The arena must be owned by the same goroutine as the tape.
func NewTapeArena(a *tensor.Arena) *Tape { return &Tape{arena: a} }

// Arena returns the backing arena, or nil for a plain tape.
func (t *Tape) Arena() *tensor.Arena { return t.arena }

// Len returns the number of recorded non-leaf operations.
func (t *Tape) Len() int { return len(t.nodes) }

// NewTensor returns a zeroed [r x c] tensor owned by the tape: with an
// arena it is pooled memory that Reset reclaims, without one it is a plain
// allocation. All op outputs and gradients are allocated through it.
func (t *Tape) NewTensor(r, c int) *tensor.Dense {
	if t != nil && t.replayBwd {
		// Replaying a captured backward pass: hand back the tensors the
		// capture run allocated, in the same deterministic order, resized
		// (and zeroed) to the live shapes.
		if t.bwdCursor >= len(t.bwdSeq) {
			panic("autograd: backward replay allocates more tensors than its capture did")
		}
		d := t.bwdSeq[t.bwdCursor]
		t.bwdCursor++
		d.Resize(r, c)
		return d
	}
	if t != nil && t.capBwd {
		d := tensor.New(r, c)
		t.bwdSeq = append(t.bwdSeq, d)
		return d
	}
	if t == nil || t.arena == nil {
		return tensor.New(r, c)
	}
	d := t.arena.Get(r, c)
	t.owned = append(t.owned, d)
	return d
}

// NewView returns an [r x c] header over v (not copied). The header is
// pooled; the backing memory stays whoever's it was.
func (t *Tape) NewView(r, c int, v []float32) *tensor.Dense {
	if t == nil || t.arena == nil {
		return tensor.FromSlice(r, c, v)
	}
	d := t.arena.View(r, c, v)
	t.views = append(t.views, d)
	return d
}

// Scratch returns a zeroed float32 slice of length n that lives until the
// next Reset. Ops use it for per-call workspaces (SpMM norms) that their
// backward closures capture.
func (t *Tape) Scratch(n int) []float32 {
	if t == nil || t.arena == nil {
		return make([]float32, n)
	}
	v := t.arena.GetSlice(n)
	t.bufs = append(t.bufs, v)
	return v
}

// Reset clears the tape for the next iteration, recycling every Var node
// and every arena-backed tensor handed out since the previous Reset. All
// Vars and tape-owned tensors from before the Reset are invalidated — the
// caller must not hold on to logits, gradients or views across it.
func (t *Tape) Reset() {
	clear(t.nodes)
	t.nodes = t.nodes[:0]
	for _, v := range t.vars {
		v.Value, v.Grad, v.inputs, v.back, v.needGrad = nil, nil, nil, nil, false
		clear(v.post)
		v.post = v.post[:0]
		t.free = append(t.free, v)
	}
	clear(t.vars)
	t.vars = t.vars[:0]
	if t.arena != nil {
		for i, d := range t.owned {
			t.arena.Put(d)
			t.owned[i] = nil
		}
		t.owned = t.owned[:0]
		for i, d := range t.views {
			t.arena.PutHeader(d)
			t.views[i] = nil
		}
		t.views = t.views[:0]
		for i, v := range t.bufs {
			t.arena.PutSlice(v)
			t.bufs[i] = nil
		}
		t.bufs = t.bufs[:0]
	}
}

// newVar pops a recycled Var node or allocates one; every Var the tape
// hands out is tracked for recycling at Reset.
func (t *Tape) newVar() *Var {
	var v *Var
	if n := len(t.free); n > 0 {
		v = t.free[n-1]
		t.free[n-1] = nil
		t.free = t.free[:n-1]
	} else {
		v = &Var{}
	}
	v.tape = t
	t.vars = append(t.vars, v)
	return v
}

// Param wraps a trainable parameter (gradients accumulate into it).
func (t *Tape) Param(v *tensor.Dense) *Var {
	p := t.newVar()
	p.Value, p.needGrad = v, true
	return p
}

// Const wraps a constant input (no gradient).
func (t *Tape) Const(v *tensor.Dense) *Var {
	p := t.newVar()
	p.Value, p.needGrad = v, false
	return p
}

// Op records a custom operation producing out from inputs, with back
// propagating the output gradient into the inputs (via AccumGrad). The
// returned Var needs a gradient iff any input does.
func (t *Tape) Op(out *tensor.Dense, inputs []*Var, back func(v *Var)) *Var {
	need := false
	for _, in := range inputs {
		if in.tape != t {
			panic("autograd: input from a different tape")
		}
		if in.needGrad {
			need = true
		}
	}
	v := t.newVar()
	v.Value, v.needGrad, v.inputs, v.back = out, need, inputs, back
	if need {
		t.nodes = append(t.nodes, v)
	}
	return v
}

// Backward seeds loss.Grad with seed (same shape as loss.Value) and runs the
// tape in reverse, accumulating gradients into all parameters.
func (t *Tape) Backward(loss *Var, seed *tensor.Dense) {
	t.replay(loss, seed, nil, nil)
}

// BackwardHooked runs Backward and additionally reports, for each variable
// in watch (typically leaf parameters), the moment its gradient becomes
// final: onReady(i) is called for watch[i] right after the lowest-indexed
// tape node consuming it has replayed — no later node can touch its Grad.
// Watched variables never consumed by the tape are reported after the
// replay. The gradient-overlap trainer uses this to hand parameter buckets
// to the collective engine while the rest of the backward pass still runs.
func (t *Tape) BackwardHooked(loss *Var, seed *tensor.Dense, watch []*Var, onReady func(int)) {
	t.replay(loss, seed, watch, onReady)
}

// --- Step capture/replay (CUDA-Graph-style) ---
//
// A capture iteration runs the model eagerly on a plain (non-arena) tape
// between BeginCapture and EndCapture. Op constructors still execute their
// math inline, but additionally append a replay closure to the tape's
// program: the closure resizes the op's output from the live input shapes
// and re-runs the math into the same buffer. The backward pass records, in
// execution order, every gradient tensor it allocates (capBwd), so a later
// ReplayBackward can walk the frozen tape with zero allocations, handing
// each closure the buffer its capture run used (replayBwd + cursor).
//
// Replays therefore re-execute the exact op sequence with no tape mutation
// and no per-op closure allocation — only buffer rebinding — which is what
// lets the trainer bracket them in sim.BeginGraphReplay and charge one
// graph launch instead of N kernel launches. Captured programs tolerate
// changing *row counts* (every closure reads shapes live); a change of
// graph *structure* (different op sequence, different block topology)
// requires a fresh capture — the trainer's invalidation check handles that.

// BeginCapture puts the tape into capture mode. The tape must be a plain
// NewTape (no arena): captured tensors live as long as the program and must
// never be recycled by Reset.
func (t *Tape) BeginCapture() {
	if t.arena != nil {
		panic("autograd: capture requires a plain (non-arena) tape")
	}
	t.capturing = true
	clear(t.program)
	t.program = t.program[:0]
	t.bwdSeq = t.bwdSeq[:0]
}

// Capturing reports whether the tape is between BeginCapture and EndCapture.
// Layers consult it to record their device-charging steps via Capture.
func (t *Tape) Capturing() bool { return t != nil && t.capturing }

// Capture appends fn to the replay program when capturing; otherwise it is
// a no-op. Layers use it to record device cost charges and out-of-band
// forward steps (e.g. self-loop block rebuilds) in op order. Steps recorded
// this way are riders in the scheduler's DAG: their charges attach to the
// node of the preceding CaptureRW step.
func (t *Tape) Capture(fn func()) {
	if t != nil && t.capturing {
		t.program = append(t.program, progStep{fn: fn})
	}
}

// CaptureRW is Capture with dependency metadata: the step reads the given
// tensors and (re)writes the given tensors. Op constructors use it so the
// whole-step scheduler can recover producer/consumer edges between replayed
// steps; reads/writes are retained for the program's lifetime.
func (t *Tape) CaptureRW(label string, fn func(), reads, writes []*tensor.Dense) {
	if t != nil && t.capturing {
		t.program = append(t.program, progStep{fn: fn, label: label, reads: reads, writes: writes, open: true})
	}
}

// EndCapture leaves capture mode, freezing the recorded program. Call it
// after the capture iteration's backward pass so gradient buffers are
// recorded too.
func (t *Tape) EndCapture() { t.capturing = false }

// ProgramLen returns the number of recorded replay steps.
func (t *Tape) ProgramLen() int { return len(t.program) }

// ReplayForward re-executes the captured forward program against the
// current parameter/input buffers: gradients are cleared and each recorded
// step re-runs its math into the buffers wired up at capture. The caller
// must have rebound any buffers that moved (parameters, batch inputs)
// before calling.
func (t *Tape) ReplayForward() {
	for _, v := range t.vars {
		v.Grad = nil
	}
	for i := range t.program {
		s := &t.program[i]
		if t.obs != nil && s.open {
			t.obs.ForwardNode(s.label, s.reads, s.writes)
		}
		s.fn()
	}
}

// ReplayBackward runs the frozen tape's backward pass allocation-free,
// reusing the gradient buffers recorded at capture. watch/onReady follow
// BackwardHooked semantics (pass nil for a plain backward).
func (t *Tape) ReplayBackward(loss *Var, seed *tensor.Dense, watch []*Var, onReady func(int)) {
	t.replayBwd = true
	t.bwdCursor = 0
	t.replay(loss, seed, watch, onReady)
	t.replayBwd = false
	if t.bwdCursor != len(t.bwdSeq) {
		panic(fmt.Sprintf("autograd: backward replay used %d of %d captured tensors",
			t.bwdCursor, len(t.bwdSeq)))
	}
}

func (t *Tape) replay(loss *Var, seed *tensor.Dense, watch []*Var, onReady func(int)) {
	if loss.tape != t {
		panic("autograd: loss from a different tape")
	}
	if t.capturing {
		t.capBwd = true
		defer func() { t.capBwd = false }()
	}
	if !loss.Value.SameShape(seed) {
		panic(fmt.Sprintf("autograd: seed shape %dx%d for loss %dx%d",
			seed.R, seed.C, loss.Value.R, loss.Value.C))
	}
	watchMin := t.watchMin[:0]
	if len(watch) > 0 {
		if t.watchIdx == nil {
			t.watchIdx = make(map[*Var]int, len(watch))
		}
		for wi, w := range watch {
			watchMin = append(watchMin, -1)
			t.watchIdx[w] = wi
		}
		// First (lowest-index) consumer of each watched var wins: once it
		// has replayed, nothing before it in the reverse sweep remains.
		for i, v := range t.nodes {
			for _, in := range v.inputs {
				if wi, ok := t.watchIdx[in]; ok && watchMin[wi] == -1 {
					watchMin[wi] = i
				}
			}
		}
		clear(t.watchIdx)
	}
	loss.AccumGrad(seed)
	for i := len(t.nodes) - 1; i >= 0; i-- {
		v := t.nodes[i]
		if v.Grad != nil && v.back != nil {
			if t.obs != nil {
				t.obs.BackwardNode(v)
			}
			v.back(v)
			for _, h := range v.post {
				if t.obs != nil && h.target != nil {
					t.obs.HookNode(v, h.target)
				}
				h.fn()
			}
		}
		for wi, mi := range watchMin {
			if mi == i {
				onReady(wi)
			}
		}
	}
	for wi, mi := range watchMin {
		if mi == -1 {
			onReady(wi)
		}
	}
	t.watchMin = watchMin
}

// --- Built-in operations ---

// MatMul returns x*w with gradients to both inputs.
func MatMul(x, w *Var) *Var {
	out := x.tape.NewTensor(x.Value.R, w.Value.C)
	tensor.MatMulInto(out, x.Value, w.Value)
	if x.tape.capturing {
		x.tape.CaptureRW("matmul", func() {
			out.Resize(x.Value.R, w.Value.C)
			tensor.MatMulInto(out, x.Value, w.Value)
		}, []*tensor.Dense{x.Value, w.Value}, []*tensor.Dense{out})
	}
	return x.tape.Op(out, []*Var{x, w}, func(v *Var) {
		if x.needGrad {
			gx := x.tape.NewTensor(x.Value.R, x.Value.C)
			tensor.MatMulTInto(gx, v.Grad, w.Value) // dX = dY * Wᵀ
			x.AccumGrad(gx)
		}
		if w.needGrad {
			gw := w.tape.NewTensor(w.Value.R, w.Value.C)
			tensor.TMatMulInto(gw, x.Value, v.Grad) // dW = Xᵀ * dY
			w.AccumGrad(gw)
		}
	})
}

// Add returns a + b elementwise.
func Add(a, b *Var) *Var {
	out := a.tape.NewTensor(a.Value.R, a.Value.C)
	tensor.AddInto(out, a.Value, b.Value)
	if a.tape.capturing {
		a.tape.CaptureRW("add", func() {
			out.Resize(a.Value.R, a.Value.C)
			tensor.AddInto(out, a.Value, b.Value)
		}, []*tensor.Dense{a.Value, b.Value}, []*tensor.Dense{out})
	}
	return a.tape.Op(out, []*Var{a, b}, func(v *Var) {
		a.AccumGrad(v.Grad)
		b.AccumGrad(v.Grad)
	})
}

// AddBias returns x with the (1 x C) bias row added to every row.
func AddBias(x, b *Var) *Var {
	out := x.tape.NewTensor(x.Value.R, x.Value.C)
	tensor.AddRowInto(out, x.Value, b.Value)
	if x.tape.capturing {
		x.tape.CaptureRW("addbias", func() {
			out.Resize(x.Value.R, x.Value.C)
			tensor.AddRowInto(out, x.Value, b.Value)
		}, []*tensor.Dense{x.Value, b.Value}, []*tensor.Dense{out})
	}
	return x.tape.Op(out, []*Var{x, b}, func(v *Var) {
		x.AccumGrad(v.Grad)
		if b.needGrad {
			gb := b.tape.NewTensor(1, b.Value.C)
			tensor.ColSumInto(gb, v.Grad)
			b.AccumGrad(gb)
		}
	})
}

// ReLU returns max(x, 0).
func ReLU(x *Var) *Var {
	out := x.tape.NewTensor(x.Value.R, x.Value.C)
	tensor.ReLUInto(out, x.Value)
	if x.tape.capturing {
		x.tape.CaptureRW("relu", func() {
			out.Resize(x.Value.R, x.Value.C)
			tensor.ReLUInto(out, x.Value)
		}, []*tensor.Dense{x.Value}, []*tensor.Dense{out})
	}
	return x.tape.Op(out, []*Var{x}, func(v *Var) {
		gx := x.tape.NewTensor(x.Value.R, x.Value.C)
		tensor.ReLUGradInto(gx, x.Value, v.Grad)
		x.AccumGrad(gx)
	})
}

// Scale returns s*x.
func Scale(x *Var, s float32) *Var {
	out := x.tape.NewTensor(x.Value.R, x.Value.C)
	tensor.ScaleInto(out, x.Value, s)
	if x.tape.capturing {
		x.tape.CaptureRW("scale", func() {
			out.Resize(x.Value.R, x.Value.C)
			tensor.ScaleInto(out, x.Value, s)
		}, []*tensor.Dense{x.Value}, []*tensor.Dense{out})
	}
	return x.tape.Op(out, []*Var{x}, func(v *Var) {
		gx := x.tape.NewTensor(x.Value.R, x.Value.C)
		tensor.ScaleInto(gx, v.Grad, s)
		x.AccumGrad(gx)
	})
}

// Dropout zeroes entries with probability p (rnd yields uniforms in [0,1)),
// scaling survivors by 1/(1-p). With p <= 0 it is the identity.
func Dropout(x *Var, p float32, rnd func() float32) *Var {
	out := x.tape.NewTensor(x.Value.R, x.Value.C)
	mask := x.tape.NewTensor(x.Value.R, x.Value.C)
	tensor.DropoutInto(out, x.Value, mask, p, rnd)
	if x.tape.capturing {
		// Replays re-draw from rnd in op order; since draw counts track the
		// live shapes, a replayed epoch consumes the same random stream the
		// eager epoch would, keeping the two bit-identical.
		x.tape.CaptureRW("dropout", func() {
			out.Resize(x.Value.R, x.Value.C)
			mask.Resize(x.Value.R, x.Value.C)
			tensor.DropoutInto(out, x.Value, mask, p, rnd)
		}, []*tensor.Dense{x.Value}, []*tensor.Dense{out, mask})
	}
	return x.tape.Op(out, []*Var{x}, func(v *Var) {
		gx := x.tape.NewTensor(x.Value.R, x.Value.C)
		tensor.MulInto(gx, v.Grad, mask)
		x.AccumGrad(gx)
	})
}

// Rows returns the sub-matrix of the first n rows of x (a view for the
// forward value; the backward scatters the gradient into the top rows).
// GNN layers use it to slice target-node rows off a gathered feature block.
func Rows(x *Var, n int) *Var {
	if n > x.Value.R {
		panic(fmt.Sprintf("autograd: Rows(%d) of %d-row matrix", n, x.Value.R))
	}
	out := x.tape.NewView(n, x.Value.C, x.Value.V[:n*x.Value.C])
	return x.tape.Op(out, []*Var{x}, func(v *Var) {
		gx := x.tape.NewTensor(x.Value.R, x.Value.C)
		copy(gx.V, v.Grad.V) // fills the first v.Grad.R rows, rest stays zero
		x.AccumGrad(gx)
	})
}

// RowsLive is the capturable variant of Rows: n is re-evaluated on every
// replay, so the slice tracks the live batch size (e.g. the block's current
// target count). Outside capture it is equivalent to Rows(x, n()).
func RowsLive(x *Var, n func() int) *Var {
	t := x.tape
	nv := n()
	if nv > x.Value.R {
		panic(fmt.Sprintf("autograd: RowsLive(%d) of %d-row matrix", nv, x.Value.R))
	}
	out := t.NewView(nv, x.Value.C, x.Value.V[:nv*x.Value.C])
	if t.capturing {
		t.CaptureRW("rows", func() {
			nv := n()
			out.R, out.C = nv, x.Value.C
			out.V = x.Value.V[:nv*x.Value.C]
		}, []*tensor.Dense{x.Value}, []*tensor.Dense{out})
	}
	return t.Op(out, []*Var{x}, func(v *Var) {
		gx := t.NewTensor(x.Value.R, x.Value.C)
		copy(gx.V, v.Grad.V)
		x.AccumGrad(gx)
	})
}

// ConcatCols returns [a | b] column-wise.
func ConcatCols(a, b *Var) *Var {
	if a.Value.R != b.Value.R {
		panic("autograd: ConcatCols row mismatch")
	}
	ca, cb := a.Value.C, b.Value.C
	out := a.tape.NewTensor(a.Value.R, ca+cb)
	concat := func() {
		for i := 0; i < a.Value.R; i++ {
			copy(out.Row(i)[:ca], a.Value.Row(i))
			copy(out.Row(i)[ca:], b.Value.Row(i))
		}
	}
	concat()
	if a.tape.capturing {
		// Column widths are structural (fixed per capture); row counts are
		// read live.
		a.tape.CaptureRW("concat", func() {
			out.Resize(a.Value.R, ca+cb)
			concat()
		}, []*tensor.Dense{a.Value, b.Value}, []*tensor.Dense{out})
	}
	return a.tape.Op(out, []*Var{a, b}, func(v *Var) {
		if a.needGrad {
			ga := a.tape.NewTensor(a.Value.R, ca)
			for i := 0; i < a.Value.R; i++ {
				copy(ga.Row(i), v.Grad.Row(i)[:ca])
			}
			a.AccumGrad(ga)
		}
		if b.needGrad {
			gb := b.tape.NewTensor(b.Value.R, cb)
			for i := 0; i < b.Value.R; i++ {
				copy(gb.Row(i), v.Grad.Row(i)[ca:])
			}
			b.AccumGrad(gb)
		}
	})
}

// GatherRows returns the rows of x selected by idx (duplicates allowed);
// the backward pass scatter-adds the output gradient back into the source
// rows. Link-prediction heads use it to pull endpoint embeddings out of an
// encoder's output block.
func GatherRows(x *Var, idx []int) *Var {
	out := x.tape.NewTensor(len(idx), x.Value.C)
	gather := func() {
		for i, r := range idx {
			copy(out.Row(i), x.Value.Row(r))
		}
	}
	gather()
	if x.tape.capturing {
		// idx is structural: a capture is only valid while the caller keeps
		// feeding the same index set.
		x.tape.CaptureRW("gather", func() {
			out.Resize(len(idx), x.Value.C)
			gather()
		}, []*tensor.Dense{x.Value}, []*tensor.Dense{out})
	}
	return x.tape.Op(out, []*Var{x}, func(v *Var) {
		gx := x.tape.NewTensor(x.Value.R, x.Value.C)
		for i, r := range idx {
			dst := gx.Row(r)
			src := v.Grad.Row(i)
			for j, g := range src {
				dst[j] += g
			}
		}
		x.AccumGrad(gx)
	})
}

// RowDot returns the row-wise dot products of a and b as an [n x 1] column.
func RowDot(a, b *Var) *Var {
	if !a.Value.SameShape(b.Value) {
		panic("autograd: RowDot shape mismatch")
	}
	out := a.tape.NewTensor(a.Value.R, 1)
	rowdot := func() {
		for i := 0; i < a.Value.R; i++ {
			var s float32
			ar, br := a.Value.Row(i), b.Value.Row(i)
			for j := range ar {
				s += ar[j] * br[j]
			}
			out.V[i] = s
		}
	}
	rowdot()
	if a.tape.capturing {
		a.tape.CaptureRW("rowdot", func() {
			out.Resize(a.Value.R, 1)
			rowdot()
		}, []*tensor.Dense{a.Value, b.Value}, []*tensor.Dense{out})
	}
	return a.tape.Op(out, []*Var{a, b}, func(v *Var) {
		if a.needGrad {
			ga := a.tape.NewTensor(a.Value.R, a.Value.C)
			for i := 0; i < a.Value.R; i++ {
				g := v.Grad.V[i]
				br, gr := b.Value.Row(i), ga.Row(i)
				for j := range gr {
					gr[j] = g * br[j]
				}
			}
			a.AccumGrad(ga)
		}
		if b.needGrad {
			gb := b.tape.NewTensor(b.Value.R, b.Value.C)
			for i := 0; i < b.Value.R; i++ {
				g := v.Grad.V[i]
				ar, gr := a.Value.Row(i), gb.Row(i)
				for j := range gr {
					gr[j] = g * ar[j]
				}
			}
			b.AccumGrad(gb)
		}
	})
}

// ScaleByScalarPlusOne returns (1 + s) * x where s is a learnable [1 x 1]
// scalar (the eps of a GIN layer). Gradients flow to both inputs:
// dx = (1+s)·dy and ds = sum(x ⊙ dy).
func ScaleByScalarPlusOne(x, s *Var) *Var {
	if s.Value.R != 1 || s.Value.C != 1 {
		panic("autograd: scalar must be 1x1")
	}
	out := x.tape.NewTensor(x.Value.R, x.Value.C)
	// The factor is read live inside each closure rather than bound at
	// record time: the optimizer updates s between a capture and its
	// replays, and the eager pass reads s before the optimizer runs, so the
	// two stay equivalent.
	tensor.ScaleInto(out, x.Value, 1+s.Value.V[0])
	if x.tape.capturing {
		x.tape.CaptureRW("scale1p", func() {
			out.Resize(x.Value.R, x.Value.C)
			tensor.ScaleInto(out, x.Value, 1+s.Value.V[0])
		}, []*tensor.Dense{x.Value, s.Value}, []*tensor.Dense{out})
	}
	return x.tape.Op(out, []*Var{x, s}, func(v *Var) {
		if x.needGrad {
			gx := x.tape.NewTensor(x.Value.R, x.Value.C)
			tensor.ScaleInto(gx, v.Grad, 1+s.Value.V[0])
			x.AccumGrad(gx)
		}
		if s.needGrad {
			var dot float64
			for i, g := range v.Grad.V {
				dot += float64(g) * float64(x.Value.V[i])
			}
			gs := s.tape.NewTensor(1, 1)
			gs.V[0] = float32(dot)
			s.AccumGrad(gs)
		}
	})
}

// SegmentMeanRows mean-pools consecutive row segments of x: segment g is
// rows [offsets[g], offsets[g+1]), and output row g is their mean. It is
// the readout of graph classification (pooling each small graph's node
// embeddings into one vector). Empty segments produce zero rows.
func SegmentMeanRows(x *Var, offsets []int) *Var {
	nSeg := len(offsets) - 1
	if nSeg < 0 || offsets[nSeg] > x.Value.R {
		panic("autograd: bad segment offsets")
	}
	out := x.tape.NewTensor(nSeg, x.Value.C)
	pool := func() {
		for g := 0; g < nSeg; g++ {
			lo, hi := offsets[g], offsets[g+1]
			if hi <= lo {
				continue
			}
			or := out.Row(g)
			for r := lo; r < hi; r++ {
				for j, v := range x.Value.Row(r) {
					or[j] += v
				}
			}
			inv := 1 / float32(hi-lo)
			for j := range or {
				or[j] *= inv
			}
		}
	}
	pool()
	if x.tape.capturing {
		// offsets are structural; Resize zeroes out so empty segments stay
		// zero rows on every replay.
		x.tape.CaptureRW("segmean", func() {
			out.Resize(nSeg, x.Value.C)
			pool()
		}, []*tensor.Dense{x.Value}, []*tensor.Dense{out})
	}
	return x.tape.Op(out, []*Var{x}, func(v *Var) {
		gx := x.tape.NewTensor(x.Value.R, x.Value.C)
		for g := 0; g < nSeg; g++ {
			lo, hi := offsets[g], offsets[g+1]
			if hi <= lo {
				continue
			}
			inv := 1 / float32(hi-lo)
			gr := v.Grad.Row(g)
			for r := lo; r < hi; r++ {
				dst := gx.Row(r)
				for j, gv := range gr {
					dst[j] += gv * inv
				}
			}
		}
		x.AccumGrad(gx)
	})
}
