// Package autograd implements tape-based reverse-mode automatic
// differentiation over dense float32 matrices. It is the stand-in for the
// PyTorch autograd engine the real WholeGraph builds on (paper §III-A):
// layers record operations on a tape during the forward pass and Backward
// replays them in reverse, accumulating gradients.
//
// The package is deliberately minimal and extensible: graph-specific sparse
// operations (g-SpMM, g-SDDMM, segment softmax) register themselves through
// Tape.Op with custom backward closures, exactly as custom CUDA ops plug
// into torch.autograd.Function.
package autograd

import (
	"fmt"

	"wholegraph/internal/tensor"
)

// Var is a node in the computation graph: a value and, after Backward, its
// gradient.
type Var struct {
	Value *tensor.Dense
	// Grad is allocated lazily on first accumulation; nil means "no
	// gradient flowed here" (or a constant).
	Grad *tensor.Dense

	tape     *Tape
	needGrad bool
	inputs   []*Var
	// back propagates v.Grad into the inputs' Grad fields.
	back func(v *Var)
}

// NeedsGrad reports whether gradients flow to this variable.
func (v *Var) NeedsGrad() bool { return v.needGrad }

// Tape returns the tape this variable was recorded on; custom operations
// defined outside this package (e.g. the sparse ops in internal/spops) use
// it to register themselves via Tape.Op.
func (v *Var) Tape() *Tape { return v.tape }

// AccumGrad adds g into v's gradient, allocating it on first use. It is a
// no-op for variables that do not need gradients.
func (v *Var) AccumGrad(g *tensor.Dense) {
	if !v.needGrad {
		return
	}
	if v.Grad == nil {
		v.Grad = tensor.New(v.Value.R, v.Value.C)
	}
	tensor.AccumInto(v.Grad, g)
}

// Tape records operations in execution order for reverse-mode replay.
type Tape struct {
	nodes []*Var
}

// NewTape returns an empty tape. A fresh tape is typically created per
// training iteration.
func NewTape() *Tape { return &Tape{} }

// Len returns the number of recorded non-leaf operations.
func (t *Tape) Len() int { return len(t.nodes) }

// Param wraps a trainable parameter (gradients accumulate into it).
func (t *Tape) Param(v *tensor.Dense) *Var {
	return &Var{Value: v, tape: t, needGrad: true}
}

// Const wraps a constant input (no gradient).
func (t *Tape) Const(v *tensor.Dense) *Var {
	return &Var{Value: v, tape: t, needGrad: false}
}

// Op records a custom operation producing out from inputs, with back
// propagating the output gradient into the inputs (via AccumGrad). The
// returned Var needs a gradient iff any input does.
func (t *Tape) Op(out *tensor.Dense, inputs []*Var, back func(v *Var)) *Var {
	need := false
	for _, in := range inputs {
		if in.tape != t {
			panic("autograd: input from a different tape")
		}
		if in.needGrad {
			need = true
		}
	}
	v := &Var{Value: out, tape: t, needGrad: need, inputs: inputs, back: back}
	if need {
		t.nodes = append(t.nodes, v)
	}
	return v
}

// Backward seeds loss.Grad with seed (same shape as loss.Value) and runs the
// tape in reverse, accumulating gradients into all parameters.
func (t *Tape) Backward(loss *Var, seed *tensor.Dense) {
	if loss.tape != t {
		panic("autograd: loss from a different tape")
	}
	if !loss.Value.SameShape(seed) {
		panic(fmt.Sprintf("autograd: seed shape %dx%d for loss %dx%d",
			seed.R, seed.C, loss.Value.R, loss.Value.C))
	}
	loss.AccumGrad(seed)
	for i := len(t.nodes) - 1; i >= 0; i-- {
		v := t.nodes[i]
		if v.Grad == nil || v.back == nil {
			continue // no gradient reached this node
		}
		v.back(v)
	}
}

// --- Built-in operations ---

// MatMul returns x*w with gradients to both inputs.
func MatMul(x, w *Var) *Var {
	out := tensor.MatMul(x.Value, w.Value)
	return x.tape.Op(out, []*Var{x, w}, func(v *Var) {
		if x.needGrad {
			gx := tensor.New(x.Value.R, x.Value.C)
			tensor.MatMulTInto(gx, v.Grad, w.Value) // dX = dY * Wᵀ
			x.AccumGrad(gx)
		}
		if w.needGrad {
			gw := tensor.New(w.Value.R, w.Value.C)
			tensor.TMatMulInto(gw, x.Value, v.Grad) // dW = Xᵀ * dY
			w.AccumGrad(gw)
		}
	})
}

// Add returns a + b elementwise.
func Add(a, b *Var) *Var {
	out := tensor.New(a.Value.R, a.Value.C)
	tensor.AddInto(out, a.Value, b.Value)
	return a.tape.Op(out, []*Var{a, b}, func(v *Var) {
		a.AccumGrad(v.Grad)
		b.AccumGrad(v.Grad)
	})
}

// AddBias returns x with the (1 x C) bias row added to every row.
func AddBias(x, b *Var) *Var {
	out := tensor.New(x.Value.R, x.Value.C)
	tensor.AddRowInto(out, x.Value, b.Value)
	return x.tape.Op(out, []*Var{x, b}, func(v *Var) {
		x.AccumGrad(v.Grad)
		if b.needGrad {
			gb := tensor.New(1, b.Value.C)
			tensor.ColSumInto(gb, v.Grad)
			b.AccumGrad(gb)
		}
	})
}

// ReLU returns max(x, 0).
func ReLU(x *Var) *Var {
	out := tensor.New(x.Value.R, x.Value.C)
	tensor.ReLUInto(out, x.Value)
	return x.tape.Op(out, []*Var{x}, func(v *Var) {
		gx := tensor.New(x.Value.R, x.Value.C)
		tensor.ReLUGradInto(gx, x.Value, v.Grad)
		x.AccumGrad(gx)
	})
}

// Scale returns s*x.
func Scale(x *Var, s float32) *Var {
	out := tensor.New(x.Value.R, x.Value.C)
	tensor.ScaleInto(out, x.Value, s)
	return x.tape.Op(out, []*Var{x}, func(v *Var) {
		gx := tensor.New(x.Value.R, x.Value.C)
		tensor.ScaleInto(gx, v.Grad, s)
		x.AccumGrad(gx)
	})
}

// Dropout zeroes entries with probability p (rnd yields uniforms in [0,1)),
// scaling survivors by 1/(1-p). With p <= 0 it is the identity.
func Dropout(x *Var, p float32, rnd func() float32) *Var {
	out := tensor.New(x.Value.R, x.Value.C)
	mask := tensor.New(x.Value.R, x.Value.C)
	tensor.DropoutInto(out, x.Value, mask, p, rnd)
	return x.tape.Op(out, []*Var{x}, func(v *Var) {
		gx := tensor.New(x.Value.R, x.Value.C)
		tensor.MulInto(gx, v.Grad, mask)
		x.AccumGrad(gx)
	})
}

// Rows returns the sub-matrix of the first n rows of x (a view for the
// forward value; the backward scatters the gradient into the top rows).
// GNN layers use it to slice target-node rows off a gathered feature block.
func Rows(x *Var, n int) *Var {
	if n > x.Value.R {
		panic(fmt.Sprintf("autograd: Rows(%d) of %d-row matrix", n, x.Value.R))
	}
	out := tensor.FromSlice(n, x.Value.C, x.Value.V[:n*x.Value.C])
	return x.tape.Op(out, []*Var{x}, func(v *Var) {
		gx := tensor.New(x.Value.R, x.Value.C)
		copy(gx.V[:n*x.Value.C], v.Grad.V)
		x.AccumGrad(gx)
	})
}

// ConcatCols returns [a | b] column-wise.
func ConcatCols(a, b *Var) *Var {
	if a.Value.R != b.Value.R {
		panic("autograd: ConcatCols row mismatch")
	}
	ca, cb := a.Value.C, b.Value.C
	out := tensor.New(a.Value.R, ca+cb)
	for i := 0; i < a.Value.R; i++ {
		copy(out.Row(i)[:ca], a.Value.Row(i))
		copy(out.Row(i)[ca:], b.Value.Row(i))
	}
	return a.tape.Op(out, []*Var{a, b}, func(v *Var) {
		if a.needGrad {
			ga := tensor.New(a.Value.R, ca)
			for i := 0; i < a.Value.R; i++ {
				copy(ga.Row(i), v.Grad.Row(i)[:ca])
			}
			a.AccumGrad(ga)
		}
		if b.needGrad {
			gb := tensor.New(b.Value.R, cb)
			for i := 0; i < b.Value.R; i++ {
				copy(gb.Row(i), v.Grad.Row(i)[ca:])
			}
			b.AccumGrad(gb)
		}
	})
}

// GatherRows returns the rows of x selected by idx (duplicates allowed);
// the backward pass scatter-adds the output gradient back into the source
// rows. Link-prediction heads use it to pull endpoint embeddings out of an
// encoder's output block.
func GatherRows(x *Var, idx []int) *Var {
	out := tensor.New(len(idx), x.Value.C)
	for i, r := range idx {
		copy(out.Row(i), x.Value.Row(r))
	}
	return x.tape.Op(out, []*Var{x}, func(v *Var) {
		gx := tensor.New(x.Value.R, x.Value.C)
		for i, r := range idx {
			dst := gx.Row(r)
			src := v.Grad.Row(i)
			for j, g := range src {
				dst[j] += g
			}
		}
		x.AccumGrad(gx)
	})
}

// RowDot returns the row-wise dot products of a and b as an [n x 1] column.
func RowDot(a, b *Var) *Var {
	if !a.Value.SameShape(b.Value) {
		panic("autograd: RowDot shape mismatch")
	}
	out := tensor.New(a.Value.R, 1)
	for i := 0; i < a.Value.R; i++ {
		var s float32
		ar, br := a.Value.Row(i), b.Value.Row(i)
		for j := range ar {
			s += ar[j] * br[j]
		}
		out.V[i] = s
	}
	return a.tape.Op(out, []*Var{a, b}, func(v *Var) {
		if a.needGrad {
			ga := tensor.New(a.Value.R, a.Value.C)
			for i := 0; i < a.Value.R; i++ {
				g := v.Grad.V[i]
				br, gr := b.Value.Row(i), ga.Row(i)
				for j := range gr {
					gr[j] = g * br[j]
				}
			}
			a.AccumGrad(ga)
		}
		if b.needGrad {
			gb := tensor.New(b.Value.R, b.Value.C)
			for i := 0; i < b.Value.R; i++ {
				g := v.Grad.V[i]
				ar, gr := a.Value.Row(i), gb.Row(i)
				for j := range gr {
					gr[j] = g * ar[j]
				}
			}
			b.AccumGrad(gb)
		}
	})
}

// ScaleByScalarPlusOne returns (1 + s) * x where s is a learnable [1 x 1]
// scalar (the eps of a GIN layer). Gradients flow to both inputs:
// dx = (1+s)·dy and ds = sum(x ⊙ dy).
func ScaleByScalarPlusOne(x, s *Var) *Var {
	if s.Value.R != 1 || s.Value.C != 1 {
		panic("autograd: scalar must be 1x1")
	}
	factor := 1 + s.Value.V[0]
	out := tensor.New(x.Value.R, x.Value.C)
	tensor.ScaleInto(out, x.Value, factor)
	return x.tape.Op(out, []*Var{x, s}, func(v *Var) {
		if x.needGrad {
			gx := tensor.New(x.Value.R, x.Value.C)
			tensor.ScaleInto(gx, v.Grad, factor)
			x.AccumGrad(gx)
		}
		if s.needGrad {
			var dot float64
			for i, g := range v.Grad.V {
				dot += float64(g) * float64(x.Value.V[i])
			}
			gs := tensor.New(1, 1)
			gs.V[0] = float32(dot)
			s.AccumGrad(gs)
		}
	})
}

// SegmentMeanRows mean-pools consecutive row segments of x: segment g is
// rows [offsets[g], offsets[g+1]), and output row g is their mean. It is
// the readout of graph classification (pooling each small graph's node
// embeddings into one vector). Empty segments produce zero rows.
func SegmentMeanRows(x *Var, offsets []int) *Var {
	nSeg := len(offsets) - 1
	if nSeg < 0 || offsets[nSeg] > x.Value.R {
		panic("autograd: bad segment offsets")
	}
	out := tensor.New(nSeg, x.Value.C)
	for g := 0; g < nSeg; g++ {
		lo, hi := offsets[g], offsets[g+1]
		if hi <= lo {
			continue
		}
		or := out.Row(g)
		for r := lo; r < hi; r++ {
			for j, v := range x.Value.Row(r) {
				or[j] += v
			}
		}
		inv := 1 / float32(hi-lo)
		for j := range or {
			or[j] *= inv
		}
	}
	return x.tape.Op(out, []*Var{x}, func(v *Var) {
		gx := tensor.New(x.Value.R, x.Value.C)
		for g := 0; g < nSeg; g++ {
			lo, hi := offsets[g], offsets[g+1]
			if hi <= lo {
				continue
			}
			inv := 1 / float32(hi-lo)
			gr := v.Grad.Row(g)
			for r := lo; r < hi; r++ {
				dst := gx.Row(r)
				for j, gv := range gr {
					dst[j] += gv * inv
				}
			}
		}
		x.AccumGrad(gx)
	})
}
