package autograd

import (
	"math"
	"math/rand"
	"testing"

	"wholegraph/internal/tensor"
)

// numericCheck compares the analytic gradient of scalarLoss wrt p against
// central differences. build must recompute the forward pass from p's
// current values and return the loss variable (1x1).
func numericCheck(t *testing.T, p *tensor.Dense, build func() (loss float64, run func() *tensor.Dense)) {
	t.Helper()
	_, run := build()
	grad := run()
	const eps = 1e-2
	for i := range p.V {
		orig := p.V[i]
		p.V[i] = orig + eps
		lp, _ := build()
		p.V[i] = orig - eps
		lm, _ := build()
		p.V[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(grad.V[i])) > 1e-2*math.Max(1, math.Abs(num)) {
			t.Fatalf("grad[%d] = %g, numeric %g", i, grad.V[i], num)
		}
	}
}

// sumAll reduces a Var to a scalar loss by summing all entries: the seed
// gradient is all-ones.
func sumAll(v *tensor.Dense) float64 {
	var s float64
	for _, x := range v.V {
		s += float64(x)
	}
	return s
}

func ones(r, c int) *tensor.Dense {
	d := tensor.New(r, c)
	for i := range d.V {
		d.V[i] = 1
	}
	return d
}

func TestMatMulGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xv := tensor.Randn(3, 4, 1, rng)
	wv := tensor.Randn(4, 2, 1, rng)

	build := func() (float64, func() *tensor.Dense) {
		tp := NewTape()
		x := tp.Const(xv)
		w := tp.Param(wv)
		y := MatMul(x, w)
		return sumAll(y.Value), func() *tensor.Dense {
			tp.Backward(y, ones(3, 2))
			return w.Grad
		}
	}
	numericCheck(t, wv, build)
}

func TestChainedGradient(t *testing.T) {
	// y = ReLU(x*w + b) * w2, loss = sum(y): checks the whole tape replay.
	rng := rand.New(rand.NewSource(2))
	xv := tensor.Randn(5, 3, 1, rng)
	wv := tensor.Randn(3, 4, 1, rng)
	bv := tensor.Randn(1, 4, 1, rng)
	w2v := tensor.Randn(4, 2, 1, rng)

	for _, p := range []*tensor.Dense{wv, bv, w2v} {
		build := func() (float64, func() *tensor.Dense) {
			tp := NewTape()
			x := tp.Const(xv)
			w := tp.Param(wv)
			b := tp.Param(bv)
			w2 := tp.Param(w2v)
			h := ReLU(AddBias(MatMul(x, w), b))
			y := MatMul(h, w2)
			return sumAll(y.Value), func() *tensor.Dense {
				tp.Backward(y, ones(5, 2))
				switch p {
				case wv:
					return w.Grad
				case bv:
					return b.Grad
				default:
					return w2.Grad
				}
			}
		}
		numericCheck(t, p, build)
	}
}

func TestAddAndScaleGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	av := tensor.Randn(2, 3, 1, rng)
	bv := tensor.Randn(2, 3, 1, rng)
	build := func() (float64, func() *tensor.Dense) {
		tp := NewTape()
		a := tp.Param(av)
		b := tp.Param(bv)
		y := Scale(Add(a, b), 2.5)
		return sumAll(y.Value), func() *tensor.Dense {
			tp.Backward(y, ones(2, 3))
			return a.Grad
		}
	}
	numericCheck(t, av, build)
	// Analytic: dy/da = 2.5 everywhere.
	_, run := build()
	g := run()
	for i := range g.V {
		if g.V[i] != 2.5 {
			t.Fatalf("scale grad = %g", g.V[i])
		}
	}
}

func TestRowsGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xv := tensor.Randn(5, 3, 1, rng)
	tp := NewTape()
	x := tp.Param(xv)
	y := Rows(x, 2)
	if y.Value.R != 2 || y.Value.C != 3 {
		t.Fatalf("rows shape %dx%d", y.Value.R, y.Value.C)
	}
	tp.Backward(y, ones(2, 3))
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			want := float32(0)
			if i < 2 {
				want = 1
			}
			if x.Grad.At(i, j) != want {
				t.Fatalf("rows grad(%d,%d) = %g, want %g", i, j, x.Grad.At(i, j), want)
			}
		}
	}
}

func TestConcatColsGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	av := tensor.Randn(3, 2, 1, rng)
	bv := tensor.Randn(3, 4, 1, rng)
	tp := NewTape()
	a := tp.Param(av)
	b := tp.Param(bv)
	y := ConcatCols(a, b)
	if y.Value.C != 6 {
		t.Fatalf("concat cols = %d", y.Value.C)
	}
	for i := 0; i < 3; i++ {
		if y.Value.At(i, 0) != av.At(i, 0) || y.Value.At(i, 2) != bv.At(i, 0) {
			t.Fatal("concat values wrong")
		}
	}
	seed := tensor.New(3, 6)
	for i := range seed.V {
		seed.V[i] = float32(i)
	}
	tp.Backward(y, seed)
	if a.Grad.At(1, 1) != seed.At(1, 1) || b.Grad.At(2, 3) != seed.At(2, 5) {
		t.Fatal("concat gradient routed wrong")
	}
}

func TestDropoutGradientMatchesMask(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	xv := ones(4, 4)
	tp := NewTape()
	x := tp.Param(xv)
	y := Dropout(x, 0.5, rng.Float32)
	tp.Backward(y, ones(4, 4))
	// Gradient equals the forward scaling: 0 where dropped, 2 where kept.
	for i := range y.Value.V {
		want := y.Value.V[i] // since input was all ones
		if x.Grad.V[i] != want {
			t.Fatalf("dropout grad[%d] = %g, want %g", i, x.Grad.V[i], want)
		}
	}
}

func TestConstGetsNoGradient(t *testing.T) {
	tp := NewTape()
	x := tp.Const(ones(2, 2))
	w := tp.Param(ones(2, 2))
	y := MatMul(x, w)
	tp.Backward(y, ones(2, 2))
	if x.Grad != nil {
		t.Error("const received a gradient")
	}
	if w.Grad == nil {
		t.Error("param missing gradient")
	}
}

func TestGradAccumulatesAcrossUses(t *testing.T) {
	// y = w + w: dw = 2.
	tp := NewTape()
	w := tp.Param(ones(1, 2))
	y := Add(w, w)
	tp.Backward(y, ones(1, 2))
	if w.Grad.V[0] != 2 || w.Grad.V[1] != 2 {
		t.Fatalf("shared-use grad = %v, want 2s", w.Grad.V)
	}
}

func TestCustomOp(t *testing.T) {
	// A custom square op via Tape.Op: y = x^2, dy/dx = 2x.
	tp := NewTape()
	xv := tensor.FromSlice(1, 3, []float32{2, -3, 4})
	x := tp.Param(xv)
	out := tensor.New(1, 3)
	for i, v := range xv.V {
		out.V[i] = v * v
	}
	y := tp.Op(out, []*Var{x}, func(v *Var) {
		g := tensor.New(1, 3)
		for i := range g.V {
			g.V[i] = 2 * xv.V[i] * v.Grad.V[i]
		}
		x.AccumGrad(g)
	})
	tp.Backward(y, ones(1, 3))
	want := []float32{4, -6, 8}
	for i, w := range want {
		if x.Grad.V[i] != w {
			t.Fatalf("custom grad[%d] = %g, want %g", i, x.Grad.V[i], w)
		}
	}
}

func TestCrossTapePanics(t *testing.T) {
	t1, t2 := NewTape(), NewTape()
	a := t1.Param(ones(1, 1))
	b := t2.Param(ones(1, 1))
	defer func() {
		if recover() == nil {
			t.Error("cross-tape op did not panic")
		}
	}()
	t1.Op(ones(1, 1), []*Var{a, b}, nil)
}

func TestGatherRowsGradient(t *testing.T) {
	tp := NewTape()
	xv := tensor.FromSlice(3, 2, []float32{1, 2, 3, 4, 5, 6})
	x := tp.Param(xv)
	y := GatherRows(x, []int{2, 0, 2}) // row 2 used twice
	if y.Value.At(0, 0) != 5 || y.Value.At(1, 1) != 2 || y.Value.At(2, 0) != 5 {
		t.Fatalf("gathered values wrong: %v", y.Value.V)
	}
	seed := tensor.FromSlice(3, 2, []float32{1, 1, 10, 10, 100, 100})
	tp.Backward(y, seed)
	// Row 2 accumulates both its uses: 1+100; row 0 gets 10; row 1 nothing.
	if x.Grad.At(2, 0) != 101 || x.Grad.At(0, 0) != 10 || x.Grad.At(1, 0) != 0 {
		t.Fatalf("gather-rows grad wrong: %v", x.Grad.V)
	}
}

func TestRowDotGradientNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	av := tensor.Randn(4, 3, 1, rng)
	bv := tensor.Randn(4, 3, 1, rng)
	loss := func() float64 {
		tp := NewTape()
		d := RowDot(tp.Const(av), tp.Const(bv))
		var l float64
		for i, v := range d.Value.V {
			l += float64(v) * float64(i+1)
		}
		return l
	}
	tp := NewTape()
	a := tp.Param(av)
	b := tp.Param(bv)
	d := RowDot(a, b)
	seed := tensor.New(4, 1)
	for i := range seed.V {
		seed.V[i] = float32(i + 1)
	}
	tp.Backward(d, seed)
	const eps = 1e-3
	for _, tc := range []struct{ p, g *tensor.Dense }{{av, a.Grad}, {bv, b.Grad}} {
		for i := range tc.p.V {
			orig := tc.p.V[i]
			tc.p.V[i] = orig + eps
			lp := loss()
			tc.p.V[i] = orig - eps
			lm := loss()
			tc.p.V[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-float64(tc.g.V[i])) > 1e-2*math.Max(1, math.Abs(num)) {
				t.Fatalf("rowdot grad[%d] = %g, numeric %g", i, tc.g.V[i], num)
			}
		}
	}
}

func TestSegmentMeanRowsGradient(t *testing.T) {
	tp := NewTape()
	xv := tensor.FromSlice(5, 2, []float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	x := tp.Param(xv)
	y := SegmentMeanRows(x, []int{0, 2, 2, 5}) // segments of 2, 0, 3 rows
	if y.Value.R != 3 {
		t.Fatalf("segments = %d", y.Value.R)
	}
	if y.Value.At(0, 0) != 2 || y.Value.At(0, 1) != 3 {
		t.Fatalf("segment 0 mean = %v", y.Value.Row(0))
	}
	if y.Value.At(1, 0) != 0 {
		t.Fatalf("empty segment mean = %v", y.Value.Row(1))
	}
	if y.Value.At(2, 0) != 7 {
		t.Fatalf("segment 2 mean = %v", y.Value.Row(2))
	}
	seed := tensor.FromSlice(3, 2, []float32{6, 6, 100, 100, 9, 9})
	tp.Backward(y, seed)
	// Segment 0 rows get 6/2=3; segment 2 rows get 9/3=3; empty segment's
	// gradient goes nowhere.
	for r := 0; r < 5; r++ {
		if x.Grad.At(r, 0) != 3 {
			t.Fatalf("segment-mean grad row %d = %g, want 3", r, x.Grad.At(r, 0))
		}
	}
}
