package graph

import (
	"fmt"
	"sort"

	"wholegraph/internal/topostore"
	"wholegraph/internal/wholemem"
)

// TopoSource produces adjacency on demand over original node IDs; the
// paged partition never materializes the full edge list. Implementations:
// a materialized CSR (CSRTopo) and the dataset generator's hash-defined
// adjacency (dataset.EdgeGen, which satisfies this interface
// structurally).
type TopoSource interface {
	NumNodes() int64
	// Degree returns node v's stored out-degree.
	Degree(v int64) int64
	// FillNeighbors writes neighbor slots [k0, k1) of node v into dst.
	// Implementations must be deterministic and safe for concurrent calls
	// with distinct dst buffers.
	FillNeighbors(v, k0, k1 int64, dst []int64)
}

// CSRTopo adapts a materialized CSR to TopoSource, letting in-RAM
// datasets train through the paged topology path (the bit-identity
// test surface).
type CSRTopo struct{ G *CSR }

// NumNodes implements TopoSource.
func (t CSRTopo) NumNodes() int64 { return t.G.N }

// Degree implements TopoSource.
func (t CSRTopo) Degree(v int64) int64 { return t.G.Degree(v) }

// FillNeighbors implements TopoSource.
func (t CSRTopo) FillNeighbors(v, k0, k1 int64, dst []int64) {
	lo := t.G.RowPtr[v]
	copy(dst, t.G.Col[lo+k0:lo+k1])
}

// PartitionPaged distributes src's nodes (and optional features) like
// Partition, but stores no column array: RowPtr stays resident in
// distributed shared memory (it is ~N*8 bytes — 0.9 GB for papers100M —
// versus ~26 GB of column), while destination GlobalIDs are served
// page-by-page from a topostore.Store backed by src. Neighbor access
// goes through the store's page-aware accessor and is bit-identical to
// the in-memory CSR; only virtual time and cache hit rates differ.
func PartitionPaged(src TopoSource, feat []float32, dim int, comm *wholemem.Comm, opts topostore.Options) (*Partitioned, error) {
	n := src.NumNodes()
	if feat != nil && int64(len(feat)) != n*int64(dim) {
		return nil, fmt.Errorf("graph: feature length %d != N*dim = %d", len(feat), n*int64(dim))
	}
	parts := comm.Size()
	p := &Partitioned{Comm: comm, N: n, Dim: dim}

	// Assign GlobalIDs, locals in original-ID order (hash partitioning).
	p.Owner = make([]GlobalID, n)
	p.Orig = make([][]int64, parts)
	for v := int64(0); v < n; v++ {
		r := RankFor(v, parts)
		p.Owner[v] = MakeGlobalID(r, int64(len(p.Orig[r])))
		p.Orig[r] = append(p.Orig[r], v)
	}

	rowSizes := make([]int64, parts)
	featSizes := make([]int64, parts)
	p.rowBase = make([]int64, parts)
	p.colBase = make([]int64, parts+1)
	var rows int64
	for r := 0; r < parts; r++ {
		ln := int64(len(p.Orig[r]))
		rowSizes[r] = ln + 1
		featSizes[r] = ln * int64(dim)
		p.rowBase[r] = rows
		rows += ln
		var edges int64
		for _, v := range p.Orig[r] {
			edges += src.Degree(v)
		}
		p.colBase[r+1] = p.colBase[r] + edges
	}

	p.RowPtr = wholemem.AllocSharded[int64](comm, rowSizes)
	if feat != nil {
		p.Feat = wholemem.AllocSharded[float32](comm, featSizes)
		p.featSrc = MemFeatures(p.Feat, rows, dim)
	}
	for r := 0; r < parts; r++ {
		rp := p.RowPtr.Shard(r)
		var fs []float32
		if feat != nil {
			fs = p.Feat.Shard(r)
		}
		var off int64
		for li, v := range p.Orig[r] {
			rp[li] = off
			off += src.Degree(v)
			if feat != nil {
				copy(fs[int64(li)*int64(dim):], feat[v*int64(dim):(v+1)*int64(dim)])
			}
		}
		rp[len(p.Orig[r])] = off
	}

	ts, err := topostore.New(p.colBase[parts], p.pagedFill(src), opts)
	if err != nil {
		return nil, err
	}
	ts.Attach(comm.Devs...)
	p.topo = ts
	return p, nil
}

// pagedFill returns the topostore fill function: it maps a global edge
// index range back to (rank, local row, slot) via the shard bases and
// resident RowPtr, reads original-ID neighbors from src, and translates
// them to GlobalIDs — exactly what PartitionBy writes into Col.
func (p *Partitioned) pagedFill(src TopoSource) topostore.Fill {
	parts := p.Comm.Size()
	return func(e0, e1 int64, dst []uint64) {
		var buf []int64
		e := e0
		for e < e1 {
			// First rank whose shard extends past e (skips empty shards).
			r := sort.Search(parts, func(r int) bool { return p.colBase[r+1] > e })
			rp := p.RowPtr.Shard(r)
			le := e - p.colBase[r]
			// Row holding local edge offset le.
			li := sort.Search(len(rp)-1, func(i int) bool { return rp[i+1] > le })
			for e < e1 && li < len(rp)-1 {
				rowEnd := p.colBase[r] + rp[li+1]
				if stop := min64(e1, rowEnd); stop > e {
					v := p.Orig[r][li]
					k0 := e - p.colBase[r] - rp[li]
					cnt := stop - e
					if int64(cap(buf)) < cnt {
						buf = make([]int64, cnt)
					}
					b := buf[:cnt]
					src.FillNeighbors(v, k0, k0+cnt, b)
					for i, d := range b {
						dst[e-e0+int64(i)] = uint64(p.Owner[d])
					}
					e = stop
				}
				if e >= e1 {
					return
				}
				li++
			}
		}
	}
}

// PagedTopo returns the paged column store, or nil when the graph holds
// a materialized Col array.
func (p *Partitioned) PagedTopo() *topostore.Store { return p.topo }

// ColValue returns the column entry at global edge index e (uncharged
// host read), from the materialized array or the paged store.
func (p *Partitioned) ColValue(e int64) uint64 {
	if p.topo != nil {
		return p.topo.ReadEdge(e)
	}
	return p.Col.Get(e)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
