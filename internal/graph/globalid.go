package graph

import "fmt"

// GlobalID identifies a node in the partitioned graph: the rank that owns
// the node in the high 16 bits and the node's local index within that rank
// in the low 48 bits, following the paper's "GlobalID = rank ID + local ID".
type GlobalID uint64

const (
	localBits = 48
	localMask = (1 << localBits) - 1
	// MaxLocal is the largest local index a rank can hold.
	MaxLocal = int64(localMask)
)

// MakeGlobalID packs a rank and local index into a GlobalID.
func MakeGlobalID(rank int, local int64) GlobalID {
	if rank < 0 || rank > 0xffff {
		panic(fmt.Sprintf("graph: rank %d out of range", rank))
	}
	if local < 0 || local > MaxLocal {
		panic(fmt.Sprintf("graph: local index %d out of range", local))
	}
	return GlobalID(uint64(rank)<<localBits | uint64(local))
}

// Rank returns the owning rank.
func (g GlobalID) Rank() int { return int(g >> localBits) }

// Local returns the index within the owning rank.
func (g GlobalID) Local() int64 { return int64(g & localMask) }

// String formats the GlobalID as rank:local.
func (g GlobalID) String() string { return fmt.Sprintf("%d:%d", g.Rank(), g.Local()) }

// hashNode is the node-to-rank hash (SplitMix64 finalizer): the paper
// partitions nodes "according to the node ID hash value".
func hashNode(id int64) uint64 {
	x := uint64(id) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RankFor returns the rank that owns original node id under hash
// partitioning into parts ranks.
func RankFor(id int64, parts int) int {
	return int(hashNode(id) % uint64(parts))
}

// HashEdgeWeight is the synthetic edge-weight function used when a dataset
// declares weighted edges: a deterministic uniform value in [0.5, 1.5)
// derived from the endpoint pair, so every storage layer (host CSR,
// partitioned store) agrees on each edge's weight without extra state.
func HashEdgeWeight(u, v int64) float32 {
	h := hashNode(u*0x1f3a5b + v)
	return 0.5 + float32(h%1024)/1024
}
